(* Tests for the extension modules: WDDL hiding, second-order TVLA,
   BMC/two-safety, watermarking, metering, probing shield, IR-drop,
   parallel-prefix adder, multiplier, MixColumns, Pareto explorer. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Gen = Netlist.Generators
module Rng = Eda_util.Rng

let bits ~width x = Array.init width (fun i -> (x lsr i) land 1 = 1)

let to_int outs lo hi =
  let v = ref 0 in
  for i = hi downto lo do
    v := (!v lsl 1) lor (if outs.(i) then 1 else 0)
  done;
  !v

(* --- WDDL ------------------------------------------------------------- *)

let test_wddl_correct () =
  let dual = Sidechannel.Wddl.transform (Gen.c17 ()) in
  let src = Gen.c17 () in
  for m = 0 to 31 do
    let values =
      List.mapi
        (fun k id -> Circuit.name src id, (m lsr k) land 1 = 1)
        (Array.to_list (Circuit.inputs src))
    in
    let expected = Netlist.Sim.eval src (bits ~width:5 m) in
    let got = Sidechannel.Wddl.eval dual ~values in
    List.iteri
      (fun k (_, v) -> Alcotest.(check bool) (Printf.sprintf "m=%d out%d" m k) expected.(k) v)
      got
  done

let test_wddl_constant_transitions () =
  let dual = Sidechannel.Wddl.transform (Sidechannel.Leakage.private_and_source ()) in
  let counts =
    List.map
      (fun (a, b) -> Sidechannel.Wddl.rising_transitions dual ~values:[ ("a", a); ("b", b) ])
      [ (false, false); (false, true); (true, false); (true, true) ]
  in
  (match counts with
   | c0 :: rest ->
     List.iter (fun c -> Alcotest.(check int) "data-independent switching" c0 c) rest
   | [] -> Alcotest.fail "no counts")

let test_wddl_tvla_passes () =
  let rng = Rng.create 1 in
  let dual = Sidechannel.Wddl.transform (Sidechannel.Leakage.private_and_source ()) in
  let r = Sidechannel.Wddl.tvla_campaign rng dual ~traces_per_class:3000 ~noise_sigma:0.3 in
  Alcotest.(check bool) "hiding passes TVLA" false (Sidechannel.Tvla.leaks r)

let test_wddl_area_cost () =
  let src = Gen.c17 () in
  let dual = Sidechannel.Wddl.transform src in
  let base = (Circuit.stats src).Circuit.area in
  let cost = (Circuit.stats dual.Sidechannel.Wddl.circuit).Circuit.area in
  Alcotest.(check bool) "~2x or more area" true (cost > 1.8 *. base)

(* --- second-order TVLA ------------------------------------------------ *)

let test_second_order_masking_story () =
  let rng = Rng.create 2 in
  let assess shares =
    let masked =
      Sidechannel.Isw.transform ~shares (Sidechannel.Leakage.private_and_source ())
    in
    let collect cls =
      let a, b =
        match cls with
        | `Fixed -> true, true
        | `Random -> Rng.bool rng, Rng.bool rng
      in
      [| Sidechannel.Leakage.hw_sample rng masked ~noise_sigma:0.1 ~a ~b |]
    in
    Sidechannel.Tvla.campaign_orders ~traces_per_class:6000 ~collect
  in
  let o1_2, o2_2 = assess 2 in
  let o1_3, o2_3 = assess 3 in
  Alcotest.(check bool) "2 shares pass 1st order" false (Sidechannel.Tvla.leaks o1_2);
  Alcotest.(check bool) "2 shares FAIL 2nd order" true (Sidechannel.Tvla.leaks o2_2);
  Alcotest.(check bool) "3 shares pass 1st order" false (Sidechannel.Tvla.leaks o1_3);
  Alcotest.(check bool) "3 shares pass 2nd order" false (Sidechannel.Tvla.leaks o2_3)

let test_second_order_detects_variance_shift () =
  let rng = Rng.create 3 in
  let collect = function
    | `Fixed -> [| Rng.gaussian_scaled rng ~mean:0.0 ~sigma:2.0 |]
    | `Random -> [| Rng.gaussian rng |]
  in
  let o1, o2 = Sidechannel.Tvla.campaign_orders ~traces_per_class:2000 ~collect in
  Alcotest.(check bool) "1st order blind to variance" false (Sidechannel.Tvla.leaks o1);
  Alcotest.(check bool) "2nd order sees variance" true (Sidechannel.Tvla.leaks o2)

(* --- unrolling & two-safety ------------------------------------------- *)

let counter_circuit () =
  (* 2-bit counter with an enable input. *)
  let c = Circuit.create () in
  let en = Circuit.add_input ~name:"en" c in
  let q0 = Circuit.add_dff ~name:"q0" c ~d:0 in
  let q1 = Circuit.add_dff ~name:"q1" c ~d:0 in
  let t0 = Circuit.add_gate c Gate.Xor [ q0; en ] in
  let carry = Circuit.add_gate c Gate.And [ q0; en ] in
  let t1 = Circuit.add_gate c Gate.Xor [ q1; carry ] in
  Circuit.connect_dff c q0 ~d:t0;
  Circuit.connect_dff c q1 ~d:t1;
  Circuit.set_output c "q0" q0;
  Circuit.set_output c "q1" q1;
  c

let test_unroll_matches_sequential_sim () =
  let c = counter_circuit () in
  let frames = 4 in
  let exp = Sat.Unroll.expand c ~frames in
  (* Drive en = 1 every frame from the all-zero state; frame f outputs must
     match the sequential simulation. *)
  (* Build the expansion input vector positionally: zero initial state,
     en = 1 in every frame. *)
  let inputs = Array.make (Circuit.num_inputs exp.Sat.Unroll.circuit) false in
  let pos_of =
    let tbl = Hashtbl.create 16 in
    Array.iteri
      (fun pos id -> Hashtbl.replace tbl id pos)
      (Circuit.inputs exp.Sat.Unroll.circuit);
    fun id -> Hashtbl.find tbl id
  in
  Array.iter (fun id -> inputs.(pos_of id) <- false) exp.Sat.Unroll.initial_state_inputs;
  Array.iter
    (fun frame_ids -> Array.iter (fun id -> inputs.(pos_of id) <- true) frame_ids)
    exp.Sat.Unroll.frame_inputs;
  let outs = Netlist.Sim.eval exp.Sat.Unroll.circuit inputs in
  let seq_trace = Netlist.Sim.run c (List.init frames (fun _ -> [| true |])) in
  List.iteri
    (fun f frame_outs ->
      Array.iteri
        (fun k expected ->
          Alcotest.(check bool) (Printf.sprintf "frame %d out %d" f k) expected
            outs.(exp.Sat.Unroll.frame_outputs.(f).(k)))
        frame_outs)
    (List.map (fun o -> o) seq_trace)

let test_two_safety_finds_leak () =
  let c = Circuit.create () in
  let x = Circuit.add_input ~name:"x" c in
  let secret = Circuit.add_dff ~name:"secret" c ~d:0 in
  Circuit.connect_dff c secret ~d:secret;
  Circuit.set_output c "y" (Circuit.add_gate c Gate.And [ x; secret ]);
  (match Sat.Unroll.two_safety_leak c ~frames:2 ~secret_state:[ 0 ] with
   | Some _ -> ()
   | None -> Alcotest.fail "secret visibly gates the output: must leak")

let test_two_safety_proves_isolation () =
  let c = Circuit.create () in
  let x = Circuit.add_input ~name:"x" c in
  let secret = Circuit.add_dff ~name:"secret" c ~d:0 in
  Circuit.connect_dff c secret ~d:secret;
  Circuit.set_output c "y" (Circuit.add_gate c Gate.Not [ x ]);
  Alcotest.(check bool) "isolated secret proven" true
    (Sat.Unroll.two_safety_leak c ~frames:4 ~secret_state:[ 0 ] = None)

let test_two_safety_masked_secret_safe () =
  (* Output = secret XOR fresh-noise-state is still distinguishable over
     two frames if the noise repeats; but secret XOR per-frame free input
     is not a leak the check should blame on the secret... we test the
     simplest sound case: secret fully unobservable within bound. *)
  let c = counter_circuit () in
  (* Treat q1 as "secret": it IS observable (it is an output): leak. *)
  (match Sat.Unroll.two_safety_leak c ~frames:1 ~secret_state:[ 1 ] with
   | Some _ -> ()
   | None -> Alcotest.fail "output state bit must be flagged")

let test_bounded_equivalence () =
  let a = counter_circuit () in
  let b = counter_circuit () in
  Alcotest.(check bool) "self" true (Sat.Unroll.bounded_equivalence a b ~frames:3);
  (* A counter with inverted enable differs. *)
  let c = Circuit.create () in
  let en = Circuit.add_input ~name:"en" c in
  let nen = Circuit.add_gate c Gate.Not [ en ] in
  let q0 = Circuit.add_dff ~name:"q0" c ~d:0 in
  let q1 = Circuit.add_dff ~name:"q1" c ~d:0 in
  let t0 = Circuit.add_gate c Gate.Xor [ q0; nen ] in
  let carry = Circuit.add_gate c Gate.And [ q0; nen ] in
  let t1 = Circuit.add_gate c Gate.Xor [ q1; carry ] in
  Circuit.connect_dff c q0 ~d:t0;
  Circuit.connect_dff c q1 ~d:t1;
  Circuit.set_output c "q0" q0;
  Circuit.set_output c "q1" q1;
  Alcotest.(check bool) "different" false (Sat.Unroll.bounded_equivalence a c ~frames:3)

(* --- watermarking ------------------------------------------------------ *)

let test_structural_watermark () =
  let rng = Rng.create 4 in
  let src = Gen.alu 4 in
  let mark = Locking.Watermark.embed_structural rng ~bits:12 src in
  Alcotest.(check bool) "function preserved" true
    (Netlist.Sim.equivalent_random rng ~patterns:300 src mark.Locking.Watermark.s_circuit);
  Alcotest.(check bool) "signature readable" true (Locking.Watermark.structural_intact mark);
  (* Resynthesis removes the buffer/inverter gadgets: mark destroyed. *)
  let attacked =
    { mark with
      Locking.Watermark.s_circuit =
        Synth.Pass.apply "constant_propagation" mark.Locking.Watermark.s_circuit }
  in
  Alcotest.(check bool) "erased by resynthesis" false
    (Locking.Watermark.structural_intact attacked)

let test_functional_watermark () =
  let rng = Rng.create 5 in
  let src = Gen.alu 4 in
  let mark = Locking.Watermark.embed_functional rng ~bits:16 src in
  Alcotest.(check int) "full readout" 16
    (Locking.Watermark.verify_functional mark mark.Locking.Watermark.f_circuit);
  (* Survives the full synthesis pipeline. *)
  let resynthesized = Synth.Flow.optimize mark.Locking.Watermark.f_circuit in
  Alcotest.(check int) "survives resynthesis" 16
    (Locking.Watermark.verify_functional mark resynthesized);
  (* An innocent design matches about half the bits. *)
  let innocent_hits = Locking.Watermark.verify_functional mark src in
  Alcotest.(check bool) "innocent does not match" true (innocent_hits < 14);
  Alcotest.(check (float 1e-12)) "claim strength" (1.0 /. 65536.0)
    (Locking.Watermark.false_claim_probability ~bits:16)

(* --- metering ----------------------------------------------------------- *)

let test_metering_activation () =
  let rng = Rng.create 6 in
  let source = Gen.alu 4 in
  let metered = Locking.Metering.meter rng ~state_bits:8 source in
  for _ = 1 to 5 do
    Alcotest.(check bool) "owner can activate any chip" true
      (Locking.Metering.activation_works rng metered ~original:source)
  done

let test_metering_locked_without_sequence () =
  let rng = Rng.create 7 in
  let source = Gen.alu 4 in
  let metered = Locking.Metering.meter rng ~state_bits:8 source in
  let id = Array.init 8 (fun _ -> Rng.bool rng) in
  (* Without any unlock steps, the chip stays locked and outputs are gated. *)
  let state = Locking.Metering.drive_unlock metered ~power_up_id:id [] in
  if not (Locking.Metering.is_unlocked metered state) then begin
    let data = Array.make 10 true in
    let outs = Locking.Metering.eval metered ~state ~data in
    Alcotest.(check bool) "outputs gated low" true (Array.for_all (fun b -> not b) outs)
  end

let test_metering_random_guessing_weak () =
  let rng = Rng.create 8 in
  let source = Gen.c17 () in
  let metered = Locking.Metering.meter rng ~state_bits:12 source in
  let id = Array.init 12 (fun _ -> Rng.bool rng) in
  let unlocked = ref 0 in
  for _ = 1 to 100 do
    let seq = List.init 24 (fun _ -> Rng.bool rng) in
    let st = Locking.Metering.drive_unlock metered ~power_up_id:id seq in
    if Locking.Metering.is_unlocked metered st then incr unlocked
  done;
  Alcotest.(check bool) "random sequences rarely unlock" true (!unlocked <= 3)

(* --- shield & IR-drop --------------------------------------------------- *)

let test_shield_coverage () =
  let sh = Physical.Shield.build ~cols:30 ~rows:30 ~pitch:3 ~offset:1 in
  Alcotest.(check (float 1e-9)) "full coverage at r=1" 1.0 (Physical.Shield.coverage sh ~r:1);
  let loose = Physical.Shield.build ~cols:30 ~rows:30 ~pitch:10 ~offset:0 in
  Alcotest.(check bool) "sparse mesh leaves gaps" true (Physical.Shield.coverage loose ~r:1 < 0.5);
  Alcotest.(check bool) "denser mesh costs more tracks" true
    (Physical.Shield.track_overhead sh > Physical.Shield.track_overhead loose)

let test_shield_attack_detection () =
  let rng = Rng.create 9 in
  let c = Gen.alu 4 in
  let p = (Physical.Placement.place rng ~moves:2000 c).Physical.Placement.placement in
  let dense = Physical.Shield.build ~cols:p.Physical.Placement.cols ~rows:p.Physical.Placement.rows ~pitch:2 ~offset:0 in
  Alcotest.(check (float 1e-9)) "dense shield catches all probes" 1.0
    (Physical.Shield.attack_detection_rate dense ~r:1 p ~targets:[ 3; 7; 11; 19 ])

let test_ir_drop_bound_and_soundness () =
  let rng = Rng.create 10 in
  let c = Gen.alu 4 in
  let p = (Physical.Placement.place rng ~moves:2000 c).Physical.Placement.placement in
  let `Bound bound, `Worst_simulated sim, `Meets_budget _, `Activity_model_sound sound =
    Physical.Ir_drop.verify rng ~vectors:10 p ~budget:10.0
  in
  Alcotest.(check bool) "bound positive" true (bound > 0.0);
  Alcotest.(check bool) "simulation positive" true (sim > 0.0);
  Alcotest.(check bool) "activity=3 model sound here" true sound;
  (* An activity cap of 0.5 must be caught as optimistic. *)
  let `Bound _, `Worst_simulated _, `Meets_budget _, `Activity_model_sound naive_sound =
    Physical.Ir_drop.verify rng ~vectors:10 ~activity:0.2 p ~budget:10.0
  in
  Alcotest.(check bool) "tiny activity cap flagged unsound" false naive_sound

let test_ir_drop_center_worse_than_corner () =
  let rng = Rng.create 11 in
  let c = Gen.alu 4 in
  let p = (Physical.Placement.place rng ~moves:2000 c).Physical.Placement.placement in
  let g = Physical.Ir_drop.vectorless_bound p in
  (* Pads are at the corners: corner drop is 0 by construction. *)
  Alcotest.(check (float 1e-9)) "pad node drop is zero" 0.0 g.Physical.Ir_drop.drop.(0);
  Alcotest.(check bool) "worst is interior" true (g.Physical.Ir_drop.worst > 0.0)

(* --- new generators ----------------------------------------------------- *)

let test_kogge_stone () =
  let ks = Gen.kogge_stone_adder 6 in
  for a = 0 to 63 do
    for b = 0 to 63 do
      let inputs = Array.append (bits ~width:6 a) (bits ~width:6 b) in
      let outs = Netlist.Sim.eval ks inputs in
      Alcotest.(check int) (Printf.sprintf "%d+%d" a b) (a + b) (to_int outs 0 6)
    done
  done;
  Alcotest.(check bool) "log depth" true
    (Timing.Sta.depth ks < Timing.Sta.depth (Gen.ripple_adder 6))

let test_array_multiplier () =
  let m = Gen.array_multiplier 4 in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let inputs = Array.append (bits ~width:4 a) (bits ~width:4 b) in
      let outs = Netlist.Sim.eval m inputs in
      Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b) (to_int outs 0 7)
    done
  done

let test_mixcolumn_matches_software () =
  let mc = Crypto.Sbox_circuit.aes_mixcolumn () in
  let rng = Rng.create 12 in
  for _ = 1 to 100 do
    let col = Array.init 4 (fun _ -> Rng.int rng 256) in
    let state = Array.init 16 (fun k -> if k < 4 then col.(k) else 0) in
    let expected = Crypto.Aes.mix_columns state in
    let inputs =
      Array.concat (Array.to_list (Array.map Crypto.Sbox_circuit.byte_to_bits col))
    in
    let outs = Netlist.Sim.eval mc inputs in
    for r = 0 to 3 do
      Alcotest.(check int) (Printf.sprintf "row %d" r) expected.(r)
        (to_int outs (8 * r) ((8 * r) + 7))
    done
  done

(* --- explorer ----------------------------------------------------------- *)

let test_explore_pareto () =
  let rng = Rng.create 13 in
  let all, front = Secure_eda.Explore.run rng ~traces_per_class:1200 ~noise_sigma:0.3 ~injections:80 in
  Alcotest.(check int) "four points" 4 (List.length all);
  Alcotest.(check bool) "front nonempty" true (front <> []);
  (* masked+parity is dominated: it fails SCA like parity-alone but costs
     more, so it cannot be on the front. *)
  Alcotest.(check bool) "dominated composition excluded" true
    (not
       (List.exists
          (fun e -> e.Secure_eda.Explore.point = Secure_eda.Composition.Masked_and_parity)
          front));
  (* masked is on the front (only point covering SCA). *)
  Alcotest.(check bool) "masked on front" true
    (List.exists (fun e -> e.Secure_eda.Explore.point = Secure_eda.Composition.Masked) front)

let () =
  Alcotest.run "extensions"
    [ ("wddl",
       [ Alcotest.test_case "correct" `Quick test_wddl_correct;
         Alcotest.test_case "constant transitions" `Quick test_wddl_constant_transitions;
         Alcotest.test_case "tvla passes" `Quick test_wddl_tvla_passes;
         Alcotest.test_case "area cost" `Quick test_wddl_area_cost ]);
      ("second_order",
       [ Alcotest.test_case "masking order story" `Slow test_second_order_masking_story;
         Alcotest.test_case "variance shift" `Quick test_second_order_detects_variance_shift ]);
      ("bmc",
       [ Alcotest.test_case "unroll matches sim" `Quick test_unroll_matches_sequential_sim;
         Alcotest.test_case "two-safety finds leak" `Quick test_two_safety_finds_leak;
         Alcotest.test_case "two-safety proves isolation" `Quick test_two_safety_proves_isolation;
         Alcotest.test_case "output state flagged" `Quick test_two_safety_masked_secret_safe;
         Alcotest.test_case "bounded equivalence" `Quick test_bounded_equivalence ]);
      ("watermark",
       [ Alcotest.test_case "structural fragile" `Quick test_structural_watermark;
         Alcotest.test_case "functional robust" `Quick test_functional_watermark ]);
      ("metering",
       [ Alcotest.test_case "activation" `Quick test_metering_activation;
         Alcotest.test_case "locked without sequence" `Quick test_metering_locked_without_sequence;
         Alcotest.test_case "guessing weak" `Quick test_metering_random_guessing_weak ]);
      ("physical_security",
       [ Alcotest.test_case "shield coverage" `Quick test_shield_coverage;
         Alcotest.test_case "shield detection" `Quick test_shield_attack_detection;
         Alcotest.test_case "ir-drop soundness" `Quick test_ir_drop_bound_and_soundness;
         Alcotest.test_case "ir-drop geometry" `Quick test_ir_drop_center_worse_than_corner ]);
      ("generators",
       [ Alcotest.test_case "kogge-stone" `Quick test_kogge_stone;
         Alcotest.test_case "multiplier" `Quick test_array_multiplier;
         Alcotest.test_case "mixcolumn" `Quick test_mixcolumn_matches_software ]);
      ("explore", [ Alcotest.test_case "pareto" `Slow test_explore_pareto ]) ]
