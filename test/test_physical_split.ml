(* Tests for placement and split manufacturing. *)

module Circuit = Netlist.Circuit
module Gen = Netlist.Generators
module Place = Physical.Placement
module Split = Splitmfg.Split
module Rng = Eda_util.Rng

let test_initial_placement_valid () =
  let rng = Rng.create 1 in
  let c = Gen.alu 4 in
  (* [place ~moves:0] is exactly the random initial placement. *)
  let p = (Place.place rng ~moves:0 c).Place.placement in
  let n = Circuit.node_count c in
  (* All positions distinct and on the grid. *)
  let seen = Hashtbl.create n in
  Array.iter
    (fun (x, y) ->
      Alcotest.(check bool) "on grid" true (x >= 0 && x < p.Place.cols && y >= 0 && y < p.Place.rows);
      Alcotest.(check bool) "distinct" false (Hashtbl.mem seen (x, y));
      Hashtbl.replace seen (x, y) ())
    p.Place.position

let test_annealing_reduces_wirelength () =
  (* Same seed, so both runs start from the same initial placement. *)
  let c = Gen.alu 4 in
  let p0 = (Place.place (Rng.create 2) ~moves:0 c).Place.placement in
  let wl0 = Place.wirelength p0 in
  let p1 = (Place.place (Rng.create 2) ~moves:15000 c).Place.placement in
  let wl1 = Place.wirelength p1 in
  Alcotest.(check bool) (Printf.sprintf "wl %d -> %d" wl0 wl1) true (wl1 < wl0)

let test_annealing_keeps_validity () =
  let rng = Rng.create 3 in
  let c = Gen.c17 () in
  let p = (Place.place rng ~moves:5000 c).Place.placement in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun pos ->
      Alcotest.(check bool) "distinct after anneal" false (Hashtbl.mem seen pos);
      Hashtbl.replace seen pos ())
    p.Place.position

let test_perturbation_trades_wirelength_for_privacy () =
  let rng = Rng.create 4 in
  let c = Gen.alu 4 in
  let p = (Place.place rng ~moves:15000 c).Place.placement in
  let q = Place.perturb rng ~lambda:0.5 ~moves:15000 p in
  Alcotest.(check bool) "wirelength cost" true (Place.wirelength q > Place.wirelength p)

let test_split_partitions_all_connections () =
  let rng = Rng.create 5 in
  let c = Gen.c17 () in
  let p = (Place.place rng ~moves:3000 c).Place.placement in
  let s = Split.split_by_length ~feol_threshold:1 p in
  let total = List.length (Split.all_connections c) in
  Alcotest.(check int) "partition" total
    (List.length s.Split.visible + List.length s.Split.hidden);
  List.iter
    (fun conn ->
      Alcotest.(check bool) "visible short" true
        (Place.distance p conn.Split.from_node conn.Split.to_node <= 1))
    s.Split.visible

let test_lifting_monotone () =
  let rng = Rng.create 6 in
  let c = Gen.alu 4 in
  let p = (Place.place rng ~moves:8000 c).Place.placement in
  let s = Split.split_by_length ~feol_threshold:2 p in
  let l30 = Split.lift_wires ~fraction:0.3 s in
  let l100 = Split.lift_wires ~fraction:1.0 s in
  Alcotest.(check bool) "lifting hides more" true
    (List.length l30.Split.hidden > List.length s.Split.hidden);
  Alcotest.(check int) "full lift hides everything" 0 (List.length l100.Split.visible)

let test_attack_beats_random_on_ppa_placement () =
  let rng = Rng.create 7 in
  let c = Gen.alu 4 in
  let p = (Place.place rng ~moves:20000 c).Place.placement in
  let s = Split.lift_wires ~fraction:1.0 (Split.split_by_length ~feol_threshold:2 p) in
  let ccr = Split.proximity_attack s in
  let baseline = Split.random_guess_ccr s in
  Alcotest.(check bool)
    (Printf.sprintf "ccr %.3f > 2x random %.3f" ccr baseline)
    true
    (ccr > 2.0 *. baseline)

let test_defenses_reduce_recovery () =
  let rng = Rng.create 8 in
  let c = Gen.alu 4 in
  let p = (Place.place rng ~moves:20000 c).Place.placement in
  let naive = Split.split_by_length ~feol_threshold:2 p in
  let lifted = Split.lift_wires ~fraction:1.0 naive in
  let perturbed = Place.perturb rng ~lambda:0.5 ~moves:20000 p in
  let both = Split.lift_wires ~fraction:1.0 (Split.split_by_length ~feol_threshold:2 perturbed) in
  let r0 = Split.netlist_recovery_rate naive in
  let r1 = Split.netlist_recovery_rate lifted in
  let r2 = Split.netlist_recovery_rate both in
  Alcotest.(check bool) (Printf.sprintf "lifting helps (%.2f -> %.2f)" r0 r1) true (r1 < r0);
  Alcotest.(check bool) (Printf.sprintf "perturbation helps (%.2f -> %.2f)" r1 r2) true (r2 <= r1)

let test_hidden_wirelength_cost () =
  let rng = Rng.create 9 in
  let c = Gen.c17 () in
  let p = (Place.place rng ~moves:3000 c).Place.placement in
  let s = Split.split_by_length ~feol_threshold:1 p in
  let lifted = Split.lift_wires ~fraction:0.5 s in
  Alcotest.(check bool) "lifting adds BEOL wirelength" true
    (Split.hidden_wirelength lifted >= Split.hidden_wirelength s)

let prop_split_preserves_connection_count =
  QCheck.Test.make ~name:"split + lift never loses connections" ~count:10
    QCheck.(pair (int_bound 300) (int_bound 100))
    (fun (seed, pct) ->
      let rng = Rng.create seed in
      let c = Gen.random_dag ~seed ~inputs:5 ~gates:25 ~outputs:2 in
      let p = (Place.place rng ~moves:1000 c).Place.placement in
      let s = Split.split_by_length ~feol_threshold:1 p in
      let l = Split.lift_wires ~fraction:(Float.of_int pct /. 100.0) s in
      List.length (Split.all_connections c)
      = List.length l.Split.visible + List.length l.Split.hidden)

let () =
  Alcotest.run "physical_split"
    [ ("placement",
       [ Alcotest.test_case "initial valid" `Quick test_initial_placement_valid;
         Alcotest.test_case "annealing reduces wirelength" `Quick test_annealing_reduces_wirelength;
         Alcotest.test_case "annealing keeps validity" `Quick test_annealing_keeps_validity;
         Alcotest.test_case "perturbation cost" `Quick test_perturbation_trades_wirelength_for_privacy ]);
      ("split",
       [ Alcotest.test_case "partition complete" `Quick test_split_partitions_all_connections;
         Alcotest.test_case "lifting monotone" `Quick test_lifting_monotone;
         Alcotest.test_case "attack beats random" `Quick test_attack_beats_random_on_ppa_placement;
         Alcotest.test_case "defenses reduce recovery" `Slow test_defenses_reduce_recovery;
         Alcotest.test_case "wirelength cost" `Quick test_hidden_wirelength_cost ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest [ prop_split_preserves_connection_count ]) ]
