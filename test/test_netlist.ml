(* Tests for the netlist IR: construction, simulation (scalar, word,
   sequential), generators, IO round trips and structural utilities. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Sim = Netlist.Sim
module Gen = Netlist.Generators
module Io = Netlist.Io
module Rng = Eda_util.Rng

let bits ~width x = Array.init width (fun i -> (x lsr i) land 1 = 1)

let test_build_and_eval () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let x = Circuit.add_gate ~name:"x" c Gate.Xor [ a; b ] in
  Circuit.set_output c "x" x;
  Alcotest.(check bool) "0^1" true (Sim.eval c [| false; true |]).(0);
  Alcotest.(check bool) "1^1" false (Sim.eval c [| true; true |]).(0);
  Alcotest.(check bool) "well formed" true (Circuit.well_formed c)

let test_all_gate_kinds () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let s = Circuit.add_input ~name:"s" c in
  let mk kind fanins nm = Circuit.set_output c nm (Circuit.add_gate ~name:nm c kind fanins) in
  mk Gate.And [ a; b ] "and";
  mk Gate.Nand [ a; b ] "nand";
  mk Gate.Or [ a; b ] "or";
  mk Gate.Nor [ a; b ] "nor";
  mk Gate.Xor [ a; b ] "xor";
  mk Gate.Xnor [ a; b ] "xnor";
  mk Gate.Not [ a ] "not";
  mk Gate.Buf [ a ] "buf";
  mk Gate.Mux [ s; a; b ] "mux";
  let check av bv sv expected =
    let outs = Sim.eval c [| av; bv; sv |] in
    Alcotest.(check (array bool)) (Printf.sprintf "a=%b b=%b s=%b" av bv sv) expected outs
  in
  check true false false
    [| false; true; true; false; true; false; false; true; true |];
  check true true true
    [| true; false; true; false; false; true; false; true; true |];
  check false true true
    [| false; true; true; false; true; false; true; false; true |]

let test_word_sim_matches_scalar () =
  let c = Gen.c17 () in
  let rng = Rng.create 23 in
  for _ = 1 to 20 do
    let inputs = Array.init 5 (fun _ -> Rng.bool rng) in
    let scalar = Sim.eval c inputs in
    let words = Array.map (fun b -> if b then -1 else 0) inputs in
    let word_outs = Sim.eval_word c words in
    Array.iteri
      (fun k w ->
        Alcotest.(check bool) "word bit0 agrees" scalar.(k) (w land 1 = 1))
      word_outs
  done

let test_c17_reference_vectors () =
  (* c17 truth spot checks computed by hand from the NAND structure. *)
  let c = Gen.c17 () in
  (* All inputs 0: G10=1, G11=1, G16=1, G19=1, G22=nand(1,1)=0, G23=0. *)
  Alcotest.(check (array bool)) "all zero" [| false; false |] (Sim.eval c (bits ~width:5 0));
  (* G1..G5 = 1: G10=0, G11=0, G16=1, G19=1, G22=1, G23=0. *)
  Alcotest.(check (array bool)) "all one" [| true; false |] (Sim.eval c (bits ~width:5 0b11111))

let test_ripple_adder () =
  let c = Gen.ripple_adder 4 in
  let add a b cin =
    let inputs = Array.concat [ bits ~width:4 a; bits ~width:4 b; [| cin |] ] in
    let outs = Sim.eval c inputs in
    let s = ref 0 in
    for i = 3 downto 0 do
      s := (!s lsl 1) lor (if outs.(i) then 1 else 0)
    done;
    !s, outs.(4)
  in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let s, cout = add a b false in
      Alcotest.(check int) (Printf.sprintf "%d+%d" a b) ((a + b) land 0xF) s;
      Alcotest.(check bool) "carry" (a + b > 15) cout
    done
  done;
  let s, cout = add 15 15 true in
  Alcotest.(check int) "15+15+1 sum" 15 s;
  Alcotest.(check bool) "15+15+1 carry" true cout

let test_comparator () =
  let c = Gen.comparator 3 in
  for a = 0 to 7 do
    for b = 0 to 7 do
      let inputs = Array.concat [ bits ~width:3 a; bits ~width:3 b ] in
      Alcotest.(check bool) (Printf.sprintf "%d=%d" a b) (a = b) (Sim.eval c inputs).(0)
    done
  done

let test_parity_tree () =
  let c = Gen.parity_tree 7 in
  for m = 0 to 127 do
    let inputs = bits ~width:7 m in
    let expected = Eda_util.Stats.hamming_weight ~bits:7 m land 1 = 1 in
    Alcotest.(check bool) (Printf.sprintf "m=%d" m) expected (Sim.eval c inputs).(0)
  done

let test_mux_tree () =
  let c = Gen.mux_tree 2 in
  (* Inputs: d0..d3 then s0, s1. *)
  for sel = 0 to 3 do
    for data = 0 to 15 do
      let inputs = Array.concat [ bits ~width:4 data; bits ~width:2 sel ] in
      let expected = (data lsr sel) land 1 = 1 in
      Alcotest.(check bool) (Printf.sprintf "d=%d s=%d" data sel) expected (Sim.eval c inputs).(0)
    done
  done

let test_alu () =
  let c = Gen.alu 4 in
  let run a b op =
    let inputs = Array.concat [ bits ~width:4 a; bits ~width:4 b; bits ~width:2 op ] in
    let outs = Sim.eval c inputs in
    let v = ref 0 in
    for i = 3 downto 0 do
      v := (!v lsl 1) lor (if outs.(i) then 1 else 0)
    done;
    !v
  in
  for a = 0 to 15 do
    for b = 0 to 15 do
      Alcotest.(check int) "and" (a land b) (run a b 0);
      Alcotest.(check int) "or" (a lor b) (run a b 1);
      Alcotest.(check int) "xor" (a lxor b) (run a b 2);
      Alcotest.(check int) "add" ((a + b) land 0xF) (run a b 3)
    done
  done

let test_sequential_counter () =
  (* 2-bit counter from DFFs: q0' = !q0, q1' = q1 xor q0. *)
  let c = Circuit.create () in
  let en = Circuit.add_input ~name:"en" c in
  ignore en;
  let q0 = Circuit.add_dff ~name:"q0" c ~d:0 in
  let q1 = Circuit.add_dff ~name:"q1" c ~d:0 in
  let nq0 = Circuit.add_gate ~name:"nq0" c Gate.Not [ q0 ] in
  let t = Circuit.add_gate ~name:"t" c Gate.Xor [ q1; q0 ] in
  Circuit.connect_dff c q0 ~d:nq0;
  Circuit.connect_dff c q1 ~d:t;
  Circuit.set_output c "q0" q0;
  Circuit.set_output c "q1" q1;
  let trace = Sim.run c [ [| false |]; [| false |]; [| false |]; [| false |] ] in
  let as_int outs = (if outs.(1) then 2 else 0) lor (if outs.(0) then 1 else 0) in
  Alcotest.(check (list int)) "counting" [ 0; 1; 2; 3 ] (List.map as_int trace)

let test_truth_table_extraction () =
  let c = Gen.parity_tree 3 in
  let f = Sim.truth_table c ~output:0 in
  Alcotest.(check string) "parity tt" "01101001" (Logic.Truth_table.to_string f)

let test_of_truth_table () =
  let f = Logic.Truth_table.create 4 (fun m -> m mod 3 = 0) in
  let c = Gen.of_truth_table f in
  for m = 0 to 15 do
    Alcotest.(check bool) (Printf.sprintf "m=%d" m)
      (Logic.Truth_table.eval f m)
      (Sim.eval c (bits ~width:4 m)).(0)
  done

let test_of_truth_tables_sharing () =
  let f0 = Logic.Truth_table.var 3 0 in
  let f1 = Logic.Truth_table.var 3 0 in
  let c = Gen.of_truth_tables [ f0; f1 ] in
  (* Identical functions must share all logic. *)
  let (_, o0) = (Circuit.outputs c).(0) and (_, o1) = (Circuit.outputs c).(1) in
  Alcotest.(check int) "shared output node" o0 o1

let test_io_roundtrip () =
  let c = Gen.c17 () in
  let text = Io.to_string c in
  let c' = Io.of_string text in
  Alcotest.(check bool) "equivalent" true (Sim.equivalent_exhaustive c c');
  Alcotest.(check int) "same inputs" (Circuit.num_inputs c) (Circuit.num_inputs c')

let test_io_sequential_roundtrip () =
  let src = "INPUT(x)\nOUTPUT(q)\nq = DFF(d)\nnq = NOT(q)\nd = XOR(x, nq)\n" in
  (* The DFF D-input refers forward to a net defined later. *)
  (match Io.of_string src with
   | c ->
     Alcotest.(check int) "one dff" 1 (Circuit.num_dffs c)
   | exception Io.Parse_error msg -> Alcotest.fail msg)

let test_io_rejects_garbage () =
  Alcotest.check_raises "bad line" (Io.Parse_error "bad line: what is this")
    (fun () -> ignore (Io.of_string "what is this"))

let test_sweep_removes_dead () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let live = Circuit.add_gate ~name:"live" c Gate.And [ a; b ] in
  let _dead = Circuit.add_gate ~name:"dead" c Gate.Or [ a; b ] in
  Circuit.set_output c "y" live;
  let swept, _ = Circuit.sweep c in
  Alcotest.(check bool) "dead gone" true (Circuit.find_by_name swept "dead" = None);
  Alcotest.(check bool) "still works" true (Sim.eval swept [| true; true |]).(0)

let test_stats () =
  let c = Gen.c17 () in
  let st = Circuit.stats c in
  Alcotest.(check int) "gates" 6 st.Circuit.gates;
  Alcotest.(check int) "inputs" 5 st.Circuit.inputs;
  Alcotest.(check int) "outputs" 2 st.Circuit.outputs;
  Alcotest.(check bool) "area positive" true (st.Circuit.area > 0.0)

let test_fanouts () =
  let c = Gen.c17 () in
  let fo = Circuit.fanouts c in
  (* G11 (node 6) feeds G16 and G19. *)
  match Circuit.find_by_name c "G11" with
  | Some id -> Alcotest.(check int) "fanout of G11" 2 (List.length fo.(id))
  | None -> Alcotest.fail "G11 missing"

let test_signal_probabilities () =
  let c = Gen.parity_tree 4 in
  let rng = Rng.create 99 in
  let probs = Sim.signal_probabilities rng ~patterns:6300 c in
  let out = (Circuit.output_ids c).(0) in
  Alcotest.(check bool) "xor output balanced" true (Float.abs (probs.(out) -. 0.5) < 0.05)

let test_equivalence_helpers () =
  let a = Gen.ripple_adder 3 in
  let b = Gen.ripple_adder 3 in
  Alcotest.(check bool) "self equivalence" true (Sim.equivalent_exhaustive a b);
  let rng = Rng.create 5 in
  Alcotest.(check bool) "random equivalence" true (Sim.equivalent_random rng ~patterns:100 a b);
  let c = Gen.comparator 3 in
  ignore c;
  let d = Gen.parity_tree 7 in
  Alcotest.(check bool) "different circuits differ" false (Sim.equivalent_exhaustive a d)

(* ---- Zero-allocation simulation paths ---- *)

(* [Gate.eval_indexed] must agree with [Gate.eval] through a scattered
   fanin indirection, for every combinational kind and operand pattern. *)
let test_eval_indexed_agrees () =
  let kinds =
    [ (Gate.Buf, 1); (Gate.Not, 1); (Gate.And, 2); (Gate.Nand, 2);
      (Gate.Or, 2); (Gate.Nor, 2); (Gate.Xor, 2); (Gate.Xnor, 2);
      (Gate.Mux, 3); (Gate.Const true, 0); (Gate.Const false, 0) ]
  in
  List.iter
    (fun (kind, arity) ->
      for m = 0 to (1 lsl arity) - 1 do
        let operands = Array.init arity (fun i -> (m lsr i) land 1 = 1) in
        (* Scatter the operands through a larger value array. *)
        let values = Array.make 16 false in
        let fanins = Array.init arity (fun i -> (3 * i) + 2) in
        Array.iteri (fun i v -> values.(fanins.(i)) <- v) operands;
        Alcotest.(check bool)
          (Printf.sprintf "%s m=%d" (Gate.name kind) m)
          (Gate.eval kind operands)
          (Gate.eval_indexed kind fanins values);
        (* Word variant on the all-0/all-1 broadcast of the same operands. *)
        let wvalues = Array.make 16 0 in
        Array.iteri (fun i v -> wvalues.(fanins.(i)) <- (if v then -1 else 0)) operands;
        let wexpected = if Gate.eval kind operands then 1 else 0 in
        Alcotest.(check int)
          (Printf.sprintf "%s word m=%d" (Gate.name kind) m)
          wexpected
          (Gate.eval_word_indexed kind fanins wvalues land 1)
      done)
    kinds

(* [eval_all_into] must match [eval_all] while REUSING one buffer across
   patterns — including a sequential circuit where stale DFF slots from the
   previous pattern must not leak into a state-less evaluation. *)
let test_eval_all_into_matches () =
  let rng = Rng.create 314 in
  let comb = Gen.c17 () in
  let seq = Io.of_string "INPUT(x)\nOUTPUT(q)\nq = DFF(d)\nnq = NOT(q)\nd = XOR(x, nq)\n" in
  List.iter
    (fun c ->
      let ni = Circuit.num_inputs c in
      let into = Array.make (Circuit.node_count c) true in  (* poisoned buffer *)
      for _ = 1 to 40 do
        let inputs = Array.init ni (fun _ -> Rng.bool rng) in
        let fresh = Sim.eval_all c inputs in
        Sim.eval_all_into c inputs ~into;
        Alcotest.(check (array bool)) "into = fresh" fresh into
      done;
      (* With explicit state the DFF slots must reflect it. *)
      if Circuit.num_dffs c > 0 then begin
        let state = Array.map (fun _ -> true) (Circuit.dffs c) in
        let inputs = Array.make ni false in
        let fresh = Sim.eval_all ~state c inputs in
        Sim.eval_all_into ~state c inputs ~into;
        Alcotest.(check (array bool)) "stateful into = fresh" fresh into
      end)
    [ comb; seq ]

let test_eval_all_word_into_matches () =
  let rng = Rng.create 2718 in
  let c = Gen.alu 4 in
  let ni = Circuit.num_inputs c in
  let into = Array.make (Circuit.node_count c) (-1) in
  for _ = 1 to 20 do
    let inputs =
      Array.init ni (fun _ ->
          Int64.to_int (Rng.next_int64 rng) land 0x7FFFFFFFFFFFFFFF)
    in
    let fresh = Sim.eval_all_word c inputs in
    Sim.eval_all_word_into c inputs ~into;
    Alcotest.(check (array int)) "word into = fresh" fresh into
  done

(* Word-parallel equivalence must stay exact across the 63-pattern word
   boundary: 7 inputs = 128 patterns = two full words plus a 2-pattern
   tail. The almost-parity circuit differs from parity ONLY on the
   all-ones pattern — the very last bit of the tail word. *)
let test_word_equivalence_tail_pattern () =
  let a = Gen.parity_tree 7 in
  let b = Circuit.create () in
  let xs = List.init 7 (fun i -> Circuit.add_input ~name:(Printf.sprintf "x%d" i) b) in
  let p = Circuit.reduce b Gate.Xor xs in
  let all_and = Circuit.reduce b Gate.And xs in
  let out = Circuit.add_gate b Gate.Xor [ p; all_and ] in
  Circuit.set_output b "parity" out;
  Alcotest.(check bool) "tail difference found" false (Sim.equivalent_exhaustive a b);
  let a' = Gen.parity_tree 7 in
  Alcotest.(check bool) "self equal across words" true (Sim.equivalent_exhaustive a a');
  (* Random equivalence with a pattern count that is not a multiple of 63. *)
  let rng = Rng.create 6 in
  Alcotest.(check bool) "random equal" true (Sim.equivalent_random rng ~patterns:100 a a');
  (* The one distinguishing pattern has probability 1/128 per pattern;
     4000 random patterns miss it with probability ~2e-14. *)
  let rng = Rng.create 7 in
  Alcotest.(check bool) "random finds tail difference" false
    (Sim.equivalent_random rng ~patterns:4000 a b)

(* Region annotations: by-name membership survives sweep renumbering,
   round-trips through the pragma comment, and malformed pragmas stay
   plain comments. *)
let test_regions () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let w = Circuit.add_gate ~name:"w" c Gate.And [ a; b ] in
  let dead = Circuit.add_gate ~name:"dead" c Gate.Or [ a; b ] in
  let y = Circuit.add_gate ~name:"y" c Gate.Xor [ w; a ] in
  Circuit.set_output c "y" y;
  Circuit.annotate_region c ~region:"secret" [ w; y ];
  Circuit.annotate_region c ~region:"secret" [ y ];  (* idempotent *)
  Circuit.annotate_region c ~region:"doomed" [ dead ];
  Alcotest.(check (list string)) "names" [ "secret"; "doomed" ] (Circuit.region_names c);
  Alcotest.(check (list int)) "members" [ w; y ] (Circuit.region_members c "secret");
  let mask = Circuit.region_mask c "secret" in
  Alcotest.(check bool) "mask w" true mask.(w);
  Alcotest.(check bool) "mask a" false mask.(a);
  let swept, remap = Circuit.sweep c in
  Alcotest.(check (list int)) "members survive sweep"
    [ remap.(w); remap.(y) ]
    (Circuit.region_members swept "secret");
  Alcotest.(check (list int)) "dead member drops out" []
    (Circuit.region_members swept "doomed")

let test_region_io_roundtrip () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let w = Circuit.add_gate ~name:"w" c Gate.Nand [ a; b ] in
  let y = Circuit.add_gate ~name:"y" c Gate.Xor [ w; a ] in
  Circuit.set_output c "y" y;
  Circuit.annotate_region c ~region:"core" [ w; y ];
  let text = Io.to_string c in
  Alcotest.(check bool) "pragma emitted" true
    (String.length text > 0
    && List.exists
         (fun l -> l = "# region core : w y")
         (String.split_on_char '\n' text));
  let c' = Io.of_string text in
  Alcotest.(check (list string)) "names roundtrip" [ "core" ] (Circuit.region_names c');
  Alcotest.(check (list string)) "members roundtrip" [ "w"; "y" ]
    (List.map (Circuit.name c') (Circuit.region_members c' "core"));
  (* Malformed / legacy pragmas degrade to plain comments. *)
  let c2 = Io.of_string "INPUT(a)\nOUTPUT(y)\n# region broken\n# just a note\ny = BUF(a)\n" in
  Alcotest.(check (list string)) "malformed pragma ignored" [] (Circuit.region_names c2);
  (* Unknown member nets are located parse errors. *)
  (match Io.of_string_result "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n# region r : ghost\n" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "pragma with unknown net should fail")

let prop_random_dag_well_formed =
  QCheck.Test.make ~name:"random dags are well-formed" ~count:30
    QCheck.(int_bound 1000)
    (fun seed ->
      let c = Gen.random_dag ~seed ~inputs:8 ~gates:60 ~outputs:4 in
      Circuit.well_formed c)

let prop_io_roundtrip_random =
  QCheck.Test.make ~name:"io roundtrip preserves function" ~count:15
    QCheck.(int_bound 1000)
    (fun seed ->
      let c = Gen.random_dag ~seed ~inputs:6 ~gates:40 ~outputs:3 in
      let c' = Io.of_string (Io.to_string c) in
      Sim.equivalent_exhaustive c c')

let prop_sweep_preserves_function =
  QCheck.Test.make ~name:"sweep preserves function" ~count:15
    QCheck.(int_bound 1000)
    (fun seed ->
      let c = Gen.random_dag ~seed ~inputs:6 ~gates:40 ~outputs:3 in
      let swept, _ = Circuit.sweep c in
      Sim.equivalent_exhaustive c swept)

let () =
  Alcotest.run "netlist"
    [ ("circuit",
       [ Alcotest.test_case "build and eval" `Quick test_build_and_eval;
         Alcotest.test_case "all gate kinds" `Quick test_all_gate_kinds;
         Alcotest.test_case "sweep" `Quick test_sweep_removes_dead;
         Alcotest.test_case "stats" `Quick test_stats;
         Alcotest.test_case "fanouts" `Quick test_fanouts;
         Alcotest.test_case "regions" `Quick test_regions ]);
      ("sim",
       [ Alcotest.test_case "word matches scalar" `Quick test_word_sim_matches_scalar;
         Alcotest.test_case "sequential counter" `Quick test_sequential_counter;
         Alcotest.test_case "truth table extraction" `Quick test_truth_table_extraction;
         Alcotest.test_case "signal probabilities" `Quick test_signal_probabilities;
         Alcotest.test_case "equivalence helpers" `Quick test_equivalence_helpers;
         Alcotest.test_case "eval_indexed agrees" `Quick test_eval_indexed_agrees;
         Alcotest.test_case "eval_all_into matches" `Quick test_eval_all_into_matches;
         Alcotest.test_case "eval_all_word_into matches" `Quick test_eval_all_word_into_matches;
         Alcotest.test_case "word equivalence tail pattern" `Quick
           test_word_equivalence_tail_pattern ]);
      ("generators",
       [ Alcotest.test_case "c17 vectors" `Quick test_c17_reference_vectors;
         Alcotest.test_case "ripple adder exhaustive" `Quick test_ripple_adder;
         Alcotest.test_case "comparator" `Quick test_comparator;
         Alcotest.test_case "parity tree" `Quick test_parity_tree;
         Alcotest.test_case "mux tree" `Quick test_mux_tree;
         Alcotest.test_case "alu" `Quick test_alu;
         Alcotest.test_case "of_truth_table" `Quick test_of_truth_table;
         Alcotest.test_case "of_truth_tables sharing" `Quick test_of_truth_tables_sharing ]);
      ("io",
       [ Alcotest.test_case "roundtrip c17" `Quick test_io_roundtrip;
         Alcotest.test_case "sequential roundtrip" `Quick test_io_sequential_roundtrip;
         Alcotest.test_case "rejects garbage" `Quick test_io_rejects_garbage;
         Alcotest.test_case "region pragma roundtrip" `Quick test_region_io_roundtrip ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_random_dag_well_formed; prop_io_roundtrip_random; prop_sweep_preserves_function ]) ]
