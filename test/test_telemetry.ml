(* Tests for Eda_util.Telemetry: span nesting under the memory sink,
   counter aggregation determinism, JSONL round-trip fidelity, and the
   null-sink-emits-nothing guarantee the engines' always-on
   instrumentation depends on. *)

module T = Eda_util.Telemetry

(* A deterministic fake clock: each reading advances by 1.0. *)
let fake_clock () =
  let t = ref 0.0 in
  fun () ->
    let now = !t in
    t := now +. 1.0;
    now

let collect f =
  let sink, events = T.memory_sink () in
  let r = T.with_sink ~clock:(fake_clock ()) sink f in
  (r, events ())

(* --- spans -------------------------------------------------------- *)

let test_span_nesting () =
  let (), events =
    collect (fun () ->
        T.with_span "outer" (fun () ->
            T.with_span "inner_a" (fun () -> ());
            T.with_span "inner_b" (fun () -> T.note "mark")))
  in
  let starts = List.filter (fun e -> e.T.kind = T.Span_start) events in
  let ends = List.filter (fun e -> e.T.kind = T.Span_end) events in
  Alcotest.(check int) "three starts" 3 (List.length starts);
  Alcotest.(check int) "three ends" 3 (List.length ends);
  let find name = List.find (fun e -> e.T.name = name) starts in
  let outer = find "outer" and a = find "inner_a" and b = find "inner_b" in
  Alcotest.(check int) "outer is a root" 0 outer.T.parent;
  Alcotest.(check int) "inner_a under outer" outer.T.span a.T.parent;
  Alcotest.(check int) "inner_b under outer" outer.T.span b.T.parent;
  let mark = List.find (fun e -> e.T.kind = T.Point) events in
  Alcotest.(check int) "note attached to inner_b" b.T.span mark.T.span

let test_span_ids_strictly_increasing () =
  let (), events =
    collect (fun () ->
        for _ = 1 to 5 do
          T.with_span "s" (fun () -> ())
        done)
  in
  let ids =
    List.filter_map
      (fun e -> if e.T.kind = T.Span_start then Some e.T.span else None)
      events
  in
  Alcotest.(check (list int)) "ids 1..5" [ 1; 2; 3; 4; 5 ] ids

let test_span_duration_from_clock () =
  (* Fake clock ticks once at start and once at end: duration = interval. *)
  let (), events = collect (fun () -> T.with_span "timed" (fun () -> ())) in
  let e = List.find (fun e -> e.T.kind = T.Span_end) events in
  Alcotest.(check bool) "positive duration" true (e.T.value > 0.0)

let test_span_ends_on_exception () =
  let result, events =
    collect (fun () ->
        try T.with_span "boom" (fun () -> failwith "expected")
        with Failure _ -> `Raised)
  in
  Alcotest.(check bool) "exception propagated" true (result = `Raised);
  let e = List.find (fun e -> e.T.kind = T.Span_end) events in
  Alcotest.(check bool) "error attr recorded" true
    (List.mem_assoc "error" e.T.attrs)

(* --- counters / gauges / histograms -------------------------------- *)

let test_counter_aggregation_deterministic () =
  let run () =
    collect (fun () ->
        T.count "a" 3;
        T.count "b" 1;
        T.count "a" 4;
        T.count "zero" 0;
        (T.counter_totals (), T.counter_total "a"))
  in
  let (totals1, a1), events1 = run () in
  let (totals2, _), events2 = run () in
  Alcotest.(check int) "a total" 7 a1;
  Alcotest.(check bool) "totals identical across runs" true (totals1 = totals2);
  Alcotest.(check int) "same event count" (List.length events1) (List.length events2);
  (* Sorted by name, and zero increments still register. *)
  Alcotest.(check bool) "sorted with zero entry" true
    (totals1 = [ ("a", 7); ("b", 1); ("zero", 0) ]);
  (* But a zero increment emits no event. *)
  let counts = List.filter (fun e -> e.T.kind = T.Count) events1 in
  Alcotest.(check int) "only nonzero increments emitted" 3 (List.length counts)

let test_gauge_and_histogram () =
  let (last, moments), events =
    collect (fun () ->
        T.gauge "temp" 8.0;
        T.gauge "temp" 0.5;
        T.observe "delta" 1.0;
        T.observe "delta" 3.0;
        (T.gauge_last "temp", T.observed "delta"))
  in
  Alcotest.(check (option (float 1e-9))) "gauge keeps last" (Some 0.5) last;
  (match moments with
   | Some (n, mean, _) ->
     Alcotest.(check int) "two observations" 2 n;
     Alcotest.(check (float 1e-9)) "mean" 2.0 mean
   | None -> Alcotest.fail "no histogram recorded");
  (* Histogram summary is emitted once, at sink teardown. *)
  let hists = List.filter (fun e -> e.T.kind = T.Hist) events in
  Alcotest.(check int) "one hist summary" 1 (List.length hists)

(* --- null sink / disabled state ------------------------------------ *)

let test_null_sink_adds_no_events () =
  (* Instrumentation outside any sink, and under the null sink, must both
     be invisible: no events, no registry state, [active () = false]. *)
  T.with_span "orphan" (fun () -> T.count "orphan" 5);
  Alcotest.(check bool) "inactive outside with_sink" false (T.active ());
  Alcotest.(check int) "registry empty outside" 0 (T.counter_total "orphan");
  Alcotest.(check bool) "null sink reports inactive" false
    (T.with_sink T.null (fun () -> T.active ()));
  T.with_sink T.null (fun () -> T.with_span "hidden" (fun () -> T.count "h" 1));
  Alcotest.(check int) "null sink leaves no registry trace" 0 (T.counter_total "h");
  let (), events =
    collect (fun () ->
        Alcotest.(check bool) "active under memory sink" true (T.active ());
        T.with_span "seen" (fun () -> ()))
  in
  Alcotest.(check int) "only this sink's events recorded" 2 (List.length events)

(* --- JSONL round-trip ----------------------------------------------- *)

let test_json_value_roundtrip () =
  let open T.Json in
  let values =
    [ Null; JBool true; JBool false; JInt 0; JInt (-42); JInt max_int;
      JFloat 0.5; JFloat (-1.25e-3); JFloat 3.0; JStr ""; JStr "plain";
      JStr "esc \"q\" \\ \n \t \x01 end";
      JList [ JInt 1; JStr "two"; Null ];
      JObj [ ("k", JInt 1); ("nested", JObj [ ("x", JBool false) ]) ] ]
  in
  List.iter
    (fun v ->
      match parse (to_string v) with
      | Ok v' -> Alcotest.(check bool) ("roundtrip " ^ to_string v) true (v = v')
      | Error msg -> Alcotest.fail ("parse failed: " ^ msg))
    values

let test_json_unicode_roundtrip () =
  let open T.Json in
  (* BMP, multi-byte Latin, and astral (surrogate-pair) content. *)
  let s = "h\xc3\xa9llo \xe2\x87\x92 \xf0\x9f\x98\x80" in
  let encoded = to_string (JStr s) in
  String.iter
    (fun ch ->
      Alcotest.(check bool) "encoded output is pure ASCII" true (Char.code ch < 0x80))
    encoded;
  (match parse encoded with
   | Ok (JStr s') -> Alcotest.(check string) "unicode round-trips" s s'
   | Ok _ -> Alcotest.fail "parsed to a non-string"
   | Error msg -> Alcotest.fail ("parse failed: " ^ msg));
  (* A hand-written surrogate pair decodes to the astral code point. *)
  (match parse "\"\\uD83D\\uDE00\"" with
   | Ok (JStr got) -> Alcotest.(check string) "surrogate pair decodes" "\xf0\x9f\x98\x80" got
   | Ok _ -> Alcotest.fail "parsed to a non-string"
   | Error msg -> Alcotest.fail ("surrogate parse failed: " ^ msg));
  (* Unpaired surrogates are malformed JSON, not silent data. *)
  List.iter
    (fun bad ->
      match parse bad with
      | Ok _ -> Alcotest.fail ("accepted unpaired surrogate: " ^ bad)
      | Error _ -> ())
    [ "\"\\uD83D\""; "\"\\uD83Dx\""; "\"\\uDE00\"" ];
  (* Invalid UTF-8 bytes degrade to U+FFFD rather than corrupt output. *)
  match parse (to_string (JStr "ok\xffend")) with
  | Ok (JStr got) -> Alcotest.(check string) "lone 0xFF becomes U+FFFD" "ok\xef\xbf\xbdend" got
  | Ok _ -> Alcotest.fail "parsed to a non-string"
  | Error msg -> Alcotest.fail ("replacement parse failed: " ^ msg)

let test_json_rejects_garbage () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "{} trailing" ] in
  List.iter
    (fun s ->
      match T.Json.parse s with
      | Ok _ -> Alcotest.fail ("accepted garbage: " ^ s)
      | Error _ -> ())
    bad

let jsonl_of_run f =
  let sink, events = T.memory_sink () in
  T.with_sink ~clock:(fake_clock ()) sink f;
  let events = events () in
  (events, String.concat "\n" (List.map T.event_to_line events))

let instrumented_run () =
  T.with_span "root" ~attrs:[ ("design", T.Str "alu4"); ("bits", T.Int 4) ]
    (fun () ->
      T.with_span "stage_a" (fun () ->
          T.count "work" 3;
          T.note "checkpoint" ~attrs:[ ("ok", T.Bool true) ]);
      T.with_span "stage_b" (fun () ->
          T.gauge "level" 0.75;
          T.observe "sample" 2.0))

let test_jsonl_roundtrip_reconstructs () =
  let events, text = jsonl_of_run instrumented_run in
  (* Every line parses back to the event that produced it. *)
  let lines = String.split_on_char '\n' text in
  Alcotest.(check int) "one line per event" (List.length events) (List.length lines);
  List.iter2
    (fun e line ->
      match T.event_of_line line with
      | Ok e' -> Alcotest.(check bool) "event round-trips" true (e = e')
      | Error msg -> Alcotest.fail ("line did not parse: " ^ msg))
    events lines;
  (* The reconstructed trace matches one built from live events. *)
  match T.Trace.of_string text, T.Trace.of_events events with
  | Error msg, _ | _, Error msg -> Alcotest.fail ("trace rebuild failed: " ^ msg)
  | Ok from_text, Ok from_events ->
    Alcotest.(check int) "span count" from_events.T.Trace.span_count
      from_text.T.Trace.span_count;
    Alcotest.(check int) "event count" (List.length events)
      from_text.T.Trace.event_count;
    (match from_text.T.Trace.roots with
     | [ root ] ->
       Alcotest.(check string) "root name" "root" root.T.Trace.name;
       Alcotest.(check int) "two children" 2 (List.length root.T.Trace.children);
       Alcotest.(check (list string)) "children in start order"
         [ "stage_a"; "stage_b" ]
         (List.map (fun s -> s.T.Trace.name) root.T.Trace.children);
       let a = List.hd root.T.Trace.children in
       Alcotest.(check (list (pair string (float 1e-9)))) "stage_a counters"
         [ ("work", 3.0) ] a.T.Trace.counters
     | roots -> Alcotest.failf "expected one root, got %d" (List.length roots));
    Alcotest.(check bool) "counter totals survive" true
      (List.mem_assoc "work" from_text.T.Trace.counter_totals);
    Alcotest.(check bool) "hist summary survives" true
      (List.mem_assoc "sample" from_text.T.Trace.hists)

let test_trace_rejects_malformed () =
  (* Structurally broken traces must be an [Error] (the CI report step
     relies on this), not a silently-wrong profile. *)
  let end_without_start =
    "{\"kind\":\"span_end\",\"span\":7,\"parent\":0,\"name\":\"ghost\",\"time\":1.0,\"value\":1.0}"
  in
  (match T.Trace.of_string end_without_start with
   | Ok _ -> Alcotest.fail "accepted end-without-start"
   | Error _ -> ());
  (match T.Trace.of_string "not json at all" with
   | Ok _ -> Alcotest.fail "accepted non-JSON line"
   | Error _ -> ())

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_profile_prints () =
  let _, text = jsonl_of_run instrumented_run in
  match T.Trace.of_string text with
  | Error msg -> Alcotest.fail msg
  | Ok trace ->
    let rendered = Format.asprintf "%a" T.Trace.pp_profile trace in
    List.iter
      (fun needle ->
        Alcotest.(check bool) ("profile mentions " ^ needle) true
          (contains rendered needle))
      [ "root"; "stage_a"; "stage_b"; "work" ]

(* --- clock & GC cost model ------------------------------------------ *)

let test_monotonic_clock () =
  let clock = T.monotonic_clock () in
  let prev = ref (clock ()) in
  for _ = 1 to 1000 do
    let t = clock () in
    Alcotest.(check bool) "never decreases" true (t >= !prev);
    prev := t
  done;
  (* The default with_sink clock is wall time: a sleeping span still has
     positive duration (Sys.time, the old default, would report ~0). *)
  let sink, events = T.memory_sink () in
  T.with_sink sink (fun () -> T.with_span "sleep" (fun () -> Unix.sleepf 0.02));
  let e = List.find (fun e -> e.T.kind = T.Span_end) (events ()) in
  Alcotest.(check bool) "wall-clock duration covers the sleep" true (e.T.value >= 0.015)

let test_hist_min_max () =
  let range, events =
    collect (fun () ->
        Alcotest.(check (option (pair (float 1e-9) (float 1e-9))))
          "no range before observations" None (T.observed_range "delta");
        T.observe "delta" 4.0;
        T.observe "delta" (-1.0);
        T.observe "delta" 2.5;
        T.observed_range "delta")
  in
  Alcotest.(check (option (pair (float 1e-9) (float 1e-9))))
    "range tracks extremes" (Some (-1.0, 4.0)) range;
  let hist = List.find (fun e -> e.T.kind = T.Hist) events in
  let attr k = List.assoc k hist.T.attrs in
  Alcotest.(check bool) "hist summary carries min" true (attr "min" = T.Float (-1.0));
  Alcotest.(check bool) "hist summary carries max" true (attr "max" = T.Float 4.0);
  Alcotest.(check bool) "n/mean/std still present" true
    (List.mem_assoc "n" hist.T.attrs && List.mem_assoc "mean" hist.T.attrs
     && List.mem_assoc "std" hist.T.attrs)

let test_gc_span_attrs () =
  let run gc =
    let sink, events = T.memory_sink () in
    T.with_sink ~clock:(fake_clock ()) ~gc sink (fun () ->
        T.with_span "alloc" (fun () -> ignore (Sys.opaque_identity (Array.make 4096 0.0))));
    List.find (fun e -> e.T.kind = T.Span_end) (events ())
  in
  let off = run false in
  Alcotest.(check bool) "gc attrs absent by default" false
    (List.mem_assoc "gc.alloc_words" off.T.attrs);
  let on = run true in
  (match List.assoc_opt "gc.alloc_words" on.T.attrs with
   | Some (T.Float w) ->
     Alcotest.(check bool) "allocation delta covers the array" true (w >= 4096.0)
   | _ -> Alcotest.fail "gc.alloc_words missing with ~gc:true");
  Alcotest.(check bool) "major words attr present" true
    (List.mem_assoc "gc.major_words" on.T.attrs);
  (* The standalone snapshot API agrees with itself. *)
  let s0 = T.alloc_snapshot () in
  ignore (Sys.opaque_identity (Array.make 4096 0.0));
  let d = T.alloc_since s0 in
  Alcotest.(check bool) "alloc_since sees the allocation" true
    (d.T.alloc_words >= 4096.0)

(* --- capture / absorb ------------------------------------------------ *)

(* Deterministic per-task clocks: task [i] ticks from 1000*(i+1). *)
let task_clock i =
  let t = ref (1000.0 *. Float.of_int (i + 1)) in
  fun () ->
    let v = !t in
    t := v +. 1.0;
    v

let test_capture_absorb_merges () =
  let sink, events = T.memory_sink () in
  let buffers = ref [] in
  let total =
    T.with_sink ~clock:(fake_clock ()) ~task_clock sink (fun () ->
        T.with_span "batch" (fun () ->
            let spec = T.capture_spec () in
            (* Completion order 1 then 0 — absorb order must not care. *)
            T.capture_task spec ~task:1 ~domain:3
              ~into:(fun b -> buffers := (1, b) :: !buffers)
              (fun () ->
                T.with_span "work" (fun () -> T.count "done" 1);
                T.gauge "progress" 1.0);
            T.capture_task spec ~task:0 ~domain:2
              ~into:(fun b -> buffers := (0, b) :: !buffers)
              (fun () ->
                T.count "done" 1;
                T.gauge "progress" 0.5;
                T.observe "cost" 2.0);
            List.iter
              (fun (_, b) -> T.absorb b)
              (List.sort (fun (a, _) (b, _) -> compare a b) !buffers);
            T.counter_total "done"))
  in
  Alcotest.(check int) "registry counter merged once" 2 total;
  let events = events () in
  match T.Trace.of_events events with
  | Error msg -> Alcotest.fail ("merged trace is structurally invalid: " ^ msg)
  | Ok trace ->
    (match trace.T.Trace.roots with
     | [ batch ] ->
       Alcotest.(check string) "one root: the batch span" "batch" batch.T.Trace.name;
       let tasks =
         List.filter (fun sp -> sp.T.Trace.name = "pool.task") batch.T.Trace.children
       in
       Alcotest.(check int) "both worker spans reparented under batch" 2
         (List.length tasks);
       Alcotest.(check (list (option int))) "absorbed in task-index order"
         [ Some 0; Some 1 ]
         (List.map
            (fun sp ->
              match List.assoc_opt "task" sp.T.Trace.attrs with
              | Some (T.Int i) -> Some i
              | _ -> None)
            tasks);
       let t1 = List.nth tasks 1 in
       Alcotest.(check (list string)) "nested worker span survives remap" [ "work" ]
         (List.map (fun s -> s.T.Trace.name) t1.T.Trace.children)
     | roots -> Alcotest.failf "expected one root, got %d" (List.length roots));
    (* Counters merged once from buffer totals (stream Counts are data,
       not double-bumps); gauges land task-order-last-wins. *)
    Alcotest.(check (option (float 1e-9))) "counter total merged once" (Some 2.0)
      (List.assoc_opt "done" trace.T.Trace.counter_totals);
    Alcotest.(check (option (float 1e-9))) "gauge from highest task index" (Some 1.0)
      (List.assoc_opt "progress" trace.T.Trace.gauge_last);
    Alcotest.(check bool) "worker histogram reaches the hist summary" true
      (List.mem_assoc "cost" trace.T.Trace.hists)

let test_capture_crash_delivers_buffer () =
  let sink, events = T.memory_sink () in
  let delivered = ref None in
  let raised =
    T.with_sink ~clock:(fake_clock ()) ~task_clock sink (fun () ->
        T.with_span "batch" (fun () ->
            let spec = T.capture_spec () in
            let r =
              match
                T.capture_task spec ~task:0 ~domain:1
                  ~into:(fun b -> delivered := Some b)
                  (fun () -> failwith "worker crash")
              with
              | () -> false
              | exception Failure _ -> true
            in
            (match !delivered with
             | Some b -> T.absorb b
             | None -> Alcotest.fail "buffer not delivered on crash");
            r))
  in
  Alcotest.(check bool) "exception re-raised through capture" true raised;
  match T.Trace.of_events (events ()) with
  | Error msg -> Alcotest.fail ("crashed capture broke the trace: " ^ msg)
  | Ok trace ->
    (match T.Trace.find_spans trace "pool.task" with
     | [ sp ] ->
       Alcotest.(check bool) "pool.task span closed" true (sp.T.Trace.duration <> None);
       Alcotest.(check bool) "error attribute recorded" true
         (List.mem_assoc "error" sp.T.Trace.end_attrs)
     | l -> Alcotest.failf "expected one pool.task span, got %d" (List.length l))

(* --- trace analysis --------------------------------------------------- *)

(* root{a, b{c, d}} under the ticking fake clock: a/c/d last 1, b lasts
   5, root lasts 9. *)
let analysis_trace () =
  let (), events =
    collect (fun () ->
        T.with_span "root" (fun () ->
            T.with_span "a" (fun () -> ());
            T.with_span "b" (fun () ->
                T.with_span "c" (fun () -> ());
                T.with_span "d" (fun () -> ()))))
  in
  match T.Trace.of_events events with
  | Ok t -> t
  | Error msg -> Alcotest.fail msg

let test_critical_path () =
  let t = analysis_trace () in
  let path = T.Trace.critical_path t in
  Alcotest.(check (list string)) "descends the longest chain, ties earliest"
    [ "root"; "b"; "c" ]
    (List.map (fun sp -> sp.T.Trace.name) path);
  Alcotest.(check (list (float 1e-9))) "self times along the path" [ 3.0; 3.0; 1.0 ]
    (List.map T.Trace.self_time path);
  let rendered = Format.asprintf "%a" T.Trace.pp_critical_path t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("critical path mentions " ^ needle) true
        (contains rendered needle))
    [ "root"; "b"; "c"; "self" ]

let test_fold_stacks () =
  let t = analysis_trace () in
  Alcotest.(check (list (pair string (float 1e-9)))) "folded self times, path-sorted"
    [ ("root", 3.0); ("root;a", 1.0); ("root;b", 3.0); ("root;b;c", 1.0);
      ("root;b;d", 1.0) ]
    (T.Trace.fold_stacks t);
  let rendered = Format.asprintf "%a" T.Trace.pp_flame t in
  Alcotest.(check bool) "flame output in folded format" true
    (contains rendered "root;b;c 1000000")

let test_canonicalize () =
  let mk kind span parent name attrs =
    { T.kind; span; parent; name; time = 0.0; value = 0.0; attrs }
  in
  let events =
    [ mk T.Span_start 1 0 "pool.batch" [ ("label", T.Str "atpg"); ("domains", T.Int 8) ];
      mk T.Count 1 0 "pool.steals" [];
      mk T.Gauge 1 0 "pool.utilization" [];
      mk T.Point 1 0 "pool.domain" [ ("slot", T.Int 0); ("busy_s", T.Float 0.1) ];
      mk T.Count 1 0 "pool.tasks" [];
      mk T.Span_end 1 0 "pool.batch"
        [ ("gc.alloc_words", T.Float 10.0); ("gc.major_words", T.Float 2.0) ] ]
  in
  let canon = T.Trace.canonicalize events in
  Alcotest.(check (list string)) "scheduling events dropped, work kept"
    [ "pool.batch"; "pool.tasks"; "pool.batch" ]
    (List.map (fun e -> e.T.name) canon);
  List.iter
    (fun e ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " stripped") false (List.mem_assoc k e.T.attrs))
        [ "domains"; "domain"; "slot"; "busy_s"; "gc.alloc_words"; "gc.major_words" ])
    canon;
  Alcotest.(check bool) "deterministic attrs survive" true
    (List.mem_assoc "label" (List.hd canon).T.attrs)

(* --- trace diff ------------------------------------------------------- *)

let span_pair ?(attrs = []) id name dur =
  [ { T.kind = T.Span_start; span = id; parent = 0; name; time = 0.0; value = 0.0;
      attrs = [] };
    { T.kind = T.Span_end; span = id; parent = 0; name; time = dur; value = dur; attrs } ]

let count_ev name v =
  { T.kind = T.Count; span = 0; parent = 0; name; time = 0.0; value = v; attrs = [] }

let gauge_ev name v =
  { T.kind = T.Gauge; span = 0; parent = 0; name; time = 0.0; value = v; attrs = [] }

let trace_of events =
  match T.Trace.of_events events with
  | Ok t -> t
  | Error msg -> Alcotest.fail msg

let test_diff_same_trace_clean () =
  let events =
    span_pair 1 "solve" 1.0 @ [ count_ev "conflicts" 100.0; gauge_ev "coverage" 0.9 ]
  in
  let d = T.Trace.diff_traces ~base:(trace_of events) (trace_of events) in
  Alcotest.(check int) "no regressions on identical traces" 0 d.T.Trace.regressions;
  Alcotest.(check bool) "every verdict unchanged" true
    (List.for_all (fun e -> e.T.Trace.diff_verdict = T.Trace.Unchanged) d.T.Trace.entries)

let test_diff_classification () =
  let base =
    trace_of
      (span_pair 1 "solve" 1.0 @ span_pair 2 "gone" 0.5
      @ [ count_ev "conflicts" 100.0; gauge_ev "coverage" 0.9 ])
  in
  let run =
    trace_of
      (span_pair 1 "solve" 2.0 @ span_pair 2 "fresh" 0.5
      @ [ count_ev "conflicts" 90.0; gauge_ev "coverage" 0.2 ])
  in
  let d = T.Trace.diff_traces ~threshold:0.25 ~base run in
  let verdict m =
    (List.find (fun e -> e.T.Trace.metric = m) d.T.Trace.entries).T.Trace.diff_verdict
  in
  Alcotest.(check bool) "2x slower span regresses" true
    (verdict "span:solve" = T.Trace.Regression);
  Alcotest.(check bool) "span only in base is removed" true
    (verdict "span:gone" = T.Trace.Removed);
  Alcotest.(check bool) "span only in run is added" true
    (verdict "span:fresh" = T.Trace.Added);
  Alcotest.(check bool) "counter within threshold unchanged" true
    (verdict "counter:conflicts" = T.Trace.Unchanged);
  Alcotest.(check bool) "gauge shift is direction-free" true
    (verdict "gauge:coverage" = T.Trace.Changed);
  Alcotest.(check int) "exactly one regression" 1 d.T.Trace.regressions;
  (* The same slowdown under min_duration filtering is ignored. *)
  let filtered = T.Trace.diff_traces ~min_duration:5.0 ~base run in
  Alcotest.(check int) "min_duration swallows small spans" 0
    filtered.T.Trace.regressions;
  (* Counter blowups are regressions too. *)
  let noisy = trace_of [ count_ev "conflicts" 100.0 ] in
  let worse = trace_of [ count_ev "conflicts" 200.0 ] in
  let d2 = T.Trace.diff_traces ~base:noisy worse in
  Alcotest.(check int) "counter regression counted" 1 d2.T.Trace.regressions;
  let d3 = T.Trace.diff_traces ~base:worse noisy in
  Alcotest.(check int) "improvement is not a regression" 0 d3.T.Trace.regressions;
  let rendered = Format.asprintf "%a" T.Trace.pp_diff d in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("diff output mentions " ^ needle) true
        (contains rendered needle))
    [ "span:solve"; "REGRESSION"; "1 regression(s)" ]

let test_diff_counter_directions () =
  (* Optimization-health counters invert the usual direction: a drop in
     session reuse or dropped faults means the incremental fast path
     stopped engaging — that IS the regression — while a rise is an
     improvement; sat.groups_retired is a neutral workload descriptor. *)
  let base =
    trace_of
      [ count_ev "atpg.session_reused" 100.0;
        count_ev "atpg.faults_dropped" 50.0;
        count_ev "sat.groups_retired" 40.0 ]
  in
  let run =
    trace_of
      [ count_ev "atpg.session_reused" 10.0;
        count_ev "atpg.faults_dropped" 200.0;
        count_ev "sat.groups_retired" 10.0 ]
  in
  let d = T.Trace.diff_traces ~base run in
  let verdict m =
    (List.find (fun e -> e.T.Trace.metric = m) d.T.Trace.entries).T.Trace.diff_verdict
  in
  Alcotest.(check bool) "session-reuse collapse is a regression" true
    (verdict "counter:atpg.session_reused" = T.Trace.Regression);
  Alcotest.(check bool) "more faults dropped is an improvement" true
    (verdict "counter:atpg.faults_dropped" = T.Trace.Improvement);
  Alcotest.(check bool) "groups retired is direction-free" true
    (verdict "counter:sat.groups_retired" = T.Trace.Changed);
  Alcotest.(check int) "exactly the reuse collapse regresses" 1 d.T.Trace.regressions

(* --- budget utilization --------------------------------------------- *)

module Budget = Eda_util.Budget

let test_budget_utilization () =
  let b = Budget.create ~steps:10 () in
  Alcotest.(check (option (float 1e-9))) "fresh" (Some 0.0) (Budget.utilization b);
  Budget.tick ~cost:4 b;
  Alcotest.(check int) "consumed" 4 (Budget.consumed_steps b);
  Alcotest.(check (option (float 1e-9))) "40% used" (Some 0.4) (Budget.utilization b);
  Alcotest.(check (option (float 1e-9))) "60% left" (Some 0.6)
    (Budget.remaining_fraction b);
  Budget.tick ~cost:100 b;
  Alcotest.(check (option (float 1e-9))) "clamped at 1" (Some 1.0)
    (Budget.utilization b);
  (* Unlimited budgets have no meaningful utilization. *)
  let u = Budget.unlimited () in
  Budget.tick u;
  Alcotest.(check int) "steps still tracked" 1 (Budget.consumed_steps u);
  Alcotest.(check (option (float 1e-9))) "unlimited is None" None
    (Budget.utilization u)

let test_budget_sub_utilization_independent () =
  let root = Budget.create ~steps:100 () in
  let sub = Budget.sub ~steps:10 root in
  Budget.tick ~cost:5 sub;
  Alcotest.(check (option (float 1e-9))) "sub at 50%" (Some 0.5)
    (Budget.utilization sub);
  Alcotest.(check (option (float 1e-9))) "root at 5%" (Some 0.05)
    (Budget.utilization root)

let () =
  Alcotest.run "telemetry"
    [ ("spans",
       [ Alcotest.test_case "nesting" `Quick test_span_nesting;
         Alcotest.test_case "ids increase" `Quick test_span_ids_strictly_increasing;
         Alcotest.test_case "duration" `Quick test_span_duration_from_clock;
         Alcotest.test_case "exception safety" `Quick test_span_ends_on_exception ]);
      ("metrics",
       [ Alcotest.test_case "counter determinism" `Quick
           test_counter_aggregation_deterministic;
         Alcotest.test_case "gauge + histogram" `Quick test_gauge_and_histogram ]);
      ("null sink",
       [ Alcotest.test_case "adds no events" `Quick test_null_sink_adds_no_events ]);
      ("clock & gc",
       [ Alcotest.test_case "monotonic wall clock" `Quick test_monotonic_clock;
         Alcotest.test_case "hist min/max" `Quick test_hist_min_max;
         Alcotest.test_case "per-span gc deltas" `Quick test_gc_span_attrs ]);
      ("capture",
       [ Alcotest.test_case "absorb merges deterministically" `Quick
           test_capture_absorb_merges;
         Alcotest.test_case "crash delivers buffer" `Quick
           test_capture_crash_delivers_buffer ]);
      ("analysis",
       [ Alcotest.test_case "critical path" `Quick test_critical_path;
         Alcotest.test_case "fold stacks" `Quick test_fold_stacks;
         Alcotest.test_case "canonicalize" `Quick test_canonicalize ]);
      ("diff",
       [ Alcotest.test_case "same trace clean" `Quick test_diff_same_trace_clean;
         Alcotest.test_case "classification" `Quick test_diff_classification;
         Alcotest.test_case "counter directions" `Quick
           test_diff_counter_directions ]);
      ("jsonl",
       [ Alcotest.test_case "json value roundtrip" `Quick test_json_value_roundtrip;
         Alcotest.test_case "unicode roundtrip" `Quick test_json_unicode_roundtrip;
         Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
         Alcotest.test_case "trace roundtrip" `Quick test_jsonl_roundtrip_reconstructs;
         Alcotest.test_case "rejects malformed trace" `Quick test_trace_rejects_malformed;
         Alcotest.test_case "profile renders" `Quick test_profile_prints ]);
      ("budget",
       [ Alcotest.test_case "utilization" `Quick test_budget_utilization;
         Alcotest.test_case "sub-budget independence" `Quick
           test_budget_sub_utilization_independent ]) ]
