(* Tests for synthesis passes: function preservation, actual optimization,
   protection barriers, basis conversion, XOR re-association. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Gen = Netlist.Generators
module Sim = Netlist.Sim
module Rng = Eda_util.Rng

let gates c = (Circuit.stats c).Circuit.gates

let build_with_redundancy () =
  (* Circuit with constants, double negation, duplicate gates. *)
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let one = Circuit.add_const c true in
  let a_and_1 = Circuit.add_gate c Gate.And [ a; one ] in  (* = a *)
  let nn = Circuit.add_gate c Gate.Not [ Circuit.add_gate c Gate.Not [ b ] ] in  (* = b *)
  let x1 = Circuit.add_gate c Gate.Xor [ a_and_1; nn ] in
  let x2 = Circuit.add_gate c Gate.Xor [ a; b ] in  (* duplicate of x1 *)
  let y = Circuit.add_gate c Gate.Or [ x1; x2 ] in  (* = x1 *)
  Circuit.set_output c "y" y;
  c

let test_constprop_simplifies () =
  let c = build_with_redundancy () in
  let opt = Synth.Pass.apply "constant_propagation" c in
  Alcotest.(check bool) "equivalent" true (Sim.equivalent_exhaustive c opt);
  Alcotest.(check bool) "smaller" true (gates opt < gates c)

let test_constprop_folds_constants () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let zero = Circuit.add_const c false in
  let g = Circuit.add_gate c Gate.And [ a; zero ] in
  let h = Circuit.add_gate c Gate.Or [ g; a ] in  (* = a *)
  Circuit.set_output c "y" h;
  let opt = Synth.Pass.apply "constant_propagation" c in
  Alcotest.(check bool) "equivalent" true (Sim.equivalent_exhaustive c opt);
  Alcotest.(check int) "all logic folded" 0 (gates opt)

let test_constprop_xor_rules () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let x = Circuit.add_gate c Gate.Xor [ a; a ] in  (* = 0 *)
  let one = Circuit.add_const c true in
  let y = Circuit.add_gate c Gate.Xnor [ x; one ] in  (* = x = 0... xnor(0,1)=0 *)
  Circuit.set_output c "y" y;
  let opt = Synth.Pass.apply "constant_propagation" c in
  Alcotest.(check bool) "equivalent" true (Sim.equivalent_exhaustive c opt);
  Alcotest.(check int) "fully constant" 0 (gates opt)

let test_strash_merges_duplicates () =
  let c = build_with_redundancy () in
  let opt = Synth.Pass.apply "strash" c in
  Alcotest.(check bool) "equivalent" true (Sim.equivalent_exhaustive c opt)

let test_strash_commutative () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let g1 = Circuit.add_gate c Gate.And [ a; b ] in
  let g2 = Circuit.add_gate c Gate.And [ b; a ] in
  let y = Circuit.add_gate c Gate.Xor [ g1; g2 ] in  (* = 0 after merge *)
  Circuit.set_output c "y" y;
  let opt = Synth.Pass.apply "strash" c in
  Alcotest.(check bool) "equivalent" true (Sim.equivalent_exhaustive c opt);
  (* After strash the two ANDs merge; constprop then kills the XOR. *)
  let opt2 = Synth.Pass.apply "constant_propagation" opt in
  Alcotest.(check int) "xor(x,x) collapsed" 0 (gates opt2)

let test_optimize_random_dags () =
  for seed = 0 to 14 do
    let c = Gen.random_dag ~seed ~inputs:6 ~gates:40 ~outputs:3 in
    let opt = Synth.Flow.optimize c in
    Alcotest.(check bool) (Printf.sprintf "seed %d equivalent" seed) true
      (Sim.equivalent_exhaustive c opt);
    Alcotest.(check bool) (Printf.sprintf "seed %d not larger" seed) true
      (gates opt <= gates c)
  done

let test_basis_conversion () =
  for seed = 20 to 30 do
    let c = Gen.random_dag ~seed ~inputs:5 ~gates:30 ~outputs:2 in
    let axn = Synth.Pass.apply "to_and_xor_not" c in
    Alcotest.(check bool) (Printf.sprintf "seed %d in basis" seed) true (Synth.Basis.in_basis axn);
    Alcotest.(check bool) (Printf.sprintf "seed %d equivalent" seed) true
      (Sim.equivalent_exhaustive c axn)
  done

let test_basis_mux () =
  let c = Gen.mux_tree 2 in
  let axn = Synth.Pass.apply "to_and_xor_not" c in
  Alcotest.(check bool) "in basis" true (Synth.Basis.in_basis axn);
  Alcotest.(check bool) "equivalent" true (Sim.equivalent_exhaustive c axn)

let test_xor_reassoc_preserves_function () =
  for seed = 40 to 50 do
    let c = Gen.random_dag ~seed ~inputs:6 ~gates:40 ~outputs:3 in
    let r = Synth.Xor_reassoc.run c in
    Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true (Sim.equivalent_exhaustive c r)
  done

let test_xor_reassoc_regroups () =
  (* Chain (((p1 ^ r) ^ p2) ^ p3) with p_i sharing input a: the pass must
     regroup the products adjacently, changing the intermediate wires. *)
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b1 = Circuit.add_input ~name:"b1" c in
  let b2 = Circuit.add_input ~name:"b2" c in
  let b3 = Circuit.add_input ~name:"b3" c in
  let r = Circuit.add_input ~name:"r" c in
  let p1 = Circuit.add_gate c Gate.And [ a; b1 ] in
  let p2 = Circuit.add_gate c Gate.And [ a; b2 ] in
  let p3 = Circuit.add_gate c Gate.And [ a; b3 ] in
  let t1 = Circuit.add_gate c Gate.Xor [ p1; r ] in
  let t2 = Circuit.add_gate c Gate.Xor [ t1; p2 ] in
  let y = Circuit.add_gate c Gate.Xor [ t2; p3 ] in
  Circuit.set_output c "y" y;
  let reassoc = Synth.Xor_reassoc.run c in
  Alcotest.(check bool) "equivalent" true (Sim.equivalent_exhaustive c reassoc);
  (* The first XOR of the rebuilt chain must combine two AND leaves (the
     factoring-friendly grouping), not an AND with the random input. *)
  let first_xor =
    let found = ref None in
    for i = 0 to Circuit.node_count reassoc - 1 do
      if !found = None && Circuit.kind reassoc i = Gate.Xor then found := Some i
    done;
    Option.get !found
  in
  let fanin_kinds =
    Array.map (fun f -> Circuit.kind reassoc f) (Circuit.fanins reassoc first_xor)
  in
  Alcotest.(check bool) "first xor combines two products" true
    (Array.for_all (fun k -> k = Gate.And) fanin_kinds)

let test_xor_reassoc_protection () =
  (* With every net protected, the circuit structure is unchanged. *)
  let masked = Sidechannel.Isw.transform (Sidechannel.Leakage.private_and_source ()) in
  let before = Circuit.node_count masked.Sidechannel.Isw.circuit in
  let after =
    Synth.Xor_reassoc.run ~protect:Sidechannel.Isw.protected_name masked.Sidechannel.Isw.circuit
  in
  (* Protected XOR chains are kept verbatim: same node count post sweep. *)
  Alcotest.(check int) "structure preserved" before (Circuit.node_count after)

let test_balanced_strategy_reduces_depth () =
  let c = Circuit.create () in
  let xs = List.init 16 (fun i -> Circuit.add_input ~name:(Printf.sprintf "x%d" i) c) in
  let y = Circuit.reduce_chain c Gate.Xor xs in
  Circuit.set_output c "y" y;
  let before_depth = Timing.Sta.depth c in
  let balanced = Synth.Xor_reassoc.run ~strategy:Synth.Xor_reassoc.Balanced c in
  Alcotest.(check bool) "equivalent" true (Sim.equivalent_exhaustive c balanced);
  Alcotest.(check bool) "depth reduced" true (Timing.Sta.depth balanced < before_depth);
  Alcotest.(check int) "log depth" 4 (Timing.Sta.depth balanced)

let test_ppa_model () =
  let c = Gen.alu 4 in
  let p = Synth.Flow.ppa c in
  Alcotest.(check bool) "area positive" true (p.Synth.Flow.area > 0.0);
  Alcotest.(check bool) "delay positive" true (p.Synth.Flow.delay_ps > 0.0);
  Alcotest.(check bool) "gate count sane" true (p.Synth.Flow.gate_count = gates c)

let test_optimize_secure_preserves_function () =
  let masked = Sidechannel.Isw.transform (Sidechannel.Leakage.private_and_source ()) in
  let c = masked.Sidechannel.Isw.circuit in
  let opt = Synth.Flow.optimize_secure ~protect:Sidechannel.Isw.protected_name c in
  Alcotest.(check bool) "equivalent" true (Sim.equivalent_exhaustive c opt)

(* --- pass manager / pipeline ------------------------------------------- *)

module Masking = Synth.Masking
module Pipeline = Synth.Pipeline
module Bench_gen = Netlist.Bench_gen

(* The hardcoded sequences the recipes replaced, kept verbatim from the
   pre-pass-manager Flow for the differential test below. *)
module Legacy = struct
  [@@@alert "-deprecated"]

  let optimize ?(reassoc = true) c =
    let step c =
      let c = Synth.Rewrite.constant_propagation c in
      let c = Synth.Rewrite.strash c in
      if reassoc then Synth.Xor_reassoc.run c else c
    in
    let rec loop c rounds =
      if rounds = 0 then c
      else begin
        let c' = step c in
        if (Circuit.stats c').Circuit.gates >= (Circuit.stats c).Circuit.gates then c'
        else loop c' (rounds - 1)
      end
    in
    loop c 4

  let optimize_secure ~protect c =
    let c = Synth.Rewrite.constant_propagation ~protect c in
    let c = Synth.Rewrite.strash ~protect c in
    Synth.Xor_reassoc.run ~protect c
end

let fp = Bench_gen.fingerprint

let differential_workloads () =
  [ ("c432", Bench_gen.c432_like ~seed:3 ~scale:1 ());
    ("c880", Bench_gen.c880_like ~seed:7 ~width:8 ());
    ("layered", Bench_gen.layered ~seed:11 ~inputs:12 ~layers:6 ~width:24 ()) ]

let test_pipeline_matches_legacy () =
  List.iter
    (fun (nm, c) ->
      List.iter
        (fun reassoc ->
          let tag = Printf.sprintf "%s reassoc=%b" nm reassoc in
          Alcotest.(check string) tag
            (fp (Legacy.optimize ~reassoc c))
            (fp (Synth.Flow.optimize ~reassoc c)))
        [ true; false ])
    (differential_workloads ())

let test_pipeline_matches_legacy_secure () =
  let masked = Sidechannel.Isw.transform (Sidechannel.Leakage.private_and_source ()) in
  let c = masked.Sidechannel.Isw.circuit in
  let protect = Sidechannel.Isw.protected_name in
  Alcotest.(check string) "secure flow bit-identical"
    (fp (Legacy.optimize_secure ~protect c))
    (fp (Synth.Flow.optimize_secure ~protect c))

let test_fixed_point_bounded () =
  (* The optimize recipe is Fixed_point{max_rounds=4} over three passes:
     the runner can execute at most 12 passes, and the observe sequence
     numbers every one of them. *)
  List.iter
    (fun (nm, c) ->
      let count = ref 0 and last = ref 0 in
      ignore
        (Pipeline.run
           ~observe:(fun ~seq ~pass:_ _ ->
             incr count;
             last := seq)
           (Pipeline.get "optimize") c);
      Alcotest.(check bool) (nm ^ " ran at least one round") true (!count >= 3);
      Alcotest.(check bool) (nm ^ " bounded by 4 rounds x 3 passes") true (!count <= 12);
      Alcotest.(check int) (nm ^ " seq is dense") !count !last)
    (differential_workloads ())

let test_observed_ir_lint_clean () =
  (* Every intermediate circuit --print-ir-after could dump is lint-clean. *)
  let c = Bench_gen.c880_like ~seed:2 ~width:8 () in
  let seen = ref 0 in
  ignore
    (Pipeline.run
       ~observe:(fun ~seq ~pass ir ->
         incr seen;
         match Netlist.Lint.errors ir with
         | [] -> ()
         | issue :: _ ->
           Alcotest.failf "IR after %s (step %d): %s" pass seq (Netlist.Lint.describe issue))
       (Pipeline.get "optimize") c);
  Alcotest.(check bool) "observed the intermediate circuits" true (!seen >= 3)

let test_budget_stops_pipeline () =
  let c = Bench_gen.c432_like ~seed:5 ~scale:1 () in
  let budget = Eda_util.Budget.create ~steps:2 () in
  let count = ref 0 in
  ignore
    (Pipeline.run ~budget ~observe:(fun ~seq:_ ~pass:_ _ -> incr count)
       (Pipeline.get "optimize") c);
  Alcotest.(check int) "stopped after two passes" 2 !count

let test_pass_registry_errors () =
  Alcotest.(check bool) "find on unknown name" true (Synth.Pass.find "no_such_pass" = None);
  (try
     ignore (Synth.Pass.get "no_such_pass");
     Alcotest.fail "get should raise on unknown pass"
   with Invalid_argument _ -> ());
  (try
     Synth.Pass.register (Synth.Pass.simple ~name:"strash" ~doc:"duplicate" Fun.id);
     Alcotest.fail "register should raise on duplicate name"
   with Invalid_argument _ -> ());
  (try
     ignore (Pipeline.get "no_such_recipe");
     Alcotest.fail "get should raise on unknown recipe"
   with Invalid_argument _ -> ());
  let failing =
    Synth.Pass.make ~name:"always_fails" ~doc:"test-only"
      ~check:(fun _ _ -> Error "nope")
      (fun _ c -> c)
  in
  match Synth.Pass.run Synth.Pass.default_ctx failing (Gen.c17 ()) with
  | _ -> Alcotest.fail "expected Check_failed"
  | exception Synth.Pass.Check_failed { pass; msg } ->
    Alcotest.(check string) "pass name" "always_fails" pass;
    Alcotest.(check string) "check message" "nope" msg

(* --- mask insertion ----------------------------------------------------- *)

let test_mask_insertion_deterministic () =
  (* Pure function of (circuit, params): bit-identical across repeat runs
     and across pool sizes 1/2/8. *)
  let c = Gen.ripple_adder 4 in
  let run ?pool () =
    Synth.Pass.apply ?pool ~params:[ ("shares", "3"); ("seed", "9") ] "mask_insertion" c
  in
  let base = fp (run ()) in
  Alcotest.(check string) "repeat run" base (fp (run ()));
  List.iter
    (fun n ->
      Eda_util.Pool.with_pool ~num_domains:n (fun pool ->
          Alcotest.(check string) (Printf.sprintf "%d domains" n) base (fp (run ~pool ()))))
    [ 2; 8 ];
  let other = fp (Synth.Pass.apply ~params:[ ("shares", "3"); ("seed", "10") ] "mask_insertion" c) in
  Alcotest.(check bool) "seed changes the randomness wiring" true (base <> other)

let region_host () =
  (* d --------------.
     a -&- x(core) -xor- y(core) -not- z      outputs y, z *)
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let d = Circuit.add_input ~name:"d" c in
  let x = Circuit.add_gate c Gate.And [ a; b ] in
  let y = Circuit.add_gate c Gate.Xor [ x; d ] in
  let z = Circuit.add_gate c Gate.Not [ y ] in
  Circuit.set_output c "y" y;
  Circuit.set_output c "z" z;
  Circuit.annotate_region c ~region:"core" [ x; y ];
  c

let outputs_by_name c vec =
  let outs = Netlist.Sim.eval c vec in
  List.mapi (fun k (nm, _) -> (nm, outs.(k))) (Array.to_list (Circuit.outputs c))

let test_mask_region_preserves_function () =
  List.iter
    (fun style ->
      List.iter
        (fun shares ->
          let c = region_host () in
          let m = Masking.mask_region ~shares ~style ~seed:3 c ~region:"core" in
          (match Netlist.Lint.errors m with
           | [] -> ()
           | issue :: _ -> Alcotest.failf "masked host lint: %s" (Netlist.Lint.describe issue));
          let rng = Rng.create (97 + shares) in
          for v = 0 to 7 do
            let values =
              [ ("a", v land 1 > 0); ("b", v land 2 > 0); ("d", v land 4 > 0) ]
            in
            let expect =
              outputs_by_name c
                (Array.map (fun id -> List.assoc (Circuit.name c id) values) (Circuit.inputs c))
            in
            (* Several fresh draws of the gadget randomness each. *)
            for _ = 1 to 4 do
              let vec =
                Array.map
                  (fun id ->
                    let nm = Circuit.name m id in
                    if Masking.protected_name nm then Rng.bool rng else List.assoc nm values)
                  (Circuit.inputs m)
              in
              List.iter
                (fun (nm, bit) ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s shares=%d v=%d out %s" (Masking.string_of_style style)
                       shares v nm)
                    bit
                    (List.assoc nm (outputs_by_name m vec)))
                expect
            done
          done)
        [ 2; 3 ])
    [ Masking.Isw; Masking.Dom ]

let test_mask_region_gadget_counts () =
  (* The region has one AND: ISW at s shares adds C(s,2) fresh random
     inputs for it, plus (s-1) encoder randoms per boundary wire (a, b, d)
     to share the region inputs. *)
  List.iter
    (fun shares ->
      let c = region_host () in
      let m = Masking.mask_region ~shares ~style:Masking.Isw ~seed:1 c ~region:"core" in
      let randoms =
        Array.to_list (Circuit.inputs m)
        |> List.filter (fun id -> Masking.protected_name (Circuit.name m id))
      in
      let expected = (shares * (shares - 1) / 2) + (3 * (shares - 1)) in
      Alcotest.(check int)
        (Printf.sprintf "randomness inputs at %d shares" shares)
        expected (List.length randoms))
    [ 2; 3; 8 ]

let prop_optimize_never_changes_function =
  QCheck.Test.make ~name:"optimize preserves function" ~count:12
    QCheck.(int_bound 900)
    (fun seed ->
      let c = Gen.random_dag ~seed ~inputs:5 ~gates:35 ~outputs:2 in
      Sim.equivalent_exhaustive c (Synth.Flow.optimize c))

let prop_basis_preserves_function =
  QCheck.Test.make ~name:"basis conversion preserves function" ~count:12
    QCheck.(int_bound 900)
    (fun seed ->
      let c = Gen.random_dag ~seed ~inputs:5 ~gates:35 ~outputs:2 in
      Sim.equivalent_exhaustive c (Synth.Pass.apply "to_and_xor_not" c))

let () =
  Alcotest.run "synth"
    [ ("rewrite",
       [ Alcotest.test_case "constprop simplifies" `Quick test_constprop_simplifies;
         Alcotest.test_case "constprop folds constants" `Quick test_constprop_folds_constants;
         Alcotest.test_case "constprop xor rules" `Quick test_constprop_xor_rules;
         Alcotest.test_case "strash merges duplicates" `Quick test_strash_merges_duplicates;
         Alcotest.test_case "strash commutative" `Quick test_strash_commutative;
         Alcotest.test_case "optimize random dags" `Quick test_optimize_random_dags ]);
      ("basis",
       [ Alcotest.test_case "random dags" `Quick test_basis_conversion;
         Alcotest.test_case "mux trees" `Quick test_basis_mux ]);
      ("xor_reassoc",
       [ Alcotest.test_case "preserves function" `Quick test_xor_reassoc_preserves_function;
         Alcotest.test_case "regroups shared products" `Quick test_xor_reassoc_regroups;
         Alcotest.test_case "respects protection" `Quick test_xor_reassoc_protection;
         Alcotest.test_case "balanced reduces depth" `Quick test_balanced_strategy_reduces_depth ]);
      ("flow",
       [ Alcotest.test_case "ppa model" `Quick test_ppa_model;
         Alcotest.test_case "secure flow preserves function" `Quick test_optimize_secure_preserves_function ]);
      ("pipeline",
       [ Alcotest.test_case "matches legacy optimize" `Quick test_pipeline_matches_legacy;
         Alcotest.test_case "matches legacy optimize_secure" `Quick test_pipeline_matches_legacy_secure;
         Alcotest.test_case "fixed point bounded" `Quick test_fixed_point_bounded;
         Alcotest.test_case "observed IR lint-clean" `Quick test_observed_ir_lint_clean;
         Alcotest.test_case "budget stops pipeline" `Quick test_budget_stops_pipeline;
         Alcotest.test_case "registry errors" `Quick test_pass_registry_errors ]);
      ("masking",
       [ Alcotest.test_case "deterministic across pools" `Quick test_mask_insertion_deterministic;
         Alcotest.test_case "region preserves function" `Quick test_mask_region_preserves_function;
         Alcotest.test_case "region randomness budget" `Quick test_mask_region_gadget_counts ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_optimize_never_changes_function; prop_basis_preserves_function ]) ]
