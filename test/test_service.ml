(* The supervised job engine and its chaos property: every job — however
   it crashes, stalls, flakes, or feeds on corrupt input — ends in
   exactly one classified terminal state, no exception escapes, the pool
   stays usable, and the whole report is bit-identical at 1, 2 and 8
   domains. *)

module Budget = Eda_util.Budget
module Eda_error = Eda_util.Eda_error
module Pool = Eda_util.Pool
module Rng = Eda_util.Rng
module Chaos = Fault.Chaos
module Gen = Netlist.Generators
module Io = Netlist.Io
module Flow = Secure_eda.Flow
module Job = Service.Job
module Sup = Service.Supervisor

(* Deterministic harness: no real sleeping, no wall-clock budgets. *)
let test_config = { Sup.default_config with Sup.sleep = ignore }

let ok_work note = fun (_ : Budget.t) -> Ok note

let permanent_work () =
  fun (_ : Budget.t) ->
    Error (Eda_error.Invalid_input { what = "job input"; msg = "born broken" })

let job ?klass ?policy name work = Job.create ?klass ?policy ~name work

let no_backoff = { Job.default_policy with Job.backoff_base_s = 0.0 }

let state_of report name =
  let o =
    List.find (fun o -> o.Sup.job.Job.name = name) report.Sup.outcomes
  in
  (o.Sup.state, o.Sup.attempts, o.Sup.backoffs)

(* --- parallel_try_map: per-task crash isolation -------------------------- *)

let test_try_map_isolates_crashes () =
  Pool.with_pool ~num_domains:2 (fun p ->
      let results =
        Pool.parallel_try_map p
          ~f:(fun _ctx i -> if i mod 3 = 0 then failwith (Printf.sprintf "task %d" i) else i * 10)
          (Array.init 9 (fun i -> i))
      in
      Array.iteri
        (fun i r ->
          match r with
          | Some (Ok v) when i mod 3 <> 0 ->
            Alcotest.(check int) (Printf.sprintf "task %d value" i) (i * 10) v
          | Some (Error (Failure msg)) when i mod 3 = 0 ->
            Alcotest.(check string) "exception preserved" (Printf.sprintf "task %d" i) msg
          | _ -> Alcotest.failf "task %d: unexpected slot" i)
        results;
      (* A batch full of crashes must not wedge the pool. *)
      let after = Pool.parallel_map p ~f:(fun _ctx x -> x + 1) [| 1; 2; 3 |] in
      Alcotest.(check bool) "pool survives" true (after = [| Some 2; Some 3; Some 4 |]))

let test_try_map_budget_skips_are_none () =
  Pool.with_pool ~num_domains:2 (fun p ->
      let b = Budget.create ~steps:0 () in
      let results =
        Pool.parallel_try_map ~budget:b p ~f:(fun _ctx i -> i) (Array.init 64 (fun i -> i))
      in
      Alcotest.(check bool) "exhausted budget skips (some) tasks" true
        (Array.exists (fun r -> r = None) results);
      Alcotest.(check bool) "no fabricated results" true
        (Array.for_all (function None | Some (Ok _) -> true | Some (Error _) -> false) results))

(* --- supervisor unit behavior ------------------------------------------- *)

let test_all_success () =
  let report =
    Sup.run ~config:test_config (Rng.create 1)
      (List.init 5 (fun i -> job (Printf.sprintf "ok%d" i) (ok_work "fine")))
  in
  Alcotest.(check int) "all done" 5 report.Sup.succeeded;
  Alcotest.(check int) "none failed" 0 report.Sup.failed;
  Alcotest.(check int) "no retries" 0 report.Sup.retries;
  List.iter
    (fun o ->
      (match o.Sup.state with
       | Sup.Done "fine" -> ()
       | st -> Alcotest.failf "unexpected state %s" (Sup.describe_state st));
      Alcotest.(check int) "one attempt" 1 o.Sup.attempts)
    report.Sup.outcomes

let test_flaky_job_retried_to_success () =
  let policy = { Job.default_policy with Job.max_retries = 3 } in
  let report =
    Sup.run ~config:test_config (Rng.create 7)
      [ job ~policy "flaky" (Chaos.flaky_work ~fails:2 ()) ]
  in
  (match state_of report "flaky" with
   | Sup.Done note, 3, backoffs ->
     Alcotest.(check string) "succeeded on the third call" "succeeded on call 3" note;
     Alcotest.(check int) "one backoff per retry" 2 (List.length backoffs);
     (* The schedule is exponential-with-jitter from the job's own split
        stream: recompute it independently. *)
     let stream = (Rng.split (Rng.create 7) 1).(0) in
     let expect =
       List.init 2 (fun k ->
           Float.min policy.Job.backoff_max_s
             (policy.Job.backoff_base_s *. (2.0 ** Float.of_int k))
           *. (1.0 +. (policy.Job.jitter *. Rng.float stream)))
     in
     Alcotest.(check bool) "backoff schedule reproducible" true (backoffs = expect);
     Alcotest.(check bool) "waits grow" true
       (match backoffs with [ a; b ] -> b > a | _ -> false)
   | st, n, _ -> Alcotest.failf "flaky: %s after %d attempts" (Sup.describe_state st) n);
  Alcotest.(check int) "retries counted" 2 report.Sup.retries

let test_permanent_failure_not_retried () =
  let report =
    Sup.run ~config:test_config (Rng.create 1) [ job "broken" (permanent_work ()) ]
  in
  match state_of report "broken" with
  | Sup.Failed { severity = Sup.Permanent; attempts = 1; _ }, 1, [] -> ()
  | st, n, _ -> Alcotest.failf "broken: %s after %d attempts" (Sup.describe_state st) n

let test_crash_contained_and_retried () =
  (* A raising job is a transient engine failure: retried, then Failed —
     never an escaped exception. Same story with and without a pool. *)
  let run pool =
    Sup.run ?pool ~config:test_config (Rng.create 3)
      [ job ~policy:{ no_backoff with Job.max_retries = 2 } "crasher"
          (Chaos.raising_work ~msg:"boom" ()) ]
  in
  let check report =
    match state_of report "crasher" with
    | Sup.Failed { error = Eda_error.Engine_failure { msg; _ };
                   severity = Sup.Transient; attempts = 3 }, 3, _ ->
      let contains_boom =
        let n = String.length msg in
        let rec scan i = i + 4 <= n && (String.sub msg i 4 = "boom" || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) "exception text preserved" true contains_boom
    | st, n, _ -> Alcotest.failf "crasher: %s after %d attempts" (Sup.describe_state st) n
  in
  check (run None);
  Pool.with_pool ~num_domains:2 (fun p -> check (run (Some p)))

let test_quarantine_trips_per_class () =
  (* Serial waves (wave_size 1): two permanent failures in class "bad"
     trip the breaker; the third "bad" job is refused without dispatch,
     while the "good" class is untouched. *)
  let config = { test_config with Sup.wave_size = 1; quarantine_after = 2 } in
  let report =
    Sup.run ~config (Rng.create 1)
      [ job ~klass:"bad" "bad1" (permanent_work ());
        job ~klass:"bad" "bad2" (permanent_work ());
        job ~klass:"good" "good1" (ok_work "fine");
        job ~klass:"bad" "bad3" (permanent_work ()) ]
  in
  (match state_of report "bad3" with
   | Sup.Quarantined { klass = "bad"; strikes = 2 }, 0, [] -> ()
   | st, n, _ -> Alcotest.failf "bad3: %s after %d attempts" (Sup.describe_state st) n);
  (match state_of report "good1" with
   | Sup.Done _, 1, _ -> ()
   | st, _, _ -> Alcotest.failf "good1: %s" (Sup.describe_state st));
  Alcotest.(check int) "quarantined count" 1 report.Sup.quarantined;
  Alcotest.(check int) "failed count" 2 report.Sup.failed

let test_success_resets_strikes () =
  (* fail, fail, succeed, fail: the success resets the class counter, so
     quarantine_after=3 never trips. *)
  let config = { test_config with Sup.wave_size = 1; quarantine_after = 3 } in
  let report =
    Sup.run ~config (Rng.create 1)
      [ job ~policy:no_backoff "f1" (permanent_work ());
        job ~policy:no_backoff "f2" (permanent_work ());
        job "ok" (ok_work "fine");
        job ~policy:no_backoff "f3" (permanent_work ()) ]
  in
  Alcotest.(check int) "no quarantine" 0 report.Sup.quarantined;
  Alcotest.(check int) "three failures" 3 report.Sup.failed

let test_queue_depth_shed () =
  let config = { test_config with Sup.max_queue_depth = Some 2 } in
  let report =
    Sup.run ~config (Rng.create 1)
      (List.init 4 (fun i -> job (Printf.sprintf "j%d" i) (ok_work "fine")))
  in
  Alcotest.(check int) "two ran" 2 report.Sup.succeeded;
  Alcotest.(check int) "two shed" 2 report.Sup.shed;
  (match state_of report "j3" with
   | Sup.Shed (Sup.Queue_depth { limit = 2 }), 0, [] -> ()
   | st, _, _ -> Alcotest.failf "j3: %s" (Sup.describe_state st))

let test_admission_exhaustion_sheds_pending () =
  (* Stalling jobs burn the small admission budget; once it is gone the
     remaining waves are shed with the exhaustion reason. *)
  let config = { test_config with Sup.wave_size = 1 } in
  let stall = { no_backoff with Job.max_retries = 0 } in
  let report =
    Sup.run ~config ~budget:(Budget.create ~steps:40 ()) (Rng.create 1)
      (List.init 6 (fun i ->
           job ~policy:stall (Printf.sprintf "s%d" i) (Chaos.stalling_work ())))
  in
  Alcotest.(check int) "every job terminal" 6 (List.length report.Sup.outcomes);
  Alcotest.(check bool) "some attempts ran" true (report.Sup.failed > 0);
  Alcotest.(check bool) "later jobs shed on exhaustion" true
    (List.exists
       (fun o ->
         match o.Sup.state with
         | Sup.Shed (Sup.Admission_exhausted Budget.Out_of_steps) -> true
         | _ -> false)
       report.Sup.outcomes);
  (* Shed + failed covers everything; nothing succeeded or vanished. *)
  Alcotest.(check int) "taxonomy complete" 6 (report.Sup.failed + report.Sup.shed)

let test_low_water_shedding () =
  let config = { test_config with Sup.wave_size = 1; shed_below_fraction = 0.5 } in
  let burn = fun (b : Budget.t) -> Budget.tick ~cost:60 b; Ok "burned 60" in
  let report =
    Sup.run ~config ~budget:(Budget.create ~steps:100 ()) (Rng.create 1)
      [ job "burner" burn; job "late" (ok_work "fine") ]
  in
  (match state_of report "burner" with
   | Sup.Done _, 1, _ -> ()
   | st, _, _ -> Alcotest.failf "burner: %s" (Sup.describe_state st));
  match state_of report "late" with
  | Sup.Shed (Sup.Admission_low { threshold; _ }), 0, [] ->
    Alcotest.(check (float 1e-9)) "threshold recorded" 0.5 threshold
  | st, _, _ -> Alcotest.failf "late: %s" (Sup.describe_state st)

(* --- the chaos property -------------------------------------------------- *)

(* Build one job list covering the whole failure space:
   - every netlist corruption x every engine consumer (parse feeds the
     corrupted text to lint / synthesis semantics via of_string_result,
     then runs the engine when parsing survives);
   - the concurrency scenarios: raising, stalling-under-starvation,
     flaky-then-ok;
   - checkpoint-file corruption: a flow job resuming from a truncated or
     bit-flipped on-disk checkpoint.
   All seeds fixed; [make_jobs] rebuilds the identical list for every
   domain count (flaky_work carries per-instance state, so the list must
   be rebuilt per run). *)
let chaos_jobs_dir = Filename.concat (Filename.get_temp_dir_name ()) "secure_eda_chaos"

let write_corrupt_checkpoint corruption =
  if not (Sys.file_exists chaos_jobs_dir) then Sys.mkdir chaos_jobs_dir 0o755;
  let path =
    Filename.concat chaos_jobs_dir ("ck-" ^ Chaos.file_corruption_name corruption ^ ".json")
  in
  let cp = Flow.checkpoint_start (Gen.c17 ()) in
  (match Flow.save_checkpoint path cp with
   | Ok () -> ()
   | Error e -> Alcotest.failf "save_checkpoint: %s" (Eda_error.to_string e));
  Chaos.corrupt_file (Rng.create 99) corruption path;
  path

let make_jobs () =
  let text = Io.to_string (Gen.c17 ()) in
  let policy = { no_backoff with Job.max_retries = 1 } in
  let engine_consumers =
    [ ("lint",
       fun corrupted (_ : Budget.t) ->
         Result.map
           (fun c -> Printf.sprintf "lint ok: %d issues" (List.length (Netlist.Lint.check c)))
           (Io.of_string_result corrupted));
      ("synth",
       fun corrupted (_ : Budget.t) ->
         let ( let* ) = Eda_error.( let* ) in
         let* c = Io.of_string_result corrupted in
         let* opt = Eda_error.guard ~engine:"synth" (fun () -> Synth.Flow.optimize c) in
         Ok (Printf.sprintf "synth ok: %d gates" (Netlist.Circuit.stats opt).Netlist.Circuit.gates));
      ("atpg",
       fun corrupted budget ->
         let ( let* ) = Eda_error.( let* ) in
         let* c = Io.of_string_result corrupted in
         let* r = Dft.Atpg.run_checked ~budget c in
         Ok (Printf.sprintf "atpg ok: %.2f" r.Dft.Atpg.coverage));
      ("flow",
       fun corrupted budget ->
         let ( let* ) = Eda_error.( let* ) in
         let* c = Io.of_string_result corrupted in
         let* r = Flow.run (Rng.create 5) ~budget c in
         Ok (Printf.sprintf "flow ok: %d degraded" r.Flow.degraded_stages)) ]
  in
  let corruption_jobs =
    List.concat_map
      (fun corruption ->
        (* One rng per (corruption) so the corrupted text is identical
           across engines and across runs. *)
        let corrupted = Chaos.corrupt (Rng.create 11) corruption text in
        List.map
          (fun (engine, consume) ->
            job ~klass:engine ~policy
              (Printf.sprintf "%s-%s" engine (Chaos.corruption_name corruption))
              (consume corrupted))
          engine_consumers)
      Chaos.all_corruptions
  in
  let scenario_jobs =
    [ job ~klass:"crash" ~policy "raising" (Chaos.raising_work ());
      job ~klass:"stall"
        ~policy:{ policy with Job.attempt_steps = Some 50 }
        "stalling" (Chaos.stalling_work ());
      job ~klass:"flaky" ~policy:{ policy with Job.max_retries = 2 } "flaky"
        (Chaos.flaky_work ~fails:2 ()) ]
  in
  let checkpoint_jobs =
    List.map
      (fun corruption ->
        let path = write_corrupt_checkpoint corruption in
        job ~klass:"checkpoint" ~policy
          ("resume-" ^ Chaos.file_corruption_name corruption)
          (fun budget ->
            let ( let* ) = Eda_error.( let* ) in
            let* cp = Flow.load_checkpoint path in
            let* r = Flow.run (Rng.create 5) ~budget ~resume:cp (Gen.c17 ()) in
            Ok (Printf.sprintf "resumed: %d stages" (List.length r.Flow.stages))))
      Chaos.all_file_corruptions
  in
  corruption_jobs @ scenario_jobs @ checkpoint_jobs

let run_chaos_sweep pool =
  Sup.run ?pool ~config:test_config ~budget:(Budget.create ~steps:2_000_000 ())
    (Rng.create 42) (make_jobs ())

let test_chaos_sweep_all_terminal () =
  let report = run_chaos_sweep None in
  let n = List.length (make_jobs ()) in
  Alcotest.(check int) "every job has an outcome" n (List.length report.Sup.outcomes);
  Alcotest.(check int) "taxonomy covers everything" n
    (report.Sup.succeeded + report.Sup.failed + report.Sup.shed + report.Sup.quarantined);
  (* Specific classifications we know must hold: *)
  (match state_of report "raising" with
   | Sup.Failed { severity = Sup.Transient; _ }, _, _ -> ()
   | st, _, _ -> Alcotest.failf "raising: %s" (Sup.describe_state st));
  (match state_of report "flaky" with
   | Sup.Done _, 3, _ -> ()
   | st, n, _ -> Alcotest.failf "flaky: %s after %d" (Sup.describe_state st) n);
  (match state_of report "stalling" with
   | Sup.Failed { error = Eda_error.Budget_exhausted _; severity = Sup.Transient; _ }, _, _ -> ()
   | st, _, _ -> Alcotest.failf "stalling: %s" (Sup.describe_state st));
  List.iter
    (fun corruption ->
      match state_of report ("resume-" ^ Chaos.file_corruption_name corruption) with
      | Sup.Failed { error = Eda_error.Invalid_input { what = "checkpoint"; _ };
                     severity = Sup.Permanent; attempts = 1 }, 1, _ -> ()
      | st, _, _ ->
        Alcotest.failf "resume-%s: %s"
          (Chaos.file_corruption_name corruption)
          (Sup.describe_state st))
    Chaos.all_file_corruptions;
  (* A harmless corruption (garbage-line is skipped by the parser only if
     lint accepts it) may legitimately succeed — but nothing may be left
     untried when budget was ample. *)
  Alcotest.(check int) "nothing shed under an ample budget" 0 report.Sup.shed

let test_chaos_sweep_bit_identical_across_domains () =
  let baseline = Sup.fingerprint (run_chaos_sweep None) in
  Alcotest.(check bool) "fingerprint non-trivial" true (String.length baseline > 0);
  List.iter
    (fun d ->
      Pool.with_pool ~num_domains:d (fun p ->
          let fp = Sup.fingerprint (run_chaos_sweep (Some p)) in
          Alcotest.(check string)
            (Printf.sprintf "identical outcomes at %d domains" d)
            baseline fp;
          (* The pool must still be usable after absorbing the sweep. *)
          let after = Pool.parallel_map p ~f:(fun _ctx x -> x * 2) [| 1; 2; 3 |] in
          Alcotest.(check bool)
            (Printf.sprintf "pool usable after sweep at %d domains" d)
            true
            (after = [| Some 2; Some 4; Some 6 |])))
    [ 1; 2; 8 ]

let () =
  Alcotest.run "service"
    [ ( "try-map",
        [ Alcotest.test_case "crash isolation" `Quick test_try_map_isolates_crashes;
          Alcotest.test_case "budget skip is None" `Quick test_try_map_budget_skips_are_none ] );
      ( "supervisor",
        [ Alcotest.test_case "all success" `Quick test_all_success;
          Alcotest.test_case "flaky retried" `Quick test_flaky_job_retried_to_success;
          Alcotest.test_case "permanent not retried" `Quick test_permanent_failure_not_retried;
          Alcotest.test_case "crash contained" `Quick test_crash_contained_and_retried;
          Alcotest.test_case "quarantine" `Quick test_quarantine_trips_per_class;
          Alcotest.test_case "success resets strikes" `Quick test_success_resets_strikes;
          Alcotest.test_case "queue-depth shed" `Quick test_queue_depth_shed;
          Alcotest.test_case "admission exhaustion" `Quick test_admission_exhaustion_sheds_pending;
          Alcotest.test_case "low-water shed" `Quick test_low_water_shedding ] );
      ( "chaos-property",
        [ Alcotest.test_case "all terminal" `Quick test_chaos_sweep_all_terminal;
          Alcotest.test_case "bit-identical across domains" `Quick
            test_chaos_sweep_bit_identical_across_domains ] ) ]
