(* Tests for the CDCL solver and the circuit CNF layer. The solver is
   cross-validated against brute-force enumeration on random small CNFs. *)

module Solver = Sat.Solver
module Cnf = Sat.Cnf
module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Gen = Netlist.Generators
module Sim = Netlist.Sim
module Rng = Eda_util.Rng

let lit v sign = Solver.lit_of_var v ~sign

let test_trivial_sat () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ lit v true ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "model" true (Solver.model_value s v)

let test_trivial_unsat () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ lit v true ];
  (match Solver.add_clause s [ lit v false ] with
   | () -> Alcotest.fail "expected root conflict"
   | exception Solver.Unsat_root -> ())

let test_unsat_pigeon () =
  (* 2 pigeons, 1 hole is immediate; use 3 pigeons, 2 holes. Variables
     p(i,j): pigeon i in hole j. *)
  let s = Solver.create () in
  let p = Array.init 3 (fun _ -> Array.init 2 (fun _ -> Solver.new_var s)) in
  (* Each pigeon somewhere. *)
  Array.iter (fun row -> Solver.add_clause s [ lit row.(0) true; lit row.(1) true ]) p;
  (* No two pigeons share a hole. *)
  for j = 0 to 1 do
    for i = 0 to 2 do
      for k = i + 1 to 2 do
        Solver.add_clause s [ lit p.(i).(j) false; lit p.(k).(j) false ]
      done
    done
  done;
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_assumptions () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ lit a false; lit b true ];  (* a -> b *)
  Alcotest.(check bool) "sat under a" true
    (Solver.solve ~assumptions:[ lit a true ] s = Solver.Sat);
  Alcotest.(check bool) "b forced" true (Solver.model_value s b);
  Solver.add_clause s [ lit b false ];
  Alcotest.(check bool) "unsat under a" true
    (Solver.solve ~assumptions:[ lit a true ] s = Solver.Unsat);
  Alcotest.(check bool) "sat without" true (Solver.solve s = Solver.Sat)

let test_incremental_reuse () =
  let s = Solver.create () in
  let vs = Array.init 10 (fun _ -> Solver.new_var s) in
  (* Chain of implications v0 -> v1 -> ... -> v9. *)
  for i = 0 to 8 do
    Solver.add_clause s [ lit vs.(i) false; lit vs.(i + 1) true ]
  done;
  Alcotest.(check bool) "sat" true (Solver.solve ~assumptions:[ lit vs.(0) true ] s = Solver.Sat);
  Alcotest.(check bool) "chain propagated" true (Solver.model_value s vs.(9));
  Alcotest.(check bool) "still sat negated" true
    (Solver.solve ~assumptions:[ lit vs.(9) false ] s = Solver.Sat);
  Alcotest.(check bool) "v0 must be false" false (Solver.model_value s vs.(0))

let test_group_retire_reclaims () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ lit a true; lit b true ];
  let base_clauses = (Solver.stats s).Solver.clauses in
  let floor = (Solver.stats s).Solver.vars in
  let g = Solver.new_group s in
  let x = Solver.new_var s in
  Solver.add_clause_in s g [ lit a false; lit x true ];
  Solver.add_clause_in s g [ lit x false; lit b false ];
  Alcotest.(check bool) "sat under group" true
    (Solver.solve ~assumptions:[ Solver.group_lit g ] s = Solver.Sat);
  Solver.retire_group s g;
  Solver.shrink_vars s floor;
  let st = Solver.stats s in
  Alcotest.(check int) "group clauses reclaimed" base_clauses st.Solver.clauses;
  Alcotest.(check int) "scratch vars rolled back" floor st.Solver.vars;
  (match Solver.add_clause_in s g [ lit a true ] with
   | () -> Alcotest.fail "expected Invalid_argument on retired group"
   | exception Invalid_argument _ -> ());
  Alcotest.(check bool) "base still sat" true (Solver.solve s = Solver.Sat)

(* Brute-force reference: enumerate assignments over n vars. *)
let brute_force nvars clauses =
  let sat = ref false in
  for m = 0 to (1 lsl nvars) - 1 do
    let ok =
      List.for_all
        (fun clause ->
          List.exists
            (fun l ->
              let v = Solver.var_of_lit l in
              let value = (m lsr v) land 1 = 1 in
              if Solver.pos l then value else not value)
            clause)
        clauses
    in
    if ok then sat := true
  done;
  !sat

let random_cnf rng ~nvars ~nclauses =
  List.init nclauses (fun _ ->
      let len = 1 + Rng.int rng 3 in
      List.init len (fun _ -> lit (Rng.int rng nvars) (Rng.bool rng)))

let test_fuzz_against_brute_force () =
  let rng = Rng.create 1234 in
  for trial = 1 to 300 do
    let nvars = 3 + Rng.int rng 6 in
    let nclauses = 2 + Rng.int rng 20 in
    let clauses = random_cnf rng ~nvars ~nclauses in
    let expected = brute_force nvars clauses in
    let s = Solver.create () in
    for _ = 1 to nvars do
      ignore (Solver.new_var s)
    done;
    (match List.iter (Solver.add_clause s) clauses with
     | () ->
       let got = Solver.solve s = Solver.Sat in
       Alcotest.(check bool) (Printf.sprintf "trial %d" trial) expected got;
       (* If SAT, the model must satisfy every clause. *)
       if got then
         List.iter
           (fun clause ->
             let satisfied =
               List.exists
                 (fun l ->
                   let v = Solver.var_of_lit l in
                   let value = Solver.model_value s v in
                   if Solver.pos l then value else not value)
                 clause
             in
             Alcotest.(check bool) "model satisfies clause" true satisfied)
           clauses
     | exception Solver.Unsat_root ->
       Alcotest.(check bool) (Printf.sprintf "trial %d (root)" trial) expected false)
  done

(* Answer of a throwaway solver on [clauses]; root conflicts count as unsat. *)
let fresh_answer nvars clauses =
  let s = Solver.create () in
  for _ = 1 to nvars do
    ignore (Solver.new_var s)
  done;
  match List.iter (Solver.add_clause s) clauses with
  | () -> Solver.solve s = Solver.Sat
  | exception Solver.Unsat_root -> false

(* Differential check of the clause-group lifecycle: solving under a group's
   activation literal must answer exactly like a fresh solver on base+extra,
   and after retire_group + shrink_vars the session must answer exactly like
   a fresh solver on the base alone, with the variable count back at the
   pre-group floor. *)
let test_group_fuzz_vs_fresh () =
  let rng = Rng.create 4242 in
  for trial = 1 to 150 do
    let nvars = 3 + Rng.int rng 6 in
    let base = random_cnf rng ~nvars ~nclauses:(2 + Rng.int rng 12) in
    let extra = random_cnf rng ~nvars ~nclauses:(1 + Rng.int rng 8) in
    let name what = Printf.sprintf "trial %d: %s" trial what in
    match
      let s = Solver.create () in
      for _ = 1 to nvars do
        ignore (Solver.new_var s)
      done;
      List.iter (Solver.add_clause s) base;
      s
    with
    | exception Solver.Unsat_root ->
      Alcotest.(check bool) (name "root unsat") false (fresh_answer nvars base)
    | s ->
      let floor = (Solver.stats s).Solver.vars in
      let g = Solver.new_group s in
      List.iter (Solver.add_clause_in s g) extra;
      let combined =
        Solver.solve ~assumptions:[ Solver.group_lit g ] s = Solver.Sat
      in
      Alcotest.(check bool) (name "combined answer")
        (fresh_answer nvars (base @ extra))
        combined;
      Solver.retire_group s g;
      Solver.shrink_vars s floor;
      Alcotest.(check int) (name "vars at floor") floor (Solver.stats s).Solver.vars;
      Alcotest.(check bool) (name "base answer after retire")
        (fresh_answer nvars base)
        (Solver.solve s = Solver.Sat)
  done

let test_circuit_encoding_agrees_with_sim () =
  let rng = Rng.create 77 in
  for seed = 1 to 20 do
    let c = Gen.random_dag ~seed ~inputs:6 ~gates:30 ~outputs:2 in
    let env = Cnf.encode c in
    (* Constrain inputs to a random pattern, solve, compare every output. *)
    let pattern = Array.init 6 (fun _ -> Rng.bool rng) in
    let input_ids = Circuit.inputs c in
    Array.iteri
      (fun k id -> Solver.add_clause env.Cnf.solver [ Cnf.lit env ~node:id ~sign:pattern.(k) ])
      input_ids;
    (match Solver.solve env.Cnf.solver with
     | Solver.Sat ->
       let expected = Sim.eval c pattern in
       Array.iteri
         (fun k o ->
           Alcotest.(check bool) (Printf.sprintf "seed %d out %d" seed k) expected.(k)
             (Solver.model_value env.Cnf.solver env.Cnf.vars.(o)))
         (Circuit.output_ids c)
     | Solver.Unsat | Solver.Unknown _ ->
       Alcotest.fail "circuit CNF must be satisfiable under full input assignment")
  done

let test_equivalence_adders () =
  let a = Gen.ripple_adder 4 in
  let b = Gen.ripple_adder 4 in
  Alcotest.(check bool) "equivalent" true (Cnf.check_equivalence a b = None)

let test_equivalence_detects_difference () =
  let a = Gen.parity_tree 4 in
  (* Build an almost-parity circuit: flips behaviour on one input combo. *)
  let b = Circuit.create () in
  let xs = List.init 4 (fun i -> Circuit.add_input ~name:(Printf.sprintf "x%d" i) b) in
  let p = Circuit.reduce b Gate.Xor xs in
  let all_and = Circuit.reduce b Gate.And xs in
  let out = Circuit.add_gate b Gate.Or [ p; all_and ] in
  Circuit.set_output b "parity" out;
  (match Cnf.check_equivalence a b with
   | None -> Alcotest.fail "must find difference"
   | Some witness ->
     (* Witness must actually distinguish. *)
     Alcotest.(check bool) "witness distinguishes" true
       (Sim.eval a witness <> Sim.eval b witness))

let test_satisfiable_output () =
  let c = Gen.comparator 4 in
  (match Cnf.satisfiable_output c ~output:0 with
   | Some witness -> Alcotest.(check bool) "eq witness" true (Sim.eval c witness).(0)
   | None -> Alcotest.fail "comparator can be true");
  (* A constant-false output is unsatisfiable. *)
  let k = Circuit.create () in
  let a = Circuit.add_input ~name:"a" k in
  let na = Circuit.add_gate k Gate.Not [ a ] in
  let z = Circuit.add_gate k Gate.And [ a; na ] in
  Circuit.set_output k "z" z;
  Alcotest.(check bool) "a & !a unsat" true (Cnf.satisfiable_output k ~output:0 = None)

let test_xor_chain_equivalence_deep () =
  (* Associativity: left chain vs balanced tree of XORs. *)
  let left = Circuit.create () in
  let xs = List.init 8 (fun i -> Circuit.add_input ~name:(Printf.sprintf "x%d" i) left) in
  Circuit.set_output left "y" (Circuit.reduce_chain left Gate.Xor xs);
  let tree = Circuit.create () in
  let ys = List.init 8 (fun i -> Circuit.add_input ~name:(Printf.sprintf "x%d" i) tree) in
  Circuit.set_output tree "y" (Circuit.reduce tree Gate.Xor ys);
  Alcotest.(check bool) "chain = tree" true (Cnf.check_equivalence left tree = None)

(* ---- Allocation-free core regressions: determinism, learnt-DB
   reduction, stress instances, differential vs the reference solver. ---- *)

module Ref = Sat.Solver_ref

(* Random 3-SAT over distinct variables (the classic hard distribution;
   ratio ~4.26 clauses/var sits at the phase transition). *)
let random_3sat rng ~nvars ~nclauses =
  List.init nclauses (fun _ ->
      let rec pick k acc =
        if k = 0 then acc
        else begin
          let v = Rng.int rng nvars in
          if List.exists (fun l -> Solver.var_of_lit l = v) acc then pick k acc
          else pick (k - 1) (lit v (Rng.bool rng) :: acc)
        end
      in
      pick 3 [])

(* Feed an instance to a fresh solver; [configure] runs before clauses are
   added (e.g. to force a tiny learnt limit). *)
let run_instance ?(configure = fun _ -> ()) ~nvars clauses =
  let s = Solver.create () in
  ignore (Solver.new_vars s nvars);
  configure s;
  match List.iter (Solver.add_clause s) clauses with
  | () ->
    let r = Solver.solve s in
    (Some r, Solver.stats s)
  | exception Solver.Unsat_root -> (None, Solver.stats s)

let model_satisfies s clauses =
  List.for_all
    (List.exists (fun l ->
         let value = Solver.model_value s (Solver.var_of_lit l) in
         if Solver.pos l then value else not value))
    clauses

let pigeonhole_clauses ~pigeons ~holes =
  (* Variables p(i,j) = pigeon i in hole j, numbered i*holes + j. *)
  let v i j = (i * holes) + j in
  let somewhere =
    List.init pigeons (fun i -> List.init holes (fun j -> lit (v i j) true))
  in
  let exclusive = ref [] in
  for j = 0 to holes - 1 do
    for i = 0 to pigeons - 1 do
      for k = i + 1 to pigeons - 1 do
        exclusive := [ lit (v i j) false; lit (v k j) false ] :: !exclusive
      done
    done
  done;
  (pigeons * holes, somewhere @ !exclusive)

(* Satellite: identical instance + seed must give bit-identical statistics
   across two fresh solvers — the solver has no hidden nondeterminism.
   Checked both with DB reduction forced on (tiny limit) and disabled. *)
let test_determinism () =
  let configs =
    [ ("default", fun _ -> ());
      ("forced reduction", fun s -> Solver.set_learnt_limit s 20);
      ("no reduction", fun s -> Solver.set_db_reduction s false) ]
  in
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let nvars = 50 in
      let clauses = random_3sat rng ~nvars ~nclauses:213 in
      List.iter
        (fun (label, configure) ->
          let r1, st1 = run_instance ~configure ~nvars clauses in
          let r2, st2 = run_instance ~configure ~nvars clauses in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d %s: same result" seed label)
            true (r1 = r2);
          Alcotest.(check bool)
            (Printf.sprintf "seed %d %s: same stats" seed label)
            true (st1 = st2))
        configs)
    [ 11; 42; 99 ]

(* Stress: a pigeonhole instance large enough to force real conflict
   analysis, restarts and learnt-clause traffic. *)
let test_pigeonhole_stress () =
  let nvars, clauses = pigeonhole_clauses ~pigeons:7 ~holes:6 in
  let r, st = run_instance ~nvars clauses in
  Alcotest.(check bool) "unsat" true (r = Some Solver.Unsat);
  Alcotest.(check bool) "learnt something" true (st.Solver.learnt > 0);
  Alcotest.(check bool) "had conflicts" true (st.Solver.conflicts > 0)

(* Stress + differential: random 3-SAT at the phase transition, new solver
   vs the retained reference implementation; verdicts must agree and SAT
   models must validate. *)
let test_phase_transition_differential () =
  let rng = Rng.create 2026 in
  for trial = 1 to 25 do
    let nvars = 25 + Rng.int rng 15 in
    let nclauses = Float.to_int (4.26 *. Float.of_int nvars) in
    let clauses = random_3sat rng ~nvars ~nclauses in
    let s = Solver.create () in
    ignore (Solver.new_vars s nvars);
    (* Tiny limit so DB reduction actually exercises on these instances. *)
    Solver.set_learnt_limit s 10;
    let r = Ref.create () in
    for _ = 1 to nvars do
      ignore (Ref.new_var r)
    done;
    let new_verdict =
      match List.iter (Solver.add_clause s) clauses with
      | () -> Solver.solve s = Solver.Sat
      | exception Solver.Unsat_root -> false
    in
    let ref_verdict =
      match List.iter (Ref.add_clause r) clauses with
      | () -> Ref.solve r = Ref.Sat
      | exception Ref.Unsat_root -> false
    in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d verdicts agree" trial)
      ref_verdict new_verdict;
    if new_verdict then
      Alcotest.(check bool)
        (Printf.sprintf "trial %d model valid" trial)
        true (model_satisfies s clauses)
  done

(* Satellite: a budgeted call returning [Unknown] must keep its learnt
   clauses — including across a DB reduction — so the resumed call picks up
   where it left off instead of starting cold. *)
let test_budget_resume_preserves_learnts () =
  let nvars, clauses = pigeonhole_clauses ~pigeons:7 ~holes:6 in
  let s = Solver.create () in
  ignore (Solver.new_vars s nvars);
  Solver.set_learnt_limit s 20;  (* force reductions during the run *)
  List.iter (Solver.add_clause s) clauses;
  let budget = Eda_util.Budget.create ~steps:60 () in
  (match Solver.solve ~budget s with
   | Solver.Unknown _ -> ()
   | Solver.Sat | Solver.Unsat ->
     Alcotest.fail "instance must not fit in 60 conflicts");
  let mid = Solver.stats s in
  Alcotest.(check bool) "learnts survive Unknown" true (mid.Solver.learnt_live > 0);
  (* Resume without a budget: must converge to UNSAT, accumulating on top
     of the preserved clauses rather than re-learning from zero. *)
  Alcotest.(check bool) "resumed unsat" true (Solver.solve s = Solver.Unsat);
  let final = Solver.stats s in
  Alcotest.(check bool) "reductions happened" true (final.Solver.db_reductions > 0);
  Alcotest.(check bool) "deletions happened" true (final.Solver.clauses_deleted > 0);
  Alcotest.(check bool) "learnt total monotone" true
    (final.Solver.learnt >= mid.Solver.learnt)

(* Acceptance: the learnt DB stays bounded — after a long run with a tiny
   limit, the live count must sit far below the total ever learnt. *)
let test_learnt_db_bounded () =
  let nvars, clauses = pigeonhole_clauses ~pigeons:7 ~holes:6 in
  let configure s = Solver.set_learnt_limit s 20 in
  let r, st = run_instance ~configure ~nvars clauses in
  Alcotest.(check bool) "unsat" true (r = Some Solver.Unsat);
  Alcotest.(check bool) "db was reduced" true (st.Solver.db_reductions > 0);
  Alcotest.(check bool) "live strictly below total" true
    (st.Solver.learnt_live < st.Solver.learnt);
  Alcotest.(check bool) "deleted accounts for gap" true
    (st.Solver.learnt_live + st.Solver.clauses_deleted = st.Solver.learnt)

(* Fuzz vs brute force with DB reduction forced on tiny instances: clause
   deletion must never change a verdict or corrupt a model. *)
let test_fuzz_forced_reduction () =
  let rng = Rng.create 5678 in
  for trial = 1 to 150 do
    let nvars = 3 + Rng.int rng 6 in
    let nclauses = 2 + Rng.int rng 20 in
    let clauses = random_cnf rng ~nvars ~nclauses in
    let expected = brute_force nvars clauses in
    let configure s = Solver.set_learnt_limit s 1 in
    match run_instance ~configure ~nvars clauses with
    | Some r, _ ->
      Alcotest.(check bool) (Printf.sprintf "trial %d" trial) expected (r = Solver.Sat)
    | None, _ ->
      Alcotest.(check bool) (Printf.sprintf "trial %d (root)" trial) expected false
  done

let prop_miter_random_dags_self_equal =
  QCheck.Test.make ~name:"every circuit equals itself (SAT miter)" ~count:15
    QCheck.(int_bound 500)
    (fun seed ->
      let c = Gen.random_dag ~seed ~inputs:5 ~gates:25 ~outputs:2 in
      Cnf.check_equivalence c c = None)

let prop_equivalence_agrees_with_exhaustive =
  QCheck.Test.make ~name:"SAT equivalence agrees with exhaustive sim" ~count:15
    QCheck.(pair (int_bound 500) (int_bound 500))
    (fun (s1, s2) ->
      let a = Gen.random_dag ~seed:s1 ~inputs:5 ~gates:20 ~outputs:1 in
      let b = Gen.random_dag ~seed:s2 ~inputs:5 ~gates:20 ~outputs:1 in
      let sat_eq = Cnf.check_equivalence a b = None in
      let sim_eq = Sim.equivalent_exhaustive a b in
      sat_eq = sim_eq)

let () =
  Alcotest.run "sat"
    [ ("solver",
       [ Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
         Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
         Alcotest.test_case "pigeonhole unsat" `Quick test_unsat_pigeon;
         Alcotest.test_case "assumptions" `Quick test_assumptions;
         Alcotest.test_case "incremental reuse" `Quick test_incremental_reuse;
         Alcotest.test_case "group retire reclaims" `Quick test_group_retire_reclaims;
         Alcotest.test_case "group fuzz vs fresh" `Quick test_group_fuzz_vs_fresh;
         Alcotest.test_case "fuzz vs brute force" `Slow test_fuzz_against_brute_force ]);
      ("perf core",
       [ Alcotest.test_case "determinism" `Quick test_determinism;
         Alcotest.test_case "pigeonhole stress" `Quick test_pigeonhole_stress;
         Alcotest.test_case "phase transition differential" `Slow
           test_phase_transition_differential;
         Alcotest.test_case "budget resume keeps learnts" `Quick
           test_budget_resume_preserves_learnts;
         Alcotest.test_case "learnt DB bounded" `Quick test_learnt_db_bounded;
         Alcotest.test_case "fuzz with forced reduction" `Slow
           test_fuzz_forced_reduction ]);
      ("cnf",
       [ Alcotest.test_case "encoding matches sim" `Quick test_circuit_encoding_agrees_with_sim;
         Alcotest.test_case "adder self-equivalence" `Quick test_equivalence_adders;
         Alcotest.test_case "detects difference" `Quick test_equivalence_detects_difference;
         Alcotest.test_case "satisfiable output" `Quick test_satisfiable_output;
         Alcotest.test_case "xor associativity miter" `Quick test_xor_chain_equivalence_deep ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_miter_random_dags_self_equal; prop_equivalence_agrees_with_exhaustive ]) ]
