(* Tests for scan insertion, ATPG, BIST and the scan attack / secure scan. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Gen = Netlist.Generators
module Scan = Dft.Scan
module Rng = Eda_util.Rng

(* A small sequential design: 4-bit register file of one word. *)
let registered_xor () =
  let c = Circuit.create () in
  let xs = Array.init 4 (fun i -> Circuit.add_input ~name:(Printf.sprintf "x%d" i) c) in
  Array.iteri
    (fun i x ->
      let q = Circuit.add_dff ~name:(Printf.sprintf "q%d" i) c ~d:x in
      Circuit.set_output c (Printf.sprintf "o%d" i) q)
    xs;
  c

let test_scan_functional_mode_unchanged () =
  let src = registered_xor () in
  let scanned = Scan.insert src in
  (* In functional mode (scan_en = 0) a capture cycle behaves like the
     original: registers load their D inputs. *)
  let data = [| true; false; true; true |] in
  let state = Scan.capture scanned ~state:(Array.make 4 false) ~data in
  Alcotest.(check (array bool)) "captured data" data state

let test_scan_shift_roundtrip () =
  let scanned = Scan.insert (registered_xor ()) in
  (* Shift a known pattern in, then unload and compare. *)
  let pattern = [ true; false; false; true ] in
  let _, state = Scan.shift scanned ~state:(Array.make 4 false) ~bits:pattern in
  (* After 4 shifts, cell k holds the bit shifted in 4-k cycles ago:
     cell 0 = last bit, cell 3 = first bit. *)
  let stream, _ = Scan.unload scanned ~state in
  Alcotest.(check (array bool)) "unload returns state in cell order"
    [| true; false; false; true |]
    (* first-in bit reached cell 3 *)
    (Array.of_list (List.rev (Array.to_list stream)))

let test_scan_observability () =
  (* Capture then unload recovers the captured state exactly. *)
  let scanned = Scan.insert (registered_xor ()) in
  let data = [| false; true; true; false |] in
  let state = Scan.capture scanned ~state:(Array.make 4 false) ~data in
  let stream, _ = Scan.unload scanned ~state in
  Alcotest.(check (array bool)) "observed = captured" data stream

let test_secure_scan_scrambles () =
  let key = [| true; false; true; true |] in
  let scanned = Scan.insert ~protection:(Scan.Secure key) (registered_xor ()) in
  let data = [| true; true; false; false |] in
  let state = Scan.capture scanned ~state:(Array.make 4 false) ~data in
  let stream, _ = Scan.unload scanned ~state in
  Alcotest.(check bool) "stream scrambled" true (stream <> data);
  Alcotest.(check (array bool)) "descramble recovers" data (Scan.descramble scanned stream)

let test_scan_attack_plain_succeeds () =
  let device = Dft.Scan_attack.device () in
  for key = 0 to 255 do
    Alcotest.(check int) (Printf.sprintf "key %02x" key) key
      (Dft.Scan_attack.recover_key_byte device ~key)
  done

let test_scan_attack_secure_fails () =
  let rng = Rng.create 5 in
  let key_bits = Array.init 8 (fun _ -> Rng.bool rng) in
  let device = Dft.Scan_attack.device ~protection:(Scan.Secure key_bits) () in
  let rate = Dft.Scan_attack.success_rate device in
  Alcotest.(check bool) "attack defeated" true (rate < 0.05)

let test_secure_scan_keeps_testability () =
  let rng = Rng.create 6 in
  let key_bits = Array.init 8 (fun _ -> Rng.bool rng) in
  let device = Dft.Scan_attack.device ~protection:(Scan.Secure key_bits) () in
  (* The authorized tester still reads the true captured state. *)
  for key = 0 to 20 do
    let read = Dft.Scan_attack.tester_reads_state device ~key in
    Alcotest.(check int) "tester view" Crypto.Aes.sbox.(key) read
  done

let test_atpg_pattern_detects_target () =
  let c = Gen.c17 () in
  let faults = Fault.Model.all_stuck_at_faults c in
  List.iter
    (fun fault ->
      match Dft.Atpg.generate c fault with
      | Dft.Atpg.Untestable -> Alcotest.fail "c17 has no untestable faults"
      | Dft.Atpg.Abstained _ -> Alcotest.fail "unbudgeted ATPG cannot abstain"
      | Dft.Atpg.Pattern p ->
        Alcotest.(check bool) "pattern detects" true (Fault.Model.detects c ~fault p))
    faults

let test_atpg_full_run () =
  let c = Gen.c17 () in
  let r = Dft.Atpg.run c in
  let patterns = r.Dft.Atpg.patterns in
  Alcotest.(check (float 1e-9)) "full coverage" 1.0 r.Dft.Atpg.coverage;
  Alcotest.(check int) "nothing untestable" 0 (List.length r.Dft.Atpg.untestable);
  (* Compaction: far fewer patterns than faults. *)
  Alcotest.(check bool) "compact set" true (List.length patterns < 12);
  let faults = Fault.Model.all_stuck_at_faults c in
  Alcotest.(check (float 1e-9)) "patterns re-verified" 1.0
    (Fault.Model.coverage c ~faults ~patterns)

let test_atpg_finds_untestable () =
  (* Redundant logic: y = a OR (a AND b): the AND's effect is masked. *)
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let g = Circuit.add_gate c Gate.And [ a; b ] in
  let y = Circuit.add_gate c Gate.Or [ a; g ] in
  Circuit.set_output c "y" y;
  (* g stuck-at-0 never observable: y = a either way. *)
  (match Dft.Atpg.generate c (Fault.Model.Stuck_at { node = g; value = false }) with
   | Dft.Atpg.Untestable -> ()
   | Dft.Atpg.Pattern _ | Dft.Atpg.Abstained _ ->
     Alcotest.fail "redundant fault must be untestable")

let test_lfsr_maximal_period () =
  Alcotest.(check int) "8-bit lfsr period" 255 (Dft.Bist.period ~width:8 ~seed:1);
  Alcotest.(check int) "16-bit lfsr period" 65535 (Dft.Bist.period ~width:16 ~seed:1)

let test_bist_signature_deterministic () =
  let c = Gen.alu 4 in
  let s1 = Dft.Bist.signature ~patterns:200 ~seed:7 c in
  let s2 = Dft.Bist.signature ~patterns:200 ~seed:7 c in
  Alcotest.(check int) "deterministic" s1 s2;
  let s3 = Dft.Bist.signature ~patterns:200 ~seed:8 c in
  Alcotest.(check bool) "seed-sensitive" true (s1 <> s3)

let test_bist_detects_faults () =
  let c = Gen.c17 () in
  let coverage = Dft.Bist.coverage ~patterns:100 ~seed:3 c in
  Alcotest.(check bool) "high coverage" true (coverage > 0.9)

let test_bist_signature_changes_under_fault () =
  let c = Gen.c17 () in
  let golden = Dft.Bist.signature ~patterns:100 ~seed:3 c in
  match Circuit.find_by_name c "G22" with
  | None -> Alcotest.fail "missing net"
  | Some node ->
    let s =
      Dft.Bist.signature ~faults:[ Fault.Model.Stuck_at { node; value = true } ]
        ~patterns:100 ~seed:3 c
    in
    Alcotest.(check bool) "signature differs" true (s <> golden)

let prop_scan_roundtrip_any_state =
  QCheck.Test.make ~name:"scan load/unload is identity" ~count:30
    QCheck.(int_bound 15)
    (fun m ->
      let scanned = Scan.insert (registered_xor ()) in
      let state = Array.init 4 (fun i -> (m lsr i) land 1 = 1) in
      let stream, _ = Scan.unload scanned ~state in
      stream = state)

let () =
  Alcotest.run "dft"
    [ ("scan",
       [ Alcotest.test_case "functional mode" `Quick test_scan_functional_mode_unchanged;
         Alcotest.test_case "shift roundtrip" `Quick test_scan_shift_roundtrip;
         Alcotest.test_case "observability" `Quick test_scan_observability;
         Alcotest.test_case "secure scrambles" `Quick test_secure_scan_scrambles ]);
      ("scan_attack",
       [ Alcotest.test_case "plain succeeds" `Quick test_scan_attack_plain_succeeds;
         Alcotest.test_case "secure fails" `Quick test_scan_attack_secure_fails;
         Alcotest.test_case "testability kept" `Quick test_secure_scan_keeps_testability ]);
      ("atpg",
       [ Alcotest.test_case "per-fault patterns" `Quick test_atpg_pattern_detects_target;
         Alcotest.test_case "full run" `Quick test_atpg_full_run;
         Alcotest.test_case "untestable found" `Quick test_atpg_finds_untestable ]);
      ("bist",
       [ Alcotest.test_case "lfsr period" `Quick test_lfsr_maximal_period;
         Alcotest.test_case "signature deterministic" `Quick test_bist_signature_deterministic;
         Alcotest.test_case "detects faults" `Quick test_bist_detects_faults;
         Alcotest.test_case "signature sensitive" `Quick test_bist_signature_changes_under_fault ]);
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_scan_roundtrip_any_state ]) ]
