(* Property-based suite: the Proptest harness's own contract (replay,
   shrinking, bounds), arithmetic oracles for the reference generators,
   seed determinism and lint cleanliness of every Bench_gen family, and
   differential checks of the hot engines against their reference
   implementations — including pooled-vs-sequential bit-identity at
   1/2/8 domains.

   Every check goes through Proptest.check_exn, so a failure prints a
   shrunk counterexample with its PROPTEST_SEED replay line; CI greps
   for that marker. The seed comes from PROPTEST_SEED when set (CI pins
   it), else the library default. *)

module P = Eda_util.Proptest
module Rng = Eda_util.Rng
module Pool = Eda_util.Pool
module Gen = Netlist.Generators
module BG = Netlist.Bench_gen
module Circuit = Netlist.Circuit
module Sim = Netlist.Sim
module Lint = Netlist.Lint

(* --- the harness itself ------------------------------------------------- *)

let test_passes () =
  match P.check ~name:"tautology" (P.int_range 0 100) (fun n -> n >= 0) with
  | P.Passed n -> Alcotest.(check int) "all cases ran" 100 n
  | P.Failed f -> Alcotest.fail (P.describe_failure f)

let test_replay_deterministic () =
  let run () =
    P.check ~seed:77 ~name:"threshold" (P.int_range 0 10_000) (fun n -> n < 500)
  in
  match (run (), run ()) with
  | P.Failed a, P.Failed b ->
    Alcotest.(check int) "same failing case" a.P.case_index b.P.case_index;
    Alcotest.(check string) "same original" a.P.original b.P.original;
    Alcotest.(check string) "same minimal" a.P.minimal b.P.minimal
  | _ -> Alcotest.fail "property should fail on both runs"

let test_shrinks_to_boundary () =
  (* n < 500 fails first at some random n >= 500; the binary ladder must
     land exactly on the boundary value 500. *)
  match P.check ~seed:77 ~name:"threshold" (P.int_range 0 10_000) (fun n -> n < 500) with
  | P.Failed f -> Alcotest.(check string) "minimal counterexample" "500" f.P.minimal
  | P.Passed _ -> Alcotest.fail "property should fail"

let test_shrink_budget_respected () =
  let bound = 7 in
  match
    P.check ~seed:1 ~max_shrink_steps:bound ~name:"always-false"
      (P.int_range 0 1_000_000) (fun _ -> false)
  with
  | P.Failed f ->
    Alcotest.(check bool) "bounded" true (f.P.shrink_steps <= bound)
  | P.Passed _ -> Alcotest.fail "property should fail"

let test_pair_shrinks_componentwise () =
  (* Failure depends only on the first component; the second must shrink
     all the way to its minimum. *)
  match
    P.check ~seed:5 ~name:"pair"
      (P.pair (P.int_range 0 1000) (P.int_range 0 1000))
      (fun (x, _) -> x < 100)
  with
  | P.Failed f ->
    Alcotest.(check string) "minimal pair" "(100, 0)" f.P.minimal
  | P.Passed _ -> Alcotest.fail "property should fail"

let test_list_min_len_kept () =
  match
    P.check ~seed:9 ~name:"list"
      (P.list_of ~min_len:2 ~max_len:10 (P.int_range 0 9))
      (fun l -> List.length l < 2)
  with
  | P.Failed f ->
    (* every list has >= 2 elements, so the property always fails; the
       shrunk list must still respect min_len *)
    Alcotest.(check string) "minimal list" "[0; 0]" f.P.minimal
  | P.Passed _ -> Alcotest.fail "property should fail"

let test_failure_report_replayable () =
  match P.check ~seed:123 ~name:"demo" (P.int_range 0 99) (fun n -> n < 50) with
  | P.Failed f ->
    let text = P.describe_failure f in
    let contains sub =
      let n = String.length text and m = String.length sub in
      let rec at i = i + m <= n && (String.sub text i m = sub || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool) "names the shrunk counterexample" true
      (contains "shrunk counterexample");
    Alcotest.(check bool) "carries the replay seed" true (contains "PROPTEST_SEED=123")
  | P.Passed _ -> Alcotest.fail "property should fail"

(* --- arithmetic oracles for the reference generators --------------------- *)

let bits_of_int ~width v = Array.init width (fun i -> (v lsr i) land 1 = 1)
let int_of_bits bits = Array.to_list bits |> List.fold_left (fun _ _ -> 0) 0 |> ignore

let () = ignore int_of_bits

let eval_outputs c inputs = Sim.eval c inputs

let test_ripple_adder_oracle () =
  let arb =
    P.make
      ~show:(fun (w, a, b, cin) -> Printf.sprintf "w=%d a=%d b=%d cin=%b" w a b cin)
      (fun rng ->
        let w = 1 + Rng.int rng 16 in
        let a = Rng.int rng (1 lsl w) in
        let b = Rng.int rng (1 lsl w) in
        (w, a, b, Rng.bool rng))
  in
  P.check_exn ~name:"ripple_adder matches integer addition" arb
    (fun (w, a, b, cin) ->
      let c = Gen.ripple_adder w in
      let inputs =
        Array.concat
          [ bits_of_int ~width:w a; bits_of_int ~width:w b; [| cin |] ]
      in
      let outs = eval_outputs c inputs in
      (* outputs: s0..s(w-1), cout *)
      let got =
        Array.to_seq outs
        |> Seq.fold_lefti (fun acc i bit -> if bit then acc lor (1 lsl i) else acc) 0
      in
      got = a + b + Bool.to_int cin)

let test_comparator_oracle () =
  let arb =
    P.make
      ~show:(fun (w, a, b) -> Printf.sprintf "w=%d a=%d b=%d" w a b)
      (fun rng ->
        let w = 1 + Rng.int rng 16 in
        let a = Rng.int rng (1 lsl w) in
        (* force equality half the time so both branches are exercised *)
        let b = if Rng.bool rng then a else Rng.int rng (1 lsl w) in
        (w, a, b))
  in
  P.check_exn ~name:"comparator matches integer equality" arb (fun (w, a, b) ->
      let c = Gen.comparator w in
      let inputs = Array.append (bits_of_int ~width:w a) (bits_of_int ~width:w b) in
      (eval_outputs c inputs).(0) = (a = b))

let test_parity_tree_oracle () =
  let arb =
    P.make
      ~show:(fun bits ->
        "0b" ^ String.concat "" (List.map (fun b -> if b then "1" else "0") bits))
      (fun rng ->
        let w = 1 + Rng.int rng 24 in
        List.init w (fun _ -> Rng.bool rng))
  in
  P.check_exn ~name:"parity_tree matches xor fold" arb (fun bits ->
      let c = Gen.parity_tree (List.length bits) in
      let expect = List.fold_left (fun acc b -> acc <> b) false bits in
      (eval_outputs c (Array.of_list bits)).(0) = expect)

(* --- Bench_gen: determinism and lint cleanliness ------------------------- *)

let family_arb =
  P.choose_from ~show:BG.family_name BG.all_families

let test_generators_seed_deterministic () =
  let arb =
    P.pair family_arb
      (P.pair (P.int_range 0 1_000_000) (P.int_range 64 800))
  in
  let show (fam, (seed, tgt)) =
    Printf.sprintf "%s seed=%d target=%d" (BG.family_name fam) seed tgt
  in
  P.check_exn ~count:40 ~name:"same seed, same fingerprint"
    { arb with P.show } (fun (fam, (seed, tgt)) ->
      let fp () = BG.fingerprint (BG.sized ~seed fam ~target_gates:tgt) in
      fp () = fp ())

let test_generators_lint_clean () =
  let arb =
    P.pair family_arb
      (P.pair (P.int_range 0 1_000_000) (P.int_range 64 800))
  in
  let show (fam, (seed, tgt)) =
    Printf.sprintf "%s seed=%d target=%d" (BG.family_name fam) seed tgt
  in
  P.check_exn ~count:40 ~name:"generated circuits lint clean"
    { arb with P.show } (fun (fam, (seed, tgt)) ->
      let c = BG.sized ~seed fam ~target_gates:tgt in
      let issues = Lint.check c in
      List.for_all
        (fun i -> i.Lint.severity <> Lint.Error && i.Lint.check <> "dangling-net")
        issues)

let test_layered_params_lint_clean () =
  (* the raw layered entry point across its whole parameter space, not
     just the sized presets *)
  let arb =
    P.make
      ~show:(fun (seed, ins, layers, width, loc) ->
        Printf.sprintf "seed=%d inputs=%d layers=%d width=%d locality=%.2f"
          seed ins layers width loc)
      (fun rng ->
        ( Rng.int rng 100_000,
          1 + Rng.int rng 32,
          1 + Rng.int rng 12,
          1 + Rng.int rng 64,
          Rng.float rng ))
  in
  P.check_exn ~count:40 ~name:"layered lint clean at any params" arb
    (fun (seed, inputs, layers, width, locality) ->
      let c = BG.layered ~seed ~locality ~inputs ~layers ~width () in
      let issues = Lint.check c in
      List.for_all
        (fun i -> i.Lint.severity <> Lint.Error && i.Lint.check <> "dangling-net")
        issues)

let test_sized_hits_target () =
  let arb =
    P.pair family_arb (P.pair (P.int_range 0 1000) (P.int_range 400 4000))
  in
  let show (fam, (seed, tgt)) =
    Printf.sprintf "%s seed=%d target=%d" (BG.family_name fam) seed tgt
  in
  P.check_exn ~count:25 ~name:"sized lands within 40% of target"
    { arb with P.show } (fun (fam, (seed, tgt)) ->
      let n = Circuit.node_count (BG.sized ~seed fam ~target_gates:tgt) in
      let ratio = Float.of_int n /. Float.of_int tgt in
      ratio > 0.6 && ratio < 1.4)

let test_multiplier_families_agree () =
  (* c6288_like (array grid) and csa_multiplier (Wallace tree) compute
     the same product *)
  let arb =
    P.make
      ~show:(fun (w, a, b) -> Printf.sprintf "w=%d a=%d b=%d" w a b)
      (fun rng ->
        let w = 2 + Rng.int rng 5 in
        (w, Rng.int rng (1 lsl w), Rng.int rng (1 lsl w)))
  in
  P.check_exn ~count:60 ~name:"array and CSA multipliers agree" arb
    (fun (w, a, b) ->
      let inputs = Array.append (bits_of_int ~width:w a) (bits_of_int ~width:w b) in
      let product c =
        let outs = Circuit.outputs c in
        let vals = Sim.eval c inputs in
        (* sum named product bits m<i>; skip po_obs-style extras *)
        Array.to_seq outs
        |> Seq.fold_lefti
             (fun acc k (name, _) ->
               if String.length name > 1 && name.[0] = 'm' then
                 match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
                 | Some i when vals.(k) -> acc + (1 lsl i)
                 | _ -> acc
               else acc)
             0
      in
      let pa = product (BG.c6288_like ~width:w ()) in
      let pc = product (BG.csa_multiplier ~width:w ()) in
      pa = a * b && pc = a * b)

(* --- differential: hot engines vs references ----------------------------- *)

let cnf_arb =
  P.make
    ~show:(fun (nvars, clauses) ->
      Printf.sprintf "%d vars, %d clauses" nvars (List.length clauses))
    (fun rng ->
      let nvars = 3 + Rng.int rng 25 in
      let nclauses = 2 + Rng.int rng (4 * nvars) in
      let clause () =
        let len = 1 + Rng.int rng 3 in
        List.init len (fun _ -> (Rng.int rng nvars, Rng.bool rng))
      in
      (nvars, List.init nclauses (fun _ -> clause ())))

let test_sat_differential () =
  P.check_exn ~count:120 ~name:"arrays solver agrees with reference CDCL"
    cnf_arb (fun (nvars, clauses) ->
      let open Sat in
      let satisfies model =
        List.for_all
          (List.exists (fun (v, sign) -> model v = sign))
          clauses
      in
      (* add_clause may raise Unsat_root on a level-0 conflict — that is
         a documented Unsat verdict, not an error *)
      let run_new () =
        let s = Solver.create () in
        ignore (Solver.new_vars s nvars);
        match
          List.iter
            (fun cl ->
              Solver.add_clause s
                (List.map (fun (v, sign) -> Solver.lit_of_var v ~sign) cl))
            clauses
        with
        | () ->
          (match Solver.solve s with
           | Solver.Sat -> `Sat (Solver.model_value s)
           | Solver.Unsat -> `Unsat
           | Solver.Unknown _ -> `Unknown)
        | exception Solver.Unsat_root -> `Unsat
      in
      let run_ref () =
        let sref = Solver_ref.create () in
        match
          List.iter
            (fun cl ->
              Solver_ref.add_clause sref
                (List.map (fun (v, sign) -> Solver_ref.lit_of_var v ~sign) cl))
            clauses
        with
        | () ->
          (match Solver_ref.solve sref with
           | Solver_ref.Sat -> `Sat (Solver_ref.model_value sref)
           | Solver_ref.Unsat -> `Unsat
           | Solver_ref.Unknown _ -> `Unknown)
        | exception Solver_ref.Unsat_root -> `Unsat
      in
      match (run_new (), run_ref ()) with
      | `Sat m, `Sat mref -> satisfies m && satisfies mref
      | `Unsat, `Unsat -> true
      | _ -> false)

let test_word_sim_differential () =
  (* 63 patterns per case: lane j of the word simulation must equal the
     boolean simulation of pattern j, on a fresh random circuit. *)
  let arb =
    P.make
      ~show:(fun (seed, pat_seed) -> Printf.sprintf "seed=%d patterns=%d" seed pat_seed)
      (fun rng -> (Rng.int rng 1_000_000, Rng.int rng 1_000_000))
  in
  P.check_exn ~count:25 ~name:"word-parallel sim matches naive eval" arb
    (fun (seed, pat_seed) ->
      let c = BG.layered ~seed ~inputs:12 ~layers:4 ~width:24 () in
      let ni = Circuit.num_inputs c in
      let rng = Rng.create pat_seed in
      let words = Array.init ni (fun _ -> Rng.bits63 rng) in
      let word_out = Sim.eval_word c words in
      let ok = ref true in
      for lane = 0 to 62 do
        let bools = Array.map (fun w -> (w lsr lane) land 1 = 1) words in
        let bool_out = Sim.eval c bools in
        Array.iteri
          (fun k w ->
            if ((w lsr lane) land 1 = 1) <> bool_out.(k) then ok := false)
          word_out
      done;
      !ok)

let test_session_vs_fresh () =
  (* One persistent Stuck_at_session must answer every query exactly like a
     throwaway check_stuck_at solver: same Equivalent/Counterexample status,
     and any session witness must actually detect the fault. *)
  let arb =
    P.make
      ~show:(fun (seed, fseed) -> Printf.sprintf "circuit=%d faults=%d" seed fseed)
      (fun rng -> (Rng.int rng 1_000_000, Rng.int rng 1_000_000))
  in
  P.check_exn ~count:20 ~name:"incremental session matches fresh check_stuck_at" arb
    (fun (seed, fseed) ->
      let c = BG.layered ~seed ~inputs:8 ~layers:4 ~width:12 () in
      let faults = Array.of_list (Fault.Model.all_stuck_at_faults c) in
      Rng.shuffle (Rng.create fseed) faults;
      let n = min 25 (Array.length faults) in
      let session = Sat.Cnf.Stuck_at_session.create c in
      let ok = ref true in
      for i = 0 to n - 1 do
        match faults.(i) with
        | Fault.Model.Bit_flip _ -> ()
        | Fault.Model.Stuck_at { node; value } as f ->
          let fresh = Sat.Cnf.check_stuck_at c ~node ~value in
          let inc = Sat.Cnf.Stuck_at_session.query session ~node ~value in
          (match (fresh, inc) with
           | Sat.Cnf.Equivalent, Sat.Cnf.Equivalent -> ()
           | Sat.Cnf.Counterexample _, Sat.Cnf.Counterexample w ->
             (* The witness pattern may legitimately differ between the two
                solvers, but it must detect the fault either way. *)
             if not (Fault.Model.detects c ~fault:f w) then ok := false
           | _ -> ok := false)
      done;
      !ok)

let test_session_budget_resume () =
  (* A zero-step budget forces Equiv_unknown on every query whose solve
     needs at least one conflict. The session must survive the abandoned
     query: an unbudgeted retry of the same fault — and every later query —
     must still match a fresh solver. *)
  let c = BG.layered ~seed:47 ~inputs:8 ~layers:5 ~width:14 () in
  let faults = Array.of_list (Fault.Model.all_stuck_at_faults c) in
  Rng.shuffle (Rng.create 48) faults;
  let session = Sat.Cnf.Stuck_at_session.create c in
  let checked = ref 0 and unknowns = ref 0 in
  Array.iter
    (fun f ->
      if !checked < 12 then
        match f with
        | Fault.Model.Bit_flip _ -> ()
        | Fault.Model.Stuck_at { node; value } ->
          incr checked;
          let b = Eda_util.Budget.create ~steps:0 () in
          (match Sat.Cnf.Stuck_at_session.query ~budget:b session ~node ~value with
           | Sat.Cnf.Equiv_unknown _ -> incr unknowns
           | Sat.Cnf.Equivalent | Sat.Cnf.Counterexample _ -> ());
          let retry = Sat.Cnf.Stuck_at_session.query session ~node ~value in
          (match (Sat.Cnf.check_stuck_at c ~node ~value, retry) with
           | Sat.Cnf.Equivalent, Sat.Cnf.Equivalent -> ()
           | Sat.Cnf.Counterexample _, Sat.Cnf.Counterexample w ->
             Alcotest.(check bool) "retry witness detects" true
               (Fault.Model.detects c ~fault:f w)
           | _ -> Alcotest.fail "post-Unknown session answer diverged from fresh"))
    faults;
  Alcotest.(check bool) "at least one query hit the budget" true (!unknowns > 0)

let test_detects_many_differential () =
  (* Lane k of the word-parallel fault simulation must agree with the
     scalar [detects] oracle, and reusing the scratch must not leak state
     between calls. *)
  let arb =
    P.make
      ~show:(fun (seed, pseed) -> Printf.sprintf "circuit=%d pattern=%d" seed pseed)
      (fun rng -> (Rng.int rng 1_000_000, Rng.int rng 1_000_000))
  in
  P.check_exn ~count:25 ~name:"word-parallel fault drop matches scalar detects" arb
    (fun (seed, pseed) ->
      let c = BG.layered ~seed ~inputs:10 ~layers:4 ~width:16 () in
      let rng = Rng.create pseed in
      let all = Array.of_list (Fault.Model.all_stuck_at_faults c) in
      Rng.shuffle rng all;
      let nf = min 63 (Array.length all) in
      let faults = Array.sub all 0 nf in
      if nf > 2 then
        faults.(1) <- Fault.Model.Bit_flip { node = Fault.Model.node_of faults.(1) };
      let pattern = Array.init (Circuit.num_inputs c) (fun _ -> Rng.bool rng) in
      let w = Fault.Model.wsim_create c in
      let mask = Fault.Model.detects_many w c ~faults pattern in
      let again = Fault.Model.detects_many w c ~faults pattern in
      let lanes_agree = ref true in
      Array.iteri
        (fun k f ->
          if (mask lsr k) land 1 = 1 <> Fault.Model.detects c ~fault:f pattern then
            lanes_agree := false)
        faults;
      mask = again && !lanes_agree)

(* --- pooled vs sequential bit-identity at 1/2/8 domains ------------------ *)

let domain_counts = [ 1; 2; 8 ]

let with_pools f =
  List.map
    (fun d ->
      if d = 1 then f None
      else Pool.with_pool ~num_domains:d (fun p -> f (Some p)))
    domain_counts

let all_equal = function
  | [] | [ _ ] -> true
  | x :: rest -> List.for_all (( = ) x) rest

let test_atpg_pool_identical () =
  let c = BG.sized ~seed:31 BG.C880 ~target_gates:260 in
  let results =
    with_pools (fun pool ->
        let r = Dft.Atpg.run ?pool c in
        (r.Dft.Atpg.coverage, r.Dft.Atpg.patterns, List.length r.Dft.Atpg.untestable))
  in
  Alcotest.(check bool) "ATPG bit-identical at 1/2/8 domains" true (all_equal results)

let test_tvla_pool_identical () =
  let c = BG.sized ~seed:32 BG.Layered ~target_gates:220 in
  let ni = Circuit.num_inputs c in
  let nodes = Circuit.node_count c in
  let collect stream cls =
    let vec =
      Array.init ni (fun _ ->
          match cls with `Fixed -> true | `Random -> Rng.bool stream)
    in
    let scratch = Array.make nodes false in
    [| Power.Model.hamming_weight_sample stream ~scratch c ~noise_sigma:0.4 ~inputs:vec |]
  in
  let results =
    with_pools (fun pool ->
        let r =
          Sidechannel.Tvla.campaign_seeded ?pool (Rng.create 5150)
            ~traces_per_class:257 ~collect
        in
        (r.Sidechannel.Tvla.t_per_sample, r.Sidechannel.Tvla.max_abs_t))
  in
  Alcotest.(check bool) "TVLA bit-identical at 1/2/8 domains" true (all_equal results)

let test_placement_pool_identical () =
  let c = BG.sized ~seed:33 BG.C432 ~target_gates:220 in
  let results =
    with_pools (fun pool ->
        let o = Physical.Placement.place ~starts:8 ~moves:400 ?pool (Rng.create 2718) c in
        ( Physical.Placement.wirelength o.Physical.Placement.placement,
          o.Physical.Placement.best_start ))
  in
  Alcotest.(check bool) "placement bit-identical at 1/2/8 domains" true
    (all_equal results)

let test_trace_merge_deterministic () =
  (* Canonical merged telemetry must be byte-identical at 1/2/8 domains
     for any deterministic workload: random task counts and payloads,
     deterministic caller/worker clocks. *)
  let module T = Eda_util.Telemetry in
  let fake_clock () =
    let t = ref 0.0 in
    fun () ->
      let v = !t in
      t := v +. 1.0;
      v
  in
  let task_clock i =
    let t = ref (1000.0 *. Float.of_int (i + 1)) in
    fun () ->
      let v = !t in
      t := v +. 1.0;
      v
  in
  let traced_batch ~tasks ~salt d =
    let sink, events = T.memory_sink () in
    T.with_sink ~clock:(fake_clock ()) ~task_clock sink (fun () ->
        Pool.with_pool ~num_domains:d (fun p ->
            ignore
              (Pool.parallel_map p
                 ~f:(fun _ctx i ->
                   T.with_span "task.work" ~attrs:[ ("i", T.Int i) ] (fun () ->
                       T.count "work.done" 1;
                       T.observe "work.cost" (Float.of_int ((i * salt) mod 97)));
                   i)
                 (Array.init tasks (fun i -> i)))));
    String.concat "\n" (List.map T.event_to_line (T.Trace.canonicalize (events ())))
  in
  let arb = P.pair (P.int_range 1 12) (P.int_range 1 1000) in
  P.check_exn ~count:15 ~name:"canonical merged trace identical at 1/2/8 domains" arb
    (fun (tasks, salt) ->
      let base = traced_batch ~tasks ~salt 1 in
      String.length base > 0
      && List.for_all (fun d -> traced_batch ~tasks ~salt d = base) [ 2; 8 ])

let test_pool_chunking_preserves_results () =
  (* scheduling grain must never leak into results *)
  let inputs = Array.init 500 (fun i -> i) in
  let expect = Array.map (fun i -> Some (i * 7)) inputs in
  List.iter
    (fun chunk ->
      Pool.with_pool ~num_domains:4 (fun p ->
          let got = Pool.parallel_map ~chunk p ~f:(fun _ctx x -> x * 7) inputs in
          Alcotest.(check bool)
            (Printf.sprintf "chunk=%d keeps ordered results" chunk)
            true (got = expect)))
    [ 1; 3; 64; 1000 ]

let test_atpg_chunk_invariance () =
  (* The scheduling grain (?chunk) must never leak into ATPG results: any
     grain at 4 domains must reproduce the no-pool run bit for bit. *)
  let c = BG.sized ~seed:34 BG.C880 ~target_gates:260 in
  let summary (r : Dft.Atpg.report) =
    (r.Dft.Atpg.coverage, r.Dft.Atpg.patterns, List.length r.Dft.Atpg.untestable)
  in
  let base = summary (Dft.Atpg.run c) in
  List.iter
    (fun chunk ->
      Pool.with_pool ~num_domains:4 (fun p ->
          let got = summary (Dft.Atpg.run ?chunk ~pool:p c) in
          Alcotest.(check bool)
            (Printf.sprintf "chunk=%s matches no-pool run"
               (match chunk with None -> "auto" | Some n -> string_of_int n))
            true (got = base)))
    [ None; Some 1; Some 3; Some 64 ]

let () =
  Alcotest.run "proptest"
    [ ( "harness",
        [ Alcotest.test_case "passing property" `Quick test_passes;
          Alcotest.test_case "replay deterministic" `Quick test_replay_deterministic;
          Alcotest.test_case "shrinks to boundary" `Quick test_shrinks_to_boundary;
          Alcotest.test_case "shrink budget" `Quick test_shrink_budget_respected;
          Alcotest.test_case "pair shrinks componentwise" `Quick
            test_pair_shrinks_componentwise;
          Alcotest.test_case "list min length kept" `Quick test_list_min_len_kept;
          Alcotest.test_case "failure report replayable" `Quick
            test_failure_report_replayable ] );
      ( "oracles",
        [ Alcotest.test_case "ripple adder" `Quick test_ripple_adder_oracle;
          Alcotest.test_case "comparator" `Quick test_comparator_oracle;
          Alcotest.test_case "parity tree" `Quick test_parity_tree_oracle;
          Alcotest.test_case "multipliers agree" `Quick test_multiplier_families_agree ] );
      ( "bench-gen",
        [ Alcotest.test_case "seed determinism" `Quick test_generators_seed_deterministic;
          Alcotest.test_case "lint clean (sized)" `Quick test_generators_lint_clean;
          Alcotest.test_case "lint clean (layered params)" `Quick
            test_layered_params_lint_clean;
          Alcotest.test_case "sized hits target" `Quick test_sized_hits_target ] );
      ( "differential",
        [ Alcotest.test_case "sat vs reference" `Quick test_sat_differential;
          Alcotest.test_case "word sim vs naive" `Quick test_word_sim_differential;
          Alcotest.test_case "session vs fresh" `Slow test_session_vs_fresh;
          Alcotest.test_case "session budget resume" `Quick test_session_budget_resume;
          Alcotest.test_case "word fault drop vs scalar" `Quick
            test_detects_many_differential ] );
      ( "pooled",
        [ Alcotest.test_case "atpg 1/2/8 domains" `Slow test_atpg_pool_identical;
          Alcotest.test_case "tvla 1/2/8 domains" `Slow test_tvla_pool_identical;
          Alcotest.test_case "placement 1/2/8 domains" `Slow test_placement_pool_identical;
          Alcotest.test_case "trace merge deterministic" `Quick
            test_trace_merge_deterministic;
          Alcotest.test_case "chunking invariant" `Quick
            test_pool_chunking_preserves_results;
          Alcotest.test_case "atpg chunk invariant" `Slow
            test_atpg_chunk_invariance ] ) ]
