(* Integration tests for the secure_eda core: Table I data, Table II
   registry, the Fig. 1 flow, the composition engine and metric shapes. *)

module Rng = Eda_util.Rng
module Composition = Secure_eda.Composition
module Metric = Secure_eda.Metric
module Threat = Secure_eda.Threat_model
module Registry = Secure_eda.Scheme_registry
module Flow = Secure_eda.Flow

let find_metric name metrics =
  match List.find_opt (fun m -> m.Metric.name = name) metrics with
  | Some m -> m.Metric.value
  | None -> Alcotest.fail ("missing metric " ^ name)

let test_table1_covers_all_vectors () =
  List.iter
    (fun v ->
      Alcotest.(check bool) (Threat.name v) true
        (List.exists (fun row -> row.Threat.vector = v) Threat.table))
    Threat.all;
  List.iter
    (fun row ->
      Alcotest.(check bool) "evaluation documented" true (row.Threat.toolkit_evaluation <> "");
      Alcotest.(check bool) "mitigation documented" true (row.Threat.toolkit_mitigation <> ""))
    Threat.table

let test_table2_covers_all_stage_threat_pairs () =
  (* Every stage and every threat appears at least once in the registry. *)
  List.iter
    (fun stage ->
      Alcotest.(check bool) (Registry.stage_name stage) true
        (List.exists (fun cell -> cell.Registry.stage = stage) Registry.table))
    Registry.all_stages;
  List.iter
    (fun threat ->
      Alcotest.(check bool) (Threat.name threat) true
        (List.exists (fun cell -> cell.Registry.threat = threat) Registry.table))
    Threat.all;
  Alcotest.(check bool) "at least 24 populated cells" true (List.length Registry.table >= 24)

let test_table2_cells_all_runnable () =
  (* Smoke-run every cell; each must produce a non-empty report. This is
     the "whole Table II executes" integration test. *)
  let rng = Rng.create 77 in
  List.iter
    (fun cell ->
      let report = cell.Registry.run rng in
      Alcotest.(check bool) (cell.Registry.scheme ^ " produces output") true
        (String.length report > 0))
    Registry.table

let test_composition_cross_effect () =
  (* The Sec. IV interaction: adding parity to masked logic re-opens the
     side channel while fixing fault detection. *)
  let rng = Rng.create 42 in
  let m = Composition.matrix rng ~traces_per_class:1500 ~noise_sigma:0.3 ~injections:80 in
  let metrics_of point = List.assoc point m in
  let t p = find_metric "TVLA max |t|" (metrics_of p) in
  let det p = find_metric "fault detection rate" (metrics_of p) in
  let area p = find_metric "area" (metrics_of p) in
  Alcotest.(check bool) "baseline leaks" true (t Composition.Baseline > 4.5);
  Alcotest.(check bool) "masked passes" true (t Composition.Masked < 4.5);
  Alcotest.(check bool) "composition re-leaks" true (t Composition.Masked_and_parity > 4.5);
  Alcotest.(check (float 1e-9)) "masking alone detects nothing" 0.0 (det Composition.Masked);
  Alcotest.(check bool) "parity detects" true (det Composition.Parity > 0.5);
  Alcotest.(check bool) "composition still detects" true (det Composition.Masked_and_parity > 0.5);
  Alcotest.(check bool) "cost monotone" true
    (area Composition.Masked_and_parity > area Composition.Masked)

let test_flow_reports_all_stages () =
  let rng = Rng.create 7 in
  let report =
    match Flow.run rng (Netlist.Generators.c17 ()) with
    | Ok r -> r
    | Error e -> Alcotest.fail (Eda_util.Eda_error.to_string e)
  in
  Alcotest.(check int) "four stages" 4 (List.length report.Flow.stages);
  List.iter
    (fun sr ->
      Alcotest.(check bool) (Flow.stage_name sr.Flow.stage ^ " area") true (sr.Flow.area > 0.0))
    report.Flow.stages;
  (* Final circuit functionally equals the input. *)
  Alcotest.(check bool) "flow preserves function" true
    (Netlist.Sim.equivalent_exhaustive (Netlist.Generators.c17 ()) report.Flow.final);
  (* Testing stage reports coverage. *)
  let testing =
    List.find (fun sr -> sr.Flow.stage = Flow.Testing) report.Flow.stages
  in
  (match testing.Flow.fault_coverage with
   | Some cov -> Alcotest.(check bool) "coverage" true (cov > 0.9)
   | None -> Alcotest.fail "testing stage must report coverage")

let test_flow_demonstrates_fig2_on_masked_input () =
  (* The classical flow run on a masked circuit destroys its security;
     the same flow with barriers does not (checked via structure: the
     protected run keeps the ISW chain names). *)
  let masked = Sidechannel.Isw.transform (Sidechannel.Leakage.private_and_source ()) in
  let c = masked.Sidechannel.Isw.circuit in
  let rng = Rng.create 8 in
  let ok = function
    | Ok r -> r
    | Error e -> Alcotest.fail (Eda_util.Eda_error.to_string e)
  in
  let classical = ok (Flow.run rng c) in
  let secure = ok (Flow.run rng ~protect:Sidechannel.Isw.protected_name c) in
  Alcotest.(check bool) "both functionally fine" true
    (Netlist.Sim.equivalent_exhaustive classical.Flow.final secure.Flow.final)

let test_metric_shape_classifier () =
  let step = [ (1.0, 0.0); (2.0, 0.02); (3.0, 1.0); (4.0, 1.0) ] in
  let smooth = [ (1.0, 0.1); (2.0, 0.35); (3.0, 0.6); (4.0, 0.9) ] in
  Alcotest.(check bool) "step detected" true (Metric.classify_shape step = Metric.Step);
  Alcotest.(check bool) "smooth detected" true (Metric.classify_shape smooth = Metric.Smooth);
  Alcotest.(check bool) "degenerate is smooth" true (Metric.classify_shape [] = Metric.Smooth)

let test_security_metrics_step_ppa_smooth () =
  (* The Sec. IV claim on real data: SAT-attack resistance vs key width is
     step-ish under a fixed attacker budget, area is smooth. *)
  let rng = Rng.create 9 in
  let source = Netlist.Generators.alu 4 in
  let budget = 12 in
  let points_security = ref [] and points_area = ref [] in
  List.iter
    (fun key_bits ->
      let locked = Locking.Lock.epic rng ~key_bits source in
      let r =
        Locking.Sat_attack.run ~max_iterations:budget
          ~oracle:(Locking.Sat_attack.oracle_of_circuit source) locked
      in
      let resisted = if r.Locking.Sat_attack.key = None then 1.0 else 0.0 in
      points_security := (Float.of_int key_bits, resisted) :: !points_security;
      points_area :=
        (Float.of_int key_bits, (Netlist.Circuit.stats locked.Locking.Lock.circuit).Netlist.Circuit.area)
        :: !points_area)
    [ 2; 6; 10; 14; 18 ];
  (* Area grows smoothly with key bits. *)
  Alcotest.(check bool) "area smooth" true
    (Metric.classify_shape (List.rev !points_area) = Metric.Smooth);
  (* Security is 0/1-valued: every transition is a step by construction;
     just confirm it is monotone 0 -> 1 or constant. *)
  let values = List.rev_map snd !points_security in
  let sorted = List.sort compare values in
  Alcotest.(check bool) "resistance monotone in key width" true (values = List.rev sorted || values = sorted)

let test_metric_pp () =
  let m = Metric.security ~name:"test" ~value:1.5 ~unit_:"bits" ~higher_is_better:false in
  let s = Format.asprintf "%a" Metric.pp m in
  Alcotest.(check bool) "renders" true (String.length s > 10)

let () =
  Alcotest.run "core"
    [ ("table1", [ Alcotest.test_case "covers vectors" `Quick test_table1_covers_all_vectors ]);
      ("table2",
       [ Alcotest.test_case "covers stages and threats" `Quick test_table2_covers_all_stage_threat_pairs;
         Alcotest.test_case "all cells runnable" `Slow test_table2_cells_all_runnable ]);
      ("composition",
       [ Alcotest.test_case "cross effect" `Slow test_composition_cross_effect ]);
      ("flow",
       [ Alcotest.test_case "stage reports" `Quick test_flow_reports_all_stages;
         Alcotest.test_case "fig2 on masked input" `Quick test_flow_demonstrates_fig2_on_masked_input ]);
      ("metrics",
       [ Alcotest.test_case "shape classifier" `Quick test_metric_shape_classifier;
         Alcotest.test_case "security step, ppa smooth" `Slow test_security_metrics_step_ppa_smooth;
         Alcotest.test_case "pretty printing" `Quick test_metric_pp ]) ]
