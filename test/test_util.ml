(* Tests for the eda_util substrate: PRNG determinism and distribution
   sanity, statistics against hand-computed values, bit vectors. *)

module Rng = Eda_util.Rng
module Stats = Eda_util.Stats
module Bitvec = Eda_util.Bitvec

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.next_int64 a <> Rng.next_int64 b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

(* The boxed-Int64 xoshiro256** formulation the half-word implementation
   replaced; kept verbatim as the differential oracle. Every derived draw
   ([bool], [int], [float], [bits63]) is defined in terms of [next_int64],
   so matching it across many steps pins the whole stream. *)
module Rng_boxed = struct
  type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

  let splitmix64 state =
    let open Int64 in
    state := add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let create seed =
    let state = ref (Int64.of_int seed) in
    let s0 = splitmix64 state in
    let s1 = splitmix64 state in
    let s2 = splitmix64 state in
    let s3 = splitmix64 state in
    { s0; s1; s2; s3 }

  let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

  let next_int64 t =
    let open Int64 in
    let result = mul (rotl (mul t.s1 5L) 7) 9L in
    let tmp = shift_left t.s1 17 in
    t.s2 <- logxor t.s2 t.s0;
    t.s3 <- logxor t.s3 t.s1;
    t.s1 <- logxor t.s1 t.s2;
    t.s0 <- logxor t.s0 t.s3;
    t.s2 <- logxor t.s2 tmp;
    t.s3 <- rotl t.s3 45;
    result
end

let test_rng_matches_boxed_reference () =
  List.iter
    (fun seed ->
      let fast = Rng.create seed and boxed = Rng_boxed.create seed in
      for i = 1 to 10_000 do
        Alcotest.(check int64)
          (Printf.sprintf "seed %d draw %d" seed i)
          (Rng_boxed.next_int64 boxed) (Rng.next_int64 fast)
      done)
    [ 0; 1; 42; -7; max_int; min_int ];
  (* bits63 must be the native-int truncation of the same stream. *)
  let a = Rng.create 1234 and b = Rng.create 1234 in
  for i = 1 to 10_000 do
    Alcotest.(check int)
      (Printf.sprintf "bits63 draw %d" i)
      (Int64.to_int (Rng.next_int64 a))
      (Rng.bits63 b)
  done

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_rng_float_unit_interval () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 11 in
  let xs = Array.init 20000 (fun _ -> Rng.gaussian rng) in
  let mu = Stats.mean xs and sd = Stats.std xs in
  Alcotest.(check bool) "mean near 0" true (Float.abs mu < 0.05);
  Alcotest.(check bool) "std near 1" true (Float.abs (sd -. 1.0) < 0.05)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_distinct () =
  let rng = Rng.create 5 in
  let s = Rng.sample rng 10 30 in
  let uniq = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 10 (List.length uniq);
  List.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 30)) uniq

let test_mean_variance () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean xs);
  (* Sample variance with n-1 denominator: sum sq dev = 32, / 7. *)
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Stats.variance xs)

let test_moments_match_batch () =
  let rng = Rng.create 13 in
  let xs = Array.init 500 (fun _ -> Rng.float rng) in
  let m = Stats.moments_create () in
  Array.iter (Stats.moments_add m) xs;
  Alcotest.(check (float 1e-9)) "online mean" (Stats.mean xs) (Stats.moments_mean m);
  Alcotest.(check (float 1e-9)) "online var" (Stats.variance xs) (Stats.moments_variance m)

let test_welch_identical_zero () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "t = 0 on identical" 0.0 (Stats.welch_t xs xs)

let test_welch_known_value () =
  (* Hand check: xs mean 1, ys mean 3, var 1 each, n = 4 each:
     t = (1-3)/sqrt(1/4+1/4) = -2/sqrt(0.5). *)
  let xs = [| 0.0; 1.0; 1.0; 2.0 |] in
  let ys = [| 2.0; 3.0; 3.0; 4.0 |] in
  let expected = -2.0 /. sqrt (2.0 *. Stats.variance xs /. 4.0) in
  Alcotest.(check (float 1e-9)) "t" expected (Stats.welch_t xs ys)

let test_welch_detects_shift () =
  let rng = Rng.create 17 in
  let xs = Array.init 2000 (fun _ -> Rng.gaussian rng) in
  let ys = Array.init 2000 (fun _ -> Rng.gaussian rng +. 0.5) in
  Alcotest.(check bool) "|t| > 4.5" true (Float.abs (Stats.welch_t xs ys) > 4.5)

let test_pearson_perfect () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = [| 2.0; 4.0; 6.0; 8.0 |] in
  Alcotest.(check (float 1e-9)) "r = 1" 1.0 (Stats.pearson xs ys);
  let neg = Array.map (fun y -> -.y) ys in
  Alcotest.(check (float 1e-9)) "r = -1" (-1.0) (Stats.pearson xs neg)

let test_pearson_independent_small () =
  let rng = Rng.create 19 in
  let xs = Array.init 5000 (fun _ -> Rng.gaussian rng) in
  let ys = Array.init 5000 (fun _ -> Rng.gaussian rng) in
  Alcotest.(check bool) "|r| small" true (Float.abs (Stats.pearson xs ys) < 0.05)

let test_hamming () =
  Alcotest.(check int) "hw 0xF" 4 (Stats.hamming_weight 0xF);
  Alcotest.(check int) "hw 8-bit view" 1 (Stats.hamming_weight ~bits:4 0x10001);
  Alcotest.(check int) "hd" 2 (Stats.hamming_distance 0b1010 0b1001)

(* The SWAR popcount against the obvious bit-at-a-time loop, across all 63
   bit positions and random words (including negative ones: bit 62 set). *)
let test_popcount_matches_loop () =
  let slow x =
    let c = ref 0 in
    for i = 0 to 62 do
      c := !c + ((x lsr i) land 1)
    done;
    !c
  in
  for i = 0 to 62 do
    Alcotest.(check int) "single bit" 1 (Stats.popcount (1 lsl i))
  done;
  Alcotest.(check int) "zero" 0 (Stats.popcount 0);
  Alcotest.(check int) "all ones" 63 (Stats.popcount (-1));
  let rng = Rng.create 77 in
  for _ = 1 to 10_000 do
    let x = Rng.bits63 rng in
    Alcotest.(check int) "random word" (slow x) (Stats.popcount x)
  done

let test_entropy () =
  Alcotest.(check (float 1e-9)) "uniform 4" 2.0 (Stats.entropy_of_counts [| 5; 5; 5; 5 |]);
  Alcotest.(check (float 1e-9)) "point mass" 0.0 (Stats.entropy_of_counts [| 10; 0; 0 |])

let test_histogram () =
  let h = Stats.histogram ~nbins:4 ~lo:0.0 ~hi:4.0 [| 0.5; 1.5; 1.7; 3.2; 9.9; -3.0 |] in
  Alcotest.(check (array int)) "bins" [| 2; 2; 0; 2 |] h

let test_argmax_maxabs () =
  Alcotest.(check int) "argmax" 2 (Stats.argmax [| 1.0; 3.0; 7.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "max_abs" 7.5 (Stats.max_abs [| 1.0; -7.5; 3.0 |])

let test_bitvec_roundtrip () =
  let bv = Bitvec.of_int ~width:8 0xA5 in
  Alcotest.(check int) "to_int" 0xA5 (Bitvec.to_int bv);
  Alcotest.(check string) "to_string" "10100101" (Bitvec.to_string bv);
  Alcotest.(check int) "of_string" 0xA5 (Bitvec.to_int (Bitvec.of_string "10100101"))

let test_bitvec_ops () =
  let a = Bitvec.of_int ~width:4 0b1100 in
  let b = Bitvec.of_int ~width:4 0b1010 in
  Alcotest.(check int) "xor" 0b0110 (Bitvec.to_int (Bitvec.xor a b));
  Alcotest.(check int) "hw" 2 (Bitvec.hamming_weight a);
  Alcotest.(check int) "hd" 2 (Bitvec.hamming_distance a b);
  Alcotest.(check int) "flip" 0b0100 (Bitvec.to_int (Bitvec.flip a 3))

let test_bitvec_enumerate () =
  let all = Bitvec.enumerate ~width:3 in
  Alcotest.(check int) "count" 8 (List.length all);
  Alcotest.(check (list int)) "order" (List.init 8 (fun i -> i)) (List.map Bitvec.to_int all)

(* Property tests. *)
let prop_bitvec_roundtrip =
  QCheck.Test.make ~name:"bitvec int roundtrip" ~count:200
    QCheck.(int_bound 65535)
    (fun x -> Bitvec.to_int (Bitvec.of_int ~width:16 x) = x)

let prop_welch_antisymmetric =
  QCheck.Test.make ~name:"welch t antisymmetric" ~count:100
    QCheck.(pair (array_of_size (Gen.return 20) (float_bound_exclusive 10.0))
              (array_of_size (Gen.return 20) (float_bound_exclusive 10.0)))
    (fun (xs, ys) ->
      Float.abs (Stats.welch_t xs ys +. Stats.welch_t ys xs) < 1e-9)

let prop_hamming_triangle =
  QCheck.Test.make ~name:"hamming distance triangle inequality" ~count:200
    QCheck.(triple (int_bound 255) (int_bound 255) (int_bound 255))
    (fun (a, b, c) ->
      Stats.hamming_distance ~bits:8 a c
      <= Stats.hamming_distance ~bits:8 a b + Stats.hamming_distance ~bits:8 b c)

let () =
  Alcotest.run "util"
    [ ("rng",
       [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
         Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
         Alcotest.test_case "matches boxed reference" `Quick test_rng_matches_boxed_reference;
         Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
         Alcotest.test_case "float unit interval" `Quick test_rng_float_unit_interval;
         Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
         Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
         Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct ]);
      ("stats",
       [ Alcotest.test_case "mean/variance" `Quick test_mean_variance;
         Alcotest.test_case "online moments" `Quick test_moments_match_batch;
         Alcotest.test_case "welch identical" `Quick test_welch_identical_zero;
         Alcotest.test_case "welch known value" `Quick test_welch_known_value;
         Alcotest.test_case "welch detects shift" `Quick test_welch_detects_shift;
         Alcotest.test_case "pearson perfect" `Quick test_pearson_perfect;
         Alcotest.test_case "pearson independent" `Quick test_pearson_independent_small;
         Alcotest.test_case "hamming" `Quick test_hamming;
         Alcotest.test_case "popcount vs loop" `Quick test_popcount_matches_loop;
         Alcotest.test_case "entropy" `Quick test_entropy;
         Alcotest.test_case "histogram" `Quick test_histogram;
         Alcotest.test_case "argmax/max_abs" `Quick test_argmax_maxabs ]);
      ("bitvec",
       [ Alcotest.test_case "roundtrip" `Quick test_bitvec_roundtrip;
         Alcotest.test_case "ops" `Quick test_bitvec_ops;
         Alcotest.test_case "enumerate" `Quick test_bitvec_enumerate ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_bitvec_roundtrip; prop_welch_antisymmetric; prop_hamming_triangle ]) ]
