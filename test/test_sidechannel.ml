(* Tests for ISW masking, TVLA, CPA and the Fig. 2 experiment logic. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Rng = Eda_util.Rng
module Isw = Sidechannel.Isw
module Tvla = Sidechannel.Tvla
module Cpa = Sidechannel.Cpa
module Leakage = Sidechannel.Leakage

let test_share_encode_decode () =
  let rng = Rng.create 1 in
  for shares = 2 to 5 do
    for _ = 1 to 100 do
      let v = Rng.bool rng in
      Alcotest.(check bool) "decode inverts encode" v (Isw.decode (Isw.encode rng ~shares v))
    done
  done

let test_shares_look_random () =
  (* Any single share of a fixed secret is balanced. *)
  let rng = Rng.create 2 in
  let ones = ref 0 in
  let n = 4000 in
  for _ = 1 to n do
    let sh = Isw.encode rng ~shares:3 true in
    if sh.(1) then incr ones
  done;
  let p = Float.of_int !ones /. Float.of_int n in
  Alcotest.(check bool) "share balanced" true (Float.abs (p -. 0.5) < 0.05)

let test_masked_and_correct () =
  let rng = Rng.create 3 in
  for shares = 2 to 4 do
    let masked = Isw.transform ~shares (Leakage.private_and_source ()) in
    for _ = 1 to 100 do
      let a = Rng.bool rng and b = Rng.bool rng in
      match Isw.eval rng masked ~values:[ ("a", a); ("b", b) ] with
      | [ ("y", y) ] -> Alcotest.(check bool) "and" (a && b) y
      | _ -> Alcotest.fail "unexpected outputs"
    done
  done

let test_masked_arbitrary_circuit () =
  (* Mask a richer function: c17 (NANDs exercise basis conversion). *)
  let rng = Rng.create 4 in
  let src = Netlist.Generators.c17 () in
  let masked = Isw.transform ~shares:3 src in
  for m = 0 to 31 do
    let inputs = Array.init 5 (fun i -> (m lsr i) land 1 = 1) in
    let expected = Netlist.Sim.eval src inputs in
    let values =
      List.mapi (fun k id -> Circuit.name src id, inputs.(k))
        (Array.to_list (Circuit.inputs src))
    in
    let got = Isw.eval rng masked ~values in
    List.iteri
      (fun k (_, v) -> Alcotest.(check bool) (Printf.sprintf "m=%d out %d" m k) expected.(k) v)
      got
  done

let test_randomness_count () =
  (* One 3-share AND consumes C(3,2) = 3 random bits. *)
  let masked = Isw.transform ~shares:3 (Leakage.private_and_source ()) in
  Alcotest.(check int) "3 randoms" 3 (Array.length masked.Isw.random_inputs);
  let masked4 = Isw.transform ~shares:4 (Leakage.private_and_source ()) in
  Alcotest.(check int) "6 randoms at 4 shares" 6 (Array.length masked4.Isw.random_inputs)

let test_tvla_no_leak_on_identical () =
  let rng = Rng.create 5 in
  let collect _cls = [| Rng.gaussian rng |] in
  let r = Tvla.campaign ~traces_per_class:500 ~collect in
  Alcotest.(check bool) "no false positive" true (not (Tvla.leaks r))

let test_tvla_detects_mean_shift () =
  let rng = Rng.create 6 in
  let collect = function
    | `Fixed -> [| Rng.gaussian rng +. 0.5 |]
    | `Random -> [| Rng.gaussian rng |]
  in
  let r = Tvla.campaign ~traces_per_class:1000 ~collect in
  Alcotest.(check bool) "leak found" true (Tvla.leaks r);
  Alcotest.(check (list int)) "sample 0 flagged" [ 0 ] r.Tvla.leaky_samples

let test_tvla_escalation_monotone_overall () =
  let rng = Rng.create 7 in
  let collect = function
    | `Fixed -> [| Rng.gaussian rng +. 0.3 |]
    | `Random -> [| Rng.gaussian rng |]
  in
  let series = Tvla.escalation ~steps:[ 100; 400; 1600 ] ~collect in
  (match series with
   | [ (_, t1); (_, t2); (_, t3) ] ->
     Alcotest.(check bool) "grows with n" true (t3 > t1);
     Alcotest.(check bool) "mid" true (t2 > t1 *. 0.5)
   | _ -> Alcotest.fail "expected 3 points")

let test_fig2_unaware_leaks_aware_passes () =
  let rng = Rng.create 8 in
  let aware = Leakage.synthesize_masked Leakage.Security_aware in
  let unaware = Leakage.synthesize_masked Leakage.Security_unaware in
  let r_aware = Leakage.tvla_campaign rng aware ~traces_per_class:2000 ~noise_sigma:0.3 in
  let r_unaware = Leakage.tvla_campaign rng unaware ~traces_per_class:2000 ~noise_sigma:0.3 in
  Alcotest.(check bool) "aware passes" false (Tvla.leaks r_aware);
  Alcotest.(check bool) "unaware leaks" true (Tvla.leaks r_unaware)

let test_fig2_variants_functionally_equal () =
  let rng = Rng.create 9 in
  List.iter
    (fun variant ->
      let masked = Leakage.synthesize_masked variant in
      for _ = 1 to 50 do
        let a = Rng.bool rng and b = Rng.bool rng in
        match Isw.eval rng masked ~values:[ ("a", a); ("b", b) ] with
        | [ (_, y) ] -> Alcotest.(check bool) "still AND" (a && b) y
        | _ -> Alcotest.fail "unexpected outputs"
      done)
    [ Leakage.Security_aware; Leakage.Security_unaware ]

let test_leakiest_wire_is_internal_gate () =
  let rng = Rng.create 10 in
  let unaware = Leakage.synthesize_masked Leakage.Security_unaware in
  let _, t = Leakage.leakiest_wire rng unaware ~samples:2000 in
  Alcotest.(check bool) "strongly leaking wire exists" true (t > Tvla.threshold)

let test_cpa_recovers_key () =
  let rng = Rng.create 11 in
  let circuit = Crypto.Sbox_circuit.aes_round_datapath () in
  let result = Cpa.campaign rng circuit ~key:0x5A ~traces:400 ~noise_sigma:1.0 in
  Alcotest.(check int) "key recovered" 0x5A result.Cpa.best_guess;
  Alcotest.(check (option int)) "rank 0" (Some 0) result.Cpa.correct_rank

let test_cpa_fails_with_few_traces_high_noise () =
  let rng = Rng.create 12 in
  let circuit = Crypto.Sbox_circuit.aes_round_datapath () in
  let successes = ref 0 in
  for _ = 1 to 5 do
    let r = Cpa.campaign rng circuit ~key:0x5A ~traces:5 ~noise_sigma:60.0 in
    if r.Cpa.best_guess = 0x5A then incr successes
  done;
  Alcotest.(check bool) "mostly fails" true (!successes <= 2)

let test_cpa_success_improves_with_traces () =
  let rng = Rng.create 13 in
  let circuit = Crypto.Sbox_circuit.aes_round_datapath () in
  let curve =
    Cpa.success_rate_curve rng circuit ~key:0xC3 ~trace_counts:[ 10; 400 ] ~trials:4
      ~noise_sigma:2.0
  in
  (match curve with
   | [ (_, s_low); (_, s_high) ] ->
     Alcotest.(check bool) "monotone-ish" true (s_high >= s_low);
     Alcotest.(check bool) "converges" true (s_high >= 0.75)
   | _ -> Alcotest.fail "expected 2 points")

let test_metrics_snr () =
  let rng = Rng.create 14 in
  (* Observable = class mean 0/1 with noise 0.5: SNR = var({0,1})/0.25. *)
  let observations =
    List.init 4000 (fun i ->
        let cls = i mod 2 in
        (cls, Float.of_int cls +. Rng.gaussian_scaled rng ~mean:0.0 ~sigma:0.5))
  in
  let s = Sidechannel.Metrics.snr ~classify:(fun c -> c) observations in
  Alcotest.(check bool) "snr near 1" true (s > 0.7 && s < 1.4);
  let mtd = Sidechannel.Metrics.measurements_to_disclosure ~snr:s in
  Alcotest.(check bool) "mtd finite" true (Float.is_finite mtd && mtd > 0.0)

let test_traces_to_threshold () =
  (* t = 2 at 1000 traces -> threshold 4.5 at ~5000. *)
  let n = Sidechannel.Metrics.traces_to_threshold ~observed_t:2.0 ~observed_n:1000 in
  Alcotest.(check bool) "extrapolation" true (n > 4000.0 && n < 6000.0)

(* --- secure_synthesis recipe / TVLA gate -------------------------------- *)

module Secure_synth = Sidechannel.Secure_synth

(* Campaign strong enough to convict the unmasked design (|t| ~ 30) with
   comfortable margin below threshold on the masked one (|t| ~ 1). *)
let traces_per_class = 1500
let noise_sigma = 0.8
let tvla_params = [ ("traces", string_of_int traces_per_class); ("noise_sigma", "0.8") ]

let test_secure_synthesis_end_to_end () =
  Secure_synth.register ();
  let c = Netlist.Generators.c17 () in
  (* The acceptance argument needs both verdicts: the campaign convicts
     the unmasked reference AND clears the recipe's output. *)
  let unmasked = Secure_synth.assess (Rng.create 21) c ~traces_per_class ~noise_sigma in
  Alcotest.(check bool) "unmasked reference leaks" true (Tvla.leaks unmasked);
  Alcotest.(check bool) "and convincingly so" true (unmasked.Tvla.max_abs_t > 2.0 *. Tvla.threshold);
  (* The recipe runs its own tvla_check; completing without Check_failed
     is the sign-off. Re-assess under an independent seed anyway. *)
  let masked = Synth.Pipeline.run_recipe ~params:tvla_params "secure_synthesis" c in
  let again = Secure_synth.assess (Rng.create 22) masked ~traces_per_class ~noise_sigma in
  Alcotest.(check bool) "masked output clean under a fresh campaign" false (Tvla.leaks again)

let test_verify_pair () =
  Secure_synth.register ();
  let c = Netlist.Generators.c17 () in
  let masked = Synth.Pass.apply ~params:[ ("shares", "3"); ("seed", "4") ] "mask_insertion" c in
  let v = Secure_synth.verify (Rng.create 31) ~reference:c masked ~traces_per_class ~noise_sigma in
  Alcotest.(check bool) "masked clean" false (Tvla.leaks v.Secure_synth.masked_result);
  Alcotest.(check bool) "reference leaking" true (Tvla.leaks v.Secure_synth.unmasked_result)

let test_tvla_pass_rejects_unmasked () =
  Secure_synth.register ();
  match Synth.Pass.apply ~params:tvla_params "tvla_check" (Netlist.Generators.c17 ()) with
  | _ -> Alcotest.fail "tvla_check should reject an unmasked circuit"
  | exception Synth.Pass.Check_failed { pass; msg } ->
    Alcotest.(check string) "failing pass" "tvla_check" pass;
    Alcotest.(check bool) "message names the statistic" true
      (String.length msg > 0 && String.sub msg 0 12 = "TVLA leakage")

let test_region_mask_boundary_still_leaks () =
  (* Region masking is honest physics: the boundary wires feeding the
     masked island still carry plain secrets, and the whole-circuit
     Hamming-weight model sees them. The TVLA gate must keep flagging
     such designs rather than blessing partial masking. *)
  Secure_synth.register ();
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let d = Circuit.add_input ~name:"d" c in
  let x = Circuit.add_gate c Gate.And [ a; b ] in
  let y = Circuit.add_gate c Gate.Xor [ x; d ] in
  Circuit.set_output c "y" y;
  Circuit.annotate_region c ~region:"core" [ x; y ];
  let m = Synth.Pass.apply ~params:[ ("shares", "3"); ("seed", "2") ] "mask_insertion" c in
  Alcotest.(check bool) "region-masked island keeps region metadata" true
    (Circuit.region_names m <> []);
  (* Three plain wires among ~40 masked nodes is a weak signal: it needs
     a longer campaign (|t| ~ 8 at 6000 traces vs ~4.2 at 1500) — which
     is itself the lesson about partial masking. *)
  Alcotest.(check bool) "plain boundary wires still leak" true
    (Secure_synth.leaks (Rng.create 23) m ~traces_per_class:6000 ~noise_sigma)

let prop_masked_eval_matches_source =
  QCheck.Test.make ~name:"masked random circuits compute their source" ~count:8
    QCheck.(pair (int_bound 300) (int_bound 255))
    (fun (seed, m) ->
      let src = Netlist.Generators.random_dag ~seed ~inputs:4 ~gates:12 ~outputs:1 in
      let masked = Isw.transform ~shares:3 src in
      let rng = Rng.create (seed + m) in
      let inputs = Array.init 4 (fun i -> (m lsr i) land 1 = 1) in
      let values =
        List.mapi (fun k id -> Circuit.name src id, inputs.(k))
          (Array.to_list (Circuit.inputs src))
      in
      let expected = (Netlist.Sim.eval src inputs).(0) in
      match Isw.eval rng masked ~values with
      | [ (_, y) ] -> y = expected
      | _ -> false)

let () =
  Alcotest.run "sidechannel"
    [ ("isw",
       [ Alcotest.test_case "encode/decode" `Quick test_share_encode_decode;
         Alcotest.test_case "shares balanced" `Quick test_shares_look_random;
         Alcotest.test_case "masked AND correct" `Quick test_masked_and_correct;
         Alcotest.test_case "masked c17 correct" `Quick test_masked_arbitrary_circuit;
         Alcotest.test_case "randomness budget" `Quick test_randomness_count ]);
      ("tvla",
       [ Alcotest.test_case "no false positive" `Quick test_tvla_no_leak_on_identical;
         Alcotest.test_case "detects shift" `Quick test_tvla_detects_mean_shift;
         Alcotest.test_case "escalation" `Quick test_tvla_escalation_monotone_overall ]);
      ("fig2",
       [ Alcotest.test_case "aware passes, unaware leaks" `Slow test_fig2_unaware_leaks_aware_passes;
         Alcotest.test_case "variants functionally equal" `Quick test_fig2_variants_functionally_equal;
         Alcotest.test_case "leaky wire identified" `Slow test_leakiest_wire_is_internal_gate ]);
      ("cpa",
       [ Alcotest.test_case "recovers key" `Quick test_cpa_recovers_key;
         Alcotest.test_case "fails with few/noisy traces" `Quick test_cpa_fails_with_few_traces_high_noise;
         Alcotest.test_case "improves with traces" `Slow test_cpa_success_improves_with_traces ]);
      ("secure_synth",
       [ Alcotest.test_case "recipe end to end" `Slow test_secure_synthesis_end_to_end;
         Alcotest.test_case "verify pair" `Slow test_verify_pair;
         Alcotest.test_case "tvla_check rejects unmasked" `Quick test_tvla_pass_rejects_unmasked;
         Alcotest.test_case "region boundary still leaks" `Quick test_region_mask_boundary_still_leaks ]);
      ("metrics",
       [ Alcotest.test_case "snr" `Quick test_metrics_snr;
         Alcotest.test_case "traces to threshold" `Quick test_traces_to_threshold ]);
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_masked_eval_matches_source ]) ]
