(* Robustness: resource budgets, structured errors, netlist linting,
   malformed-input handling, and the chaos harness driving the safe flow
   through injected failure modes. The invariant under test everywhere:
   engines degrade honestly (Unknown / partial / degradation note), they
   never hang, lie, or let an exception escape a result-typed API. *)

module Budget = Eda_util.Budget
module Eda_error = Eda_util.Eda_error
module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Gen = Netlist.Generators
module Io = Netlist.Io
module Lint = Netlist.Lint
module Solver = Sat.Solver
module Rng = Eda_util.Rng
module Flow = Secure_eda.Flow
module Chaos = Fault.Chaos

(* --- Budget ------------------------------------------------------------ *)

let test_budget_steps () =
  let b = Budget.create ~steps:3 () in
  Alcotest.(check bool) "fresh budget ok" true (Budget.status b = None);
  Budget.tick b;
  Budget.tick b;
  Alcotest.(check bool) "2/3 spent still ok" true (Budget.status b = None);
  Budget.tick b;
  Alcotest.(check bool) "exhausted" true (Budget.status b = Some Budget.Out_of_steps);
  Alcotest.(check bool) "spend reports error" true (Budget.spend b = Error Budget.Out_of_steps)

let test_budget_fake_clock_deadline () =
  let now = ref 0.0 in
  let b = Budget.create ~clock:(fun () -> !now) ~seconds:5.0 () in
  Alcotest.(check bool) "before deadline" true (Budget.status b = None);
  now := 4.9;
  Alcotest.(check bool) "just before deadline" true (Budget.status b = None);
  now := 5.0;
  Alcotest.(check bool) "at deadline" true (Budget.status b = Some Budget.Deadline_passed);
  Alcotest.(check bool) "elapsed tracks clock" true (Budget.elapsed b = 5.0)

let test_budget_cancel () =
  let b = Budget.create ~steps:1000 () in
  Budget.cancel b;
  Alcotest.(check bool) "cancelled" true (Budget.status b = Some Budget.Cancelled)

let test_sub_budget_charges_parent () =
  let parent = Budget.create ~steps:10 () in
  let child = Budget.sub ~steps:100 parent in
  Budget.tick ~cost:10 child;
  (* The child has its own allowance left, but the chain is spent. *)
  Alcotest.(check bool) "parent exhausted" true
    (Budget.status parent = Some Budget.Out_of_steps);
  Alcotest.(check bool) "child sees ancestor exhaustion" true
    (Budget.status child = Some Budget.Out_of_steps)

let test_sub_budget_tighter_than_parent () =
  let parent = Budget.create ~steps:1000 () in
  let child = Budget.sub ~steps:2 parent in
  Budget.tick ~cost:2 child;
  Alcotest.(check bool) "child exhausted" true
    (Budget.status child = Some Budget.Out_of_steps);
  Alcotest.(check bool) "parent still live" true (Budget.status parent = None);
  (* A sibling stage can still draw from the parent. *)
  let sibling = Budget.sub ~steps:2 parent in
  Alcotest.(check bool) "sibling live" true (Budget.status sibling = None)

(* --- Solver three-valued result ---------------------------------------- *)

(* Pigeonhole: n+1 pigeons into n holes. Unsatisfiable, and resolution
   proofs are exponential, so a small conflict budget cannot finish it. *)
let pigeonhole solver n =
  let var = Array.init (n + 1) (fun _ -> Array.init n (fun _ -> Solver.new_var solver)) in
  for p = 0 to n do
    Solver.add_clause solver
      (List.init n (fun h -> Solver.lit_of_var var.(p).(h) ~sign:true))
  done;
  for h = 0 to n - 1 do
    for p = 0 to n do
      for q = p + 1 to n do
        Solver.add_clause solver
          [ Solver.lit_of_var var.(p).(h) ~sign:false;
            Solver.lit_of_var var.(q).(h) ~sign:false ]
      done
    done
  done

let test_solver_unknown_on_tiny_budget () =
  let s = Solver.create () in
  pigeonhole s 5;
  (match Solver.solve ~budget:(Budget.create ~steps:5 ()) s with
   | Solver.Unknown Budget.Out_of_steps -> ()
   | Solver.Unknown _ -> Alcotest.fail "wrong exhaustion reason"
   | Solver.Sat | Solver.Unsat -> Alcotest.fail "php(5) cannot be decided in 5 conflicts");
  (* Learnt clauses persist: the same solver finishes the proof when the
     budget constraint is lifted. *)
  (match Solver.solve s with
   | Solver.Unsat -> ()
   | Solver.Sat | Solver.Unknown _ -> Alcotest.fail "php(5) is unsat");
  let st = Solver.stats s in
  Alcotest.(check bool) "conflicts counted" true (st.Solver.conflicts > 5);
  Alcotest.(check bool) "restarts counted" true (st.Solver.restarts >= 0)

let test_solver_unbudgeted_never_unknown () =
  let s = Solver.create () in
  pigeonhole s 3;
  match Solver.solve s with
  | Solver.Unsat -> ()
  | Solver.Sat | Solver.Unknown _ -> Alcotest.fail "php(3) is unsat"

(* --- Budgeted engines: sat-attack, ATPG, placement ---------------------- *)

let test_sat_attack_budget_exhaustion () =
  let original = Gen.alu 4 in
  let rng = Rng.create 7 in
  let locked = Locking.Lock.epic rng ~key_bits:8 original in
  let oracle = Locking.Sat_attack.oracle_of_circuit original in
  let result =
    Locking.Sat_attack.run ~budget:(Budget.create ~steps:2 ()) ~oracle locked
  in
  (match result.Locking.Sat_attack.status with
   | Locking.Sat_attack.Budget_exhausted _ -> ()
   | Locking.Sat_attack.Converged | Locking.Sat_attack.Iteration_limit ->
     Alcotest.fail "a 2-conflict budget cannot complete the attack");
  Alcotest.(check bool) "iterations reported" true (result.Locking.Sat_attack.iterations >= 0);
  (* And the same attack converges when unbudgeted. *)
  let full = Locking.Sat_attack.run ~oracle locked in
  Alcotest.(check bool) "unbudgeted attack converges" true
    (full.Locking.Sat_attack.status = Locking.Sat_attack.Converged);
  Alcotest.(check bool) "recovered key unlocks" true
    (Locking.Sat_attack.recovered_key_correct locked ~original full)

let test_atpg_partial_coverage () =
  let c = Gen.alu 4 in
  let r = Dft.Atpg.run ~budget:(Budget.create ~steps:3 ()) c in
  (match r.Dft.Atpg.exhausted with
   | Some _ -> ()
   | None -> Alcotest.fail "a 3-step budget cannot cover the alu fault list");
  Alcotest.(check bool) "faults remain" true (r.Dft.Atpg.faults_remaining > 0);
  Alcotest.(check bool) "coverage is partial, not a lie" true (r.Dft.Atpg.coverage < 1.0);
  Alcotest.(check bool) "totals consistent" true
    (r.Dft.Atpg.faults_remaining <= r.Dft.Atpg.faults_total);
  (* Unbudgeted report on a small circuit: complete, nothing remaining. *)
  let full = Dft.Atpg.run (Gen.c17 ()) in
  Alcotest.(check bool) "no exhaustion" true (full.Dft.Atpg.exhausted = None);
  Alcotest.(check int) "nothing remaining" 0 full.Dft.Atpg.faults_remaining;
  Alcotest.(check (float 0.001)) "c17 full coverage" 1.0 full.Dft.Atpg.coverage;
  (* c17's whole fault list is covered by the random-pattern bootstrap,
     so the SAT phase may legitimately run zero queries. *)
  Alcotest.(check bool) "solver stats aggregated" true
    (full.Dft.Atpg.solver_stats.Sat.Solver.conflicts >= 0
     && full.Dft.Atpg.solver_stats.Sat.Solver.decisions >= 0)

let test_placement_budget_truncates_moves () =
  let c = Gen.alu 4 in
  let rng = Rng.create 3 in
  let outcome =
    Physical.Placement.place rng ~moves:2000 ~budget:(Budget.create ~steps:100 ()) c
  in
  let performed = outcome.Physical.Placement.moves_performed in
  Alcotest.(check bool) "stopped early" true (performed < 2000);
  Alcotest.(check bool) "did some work" true (performed > 0);
  let full = Physical.Placement.place (Rng.create 3) ~moves:500 c in
  Alcotest.(check int) "unbudgeted performs all moves" 500
    full.Physical.Placement.moves_performed

(* --- Malformed netlists ------------------------------------------------- *)

let expect_parse_error ?line text =
  match Io.of_string_result text with
  | Ok _ -> Alcotest.fail "malformed netlist accepted"
  | Error (Eda_error.Parse_error { line = got; _ }) ->
    (match line with
     | Some expected -> Alcotest.(check (option int)) "error line" (Some expected) got
     | None -> ())
  | Error e -> Alcotest.fail ("expected Parse_error, got " ^ Eda_error.to_string e)

let c17_text = Io.to_string (Gen.c17 ())

let test_malformed_truncated () =
  let cut = String.length c17_text * 2 / 3 in
  expect_parse_error (String.sub c17_text 0 cut)

let test_malformed_undefined_fanin () =
  expect_parse_error ~line:3 "INPUT(a)\nINPUT(b)\nc = AND(a, ghost)\nOUTPUT(c)"

let test_malformed_self_loop () =
  (* A combinational self-loop is an undefined net at definition time. *)
  expect_parse_error ~line:2 "INPUT(a)\nw = AND(w, a)\nOUTPUT(w)"

let test_malformed_duplicate_net () =
  expect_parse_error ~line:3 "INPUT(a)\nw = NOT(a)\nw = NOT(a)\nOUTPUT(w)"

let test_malformed_unknown_cell () =
  expect_parse_error ~line:2 "INPUT(a)\nw = FROBNICATE(a)\nOUTPUT(w)"

let test_malformed_bad_arity () =
  expect_parse_error ~line:3 "INPUT(a)\nINPUT(b)\nw = NOT(a, b)\nOUTPUT(w)"

let test_legacy_of_string_unchanged () =
  (* The historical exception-based API keeps its exact message. *)
  (match Io.of_string "what is this" with
   | exception Io.Parse_error msg ->
     Alcotest.(check string) "legacy message" "bad line: what is this" msg
   | _ -> Alcotest.fail "garbage accepted");
  (* And a valid netlist still round-trips through both entry points. *)
  (match Io.of_string_result c17_text with
   | Ok c -> Alcotest.(check bool) "well formed" true (Circuit.well_formed c)
   | Error e -> Alcotest.fail (Eda_error.to_string e))

let test_read_file_result_missing () =
  match Io.read_file_result "/nonexistent/netlist.bench" with
  | Ok _ -> Alcotest.fail "missing file accepted"
  | Error (Eda_error.Invalid_input _) -> ()
  | Error e -> Alcotest.fail ("expected Invalid_input, got " ^ Eda_error.to_string e)

(* --- Lint --------------------------------------------------------------- *)

let has_check issues check = List.exists (fun i -> i.Lint.check = check) issues

let test_lint_no_outputs () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  ignore (Circuit.add_gate ~name:"w" c Gate.Not [ a ]);
  Alcotest.(check bool) "no-outputs error" true (has_check (Lint.errors c) "no-outputs");
  match Lint.validate c with
  | Error (Eda_error.Lint_error { check = "no-outputs"; _ }) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Eda_error.to_string e)
  | Ok _ -> Alcotest.fail "validate accepted an output-less circuit"

let test_lint_duplicate_output () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let w = Circuit.add_gate ~name:"w" c Gate.Not [ a ] in
  Circuit.set_output c "y" w;
  Circuit.set_output c "y" a;
  Alcotest.(check bool) "duplicate-output error" true
    (has_check (Lint.errors c) "duplicate-output")

let test_lint_dangling_net_warning () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let w = Circuit.add_gate ~name:"w" c Gate.Not [ a ] in
  ignore (Circuit.add_gate ~name:"orphan" c Gate.Not [ a ]);
  Circuit.set_output c "w" w;
  Alcotest.(check bool) "dangling warning" true (has_check (Lint.check c) "dangling-net");
  Alcotest.(check bool) "warnings tolerated by default" true (Lint.validate c = Ok c);
  match Lint.validate ~allow_warnings:false c with
  | Error (Eda_error.Lint_error _) -> ()
  | Ok _ -> Alcotest.fail "strict validate ignored a warning"
  | Error e -> Alcotest.fail ("wrong error: " ^ Eda_error.to_string e)

(* Corrupt a well-formed circuit in memory (the node record's fanins are
   mutable precisely so tests can fabricate violations no parser emits). *)
let test_lint_fabricated_corruption () =
  let c = Gen.c17 () in
  Alcotest.(check bool) "clean before corruption" true (Lint.errors c = []);
  let victim = Circuit.node_count c - 1 in
  let nd = Circuit.node c victim in
  let original = nd.Circuit.fanins in
  nd.Circuit.fanins <- [| 9999; 0 |];
  Alcotest.(check bool) "undefined fanin caught" true
    (has_check (Lint.errors c) "undefined-fanin");
  nd.Circuit.fanins <- [| victim; 0 |];
  Alcotest.(check bool) "combinational loop caught" true
    (has_check (Lint.errors c) "combinational-loop");
  nd.Circuit.fanins <- original;
  Alcotest.(check bool) "clean after restore" true (Lint.errors c = [])

(* --- Safe flow: budgets, degradation, checkpoint/resume ----------------- *)

let test_flow_safe_unbudgeted_matches_run () =
  let c = Gen.c17 () in
  match Flow.run (Rng.create 1) c with
  | Error e -> Alcotest.fail (Eda_error.to_string e)
  | Ok r ->
    Alcotest.(check int) "four stages" 4 (List.length r.Flow.stages);
    Alcotest.(check int) "nothing degraded" 0 r.Flow.degraded_stages;
    List.iter
      (fun sr -> Alcotest.(check bool) "no note" true (sr.Flow.degraded = None))
      r.Flow.stages

let test_flow_starved_budget_degrades_every_stage () =
  let c = Gen.alu 4 in
  match Flow.run (Rng.create 1) ~budget:(Chaos.starved_budget ()) c with
  | Error e -> Alcotest.fail (Eda_error.to_string e)
  | Ok r ->
    Alcotest.(check int) "all four stages reported" 4 (List.length r.Flow.stages);
    Alcotest.(check int) "every stage degraded" 4 r.Flow.degraded_stages;
    List.iter
      (fun sr ->
        Alcotest.(check bool)
          (Flow.stage_name sr.Flow.stage ^ " carries a note") true
          (sr.Flow.degraded <> None))
      r.Flow.stages

let test_flow_rejects_invalid_circuit () =
  let c = Circuit.create () in
  ignore (Circuit.add_input ~name:"a" c);
  match Flow.run (Rng.create 1) c with
  | Error (Eda_error.Lint_error _) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Eda_error.to_string e)
  | Ok _ -> Alcotest.fail "flow accepted an output-less circuit"

let test_flow_checkpoint_resume () =
  let c = Gen.c17 () in
  let first =
    match Flow.run (Rng.create 1) ~stages:[ Flow.Logic_synthesis ] c with
    | Ok r -> r
    | Error e -> Alcotest.fail (Eda_error.to_string e)
  in
  Alcotest.(check int) "one stage done" 1 (List.length first.Flow.stages);
  match Flow.run (Rng.create 1) ~resume:first.Flow.checkpoint c with
  | Error e -> Alcotest.fail (Eda_error.to_string e)
  | Ok r ->
    Alcotest.(check int) "all four stages after resume" 4 (List.length r.Flow.stages);
    let synth_reports =
      List.filter (fun sr -> sr.Flow.stage = Flow.Logic_synthesis) r.Flow.stages
    in
    Alcotest.(check int) "synthesis not re-run" 1 (List.length synth_reports)

(* --- On-disk checkpoints ------------------------------------------------- *)

let tmp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

let flow_once_checkpoint () =
  (* A checkpoint with real content: one completed stage. *)
  match Flow.run (Rng.create 1) ~stages:[ Flow.Logic_synthesis ] (Gen.c17 ()) with
  | Ok r -> r.Flow.checkpoint
  | Error e -> Alcotest.fail (Eda_error.to_string e)

let test_checkpoint_roundtrip () =
  let cp = flow_once_checkpoint () in
  match Flow.checkpoint_of_string (Flow.checkpoint_to_string cp) with
  | Error e -> Alcotest.fail (Eda_error.to_string e)
  | Ok got ->
    Alcotest.(check int) "stage reports survive" (List.length cp.Flow.done_stages)
      (List.length got.Flow.done_stages);
    Alcotest.(check string) "circuit survives bit-for-bit"
      (Io.to_string cp.Flow.circuit) (Io.to_string got.Flow.circuit);
    List.iter2
      (fun a b ->
        Alcotest.(check bool) "report fields equal" true
          (a.Flow.stage = b.Flow.stage && a.Flow.area = b.Flow.area
           && a.Flow.delay_ps = b.Flow.delay_ps && a.Flow.note = b.Flow.note
           && a.Flow.degraded = b.Flow.degraded && a.Flow.wirelength = b.Flow.wirelength
           && a.Flow.fault_coverage = b.Flow.fault_coverage))
      cp.Flow.done_stages got.Flow.done_stages

let test_checkpoint_corrupt_files_rejected () =
  let cp = flow_once_checkpoint () in
  List.iter
    (fun corruption ->
      let path = tmp_path ("robustness-ck-" ^ Chaos.file_corruption_name corruption ^ ".json") in
      (match Flow.save_checkpoint path cp with
       | Ok () -> ()
       | Error e -> Alcotest.fail (Eda_error.to_string e));
      Chaos.corrupt_file (Rng.create 13) corruption path;
      match Flow.load_checkpoint path with
      | Ok _ -> Alcotest.failf "%s: corrupt checkpoint accepted"
                  (Chaos.file_corruption_name corruption)
      | Error (Eda_error.Invalid_input { what = "checkpoint"; _ }) -> ()
      | Error e ->
        Alcotest.failf "%s: wrong error class: %s"
          (Chaos.file_corruption_name corruption) (Eda_error.to_string e))
    Chaos.all_file_corruptions

let test_checkpoint_stale_version_rejected () =
  let cp = flow_once_checkpoint () in
  let bumped =
    (* Rewrite the version field; the hash guards content, the version
       guards format drift, so the rejection must name the version. *)
    let text = Flow.checkpoint_to_string cp in
    let marker = "\"version\":1" in
    let idx =
      let n = String.length text and m = String.length marker in
      let rec scan i =
        if i + m > n then Alcotest.fail "version field not found"
        else if String.sub text i m = marker then i
        else scan (i + 1)
      in
      scan 0
    in
    String.sub text 0 idx ^ "\"version\":999"
    ^ String.sub text (idx + String.length marker) (String.length text - idx - String.length marker)
  in
  match Flow.checkpoint_of_string bumped with
  | Ok _ -> Alcotest.fail "stale-version checkpoint accepted"
  | Error (Eda_error.Invalid_input { what = "checkpoint"; msg }) ->
    Alcotest.(check bool) "names the version" true
      (let n = String.length msg in
       let rec scan i = i + 3 <= n && (String.sub msg i 3 = "999" || scan (i + 1)) in
       scan 0)
  | Error e -> Alcotest.fail ("wrong error class: " ^ Eda_error.to_string e)

let test_checkpoint_to_persists_and_resumes () =
  let path = tmp_path "robustness-flow-ck.json" in
  if Sys.file_exists path then Sys.remove path;
  let c = Gen.c17 () in
  (match Flow.run (Rng.create 1) ~checkpoint_to:path c with
   | Error e -> Alcotest.fail (Eda_error.to_string e)
   | Ok _ -> ());
  match Flow.load_checkpoint path with
  | Error e -> Alcotest.fail (Eda_error.to_string e)
  | Ok cp ->
    Alcotest.(check int) "all four stages persisted" 4 (List.length cp.Flow.done_stages);
    (* Resuming from the loaded file re-runs nothing. *)
    (match Flow.run (Rng.create 1) ~resume:cp c with
     | Error e -> Alcotest.fail (Eda_error.to_string e)
     | Ok r ->
       Alcotest.(check int) "four stages total" 4 (List.length r.Flow.stages);
       let synth_reports =
         List.filter (fun sr -> sr.Flow.stage = Flow.Logic_synthesis) r.Flow.stages
       in
       Alcotest.(check int) "synthesis not re-run" 1 (List.length synth_reports))

(* --- Chaos -------------------------------------------------------------- *)

(* Parse-then-flow consumer: the composition a CLI user exercises. *)
let parse_and_flow text =
  match Io.of_string_result text with
  | Error e -> Error e
  | Ok c ->
    (match Flow.run (Rng.create 5) ~budget:(Budget.create ~steps:100_000 ()) c with
     | Error e -> Error e
     | Ok r -> Ok (Printf.sprintf "%d stages, %d degraded" (List.length r.Flow.stages)
                     r.Flow.degraded_stages))

let test_chaos_corruption_campaign () =
  let rng = Rng.create 11 in
  let observations =
    Chaos.corruption_campaign rng ~text:c17_text ~consumer:parse_and_flow
  in
  Alcotest.(check int) "every corruption exercised" (List.length Chaos.all_corruptions)
    (List.length observations);
  List.iter
    (fun o ->
      Alcotest.(check bool) (Chaos.describe_observation o) true (Chaos.graceful o))
    observations;
  let degraded =
    List.filter (fun o -> match o.Chaos.outcome with Chaos.Degraded _ -> true | _ -> false)
      observations
  in
  Alcotest.(check bool) "at least three corruptions forced degradation" true
    (List.length degraded >= 3)

let test_chaos_budget_starvation_scenarios () =
  let c = Gen.alu 4 in
  let scenarios =
    [ ("flow:starved", fun () ->
        (match Flow.run (Rng.create 2) ~budget:(Chaos.starved_budget ()) c with
         | Ok r -> Ok (Printf.sprintf "%d degraded" r.Flow.degraded_stages)
         | Error e -> Error e));
      ("flow:tiny", fun () ->
        (match Flow.run (Rng.create 2) ~budget:(Chaos.tiny_budget ()) c with
         | Ok r -> Ok (Printf.sprintf "%d degraded" r.Flow.degraded_stages)
         | Error e -> Error e));
      ("atpg:starved", fun () ->
        (match Dft.Atpg.run_checked ~budget:(Chaos.starved_budget ()) c with
         | Ok r ->
           Ok (Printf.sprintf "%d/%d faults left" r.Dft.Atpg.faults_remaining
                 r.Dft.Atpg.faults_total)
         | Error e -> Error e)) ]
  in
  let observations = Chaos.execute scenarios in
  Alcotest.(check bool) "all graceful" true (Chaos.all_graceful observations)

let test_chaos_detects_crashes () =
  let o = Chaos.observe "boom" (fun () -> failwith "unhandled") in
  (match o.Chaos.outcome with
   | Chaos.Crashed _ -> ()
   | Chaos.Survived _ | Chaos.Degraded _ -> Alcotest.fail "escaped exception not flagged");
  Alcotest.(check bool) "crash is not graceful" false (Chaos.graceful o)

let () =
  Alcotest.run "robustness"
    [ ("budget",
       [ Alcotest.test_case "step accounting" `Quick test_budget_steps;
         Alcotest.test_case "deadline with fake clock" `Quick test_budget_fake_clock_deadline;
         Alcotest.test_case "cancellation" `Quick test_budget_cancel;
         Alcotest.test_case "sub-budget charges parent" `Quick test_sub_budget_charges_parent;
         Alcotest.test_case "sub-budget tighter than parent" `Quick
           test_sub_budget_tighter_than_parent ]);
      ("solver",
       [ Alcotest.test_case "unknown on tiny budget, resumable" `Quick
           test_solver_unknown_on_tiny_budget;
         Alcotest.test_case "unbudgeted never unknown" `Quick
           test_solver_unbudgeted_never_unknown ]);
      ("budgeted engines",
       [ Alcotest.test_case "sat-attack exhaustion" `Quick test_sat_attack_budget_exhaustion;
         Alcotest.test_case "atpg partial coverage" `Quick test_atpg_partial_coverage;
         Alcotest.test_case "placement truncated moves" `Quick
           test_placement_budget_truncates_moves ]);
      ("malformed netlists",
       [ Alcotest.test_case "truncated file" `Quick test_malformed_truncated;
         Alcotest.test_case "undefined fanin" `Quick test_malformed_undefined_fanin;
         Alcotest.test_case "combinational self-loop" `Quick test_malformed_self_loop;
         Alcotest.test_case "duplicate net" `Quick test_malformed_duplicate_net;
         Alcotest.test_case "unknown cell" `Quick test_malformed_unknown_cell;
         Alcotest.test_case "bad arity" `Quick test_malformed_bad_arity;
         Alcotest.test_case "legacy of_string unchanged" `Quick test_legacy_of_string_unchanged;
         Alcotest.test_case "missing file as result" `Quick test_read_file_result_missing ]);
      ("lint",
       [ Alcotest.test_case "no outputs" `Quick test_lint_no_outputs;
         Alcotest.test_case "duplicate output" `Quick test_lint_duplicate_output;
         Alcotest.test_case "dangling net warning" `Quick test_lint_dangling_net_warning;
         Alcotest.test_case "fabricated corruption" `Quick test_lint_fabricated_corruption ]);
      ("safe flow",
       [ Alcotest.test_case "unbudgeted clean run" `Quick test_flow_safe_unbudgeted_matches_run;
         Alcotest.test_case "starved budget degrades every stage" `Quick
           test_flow_starved_budget_degrades_every_stage;
         Alcotest.test_case "rejects invalid circuit" `Quick test_flow_rejects_invalid_circuit;
         Alcotest.test_case "checkpoint/resume" `Quick test_flow_checkpoint_resume ]);
      ("on-disk checkpoints",
       [ Alcotest.test_case "string round-trip" `Quick test_checkpoint_roundtrip;
         Alcotest.test_case "corrupt files rejected" `Quick
           test_checkpoint_corrupt_files_rejected;
         Alcotest.test_case "stale version rejected" `Quick
           test_checkpoint_stale_version_rejected;
         Alcotest.test_case "checkpoint_to persists and resumes" `Quick
           test_checkpoint_to_persists_and_resumes ]);
      ("chaos",
       [ Alcotest.test_case "corruption campaign" `Quick test_chaos_corruption_campaign;
         Alcotest.test_case "budget starvation scenarios" `Quick
           test_chaos_budget_starvation_scenarios;
         Alcotest.test_case "detects crashes" `Quick test_chaos_detects_crashes ]) ]
