(* Tests for the domain pool and the determinism contract of the
   pool-aware engines: the same answer at any domain count. *)

module Pool = Eda_util.Pool
module Budget = Eda_util.Budget
module Rng = Eda_util.Rng
module Gen = Netlist.Generators

(* --- Rng.split ---------------------------------------------------------- *)

let test_rng_split_reproducible () =
  let draws rng = Array.init 8 (fun _ -> Rng.next_int64 rng) in
  let a = Array.map draws (Rng.split (Rng.create 42) 6) in
  let b = Array.map draws (Rng.split (Rng.create 42) 6) in
  Alcotest.(check bool) "same parent seed, same streams" true (a = b);
  let c = Array.map draws (Rng.split (Rng.create 43) 6) in
  Alcotest.(check bool) "different parent seed, different streams" true (a <> c)

let test_rng_split_disjoint () =
  (* Streams must look independent: across 16 streams x 16 draws, no
     value repeats (2^-64-scale collision probability if truly random). *)
  let streams = Rng.split (Rng.create 7) 16 in
  let seen = Hashtbl.create 256 in
  Array.iteri
    (fun s rng ->
      for d = 0 to 15 do
        let v = Rng.next_int64 rng in
        if Hashtbl.mem seen v then
          Alcotest.failf "stream %d draw %d collides with an earlier draw" s d;
        Hashtbl.replace seen v ()
      done)
    streams;
  Alcotest.(check int) "all draws distinct" 256 (Hashtbl.length seen)

let test_rng_split_bad_count () =
  Alcotest.check_raises "negative count" (Invalid_argument "Rng.split: negative count")
    (fun () -> ignore (Rng.split (Rng.create 1) (-1)))

(* --- pool core ---------------------------------------------------------- *)

let test_map_ordered_any_size () =
  let inputs = Array.init 100 (fun i -> i) in
  let expect = Array.map (fun i -> Some (i * i)) inputs in
  List.iter
    (fun d ->
      Pool.with_pool ~num_domains:d (fun p ->
          let got = Pool.parallel_map p ~f:(fun _ctx x -> x * x) inputs in
          Alcotest.(check bool)
            (Printf.sprintf "ordered results at %d domains" d)
            true (got = expect)))
    [ 1; 2; 3; 8 ]

let test_reduce_deterministic () =
  (* Float reduction order matters; the ordered fold must give the exact
     same sum at every domain count. *)
  let inputs = Array.init 257 (fun i -> i) in
  let sum d =
    Pool.with_pool ~num_domains:d (fun p ->
        Pool.parallel_reduce p
          ~f:(fun _ctx i -> 1.0 /. Float.of_int (i + 1))
          ~combine:( +. ) ~init:0.0 inputs)
  in
  let s1 = sum 1 in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "bitwise-equal sum at %d domains" d)
        true (Float.equal s1 (sum d)))
    [ 2; 4; 8 ]

let test_task_exception_reraised () =
  Pool.with_pool ~num_domains:2 (fun p ->
      Alcotest.check_raises "lowest-index exception wins" (Failure "task 3")
        (fun () ->
          ignore
            (Pool.parallel_map p
               ~f:(fun _ctx i -> if i >= 3 then failwith (Printf.sprintf "task %d" i))
               (Array.init 8 (fun i -> i))));
      (* The pool survives a raising batch. *)
      let ok = Pool.parallel_map p ~f:(fun _ctx x -> x + 1) [| 1; 2; 3 |] in
      Alcotest.(check bool) "pool reusable after exception" true
        (ok = [| Some 2; Some 3; Some 4 |]))

let test_budget_cancellation_partial () =
  (* Task 0 (always on the calling slot, which owns the budget poll)
     cancels the budget; the spinning tasks only return once they observe
     cancellation. Stripes at 2 domains are [0;1] and [2;3], so task 1
     and task 3 are deterministically skipped, task 0 deterministically
     completes, and every domain joins. *)
  Pool.with_pool ~num_domains:2 (fun p ->
      let b = Budget.create ~steps:1000 () in
      let results =
        Pool.parallel_map ~budget:b p
          ~f:(fun ctx i ->
            if i = 0 then Budget.cancel b
            else while not (ctx.Pool.cancelled ()) do Domain.cpu_relax () done;
            i)
          (Array.init 4 (fun i -> i))
      in
      Alcotest.(check bool) "task 0 completed" true (results.(0) = Some 0);
      Alcotest.(check bool) "task 1 skipped" true (results.(1) = None);
      Alcotest.(check bool) "task 3 skipped" true (results.(3) = None);
      (* A fresh batch on the same pool still runs everything. *)
      let again = Pool.parallel_map p ~f:(fun _ctx x -> -x) [| 1; 2 |] in
      Alcotest.(check bool) "pool reusable after cancellation" true
        (again = [| Some (-1); Some (-2) |]))

let test_exhausted_budget_skips_batch () =
  Pool.with_pool ~num_domains:2 (fun p ->
      let b = Budget.create ~steps:1 () in
      Budget.tick b;
      let r = Pool.parallel_map ~budget:b p ~f:(fun _ctx x -> x) [| 1; 2; 3 |] in
      Alcotest.(check bool) "nothing ran" true (Array.for_all (( = ) None) r))

let test_race_returns_a_winner () =
  Pool.with_pool ~num_domains:2 (fun p ->
      match
        Pool.race p
          ~f:(fun _ctx i -> if i mod 2 = 1 then Some (i * 10) else None)
          (Array.init 6 (fun i -> i))
      with
      | None -> Alcotest.fail "a decisive task must win"
      | Some (i, v) ->
        Alcotest.(check bool) "winner is a decisive task" true (i mod 2 = 1);
        Alcotest.(check int) "payload matches winner" (i * 10) v)

let test_default_jobs_env () =
  let set v = Unix.putenv "SECURE_EDA_JOBS" v in
  set "3";
  Alcotest.(check int) "reads SECURE_EDA_JOBS" 3 (Pool.default_jobs ());
  set "not-a-number";
  Alcotest.(check int) "garbage falls back to 1" 1 (Pool.default_jobs ());
  set "0";
  Alcotest.(check int) "non-positive falls back to 1" 1 (Pool.default_jobs ());
  set "999";
  Alcotest.(check int) "clamped to 64" 64 (Pool.default_jobs ());
  set ""

(* --- engine determinism across domain counts ---------------------------- *)

let pool_sizes = [ 1; 2; 8 ]

let test_atpg_identical_across_domains () =
  let c = Gen.alu 4 in
  let seq = Dft.Atpg.run c in
  List.iter
    (fun d ->
      Pool.with_pool ~num_domains:d (fun p ->
          let r = Dft.Atpg.run ~pool:p c in
          let tag fmt = Printf.sprintf fmt d in
          Alcotest.(check bool)
            (tag "same patterns at %d domains") true
            (r.Dft.Atpg.patterns = seq.Dft.Atpg.patterns);
          Alcotest.(check (float 1e-12))
            (tag "same coverage at %d domains")
            seq.Dft.Atpg.coverage r.Dft.Atpg.coverage;
          Alcotest.(check bool)
            (tag "same untestable set at %d domains") true
            (r.Dft.Atpg.untestable = seq.Dft.Atpg.untestable)))
    pool_sizes

let test_atpg_partial_under_pooled_budget () =
  let c = Gen.alu 4 in
  Pool.with_pool ~num_domains:2 (fun p ->
      let b = Budget.create ~steps:12 () in
      let r = Dft.Atpg.run ~budget:b ~pool:p c in
      Alcotest.(check bool) "exhaustion reported" true (r.Dft.Atpg.exhausted <> None);
      Alcotest.(check bool) "some faults left" true (r.Dft.Atpg.faults_remaining > 0);
      Alcotest.(check bool) "partial coverage is honest" true
        (r.Dft.Atpg.coverage >= 0.0 && r.Dft.Atpg.coverage < 1.0);
      (* Whatever patterns were produced must be real detecting patterns. *)
      let faults = Fault.Model.all_stuck_at_faults c in
      Alcotest.(check bool) "patterns verify by simulation" true
        (Fault.Model.coverage c ~faults ~patterns:r.Dft.Atpg.patterns
         >= r.Dft.Atpg.coverage -. 1e-9))

let test_tvla_identical_across_domains () =
  let masked = Sidechannel.Leakage.synthesize_masked Sidechannel.Leakage.Security_unaware in
  let campaign pool =
    Sidechannel.Leakage.tvla_campaign_seeded ?pool (Rng.create 515) masked
      ~traces_per_class:300 ~noise_sigma:0.3
  in
  (* Leak detection itself is covered by the sidechannel suite; here the
     subject is determinism, so 300 traces per class is plenty. *)
  let seq = campaign None in
  Alcotest.(check bool) "t statistic is meaningful" true (seq.Sidechannel.Tvla.max_abs_t > 0.0);
  List.iter
    (fun d ->
      Pool.with_pool ~num_domains:d (fun p ->
          let r = campaign (Some p) in
          Alcotest.(check bool)
            (Printf.sprintf "bit-identical t statistics at %d domains" d)
            true
            (r.Sidechannel.Tvla.t_per_sample = seq.Sidechannel.Tvla.t_per_sample
             && Float.equal r.Sidechannel.Tvla.max_abs_t seq.Sidechannel.Tvla.max_abs_t
             && r.Sidechannel.Tvla.leaky_samples = seq.Sidechannel.Tvla.leaky_samples)))
    pool_sizes

let test_placement_multistart_identical_across_domains () =
  let c = Gen.alu 4 in
  let place pool =
    Physical.Placement.place ~starts:4 ~moves:1500 ?pool (Rng.create 99) c
  in
  let seq = place None in
  Alcotest.(check bool) "multi-start beats or ties a single start" true
    (Physical.Placement.wirelength seq.Physical.Placement.placement
     <= Physical.Placement.wirelength
          (Physical.Placement.place ~moves:1500 (Rng.create 99) c).Physical.Placement
            .placement);
  List.iter
    (fun d ->
      Pool.with_pool ~num_domains:d (fun p ->
          let r = place (Some p) in
          Alcotest.(check int)
            (Printf.sprintf "same winning start at %d domains" d)
            seq.Physical.Placement.best_start r.Physical.Placement.best_start;
          Alcotest.(check bool)
            (Printf.sprintf "same positions at %d domains" d)
            true
            (r.Physical.Placement.placement.Physical.Placement.position
             = seq.Physical.Placement.placement.Physical.Placement.position)))
    pool_sizes

let test_flow_identical_with_pool () =
  let c = Gen.c17 () in
  let run pool =
    match Secure_eda.Flow.run (Rng.create 4) ?pool c with
    | Ok r -> r
    | Error e -> Alcotest.fail (Eda_util.Eda_error.to_string e)
  in
  let seq = run None in
  Pool.with_pool ~num_domains:2 (fun p ->
      let r = run (Some p) in
      let coverages rep =
        List.map
          (fun sr -> sr.Secure_eda.Flow.fault_coverage)
          rep.Secure_eda.Flow.stages
      in
      Alcotest.(check bool) "same stage coverage with a pool" true
        (coverages r = coverages seq);
      Alcotest.(check bool) "same final netlist" true
        (Netlist.Sim.equivalent_exhaustive r.Secure_eda.Flow.final
           seq.Secure_eda.Flow.final))

let test_sat_attack_portfolio_converges () =
  let rng = Rng.create 1234 in
  let original = Gen.alu 4 in
  let locked = Locking.Lock.epic rng ~key_bits:8 original in
  Pool.with_pool ~num_domains:2 (fun p ->
      let result =
        Locking.Sat_attack.run ~pool:p
          ~oracle:(Locking.Sat_attack.oracle_of_circuit original) locked
      in
      Alcotest.(check bool) "portfolio attack converges" true
        (result.Locking.Sat_attack.status = Locking.Sat_attack.Converged);
      Alcotest.(check bool) "recovered key unlocks the design" true
        (Locking.Sat_attack.recovered_key_correct locked ~original result))

(* --- cross-domain trace capture ----------------------------------------- *)

module T = Eda_util.Telemetry

(* Deterministic clocks: the caller ticks from 0, task [i] from
   1000*(i+1) — every event timestamp is a pure function of who emitted
   it, never of scheduling. *)
let fake_clock () =
  let t = ref 0.0 in
  fun () ->
    let v = !t in
    t := v +. 1.0;
    v

let task_clock i =
  let t = ref (1000.0 *. Float.of_int (i + 1)) in
  fun () ->
    let v = !t in
    t := v +. 1.0;
    v

(* One traced pooled batch at [d] domains: 8 tasks, each recording a
   span, a counter and a gauge. Returns the raw merged event list. *)
let traced_batch d =
  let sink, events = T.memory_sink () in
  T.with_sink ~clock:(fake_clock ()) ~task_clock sink (fun () ->
      Pool.with_pool ~num_domains:d (fun p ->
          ignore
            (Pool.parallel_map p
               ~f:(fun _ctx i ->
                 T.with_span "task.work" ~attrs:[ ("i", T.Int i) ] (fun () ->
                     T.count "work.done" 1;
                     T.observe "work.cost" (Float.of_int i));
                 i * i)
               (Array.init 8 (fun i -> i)))));
  events ()

let canonical_lines events =
  String.concat "\n" (List.map T.event_to_line (T.Trace.canonicalize events))

let test_merged_trace_bit_identical () =
  let base = canonical_lines (traced_batch 1) in
  Alcotest.(check bool) "canonical trace is non-trivial" true (String.length base > 0);
  List.iter
    (fun d ->
      Alcotest.(check string)
        (Printf.sprintf "canonical merged trace identical at %d domains" d)
        base
        (canonical_lines (traced_batch d)))
    [ 2; 8 ]

let test_merged_trace_structure () =
  let events = traced_batch 2 in
  match T.Trace.of_events events with
  | Error msg -> Alcotest.fail ("merged trace invalid: " ^ msg)
  | Ok trace ->
    let tasks = T.Trace.find_spans trace "pool.task" in
    Alcotest.(check int) "one pool.task span per task" 8 (List.length tasks);
    Alcotest.(check (list (option int))) "task attrs in index order"
      (List.init 8 (fun i -> Some i))
      (List.map
         (fun sp ->
           match List.assoc_opt "task" sp.T.Trace.attrs with
           | Some (T.Int i) -> Some i
           | _ -> None)
         tasks);
    List.iter
      (fun sp ->
        Alcotest.(check bool) "every task span carries a domain attr" true
          (List.mem_assoc "domain" sp.T.Trace.attrs);
        Alcotest.(check (list string)) "worker span nested under its task"
          [ "task.work" ]
          (List.map (fun s -> s.T.Trace.name) sp.T.Trace.children))
      tasks;
    (match T.Trace.find_spans trace "pool.batch" with
     | [ batch ] ->
       Alcotest.(check int) "all tasks reparented under pool.batch" 8
         (List.length
            (List.filter (fun s -> s.T.Trace.name = "pool.task") batch.T.Trace.children))
     | l -> Alcotest.failf "expected one pool.batch span, got %d" (List.length l));
    Alcotest.(check (option (float 1e-9))) "worker counters merged" (Some 8.0)
      (List.assoc_opt "work.done" trace.T.Trace.counter_totals);
    (* Worker moments merged in task order and summarized at teardown. *)
    (match List.assoc_opt "work.cost" trace.T.Trace.hists with
     | Some attrs ->
       Alcotest.(check bool) "hist n covers every task" true
         (List.assoc_opt "n" attrs = Some (T.Int 8));
       Alcotest.(check bool) "hist min observed" true
         (List.assoc_opt "min" attrs = Some (T.Float 0.0));
       Alcotest.(check bool) "hist max observed" true
         (List.assoc_opt "max" attrs = Some (T.Float 7.0))
     | None -> Alcotest.fail "worker histogram lost in merge");
    (* The per-domain timeline sees the capture spans. *)
    let timeline = T.Trace.domain_timeline trace in
    Alcotest.(check int) "timeline covers all 8 tasks" 8
      (List.fold_left (fun acc (_, tasks, _) -> acc + tasks) 0 timeline)

let test_crashed_worker_trace_well_formed () =
  (* A raising task still delivers its capture buffer: the merged trace
     stays structurally valid and the crashed pool.task span carries the
     error attribute. Task 0 is on the caller stripe, so it always runs. *)
  let sink, events = T.memory_sink () in
  let raised =
    T.with_sink ~clock:(fake_clock ()) ~task_clock sink (fun () ->
        Pool.with_pool ~num_domains:2 (fun p ->
            match
              Pool.parallel_map p
                ~f:(fun _ctx i ->
                  if i = 0 then failwith "boom";
                  i)
                (Array.init 4 (fun i -> i))
            with
            | _ -> false
            | exception Failure _ -> true))
  in
  Alcotest.(check bool) "exception re-raised through the batch" true raised;
  match T.Trace.of_events (events ()) with
  | Error msg -> Alcotest.fail ("crashed batch broke the trace: " ^ msg)
  | Ok trace ->
    let crashed =
      List.filter
        (fun sp -> List.mem_assoc "error" sp.T.Trace.end_attrs)
        (T.Trace.find_spans trace "pool.task")
    in
    (match crashed with
     | [ sp ] ->
       Alcotest.(check bool) "the crashed span is task 0" true
         (List.assoc_opt "task" sp.T.Trace.attrs = Some (T.Int 0));
       Alcotest.(check bool) "crashed span still closed" true
         (sp.T.Trace.duration <> None)
     | l -> Alcotest.failf "expected exactly one crashed task span, got %d" (List.length l));
    (match T.Trace.find_spans trace "pool.batch" with
     | [ batch ] ->
       Alcotest.(check bool) "batch span records the re-raise" true
         (List.mem_assoc "error" batch.T.Trace.end_attrs)
     | _ -> Alcotest.fail "expected one pool.batch span")

let () =
  Alcotest.run "pool"
    [ ( "rng-split",
        [ Alcotest.test_case "reproducible" `Quick test_rng_split_reproducible;
          Alcotest.test_case "disjoint" `Quick test_rng_split_disjoint;
          Alcotest.test_case "bad count" `Quick test_rng_split_bad_count ] );
      ( "pool",
        [ Alcotest.test_case "ordered map" `Quick test_map_ordered_any_size;
          Alcotest.test_case "deterministic reduce" `Quick test_reduce_deterministic;
          Alcotest.test_case "exception reraised" `Quick test_task_exception_reraised;
          Alcotest.test_case "budget cancellation" `Quick test_budget_cancellation_partial;
          Alcotest.test_case "pre-exhausted budget" `Quick test_exhausted_budget_skips_batch;
          Alcotest.test_case "race" `Quick test_race_returns_a_winner;
          Alcotest.test_case "default jobs env" `Quick test_default_jobs_env ] );
      ( "tracing",
        [ Alcotest.test_case "merged trace bit-identical" `Quick
            test_merged_trace_bit_identical;
          Alcotest.test_case "merged trace structure" `Quick test_merged_trace_structure;
          Alcotest.test_case "crashed worker trace" `Quick
            test_crashed_worker_trace_well_formed ] );
      ( "engines",
        [ Alcotest.test_case "atpg identical" `Quick test_atpg_identical_across_domains;
          Alcotest.test_case "atpg pooled partial" `Quick test_atpg_partial_under_pooled_budget;
          Alcotest.test_case "tvla identical" `Quick test_tvla_identical_across_domains;
          Alcotest.test_case "placement identical" `Quick
            test_placement_multistart_identical_across_domains;
          Alcotest.test_case "flow identical" `Quick test_flow_identical_with_pool;
          Alcotest.test_case "sat-attack portfolio" `Quick
            test_sat_attack_portfolio_converges ] ) ]
