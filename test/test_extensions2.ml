(* Tests for the second extension batch: clock-glitch attacks + canary
   sensor, camouflage-constrained synthesis, key-sensitization attack,
   approximate QIF (cross-checks) and Unroll corner cases. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Gen = Netlist.Generators
module Rng = Eda_util.Rng
module Glitch = Fault.Glitch_attack

(* A carry-propagating stimulus for the 8-bit ripple adder: a = 0xFF,
   b = 0, cin = 1 ripples through every stage. *)
let adder = Gen.ripple_adder 8
let adder_prev = Array.make 17 false
let adder_next = Array.init 17 (fun i -> i < 8 || i = 16)

let test_capture_full_period_is_golden () =
  let golden = Netlist.Sim.eval adder adder_next in
  let captured =
    Glitch.glitched_outputs adder ~period_ps:10_000.0 ~prev_inputs:adder_prev
      ~next_inputs:adder_next
  in
  Alcotest.(check bool) "long period captures settled values" true (captured = golden)

let test_glitch_induces_fault () =
  let golden = Netlist.Sim.eval adder adder_next in
  let captured =
    Glitch.glitched_outputs adder ~period_ps:200.0 ~prev_inputs:adder_prev
      ~next_inputs:adder_next
  in
  Alcotest.(check bool) "short period corrupts" true (captured <> golden)

let test_attack_sweep_finds_margin () =
  let crit = (Timing.Sta.analyze adder).Timing.Sta.critical_path_delay in
  match
    Glitch.attack_sweep adder
      ~periods:[ 900.0; 800.0; 700.0; 600.0; 500.0 ]
      ~prev_inputs:adder_prev ~next_inputs:adder_next
  with
  | None -> Alcotest.fail "sweep must find a faulting period"
  | Some worst ->
    Alcotest.(check bool) "faulting period below critical path" true (worst < crit)

let test_sensor_never_silent () =
  let sensor = Glitch.add_sensor ~margin_ps:60.0 adder in
  Alcotest.(check bool) "canary slower than critical path" true
    (sensor.Glitch.canary_delay_ps
    > (Timing.Sta.analyze adder).Timing.Sta.critical_path_delay);
  let silent, detected, clean =
    Glitch.sweep_with_sensor sensor
      ~periods:[ 1000.0; 900.0; 800.0; 700.0; 600.0; 500.0; 400.0; 300.0 ]
      ~prev_inputs:adder_prev ~next_inputs:adder_next
  in
  Alcotest.(check int) "no silent corruption" 0 silent;
  Alcotest.(check bool) "glitches detected" true (detected > 0);
  Alcotest.(check bool) "slow clock passes clean" true (clean > 0)

let test_sensor_data_unchanged () =
  (* The canary must not disturb the protected function. *)
  let sensor = Glitch.add_sensor adder in
  let data, `Sensor_fired fired =
    Glitch.guarded_cycle sensor ~period_ps:10_000.0 ~prev_inputs:adder_prev
      ~next_inputs:adder_next
  in
  Alcotest.(check bool) "sensor quiet at full period" false fired;
  Alcotest.(check bool) "data matches golden" true (data = Netlist.Sim.eval adder adder_next)

(* --- camouflage-constrained synthesis ---------------------------------- *)

let test_constrained_synthesis_correct () =
  for seed = 0 to 20 do
    let bits = (seed * 2654435761) land 0xFFFF in
    let tt = Logic.Truth_table.create 4 (fun m -> (bits lsr m) land 1 = 1) in
    let c = Camo.Constrained.synthesize tt in
    Alcotest.(check bool) (Printf.sprintf "camouflageable %d" seed) true
      (Camo.Constrained.fully_camouflageable c);
    for m = 0 to 15 do
      let inputs = Array.init 4 (fun i -> (m lsr i) land 1 = 1) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d m %d" seed m)
        (Logic.Truth_table.eval tt m)
        (Netlist.Sim.eval c inputs).(0)
    done
  done

let test_constrained_synthesis_constants () =
  List.iter
    (fun value ->
      let tt = Logic.Truth_table.constant 3 value in
      let c = Camo.Constrained.synthesize tt in
      for m = 0 to 7 do
        let inputs = Array.init 3 (fun i -> (m lsr i) land 1 = 1) in
        Alcotest.(check bool) "constant" value (Netlist.Sim.eval c inputs).(0)
      done)
    [ true; false ]

let test_constraint_has_cost () =
  let tt = Logic.Truth_table.create 4 (fun m -> m mod 3 = 0) in
  Alcotest.(check bool) "overhead above 1" true (Camo.Constrained.constraint_overhead tt > 1.0)

let test_constrained_result_fully_lockable () =
  (* Every gate of the constrained result can be camouflaged. *)
  let rng = Rng.create 31 in
  let tt = Logic.Truth_table.create 4 (fun m -> (m lxor (m lsr 1)) land 1 = 1) in
  let c = Camo.Constrained.synthesize tt in
  let gates = (Circuit.stats c).Circuit.gates in
  let camo = Camo.Camouflage.apply rng ~cells:gates c in
  Alcotest.(check int) "all cells ambiguous" gates (List.length camo.Camo.Camouflage.ambiguous)

(* --- key sensitization -------------------------------------------------- *)

let test_sensitization_isolated_keys_recovered () =
  let rng = Rng.create 32 in
  let src = Gen.alu 4 in
  let locked = Locking.Lock.epic rng ~key_bits:4 src in
  let oracle = Locking.Sat_attack.oracle_of_circuit src in
  let outcome = Locking.Sensitization.run ~oracle locked in
  Alcotest.(check bool) "sparse keys fully recovered" true
    (Locking.Sensitization.accuracy outcome locked >= 0.95)

let test_sensitization_interference_degrades () =
  (* Sparse keys on a tiny circuit sensitize cleanly; dense keys on the
     same circuit interfere. Compare on c17 (6 gates): 2 vs 6 key bits. *)
  let rng = Rng.create 33 in
  let src = Gen.c17 () in
  let sparse = Locking.Lock.epic rng ~key_bits:2 src in
  let dense = Locking.Lock.epic rng ~key_bits:6 src in
  let oracle = Locking.Sat_attack.oracle_of_circuit src in
  let acc_sparse =
    Locking.Sensitization.accuracy (Locking.Sensitization.run ~oracle sparse) sparse
  in
  let outcome_dense = Locking.Sensitization.run ~oracle dense in
  let acc_dense = Locking.Sensitization.accuracy outcome_dense dense in
  Alcotest.(check (float 1e-9)) "sparse keys fully recovered" 1.0 acc_sparse;
  Alcotest.(check bool)
    (Printf.sprintf "dense (%.2f) degraded or unresolved" acc_dense)
    true
    (acc_dense < 1.0 || outcome_dense.Locking.Sensitization.unresolved <> [])

let test_sensitization_never_wrong_on_resolved_single_key () =
  (* With one key bit there is no interference: the recovered bit is right. *)
  let rng = Rng.create 34 in
  let src = Gen.c17 () in
  let locked = Locking.Lock.epic rng ~key_bits:1 src in
  let oracle = Locking.Sat_attack.oracle_of_circuit src in
  let outcome = Locking.Sensitization.run ~passes:1 ~oracle locked in
  (match outcome.Locking.Sensitization.recovered with
   | [ (0, v) ] -> Alcotest.(check bool) "bit correct" locked.Locking.Lock.correct_key.(0) v
   | _ -> Alcotest.fail "single key must be resolved")

(* --- unroll corner cases ------------------------------------------------ *)

let test_expand_frame_count () =
  let c = Crypto.Sbox_circuit.aes_round_registered () in
  let exp = Sat.Unroll.expand c ~frames:3 in
  Alcotest.(check int) "inputs = init state + 3x inputs"
    (Circuit.num_dffs c + (3 * Circuit.num_inputs c))
    (Circuit.num_inputs exp.Sat.Unroll.circuit);
  Alcotest.(check int) "outputs = 3x outputs"
    (3 * Circuit.num_outputs c)
    (Circuit.num_outputs exp.Sat.Unroll.circuit);
  Alcotest.(check bool) "expansion is combinational" true
    (Circuit.num_dffs exp.Sat.Unroll.circuit = 0)

let test_two_safety_scan_chain_leaks_registered_secret () =
  (* A scanned AES round: the secret-dependent register state reaches
     scan_out in test mode — the 2-safety check sees the scan leak. *)
  let dp = Crypto.Sbox_circuit.aes_round_registered () in
  let scanned = Dft.Scan.insert dp in
  match
    Sat.Unroll.two_safety_leak scanned.Dft.Scan.circuit ~frames:2
      ~secret_state:[ 0; 1; 2; 3; 4; 5; 6; 7 ]
  with
  | Some _ -> ()
  | None -> Alcotest.fail "scan chain must expose the register state"

(* --- technology mapping -------------------------------------------------- *)

let test_techmap_nand_inv () =
  List.iter
    (fun c ->
      let mapped = Synth.Pass.apply "techmap" c in
      Alcotest.(check bool) "equivalent" true (Netlist.Sim.equivalent_exhaustive c mapped);
      Alcotest.(check bool) "conforms" true
        (Synth.Techmap.conforms Synth.Techmap.Nand_inv mapped))
    [ Gen.c17 (); Gen.alu 4; Gen.mux_tree 3; Gen.parity_tree 8 ]

let test_techmap_camo_target () =
  List.iter
    (fun c ->
      let mapped = Synth.Pass.apply ~params:[ ("target", "camo") ] "techmap" c in
      Alcotest.(check bool) "equivalent" true (Netlist.Sim.equivalent_exhaustive c mapped);
      Alcotest.(check bool) "conforms" true
        (Synth.Techmap.conforms Synth.Techmap.Nand_nor_xnor mapped))
    [ Gen.c17 (); Gen.ripple_adder 5 ]

let test_techmap_sequential () =
  (* DFFs survive mapping; the counter still counts. *)
  let c = Circuit.create () in
  let en = Circuit.add_input ~name:"en" c in
  let q0 = Circuit.add_dff ~name:"q0" c ~d:0 in
  let t0 = Circuit.add_gate c Gate.Xor [ q0; en ] in
  Circuit.connect_dff c q0 ~d:t0;
  Circuit.set_output c "q0" q0;
  let mapped = Synth.Pass.apply "techmap" c in
  let trace c' = Netlist.Sim.run c' [ [| true |]; [| true |]; [| false |]; [| true |] ] in
  Alcotest.(check bool) "sequential behaviour preserved" true (trace c = trace mapped)

let test_techmap_overhead_reasonable () =
  let oh = Synth.Techmap.mapping_overhead (Gen.alu 4) in
  Alcotest.(check bool) (Printf.sprintf "overhead %.2f within 3x" oh) true (oh < 3.0)

let test_present_round_netlist () =
  let pr = Crypto.Sbox_circuit.present_round () in
  let rng = Rng.create 41 in
  for _ = 1 to 10 do
    let state = Rng.next_int64 rng in
    let key = Rng.next_int64 rng in
    let expected =
      Crypto.Present.p_layer (Crypto.Present.s_layer (Int64.logxor state key))
    in
    let bit v i = Int64.logand (Int64.shift_right_logical v i) 1L = 1L in
    let inputs = Array.init 128 (fun i -> if i < 64 then bit state i else bit key (i - 64)) in
    let outs = Netlist.Sim.eval pr inputs in
    for i = 0 to 63 do
      Alcotest.(check bool) (Printf.sprintf "bit %d" i) (bit expected i) outs.(i)
    done
  done

(* --- redundancy removal & formal audit ---------------------------------- *)

let test_redundancy_removal () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let g = Circuit.add_gate c Gate.And [ a; b ] in
  let y = Circuit.add_gate c Gate.Or [ a; g ] in
  Circuit.set_output c "y" y;
  let cleaned = Dft.Atpg.remove_redundancy c in
  Alcotest.(check bool) "equivalent" true (Netlist.Sim.equivalent_exhaustive c cleaned);
  Alcotest.(check int) "absorption law applied" 0 (Circuit.stats cleaned).Circuit.gates

let test_redundancy_removal_keeps_irredundant () =
  let c = Gen.c17 () in
  let cleaned = Dft.Atpg.remove_redundancy c in
  Alcotest.(check bool) "equivalent" true (Netlist.Sim.equivalent_exhaustive c cleaned);
  Alcotest.(check int) "c17 is irredundant" (Circuit.stats c).Circuit.gates
    (Circuit.stats cleaned).Circuit.gates

let test_redundancy_removal_restores_coverage () =
  (* Redundant logic caps fault coverage below 1; after removal the ATPG
     coverage is complete again. *)
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let g = Circuit.add_gate c Gate.And [ a; b ] in
  let y = Circuit.add_gate c Gate.Or [ a; g ] in
  let z = Circuit.add_gate c Gate.Xor [ y; b ] in
  Circuit.set_output c "z" z;
  let before = Dft.Atpg.run c in
  Alcotest.(check bool) "redundant faults exist" true
    (before.Dft.Atpg.untestable <> [] && before.Dft.Atpg.coverage < 1.0);
  let cleaned = Dft.Atpg.remove_redundancy c in
  let after = Dft.Atpg.run cleaned in
  Alcotest.(check (float 1e-9)) "full coverage after removal" 1.0 after.Dft.Atpg.coverage;
  Alcotest.(check int) "nothing untestable" 0 (List.length after.Dft.Atpg.untestable)

let test_formal_audit_duplication () =
  let prot = Fault.Countermeasure.duplicate_protect (Gen.ripple_adder 2) in
  let `Proven proven, `Escapes escapes, `Harmless harmless = Fault.Formal.audit prot in
  Alcotest.(check bool) "some faults proven detected" true (proven > 0);
  Alcotest.(check bool) "some faults harmless" true (harmless > 0);
  (* Every escape is a common-mode primary-input fault, and every witness
     actually demonstrates silent corruption. *)
  List.iter
    (fun (fault, witness) ->
      Alcotest.(check bool) "escape is an input fault" true
        (Circuit.kind prot.Fault.Countermeasure.circuit (Fault.Model.node_of fault) = Gate.Input);
      Alcotest.(check bool) "witness is a real escape" true
        (Fault.Countermeasure.classify prot ~fault witness
        = Fault.Countermeasure.Corrupted_undetected))
    escapes;
  Alcotest.(check bool) "escapes found" true (escapes <> [])

let test_formal_audit_parity_finds_more_escapes () =
  (* Parity's even-flip blind spot shows as more escape proofs than
     duplication on the same design. *)
  let src = Gen.ripple_adder 2 in
  let audit_escapes prot =
    let `Proven _, `Escapes e, `Harmless _ = Fault.Formal.audit prot in
    List.length e
  in
  let dup = audit_escapes (Fault.Countermeasure.duplicate_protect src) in
  let par = audit_escapes (Fault.Countermeasure.parity_protect src) in
  Alcotest.(check bool) (Printf.sprintf "parity (%d) weaker than duplication (%d)" par dup)
    true (par >= dup)

(* --- full AES core -------------------------------------------------------- *)

let test_aes_core_matches_software () =
  let core = Crypto.Aes_core.build () in
  let rng = Rng.create 50 in
  for _ = 1 to 5 do
    let key = Crypto.Aes.random_key rng in
    let pt = Crypto.Aes.random_block rng in
    let ks = Crypto.Aes.expand_key key in
    let ct, trace = Crypto.Aes_core.encrypt core ks pt in
    Alcotest.(check bool) "ciphertext matches" true (ct = Crypto.Aes.encrypt ks pt);
    Alcotest.(check int) "11 cycles" 11 (List.length trace);
    (* Cycle-0 state is pt XOR k0 — the scan attack's capture target. *)
    (match trace with
     | first :: _ ->
       let got = Crypto.Aes_core.bits_to_block first in
       Alcotest.(check bool) "load state is pt^k0" true
         (got = Array.init 16 (fun i -> pt.(i) lxor key.(i)))
     | [] -> Alcotest.fail "empty trace")
  done

let test_aes_core_scan_attack () =
  let rng = Rng.create 51 in
  let key = Crypto.Aes.random_key rng in
  Alcotest.(check bool) "plain scan leaks the full key" true
    (Dft.Scan_attack.full_core_attack_succeeds ~key ());
  let tkey = Array.init 128 (fun _ -> Rng.bool rng) in
  Alcotest.(check bool) "secure scan defeats it" false
    (Dft.Scan_attack.full_core_attack_succeeds ~protection:(Dft.Scan.Secure tkey) ~key ())

(* --- DOM masking ---------------------------------------------------------- *)

let test_dom_and_correct () =
  let rng = Rng.create 60 in
  let src = Sidechannel.Leakage.private_and_source () in
  List.iter
    (fun shares ->
      let dom = Sidechannel.Dom.transform ~shares src in
      List.iter
        (fun (a, b) ->
          match Sidechannel.Dom.eval rng dom ~values:[ ("a", a); ("b", b) ] with
          | [ (_, y) ] -> Alcotest.(check bool) "and" (a && b) y
          | _ -> Alcotest.fail "unexpected outputs")
        [ (false, false); (false, true); (true, false); (true, true) ])
    [ 2; 3 ]

let test_dom_multi_level_pipeline () =
  let rng = Rng.create 61 in
  let c17 = Gen.c17 () in
  let dom = Sidechannel.Dom.transform ~shares:2 c17 in
  Alcotest.(check int) "three AND levels -> latency 3" 3 dom.Sidechannel.Dom.latency;
  for m = 0 to 31 do
    let inputs = Array.init 5 (fun i -> (m lsr i) land 1 = 1) in
    let expected = Netlist.Sim.eval c17 inputs in
    let values =
      List.mapi (fun k id -> Circuit.name c17 id, inputs.(k))
        (Array.to_list (Circuit.inputs c17))
    in
    let got = Sidechannel.Dom.eval rng dom ~values in
    List.iteri
      (fun k (_, v) -> Alcotest.(check bool) (Printf.sprintf "m=%d out %d" m k) expected.(k) v)
      got
  done

let test_dom_registers_cross_terms () =
  (* The register stage is DOM's defining feature: the masked AND must
     contain flip-flops (ISW has none). *)
  let src = Sidechannel.Leakage.private_and_source () in
  let dom = Sidechannel.Dom.transform ~shares:2 src in
  let isw = Sidechannel.Isw.transform ~shares:2 src in
  Alcotest.(check bool) "DOM has registers" true
    (Circuit.num_dffs dom.Sidechannel.Dom.circuit > 0);
  Alcotest.(check int) "ISW is combinational" 0
    (Circuit.num_dffs isw.Sidechannel.Isw.circuit);
  (* Same randomness budget at equal share count. *)
  Alcotest.(check int) "same randomness"
    (Array.length isw.Sidechannel.Isw.random_inputs)
    (Array.length dom.Sidechannel.Dom.random_inputs)

let test_dom_first_order_passes () =
  let rng = Rng.create 62 in
  let dom = Sidechannel.Dom.transform ~shares:2 (Sidechannel.Leakage.private_and_source ()) in
  let c = dom.Sidechannel.Dom.circuit in
  let pos_of =
    let tbl = Hashtbl.create 64 in
    Array.iteri (fun pos id -> Hashtbl.replace tbl id pos) (Circuit.inputs c);
    fun id -> Hashtbl.find tbl id
  in
  let collect cls =
    let a, b =
      match cls with
      | `Fixed -> true, true
      | `Random -> Rng.bool rng, Rng.bool rng
    in
    let vec = Array.make (Circuit.num_inputs c) false in
    List.iter
      (fun (name, ids) ->
        let v = if name = "a" then a else b in
        let sh = Sidechannel.Isw.encode rng ~shares:2 v in
        Array.iteri (fun s id -> vec.(pos_of id) <- sh.(s)) ids)
      dom.Sidechannel.Dom.input_shares;
    Array.iter (fun id -> vec.(pos_of id) <- Rng.bool rng) dom.Sidechannel.Dom.random_inputs;
    (* Leakage: HW of the settled combinational state in cycle 0. *)
    [| Power.Model.hamming_weight_sample rng c ~noise_sigma:0.1 ~inputs:vec |]
  in
  let r = Sidechannel.Tvla.campaign ~traces_per_class:4000 ~collect in
  Alcotest.(check bool) "first-order pass" false (Sidechannel.Tvla.leaks r)

let () =
  Alcotest.run "extensions2"
    [ ("glitch_attack",
       [ Alcotest.test_case "full period golden" `Quick test_capture_full_period_is_golden;
         Alcotest.test_case "glitch faults" `Quick test_glitch_induces_fault;
         Alcotest.test_case "attack sweep" `Quick test_attack_sweep_finds_margin;
         Alcotest.test_case "sensor never silent" `Quick test_sensor_never_silent;
         Alcotest.test_case "sensor transparent" `Quick test_sensor_data_unchanged ]);
      ("constrained_synthesis",
       [ Alcotest.test_case "correct + camouflageable" `Quick test_constrained_synthesis_correct;
         Alcotest.test_case "constants" `Quick test_constrained_synthesis_constants;
         Alcotest.test_case "constraint cost" `Quick test_constraint_has_cost;
         Alcotest.test_case "fully lockable" `Quick test_constrained_result_fully_lockable ]);
      ("sensitization",
       [ Alcotest.test_case "isolated keys" `Quick test_sensitization_isolated_keys_recovered;
         Alcotest.test_case "interference degrades" `Quick test_sensitization_interference_degrades;
         Alcotest.test_case "single key exact" `Quick test_sensitization_never_wrong_on_resolved_single_key ]);
      ("unroll",
       [ Alcotest.test_case "frame counts" `Quick test_expand_frame_count;
         Alcotest.test_case "scan leak via 2-safety" `Quick test_two_safety_scan_chain_leaks_registered_secret ]);
      ("techmap",
       [ Alcotest.test_case "nand+inv" `Quick test_techmap_nand_inv;
         Alcotest.test_case "camo target" `Quick test_techmap_camo_target;
         Alcotest.test_case "sequential" `Quick test_techmap_sequential;
         Alcotest.test_case "overhead" `Quick test_techmap_overhead_reasonable;
         Alcotest.test_case "present round" `Quick test_present_round_netlist ]);
      ("redundancy",
       [ Alcotest.test_case "absorption removed" `Quick test_redundancy_removal;
         Alcotest.test_case "irredundant untouched" `Quick test_redundancy_removal_keeps_irredundant;
         Alcotest.test_case "coverage restored" `Quick test_redundancy_removal_restores_coverage ]);
      ("formal_audit",
       [ Alcotest.test_case "duplication" `Slow test_formal_audit_duplication;
         Alcotest.test_case "parity vs duplication" `Slow test_formal_audit_parity_finds_more_escapes ]);
      ("aes_core",
       [ Alcotest.test_case "matches software" `Quick test_aes_core_matches_software;
         Alcotest.test_case "full-key scan attack" `Quick test_aes_core_scan_attack ]);
      ("dom",
       [ Alcotest.test_case "and correct" `Quick test_dom_and_correct;
         Alcotest.test_case "pipeline levels" `Quick test_dom_multi_level_pipeline;
         Alcotest.test_case "register stage" `Quick test_dom_registers_cross_terms;
         Alcotest.test_case "first order" `Slow test_dom_first_order_passes ]) ]
