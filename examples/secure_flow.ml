(* Secure composition on a realistic block: an AES first-round byte
   datapath goes through the full flow with countermeasures for three
   different threats, and every metric is re-evaluated after each step —
   the discipline the paper's Sec. IV calls for.

   dune exec examples/secure_flow.exe *)

module Cpa = Sidechannel.Cpa

let line title = Printf.printf "\n== %s ==\n" title

let () =
  let rng = Eda_util.Rng.create 161803 in
  let datapath = Crypto.Sbox_circuit.aes_round_datapath () in
  let key = 0x3C in

  line "step 0: the unprotected datapath";
  let stats = Netlist.Circuit.stats datapath in
  Printf.printf "  Sbox(p xor k): %d gates, area %.0f\n" stats.Netlist.Circuit.gates
    stats.Netlist.Circuit.area;
  let cpa = Cpa.campaign rng datapath ~key ~traces:400 ~noise_sigma:2.0 in
  Printf.printf "  CPA with 400 traces: best guess 0x%02X (true 0x%02X) -> %s\n"
    cpa.Cpa.best_guess key
    (if cpa.Cpa.best_guess = key then "key LEAKS through power" else "safe");

  line "step 1: classical PPA flow (Fig. 1) — security unchanged, of course";
  let flow =
    match Secure_eda.Flow.run rng datapath with
    | Ok r -> r
    | Error e -> failwith (Eda_util.Eda_error.to_string e)
  in
  List.iter
    (fun sr ->
      Printf.printf "  %-26s area %8.1f  delay %7.1f ps\n"
        (Secure_eda.Flow.stage_name sr.Secure_eda.Flow.stage)
        sr.Secure_eda.Flow.area sr.Secure_eda.Flow.delay_ps)
    flow.Secure_eda.Flow.stages;
  let cpa = Cpa.campaign rng flow.Secure_eda.Flow.final ~key ~traces:400 ~noise_sigma:2.0 in
  Printf.printf "  CPA after flow: %s\n"
    (if cpa.Cpa.best_guess = key then "still leaks (PPA flow is security-neutral here)" else "safe");

  line "step 2: counter the foundry — EPIC logic locking, then audit it";
  let locked = Locking.Lock.epic rng ~key_bits:24 datapath in
  Printf.printf "  locked with 24 key bits; correct-key equivalence: %b\n"
    (Locking.Lock.verify_correct locked ~original:datapath = None);
  let attack =
    Locking.Sat_attack.run ~max_iterations:64
      ~oracle:(Locking.Sat_attack.oracle_of_circuit datapath) locked
  in
  Printf.printf "  audit (SAT attack, 64-DIP budget): broken in %d DIPs -> %s\n"
    attack.Locking.Sat_attack.iterations
    (if attack.Locking.Sat_attack.key <> None then
       "EPIC insufficient for this threat model; flag for SFLL-class scheme"
     else "holds");

  line "step 3: counter test-port abuse — scan chain, then secure scan";
  let plain_dev = Dft.Scan_attack.device () in
  Printf.printf "  plain scan chain: key recovery success %.0f%%\n"
    (100.0 *. Dft.Scan_attack.success_rate plain_dev);
  let tkey = Array.init 8 (fun _ -> Eda_util.Rng.bool rng) in
  let secure_dev = Dft.Scan_attack.device ~protection:(Dft.Scan.Secure tkey) () in
  Printf.printf "  secure scan    : key recovery success %.0f%%; authorized tester reads state: %b\n"
    (100.0 *. Dft.Scan_attack.success_rate secure_dev)
    (Dft.Scan_attack.tester_reads_state secure_dev ~key:0x55 = Crypto.Aes.sbox.(0x55));

  line "step 4: cross-effect audit (Sec. IV) — countermeasures are not free";
  let m =
    Secure_eda.Composition.matrix rng ~traces_per_class:3000 ~noise_sigma:0.3 ~injections:200
  in
  Printf.printf "  %-18s %12s %16s %8s\n" "point" "TVLA max|t|" "fault detection" "area";
  List.iter
    (fun (point, metrics) ->
      let v name =
        match List.find_opt (fun mt -> mt.Secure_eda.Metric.name = name) metrics with
        | Some mt -> mt.Secure_eda.Metric.value
        | None -> nan
      in
      Printf.printf "  %-18s %12.2f %15.0f%% %8.1f\n"
        (Secure_eda.Composition.point_name point)
        (v "TVLA max |t|")
        (100.0 *. v "fault detection rate")
        (v "area"))
    m;
  print_endline "  -> the masked+parity point leaks again: composition must be re-verified";

  line "step 5: entropy supply for the countermeasures";
  let puf = Puf.Arbiter.manufacture rng ~stages:64 () in
  let q = Puf.Arbiter.quality rng puf in
  Printf.printf "  arbiter PUF for key storage: uniformity %.2f, reliability %.3f\n"
    q.Puf.Arbiter.uniformity q.Puf.Arbiter.reliability;
  let src = Rng_gen.Trng.create rng in
  Printf.printf "  TRNG health battery for mask randomness: %s\n"
    (if Rng_gen.Health.all_pass (Rng_gen.Trng.bits src 4096) then "all tests pass" else "FAILS");

  print_endline "\ndone: every countermeasure was followed by a re-evaluation of every";
  print_endline "metric — the secure-composition discipline the paper argues EDA must adopt."
