(* The anti-piracy supply chain, end to end: an IP vendor prepares a design
   for an untrusted foundry with the full Table II piracy stack — locking,
   watermarking, metering, split manufacturing and PUF identities — and we
   play every adversary against every defense.

   dune exec examples/supply_chain.exe *)

let line title = Printf.printf "\n== %s ==\n" title

let () =
  let rng = Eda_util.Rng.create 20200309 in
  let design = Netlist.Generators.alu 4 in

  line "vendor: prepare the design for the untrusted foundry";
  (* 1. Functional watermark for ownership litigation. *)
  let mark = Locking.Watermark.embed_functional rng ~bits:20 design in
  Printf.printf "  embedded a 20-bit functional watermark (false-claim p = %.1e)\n"
    (Locking.Watermark.false_claim_probability ~bits:20);
  (* 2. Active metering so overproduced chips stay dead. *)
  let metered = Locking.Metering.meter rng ~state_bits:10 mark.Locking.Watermark.f_circuit in
  Printf.printf "  added a 10-bit metering FSM: chips power up locked\n";
  (* 3. Split manufacturing for the layout itself. *)
  let placement =
    (Physical.Placement.place rng ~moves:10000 metered.Locking.Metering.circuit)
      .Physical.Placement.placement
  in
  let split =
    Splitmfg.Split.lift_wires ~fraction:1.0
      (Splitmfg.Split.split_by_length ~feol_threshold:2 placement)
  in
  Printf.printf "  split manufacturing: %d connections hidden in trusted BEOL\n"
    (List.length split.Splitmfg.Split.hidden);

  line "foundry adversary 1: reconstruct the netlist from FEOL";
  Printf.printf "  proximity attack netlist recovery: %.0f%% (random guessing: %.1f%%)\n"
    (100.0 *. Splitmfg.Split.netlist_recovery_rate split)
    (100.0 *. Splitmfg.Split.random_guess_ccr split);

  line "foundry adversary 2: overproduce and sell unactivated chips";
  let chip_id = Array.init 10 (fun _ -> Eda_util.Rng.bool rng) in
  let dead = Locking.Metering.drive_unlock metered ~power_up_id:chip_id [] in
  Printf.printf "  gray-market chip without activation: unlocked = %b (outputs gated)\n"
    (Locking.Metering.is_unlocked metered dead);
  let guessed = ref 0 in
  for _ = 1 to 500 do
    let seq = List.init 20 (fun _ -> Eda_util.Rng.bool rng) in
    if Locking.Metering.is_unlocked metered
         (Locking.Metering.drive_unlock metered ~power_up_id:chip_id seq)
    then incr guessed
  done;
  Printf.printf "  brute-force activation attempts: %d/500 succeed\n" !guessed;

  line "vendor: activate a legitimate chip";
  (match
     Locking.Metering.unlock_sequence ~keys:metered.Locking.Metering.transition_keys
       ~max_steps:40 chip_id
   with
   | Some seq ->
     let state = Locking.Metering.drive_unlock metered ~power_up_id:chip_id seq in
     Printf.printf "  owner-computed %d-step sequence: unlocked = %b\n" (List.length seq)
       (Locking.Metering.is_unlocked metered state)
   | None -> print_endline "  (no sequence found — unexpected)");

  line "counterfeiter: clone chips and re-brand them";
  (* PUF identities make every genuine die enrollable and clones detectable. *)
  let genuine = Puf.Arbiter.manufacture rng ~stages:64 () in
  let clone = Puf.Arbiter.manufacture rng ~stages:64 () in
  let challenges = Array.init 64 (fun _ -> Puf.Arbiter.random_challenge rng genuine) in
  let enrolled = Array.map (fun ch -> Puf.Arbiter.response rng genuine ch) challenges in
  let match_rate p =
    let hits = ref 0 in
    Array.iteri
      (fun k ch -> if Puf.Arbiter.response rng p ch = enrolled.(k) then incr hits)
      challenges;
    Float.of_int !hits /. 64.0
  in
  Printf.printf "  genuine die re-authentication: %.0f%% CRP match\n" (100.0 *. match_rate genuine);
  Printf.printf "  cloned die authentication   : %.0f%% CRP match (chance level)\n"
    (100.0 *. match_rate clone);

  line "pirate: strip the metering FSM and resynthesize the stolen netlist";
  (* Even if the pirate recovers and cleans the raw function, the
     functional watermark survives resynthesis and proves ownership. *)
  let stolen = Synth.Flow.optimize mark.Locking.Watermark.f_circuit in
  Printf.printf "  watermark readout on the resynthesized pirate netlist: %d/20 bits\n"
    (Locking.Watermark.verify_functional mark stolen);
  Printf.printf "  watermark readout on an independent design           : %d/20 bits\n"
    (Locking.Watermark.verify_functional mark design);

  print_endline "\nsummary: each adversary is stopped by a different Table II scheme —";
  print_endline "and only their composition covers the whole supply chain (Sec. IV)."
