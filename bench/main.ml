(* Experiment harness: regenerates every table and figure of the paper
   (Knechtel et al., DATE 2020) in measurable form, plus the Sec. IV
   composition/step-function experiments and Bechamel micro-benchmarks.

   Run everything:        dune exec bench/main.exe
   Run one section:       dune exec bench/main.exe -- fig2
   Sections: table1 table2 fig1 fig2 composition stepfn curves ablations micro perf

   The perf section additionally writes BENCH_perf.json — a machine-readable
   report built from the telemetry counters the engines emit, including a
   before/after comparison of the allocation-free SAT and simulation hot
   paths against the retained reference implementations. Pass --smoke
   (with perf) to shrink the comparison workloads for CI. *)

module Rng = Eda_util.Rng
module Circuit = Netlist.Circuit
module Gen = Netlist.Generators

let banner title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=')

(* Bench workloads feed the flow structurally valid netlists; an Error
   here is a harness bug, not a measurement. *)
let flow_ok = function
  | Ok r -> r
  | Error e -> failwith (Eda_util.Eda_error.to_string e)

(* Domain-count cap for the pool speedup sweep (perf section): -j N. *)
let jobs = ref (Eda_util.Pool.default_jobs ())

let subbanner title = Printf.printf "\n--- %s ---\n" title

(* ------------------------------------------------------------------ *)
(* Table I: security threats and the roles of EDA.                     *)
(* ------------------------------------------------------------------ *)

let table1 () =
  banner "TABLE I — Security threats for ICs and related roles of EDA";
  Printf.printf
    "Each row of the paper's Table I, regenerated: the threat, when it\n\
     strikes, and a live evaluation + mitigation measurement from this\n\
     toolkit.\n";
  let rng = Rng.create 1001 in
  List.iter
    (fun row ->
      let module T = Secure_eda.Threat_model in
      Printf.printf "\n%-28s | attack time: %s\n" (T.name row.T.vector)
        (String.concat ", " (List.map T.time_name row.T.times));
      Printf.printf "  roles of EDA : %s\n"
        (String.concat "; " (List.map T.role_name row.T.roles));
      Printf.printf "  evaluation   : %s\n" row.T.toolkit_evaluation;
      Printf.printf "  mitigation   : %s\n" row.T.toolkit_mitigation;
      (* One live number per vector: attack success unmitigated vs mitigated. *)
      (match row.T.vector with
       | T.Side_channel ->
         let base = Secure_eda.Composition.build Secure_eda.Composition.Baseline in
         let masked = Secure_eda.Composition.build Secure_eda.Composition.Masked in
         let t0 = Secure_eda.Composition.tvla_max_t rng base ~traces_per_class:2000 ~noise_sigma:0.3 in
         let t1 = Secure_eda.Composition.tvla_max_t rng masked ~traces_per_class:2000 ~noise_sigma:0.3 in
         Printf.printf "  measurement  : TVLA max|t| %.1f unprotected -> %.2f masked (thr 4.5)\n" t0 t1
       | T.Fault_injection ->
         let key = Crypto.Aes.random_key rng in
         let ks = Crypto.Aes.expand_key key in
         let bytes, pairs = Fault.Dfa.recover_last_round_key rng ks ~max_pairs_per_byte:40 in
         let plain_ok = Array.for_all (fun b -> b <> None) bytes in
         let infected, _ = Fault.Dfa.recover_with_infection rng ks ~ct_pos:0 ~max_pairs:40 in
         Printf.printf
           "  measurement  : DFA recovers full key = %b (%d faults); vs infective cm: byte %s\n"
           plain_ok pairs
           (if infected = Some ks.(10).(0) then "RECOVERED" else "not recovered")
       | T.Piracy_counterfeiting ->
         let source = Gen.alu 4 in
         let locked = Locking.Lock.epic rng ~key_bits:16 source in
         let r = Locking.Sat_attack.run ~oracle:(Locking.Sat_attack.oracle_of_circuit source) locked in
         let sfll = Locking.Sfll.lock rng ~h:3 (Gen.comparator 7) in
         let r2 =
           Locking.Sat_attack.run ~max_iterations:128
             ~oracle:(Locking.Sat_attack.oracle_of_circuit (Gen.comparator 7)) sfll
         in
         Printf.printf
           "  measurement  : SAT attack breaks EPIC-16 in %d DIPs; SFLL-HD(14,3) holds out ~%dx longer (%d DIPs)\n"
           r.Locking.Sat_attack.iterations
           (r2.Locking.Sat_attack.iterations / max 1 r.Locking.Sat_attack.iterations)
           r2.Locking.Sat_attack.iterations
       | T.Trojans ->
         let clean = Gen.alu 4 in
         let troj = Trojan.Insert.insert rng ~trigger_width:2 ~patterns:2048 clean in
         let rare = Trojan.Insert.rare_conditions rng ~patterns:2048 ~count:10 clean in
         let pats = Trojan.Detect.mero_patterns rng ~n_detect:24 ~rare ~max_patterns:8000 clean in
         let hit = Trojan.Detect.functional_detect clean troj pats in
         Printf.printf "  measurement  : MERO N=24 exposes inserted Trojan = %b (%d patterns)\n"
           hit (List.length pats)))
    Secure_eda.Threat_model.table

(* ------------------------------------------------------------------ *)
(* Table II: the scheme-per-cell matrix, executed.                     *)
(* ------------------------------------------------------------------ *)

let table2 () =
  banner "TABLE II — Security schemes suitable for incorporation into EDA tools";
  Printf.printf
    "Every populated (design stage x threat) cell of the paper's Table II,\n\
     backed by a live run of the corresponding scheme in this toolkit.\n";
  let rng = Rng.create 2020 in
  let module R = Secure_eda.Scheme_registry in
  List.iter
    (fun stage ->
      subbanner (R.stage_name stage);
      List.iter
        (fun cell ->
          if cell.R.stage = stage then begin
            Printf.printf "  [%s]\n" (Secure_eda.Threat_model.name cell.R.threat);
            Printf.printf "    scheme : %s\n" cell.R.scheme;
            Printf.printf "    impl   : %s\n" cell.R.modules;
            Printf.printf "    result : %s\n" (cell.R.run rng)
          end)
        R.table)
    R.all_stages

(* ------------------------------------------------------------------ *)
(* Fig. 1: the classical EDA flow, and its security obliviousness.     *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  banner "FIG. 1 — Classical EDA flow (RTL -> synthesis -> PnR -> verify -> test)";
  let rng = Rng.create 31415 in
  let module F = Secure_eda.Flow in
  let run_design name circuit =
    subbanner (Printf.sprintf "design: %s" name);
    let report = flow_ok (F.run rng circuit) in
    Printf.printf "  %-28s %10s %12s %10s %10s\n" "stage" "area" "delay(ps)" "WL" "coverage";
    List.iter
      (fun sr ->
        Printf.printf "  %-28s %10.1f %12.1f %10s %10s   %s\n" (F.stage_name sr.F.stage)
          sr.F.area sr.F.delay_ps
          (match sr.F.wirelength with Some w -> string_of_int w | None -> "-")
          (match sr.F.fault_coverage with Some c -> Printf.sprintf "%.0f%%" (100.0 *. c) | None -> "-")
          sr.F.note)
      report.F.stages
  in
  run_design "c17" (Gen.c17 ());
  run_design "ripple_adder(8)" (Gen.ripple_adder 8);
  run_design "alu(4)" (Gen.alu 4);
  run_design "kogge_stone(8)" (Gen.kogge_stone_adder 8);
  run_design "multiplier(4)" (Gen.array_multiplier 4);
  subbanner "the flow is security-oblivious";
  (* 1. It destroys masked logic (quantified in the fig2 section). *)
  let masked = Sidechannel.Isw.transform (Sidechannel.Leakage.private_and_source ()) in
  let flowed = flow_ok (F.run rng masked.Sidechannel.Isw.circuit) in
  let rebound = Sidechannel.Isw.rebind masked flowed.F.final in
  let r = Sidechannel.Leakage.tvla_campaign rng rebound ~traces_per_class:3000 ~noise_sigma:0.3 in
  Printf.printf
    "  masked AND pushed through the classical flow: TVLA max|t| = %.1f (was < 4.5 before the flow)\n"
    r.Sidechannel.Tvla.max_abs_t;
  (* 2. It leaves locking keys recoverable (no notion of key secrecy). *)
  let source = Gen.alu 4 in
  let locked = Locking.Lock.epic rng ~key_bits:16 source in
  let attack = Locking.Sat_attack.run ~oracle:(Locking.Sat_attack.oracle_of_circuit source) locked in
  Printf.printf
    "  EPIC-locked ALU after the flow: key recovered by SAT attack in %d DIPs (success = %b)\n"
    attack.Locking.Sat_attack.iterations
    (Locking.Sat_attack.recovered_key_correct locked ~original:source attack)

(* ------------------------------------------------------------------ *)
(* Fig. 2: the motivational example.                                   *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  banner "FIG. 2 — Private circuit vs security-unaware logic synthesis";
  let rng = Rng.create 42 in
  let module L = Sidechannel.Leakage in
  let aware = L.synthesize_masked L.Security_aware in
  let unaware = L.synthesize_masked L.Security_unaware in
  Printf.printf
    "Target: ISW-masked AND (3 shares). Security-aware synthesis keeps the\n\
     prescribed XOR accumulation order; the classical flow re-associates\n\
     (factoring-friendly grouping), recreating a_3*(b1^b2^b3) on a wire.\n";
  subbanner "functional equivalence (both variants compute a AND b)";
  let check masked =
    let ok = ref true in
    for _ = 1 to 200 do
      let a = Rng.bool rng and b = Rng.bool rng in
      match Sidechannel.Isw.eval rng masked ~values:[ ("a", a); ("b", b) ] with
      | [ (_, y) ] -> if y <> (a && b) then ok := false
      | _ -> ok := false
    done;
    !ok
  in
  Printf.printf "  aware: %b   unaware: %b\n" (check aware) (check unaware);
  subbanner "TVLA, fixed-vs-random, HW power model (sigma = 0.3)";
  Printf.printf "  %-12s %14s %14s %10s\n" "traces/class" "aware max|t|" "unaware max|t|" "threshold";
  List.iter
    (fun n ->
      let ra = L.tvla_campaign rng aware ~traces_per_class:n ~noise_sigma:0.3 in
      let ru = L.tvla_campaign rng unaware ~traces_per_class:n ~noise_sigma:0.3 in
      Printf.printf "  %-12d %14.2f %14.2f %10.1f %s\n" n ra.Sidechannel.Tvla.max_abs_t
        ru.Sidechannel.Tvla.max_abs_t Sidechannel.Tvla.threshold
        (if Sidechannel.Tvla.leaks ru then "<- unaware LEAKS" else ""))
    [ 250; 500; 1000; 2000; 4000; 8000 ];
  subbanner "the factored wire (per-net fixed-vs-random |t|)";
  let wire_u, t_u = L.leakiest_wire rng unaware ~samples:4000 in
  let wire_a, t_a = L.leakiest_wire rng aware ~samples:4000 in
  Printf.printf "  unaware: wire %-12s |t| = %6.1f  (the a3*(b) wire of Fig. 2)\n" wire_u t_u;
  Printf.printf "  aware  : wire %-12s |t| = %6.1f  (no wire crosses 4.5)\n" wire_a t_a;
  subbanner "model-accuracy study (Sec. III-E): the verdict depends on the simulation model";
  Printf.printf
    "  The paper asks how accurate timing/power models must be for reliable\n\
     leakage prediction. The same AWARE netlist, assessed under different\n\
     pre-silicon models (4000 traces/class):\n";
  let cfg = { Power.Model.time_bins = 16; bin_width_ps = 50.0; noise_sigma = 0.2 } in
  let report name r =
    Printf.printf "  %-46s max|t| = %6.2f  %s\n" name r.Sidechannel.Tvla.max_abs_t
      (if Sidechannel.Tvla.leaks r then "LEAKS" else "passes")
  in
  report "Hamming weight, settled state"
    (L.tvla_campaign rng aware ~traces_per_class:4000 ~noise_sigma:0.3);
  report "event-driven, nominal delays"
    (L.tvla_campaign_glitch rng aware ~traces_per_class:4000 ~config:cfg);
  report "event-driven, mask refresh 400 ps late"
    (L.tvla_campaign_glitch ~mask_skew_ps:400.0 rng aware ~traces_per_class:4000 ~config:cfg);
  report "mask source failed (stuck TRNG, [41]'s case)"
    (L.tvla_campaign_mask_failure rng aware ~traces_per_class:4000 ~noise_sigma:0.3);
  Printf.printf
    "  -> the verdict flips with the model: a flow that only simulates one\n\
     model certifies a circuit whose security rests on timing assumptions.\n"

(* ------------------------------------------------------------------ *)
(* Sec. IV experiment 1: composition cross-effects.                    *)
(* ------------------------------------------------------------------ *)

let composition () =
  banner "SEC. IV — Secure composition: masking x error detection cross-effect";
  Printf.printf
    "The [61] interaction: parity-based error detection XORs the output\n\
     shares of the masked circuit together, materializing the unmasked\n\
     value. Every design point re-evaluated on every metric:\n\n";
  let rng = Rng.create 4242 in
  let m = Secure_eda.Composition.matrix rng ~traces_per_class:4000 ~noise_sigma:0.3 ~injections:300 in
  Printf.printf "  %-18s %14s %18s %10s %12s\n" "design point" "TVLA max|t|" "fault detection" "area" "delay(ps)";
  List.iter
    (fun (point, metrics) ->
      let v name =
        match List.find_opt (fun mt -> mt.Secure_eda.Metric.name = name) metrics with
        | Some mt -> mt.Secure_eda.Metric.value
        | None -> nan
      in
      Printf.printf "  %-18s %14.2f %17.0f%% %10.1f %12.1f%s\n"
        (Secure_eda.Composition.point_name point)
        (v "TVLA max |t|")
        (100.0 *. v "fault detection rate")
        (v "area") (v "delay")
        (match point with
         | Secure_eda.Composition.Masked_and_parity when v "TVLA max |t|" > 4.5 ->
           "   <- SCA re-opened by the FIA countermeasure"
         | Secure_eda.Composition.Baseline | Secure_eda.Composition.Masked
         | Secure_eda.Composition.Parity | Secure_eda.Composition.Masked_and_parity -> ""))
    m

(* ------------------------------------------------------------------ *)
(* Sec. IV experiment 2: step-function security metrics.               *)
(* ------------------------------------------------------------------ *)

let stepfn () =
  banner "SEC. IV — Security metrics are step functions; PPA cost is smooth";
  let rng = Rng.create 777 in
  subbanner "locking: SAT-attack resistance vs key width (attacker budget = 15 DIPs)";
  Printf.printf
    "  The same defender effort (wider keys) buys nothing for EPIC and\n\
     everything for SFLL-HD once a threshold width is crossed — the\n\
     step-function behaviour of Sec. IV.\n";
  Printf.printf "  %-22s %10s %12s %10s %12s\n" "scheme" "key bits" "area" "DIPs" "resisted";
  let sfll_pts = ref [] and area_pts = ref [] in
  List.iter
    (fun key_bits ->
      (* EPIC on a fixed design. *)
      let source = Gen.alu 4 in
      let locked = Locking.Lock.epic rng ~key_bits source in
      let r_epic =
        Locking.Sat_attack.run ~max_iterations:15
          ~oracle:(Locking.Sat_attack.oracle_of_circuit source) locked
      in
      let area_epic = (Circuit.stats locked.Locking.Lock.circuit).Circuit.area in
      area_pts := (Float.of_int key_bits, area_epic) :: !area_pts;
      Printf.printf "  %-22s %10d %12.1f %12d %10b\n" "EPIC (random XOR)" key_bits area_epic
        r_epic.Locking.Sat_attack.iterations
        (r_epic.Locking.Sat_attack.key = None);
      (* SFLL-HD: key width = input width of the protected block. *)
      if key_bits mod 2 = 0 && key_bits >= 4 && key_bits <= 14 then begin
        let src = Gen.comparator (key_bits / 2) in
        let sfll = Locking.Sfll.lock (Rng.create (100 + key_bits)) ~h:2 src in
        let r_sfll =
          Locking.Sat_attack.run ~max_iterations:15
            ~oracle:(Locking.Sat_attack.oracle_of_circuit src) sfll
        in
        let resisted = r_sfll.Locking.Sat_attack.key = None in
        sfll_pts := (Float.of_int key_bits, if resisted then 1.0 else 0.0) :: !sfll_pts;
        Printf.printf "  %-22s %10d %12.1f %12d %10b\n" "SFLL-HD (h=2)" key_bits
          (Circuit.stats sfll.Locking.Lock.circuit).Circuit.area
          r_sfll.Locking.Sat_attack.iterations resisted
      end)
    [ 4; 6; 8; 10; 12; 14 ];
  let shape pts = Secure_eda.Metric.classify_shape (List.rev pts) in
  let shape_name = function Secure_eda.Metric.Step -> "STEP" | Secure_eda.Metric.Smooth -> "smooth" in
  Printf.printf "  shape of SFLL resistance curve: %s; shape of the area curve: %s\n"
    (shape_name (shape !sfll_pts)) (shape_name (shape !area_pts));
  subbanner "masking: TVLA outcome vs number of shares (fixed 4000-trace assessor)";
  Printf.printf "  %-8s %10s %12s %8s\n" "shares" "area" "max|t|" "passes";
  List.iter
    (fun shares ->
      let masked = Sidechannel.Isw.transform ~shares (Sidechannel.Leakage.private_and_source ()) in
      let secure =
        Sidechannel.Isw.rebind masked
          (Synth.Flow.optimize_secure ~protect:Sidechannel.Isw.protected_name
             masked.Sidechannel.Isw.circuit)
      in
      let r = Sidechannel.Leakage.tvla_campaign rng secure ~traces_per_class:4000 ~noise_sigma:0.3 in
      let area = (Circuit.stats secure.Sidechannel.Isw.circuit).Circuit.area in
      Printf.printf "  %-8d %10.1f %12.2f %8b\n" shares area r.Sidechannel.Tvla.max_abs_t
        (not (Sidechannel.Tvla.leaks r)))
    [ 2; 3; 4 ];
  subbanner "unprotected baseline for comparison";
  let base = Secure_eda.Composition.build Secure_eda.Composition.Baseline in
  let t = Secure_eda.Composition.tvla_max_t rng base ~traces_per_class:4000 ~noise_sigma:0.3 in
  Printf.printf "  0 shares (plain AND): max|t| = %.1f\n" t

(* ------------------------------------------------------------------ *)
(* Attack/defense curves (the paper's cited literature shapes).        *)
(* ------------------------------------------------------------------ *)

let curves () =
  banner "CURVES — attack-vs-defense series from the Table II literature";
  let rng = Rng.create 999 in

  subbanner "SAT attack: DIPs vs key width — EPIC falls flat, SFLL-HD scales";
  Printf.printf "  %-22s %10s %10s %10s\n" "scheme" "key bits" "DIPs" "broken";
  List.iter
    (fun key_bits ->
      let source = Gen.alu 4 in
      let locked = Locking.Lock.epic rng ~key_bits source in
      let r =
        Locking.Sat_attack.run ~max_iterations:512
          ~oracle:(Locking.Sat_attack.oracle_of_circuit source) locked
      in
      Printf.printf "  %-22s %10d %10d %10b\n" "EPIC (random XOR)" key_bits
        r.Locking.Sat_attack.iterations
        (r.Locking.Sat_attack.key <> None))
    [ 4; 8; 16; 32 ];
  List.iter
    (fun inputs ->
      let source = Gen.comparator (inputs / 2) in
      let sfll = Locking.Sfll.lock rng ~h:2 source in
      let r =
        Locking.Sat_attack.run ~max_iterations:512
          ~oracle:(Locking.Sat_attack.oracle_of_circuit source) sfll
      in
      Printf.printf "  %-22s %10d %10d %10b\n" "SFLL-HD (h=2)" inputs
        r.Locking.Sat_attack.iterations
        (r.Locking.Sat_attack.key <> None))
    [ 8; 10; 12 ];

  subbanner "sensitization vs SAT attack (generations of locking analysis)";
  Printf.printf "  %-10s %26s %26s\n" "key bits" "sensitization accuracy" "SAT attack";
  List.iter
    (fun key_bits ->
      let src = Gen.alu 4 in
      let locked = Locking.Lock.epic (Rng.create (3000 + key_bits)) ~key_bits src in
      let oracle = Locking.Sat_attack.oracle_of_circuit src in
      let sens = Locking.Sensitization.run ~oracle locked in
      let sat = Locking.Sat_attack.run ~oracle locked in
      Printf.printf "  %-10d %25.0f%% %17d DIPs, %s\n" key_bits
        (100.0 *. Locking.Sensitization.accuracy sens locked)
        sat.Locking.Sat_attack.iterations
        (if Locking.Sat_attack.recovered_key_correct locked ~original:src sat then "exact"
         else "failed"))
    [ 4; 8; 16; 24 ];
  Printf.printf "  -> interference defeats sensitization but not the SAT attack.\n";

  subbanner "clock-glitch attack vs delay sensor (8-bit ripple adder)";
  let adder = Gen.ripple_adder 8 in
  let prev = Array.make 17 false in
  let next = Array.init 17 (fun i -> i < 8 || i = 16) in
  let periods = [ 1000.0; 900.0; 800.0; 700.0; 600.0; 500.0; 400.0 ] in
  (match Fault.Glitch_attack.attack_sweep adder ~periods ~prev_inputs:prev ~next_inputs:next with
   | Some p ->
     Printf.printf "  unprotected: faults induced at clock periods <= %.0f ps (critical path %.0f)\n"
       p (Timing.Sta.analyze adder).Timing.Sta.critical_path_delay
   | None -> Printf.printf "  unprotected: no faults in the sweep\n");
  let sensor = Fault.Glitch_attack.add_sensor ~margin_ps:60.0 adder in
  let silent, detected, clean =
    Fault.Glitch_attack.sweep_with_sensor sensor ~periods ~prev_inputs:prev ~next_inputs:next
  in
  Printf.printf
    "  with canary sensor (delay %.0f ps): %d silent corruptions, %d detected, %d clean\n"
    sensor.Fault.Glitch_attack.canary_delay_ps silent detected clean;

  subbanner "structural (SAIL-style) attack accuracy";
  let source = Gen.alu 4 in
  let xor_only = Locking.Lock.epic rng ~style:Locking.Lock.Xor_only ~key_bits:24 source in
  let hidden = Locking.Lock.epic rng ~style:Locking.Lock.Polarity_hidden ~key_bits:24 source in
  Printf.printf "  naive attacker on XOR-only locking      : %.0f%%\n"
    (100.0 *. Locking.Structural.accuracy ~strength:Locking.Structural.Naive xor_only);
  Printf.printf "  naive attacker on polarity-hidden       : %.0f%%\n"
    (100.0 *. Locking.Structural.accuracy ~strength:Locking.Structural.Naive hidden);
  Printf.printf "  reconstruction attacker on polarity-hid.: %.0f%%  <- SAIL's point\n"
    (100.0 *. Locking.Structural.accuracy ~strength:Locking.Structural.Local_reconstruction hidden);

  subbanner "CPA: key-recovery success vs traces (HW model, sigma = 4)";
  let circuit = Crypto.Sbox_circuit.aes_round_datapath () in
  let curve =
    Sidechannel.Cpa.success_rate_curve rng circuit ~key:0xA7
      ~trace_counts:[ 5; 10; 20; 50; 100; 200 ] ~trials:10 ~noise_sigma:4.0
  in
  Printf.printf "  %-10s %10s\n" "traces" "success";
  List.iter (fun (n, s) -> Printf.printf "  %-10d %9.0f%%\n" n (100.0 *. s)) curve;

  subbanner "split manufacturing: netlist recovery vs defense (alu4)";
  let c = Gen.alu 4 in
  let placement = (Physical.Placement.place rng ~moves:20000 c).Physical.Placement.placement in
  let naive = Splitmfg.Split.split_by_length ~feol_threshold:2 placement in
  Printf.printf "  %-34s %10s %10s\n" "configuration" "recovery" "CCR";
  let report name s =
    Printf.printf "  %-34s %9.0f%% %10.2f\n" name
      (100.0 *. Splitmfg.Split.netlist_recovery_rate s)
      (Splitmfg.Split.proximity_attack s)
  in
  report "naive split (threshold 2)" naive;
  report "+ wire lifting 50%" (Splitmfg.Split.lift_wires ~fraction:0.5 naive);
  report "+ wire lifting 100%" (Splitmfg.Split.lift_wires ~fraction:1.0 naive);
  let perturbed = Physical.Placement.perturb rng ~lambda:0.5 ~moves:20000 placement in
  report "+ lifting 100% + placement perturb."
    (Splitmfg.Split.lift_wires ~fraction:1.0
       (Splitmfg.Split.split_by_length ~feol_threshold:2 perturbed));
  Printf.printf "  (random-guess CCR baseline: %.3f; PPA wirelength %d -> %d after perturbation)\n"
    (Splitmfg.Split.random_guess_ccr naive)
    (Physical.Placement.wirelength placement)
    (Physical.Placement.wirelength perturbed);

  subbanner "MERO: Trojan exposure vs N-detect parameter (10 random Trojans)";
  Printf.printf "  %-10s %10s %14s\n" "N" "exposed" "avg patterns";
  List.iter
    (fun n_detect ->
      let exposed = ref 0 and pattern_total = ref 0 in
      for seed = 1 to 10 do
        let rng_t = Rng.create (1000 + seed) in
        let clean = Gen.alu 4 in
        let troj = Trojan.Insert.insert rng_t ~trigger_width:2 ~patterns:2048 clean in
        let rare = Trojan.Insert.rare_conditions rng_t ~patterns:2048 ~count:10 clean in
        let pats = Trojan.Detect.mero_patterns rng_t ~n_detect ~rare ~max_patterns:6000 clean in
        pattern_total := !pattern_total + List.length pats;
        if Trojan.Detect.functional_detect clean troj pats then incr exposed
      done;
      Printf.printf "  %-10d %9d/10 %14d\n" n_detect !exposed (!pattern_total / 10))
    [ 1; 2; 4; 8; 16; 32 ];

  subbanner "path-delay fingerprinting: detection vs Trojan load (alu4, sigma 3%)";
  Printf.printf "  %-16s %8s %8s\n" "extra load (ps)" "TPR" "FPR";
  List.iter
    (fun load ->
      let tp, fp =
        Trojan.Detect.fingerprint_detection rng ~chips:40 ~sigma:0.03 ~extra_load_ps:load
          ~threshold_sigmas:3.0 (Gen.alu 4) ~tapped:[ 20; 25; 30 ]
      in
      Printf.printf "  %-16.1f %7.0f%% %7.0f%%\n" load (100.0 *. tp) (100.0 *. fp))
    [ 1.0; 5.0; 10.0; 25.0; 50.0 ];

  subbanner "scan attack vs secure scan (AES byte datapath, all 256 keys)";
  let plain = Dft.Scan_attack.device () in
  let secure_dev =
    Dft.Scan_attack.device ~protection:(Dft.Scan.Secure (Array.init 8 (fun k -> k mod 3 <> 0))) ()
  in
  Printf.printf "  plain scan : %.0f%% keys recovered\n" (100.0 *. Dft.Scan_attack.success_rate plain);
  Printf.printf "  secure scan: %.0f%% keys recovered (tester still reads state: %b)\n"
    (100.0 *. Dft.Scan_attack.success_rate secure_dev)
    (Dft.Scan_attack.tester_reads_state secure_dev ~key:0x12 = Crypto.Aes.sbox.(0x12));
  (* The same attack on the complete 7.6k-gate AES-128 core: one capture
     leaks the whole 128-bit key. *)
  let full_key = Crypto.Aes.random_key rng in
  Printf.printf "  full AES-128 core, plain scan : 128-bit key recovered in 1 capture = %b\n"
    (Dft.Scan_attack.full_core_attack_succeeds ~key:full_key ());
  Printf.printf "  full AES-128 core, secure scan: key recovered = %b\n"
    (Dft.Scan_attack.full_core_attack_succeeds
       ~protection:(Dft.Scan.Secure (Array.init 128 (fun k -> k mod 3 <> 1)))
       ~key:full_key ());

  subbanner "PUF modelling attack: accuracy vs training CRPs (64-stage arbiter)";
  let puf = Puf.Arbiter.manufacture rng ~noise_sigma:0.02 ~stages:64 () in
  Printf.printf "  %-12s %10s\n" "CRPs" "accuracy";
  List.iter
    (fun crps ->
      let acc =
        Puf.Arbiter.modeling_attack rng puf ~training:crps ~test:500 ~epochs:30 ~learning_rate:0.05
      in
      Printf.printf "  %-12d %9.1f%%\n" crps (100.0 *. acc))
    [ 20; 50; 100; 500; 2000; 8000 ];

  subbanner "TRNG health battery vs source defect";
  Printf.printf "  %-26s %10s %10s %10s %12s\n" "source" "monobit" "runs" "poker" "longest_run";
  List.iter
    (fun (name, src) ->
      let bits = Rng_gen.Trng.bits src 4096 in
      let verdicts = Rng_gen.Health.battery bits in
      Printf.printf "  %-26s" name;
      List.iter (fun v -> Printf.printf " %10s" (if v.Rng_gen.Health.pass then "pass" else "FAIL")) verdicts;
      print_newline ())
    [ ("healthy", Rng_gen.Trng.create (Rng.create 1));
      ("bias 0.6", Rng_gen.Trng.create ~bias:0.6 (Rng.create 2));
      ("correlation 0.5", Rng_gen.Trng.create ~correlation:0.5 (Rng.create 3));
      ("stuck-at-1", Rng_gen.Trng.stuck true) ]

(* ------------------------------------------------------------------ *)
(* Ablations: design choices DESIGN.md calls out, measured head-to-head.*)
(* ------------------------------------------------------------------ *)

let ablations () =
  banner "ABLATIONS — head-to-head comparisons of the design choices";
  let rng = Rng.create 1618 in

  subbanner "hiding (WDDL) vs masking (ISW) on the private AND";
  Printf.printf "  %-16s %8s %10s %14s %14s\n" "scheme" "area" "randoms" "1st-ord |t|" "2nd-ord |t|";
  let report_masked name shares =
    let masked = Sidechannel.Isw.transform ~shares (Sidechannel.Leakage.private_and_source ()) in
    let collect cls =
      let a, b =
        match cls with
        | `Fixed -> true, true
        | `Random -> Rng.bool rng, Rng.bool rng
      in
      [| Sidechannel.Leakage.hw_sample rng masked ~noise_sigma:0.1 ~a ~b |]
    in
    let o1, o2 = Sidechannel.Tvla.campaign_orders ~traces_per_class:6000 ~collect in
    Printf.printf "  %-16s %8.1f %10d %14.2f %14.2f\n" name
      (Circuit.stats masked.Sidechannel.Isw.circuit).Circuit.area
      (Array.length masked.Sidechannel.Isw.random_inputs)
      o1.Sidechannel.Tvla.max_abs_t o2.Sidechannel.Tvla.max_abs_t
  in
  report_masked "ISW 2 shares" 2;
  report_masked "ISW 3 shares" 3;
  List.iter
    (fun shares ->
      let dom = Sidechannel.Dom.transform ~shares (Sidechannel.Leakage.private_and_source ()) in
      let cost = Sidechannel.Dom.cost dom in
      Printf.printf "  %-16s %8.1f %10d %14s %14s   (+%d regs, %d-cycle latency)\n"
        (Printf.sprintf "DOM %d shares" shares) cost.Sidechannel.Dom.area
        cost.Sidechannel.Dom.randoms "-" "-" cost.Sidechannel.Dom.registers
        cost.Sidechannel.Dom.latency)
    [ 2; 3 ];
  let dual = Sidechannel.Wddl.transform (Sidechannel.Leakage.private_and_source ()) in
  let collect cls =
    let a, b =
      match cls with
      | `Fixed -> true, true
      | `Random -> Rng.bool rng, Rng.bool rng
    in
    [| Sidechannel.Wddl.power_sample rng dual ~noise_sigma:0.1 ~values:[ ("a", a); ("b", b) ] |]
  in
  let w1, w2 = Sidechannel.Tvla.campaign_orders ~traces_per_class:6000 ~collect in
  Printf.printf "  %-16s %8.1f %10d %14.2f %14.2f\n" "WDDL"
    (Circuit.stats dual.Sidechannel.Wddl.circuit).Circuit.area 0
    w1.Sidechannel.Tvla.max_abs_t w2.Sidechannel.Tvla.max_abs_t;
  Printf.printf
    "  -> 2-share masking fails at 2nd order; WDDL needs no randomness and\n\
     \     is constant-activity at any order, at ~2x area and half speed.\n";

  subbanner "watermarking: structural vs functional robustness";
  let src = Gen.alu 4 in
  let sm = Locking.Watermark.embed_structural rng ~bits:16 src in
  let fm = Locking.Watermark.embed_functional rng ~bits:16 src in
  let sm_resynth =
    { sm with
      Locking.Watermark.s_circuit =
        Synth.Pass.apply "constant_propagation" sm.Locking.Watermark.s_circuit }
  in
  Printf.printf "  %-34s %12s %18s\n" "scheme" "embedded" "after resynthesis";
  Printf.printf "  %-34s %12s %18s\n" "structural (buffer gadgets)"
    (if Locking.Watermark.structural_intact sm then "16/16" else "-")
    (if Locking.Watermark.structural_intact sm_resynth then "16/16" else "ERASED");
  Printf.printf "  %-34s %12s %15d/16\n" "functional (don't-care minterms)"
    (Printf.sprintf "%d/16"
       (Locking.Watermark.verify_functional fm fm.Locking.Watermark.f_circuit))
    (Locking.Watermark.verify_functional fm (Synth.Flow.optimize fm.Locking.Watermark.f_circuit));

  subbanner "active metering: per-chip activation";
  let metered = Locking.Metering.meter rng ~state_bits:12 (Gen.c17 ()) in
  let activations = ref 0 in
  for _ = 1 to 10 do
    if Locking.Metering.activation_works rng metered ~original:(Gen.c17 ()) then incr activations
  done;
  let id = Array.init 12 (fun _ -> Rng.bool rng) in
  let guesses = ref 0 in
  for _ = 1 to 300 do
    let seq = List.init 24 (fun _ -> Rng.bool rng) in
    if Locking.Metering.is_unlocked metered (Locking.Metering.drive_unlock metered ~power_up_id:id seq)
    then incr guesses
  done;
  Printf.printf "  owner activations: %d/10; random 24-step guesses unlocking: %d/300\n"
    !activations !guesses;

  subbanner "IR-drop sign-off vs activity model (alu4, the model-accuracy trap)";
  let c = Gen.alu 4 in
  let p = (Physical.Placement.place rng ~moves:5000 c).Physical.Placement.placement in
  Printf.printf "  %-12s %12s %14s %10s\n" "activity" "bound" "simulated" "sound";
  List.iter
    (fun activity ->
      let `Bound b, `Worst_simulated w, `Meets_budget _, `Activity_model_sound sound =
        Physical.Ir_drop.verify rng ~vectors:12 ~activity p ~budget:10.0
      in
      Printf.printf "  %-12.1f %12.3f %14.3f %10b\n" activity b w sound)
    [ 0.5; 1.0; 2.0; 3.0 ];

  subbanner "probing shield: coverage vs track overhead";
  Printf.printf "  %-8s %12s %16s\n" "pitch" "coverage r=1" "track overhead";
  List.iter
    (fun pitch ->
      let sh = Physical.Shield.build ~cols:24 ~rows:24 ~pitch ~offset:0 in
      Printf.printf "  %-8d %11.0f%% %15.0f%%\n" pitch
        (100.0 *. Physical.Shield.coverage sh ~r:1)
        (100.0 *. Physical.Shield.track_overhead sh))
    [ 2; 3; 4; 6; 10 ];

  subbanner "technology mapping: generic library vs NAND2+INV vs camo cells";
  Printf.printf "  %-12s %14s %16s %14s\n" "design" "generic area" "NAND2+INV area" "camo-set area";
  List.iter
    (fun (name, c) ->
      let a0 = (Circuit.stats c).Circuit.area in
      let a1 = (Circuit.stats (Synth.Pass.apply "techmap" c)).Circuit.area in
      let a2 =
        (Circuit.stats (Synth.Pass.apply ~params:[ ("target", "camo") ] "techmap" c)).Circuit.area
      in
      Printf.printf "  %-12s %14.1f %16.1f %14.1f\n" name a0 a1 a2)
    [ ("c17", Gen.c17 ()); ("alu4", Gen.alu 4); ("adder8", Gen.ripple_adder 8) ];

  subbanner "timing-driven structure: ripple vs Kogge-Stone adder (STA)";
  Printf.printf "  %-16s %8s %8s %12s\n" "adder (8-bit)" "gates" "depth" "delay (ps)";
  List.iter
    (fun (name, c) ->
      let st = Circuit.stats c in
      Printf.printf "  %-16s %8d %8d %12.1f\n" name st.Circuit.gates (Timing.Sta.depth c)
        (Timing.Sta.analyze c).Timing.Sta.critical_path_delay)
    [ ("ripple", Gen.ripple_adder 8); ("kogge-stone", Gen.kogge_stone_adder 8) ];

  subbanner "design-space exploration: Pareto front over countermeasure combos";
  let all, front = Secure_eda.Explore.run rng ~traces_per_class:2500 ~noise_sigma:0.3 ~injections:150 in
  List.iter
    (fun e ->
      let on_front = List.exists (fun f -> f.Secure_eda.Explore.point = e.Secure_eda.Explore.point) front in
      let area =
        match List.find_opt (fun m -> m.Secure_eda.Metric.name = "area") e.Secure_eda.Explore.metrics with
        | Some m -> m.Secure_eda.Metric.value
        | None -> nan
      in
      Printf.printf "  %-20s area %6.1f  covers {%s}  %s\n"
        (Secure_eda.Composition.point_name e.Secure_eda.Explore.point) area
        (String.concat ", "
           (List.map Secure_eda.Threat_model.name (Secure_eda.Explore.covered_threats e)))
        (if on_front then "ON PARETO FRONT" else "dominated"))
    all;
  Printf.printf
    "  -> the naive \"add both countermeasures\" point is dominated: it pays\n\
     \     masked-area cost yet fails the SCA threshold (the Sec. IV trap).\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks.                                          *)
(* ------------------------------------------------------------------ *)

let micro () =
  banner "MICRO — Bechamel timings of the toolkit's core operations";
  let open Bechamel in
  let c17 = Gen.c17 () in
  let alu = Gen.alu 4 in
  let sbox = Crypto.Sbox_circuit.aes_sbox () in
  let rng = Rng.create 5 in
  let alu_inputs = Array.init 10 (fun _ -> Rng.bool rng) in
  let sbox_inputs = Crypto.Sbox_circuit.byte_to_bits 0xA5 in
  let masked = Sidechannel.Leakage.synthesize_masked Sidechannel.Leakage.Security_aware in
  let tests =
    [ Test.make ~name:"sim_alu4" (Staged.stage (fun () -> ignore (Netlist.Sim.eval alu alu_inputs)));
      Test.make ~name:"sim_aes_sbox" (Staged.stage (fun () -> ignore (Netlist.Sim.eval sbox sbox_inputs)));
      Test.make ~name:"sim_word_alu4"
        (Staged.stage
           (let words = Array.make 10 0x5A5A5A5A in
            fun () -> ignore (Netlist.Sim.eval_word alu words)));
      Test.make ~name:"event_sim_alu4"
        (Staged.stage (fun () ->
             ignore
               (Timing.Event_sim.cycle alu ~prev_inputs:(Array.make 10 false)
                  ~next_inputs:(Array.make 10 true))));
      Test.make ~name:"sat_equiv_c17"
        (Staged.stage (fun () -> ignore (Sat.Cnf.check_equivalence c17 c17)));
      Test.make ~name:"synth_optimize_alu4" (Staged.stage (fun () -> ignore (Synth.Flow.optimize alu)));
      Test.make ~name:"power_hw_sample_masked"
        (Staged.stage
           (let r = Rng.create 9 in
            fun () ->
              let vec = Sidechannel.Isw.input_vector r masked ~values:[ ("a", true); ("b", true) ] in
              ignore
                (Power.Model.hamming_weight_sample r masked.Sidechannel.Isw.circuit
                   ~noise_sigma:0.3 ~inputs:vec)));
      Test.make ~name:"sat_attack_epic8_alu4"
        (Staged.stage
           (let r = Rng.create 11 in
            fun () ->
              let source = Gen.alu 4 in
              let locked = Locking.Lock.epic r ~key_bits:8 source in
              ignore
                (Locking.Sat_attack.run ~oracle:(Locking.Sat_attack.oracle_of_circuit source) locked))) ]
  in
  let grouped = Test.make_grouped ~name:"secure_eda" ~fmt:"%s %s" tests in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "  %-36s %16s\n" "benchmark" "time per run";
  let rows = Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some (ns :: _) ->
        let pretty =
          if ns > 1e9 then Printf.sprintf "%8.2f s" (ns /. 1e9)
          else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
          else Printf.sprintf "%8.0f ns" ns
        in
        Printf.printf "  %-36s %16s\n" name pretty
      | Some [] | None -> Printf.printf "  %-36s %16s\n" name "n/a")
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Telemetry-backed perf report: machine-readable BENCH_perf.json.     *)
(* ------------------------------------------------------------------ *)

(* Reduced workload sizes for CI (--smoke). *)
let smoke = ref false

(* Before/after harness for the allocation-free hot paths: the identical
   workload drives both the production engines and the reference
   implementations retained from before the optimization ([Sat.Solver_ref];
   local copies of the old allocating simulation loops below). *)
module Perf_compare = struct
  module Solver = Sat.Solver
  module Ref = Sat.Solver_ref
  module Gate = Netlist.Gate

  (* Minimal solver interface, so one SAT-attack workload can run against
     either implementation with a bit-identical clause stream. *)
  type ops = {
    new_vars : int -> int;  (* allocate a contiguous block, return first *)
    add_clause : int list -> unit;
    solve : int list -> bool;  (* under assumptions; true = SAT *)
    model : int -> bool;
  }

  let solver_ops s =
    { new_vars = (fun n -> Solver.new_vars s n);
      add_clause = (fun lits -> Solver.add_clause s lits);
      solve = (fun assumptions -> Solver.solve ~assumptions s = Solver.Sat);
      model = (fun v -> Solver.model_value s v) }

  let ref_ops s =
    { new_vars =
        (fun n ->
          let first = Ref.new_var s in
          for _ = 2 to n do
            ignore (Ref.new_var s)
          done;
          first);
      add_clause = (fun lits -> Ref.add_clause s lits);
      solve = (fun assumptions -> Ref.solve ~assumptions s = Ref.Sat);
      model = (fun v -> Ref.model_value s v) }

  let plit v = Solver.lit_of_var v ~sign:true
  let nlit v = Solver.lit_of_var v ~sign:false

  (* Tseitin encoding of a circuit copy; returns the per-node variable
     array. DFFs are treated as free inputs (combinational abstraction,
     same as the production CNF layer). *)
  let encode ops c =
    let n = Circuit.node_count c in
    let base = ops.new_vars n in
    let v i = base + i in
    for i = 0 to n - 1 do
      let nd = Circuit.node c i in
      let f k = v nd.Circuit.fanins.(k) in
      let y = v i in
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> ()
      | Gate.Const b -> ops.add_clause [ (if b then plit y else nlit y) ]
      | Gate.Buf ->
        ops.add_clause [ nlit y; plit (f 0) ];
        ops.add_clause [ plit y; nlit (f 0) ]
      | Gate.Not ->
        ops.add_clause [ nlit y; nlit (f 0) ];
        ops.add_clause [ plit y; plit (f 0) ]
      | Gate.And ->
        ops.add_clause [ nlit y; plit (f 0) ];
        ops.add_clause [ nlit y; plit (f 1) ];
        ops.add_clause [ plit y; nlit (f 0); nlit (f 1) ]
      | Gate.Nand ->
        ops.add_clause [ plit y; plit (f 0) ];
        ops.add_clause [ plit y; plit (f 1) ];
        ops.add_clause [ nlit y; nlit (f 0); nlit (f 1) ]
      | Gate.Or ->
        ops.add_clause [ plit y; nlit (f 0) ];
        ops.add_clause [ plit y; nlit (f 1) ];
        ops.add_clause [ nlit y; plit (f 0); plit (f 1) ]
      | Gate.Nor ->
        ops.add_clause [ nlit y; nlit (f 0) ];
        ops.add_clause [ nlit y; nlit (f 1) ];
        ops.add_clause [ plit y; plit (f 0); plit (f 1) ]
      | Gate.Xor ->
        ops.add_clause [ nlit y; plit (f 0); plit (f 1) ];
        ops.add_clause [ nlit y; nlit (f 0); nlit (f 1) ];
        ops.add_clause [ plit y; nlit (f 0); plit (f 1) ];
        ops.add_clause [ plit y; plit (f 0); nlit (f 1) ]
      | Gate.Xnor ->
        ops.add_clause [ plit y; plit (f 0); plit (f 1) ];
        ops.add_clause [ plit y; nlit (f 0); nlit (f 1) ];
        ops.add_clause [ nlit y; nlit (f 0); plit (f 1) ];
        ops.add_clause [ nlit y; plit (f 0); nlit (f 1) ]
      | Gate.Mux ->
        let s = f 0 and d0 = f 1 and d1 = f 2 in
        ops.add_clause [ nlit s; nlit d1; plit y ];
        ops.add_clause [ nlit s; plit d1; nlit y ];
        ops.add_clause [ plit s; nlit d0; plit y ];
        ops.add_clause [ plit s; plit d0; nlit y ]
    done;
    Array.init n (fun i -> v i)

  let xor_var ops a b =
    let t = ops.new_vars 1 in
    ops.add_clause [ nlit t; plit a; plit b ];
    ops.add_clause [ nlit t; nlit a; nlit b ];
    ops.add_clause [ plit t; nlit a; plit b ];
    ops.add_clause [ plit t; plit a; nlit b ];
    t

  let or_var ops ds =
    let t = ops.new_vars 1 in
    List.iter (fun d -> ops.add_clause [ nlit d; plit t ]) ds;
    ops.add_clause (nlit t :: List.map plit ds);
    t

  let tie ops a b =
    ops.add_clause [ nlit a; plit b ];
    ops.add_clause [ plit a; nlit b ]

  let fix ops v b = ops.add_clause [ (if b then plit v else nlit v) ]

  (* The oracle-guided DIP loop of the SAT attack, generic over [ops] —
     structurally the same incremental workload [Locking.Sat_attack] puts
     on the solver (double-encoded miter, growing I/O constraints).
     Returns the number of DIP iterations. *)
  let dip_attack ops ~original (locked : Locking.Lock.locked) =
    let c = locked.Locking.Lock.circuit in
    let vars_a = encode ops c in
    let vars_b = encode ops c in
    let key env = Array.map (fun id -> env.(id)) locked.Locking.Lock.key_inputs in
    let data env = Array.map (fun id -> env.(id)) locked.Locking.Lock.data_inputs in
    let outs env = Array.map (fun o -> env.(o)) (Circuit.output_ids c) in
    Array.iteri (fun k va -> tie ops va (data vars_b).(k)) (data vars_a);
    let diffs =
      Array.to_list
        (Array.mapi (fun k oa -> xor_var ops oa (outs vars_b).(k)) (outs vars_a))
    in
    let miter_on = plit (or_var ops diffs) in
    let iterations = ref 0 in
    while ops.solve [ miter_on ] do
      incr iterations;
      let dip = Array.map ops.model (data vars_a) in
      let response = Netlist.Sim.eval original dip in
      List.iter
        (fun env_keys ->
          let vars_f = encode ops c in
          Array.iteri (fun k v -> fix ops v dip.(k)) (data vars_f);
          Array.iteri (fun k v -> fix ops v response.(k)) (outs vars_f);
          Array.iteri (fun k v -> tie ops v env_keys.(k)) (key vars_f))
        [ key vars_a; key vars_b ]
    done;
    ignore (ops.solve []);  (* final key extraction, as in the real attack *)
    !iterations

  (* The pre-optimization word simulation, verbatim shape: one input-word
     array per pattern batch, one result array per call, one operand array
     per gate ([Gate.eval_word] over [Array.map]). *)
  let eval_all_word_alloc c inputs =
    let values = Array.make (Circuit.node_count c) 0 in
    let next_input = ref 0 in
    for i = 0 to Circuit.node_count c - 1 do
      let nd = Circuit.node c i in
      match nd.Circuit.kind with
      | Gate.Input ->
        values.(i) <- inputs.(!next_input);
        incr next_input
      | Gate.Dff -> values.(i) <- 0
      | k ->
        values.(i) <- Gate.eval_word k (Array.map (fun f -> values.(f)) nd.Circuit.fanins)
    done;
    values

  (* Pre-optimization Hamming weight: the bit-at-a-time loop Stats used
     before the SWAR popcount (same values, 63 iterations per word). *)
  let hamming_weight_loop x =
    let rec loop acc i =
      if i >= 63 then acc else loop (acc + ((x lsr i) land 1)) (i + 1)
    in
    loop 0 0

  let signal_probabilities_alloc rng ~patterns c =
    let ni = Circuit.num_inputs c in
    let words = max 1 ((patterns + 62) / 63) in
    let ones = Array.make (Circuit.node_count c) 0 in
    for _ = 1 to words do
      let inputs =
        (* boxed Int64 draw, as the pre-PR [Rng] forced on every caller *)
        Array.init ni (fun _ -> Int64.to_int (Rng.next_int64 rng))
      in
      let values = eval_all_word_alloc c inputs in
      Array.iteri
        (fun i w -> ones.(i) <- ones.(i) + hamming_weight_loop w)
        values
    done;
    Array.map (fun k -> Float.of_int k /. Float.of_int (words * 63)) ones

  (* CPU time + allocation profile of [f]: (result, seconds, allocated
     words, major-heap words). Allocation accounting rides the same
     [Telemetry.alloc_snapshot] primitive the tracer uses for per-span
     GC deltas, so bench and traces report from one cost model. *)
  let measured f =
    Gc.full_major ();
    let g0 = Eda_util.Telemetry.alloc_snapshot () in
    let t0 = Sys.time () in
    let r = f () in
    let dt = Sys.time () -. t0 in
    let d = Eda_util.Telemetry.alloc_since g0 in
    (r, Float.max dt 1e-9, d.Eda_util.Telemetry.alloc_words,
     d.Eda_util.Telemetry.major_words)

  (* Wrap [ops.solve] so the solver's own search phase is timed and
     GC-profiled apart from the bench-side CNF encoding (which is shared
     verbatim between the two implementations and would otherwise dilute
     the comparison). Returns the wrapped ops plus accumulators. *)
  let instrument_solve ops =
    let seconds = ref 0.0 and allocated = ref 0.0 in
    let solve assumptions =
      let g0 = Eda_util.Telemetry.alloc_snapshot () in
      let t0 = Sys.time () in
      let r = ops.solve assumptions in
      seconds := !seconds +. (Sys.time () -. t0);
      allocated :=
        !allocated +. (Eda_util.Telemetry.alloc_since g0).Eda_util.Telemetry.alloc_words;
      r
    in
    ({ ops with solve }, seconds, allocated)
end

let perf () =
  banner "PERF — telemetry-instrumented engine runs (writes BENCH_perf.json)";
  let module T = Eda_util.Telemetry in
  Printf.printf
    "Each workload runs under an in-memory telemetry sink; the JSON below\n\
     is built from the same spans and counters the JSONL exporter streams.\n";
  (* Overhead of disabled telemetry: with_span with no sink installed must
     stay in the nanoseconds — the no-measurable-slowdown guarantee the
     engines rely on to keep instrumentation always-on. *)
  let iterations = 1_000_000 in
  let timed f =
    let t0 = Sys.time () in
    let r = f () in
    (r, Sys.time () -. t0)
  in
  let (), span_s =
    timed (fun () ->
        for i = 1 to iterations do
          T.with_span "noop" (fun () -> ignore (Sys.opaque_identity i))
        done)
  in
  let (), base_s =
    timed (fun () ->
        for i = 1 to iterations do
          (fun () -> ignore (Sys.opaque_identity i)) ()
        done)
  in
  let overhead_ns = 1e9 *. (span_s -. base_s) /. Float.of_int iterations in
  Printf.printf "  disabled with_span overhead: %.1f ns/call (%d calls)\n"
    (Float.max 0.0 overhead_ns) iterations;
  (* Representative instrumented workloads, one per engine family.
     [gates] is the node count of the circuit the workload runs on, so
     every JSON row is interpretable as cost-at-size. *)
  let workload name ~gates f =
    let sink, events = T.memory_sink () in
    let (counters, gauges), seconds =
      timed (fun () ->
          T.with_sink sink (fun () ->
              f ();
              (T.counter_totals (), T.gauge_last "atpg.coverage")))
    in
    ignore gauges;
    let spans =
      List.length (List.filter (fun e -> e.T.kind = T.Span_end) (events ()))
    in
    Printf.printf "  %-24s %8.3f s  %4d span(s)\n" name seconds spans;
    T.Json.JObj
      [ ("name", T.Json.JStr name);
        ("gates", T.Json.JInt gates);
        ("seconds", T.Json.JFloat seconds);
        ("spans", T.Json.JInt spans);
        ( "counters",
          T.Json.JObj (List.map (fun (k, v) -> (k, T.Json.JInt v)) counters) ) ]
  in
  let rng = Rng.create 7 in
  let alu = Gen.alu 4 in
  let alu_gates = Netlist.Circuit.node_count alu in
  let rows =
    [ workload "synth_optimize" ~gates:alu_gates (fun () ->
          ignore (Synth.Flow.optimize alu));
      workload "placement_anneal" ~gates:alu_gates (fun () ->
          ignore (Physical.Placement.place rng ~moves:8000 alu));
      workload "atpg" ~gates:alu_gates (fun () -> ignore (Dft.Atpg.run alu));
      workload "sat_attack_epic8" ~gates:alu_gates (fun () ->
          let locked = Locking.Lock.epic rng ~key_bits:8 alu in
          ignore
            (Locking.Sat_attack.run
               ~oracle:(Locking.Sat_attack.oracle_of_circuit alu) locked));
      (let masked =
         Sidechannel.Leakage.synthesize_masked Sidechannel.Leakage.Security_aware
       in
       workload "tvla_campaign"
         ~gates:(Netlist.Circuit.node_count masked.Sidechannel.Isw.circuit)
         (fun () ->
           ignore
             (Sidechannel.Leakage.tvla_campaign rng masked ~traces_per_class:1000
                ~noise_sigma:0.3)));
      workload "flow_run" ~gates:alu_gates (fun () ->
          ignore (Secure_eda.Flow.run rng alu)) ]
  in
  (* ---- Before/after: array-based solver core vs reference CDCL ---- *)
  let module P = Perf_compare in
  subbanner "solver core: SAT-attack workload, new vs reference implementation";
  let key_bits = if !smoke then 8 else 20 in
  let reps = if !smoke then 1 else 5 in
  let attack_orig = Gen.alu 4 in
  let attack_locked = Locking.Lock.epic (Rng.create 90210) ~key_bits attack_orig in
  let run_new () =
    let dips = ref 0 and props = ref 0 and learnt_live = ref 0 in
    let solve_s = ref 0.0 and solve_alloc = ref 0.0 in
    let (), dt, allocated, major =
      P.measured (fun () ->
          for _ = 1 to reps do
            let s = Sat.Solver.create () in
            let ops, ss, sa = P.instrument_solve (P.solver_ops s) in
            dips := P.dip_attack ops ~original:attack_orig attack_locked;
            solve_s := !solve_s +. !ss;
            solve_alloc := !solve_alloc +. !sa;
            let st = Sat.Solver.stats s in
            props := !props + st.Sat.Solver.propagations;
            learnt_live := st.Sat.Solver.learnt_live
          done)
    in
    (!dips, !props, !learnt_live, dt, allocated, major, !solve_s, !solve_alloc)
  in
  let run_ref () =
    let dips = ref 0 and props = ref 0 in
    let solve_s = ref 0.0 and solve_alloc = ref 0.0 in
    let (), dt, allocated, major =
      P.measured (fun () ->
          for _ = 1 to reps do
            let s = Sat.Solver_ref.create () in
            let ops, ss, sa = P.instrument_solve (P.ref_ops s) in
            dips := P.dip_attack ops ~original:attack_orig attack_locked;
            solve_s := !solve_s +. !ss;
            solve_alloc := !solve_alloc +. !sa;
            props := !props + (Sat.Solver_ref.stats s).Sat.Solver_ref.propagations
          done)
    in
    (!dips, !props, dt, allocated, major, !solve_s, !solve_alloc)
  in
  let n_dips, n_props, n_learnt, n_dt, n_alloc, n_major, n_ss, n_sa = run_new () in
  let r_dips, r_props, r_dt, r_alloc, r_major, r_ss, r_sa = run_ref () in
  if n_dips <> r_dips then
    Printf.printf "  WARNING: DIP counts differ (new %d, ref %d)\n" n_dips r_dips;
  let sat_speedup = r_dt /. n_dt in
  let sat_alloc_reduction = r_alloc /. Float.max n_alloc 1.0 in
  let solve_speedup = r_ss /. Float.max n_ss 1e-9 in
  let solve_alloc_reduction = r_sa /. Float.max n_sa 1.0 in
  let pps dt props = Float.of_int props /. dt in
  Printf.printf "  %-12s %10s %14s %16s %16s %10s %14s\n" "" "time (s)" "props/sec"
    "alloc words" "major words" "solve (s)" "solve alloc";
  Printf.printf "  %-12s %10.3f %14.0f %16.0f %16.0f %10.3f %14.0f\n" "new" n_dt
    (pps n_dt n_props) n_alloc n_major n_ss n_sa;
  Printf.printf "  %-12s %10.3f %14.0f %16.0f %16.0f %10.3f %14.0f\n" "reference" r_dt
    (pps r_dt r_props) r_alloc r_major r_ss r_sa;
  Printf.printf
    "  EPIC-%d on alu4, %d DIPs x%d: end-to-end speedup %.1fx (alloc %.0fx down);\n\
    \  solve phase alone: speedup %.1fx, allocation reduced %.0fx, learnt DB %d live\n"
    key_bits n_dips reps sat_speedup sat_alloc_reduction solve_speedup
    solve_alloc_reduction n_learnt;
  (* ---- Before/after: zero-alloc bit-parallel simulation ---- *)
  subbanner "simulation: signal_probabilities, new vs allocating baseline";
  let sim_circuit = Gen.kogge_stone_adder 8 in
  let sim_patterns = 63 * (if !smoke then 400 else 4000) in
  let (probs_new, sim_n_dt, sim_n_alloc, sim_n_major) =
    P.measured (fun () ->
        Netlist.Sim.signal_probabilities (Rng.create 424242) ~patterns:sim_patterns sim_circuit)
  in
  let (probs_ref, sim_r_dt, sim_r_alloc, sim_r_major) =
    P.measured (fun () ->
        P.signal_probabilities_alloc (Rng.create 424242) ~patterns:sim_patterns sim_circuit)
  in
  if probs_new <> probs_ref then
    Printf.printf "  WARNING: probability vectors differ between implementations\n";
  let sim_speedup = sim_r_dt /. sim_n_dt in
  let sim_alloc_reduction = sim_r_alloc /. Float.max sim_n_alloc 1.0 in
  let patps dt = Float.of_int sim_patterns /. dt in
  Printf.printf "  %-12s %10s %14s %16s %16s\n" "" "time (s)" "patterns/sec" "alloc words" "major words";
  Printf.printf "  %-12s %10.3f %14.0f %16.0f %16.0f\n" "new" sim_n_dt (patps sim_n_dt) sim_n_alloc sim_n_major;
  Printf.printf "  %-12s %10.3f %14.0f %16.0f %16.0f\n" "reference" sim_r_dt (patps sim_r_dt) sim_r_alloc sim_r_major;
  Printf.printf "  kogge_stone(8), %d patterns: speedup %.1fx, allocation reduced %.0fx\n"
    sim_patterns sim_speedup sim_alloc_reduction;
  (* ---- Domain pool: size-parametrized speedup-vs-domains curves ---- *)
  subbanner
    (Printf.sprintf "domain pool: speedup vs domains (sweep capped at -j %d)" (max 1 !jobs));
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let pool_counts =
    let cap = max 1 !jobs in
    List.sort_uniq compare (1 :: List.filter (fun d -> d <= cap) [ 2; 4; 8 ])
  in
  (* Each sweep runs the identical workload at every domain count (1 =
     no pool, the sequential baseline) and fingerprints the result: the
     engines promise bit-identical answers, so a fingerprint mismatch is
     a determinism bug, reported both on stdout and in the JSON. Each
     workload carries its circuit's gate count so the JSON curves are
     interpretable as speedup-vs-size families. *)
  let pool_sweep name ~gates ~extra run fingerprint =
    let rows =
      List.map
        (fun d ->
          let pool = if d = 1 then None else Some (Eda_util.Pool.create ~num_domains:d ()) in
          let r, dt = wall (fun () -> run pool) in
          Option.iter Eda_util.Pool.shutdown pool;
          (d, dt, fingerprint r))
        pool_counts
    in
    let _, base_dt, base_fp = List.hd rows in
    List.iter
      (fun (d, dt, fp) ->
        Printf.printf "  %-22s %2d domain(s): %8.3f s  speedup %.2fx%s\n"
          (Printf.sprintf "%s/%dg" name gates)
          d dt (base_dt /. dt)
          (if fp = base_fp then "" else "  [RESULT MISMATCH]"))
      rows;
    T.Json.JObj
      ([ ("workload", T.Json.JStr name); ("gates", T.Json.JInt gates) ]
       @ extra
       @ [ ( "deterministic",
             T.Json.JBool (List.for_all (fun (_, _, fp) -> fp = base_fp) rows) );
           ( "curve",
             T.Json.JList
               (List.map
                  (fun (d, dt, _) ->
                    T.Json.JObj
                      [ ("domains", T.Json.JInt d);
                        ("seconds", T.Json.JFloat dt);
                        ("speedup", T.Json.JFloat (base_dt /. dt)) ])
                  rows) ) ])
  in
  (* Deterministic, cost-representative fault subset: shuffle under a
     fixed seed, keep random-testable candidates (their miters are
     satisfiable, so per-fault SAT stays bounded; deep redundant faults
     would serialize the whole sweep behind one pathological proof),
     then stratify the pick by fanout-cone size — sort the candidate
     pool by cone gate count and take evenly spaced ranks. The subset
     then spans the circuit's cone-size distribution at every size, so
     per-fault cost scales with the circuit instead of jumping with the
     luck of the shuffle (the unstratified pick made the 6k-gate sweep
     slower than the 12k one). Returns the picked faults paired with
     their cone gate counts, which the JSON rows record. *)
  let atpg_fault_subset ~seed ~count c =
    let all = Array.of_list (Fault.Model.all_stuck_at_faults c) in
    let frng = Rng.create seed in
    Rng.shuffle frng all;
    let ni = Netlist.Circuit.num_inputs c in
    let pats = List.init 24 (fun _ -> Array.init ni (fun _ -> Rng.bool frng)) in
    let scratch = Array.make (Netlist.Circuit.node_count c) false in
    let cands = ref [] and n = ref 0 and i = ref 0 in
    let cap = 4 * count in
    while !n < cap && !i < Array.length all do
      let f = all.(!i) in
      if List.exists (fun p -> Fault.Model.detects c ~fault:f p) pats then begin
        let cone = Sat.Cnf.fanout_cone_gates ~scratch c ~node:(Fault.Model.node_of f) in
        cands := (f, cone) :: !cands;
        incr n
      end;
      incr i
    done;
    let cands = Array.of_list (List.rev !cands) in
    Array.sort
      (fun (fa, ca) (fb, cb) ->
        compare (ca, Fault.Model.node_of fa, fa) (cb, Fault.Model.node_of fb, fb))
      cands;
    let m = Array.length cands in
    let picked =
      if m <= count then Array.to_list cands
      else List.init count (fun j -> cands.(j * m / count))
    in
    (List.map fst picked, List.map snd picked)
  in
  (* Workload sizes: smoke keeps CI fast with one small size per engine;
     full mode sweeps >= 3 sizes per engine with a 10k+-gate top size. *)
  let atpg_sizes = if !smoke then [ 2000 ] else [ 2000; 6000; 12000 ] in
  let atpg_fault_count = if !smoke then 16 else 32 in
  let tvla_sizes = if !smoke then [ 2000 ] else [ 2000; 8000; 20000 ] in
  let tvla_pairs = if !smoke then 128 else 512 in
  let place_sizes = if !smoke then [ 2000 ] else [ 2000; 8000; 20000 ] in
  let place_moves = if !smoke then 1000 else 4000 in
  let place_starts = 8 in
  let atpg_cases =
    List.map
      (fun tgt ->
        let c = Netlist.Bench_gen.sized ~seed:11 Netlist.Bench_gen.Layered ~target_gates:tgt in
        let faults, cones = atpg_fault_subset ~seed:99 ~count:atpg_fault_count c in
        (c, faults, cones))
      atpg_sizes
  in
  let atpg_rows =
    List.map
      (fun (c, faults, cones) ->
        pool_sweep "atpg_layered"
          ~gates:(Netlist.Circuit.node_count c)
          ~extra:
            [ ("faults", T.Json.JInt (List.length faults));
              ("fault_cones", T.Json.JList (List.map (fun g -> T.Json.JInt g) cones)) ]
          (fun pool -> Dft.Atpg.run ?pool ~faults c)
          (fun r ->
            Printf.sprintf "%.9f/%d" r.Dft.Atpg.coverage (List.length r.Dft.Atpg.patterns)))
      atpg_cases
  in
  let tvla_rows =
    List.map
      (fun tgt ->
        let c = Netlist.Bench_gen.sized ~seed:12 Netlist.Bench_gen.Layered ~target_gates:tgt in
        let ni = Netlist.Circuit.num_inputs c in
        let nodes = Netlist.Circuit.node_count c in
        let collect stream cls =
          let vec =
            Array.init ni (fun _ ->
                match cls with `Fixed -> true | `Random -> Rng.bool stream)
          in
          let scratch = Array.make nodes false in
          [| Power.Model.hamming_weight_sample stream ~scratch c ~noise_sigma:0.5
               ~inputs:vec |]
        in
        pool_sweep "tvla_layered" ~gates:nodes
          ~extra:[ ("trace_pairs", T.Json.JInt tvla_pairs) ]
          (fun pool ->
            Sidechannel.Tvla.campaign_seeded ?pool (Rng.create 5150)
              ~traces_per_class:tvla_pairs ~collect)
          (fun r -> Printf.sprintf "%.12f" r.Sidechannel.Tvla.max_abs_t))
      tvla_sizes
  in
  let place_rows =
    List.map
      (fun tgt ->
        let c = Netlist.Bench_gen.sized ~seed:13 Netlist.Bench_gen.C880 ~target_gates:tgt in
        pool_sweep "placement_c880"
          ~gates:(Netlist.Circuit.node_count c)
          ~extra:
            [ ("starts", T.Json.JInt place_starts); ("moves", T.Json.JInt place_moves) ]
          (fun pool ->
            Physical.Placement.place ~starts:place_starts ~moves:place_moves ?pool
              (Rng.create 2718) c)
          (fun o ->
            Printf.sprintf "%d/%d"
              (Physical.Placement.wirelength o.Physical.Placement.placement)
              o.Physical.Placement.best_start))
      place_sizes
  in
  (* Scheduling-grain microbench: many tiny tasks, chunk 1 vs a coarse
     grain — the overhead the ?chunk parameter exists to amortize. *)
  let grain_tasks = if !smoke then 20_000 else 100_000 in
  let grain_json =
    let inputs = Array.init grain_tasks (fun i -> i) in
    let d = max 1 !jobs in
    let run chunk =
      Eda_util.Pool.with_pool ~num_domains:d (fun p ->
          let (), dt =
            wall (fun () ->
                ignore (Eda_util.Pool.parallel_map ~chunk p ~f:(fun _ x -> x + 1) inputs))
          in
          dt)
    in
    let fine = run 1 in
    let coarse = run (max 1 (grain_tasks / (4 * d))) in
    Printf.printf
      "  pool grain: %d unit tasks at %d domain(s): chunk=1 %.3fs, coarse %.3fs (%.1fx)\n"
      grain_tasks d fine coarse (fine /. Float.max coarse 1e-9);
    T.Json.JObj
      [ ("tasks", T.Json.JInt grain_tasks);
        ("domains", T.Json.JInt d);
        ("chunk1_seconds", T.Json.JFloat fine);
        ("coarse_seconds", T.Json.JFloat coarse);
        ("coarse_speedup", T.Json.JFloat (fine /. Float.max coarse 1e-9)) ]
  in
  (* ---- Incremental vs fresh ATPG: the before/after comparison ---- *)
  subbanner "atpg: incremental sessions vs per-fault fresh solvers";
  (* The pre-incremental ATPG path, kept inline as the reference side: a
     fresh solver + whole clean-circuit re-encode per fault
     ([Cnf.check_stuck_at]) and scalar per-fault pattern simulation —
     exactly what [Dft.Atpg.run]'s persistent sessions and word-parallel
     dropping replaced. Same greedy compaction, so detection statuses
     (and so coverage) must agree with the incremental engine; witness
     patterns may differ. *)
  let atpg_fresh_reference c faults =
    let remaining = ref faults in
    let patterns = ref [] in
    let untestable = ref 0 in
    while !remaining <> [] do
      match !remaining with
      | [] -> ()
      | Fault.Model.Bit_flip _ :: rest -> remaining := rest
      | (Fault.Model.Stuck_at { node; value } as _f) :: rest ->
        (match Sat.Cnf.check_stuck_at c ~node ~value with
         | Sat.Cnf.Equivalent ->
           incr untestable;
           remaining := rest
         | Sat.Cnf.Equiv_unknown _ -> remaining := rest
         | Sat.Cnf.Counterexample p ->
           patterns := p :: !patterns;
           remaining :=
             List.filter (fun g -> not (Fault.Model.detects c ~fault:g p)) rest)
    done;
    (List.rev !patterns, !untestable)
  in
  (* Run a side under an in-memory sink and split its wall time into the
     encode ([cnf.encode] spans) and solve ([sat.solve] spans) phases
     from the trace's span totals. *)
  let measure_atpg_split f =
    let sink, events = T.memory_sink () in
    let r, dt = wall (fun () -> T.with_sink sink f) in
    let totals =
      match T.Trace.of_events (events ()) with
      | Ok tr -> T.Trace.span_totals tr
      | Error _ -> []
    in
    let total name = Option.value (List.assoc_opt name totals) ~default:0.0 in
    (r, dt, total "cnf.encode", total "sat.solve")
  in
  let atpg_cmp_rows =
    List.map
      (fun (c, faults, _cones) ->
        let gates = Netlist.Circuit.node_count c in
        let inc, inc_dt, inc_enc, inc_solve =
          measure_atpg_split (fun () -> Dft.Atpg.run ~faults c)
        in
        let (ref_pats, ref_untestable), ref_dt, ref_enc, ref_solve =
          measure_atpg_split (fun () -> atpg_fresh_reference c faults)
        in
        let total = List.length faults in
        let ref_coverage =
          if total = 0 then 1.0
          else Float.of_int (total - ref_untestable) /. Float.of_int total
        in
        let coverage_match = Float.abs (inc.Dft.Atpg.coverage -. ref_coverage) < 1e-9 in
        let speedup = ref_dt /. Float.max inc_dt 1e-9 in
        Printf.printf
          "  atpg %6dg/%2d faults: fresh %7.3fs (enc %6.3f solve %6.3f) -> \
           incremental %7.3fs (enc %6.3f solve %6.3f)  %5.2fx%s\n"
          gates total ref_dt ref_enc ref_solve inc_dt inc_enc inc_solve speedup
          (if coverage_match then "" else "  [COVERAGE MISMATCH]");
        T.Json.JObj
          [ ("workload", T.Json.JStr "atpg_layered");
            ("gates", T.Json.JInt gates);
            ("faults", T.Json.JInt total);
            ( "new",
              T.Json.JObj
                [ ("seconds", T.Json.JFloat inc_dt);
                  ("encode_seconds", T.Json.JFloat inc_enc);
                  ("solve_seconds", T.Json.JFloat inc_solve);
                  ("patterns", T.Json.JInt (List.length inc.Dft.Atpg.patterns)) ] );
            ( "reference",
              T.Json.JObj
                [ ("seconds", T.Json.JFloat ref_dt);
                  ("encode_seconds", T.Json.JFloat ref_enc);
                  ("solve_seconds", T.Json.JFloat ref_solve);
                  ("patterns", T.Json.JInt (List.length ref_pats)) ] );
            ("speedup", T.Json.JFloat speedup);
            ("coverage_match", T.Json.JBool coverage_match) ])
      atpg_cases
  in
  (* ---- Persistent session vs fresh solvers, SAT phase isolated ----
     The full-engine comparison above can resolve the whole subset in
     its random-pattern bootstrap, leaving the SAT phase idle; this row
     measures the clause-group session machinery on its own. The same
     stuck-at queries run head-order through one persistent
     [Stuck_at_session] and through per-fault fresh [check_stuck_at] —
     no pattern dropping on either side — so the contrast is exactly
     shared-clean-encode + persistent learnts vs a full re-encode and
     cold solver per query. Per-query statuses must agree. *)
  subbanner "sat: persistent session vs per-query fresh solvers";
  let sat_session_rows =
    List.map
      (fun (c, faults, _cones) ->
        let gates = Netlist.Circuit.node_count c in
        let queries =
          List.filter_map
            (function
              | Fault.Model.Stuck_at { node; value } -> Some (node, value)
              | Fault.Model.Bit_flip _ -> None)
            faults
        in
        let fresh_answers = ref [] in
        let (), ref_dt, ref_enc, ref_solve =
          measure_atpg_split (fun () ->
              List.iter
                (fun (node, value) ->
                  let a = Sat.Cnf.check_stuck_at c ~node ~value in
                  fresh_answers := a :: !fresh_answers)
                queries)
        in
        let sess_answers = ref [] in
        let (), sess_dt, sess_enc, sess_solve =
          measure_atpg_split (fun () ->
              let s = Sat.Cnf.Stuck_at_session.create c in
              List.iter
                (fun (node, value) ->
                  let a = Sat.Cnf.Stuck_at_session.query s ~node ~value in
                  sess_answers := a :: !sess_answers)
                queries)
        in
        let status = function
          | Sat.Cnf.Equivalent -> 0
          | Sat.Cnf.Counterexample _ -> 1
          | Sat.Cnf.Equiv_unknown _ -> 2
        in
        let answers_match =
          List.length !fresh_answers = List.length !sess_answers
          && List.for_all2 (fun a b -> status a = status b) !fresh_answers !sess_answers
        in
        let speedup = ref_dt /. Float.max sess_dt 1e-9 in
        Printf.printf
          "  sat  %6dg/%2d queries: fresh %7.3fs (enc %6.3f solve %6.3f) -> \
           session %7.3fs (enc %6.3f solve %6.3f)  %5.2fx%s\n"
          gates (List.length queries) ref_dt ref_enc ref_solve sess_dt sess_enc
          sess_solve speedup
          (if answers_match then "" else "  [ANSWER MISMATCH]");
        T.Json.JObj
          [ ("workload", T.Json.JStr "atpg_layered");
            ("gates", T.Json.JInt gates);
            ("queries", T.Json.JInt (List.length queries));
            ( "session",
              T.Json.JObj
                [ ("seconds", T.Json.JFloat sess_dt);
                  ("encode_seconds", T.Json.JFloat sess_enc);
                  ("solve_seconds", T.Json.JFloat sess_solve) ] );
            ( "reference",
              T.Json.JObj
                [ ("seconds", T.Json.JFloat ref_dt);
                  ("encode_seconds", T.Json.JFloat ref_enc);
                  ("solve_seconds", T.Json.JFloat ref_solve) ] );
            ("speedup", T.Json.JFloat speedup);
            ("answers_match", T.Json.JBool answers_match) ])
      atpg_cases
  in
  let pool_json =
    T.Json.JObj
      [ ("max_domains", T.Json.JInt (List.fold_left max 1 pool_counts));
        ("atpg", T.Json.JList atpg_rows);
        ("tvla", T.Json.JList tvla_rows);
        ("placement", T.Json.JList place_rows);
        ("granularity", grain_json) ]
  in
  let side name seconds throughput alloc major extra =
    ( name,
      T.Json.JObj
        ([ ("seconds", T.Json.JFloat seconds);
           ("throughput_per_sec", T.Json.JFloat throughput);
           ("allocated_words", T.Json.JFloat alloc);
           ("major_words", T.Json.JFloat major) ]
         @ extra) )
  in
  let comparisons =
    T.Json.JObj
      [ ( "sat_attack",
          T.Json.JObj
            [ ("workload", T.Json.JStr (Printf.sprintf "epic%d_alu4_x%d" key_bits reps));
              ( "gates",
                T.Json.JInt
                  (Netlist.Circuit.node_count attack_locked.Locking.Lock.circuit) );
              ("dips", T.Json.JInt n_dips);
              side "new" n_dt (pps n_dt n_props) n_alloc n_major
                [ ("solve_seconds", T.Json.JFloat n_ss);
                  ("solve_allocated_words", T.Json.JFloat n_sa);
                  ("learnt_db_live", T.Json.JInt n_learnt) ];
              side "reference" r_dt (pps r_dt r_props) r_alloc r_major
                [ ("solve_seconds", T.Json.JFloat r_ss);
                  ("solve_allocated_words", T.Json.JFloat r_sa) ];
              ("speedup", T.Json.JFloat sat_speedup);
              ("alloc_reduction", T.Json.JFloat sat_alloc_reduction);
              ("solve_speedup", T.Json.JFloat solve_speedup);
              ("solve_alloc_reduction", T.Json.JFloat solve_alloc_reduction) ] );
        ( "signal_probabilities",
          T.Json.JObj
            [ ("workload", T.Json.JStr "kogge_stone8");
              ("gates", T.Json.JInt (Netlist.Circuit.node_count sim_circuit));
              ("patterns", T.Json.JInt sim_patterns);
              side "new" sim_n_dt (patps sim_n_dt) sim_n_alloc sim_n_major [];
              side "reference" sim_r_dt (patps sim_r_dt) sim_r_alloc sim_r_major [];
              ("speedup", T.Json.JFloat sim_speedup);
              ("alloc_reduction", T.Json.JFloat sim_alloc_reduction) ] );
        ("atpg_incremental", T.Json.JList atpg_cmp_rows);
        ("sat_session", T.Json.JList sat_session_rows) ]
  in
  let json =
    T.Json.JObj
      [ ("schema", T.Json.JStr "secure_eda_bench_perf/3");
        ("smoke", T.Json.JBool !smoke);
        ("disabled_span_overhead_ns", T.Json.JFloat (Float.max 0.0 overhead_ns));
        ("workloads", T.Json.JList rows);
        ("pool", pool_json);
        ("comparisons", comparisons) ]
  in
  let path = "BENCH_perf.json" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (T.Json.to_string json);
      output_char oc '\n');
  Printf.printf "  written %s\n" path

(* ------------------------------------------------------------------ *)

let sections =
  [ ("table1", table1); ("table2", table2); ("fig1", fig1); ("fig2", fig2);
    ("composition", composition); ("stepfn", stepfn); ("curves", curves); ("ablations", ablations);
    ("micro", micro); ("perf", perf) ]

let () =
  let args =
    match Array.to_list Sys.argv with
    | _ :: rest -> rest
    | [] -> []
  in
  let rec strip = function
    | [] -> []
    | "--smoke" :: rest ->
      smoke := true;
      strip rest
    | ("-j" | "--jobs") :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 1 -> jobs := n
       | Some _ | None -> Printf.eprintf "ignoring bad -j value %s\n" n);
      strip rest
    | a :: rest -> a :: strip rest
  in
  let args = strip args in
  let requested = if args = [] then List.map fst sections else args in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
        Printf.printf "unknown section %s (available: %s)\n" name
          (String.concat " " (List.map fst sections)))
    requested;
  Printf.printf "\nAll requested experiment sections completed.\n"
