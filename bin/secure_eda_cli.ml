(* Command-line front end for the toolkit. Operates on netlists in the
   .bench-style text format (see Netlist.Io).

     secure_eda_cli gen --design alu4 -o alu.bench
     secure_eda_cli stats alu.bench
     secure_eda_cli lint alu.bench
     secure_eda_cli synth alu.bench -o alu_opt.bench
     secure_eda_cli synth alu.bench --recipe secure_synthesis -o masked.bench
     secure_eda_cli synth --list-recipes
     secure_eda_cli lock alu.bench --key-bits 16 -o locked.bench
     secure_eda_cli sat-attack locked.bench --oracle alu.bench --conflicts 50000
     secure_eda_cli atpg alu.bench --conflicts 20000
     secure_eda_cli trojan alu.bench --trigger-width 3
     secure_eda_cli tvla-fig2
     secure_eda_cli table2

   User-reachable failures (unreadable/malformed netlists, unknown design
   or library names) print a one-line diagnostic on stderr and exit
   non-zero; backtraces are reserved for actual bugs. *)

open Cmdliner
module Budget = Eda_util.Budget
module Eda_error = Eda_util.Eda_error
module Telemetry = Eda_util.Telemetry

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("secure_eda_cli: " ^ s); exit 2) fmt

let read_circuit path =
  match Netlist.Io.read_file_result path with
  | Ok c -> c
  | Error e -> die "%s: %s" path (Eda_error.to_string e)

let seed_arg =
  let doc = "PRNG seed (all randomness in the toolkit is seeded)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let output_arg =
  let doc = "Output netlist file." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)

(* Shared resource-budget flags: a conflict cap and/or a wall-clock cap.
   Absent means unlimited (classic behavior). *)
let conflicts_arg =
  let doc = "Abort solver work after this many conflicts (budgeted run)." in
  Arg.(value & opt (some int) None & info [ "conflicts" ] ~doc)

let seconds_arg =
  let doc = "Abort after this many seconds of engine time (budgeted run)." in
  Arg.(value & opt (some float) None & info [ "seconds" ] ~doc)

let budget_of conflicts seconds =
  match conflicts, seconds with
  | None, None -> None
  | steps, seconds -> Some (Budget.create ?steps ?seconds ())

(* Shared parallelism flag: the commands with a pool-aware engine accept
   -j N and run it on a domain pool. The default honours SECURE_EDA_JOBS
   (else 1), so exported CI environments widen every run at once. *)
let jobs_arg =
  let doc =
    "Worker domains for the parallel engines (default: $(b,SECURE_EDA_JOBS) or 1)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let with_jobs jobs f =
  let n = match jobs with Some n -> n | None -> Eda_util.Pool.default_jobs () in
  if n <= 1 then f None
  else Eda_util.Pool.with_pool ~num_domains:n (fun p -> f (Some p))

(* Shared telemetry flag: when present, every span/counter the command's
   engines emit is exported as JSONL, one event per line, readable back
   with [secure_eda_cli report]. *)
let trace_arg =
  let doc = "Export a JSONL telemetry trace of this run to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
    let oc = try open_out path with Sys_error msg -> die "%s: %s" path msg in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (* gc:true — traced CLI runs also record per-span allocation deltas *)
      (fun () -> Telemetry.with_sink ~gc:true (Telemetry.jsonl_sink oc) f)

let pp_solver_stats (s : Sat.Solver.stats) =
  Printf.printf "solver: %d conflicts, %d decisions, %d propagations, %d learnt, %d restarts\n"
    s.Sat.Solver.conflicts s.Sat.Solver.decisions s.Sat.Solver.propagations
    s.Sat.Solver.learnt s.Sat.Solver.restarts

let bits_to_string bits =
  String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list bits))

let write_or_print circuit = function
  | Some path ->
    Netlist.Io.write_file path circuit;
    Printf.printf "written %s (%d gates)\n" path (Netlist.Circuit.stats circuit).Netlist.Circuit.gates
  | None -> print_string (Netlist.Io.to_string circuit)

(* --- gen -------------------------------------------------------------- *)

let designs =
  [ ("c17", fun _ -> Netlist.Generators.c17 ());
    ("adder4", fun _ -> Netlist.Generators.ripple_adder 4);
    ("adder8", fun _ -> Netlist.Generators.ripple_adder 8);
    ("alu4", fun _ -> Netlist.Generators.alu 4);
    ("comparator8", fun _ -> Netlist.Generators.comparator 8);
    ("parity16", fun _ -> Netlist.Generators.parity_tree 16);
    ("aes_sbox", fun _ -> Crypto.Sbox_circuit.aes_sbox ());
    ("aes_round", fun _ -> Crypto.Sbox_circuit.aes_round_datapath ());
    ("present_sbox", fun _ -> Crypto.Sbox_circuit.present_sbox ());
    ("present_round", fun _ -> Crypto.Sbox_circuit.present_round ());
    ("aes_mixcolumn", fun _ -> Crypto.Sbox_circuit.aes_mixcolumn ());
    ("kogge_stone8", fun _ -> Netlist.Generators.kogge_stone_adder 8);
    ("multiplier4", fun _ -> Netlist.Generators.array_multiplier 4);
    ("random", fun seed -> Netlist.Generators.random_dag ~seed ~inputs:8 ~gates:80 ~outputs:4) ]

let gen_cmd =
  let design =
    let doc =
      Printf.sprintf "Design to generate: %s."
        (String.concat ", " (List.map fst designs))
    in
    Arg.(value & opt string "c17" & info [ "design" ] ~doc)
  in
  let run design seed output =
    match List.assoc_opt design designs with
    | Some f -> write_or_print (f seed) output
    | None ->
      die "unknown design %s (available: %s)" design
        (String.concat ", " (List.map fst designs))
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a reference netlist")
    Term.(const run $ design $ seed_arg $ output_arg)

(* --- stats / lint ------------------------------------------------------ *)

let netlist_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"NETLIST" ~doc:"Input netlist file")

let stats_cmd =
  let run path =
    let c = read_circuit path in
    let s = Netlist.Circuit.stats c in
    let timing = Timing.Sta.analyze c in
    Printf.printf "inputs %d  outputs %d  flip-flops %d\n" s.Netlist.Circuit.inputs
      s.Netlist.Circuit.outputs s.Netlist.Circuit.flip_flops;
    Printf.printf "gates %d  area %.1f  critical path %.1f ps (via %s)\n" s.Netlist.Circuit.gates
      s.Netlist.Circuit.area timing.Timing.Sta.critical_path_delay
      timing.Timing.Sta.critical_output;
    List.iter (fun (k, n) -> Printf.printf "  %-8s %d\n" k n) s.Netlist.Circuit.by_kind
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print netlist statistics and timing")
    Term.(const run $ netlist_arg)

let lint_cmd =
  let run path =
    (* Bypass the lint built into read_circuit so every issue, not just
       the first blocking one, gets printed. *)
    let text = try Ok (In_channel.with_open_text path In_channel.input_all)
      with Sys_error msg -> Error msg
    in
    match text with
    | Error msg -> die "%s: %s" path msg
    | Ok text ->
      (match try Ok (Netlist.Io.of_string text) with
       | Netlist.Io.Parse_error msg -> Error msg
       with
       | Error msg -> die "%s: parse error: %s" path msg
       | Ok c ->
         let issues = Netlist.Lint.check c in
         List.iter (fun i -> print_endline (Netlist.Lint.describe i)) issues;
         let errors = List.length (Netlist.Lint.errors c) in
         Printf.printf "%d issue(s), %d error(s)\n" (List.length issues) errors;
         if errors > 0 then exit 1)
  in
  Cmd.v (Cmd.info "lint" ~doc:"Validate a netlist and print every lint issue")
    Term.(const run $ netlist_arg)

(* --- synth ------------------------------------------------------------ *)

let synth_cmd =
  let recipe =
    Arg.(value & opt string "optimize"
         & info [ "recipe" ] ~docv:"NAME" ~doc:"Recipe to run (see $(b,--list-recipes)).")
  in
  let list_recipes =
    Arg.(value & flag
         & info [ "list-recipes" ] ~doc:"List registered recipes and passes, then exit.")
  in
  let print_ir_after =
    Arg.(value & opt (some string) None
         & info [ "print-ir-after" ] ~docv:"PASS"
             ~doc:"Dump the lint-checked intermediate netlist after every execution of PASS.")
  in
  let params =
    Arg.(value & opt_all (pair ~sep:'=' string string) []
         & info [ "param"; "p" ] ~docv:"KEY=VALUE"
             ~doc:"Recipe parameter, repeatable (e.g. $(b,--param shares=3)).")
  in
  let max_passes =
    Arg.(value & opt (some int) None
         & info [ "max-passes" ]
             ~doc:"Stop the recipe after this many pass executions (budgeted run).")
  in
  let secure =
    Arg.(value & flag
         & info [ "secure" ]
             ~doc:"Deprecated alias for $(b,--recipe optimize_secure) (honour gadget order barriers).")
  in
  let list_and_exit () =
    print_endline "recipes:";
    List.iter
      (fun (r : Synth.Pipeline.t) -> Printf.printf "  %-22s %s\n" r.Synth.Pipeline.name r.Synth.Pipeline.doc)
      (Synth.Pipeline.all ());
    print_endline "passes:";
    List.iter
      (fun (p : Synth.Pass.t) -> Printf.printf "  %-22s %s\n" p.Synth.Pass.name p.Synth.Pass.doc)
      (Synth.Pass.all ());
    exit 0
  in
  let run path recipe secure list_recipes params print_ir_after max_passes seconds jobs output trace =
    Sidechannel.Secure_synth.register ();
    if list_recipes then list_and_exit ();
    let recipe =
      if secure then begin
        prerr_endline "secure_eda_cli: --secure is deprecated; use --recipe optimize_secure";
        "optimize_secure"
      end
      else recipe
    in
    let r =
      match Synth.Pipeline.find recipe with
      | Some r -> r
      | None ->
        die "unknown recipe %s (available: %s)" recipe
          (String.concat ", " (Synth.Pipeline.names ()))
    in
    let path = match path with
      | Some p -> p
      | None -> die "a NETLIST argument is required (except with --list-recipes)"
    in
    let c = read_circuit path in
    let observe =
      match print_ir_after with
      | None -> None
      | Some target ->
        let used = Synth.Pipeline.passes_used r in
        if not (List.mem target used) then
          die "--print-ir-after %s: recipe %s only runs: %s" target recipe
            (String.concat ", " used);
        let stem = Filename.remove_extension (Option.value output ~default:path) in
        Some
          (fun ~seq ~pass ir ->
            if pass = target then begin
              (match Netlist.Lint.errors ir with
               | [] -> ()
               | issue :: _ ->
                 die "IR after %s (step %d) fails lint: %s" pass seq (Netlist.Lint.describe issue));
              let file = Printf.sprintf "%s.after-%02d-%s.bench" stem seq pass in
              Netlist.Io.write_file file ir;
              Printf.eprintf "ir: wrote %s\n" file
            end)
    in
    let budget = budget_of max_passes seconds in
    let optimized =
      try
        with_trace trace (fun () ->
            with_jobs jobs (fun pool ->
                Synth.Pipeline.run_recipe ?budget ?pool ?observe ~params recipe c))
      with
      | Synth.Pass.Check_failed { pass; msg } -> die "pass %s failed its check: %s" pass msg
      | Invalid_argument msg -> die "%s" msg
    in
    let before = (Netlist.Circuit.stats c).Netlist.Circuit.gates in
    let after = (Netlist.Circuit.stats optimized).Netlist.Circuit.gates in
    Printf.eprintf "synthesis: %d -> %d gates (recipe %s)\n" before after recipe;
    write_or_print optimized output
  in
  let netlist_opt =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"NETLIST" ~doc:"Input netlist file")
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:"Run a synthesis recipe (classical, security-aware or masking; see --list-recipes)")
    Term.(const run $ netlist_opt $ recipe $ secure $ list_recipes $ params $ print_ir_after
          $ max_passes $ seconds_arg $ jobs_arg $ output_arg $ trace_arg)

(* --- lock / sat-attack ------------------------------------------------ *)

let lock_cmd =
  let key_bits =
    Arg.(value & opt int 16 & info [ "key-bits" ] ~doc:"Number of key gates to insert")
  in
  let run path key_bits seed output =
    let c = read_circuit path in
    let rng = Eda_util.Rng.create seed in
    let locked = Locking.Lock.epic rng ~key_bits c in
    Printf.eprintf "correct key: %s\n" (bits_to_string locked.Locking.Lock.correct_key);
    Printf.eprintf "verification: %s\n"
      (match Locking.Lock.verify_correct locked ~original:c with
       | None -> "locked == original under correct key"
       | Some _ -> "MISMATCH");
    write_or_print locked.Locking.Lock.circuit output
  in
  Cmd.v (Cmd.info "lock" ~doc:"EPIC-lock a netlist (key inputs key0..keyN)")
    Term.(const run $ netlist_arg $ key_bits $ seed_arg $ output_arg)

let sat_attack_cmd =
  let oracle =
    Arg.(required & opt (some file) None & info [ "oracle" ] ~doc:"Original (activated-chip) netlist")
  in
  let max_iterations =
    Arg.(value & opt int 256 & info [ "max-iterations" ] ~doc:"DIP query cap")
  in
  let run locked_path oracle_path max_iterations conflicts seconds jobs trace =
    let locked_circuit = read_circuit locked_path in
    let original = read_circuit oracle_path in
    (* Reconstruct the locked view: key inputs are the key* named ones. *)
    let key_inputs, data_inputs =
      Array.to_list (Netlist.Circuit.inputs locked_circuit)
      |> List.partition (fun id ->
             let nm = Netlist.Circuit.name locked_circuit id in
             String.length nm >= 3 && String.sub nm 0 3 = "key")
    in
    if key_inputs = [] then die "%s: no key inputs (names starting with \"key\")" locked_path;
    let locked =
      { Locking.Lock.circuit = locked_circuit;
        key_inputs = Array.of_list key_inputs;
        data_inputs = Array.of_list data_inputs;
        correct_key = Array.make (List.length key_inputs) false }
    in
    let budget = budget_of conflicts seconds in
    match
      with_trace trace (fun () ->
          with_jobs jobs (fun pool ->
              Locking.Sat_attack.run_checked ~max_iterations ?budget ?pool
                ~oracle:(Locking.Sat_attack.oracle_of_circuit original) locked))
    with
    | Error e -> die "%s: %s" locked_path (Eda_error.to_string e)
    | Ok result ->
      let module A = Locking.Sat_attack in
      Printf.printf "status: %s after %d DIPs\n"
        (A.describe_status result.A.status) result.A.iterations;
      pp_solver_stats result.A.solver_stats;
      (match result.A.key, result.A.status with
       | Some key, A.Converged ->
         Printf.printf "key recovered: %s\n" (bits_to_string key);
         let ok =
           Sat.Cnf.check_equivalence original (Locking.Lock.apply_key locked ~key) = None
         in
         Printf.printf "functionally correct: %b\n" ok
       | Some key, _ ->
         Printf.printf "best-effort key (unproven): %s\n" (bits_to_string key)
       | None, _ -> Printf.printf "no key recovered\n")
  in
  Cmd.v (Cmd.info "sat-attack" ~doc:"Oracle-guided SAT attack on a locked netlist")
    Term.(
      const run $ netlist_arg $ oracle $ max_iterations $ conflicts_arg $ seconds_arg
      $ jobs_arg $ trace_arg)

(* --- atpg ------------------------------------------------------------- *)

let atpg_cmd =
  let patterns_flag =
    Arg.(value & flag & info [ "patterns" ] ~doc:"Print the generated patterns")
  in
  let run path conflicts seconds jobs print_patterns trace =
    let c = read_circuit path in
    let budget = budget_of conflicts seconds in
    match
      with_trace trace (fun () ->
          with_jobs jobs (fun pool -> Dft.Atpg.run_checked ?budget ?pool c))
    with
    | Error e -> die "%s: %s" path (Eda_error.to_string e)
    | Ok r ->
      Printf.printf "patterns %d, stuck-at coverage %.1f%%, untestable faults %d\n"
        (List.length r.Dft.Atpg.patterns) (100.0 *. r.Dft.Atpg.coverage)
        (List.length r.Dft.Atpg.untestable);
      (match r.Dft.Atpg.exhausted with
       | Some e ->
         Printf.printf "budget exhausted (%s): %d/%d faults unprocessed; coverage is partial\n"
           (Budget.describe_exhaustion e) r.Dft.Atpg.faults_remaining r.Dft.Atpg.faults_total
       | None -> ());
      pp_solver_stats r.Dft.Atpg.solver_stats;
      if print_patterns then
        List.iteri
          (fun k p -> Printf.printf "  pat%-3d %s\n" k (bits_to_string p))
          r.Dft.Atpg.patterns
  in
  Cmd.v (Cmd.info "atpg" ~doc:"SAT-based test pattern generation (stuck-at)")
    Term.(
      const run $ netlist_arg $ conflicts_arg $ seconds_arg $ jobs_arg $ patterns_flag
      $ trace_arg)

(* --- trojan ------------------------------------------------------------ *)

let trojan_cmd =
  let width = Arg.(value & opt int 3 & info [ "trigger-width" ] ~doc:"Trigger conditions") in
  let run path width seed output =
    let c = read_circuit path in
    let rng = Eda_util.Rng.create seed in
    let troj = Trojan.Insert.insert rng ~trigger_width:width ~patterns:4096 c in
    Printf.eprintf "trigger probability: %.5f; victim output: %d\n"
      (Trojan.Insert.trigger_probability rng troj ~patterns:50000)
      troj.Trojan.Insert.victim_output;
    write_or_print troj.Trojan.Insert.infected output
  in
  Cmd.v (Cmd.info "trojan" ~doc:"Insert a rare-trigger Trojan (for detection research)")
    Term.(const run $ netlist_arg $ width $ seed_arg $ output_arg)

(* --- techmap / redundancy / watermark ----------------------------------- *)

let techmap_cmd =
  let target =
    let doc = "Target library: nand-inv or camo (NAND/NOR/XNOR)." in
    Arg.(value & opt string "nand-inv" & info [ "target" ] ~doc)
  in
  let run path target output =
    let c = read_circuit path in
    let target_t =
      match target with
      | "nand-inv" -> Synth.Techmap.Nand_inv
      | "camo" -> Synth.Techmap.Nand_nor_xnor
      | other -> die "unknown target %s (available: nand-inv, camo)" other
    in
    let mapped = Synth.Pass.apply ~params:[ ("target", target) ] "techmap" c in
    Printf.eprintf "mapped: area %.1f -> %.1f, conforms = %b\n"
      (Netlist.Circuit.stats c).Netlist.Circuit.area
      (Netlist.Circuit.stats mapped).Netlist.Circuit.area
      (Synth.Techmap.conforms target_t mapped);
    write_or_print mapped output
  in
  Cmd.v (Cmd.info "techmap" ~doc:"Map a netlist to a restricted cell library")
    Term.(const run $ netlist_arg $ target $ output_arg)

let redundancy_cmd =
  let run path output =
    let c = read_circuit path in
    let cleaned = Dft.Atpg.remove_redundancy c in
    Printf.eprintf "redundancy removal: %d -> %d gates\n"
      (Netlist.Circuit.stats c).Netlist.Circuit.gates
      (Netlist.Circuit.stats cleaned).Netlist.Circuit.gates;
    write_or_print cleaned output
  in
  Cmd.v (Cmd.info "redundancy" ~doc:"Remove ATPG-untestable (redundant) logic")
    Term.(const run $ netlist_arg $ output_arg)

let watermark_cmd =
  let bits = Arg.(value & opt int 16 & info [ "bits" ] ~doc:"Signature width") in
  let run path bits seed output =
    let c = read_circuit path in
    let rng = Eda_util.Rng.create seed in
    let mark = Locking.Watermark.embed_functional rng ~bits c in
    Printf.eprintf "embedded %d-bit functional watermark (false-claim p = %.2e)\n" bits
      (Locking.Watermark.false_claim_probability ~bits);
    Printf.eprintf "self-verification: %d/%d bits\n"
      (Locking.Watermark.verify_functional mark mark.Locking.Watermark.f_circuit)
      bits;
    write_or_print mark.Locking.Watermark.f_circuit output
  in
  Cmd.v (Cmd.info "watermark" ~doc:"Embed a functional (resynthesis-proof) watermark")
    Term.(const run $ netlist_arg $ bits $ seed_arg $ output_arg)

(* --- tvla-fig2 / table2 / flow ----------------------------------------- *)

let tvla_fig2_cmd =
  let traces = Arg.(value & opt int 4000 & info [ "traces" ] ~doc:"Traces per class") in
  let run seed traces jobs trace =
    let rng = Eda_util.Rng.create seed in
    let module L = Sidechannel.Leakage in
    let aware = L.synthesize_masked L.Security_aware in
    let unaware = L.synthesize_masked L.Security_unaware in
    (* The seeded campaign gives the same max|t| at any -j value. *)
    let ra, ru =
      with_trace trace (fun () ->
          with_jobs jobs (fun pool ->
              ( L.tvla_campaign_seeded ?pool rng aware ~traces_per_class:traces
                  ~noise_sigma:0.3,
                L.tvla_campaign_seeded ?pool rng unaware ~traces_per_class:traces
                  ~noise_sigma:0.3 )))
    in
    Printf.printf "security-aware  : max|t| = %.2f (%s)\n" ra.Sidechannel.Tvla.max_abs_t
      (if Sidechannel.Tvla.leaks ra then "LEAKS" else "passes");
    Printf.printf "security-unaware: max|t| = %.2f (%s)\n" ru.Sidechannel.Tvla.max_abs_t
      (if Sidechannel.Tvla.leaks ru then "LEAKS" else "passes")
  in
  Cmd.v (Cmd.info "tvla-fig2" ~doc:"Reproduce the paper's Fig. 2 TVLA contrast")
    Term.(const run $ seed_arg $ traces $ jobs_arg $ trace_arg)

let table2_cmd =
  let run seed =
    let rng = Eda_util.Rng.create seed in
    List.iter
      (fun cell ->
        let module R = Secure_eda.Scheme_registry in
        Printf.printf "%-26s | %-26s | %s\n"
          (R.stage_name cell.R.stage)
          (Secure_eda.Threat_model.name cell.R.threat)
          (cell.R.run rng))
      Secure_eda.Scheme_registry.table
  in
  Cmd.v (Cmd.info "table2" ~doc:"Run every Table II scheme on its reference workload")
    Term.(const run $ seed_arg)

let flow_cmd =
  let checkpoint_arg =
    let doc =
      "Persist the flow checkpoint to $(docv) after every completed stage (atomic \
       write); if $(docv) already holds a valid checkpoint, resume from it."
    in
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let run path seed conflicts seconds jobs checkpoint trace =
    let c = read_circuit path in
    let rng = Eda_util.Rng.create seed in
    let budget = budget_of conflicts seconds in
    let resume =
      match checkpoint with
      | Some file when Sys.file_exists file ->
        (match Secure_eda.Flow.load_checkpoint file with
         | Ok cp ->
           Printf.eprintf "resuming: %d stage(s) already done\n"
             (List.length cp.Secure_eda.Flow.done_stages);
           Some cp
         | Error e -> die "%s: %s" file (Eda_error.to_string e))
      | _ -> None
    in
    match
      with_trace trace (fun () ->
          with_jobs jobs (fun pool ->
              Secure_eda.Flow.run rng ?budget ?pool ?resume ?checkpoint_to:checkpoint c))
    with
    | Error e -> die "%s: %s" path (Eda_error.to_string e)
    | Ok report ->
      List.iter
        (fun sr ->
          Printf.printf "%-28s area %8.1f  delay %8.1f ps  %s%s\n"
            (Secure_eda.Flow.stage_name sr.Secure_eda.Flow.stage)
            sr.Secure_eda.Flow.area sr.Secure_eda.Flow.delay_ps sr.Secure_eda.Flow.note
            (match sr.Secure_eda.Flow.degraded with
             | Some why -> "  [degraded: " ^ why ^ "]"
             | None -> ""))
        report.Secure_eda.Flow.stages;
      if report.Secure_eda.Flow.degraded_stages > 0 then
        Printf.printf "%d stage(s) degraded\n" report.Secure_eda.Flow.degraded_stages
  in
  Cmd.v (Cmd.info "flow" ~doc:"Run the budgeted EDA flow (Fig. 1) with degradation notes")
    Term.(
      const run $ netlist_arg $ seed_arg $ conflicts_arg $ seconds_arg $ jobs_arg
      $ checkpoint_arg $ trace_arg)

(* --- jobs -------------------------------------------------------------- *)

(* Batch driver over the supervised job engine: a jobs file names one
   engine invocation per line, the supervisor runs them with retries,
   backoff, load shedding and quarantine, and the exit status reflects
   whether anything ended permanently failed. *)

let job_engines = [ "lint"; "synth"; "atpg"; "flow" ]

let job_work ~engine ~input ~seed ~name ~checkpoint_dir =
  let ( let* ) = Eda_error.( let* ) in
  let parse () = Netlist.Io.read_file_result input in
  match engine with
  | "lint" ->
    fun (_ : Budget.t) ->
      let* c = parse () in
      Ok (Printf.sprintf "clean (%d gates)" (Netlist.Circuit.stats c).Netlist.Circuit.gates)
  | "synth" ->
    fun (_ : Budget.t) ->
      let* c = parse () in
      let* optimized = Eda_error.guard ~engine:"synth" (fun () -> Synth.Flow.optimize c) in
      Ok
        (Printf.sprintf "%d -> %d gates"
           (Netlist.Circuit.stats c).Netlist.Circuit.gates
           (Netlist.Circuit.stats optimized).Netlist.Circuit.gates)
  | "atpg" ->
    fun budget ->
      let* c = parse () in
      let* r = Dft.Atpg.run_checked ~budget c in
      (match r.Dft.Atpg.exhausted with
       | Some reason when r.Dft.Atpg.coverage = 0.0 ->
         (* Nothing useful came out of the slice: report it as exhaustion
            so the supervisor retries with a fresh attempt budget. *)
         Error
           (Eda_error.Budget_exhausted
              { engine = "atpg";
                reason;
                progress =
                  Printf.sprintf "0/%d faults covered" r.Dft.Atpg.faults_total })
       | _ ->
         Ok
           (Printf.sprintf "coverage %.1f%%%s" (100.0 *. r.Dft.Atpg.coverage)
              (if r.Dft.Atpg.exhausted <> None then " (partial)" else "")))
  | "flow" ->
    let ckpt = Option.map (fun dir -> Filename.concat dir (name ^ ".json")) checkpoint_dir in
    fun budget ->
      let* c = parse () in
      let* resume =
        match ckpt with
        | Some file when Sys.file_exists file ->
          let* cp = Secure_eda.Flow.load_checkpoint file in
          Ok (Some cp)
        | _ -> Ok None
      in
      (* A fresh rng per attempt: retries replay the same schedule. *)
      let rng = Eda_util.Rng.create seed in
      let* report = Secure_eda.Flow.run rng ~budget ?resume ?checkpoint_to:ckpt c in
      Ok
        (Printf.sprintf "%d stage(s), %d degraded%s"
           (List.length report.Secure_eda.Flow.stages)
           report.Secure_eda.Flow.degraded_stages
           (match resume with
            | Some cp ->
              Printf.sprintf " (resumed past %d)"
                (List.length cp.Secure_eda.Flow.done_stages)
            | None -> ""))
  | other ->
    fun (_ : Budget.t) ->
      Error
        (Eda_error.Invalid_input
           { what = "job engine";
             msg =
               Printf.sprintf "%s (available: %s)" other (String.concat ", " job_engines) })

(* Jobs file: one job per line, [name engine netlist]; blank lines and
   [#] comments are skipped. *)
let parse_jobs_file path ~policy ~seed ~checkpoint_dir =
  let text =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error msg -> die "%s: %s" path msg
  in
  String.split_on_char '\n' text
  |> List.mapi (fun lineno line -> (lineno + 1, String.trim line))
  |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  |> List.map (fun (lineno, line) ->
         match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
         | [ name; engine; input ] ->
           Service.Job.create ~klass:engine ~policy ~name
             (job_work ~engine ~input ~seed ~name ~checkpoint_dir)
         | _ ->
           die "%s:%d: expected \"name engine netlist\", got %S" path lineno line)

let jobs_cmd =
  let jobs_file =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"JOBFILE"
          ~doc:"Jobs file: one $(b,name engine netlist) triple per line (engines: \
                lint, synth, atpg, flow); $(b,#) starts a comment.")
  in
  let retries_arg =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retries per job after the first attempt (transient failures only).")
  in
  let job_seconds_arg =
    Arg.(
      value & opt (some float) None
      & info [ "job-seconds" ] ~docv:"S" ~doc:"Wall-clock allowance per attempt.")
  in
  let job_conflicts_arg =
    Arg.(
      value & opt (some int) None
      & info [ "job-conflicts" ] ~docv:"N" ~doc:"Step allowance per attempt.")
  in
  let queue_depth_arg =
    Arg.(
      value & opt (some int) None
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Admission cap: jobs beyond the first $(docv) are shed up front.")
  in
  let quarantine_arg =
    Arg.(
      value & opt int 3
      & info [ "quarantine-after" ] ~docv:"N"
          ~doc:"Consecutive failures that quarantine a job class.")
  in
  let checkpoint_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:"Flow jobs checkpoint to $(docv)/$(i,name).json after every stage and \
                resume from it when present.")
  in
  let run jobs_file retries job_conflicts job_seconds conflicts seconds queue_depth
      quarantine_after checkpoint_dir seed jobs trace =
    (match checkpoint_dir with
     | Some dir when not (Sys.file_exists dir) ->
       (try Sys.mkdir dir 0o755 with Sys_error msg -> die "%s: %s" dir msg)
     | _ -> ());
    let policy =
      { Service.Job.default_policy with
        Service.Job.max_retries = max 0 retries;
        attempt_steps = job_conflicts;
        attempt_seconds = job_seconds }
    in
    let job_list = parse_jobs_file jobs_file ~policy ~seed ~checkpoint_dir in
    let budget = budget_of conflicts seconds in
    let config =
      { Service.Supervisor.default_config with
        Service.Supervisor.max_queue_depth = queue_depth;
        quarantine_after }
    in
    let rng = Eda_util.Rng.create seed in
    let report =
      with_trace trace (fun () ->
          with_jobs jobs (fun pool ->
              Service.Supervisor.run ?pool ?budget ~config rng job_list))
    in
    List.iter
      (fun o ->
        let module S = Service.Supervisor in
        Printf.printf "%-20s %-8s %s%s\n" o.S.job.Service.Job.name
          (S.state_code o.S.state)
          (S.describe_state o.S.state)
          (if o.S.attempts > 1 then Printf.sprintf "  [%d attempts]" o.S.attempts else ""))
      report.Service.Supervisor.outcomes;
    let module S = Service.Supervisor in
    Printf.printf "jobs: %d ok, %d failed, %d shed, %d quarantined (%d retries, %d waves)\n"
      report.S.succeeded report.S.failed report.S.shed report.S.quarantined
      report.S.retries report.S.waves;
    if S.permanently_failed report > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "jobs"
       ~doc:
         "Run a batch of engine jobs under the supervisor: crash isolation, retries \
          with backoff, load shedding, quarantine; exits non-zero iff a job ends \
          permanently failed")
    Term.(
      const run $ jobs_file $ retries_arg $ job_conflicts_arg $ job_seconds_arg
      $ conflicts_arg $ seconds_arg $ queue_depth_arg $ quarantine_arg
      $ checkpoint_dir_arg $ seed_arg $ jobs_arg $ trace_arg)

(* --- report ------------------------------------------------------------ *)

let report_cmd =
  let module Trace = Telemetry.Trace in
  let trace_file =
    Arg.(
      required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"JSONL trace file")
  in
  let flame_arg =
    let doc = "Print folded stacks (path;to;span <self µs>) instead of the profile." in
    Arg.(value & flag & info [ "flame" ] ~doc)
  in
  let critical_arg =
    let doc = "Print the critical path through the span tree instead of the profile." in
    Arg.(value & flag & info [ "critical-path" ] ~doc)
  in
  let diff_arg =
    let doc =
      "Diff $(docv) (baseline) against TRACE: per-span duration totals, counter \
       totals and final gauges. Exits 1 when any metric regresses past --threshold."
    in
    Arg.(value & opt (some file) None & info [ "diff" ] ~docv:"BASE" ~doc)
  in
  let threshold_arg =
    let doc = "Relative tolerance for --diff verdicts (0.25 = 25%)." in
    Arg.(value & opt float 0.25 & info [ "threshold" ] ~docv:"FRAC" ~doc)
  in
  let min_duration_arg =
    let doc =
      "Ignore span metrics whose larger duration total is below $(docv) seconds in \
       --diff (filters microsecond jitter)."
    in
    Arg.(value & opt float 0.0 & info [ "min-duration" ] ~docv:"SECONDS" ~doc)
  in
  let load path =
    match Trace.of_file path with
    | Error msg -> die "%s: malformed trace: %s" path msg
    | Ok trace -> trace
  in
  let run path flame critical diff threshold min_duration =
    let trace = load path in
    match diff with
    | Some base_path ->
      let base = load base_path in
      let d = Trace.diff_traces ~threshold ~min_duration ~base trace in
      Format.printf "%a@." Trace.pp_diff d;
      if d.Trace.regressions > 0 then exit 1
    | None ->
      if flame then Format.printf "%a@?" Trace.pp_flame trace
      else if critical then Format.printf "%a@." Trace.pp_critical_path trace
      else
        Format.printf "%a%a@." Trace.pp_profile trace Trace.pp_domains trace
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Profile a JSONL telemetry trace (span tree, wall time, counters, per-domain \
          busy time); --flame for folded stacks, --critical-path for the longest \
          chain, --diff BASE for a regression gate (exit 1 past --threshold)")
    Term.(
      const run $ trace_file $ flame_arg $ critical_arg $ diff_arg $ threshold_arg
      $ min_duration_arg)

let () =
  let doc = "security-centric EDA toolkit (DATE 2020 reproduction)" in
  let info = Cmd.info "secure_eda_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ gen_cmd; stats_cmd; lint_cmd; synth_cmd; lock_cmd; sat_attack_cmd; atpg_cmd;
            trojan_cmd; techmap_cmd; redundancy_cmd; watermark_cmd;
            tvla_fig2_cmd; table2_cmd; flow_cmd; jobs_cmd; report_cmd ]))
