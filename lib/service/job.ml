(** A job: one engine invocation as data — name, class, retry/budget
    policy, and the work itself. See the interface for the contract. *)

module Budget = Eda_util.Budget
module Eda_error = Eda_util.Eda_error

type policy = {
  max_retries : int;
  backoff_base_s : float;
  backoff_max_s : float;
  jitter : float;
  attempt_steps : int option;
  attempt_seconds : float option;
}

let default_policy =
  { max_retries = 2;
    backoff_base_s = 0.05;
    backoff_max_s = 5.0;
    jitter = 0.25;
    attempt_steps = None;
    attempt_seconds = None }

type t = {
  name : string;
  klass : string;
  policy : policy;
  work : Budget.t -> (string, Eda_error.t) result;
}

let create ?(klass = "default") ?(policy = default_policy) ~name work =
  { name; klass; policy; work }
