(** The supervised job engine. See the interface for the design; the
    implementation notes that matter:

    - waves are the determinism boundary: which jobs run concurrently
      is decided on the caller's domain before any task starts, and all
      classification / retry / quarantine / shed bookkeeping happens on
      the caller's domain after the join, in job-index order — so the
      terminal states and backoff schedules of deterministic jobs are
      bit-identical at any domain count;
    - the admission budget is only ever read during a wave (the pool
      polls it for exhaustion) and only ever charged between waves, on
      the caller, with the steps each attempt consumed — worker domains
      never mutate it;
    - per-attempt budgets are detached {!Budget.t}s whose step allowance
      is frozen before the wave (policy cap ∩ admission remainder), so
      an attempt's allowance cannot depend on what ran concurrently. *)

module Budget = Eda_util.Budget
module Eda_error = Eda_util.Eda_error
module Pool = Eda_util.Pool
module Rng = Eda_util.Rng
module T = Eda_util.Telemetry

type severity = Transient | Permanent

let classify = function
  | Eda_error.Parse_error _ | Eda_error.Lint_error _ | Eda_error.Invalid_input _ ->
    Permanent
  | Eda_error.Budget_exhausted _ | Eda_error.Engine_failure _ -> Transient

let severity_name = function Transient -> "transient" | Permanent -> "permanent"

type shed_reason =
  | Queue_depth of { limit : int }
  | Admission_exhausted of Budget.exhaustion
  | Admission_low of { remaining_fraction : float; threshold : float }

type state =
  | Done of string
  | Failed of { error : Eda_error.t; severity : severity; attempts : int }
  | Shed of shed_reason
  | Quarantined of { klass : string; strikes : int }

let state_code = function
  | Done _ -> "done"
  | Failed _ -> "failed"
  | Shed _ -> "shed"
  | Quarantined _ -> "quarantined"

let describe_shed = function
  | Queue_depth { limit } -> Printf.sprintf "queue depth over %d at admission" limit
  | Admission_exhausted e ->
    Printf.sprintf "admission budget: %s" (Budget.describe_exhaustion e)
  | Admission_low { remaining_fraction; threshold } ->
    Printf.sprintf "admission budget low: %.1f%% left (< %.1f%%)"
      (100.0 *. remaining_fraction) (100.0 *. threshold)

let describe_state = function
  | Done note -> "done: " ^ note
  | Failed { error; severity; attempts } ->
    Printf.sprintf "failed (%s, %d attempt%s): %s" (severity_name severity) attempts
      (if attempts = 1 then "" else "s")
      (Eda_error.to_string error)
  | Shed reason -> "shed: " ^ describe_shed reason
  | Quarantined { klass; strikes } ->
    Printf.sprintf "quarantined: class %S after %d consecutive failures" klass strikes

type outcome = {
  job : Job.t;
  state : state;
  attempts : int;
  backoffs : float list;
}

type report = {
  outcomes : outcome list;
  succeeded : int;
  failed : int;
  shed : int;
  quarantined : int;
  retries : int;
  waves : int;
}

let permanently_failed r = r.failed

let fingerprint r =
  String.concat "\n"
    (List.map
       (fun o ->
         Printf.sprintf "%s|%s|%s|%d|%s" o.job.Job.name o.job.Job.klass
           (describe_state o.state) o.attempts
           (String.concat ","
              (List.map (fun d -> Printf.sprintf "%.6f" d) o.backoffs)))
       r.outcomes)

type config = {
  wave_size : int;
  max_queue_depth : int option;
  shed_below_fraction : float;
  quarantine_after : int;
  sleep : float -> unit;
}

let default_config =
  { wave_size = 8;
    max_queue_depth = None;
    shed_below_fraction = 0.0;
    quarantine_after = 3;
    sleep = (fun s -> if s > 0.0 then Unix.sleepf (Float.min s 30.0)) }

(* Combine the per-attempt policy cap with what remains of the admission
   allowance — frozen before a wave dispatches. *)
let effective_steps policy admission_remaining =
  match policy.Job.attempt_steps, admission_remaining with
  | None, r -> Option.map (fun n -> max 0 n) r
  | Some s, None -> Some s
  | Some s, Some r -> Some (min s (max 0 r))

let run ?pool ?budget ?(config = default_config) rng jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let admission = match budget with Some b -> b | None -> Budget.unlimited () in
  let quarantine_after = max 1 config.quarantine_after in
  let wave_size = max 1 config.wave_size in
  (* Per-job jitter streams: job i draws from stream i, on the caller,
     so the backoff schedule is a pure function of the seed and the
     failure pattern. *)
  let rngs = Rng.split rng n in
  let states : state option array = Array.make n None in
  let attempts = Array.make n 0 in
  let backoffs : float list array = Array.make n [] in  (* reversed *)
  let strikes : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let quarantined_classes : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let waves = ref 0 in
  let strike_count klass = Option.value ~default:0 (Hashtbl.find_opt strikes klass) in
  let terminal i st =
    states.(i) <- Some st;
    (match st with
     | Done _ -> T.count "job.done" 1
     | Failed _ -> T.count "job.failed" 1
     | Shed _ -> T.count "job.shed" 1
     | Quarantined _ -> T.count "job.quarantined" 1);
    T.note "job.terminal"
      ~attrs:
        [ ("job", T.Str jobs.(i).Job.name);
          ("class", T.Str jobs.(i).Job.klass);
          ("state", T.Str (state_code st));
          ("attempts", T.Int attempts.(i));
          ("detail", T.Str (describe_state st)) ]
  in
  let strike i =
    let klass = jobs.(i).Job.klass in
    let s = strike_count klass + 1 in
    Hashtbl.replace strikes klass s;
    if s >= quarantine_after then Hashtbl.replace quarantined_classes klass ()
  in
  let pending () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if states.(i) = None then acc := i :: !acc
    done;
    !acc
  in
  (* Admission-time queue-depth shedding: the queue never accepts more
     than [max_queue_depth] jobs; the overflow is refused up front with
     a structured state rather than silently dropped. *)
  (match config.max_queue_depth with
   | Some limit when n > limit ->
     for i = limit to n - 1 do
       terminal i (Shed (Queue_depth { limit }))
     done
   | _ -> ());
  (* One attempt for every ready job; [None] marks attempts skipped by
     mid-wave admission exhaustion. Runs on the pool when given —
     crashes are isolated per task by [parallel_try_map] — else inline
     with the same isolation. *)
  let execute (ready : int array) =
    let remaining = Budget.remaining_steps admission in
    let attempt_budget_args i =
      let job = jobs.(i) in
      (effective_steps job.Job.policy remaining, job.Job.policy.Job.attempt_seconds)
    in
    let span_attrs i =
      [ ("job", T.Str jobs.(i).Job.name);
        ("class", T.Str jobs.(i).Job.klass);
        ("attempt", T.Int (attempts.(i) + 1)) ]
    in
    match pool with
    | Some p ->
      Pool.parallel_try_map ~budget:admission ~label:"service.wave" p
        ~f:(fun ctx i ->
          let steps, seconds = attempt_budget_args i in
          let b = ctx.Pool.task_budget ?steps ?seconds () in
          (* A raising [work] escapes this span (ending it with an error
             attribute) and is caught by [parallel_try_map]; siblings
             keep running. *)
          let res = T.with_span "job.attempt" ~attrs:(span_attrs i) (fun () ->
              jobs.(i).Job.work b)
          in
          (res, Budget.consumed_steps b))
        ready
      |> Array.map (function
           | None -> None
           | Some (Ok (res, used)) -> Some (res, used)
           | Some (Error exn) ->
             (* Crash isolated: the attempt becomes a classified engine
                failure; consumed steps are unknowable, charge nothing. *)
             Some
               ( Error
                   (Eda_error.Engine_failure
                      { engine = "job"; msg = Printexc.to_string exn }),
                 0 ))
    | None ->
      Array.map
        (fun i ->
          if Budget.exhausted admission then None
          else begin
            let steps, seconds = attempt_budget_args i in
            let b = Budget.create ~clock:Unix.gettimeofday ?steps ?seconds () in
            let res =
              T.with_span "job.attempt" ~attrs:(span_attrs i) (fun () ->
                  match jobs.(i).Job.work b with
                  | r -> r
                  | exception exn ->
                    Error
                      (Eda_error.Engine_failure
                         { engine = "job"; msg = Printexc.to_string exn }))
            in
            Some (res, Budget.consumed_steps b)
          end)
        ready
  in
  let shed_all_pending reason =
    List.iter (fun i -> terminal i (Shed reason)) (pending ())
  in
  T.with_span "service.run" ~attrs:[ ("jobs", T.Int n) ] (fun () ->
      let rec wave_loop () =
        match pending () with
        | [] -> ()
        | pend ->
          incr waves;
          T.gauge "service.queue_depth" (Float.of_int (List.length pend));
          (* Load shedding on admission-budget pressure, checked between
             waves (the budget is stable within one). *)
          (match Budget.status admission with
           | Some e -> shed_all_pending (Admission_exhausted e)
           | None ->
             (match Budget.remaining_fraction admission with
              | Some f when f < config.shed_below_fraction ->
                shed_all_pending
                  (Admission_low
                     { remaining_fraction = f; threshold = config.shed_below_fraction })
              | _ ->
                (* Circuit breaker: a class that has struck out is
                   refused before dispatch, in job order. *)
                List.iter
                  (fun i ->
                    let klass = jobs.(i).Job.klass in
                    if Hashtbl.mem quarantined_classes klass then
                      terminal i
                        (Quarantined { klass; strikes = strike_count klass }))
                  pend;
                let ready =
                  pending () |> List.filteri (fun k _ -> k < wave_size)
                  |> Array.of_list
                in
                if Array.length ready > 0 then begin
                  let results =
                    T.with_span "service.wave"
                      ~attrs:
                        [ ("wave", T.Int !waves);
                          ("dispatched", T.Int (Array.length ready)) ]
                      (fun () -> execute ready)
                  in
                  (* Classification, retry scheduling and admission
                     charging: caller's domain, job-index order. *)
                  let max_delay = ref 0.0 in
                  Array.iteri
                    (fun k result ->
                      let i = ready.(k) in
                      match result with
                      | None -> ()  (* skipped: next wave's admission check decides *)
                      | Some (res, used) ->
                        attempts.(i) <- attempts.(i) + 1;
                        Budget.tick ~cost:used admission;
                        (match res with
                         | Ok note ->
                           Hashtbl.replace strikes jobs.(i).Job.klass 0;
                           terminal i (Done note)
                         | Error error ->
                           let severity = classify error in
                           let policy = jobs.(i).Job.policy in
                           let retries_done = attempts.(i) - 1 in
                           if
                             severity = Permanent
                             || retries_done >= policy.Job.max_retries
                           then begin
                             terminal i
                               (Failed { error; severity; attempts = attempts.(i) });
                             strike i
                           end
                           else begin
                             (* Deterministic exponential backoff with
                                per-job jitter. *)
                             let expo =
                               policy.Job.backoff_base_s
                               *. (2.0 ** Float.of_int retries_done)
                             in
                             let capped = Float.min policy.Job.backoff_max_s expo in
                             let delay =
                               capped
                               *. (1.0 +. (policy.Job.jitter *. Rng.float rngs.(i)))
                             in
                             backoffs.(i) <- delay :: backoffs.(i);
                             if delay > !max_delay then max_delay := delay;
                             T.count "job.retries" 1
                           end))
                    results;
                  if !max_delay > 0.0 then config.sleep !max_delay
                end));
          wave_loop ()
      in
      wave_loop ();
      let outcomes =
        List.init n (fun i ->
            { job = jobs.(i);
              state =
                (match states.(i) with
                 | Some st -> st
                 | None ->
                   (* Unreachable: the wave loop only exits on an empty
                      pending list. Refuse to lie if it ever regresses. *)
                   Failed
                     { error =
                         Eda_error.Engine_failure
                           { engine = "supervisor"; msg = "job never reached a terminal state" };
                       severity = Permanent;
                       attempts = attempts.(i) });
              attempts = attempts.(i);
              backoffs = List.rev backoffs.(i) })
      in
      let count p = List.length (List.filter p outcomes) in
      let report =
        { outcomes;
          succeeded = count (fun o -> match o.state with Done _ -> true | _ -> false);
          failed = count (fun o -> match o.state with Failed _ -> true | _ -> false);
          shed = count (fun o -> match o.state with Shed _ -> true | _ -> false);
          quarantined =
            count (fun o -> match o.state with Quarantined _ -> true | _ -> false);
          retries =
            List.fold_left (fun acc o -> acc + max 0 (o.attempts - 1)) 0 outcomes;
          waves = !waves }
      in
      T.note "service.report"
        ~attrs:
          [ ("succeeded", T.Int report.succeeded);
            ("failed", T.Int report.failed);
            ("shed", T.Int report.shed);
            ("quarantined", T.Int report.quarantined);
            ("retries", T.Int report.retries);
            ("waves", T.Int report.waves) ];
      report)
