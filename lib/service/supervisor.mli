(** The supervised job engine: every engine invocation a {!Job.t},
    dispatched in deterministic waves with per-attempt budgets carved
    from a global admission budget, failures classified and contained.

    The supervisor's one promise: {!run} never raises, and every
    submitted job ends in exactly one structured terminal {!state} —

    - [Done] — the work concluded with a note;
    - [Failed] — the work kept refusing: a permanent error fails on the
      first attempt, a transient one only after the policy's retries
      (with exponential backoff and per-job jitter) are spent;
    - [Shed] — the supervisor refused to run it at all: the queue was
      over its depth limit at admission, or the admission budget ran
      out (or crossed the low-water fraction) before its wave;
    - [Quarantined] — the circuit breaker: once a class accumulates
      [quarantine_after] consecutive failures, its remaining jobs are
      refused without dispatch (a success resets the class's count).

    {2 Failure taxonomy}

    Classification keys off the {!Eda_util.Eda_error.t} constructor:
    [Parse_error], [Lint_error] and [Invalid_input] are [Permanent] —
    the input is wrong and retrying cannot fix it; [Budget_exhausted]
    and [Engine_failure] are [Transient] — a bigger slice or a rerun
    may succeed. A raised exception is contained (on a pool, by
    {!Eda_util.Pool.parallel_try_map}'s per-task isolation), converted
    to [Engine_failure], and classified like any other transient error.

    {2 Determinism}

    Results are bit-identical across pool sizes (1, 2, 8 domains):
    waves have a fixed size independent of the domain count, all
    classification / retry / quarantine / shed decisions happen on the
    caller's domain in job-index order between waves, the admission
    budget is charged only there (crashed attempts charge zero), and
    each job's backoff jitter comes from its own {!Eda_util.Rng.split}
    stream. Wall-clock sleeps ([config.sleep]) and per-attempt deadline
    checks are the only nondeterministic inputs; with step budgets and
    [sleep = ignore] a run is a pure function of seed and inputs —
    {!fingerprint} is the bit-identity probe tests compare. *)

type severity = Transient | Permanent

(** Map a structured error to whether retrying could help. *)
val classify : Eda_util.Eda_error.t -> severity

val severity_name : severity -> string

type shed_reason =
  | Queue_depth of { limit : int }
  | Admission_exhausted of Eda_util.Budget.exhaustion
  | Admission_low of { remaining_fraction : float; threshold : float }

type state =
  | Done of string
  | Failed of { error : Eda_util.Eda_error.t; severity : severity; attempts : int }
  | Shed of shed_reason
  | Quarantined of { klass : string; strikes : int }

(** ["done" | "failed" | "shed" | "quarantined"] — stable machine key. *)
val state_code : state -> string

val describe_state : state -> string

type outcome = {
  job : Job.t;
  state : state;
  attempts : int;  (** dispatched attempts; 0 for shed/quarantined jobs *)
  backoffs : float list;  (** the waits scheduled before each retry, in order *)
}

type report = {
  outcomes : outcome list;  (** submission order *)
  succeeded : int;
  failed : int;
  shed : int;
  quarantined : int;
  retries : int;
  waves : int;
}

(** Jobs that ended [Failed] — the CLI's exit-status criterion. *)
val permanently_failed : report -> int

(** One line per job — name, class, terminal state, attempts, backoff
    schedule — for bit-identity comparison across pool sizes. *)
val fingerprint : report -> string

type config = {
  wave_size : int;
      (** jobs dispatched per wave — fixed, NOT the domain count, so
          outcomes don't depend on parallelism (default 8) *)
  max_queue_depth : int option;
      (** admission cap: submissions beyond it are [Shed] up front *)
  shed_below_fraction : float;
      (** shed all pending work once the admission budget's remaining
          fraction drops below this (default 0.0 — never) *)
  quarantine_after : int;
      (** consecutive failures that trip a class's breaker (default 3) *)
  sleep : float -> unit;
      (** how to wait out a backoff (default [Unix.sleepf], clamped);
          tests pass [ignore] *)
}

val default_config : config

(** [run ?pool ?budget ?config rng jobs] supervises [jobs] to completion
    and never raises. [budget] is the admission budget shared by every
    job (default unlimited); per-attempt budgets are detached slices of
    it capped by each job's policy. With [pool], attempts within a wave
    run on worker domains; without, they run sequentially — terminal
    states are identical either way. *)
val run :
  ?pool:Eda_util.Pool.t ->
  ?budget:Eda_util.Budget.t ->
  ?config:config ->
  Eda_util.Rng.t ->
  Job.t list ->
  report
