(** A supervised job: one engine invocation described as data.

    A job bundles what to run (the [work] closure — typically an engine
    entry point partially applied to its inputs), how to group it (the
    [klass], the unit of circuit breaking: jobs of a repeatedly-failing
    class get quarantined together), and the policy the supervisor
    applies to it (retry count, backoff shape, per-attempt budget).

    The work contract: given the per-attempt budget derived from the
    supervisor's admission budget, conclude with [Ok note] or refuse
    with a structured {!Eda_util.Eda_error.t}. Raising is a contract
    violation the supervisor nonetheless contains — the exception is
    confined to the attempt (via {!Eda_util.Pool.parallel_try_map} on a
    pool), converted to [Engine_failure], and classified like any other
    transient error. *)

type policy = {
  max_retries : int;  (** retries after the first attempt, transient failures only *)
  backoff_base_s : float;  (** wait before retry 1; doubles each retry *)
  backoff_max_s : float;  (** cap on the exponential wait *)
  jitter : float;
      (** uniform jitter fraction: each wait is scaled by a factor in
          [1, 1 + jitter] drawn from the job's own split Rng stream, so
          the schedule is deterministic per seed yet decorrelated across
          jobs *)
  attempt_steps : int option;  (** per-attempt step allowance *)
  attempt_seconds : float option;  (** per-attempt wall-clock allowance *)
}

(** 2 retries, 50 ms base backoff capped at 5 s, 25% jitter, no
    per-attempt limits beyond what the admission budget imposes. *)
val default_policy : policy

type t = {
  name : string;
  klass : string;
  policy : policy;
  work : Eda_util.Budget.t -> (string, Eda_util.Eda_error.t) result;
}

(** [create ?klass ?policy ~name work]. [klass] defaults to
    ["default"]; [policy] to {!default_policy}. *)
val create :
  ?klass:string ->
  ?policy:policy ->
  name:string ->
  (Eda_util.Budget.t -> (string, Eda_util.Eda_error.t) result) ->
  t
