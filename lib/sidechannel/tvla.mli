(** Test vector leakage assessment (TVLA [16]): the fixed-vs-random
    Welch t-test on power traces, at first and second statistical order. *)

(** The conventional |t| pass/fail line (4.5). *)
val threshold : float

type result = {
  t_per_sample : float array;
  max_abs_t : float;
  leaky_samples : int list;  (** sample indices with |t| > threshold *)
  traces_per_class : int;
}

(** Per-sample Welch t over two equal-length trace populations.
    @raise Invalid_argument on an empty population. *)
val t_test : float array list -> float array list -> result

(** True when any sample crosses the threshold. *)
val leaks : result -> bool

(** Second-order (univariate) variant: traces are centered by the pooled
    per-sample mean and squared before the t-test, exposing leakage in
    the variance — the assessment that breaks 2-share masking. *)
val t_test_second_order : float array list -> float array list -> result

(** Fixed-vs-random campaign: [collect cls] must produce one trace for
    class [`Fixed] or [`Random], drawing its own randomness. Classes are
    interleaved, as the TVLA procedure prescribes. *)
val campaign :
  traces_per_class:int -> collect:([ `Fixed | `Random ] -> float array) -> result

(** Seeded, batchable campaign — the parallel counterpart of {!campaign}.
    [collect stream cls] must draw randomness only from [stream]; pair
    [i] uses stream [i] of [Eda_util.Rng.split rng traces_per_class].
    Traces accumulate into per-sample Welford moments in fixed-size
    batches merged in index order, so the result (every t value, not
    just the verdict) is bit-identical with no pool and with a pool of
    any domain count, and memory stays O(samples).
    @raise Invalid_argument on a non-positive trace count or unequal
    trace lengths. *)
val campaign_seeded :
  ?pool:Eda_util.Pool.t ->
  Eda_util.Rng.t ->
  traces_per_class:int ->
  collect:(Eda_util.Rng.t -> [ `Fixed | `Random ] -> float array) ->
  result

(** Campaign assessed at (first, second) order from one trace set. *)
val campaign_orders :
  traces_per_class:int ->
  collect:([ `Fixed | `Random ] -> float array) ->
  result * result

(** Max |t| as the trace count grows through [steps] (cumulative counts):
    the "leakage grows with sqrt n" series. *)
val escalation :
  steps:int list -> collect:([ `Fixed | `Random ] -> float array) -> (int * float) list
