(** The [secure_synthesis] recipe and its TVLA verification pass: mask
    annotated regions inside the flow, re-optimize behind the gadget
    fence, then gate sign-off on a fixed-vs-random TVLA campaign.

    Registration is explicit ({!register}) because this lives above
    [lib/synth] in the dependency order. *)

(** One fixed-vs-random Hamming-weight TVLA campaign over any circuit,
    masked or not. The interface is recovered by name
    ({!Synth.Masking.interface_of}): share groups are re-encoded from the
    secret per trace, gadget randomness ([mg_]/[isw_]/[dom_] inputs) is
    fresh per trace, unshared inputs carry the secret directly. Fixed
    class: all secrets true; random class: uniform. Bit-identical at any
    pool size. *)
val assess :
  ?pool:Eda_util.Pool.t ->
  Eda_util.Rng.t ->
  Netlist.Circuit.t ->
  traces_per_class:int ->
  noise_sigma:float ->
  Tvla.result

(** [Tvla.leaks] of {!assess}. *)
val leaks :
  ?pool:Eda_util.Pool.t ->
  Eda_util.Rng.t ->
  Netlist.Circuit.t ->
  traces_per_class:int ->
  noise_sigma:float ->
  bool

type verification = {
  masked_result : Tvla.result;
  unmasked_result : Tvla.result;
}

(** Assess [masked] and its unmasked [reference] under identical
    campaigns. The acceptance argument is the pair (masked clean,
    reference leaking) — a campaign too weak to catch the unmasked
    design proves nothing about the masked one. *)
val verify :
  ?pool:Eda_util.Pool.t ->
  Eda_util.Rng.t ->
  reference:Netlist.Circuit.t ->
  Netlist.Circuit.t ->
  traces_per_class:int ->
  noise_sigma:float ->
  verification

(** The [tvla_check] pass: identity transform whose invariant check runs
    {!assess} and fails the pipeline on leakage
    (params [traces], [noise_sigma], [seed]). *)
val tvla_pass : Synth.Pass.t

(** The recipe: [mask_insertion] → protected re-optimization →
    [tvla_check]. *)
val secure_synthesis : Synth.Pipeline.t

(** Register both with the [Synth] registries; idempotent. *)
val register : unit -> unit
