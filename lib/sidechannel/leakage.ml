(** The paper's motivational experiment (Fig. 2), end to end.

    A private (ISW-masked) AND gate is synthesized twice:
    - security-aware: the masked accumulation chains are protected, so the
      netlist keeps the prescribed association order;
    - security-unaware: the classical flow applies factoring-friendly XOR
      re-association, creating an intermediate wire whose value distribution
      depends on the unmasked secret.

    Both are then evaluated with fixed-vs-random TVLA under a first-order
    Hamming-weight power model. The glitch variant repeats the assessment
    with the delay-annotated event simulation, reproducing the Sec. III-E
    point that glitches leak even from correctly synthesized masking. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Rng = Eda_util.Rng

(** The paper's example target: c = a AND b, to be masked. *)
let private_and_source () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let y = Circuit.add_gate ~name:"y" c Gate.And [ a; b ] in
  Circuit.set_output c "y" y;
  c

type variant = Security_aware | Security_unaware

(** Masked-and-synthesized circuit for one flow variant. *)
let synthesize_masked ?(shares = 3) variant =
  let masked = Isw.transform ~shares (private_and_source ()) in
  let circuit =
    match variant with
    | Security_aware ->
      (* The aware flow honours the isw_ order barriers. *)
      Synth.Flow.optimize_secure ~protect:Isw.protected_name masked.Isw.circuit
    | Security_unaware ->
      (* The classical flow is free to re-associate (Fig. 2). *)
      Synth.Xor_reassoc.run masked.Isw.circuit
  in
  Isw.rebind masked circuit

(** One Hamming-weight leakage sample of the masked circuit for secret
    inputs [a] and [b] with fresh share/mask randomness. [scratch] is a
    reusable net-value buffer for campaign loops. *)
let hw_sample rng ?scratch masked ~noise_sigma ~a ~b =
  let vec = Isw.input_vector rng masked ~values:[ ("a", a); ("b", b) ] in
  Power.Model.hamming_weight_sample rng ?scratch masked.Isw.circuit ~noise_sigma ~inputs:vec

(** Fixed-vs-random TVLA on a masked variant. Fixed class: (a,b) = (1,1);
    random class: uniform (a,b). *)
let tvla_campaign rng masked ~traces_per_class ~noise_sigma =
  let scratch = Array.make (Circuit.node_count masked.Isw.circuit) false in
  let collect cls =
    let a, b =
      match cls with
      | `Fixed -> true, true
      | `Random -> Rng.bool rng, Rng.bool rng
    in
    [| hw_sample rng ~scratch masked ~noise_sigma ~a ~b |]
  in
  Tvla.campaign ~traces_per_class ~collect

(** Seeded/parallel variant of {!tvla_campaign}: every trace draws its
    randomness from the per-pair stream handed in by
    {!Tvla.campaign_seeded}, so the assessment is a function of [rng]
    alone — bit-identical with no pool and with a pool of any domain
    count. The scratch buffer is allocated per trace (streams may be
    consumed on different domains concurrently, so a shared buffer would
    race); the sequential {!tvla_campaign} keeps its allocation-free
    loop. *)
let tvla_campaign_seeded ?pool rng masked ~traces_per_class ~noise_sigma =
  let nodes = Circuit.node_count masked.Isw.circuit in
  let collect stream cls =
    let a, b =
      match cls with
      | `Fixed -> true, true
      | `Random -> Rng.bool stream, Rng.bool stream
    in
    let scratch = Array.make nodes false in
    [| hw_sample stream ~scratch masked ~noise_sigma ~a ~b |]
  in
  Tvla.campaign_seeded ?pool rng ~traces_per_class ~collect

(** Glitch-aware variant: traces from the delay-annotated event simulation,
    with inputs switching from an all-zero reference state.
    [mask_skew_ps > 0] delays the arrival of the masking randomness inputs
    by that much — the late-mask-refresh scenario in which share products
    are transiently combined before the fresh randomness lands, the classic
    glitch-leakage mechanism of [55] (Sec. III-E). *)
let tvla_campaign_glitch ?(mask_skew_ps = 0.0) rng masked ~traces_per_class ~config =
  let c = masked.Isw.circuit in
  let ni = Circuit.num_inputs c in
  let input_arrivals =
    let arr = Array.make ni 0.0 in
    if mask_skew_ps > 0.0 then begin
      let pos_of =
        let tbl = Hashtbl.create 16 in
        Array.iteri (fun pos id -> Hashtbl.replace tbl id pos) (Circuit.inputs c);
        fun id -> Hashtbl.find tbl id
      in
      Array.iter (fun id -> arr.(pos_of id) <- mask_skew_ps) masked.Isw.random_inputs
    end;
    arr
  in
  let collect cls =
    let a, b =
      match cls with
      | `Fixed -> true, true
      | `Random -> Rng.bool rng, Rng.bool rng
    in
    let next = Isw.input_vector rng masked ~values:[ ("a", a); ("b", b) ] in
    Power.Model.trace rng c ~config ~input_arrivals ~prev_inputs:(Array.make ni false)
      ~next_inputs:next
  in
  Tvla.campaign ~traces_per_class ~collect

(** Mask-failure variant: the masking randomness is stuck at zero (a dead
    TRNG — the failure mode the RNG health tests of [41] guard against).
    The shares then carry deterministic combinations of the secret and the
    "masked" circuit leaks like an unmasked one; this is the limit case of
    the timing-model question of Sec. III-E (a mask that arrives after the
    evaluation window is as good as no mask). *)
let tvla_campaign_mask_failure rng masked ~traces_per_class ~noise_sigma =
  let c = masked.Isw.circuit in
  let scratch = Array.make (Circuit.node_count c) false in
  let pos_of =
    let tbl = Hashtbl.create 16 in
    Array.iteri (fun pos id -> Hashtbl.replace tbl id pos) (Circuit.inputs c);
    fun id -> Hashtbl.find tbl id
  in
  let collect cls =
    let a, b =
      match cls with
      | `Fixed -> true, true
      | `Random -> Rng.bool rng, Rng.bool rng
    in
    let vec = Isw.input_vector rng masked ~values:[ ("a", a); ("b", b) ] in
    Array.iter (fun id -> vec.(pos_of id) <- false) masked.Isw.random_inputs;
    [| Power.Model.hamming_weight_sample rng ~scratch c ~noise_sigma ~inputs:vec |]
  in
  Tvla.campaign ~traces_per_class ~collect

(** Find the most leaking internal wire of a masked circuit: per-node
    fixed-vs-random t statistic on the node's value. Identifies the
    factored wire of Fig. 2 by name. *)
let leakiest_wire rng masked ~samples =
  let c = masked.Isw.circuit in
  let n = Circuit.node_count c in
  let fixed = Array.make_matrix samples n 0.0 in
  let random = Array.make_matrix samples n 0.0 in
  let values = Array.make n false in
  for t = 0 to samples - 1 do
    let record target cls =
      let a, b =
        match cls with
        | `Fixed -> true, true
        | `Random -> Rng.bool rng, Rng.bool rng
      in
      let vec = Isw.input_vector rng masked ~values:[ ("a", a); ("b", b) ] in
      Netlist.Sim.eval_all_into c vec ~into:values;
      Array.iteri (fun i v -> target.(i) <- if v then 1.0 else 0.0) values
    in
    record fixed.(t) `Fixed;
    record random.(t) `Random
  done;
  let col_f = Array.make samples 0.0 and col_r = Array.make samples 0.0 in
  let t_of_node i =
    for t = 0 to samples - 1 do
      col_f.(t) <- fixed.(t).(i);
      col_r.(t) <- random.(t).(i)
    done;
    Eda_util.Stats.welch_t col_f col_r
  in
  let best = ref 0 and best_t = ref 0.0 in
  for i = 0 to n - 1 do
    let t = Float.abs (t_of_node i) in
    if t > !best_t then begin
      best := i;
      best_t := t
    end
  done;
  Circuit.name c !best, !best_t
