(** The [secure_synthesis] recipe and its TVLA verification pass — the
    constructive closing of the loop the paper argues for (Sec. III/IV):
    masking is inserted {e by} the synthesis flow, the re-optimization
    respects the gadget fences, and the flow itself checks the result
    leakage-free before signing it off.

    Lives here rather than in [lib/synth] because the check needs the
    {!Tvla} engine and the Hamming-weight power model, which sit above
    synthesis in the dependency order. Consequently registration is
    explicit: call {!register} once (the CLI and tests do) before asking
    the registry for [tvla_check] or [secure_synthesis].

    The assessment harness is interface-generic via
    {!Synth.Masking.interface_of}: share-group inputs are re-encoded from
    the secret per trace, [mg_]/[isw_]/[dom_] inputs draw fresh
    randomness, unshared inputs carry the secret directly. One harness
    therefore assesses masked and unmasked circuits alike — which is how
    {!verify} can also assert that the {e unmasked} design fails the very
    check the masked one passes. *)

module Circuit = Netlist.Circuit
module Rng = Eda_util.Rng
module Masking = Synth.Masking

(* Randomness inputs of any recognised gadget family. *)
let is_random_input name =
  Masking.protected_name name || Isw.protected_name name || Dom.protected_name name

(* The assessed interface: share groups re-encoded per trace, gadget
   randomness refreshed per trace, unshared inputs carrying the secret. *)
let harness c =
  let iface = Masking.interface_of c in
  let secrets, extra_randoms =
    List.partition (fun (nm, _) -> not (is_random_input nm)) iface.Masking.secrets
  in
  let randoms =
    Array.append iface.Masking.randoms
      (Array.concat (List.map snd extra_randoms))
  in
  (secrets, randoms)

(** One fixed-vs-random Hamming-weight TVLA campaign over any circuit.
    Fixed class: every secret input true; random class: uniform secrets.
    Masking randomness is fresh in both classes. Bit-identical at any
    pool size (see {!Tvla.campaign_seeded}). *)
let assess ?pool rng c ~traces_per_class ~noise_sigma =
  let secrets, randoms = harness c in
  let nodes = Circuit.node_count c in
  let ni = Circuit.num_inputs c in
  let pos_of =
    let tbl = Hashtbl.create 64 in
    Array.iteri (fun pos id -> Hashtbl.replace tbl id pos) (Circuit.inputs c);
    fun id -> Hashtbl.find tbl id
  in
  let collect stream cls =
    let vec = Array.make ni false in
    List.iter
      (fun (_, ids) ->
        let value = match cls with `Fixed -> true | `Random -> Rng.bool stream in
        if Array.length ids = 1 then vec.(pos_of ids.(0)) <- value
        else begin
          let sh = Isw.encode stream ~shares:(Array.length ids) value in
          Array.iteri (fun s id -> vec.(pos_of id) <- sh.(s)) ids
        end)
      secrets;
    Array.iter (fun id -> vec.(pos_of id) <- Rng.bool stream) randoms;
    let scratch = Array.make nodes false in
    [| Power.Model.hamming_weight_sample stream ~scratch c ~noise_sigma ~inputs:vec |]
  in
  Tvla.campaign_seeded ?pool rng ~traces_per_class ~collect

(** Convenience verdict: does the circuit leak under {!assess}? *)
let leaks ?pool rng c ~traces_per_class ~noise_sigma =
  Tvla.leaks (assess ?pool rng c ~traces_per_class ~noise_sigma)

type verification = {
  masked_result : Tvla.result;
  unmasked_result : Tvla.result;
}

(** Assess [masked] and its unmasked [reference] under identical
    campaigns: the secure-synthesis acceptance argument is the pair
    (masked clean, reference leaking), not either verdict alone — a
    too-noisy campaign that cannot even catch the unmasked design proves
    nothing about the masked one. *)
let verify ?pool rng ~reference masked ~traces_per_class ~noise_sigma =
  { masked_result = assess ?pool rng masked ~traces_per_class ~noise_sigma;
    unmasked_result = assess ?pool rng reference ~traces_per_class ~noise_sigma }

(* --- Registration ------------------------------------------------------ *)

let param_float ctx key ~default =
  match Synth.Pass.param ctx key with
  | None -> default
  | Some v ->
    (match float_of_string_opt v with
     | Some f -> f
     | None -> invalid_arg (Printf.sprintf "tvla_check: parameter %s=%s is not a float" key v))

let tvla_pass =
  Synth.Pass.make ~name:"tvla_check"
    ~doc:
      "Leakage gate: fixed-vs-random Hamming-weight TVLA; fails the pipeline \
       on |t| > 4.5 (params: traces, noise_sigma, seed)"
    ~check:(fun ctx c ->
      let traces = Synth.Pass.param_int ctx "traces" ~default:1500 in
      let noise_sigma = param_float ctx "noise_sigma" ~default:0.8 in
      let seed = Synth.Pass.param_int ctx "seed" ~default:7 in
      let result =
        assess ?pool:ctx.Synth.Pass.pool (Rng.create (0x74766c61 + seed)) c
          ~traces_per_class:traces ~noise_sigma
      in
      if Tvla.leaks result then
        Error
          (Printf.sprintf "TVLA leakage: max |t| = %.2f over %d traces/class (threshold %.1f)"
             result.Tvla.max_abs_t traces Tvla.threshold)
      else Ok ())
    (fun _ c -> c)

let secure_synthesis =
  Synth.Pipeline.make ~name:"secure_synthesis"
    ~doc:
      "Mask annotated regions (or the whole circuit), re-optimize behind the \
       gadget fence, then gate on a TVLA leakage check (params: shares, \
       style, seed, region, traces, noise_sigma)"
    [ Synth.Pipeline.pass "mask_insertion";
      Synth.Pipeline.Protect
        { prefixes = Synth.Pipeline.gadget_prefixes;
          body =
            [ Synth.Pipeline.pass "constant_propagation";
              Synth.Pipeline.pass "strash";
              Synth.Pipeline.pass "xor_reassoc" ] };
      Synth.Pipeline.pass "tvla_check" ]

let registered = ref false

(** Register [tvla_check] and [secure_synthesis]; idempotent. Explicit
    because cross-library registration cannot rely on module initializers
    of unreferenced archive members being linked. *)
let register () =
  if not !registered then begin
    registered := true;
    Synth.Pass.register tvla_pass;
    Synth.Pipeline.register secure_synthesis
  end
