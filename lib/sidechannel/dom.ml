(** Domain-oriented masking (Groß et al. [5] — the masking scheme the
    paper's Table II cites for the HLS row).

    Like ISW, every secret is split into d+1 XOR shares ("domains"); the
    crucial difference is the *register stage*: every cross-domain product
    is remasked with fresh randomness and then REGISTERED before being
    integrated into its target domain. The registers stop intra-cycle
    glitch propagation across domains — DOM's security argument in the
    robust (glitchy) probing model, at the price of one cycle of latency
    per AND level.

    DOM-indep AND over domains i, j:
      inner terms:  a_i b_i                       (stay in domain i)
      cross terms:  reg(a_i b_j xor z_ij)         (i != j, fresh z per
                                                   unordered pair, shared:
                                                   z_ij = z_ji)
      q_i = a_i b_i xor sum_j reg(a_i b_j xor z_ij)

    The transform pipelines the whole circuit level by level: XOR/NOT are
    share-wise and free; each AND level costs one cycle. For simplicity
    every AND output is registered (also the convention in the original
    DOM pipeline), and non-AND values crossing a register level get
    pipeline registers so all paths stay aligned. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Rng = Eda_util.Rng

type masked = {
  circuit : Circuit.t;
  shares : int;
  latency : int;  (* clock cycles until outputs are valid *)
  input_shares : (string * int array) list;
  random_inputs : int array;
  output_shares : (string * string array) list;
}

let prefix = "dom_"

let protected_name name = String.length name >= 4 && String.sub name 0 4 = prefix

let transform ?(shares = 2) source =
  assert (shares >= 2);
  let src = Synth.Pass.apply "to_and_xor_not" source in
  assert (Circuit.num_dffs src = 0);
  let c = Circuit.create () in
  let counter = ref 0 in
  let fresh tag =
    incr counter;
    Printf.sprintf "%s%s_%d" prefix tag !counter
  in
  let input_shares =
    Array.to_list (Circuit.inputs src)
    |> List.map (fun id ->
        let base = Circuit.name src id in
        let ids =
          Array.init shares (fun s ->
              Circuit.add_input ~name:(Printf.sprintf "%s_d%d" base s) c)
        in
        base, ids)
  in
  let random_inputs = ref [] in
  let fresh_random () =
    let id = Circuit.add_input ~name:(fresh "z") c in
    random_inputs := id :: !random_inputs;
    id
  in
  let gate kind fanins = Circuit.add_node_raw c kind (Array.of_list fanins) (fresh (Gate.name kind)) in
  let register node =
    let ff = Circuit.add_dff ~name:(fresh "reg") c ~d:node in
    ff
  in
  (* Per source node: its share vector and its pipeline level. *)
  let share_map = Hashtbl.create 64 in
  let level_map = Hashtbl.create 64 in
  List.iteri
    (fun k (_, ids) ->
      Hashtbl.replace share_map (Circuit.inputs src).(k) ids;
      Hashtbl.replace level_map (Circuit.inputs src).(k) 0)
    input_shares;
  (* Delay a share vector by [cycles] pipeline registers. *)
  let rec delay_to target_level current_level vec =
    if current_level >= target_level then vec
    else delay_to target_level (current_level + 1) (Array.map register vec)
  in
  let max_level = ref 0 in
  for i = 0 to Circuit.node_count src - 1 do
    let nd = Circuit.node src i in
    let sh k = Hashtbl.find share_map nd.Circuit.fanins.(k) in
    let lv k = Hashtbl.find level_map nd.Circuit.fanins.(k) in
    match nd.Circuit.kind with
    | Gate.Input -> ()
    | Gate.Const b ->
      let zero = Circuit.add_const ~name:(fresh "c0") c false in
      let v = Circuit.add_const ~name:(fresh "cv") c b in
      Hashtbl.replace share_map i (Array.init shares (fun s -> if s = 0 then v else zero));
      Hashtbl.replace level_map i 0
    | Gate.Not ->
      let a = sh 0 in
      Hashtbl.replace share_map i
        (Array.mapi (fun s a_s -> if s = 0 then gate Gate.Not [ a_s ] else a_s) a);
      Hashtbl.replace level_map i (lv 0)
    | Gate.Xor ->
      (* Align both operands to the later level, then share-wise XOR. *)
      let target = max (lv 0) (lv 1) in
      let a = delay_to target (lv 0) (sh 0) in
      let b = delay_to target (lv 1) (sh 1) in
      Hashtbl.replace share_map i (Array.init shares (fun s -> gate Gate.Xor [ a.(s); b.(s) ]));
      Hashtbl.replace level_map i target
    | Gate.And ->
      let target = max (lv 0) (lv 1) in
      let a = delay_to target (lv 0) (sh 0) in
      let b = delay_to target (lv 1) (sh 1) in
      (* Shared randomness per unordered domain pair. *)
      let z = Array.make_matrix shares shares (-1) in
      for p = 0 to shares - 1 do
        for q = p + 1 to shares - 1 do
          let r = fresh_random () in
          z.(p).(q) <- r;
          z.(q).(p) <- r
        done
      done;
      (* All terms registered (inner terms too, keeping domains aligned). *)
      let out =
        Array.init shares (fun s ->
            let inner = register (gate Gate.And [ a.(s); b.(s) ]) in
            let crosses =
              List.filter_map
                (fun j ->
                  if j = s then None
                  else begin
                    let prod = gate Gate.And [ a.(s); b.(j) ] in
                    let remasked = gate Gate.Xor [ prod; z.(s).(j) ] in
                    Some (register remasked)
                  end)
                (List.init shares (fun j -> j))
            in
            List.fold_left (fun acc x -> gate Gate.Xor [ acc; x ]) inner crosses)
      in
      Hashtbl.replace share_map i out;
      let lvl = target + 1 in
      Hashtbl.replace level_map i lvl;
      if lvl > !max_level then max_level := lvl
    | Gate.Buf | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xnor | Gate.Mux | Gate.Dff ->
      invalid_arg "Dom.transform: circuit not in AND/XOR/NOT basis"
  done;
  (* Align every output to the global latency. *)
  let output_shares =
    Array.to_list (Circuit.outputs src)
    |> List.map (fun (nm, o) ->
        let vec = delay_to !max_level (Hashtbl.find level_map o) (Hashtbl.find share_map o) in
        let names =
          Array.mapi
            (fun s id ->
              let out_name = Printf.sprintf "%s_d%d" nm s in
              Circuit.set_output c out_name id;
              out_name)
            vec
        in
        nm, names)
  in
  { circuit = c;
    shares;
    latency = !max_level;
    input_shares;
    random_inputs = Array.of_list (List.rev !random_inputs);
    output_shares }

(** Evaluate on original input [values]: shares and randomness drawn
    fresh, the pipeline clocked [latency] + 1 cycles with inputs held,
    outputs decoded from the share registers. *)
let eval rng masked ~values =
  let c = masked.circuit in
  let pos_of =
    let tbl = Hashtbl.create 64 in
    Array.iteri (fun pos id -> Hashtbl.replace tbl id pos) (Circuit.inputs c);
    fun id -> Hashtbl.find tbl id
  in
  let vec = Array.make (Circuit.num_inputs c) false in
  List.iter
    (fun (name, ids) ->
      let value =
        match List.assoc_opt name values with
        | Some v -> v
        | None -> invalid_arg (Printf.sprintf "Dom.eval: missing input %s" name)
      in
      let sh = Isw.encode rng ~shares:masked.shares value in
      Array.iteri (fun s id -> vec.(pos_of id) <- sh.(s)) ids)
    masked.input_shares;
  Array.iter (fun id -> vec.(pos_of id) <- Rng.bool rng) masked.random_inputs;
  let state = ref (Array.make (Circuit.num_dffs c) false) in
  let outs = ref [||] in
  for _ = 0 to masked.latency do
    let o, next = Netlist.Sim.step c ~state:!state vec in
    outs := o;
    state := next
  done;
  (* One more settle: outputs read the registered values combinationally. *)
  let o, _ = Netlist.Sim.step c ~state:!state vec in
  outs := o;
  let out_positions =
    let tbl = Hashtbl.create 16 in
    Array.iteri (fun pos (nm, _) -> Hashtbl.replace tbl nm pos) (Circuit.outputs c);
    tbl
  in
  List.map
    (fun (nm, share_names) ->
      let bits = Array.map (fun sn -> !outs.(Hashtbl.find out_positions sn)) share_names in
      nm, Isw.decode bits)
    masked.output_shares

(** Cost comparison vs ISW at the same share count, for the ablation. *)
type cost = { area : float; randoms : int; latency : int; registers : int }

let cost masked =
  { area = (Circuit.stats masked.circuit).Circuit.area;
    randoms = Array.length masked.random_inputs;
    latency = masked.latency;
    registers = Circuit.num_dffs masked.circuit }
