(** ISW private circuits (Ishai-Sahai-Wagner t-probing masking), the scheme
    of the paper's motivational example (Sec. II-B).

    Every secret value is split into [shares] = t+1 XOR shares; XOR and NOT
    operate share-wise; AND consumes fresh randomness r_ij and accumulates
    partial products in a fixed, security-critical order:

      c_i = a_i b_i  ^  z_i1 ^ ... ^ z_in   (j != i), where
      z_ij = r_ij                 for i < j
      z_ji = (r_ij ^ a_i b_j) ^ a_j b_i     for i < j  — parentheses matter.

    The transform emits exactly this association as a left-to-right chain
    and names every created node with the "isw_" prefix, which doubles as
    the order barrier ([protect] predicate) for security-aware synthesis.
    A classical flow that ignores the barriers (Synth.Flow.optimize) is
    free to re-associate those chains — reproducing Fig. 2. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Rng = Eda_util.Rng

type masked = {
  circuit : Circuit.t;
  shares : int;
  (* For each original input name, its share input ids in order. *)
  input_shares : (string * int array) list;
  (* Randomness inputs, in declaration order. *)
  random_inputs : int array;
  (* For each original output name, its share output names. *)
  output_shares : (string * string array) list;
}

let prefix = "isw_"

(** The order-barrier predicate: every net created by the transform. *)
let protected_name name = String.length name >= 4 && String.sub name 0 4 = prefix

let transform ?(shares = 3) source =
  assert (shares >= 2);
  let src = Synth.Pass.apply "to_and_xor_not" source in
  assert (Circuit.num_dffs src = 0);
  let c = Circuit.create () in
  let counter = ref 0 in
  let fresh tag =
    incr counter;
    Printf.sprintf "%s%s_%d" prefix tag !counter
  in
  (* Share inputs for each original primary input. *)
  let input_shares =
    Array.to_list (Circuit.inputs src)
    |> List.map (fun id ->
        let base = Circuit.name src id in
        let ids =
          Array.init shares (fun s ->
              Circuit.add_input ~name:(Printf.sprintf "%s_s%d" base s) c)
        in
        base, ids)
  in
  let random_inputs = ref [] in
  let fresh_random () =
    let id = Circuit.add_input ~name:(fresh "r") c in
    random_inputs := id :: !random_inputs;
    id
  in
  (* Map from source node to its share vector in the masked circuit. *)
  let share_map = Hashtbl.create 64 in
  List.iteri
    (fun k (_, ids) -> Hashtbl.replace share_map (Circuit.inputs src).(k) ids)
    input_shares;
  let gate kind fanins = Circuit.add_node_raw c kind (Array.of_list fanins) (fresh (Gate.name kind)) in
  for i = 0 to Circuit.node_count src - 1 do
    let nd = Circuit.node src i in
    let sh k = Hashtbl.find share_map nd.Circuit.fanins.(k) in
    match nd.Circuit.kind with
    | Gate.Input -> ()  (* already mapped *)
    | Gate.Const b ->
      (* Constant: share 0 carries the value, the rest are zero. *)
      let zero = Circuit.add_const ~name:(fresh "c0") c false in
      let v = Circuit.add_const ~name:(fresh "cv") c b in
      Hashtbl.replace share_map i (Array.init shares (fun s -> if s = 0 then v else zero))
    | Gate.Not ->
      (* Invert exactly one share. *)
      let a = sh 0 in
      let out =
        Array.mapi (fun s a_s -> if s = 0 then gate Gate.Not [ a_s ] else a_s) a
      in
      Hashtbl.replace share_map i out
    | Gate.Xor ->
      let a = sh 0 and b = sh 1 in
      Hashtbl.replace share_map i (Array.init shares (fun s -> gate Gate.Xor [ a.(s); b.(s) ]))
    | Gate.And ->
      let a = sh 0 and b = sh 1 in
      (* z.(i).(j) for i <> j. *)
      let z = Array.make_matrix shares shares (-1) in
      for p = 0 to shares - 1 do
        for q = p + 1 to shares - 1 do
          let r = fresh_random () in
          z.(p).(q) <- r;
          (* z_qp = (r ^ a_p b_q) ^ a_q b_p — the critical association. *)
          let apbq = gate Gate.And [ a.(p); b.(q) ] in
          let aqbp = gate Gate.And [ a.(q); b.(p) ] in
          let t1 = gate Gate.Xor [ r; apbq ] in
          z.(q).(p) <- gate Gate.Xor [ t1; aqbp ]
        done
      done;
      let out =
        Array.init shares (fun s ->
            let acc = ref (gate Gate.And [ a.(s); b.(s) ]) in
            for j = 0 to shares - 1 do
              if j <> s then acc := gate Gate.Xor [ !acc; z.(s).(j) ]
            done;
            !acc)
      in
      Hashtbl.replace share_map i out
    | Gate.Buf | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xnor | Gate.Mux | Gate.Dff ->
      invalid_arg "Isw.transform: circuit not in AND/XOR/NOT basis"
  done;
  let output_shares =
    Array.to_list (Circuit.outputs src)
    |> List.map (fun (nm, o) ->
        let ids = Hashtbl.find share_map o in
        let names =
          Array.mapi
            (fun s id ->
              let out_name = Printf.sprintf "%s_s%d" nm s in
              Circuit.set_output c out_name id;
              out_name)
            ids
        in
        nm, names)
  in
  { circuit = c;
    shares;
    input_shares;
    random_inputs = Array.of_list (List.rev !random_inputs);
    output_shares }

(** Re-attach a masked descriptor to a synthesized version of its circuit:
    node ids change across synthesis passes, but share and randomness input
    names are preserved, so they are re-resolved by name. *)
let rebind masked circuit =
  let resolve nm =
    match Circuit.find_by_name circuit nm with
    | Some id -> id
    | None -> invalid_arg (Printf.sprintf "Isw.rebind: input %s lost by synthesis" nm)
  in
  let rebind_ids old_circuit ids =
    Array.map (fun id -> resolve (Circuit.name old_circuit id)) ids
  in
  { masked with
    circuit;
    input_shares =
      List.map (fun (nm, ids) -> nm, rebind_ids masked.circuit ids) masked.input_shares;
    random_inputs = rebind_ids masked.circuit masked.random_inputs }

(** Split [value] into [shares] random XOR shares. *)
let encode rng ~shares value =
  let sh = Array.init shares (fun _ -> Rng.bool rng) in
  let parity = Array.fold_left ( <> ) false sh in
  if parity <> value then sh.(0) <- not sh.(0);
  sh

let decode sh = Array.fold_left ( <> ) false sh

(** Build the full input vector of the masked circuit from original input
    values: shares drawn fresh, randomness drawn fresh. The vector order
    matches the masked circuit's input declaration order. *)
let input_vector rng masked ~values =
  let c = masked.circuit in
  let total = Circuit.num_inputs c in
  let vec = Array.make total false in
  (* The transform interleaves share and randomness inputs, so translate
     node ids to input positions via the declaration order. *)
  let pos_of =
    let tbl = Hashtbl.create 64 in
    Array.iteri (fun pos id -> Hashtbl.replace tbl id pos) (Circuit.inputs c);
    fun id -> Hashtbl.find tbl id
  in
  List.iter
    (fun (name, ids) ->
      let value =
        match List.assoc_opt name values with
        | Some v -> v
        | None -> invalid_arg (Printf.sprintf "Isw.input_vector: missing input %s" name)
      in
      let sh = encode rng ~shares:masked.shares value in
      Array.iteri (fun s id -> vec.(pos_of id) <- sh.(s)) ids)
    masked.input_shares;
  Array.iter (fun id -> vec.(pos_of id) <- Rng.bool rng) masked.random_inputs;
  vec

(** Evaluate the masked circuit on original input [values] with fresh
    masking randomness, decoding each output from its shares. *)
let eval rng masked ~values =
  let vec = input_vector rng masked ~values in
  let outs = Netlist.Sim.eval masked.circuit vec in
  let out_positions =
    let tbl = Hashtbl.create 16 in
    Array.iteri (fun pos (nm, _) -> Hashtbl.replace tbl nm pos) (Circuit.outputs masked.circuit);
    tbl
  in
  List.map
    (fun (nm, share_names) ->
      let bits = Array.map (fun sn -> outs.(Hashtbl.find out_positions sn)) share_names in
      nm, decode bits)
    masked.output_shares
