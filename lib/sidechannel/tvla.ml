(** Test vector leakage assessment (TVLA, Goodwill et al. / [16]): the
    fixed-vs-random Welch t-test on power traces, the paper's reference
    technique for pre-silicon leakage evaluation (Table II, physical-
    synthesis and timing/power-verification rows).

    Two trace populations are collected — one with a *fixed* secret input,
    one with *random* secrets — under otherwise identical conditions. For
    each time sample, Welch's t statistic is computed; |t| above the
    conventional 4.5 threshold flags first-order leakage with high
    confidence. *)

module Stats = Eda_util.Stats

let threshold = 4.5

type result = {
  t_per_sample : float array;
  max_abs_t : float;
  leaky_samples : int list;  (* sample indices with |t| > threshold *)
  traces_per_class : int;
}

(** Per-sample Welch t over two trace populations (arrays of equal-length
    traces). *)
let t_test fixed_traces random_traces =
  match fixed_traces, random_traces with
  | [], _ | _, [] -> invalid_arg "Tvla.t_test: empty population"
  | f0 :: _, _ ->
    let samples = Array.length f0 in
    (* Column buffers are allocated once and refilled per sample — the
       values and their order fed to [Stats.welch_t] are identical to a
       per-sample [Array.of_list], without the per-sample allocation. *)
    let fixed = Array.of_list fixed_traces and random = Array.of_list random_traces in
    let col_f = Array.make (Array.length fixed) 0.0 in
    let col_r = Array.make (Array.length random) 0.0 in
    let t_per_sample =
      Array.init samples (fun k ->
          for j = 0 to Array.length fixed - 1 do col_f.(j) <- fixed.(j).(k) done;
          for j = 0 to Array.length random - 1 do col_r.(j) <- random.(j).(k) done;
          Stats.welch_t col_f col_r)
    in
    let leaky =
      List.filter
        (fun k -> Float.abs t_per_sample.(k) > threshold)
        (List.init samples (fun k -> k))
    in
    { t_per_sample;
      max_abs_t = Stats.max_abs t_per_sample;
      leaky_samples = leaky;
      traces_per_class = min (List.length fixed_traces) (List.length random_traces) }

let leaks result = result.max_abs_t > threshold

(** Second-order (univariate) TVLA: each trace is centered by the pooled
    per-sample mean and squared before the Welch t-test, exposing leakage
    in the *variance* of the power consumption. This is the standard
    assessment that breaks 2-share masking while first-order TVLA passes
    it — the masking-order story behind the paper's Sec. IV step-function
    argument. *)
let t_test_second_order fixed_traces random_traces =
  match fixed_traces, random_traces with
  | [], _ | _, [] -> invalid_arg "Tvla.t_test_second_order: empty population"
  | f0 :: _, _ ->
    let samples = Array.length f0 in
    let all = Array.of_list (fixed_traces @ random_traces) in
    let col = Array.make (Array.length all) 0.0 in
    let pooled_mean =
      Array.init samples (fun k ->
          for j = 0 to Array.length all - 1 do col.(j) <- all.(j).(k) done;
          Eda_util.Stats.mean col)
    in
    let preprocess tr =
      Array.init samples (fun k ->
          let d = tr.(k) -. pooled_mean.(k) in
          d *. d)
    in
    t_test (List.map preprocess fixed_traces) (List.map preprocess random_traces)

module T = Eda_util.Telemetry

(** Fixed-vs-random campaign assessed at first and second order.

    Telemetry: a [tvla.campaign_orders] span counting [tvla.traces]
    consumed, with [tvla.max_abs_t] / [tvla.max_abs_t_2nd] gauges for the
    two assessment orders. *)
let campaign_orders ~traces_per_class ~collect =
  T.with_span "tvla.campaign_orders"
    ~attrs:[ ("traces_per_class", T.Int traces_per_class) ]
  @@ fun () ->
  let fixed = ref [] and random = ref [] in
  for _ = 1 to traces_per_class do
    fixed := collect `Fixed :: !fixed;
    random := collect `Random :: !random;
    T.count "tvla.traces" 2
  done;
  let first = t_test !fixed !random in
  let second = t_test_second_order !fixed !random in
  T.gauge "tvla.max_abs_t" first.max_abs_t;
  T.gauge "tvla.max_abs_t_2nd" second.max_abs_t;
  first, second

(** Full fixed-vs-random campaign: [collect cls] must produce one trace for
    class [cls] ([`Fixed] or [`Random]), drawing its own randomness.
    Classes are interleaved to avoid drift artifacts, as the TVLA procedure
    prescribes.

    Telemetry: a [tvla.campaign] span counting [tvla.traces] consumed and
    gauging the final [tvla.max_abs_t]. *)
let campaign ~traces_per_class ~collect =
  T.with_span "tvla.campaign" ~attrs:[ ("traces_per_class", T.Int traces_per_class) ]
  @@ fun () ->
  let fixed = ref [] and random = ref [] in
  for _ = 1 to traces_per_class do
    fixed := collect `Fixed :: !fixed;
    random := collect `Random :: !random;
    T.count "tvla.traces" 2
  done;
  let result = t_test !fixed !random in
  T.gauge "tvla.max_abs_t" result.max_abs_t;
  result

(* Pairs per batch of the seeded campaign. Fixed (not derived from the
   pool size) so the batch boundaries — and with them the moment-merge
   order — are identical at any domain count. *)
let batch_pairs = 32

(** Seeded, batchable fixed-vs-random campaign, the parallel counterpart
    of {!campaign}: [collect stream cls] must produce one trace for class
    [cls] drawing randomness only from [stream]. Pair [i] (one fixed then
    one random trace, interleaved as TVLA prescribes) uses stream [i] of
    [Rng.split rng traces_per_class]; traces accumulate into per-sample
    Welford moments per fixed-size batch, and batches merge in index
    order (Chan's formula). Both the trace values and the floating-point
    reduction tree are therefore functions of [rng] alone: the result is
    bit-identical with no pool, and with a pool of any domain count.
    Streaming moments also mean memory stays O(samples), not O(traces).

    Telemetry: a [tvla.campaign] span (attrs [seeded], [domains])
    counting [tvla.traces] and gauging the final [tvla.max_abs_t];
    pooled runs (any size, including 1) nest a [pool.batch] span with
    one captured [pool.task] span per Welford batch.
    @raise Invalid_argument on a non-positive trace count or unequal
    trace lengths. *)
let campaign_seeded ?pool rng ~traces_per_class ~collect =
  if traces_per_class <= 0 then
    invalid_arg "Tvla.campaign_seeded: traces_per_class must be positive";
  let module P = Eda_util.Pool in
  let domains = match pool with Some p -> P.size p | None -> 1 in
  T.with_span "tvla.campaign"
    ~attrs:
      [ ("traces_per_class", T.Int traces_per_class);
        ("seeded", T.Bool true);
        ("domains", T.Int domains) ]
  @@ fun () ->
  let streams = Eda_util.Rng.split rng traces_per_class in
  let nbatches = (traces_per_class + batch_pairs - 1) / batch_pairs in
  let run_batch b =
    let lo = b * batch_pairs in
    let hi = min traces_per_class (lo + batch_pairs) in
    let fixed_m = ref [||] and random_m = ref [||] in
    let accumulate ms tr =
      if Array.length !ms = 0 then
        ms := Array.init (Array.length tr) (fun _ -> Stats.moments_create ());
      if Array.length tr <> Array.length !ms then
        invalid_arg "Tvla.campaign_seeded: traces must have equal length";
      Array.iteri (fun k m -> Stats.moments_add m tr.(k)) !ms
    in
    for i = lo to hi - 1 do
      let stream = streams.(i) in
      accumulate fixed_m (collect stream `Fixed);
      accumulate random_m (collect stream `Random)
    done;
    (!fixed_m, !random_m)
  in
  let batch_ids = Array.init nbatches (fun b -> b) in
  let batches =
    match pool with
    | Some p ->
      (* scheduling grain only: batch boundaries (and so the merge
         order) stay fixed by [batch_pairs] at any domain count *)
      let chunk = max 1 (nbatches / (4 * P.size p)) in
      P.parallel_map ~label:"tvla" ~chunk p batch_ids ~f:(fun _ctx b -> run_batch b)
    | None -> Array.map (fun b -> Some (run_batch b)) batch_ids
  in
  let merged = ref None in
  Array.iter
    (function
      | None -> ()  (* unreachable: no budget is handed to the pool *)
      | Some (fm, rm) ->
        (match !merged with
         | None -> merged := Some (Array.copy fm, Array.copy rm)
         | Some (mf, mr) ->
           if Array.length fm <> Array.length mf then
             invalid_arg "Tvla.campaign_seeded: traces must have equal length";
           Array.iteri (fun k m -> mf.(k) <- Stats.moments_merge mf.(k) m) fm;
           Array.iteri (fun k m -> mr.(k) <- Stats.moments_merge mr.(k) m) rm))
    batches;
  match !merged with
  | None -> invalid_arg "Tvla.campaign_seeded: no traces collected"
  | Some (mf, mr) ->
    let samples = Array.length mf in
    let t_per_sample = Array.init samples (fun k -> Stats.welch_t_moments mf.(k) mr.(k)) in
    let leaky =
      List.filter
        (fun k -> Float.abs t_per_sample.(k) > threshold)
        (List.init samples (fun k -> k))
    in
    let result =
      { t_per_sample;
        max_abs_t = Stats.max_abs t_per_sample;
        leaky_samples = leaky;
        traces_per_class }
    in
    T.count "tvla.traces" (2 * traces_per_class);
    T.gauge "tvla.max_abs_t" result.max_abs_t;
    result

(** Sweep of max |t| as the trace count grows; the paper-shaped "leakage
    grows with sqrt(n)" series. [steps] are cumulative trace counts.

    Telemetry: a [tvla.escalation] span; each step gauges [tvla.max_abs_t]
    so the exported trace carries the |t| trajectory, not just the final
    value. *)
let escalation ~steps ~collect =
  T.with_span "tvla.escalation" ~attrs:[ ("steps", T.Int (List.length steps)) ]
  @@ fun () ->
  let fixed = ref [] and random = ref [] in
  let collected = ref 0 in
  List.map
    (fun target ->
      while !collected < target do
        fixed := collect `Fixed :: !fixed;
        random := collect `Random :: !random;
        incr collected;
        T.count "tvla.traces" 2
      done;
      let max_abs_t = (t_test !fixed !random).max_abs_t in
      T.gauge "tvla.max_abs_t" max_abs_t;
      target, max_abs_t)
    steps
