(** Wave dynamic differential logic (WDDL, Tiri & Verbauwhede [21]) — the
    "hiding" countermeasure of the paper's logic-synthesis row, the main
    alternative to masking.

    Every signal is carried on a complementary rail pair (s, s̄) and every
    cycle has a precharge phase (all rails low) followed by evaluation.
    Because exactly one rail of every pair rises in every evaluation, the
    number of 0->1 transitions per cycle is a data-independent constant:
    the power signature carries no first-order information — without any
    randomness, but at ~2x area and half throughput.

    WDDL gates use only positive-monotone functions so the precharge wave
    propagates: AND -> (AND, OR on complements), OR -> (OR, AND on
    complements), NOT -> rail swap. The transform first rewrites the
    circuit into the AND/XOR/NOT basis and expresses XOR differentially. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

type dual = {
  circuit : Circuit.t;
  (* Original input name -> (true rail id, false rail id). *)
  input_rails : (string * (int * int)) list;
  (* Original output name -> (true rail name, false rail name). *)
  output_rails : (string * (string * string)) list;
}

let transform source =
  let src = Synth.Pass.apply "to_and_xor_not" source in
  assert (Circuit.num_dffs src = 0);
  let c = Circuit.create () in
  let input_rails =
    Array.to_list (Circuit.inputs src)
    |> List.map (fun id ->
        let base = Circuit.name src id in
        let t = Circuit.add_input ~name:(base ^ "_t") c in
        let f = Circuit.add_input ~name:(base ^ "_f") c in
        base, (t, f))
  in
  let rails = Hashtbl.create 64 in
  List.iteri
    (fun k (_, tf) -> Hashtbl.replace rails (Circuit.inputs src).(k) tf)
    input_rails;
  let gate kind fanins = Circuit.add_gate c kind fanins in
  for i = 0 to Circuit.node_count src - 1 do
    let nd = Circuit.node src i in
    let rail k = Hashtbl.find rails nd.Circuit.fanins.(k) in
    match nd.Circuit.kind with
    | Gate.Input -> ()
    | Gate.Const b ->
      (* Constants respect precharge via tying to the rails of a dummy
         evaluation signal; modelled as complementary constants. *)
      let t = Circuit.add_const c b and f = Circuit.add_const c (not b) in
      Hashtbl.replace rails i (t, f)
    | Gate.Not ->
      let t, f = rail 0 in
      Hashtbl.replace rails i (f, t)
    | Gate.And ->
      let at, af = rail 0 and bt, bf = rail 1 in
      let t = gate Gate.And [ at; bt ] in
      let f = gate Gate.Or [ af; bf ] in
      Hashtbl.replace rails i (t, f)
    | Gate.Xor ->
      (* Differential XOR from positive gates:
         t = at*bf + af*bt ; f = at*bt + af*bf. *)
      let at, af = rail 0 and bt, bf = rail 1 in
      let t = gate Gate.Or [ gate Gate.And [ at; bf ]; gate Gate.And [ af; bt ] ] in
      let f = gate Gate.Or [ gate Gate.And [ at; bt ]; gate Gate.And [ af; bf ] ] in
      Hashtbl.replace rails i (t, f)
    | Gate.Buf | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xnor | Gate.Mux | Gate.Dff ->
      invalid_arg "Wddl.transform: not in AND/XOR/NOT basis"
  done;
  let output_rails =
    Array.to_list (Circuit.outputs src)
    |> List.map (fun (nm, o) ->
        let t, f = Hashtbl.find rails o in
        let tn = nm ^ "_t" and fn = nm ^ "_f" in
        Circuit.set_output c tn t;
        Circuit.set_output c fn f;
        nm, (tn, fn))
  in
  { circuit = c; input_rails; output_rails }

(* Input vector for an evaluation phase: rail pair (v, not v) per input. *)
let eval_inputs dual ~values =
  let c = dual.circuit in
  let vec = Array.make (Circuit.num_inputs c) false in
  let pos_of =
    let tbl = Hashtbl.create 64 in
    Array.iteri (fun pos id -> Hashtbl.replace tbl id pos) (Circuit.inputs c);
    fun id -> Hashtbl.find tbl id
  in
  List.iter
    (fun (name, (t, f)) ->
      let v =
        match List.assoc_opt name values with
        | Some v -> v
        | None -> invalid_arg (Printf.sprintf "Wddl.eval_inputs: missing %s" name)
      in
      vec.(pos_of t) <- v;
      vec.(pos_of f) <- not v)
    dual.input_rails;
  vec

(* Precharge phase: all rails low. *)
let precharge_inputs dual = Array.make (Circuit.num_inputs dual.circuit) false

(** Evaluate the dual-rail circuit on original input [values]; decodes each
    output from its rails (checking complementarity). *)
let eval dual ~values =
  let outs = Netlist.Sim.eval dual.circuit (eval_inputs dual ~values) in
  let pos_of =
    let tbl = Hashtbl.create 16 in
    Array.iteri (fun pos (nm, _) -> Hashtbl.replace tbl nm pos) (Circuit.outputs dual.circuit);
    fun nm -> Hashtbl.find tbl nm
  in
  List.map
    (fun (nm, (tn, fn)) ->
      let t = outs.(pos_of tn) and f = outs.(pos_of fn) in
      assert (t <> f);  (* complementary rails in evaluation *)
      nm, t)
    dual.output_rails

(** The WDDL invariant, measurable: number of rising transitions from the
    precharge state to an evaluation is the same for every input. *)
let rising_transitions dual ~values =
  let c = dual.circuit in
  let pre = Netlist.Sim.eval_all c (precharge_inputs dual) in
  let post = Netlist.Sim.eval_all c (eval_inputs dual ~values) in
  let rising = ref 0 in
  for i = 0 to Circuit.node_count c - 1 do
    if (not pre.(i)) && post.(i) then incr rising
  done;
  !rising

(** Precharge-evaluate power sample: the side channel of a WDDL cycle. *)
let power_sample rng dual ~noise_sigma ~values =
  Power.Model.hamming_distance_sample rng dual.circuit ~noise_sigma
    ~prev_inputs:(precharge_inputs dual)
    ~next_inputs:(eval_inputs dual ~values)

(** TVLA on a WDDL-protected circuit with a two-secret-input interface
    (like the Fig. 2 AND target). *)
let tvla_campaign rng dual ~traces_per_class ~noise_sigma =
  let collect cls =
    let a, b =
      match cls with
      | `Fixed -> true, true
      | `Random -> Eda_util.Rng.bool rng, Eda_util.Rng.bool rng
    in
    [| power_sample rng dual ~noise_sigma ~values:[ ("a", a); ("b", b) ] |]
  in
  Tvla.campaign ~traces_per_class ~collect
