(** The end-to-end EDA flow of Fig. 1: synthesize -> place -> verify
    timing/power -> generate tests, behind one budgeted, poolable,
    checkpointable entry point ({!run}). With [protect] empty the flow is
    fully security-oblivious, exactly the classical PPA flow the paper
    critiques; [protect] threads protection barriers through synthesis. *)

module Circuit = Netlist.Circuit
module Rng = Eda_util.Rng

type stage = Logic_synthesis | Physical_synthesis | Timing_power_verification | Testing

let stage_name = function
  | Logic_synthesis -> "logic synthesis"
  | Physical_synthesis -> "physical synthesis (place)"
  | Timing_power_verification -> "timing/power verification"
  | Testing -> "testing (ATPG)"

let all_stages = [ Logic_synthesis; Physical_synthesis; Timing_power_verification; Testing ]

type stage_report = {
  stage : stage;
  area : float;
  delay_ps : float;
  wirelength : int option;  (* after placement *)
  fault_coverage : float option;  (* after ATPG *)
  note : string;
  degraded : string option;
      (* why the stage could not fully conclude (budget exhausted, engine
         failure, ...); [None] means it completed as specified *)
}

module Budget = Eda_util.Budget
module Eda_error = Eda_util.Eda_error

(** Resume token: everything the flow has concluded so far. Serializable
    state is deliberately small — completed stage reports plus the circuit
    they apply to. *)
type checkpoint = {
  done_stages : stage_report list;  (* in flow order *)
  circuit : Circuit.t;  (* design state after the last completed stage *)
}

let checkpoint_start circuit = { done_stages = []; circuit }

type report = {
  stages : stage_report list;  (* completed-before-resume + this run *)
  final : Circuit.t;
  checkpoint : checkpoint;  (* pass back as [resume] to continue *)
  degraded_stages : int;  (* count of stages with a degradation note *)
}

type safe_report = report

(** The end-to-end flow, one entry point: never raises on user-reachable
    failures, budgets every engine, and reports degradation honestly per
    stage instead of silently truncating — security metrics are step
    functions, so "Unknown/partial" must stay distinct from a measured
    value.

    - the input is linted before anything runs; a structurally invalid
      netlist is the only [Error] case;
    - [budget] bounds the whole flow; every stage draws a sub-budget from
      it ([stage_steps] optionally caps individual stages);
    - [pool] parallelizes the testing stage's per-fault SAT queries (the
      flow's dominant cost); stage results stay independent of the
      domain count;
    - a stage that exhausts its budget or fails internally is recorded
      with [degraded = Some reason] and the design passes through
      unchanged, so later stages still run;
    - [resume] continues from a {!checkpoint}, skipping completed stages;
    - [stages] restricts the run (default: all four, in order).

    Telemetry: one [flow.run] span over the run, one [flow.stage] span
    per stage (attr [stage]); a degradation is exported as a
    [flow.degraded] note on its stage span, and each stage gauges
    [flow.budget_utilization] from its sub-budget so partial results can
    be read as budget pressure. *)
let run rng ?(protect = fun (_ : string) -> false) ?budget ?pool
    ?(stage_steps = fun (_ : stage) -> None) ?(stages = all_stages) ?resume circuit =
  let root = match budget with Some b -> b | None -> Budget.unlimited () in
  let start_circuit, done_reports =
    match resume with
    | Some cp -> cp.circuit, cp.done_stages
    | None -> circuit, []
  in
  match Netlist.Lint.validate start_circuit with
  | Error e -> Error e
  | Ok _ ->
    let module T = Eda_util.Telemetry in
    let completed = List.map (fun r -> r.stage) done_reports in
    let todo = List.filter (fun s -> not (List.mem s completed)) stages in
    T.with_span "flow.run"
      ~attrs:
        [ ("stages", T.Int (List.length todo));
          ("resumed", T.Bool (resume <> None)) ]
    @@ fun () ->
    let reports = ref (List.rev done_reports) in
    let current = ref start_circuit in
    let report stage ?wirelength ?fault_coverage ?degraded note =
      (match degraded with
       | Some why ->
         T.note "flow.degraded"
           ~attrs:[ ("stage", T.Str (stage_name stage)); ("reason", T.Str why) ]
       | None -> ());
      let ppa = Synth.Flow.ppa !current in
      reports :=
        { stage;
          area = ppa.Synth.Flow.area;
          delay_ps = ppa.Synth.Flow.delay_ps;
          wirelength;
          fault_coverage;
          note;
          degraded }
        :: !reports
    in
    let run_stage stage =
      T.with_span "flow.stage" ~attrs:[ ("stage", T.Str (stage_name stage)) ]
      @@ fun () ->
      let sub = Budget.sub ?steps:(stage_steps stage) root in
      let finish () =
        match Budget.utilization sub with
        | Some u -> T.gauge "flow.budget_utilization" u
        | None -> ()
      in
      match Budget.status sub with
      | Some e ->
        report stage
          ~degraded:(Printf.sprintf "skipped: %s" (Budget.describe_exhaustion e))
          "stage skipped";
        finish ()
      | None ->
        let attempt () =
          match stage with
          | Logic_synthesis ->
            let synthesized =
              if protect == Synth.Rewrite.no_protection then Synth.Flow.optimize !current
              else Synth.Flow.optimize_secure ~protect !current
            in
            current := synthesized;
            report stage "constant-prop + strash + xor-reassoc"
          | Physical_synthesis ->
            let moves = 4000 in
            let o = Physical.Placement.place rng ~moves ~budget:sub !current in
            let placement = o.Physical.Placement.placement in
            let performed = o.Physical.Placement.moves_performed in
            let degraded =
              if performed < moves then
                Some
                  (Printf.sprintf "annealing stopped after %d/%d moves (%s)" performed moves
                     (match Budget.status sub with
                      | Some e -> Budget.describe_exhaustion e
                      | None -> "budget"))
              else None
            in
            report stage
              ~wirelength:(Physical.Placement.wirelength placement)
              ?degraded "simulated-annealing placement"
          | Timing_power_verification ->
            let ni = Circuit.num_inputs !current in
            let prev = Array.make ni false in
            let next = Array.init ni (fun _ -> Rng.bool rng) in
            let transitions =
              Timing.Event_sim.cycle !current ~prev_inputs:prev ~next_inputs:next
            in
            let glitches =
              List.length (Timing.Event_sim.glitching_nodes !current transitions)
            in
            report stage
              (Printf.sprintf "event-sim: %d transitions, %d glitching nets"
                 (List.length transitions) glitches)
          | Testing ->
            let r = Dft.Atpg.run ~budget:sub ?pool !current in
            let degraded =
              match r.Dft.Atpg.exhausted with
              | Some e ->
                Some
                  (Printf.sprintf "partial ATPG: %s, %d/%d faults unprocessed"
                     (Budget.describe_exhaustion e) r.Dft.Atpg.faults_remaining
                     r.Dft.Atpg.faults_total)
              | None -> None
            in
            report stage ~fault_coverage:r.Dft.Atpg.coverage ?degraded
              (Printf.sprintf "%d patterns" (List.length r.Dft.Atpg.patterns))
        in
        (match Eda_error.guard ~engine:(stage_name stage) attempt with
         | Ok () -> ()
         | Error e ->
           (* The stage blew up; the design passes through unchanged and
              the flow keeps going with an honest note. *)
           report stage ~degraded:(Eda_error.to_string e) "stage failed");
        finish ()
    in
    List.iter run_stage todo;
    let stages_list = List.rev !reports in
    let degraded_stages =
      List.length (List.filter (fun r -> r.degraded <> None) stages_list)
    in
    Ok
      { stages = stages_list;
        final = !current;
        checkpoint = { done_stages = stages_list; circuit = !current };
        degraded_stages }

(** @deprecated Alias of {!run} (the unified entry point). *)
let run_safe rng ?protect ?budget ?pool ?stage_steps ?stages ?resume circuit =
  run rng ?protect ?budget ?pool ?stage_steps ?stages ?resume circuit
