(** The end-to-end EDA flow of Fig. 1: synthesize -> place -> verify
    timing/power -> generate tests, behind one budgeted, poolable,
    checkpointable entry point ({!run}). With [protect] empty the flow is
    fully security-oblivious, exactly the classical PPA flow the paper
    critiques; [protect] threads protection barriers through synthesis. *)

module Circuit = Netlist.Circuit
module Rng = Eda_util.Rng

type stage = Logic_synthesis | Physical_synthesis | Timing_power_verification | Testing

let stage_name = function
  | Logic_synthesis -> "logic synthesis"
  | Physical_synthesis -> "physical synthesis (place)"
  | Timing_power_verification -> "timing/power verification"
  | Testing -> "testing (ATPG)"

let all_stages = [ Logic_synthesis; Physical_synthesis; Timing_power_verification; Testing ]

type stage_report = {
  stage : stage;
  area : float;
  delay_ps : float;
  wirelength : int option;  (* after placement *)
  fault_coverage : float option;  (* after ATPG *)
  note : string;
  degraded : string option;
      (* why the stage could not fully conclude (budget exhausted, engine
         failure, ...); [None] means it completed as specified *)
}

module Budget = Eda_util.Budget
module Eda_error = Eda_util.Eda_error

(** Resume token: everything the flow has concluded so far. Serializable
    state is deliberately small — completed stage reports plus the circuit
    they apply to. *)
type checkpoint = {
  done_stages : stage_report list;  (* in flow order *)
  circuit : Circuit.t;  (* design state after the last completed stage *)
}

let checkpoint_start circuit = { done_stages = []; circuit }

(* --- On-disk checkpoints ------------------------------------------------ *)

(* A checkpoint file is one JSON object:

     {"format":"secure-eda/flow-checkpoint","version":1,
      "hash":"<fnv1a64 of the serialized payload>",
      "payload":{"circuit":"<bench text>","stages":[...]}}

   Writes are atomic (temp file in the same directory, then rename), so
   a run killed mid-write can never leave a half checkpoint behind: the
   previous complete file survives. Reads validate format, version and
   content hash and reject anything corrupt or stale with a structured
   error — resuming from a bad file is a refusal, never a crash. *)

module Json = Eda_util.Telemetry.Json

let checkpoint_format = "secure-eda/flow-checkpoint"

let checkpoint_version = 1

let stage_id = function
  | Logic_synthesis -> "logic-synthesis"
  | Physical_synthesis -> "physical-synthesis"
  | Timing_power_verification -> "timing-power-verification"
  | Testing -> "testing"

let stage_of_id = function
  | "logic-synthesis" -> Some Logic_synthesis
  | "physical-synthesis" -> Some Physical_synthesis
  | "timing-power-verification" -> Some Timing_power_verification
  | "testing" -> Some Testing
  | _ -> None

(* FNV-1a, 64-bit: tiny, dependency-free, and plenty to detect the
   truncation/bit-flip corruption this guards against (not an integrity
   MAC — the threat is accident, not an adversary with write access). *)
let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let json_opt inject = function None -> Json.Null | Some v -> inject v

let stage_report_to_json r =
  Json.JObj
    [ ("stage", Json.JStr (stage_id r.stage));
      ("area", Json.JFloat r.area);
      ("delay_ps", Json.JFloat r.delay_ps);
      ("wirelength", json_opt (fun n -> Json.JInt n) r.wirelength);
      ("fault_coverage", json_opt (fun v -> Json.JFloat v) r.fault_coverage);
      ("note", Json.JStr r.note);
      ("degraded", json_opt (fun s -> Json.JStr s) r.degraded) ]

let invalid fmt =
  Printf.ksprintf
    (fun msg -> Error (Eda_error.Invalid_input { what = "checkpoint"; msg }))
    fmt

let stage_report_of_json j =
  let ( let* ) = Result.bind in
  match j with
  | Json.JObj fields ->
    let find k = List.assoc_opt k fields in
    let* stage =
      match find "stage" with
      | Some (Json.JStr s) ->
        (match stage_of_id s with
         | Some st -> Ok st
         | None -> invalid "unknown stage id %S" s)
      | _ -> invalid "stage entry missing its \"stage\" id"
    in
    let number k =
      match find k with
      | Some (Json.JFloat v) -> Ok v
      | Some (Json.JInt n) -> Ok (Float.of_int n)
      | _ -> invalid "stage entry field %S must be a number" k
    in
    let* area = number "area" in
    let* delay_ps = number "delay_ps" in
    let* wirelength =
      match find "wirelength" with
      | Some (Json.JInt n) -> Ok (Some n)
      | Some Json.Null | None -> Ok None
      | Some _ -> invalid "stage entry field \"wirelength\" must be an integer or null"
    in
    let* fault_coverage =
      match find "fault_coverage" with
      | Some (Json.JFloat v) -> Ok (Some v)
      | Some (Json.JInt n) -> Ok (Some (Float.of_int n))
      | Some Json.Null | None -> Ok None
      | Some _ -> invalid "stage entry field \"fault_coverage\" must be a number or null"
    in
    let* note =
      match find "note" with
      | Some (Json.JStr s) -> Ok s
      | _ -> invalid "stage entry field \"note\" must be a string"
    in
    let* degraded =
      match find "degraded" with
      | Some (Json.JStr s) -> Ok (Some s)
      | Some Json.Null | None -> Ok None
      | Some _ -> invalid "stage entry field \"degraded\" must be a string or null"
    in
    Ok { stage; area; delay_ps; wirelength; fault_coverage; note; degraded }
  | _ -> invalid "stage entry is not an object"

let payload_to_json cp =
  Json.JObj
    [ ("circuit", Json.JStr (Netlist.Io.to_string cp.circuit));
      ("stages", Json.JList (List.map stage_report_to_json cp.done_stages)) ]

let checkpoint_to_string cp =
  let payload = payload_to_json cp in
  Json.to_string
    (Json.JObj
       [ ("format", Json.JStr checkpoint_format);
         ("version", Json.JInt checkpoint_version);
         ("hash", Json.JStr (fnv1a64 (Json.to_string payload)));
         ("payload", payload) ])

let payload_of_json j =
  let ( let* ) = Result.bind in
  match j with
  | Json.JObj fields ->
    let find k = List.assoc_opt k fields in
    let* circuit =
      match find "circuit" with
      | Some (Json.JStr text) ->
        (match Netlist.Io.of_string_result text with
         | Ok c -> Ok c
         | Error e -> invalid "embedded circuit rejected: %s" (Eda_error.to_string e))
      | _ -> invalid "payload missing its \"circuit\" text"
    in
    let* done_stages =
      match find "stages" with
      | Some (Json.JList entries) ->
        List.fold_left
          (fun acc entry ->
            let* acc = acc in
            let* r = stage_report_of_json entry in
            Ok (r :: acc))
          (Ok []) entries
        |> Result.map List.rev
      | _ -> invalid "payload missing its \"stages\" list"
    in
    Ok { circuit; done_stages }
  | _ -> invalid "payload is not an object"

let checkpoint_of_string text =
  match Json.parse text with
  | Error msg -> invalid "not valid JSON (%s) — corrupt or truncated file" msg
  | Ok (Json.JObj fields) ->
    let find k = List.assoc_opt k fields in
    (match find "format" with
     | Some (Json.JStr f) when f = checkpoint_format ->
       (match find "version" with
        | Some (Json.JInt v) when v = checkpoint_version ->
          (match find "hash", find "payload" with
           | Some (Json.JStr h), Some payload ->
             let actual = fnv1a64 (Json.to_string payload) in
             if actual <> h then
               invalid "content hash mismatch (stored %s, computed %s) — corrupt file" h
                 actual
             else payload_of_json payload
           | _ -> invalid "missing \"hash\" or \"payload\" field")
        | Some (Json.JInt v) ->
          invalid "unsupported version %d (this build reads v%d) — stale checkpoint" v
            checkpoint_version
        | _ -> invalid "missing \"version\" field")
     | Some (Json.JStr f) -> invalid "not a flow checkpoint (format %S)" f
     | _ -> invalid "missing \"format\" marker")
  | Ok _ -> invalid "top level is not a JSON object"

let save_checkpoint path cp =
  let text = checkpoint_to_string cp in
  let tmp = path ^ ".tmp" in
  match
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc text);
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error msg ->
    Error (Eda_error.Engine_failure { engine = "checkpoint write"; msg })

let load_checkpoint path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> checkpoint_of_string text
  | exception Sys_error msg -> invalid "%s" msg

type report = {
  stages : stage_report list;  (* completed-before-resume + this run *)
  final : Circuit.t;
  checkpoint : checkpoint;  (* pass back as [resume] to continue *)
  degraded_stages : int;  (* count of stages with a degradation note *)
}

type safe_report = report

(** The end-to-end flow, one entry point: never raises on user-reachable
    failures, budgets every engine, and reports degradation honestly per
    stage instead of silently truncating — security metrics are step
    functions, so "Unknown/partial" must stay distinct from a measured
    value.

    - the input is linted before anything runs; a structurally invalid
      netlist is the only [Error] case;
    - [budget] bounds the whole flow; every stage draws a sub-budget from
      it ([stage_steps] optionally caps individual stages);
    - [pool] parallelizes the testing stage's per-fault SAT queries (the
      flow's dominant cost); stage results stay independent of the
      domain count;
    - a stage that exhausts its budget or fails internally is recorded
      with [degraded = Some reason] and the design passes through
      unchanged, so later stages still run;
    - [resume] continues from a {!checkpoint}, skipping completed stages;
    - [checkpoint_to] persists the checkpoint to disk (atomic
      temp+rename) after every completed stage, so a killed run resumes
      from its last finished stage via {!load_checkpoint};
    - [stages] restricts the run (default: all four, in order).

    Telemetry: one [flow.run] span over the run, one [flow.stage] span
    per stage (attr [stage]); a degradation is exported as a
    [flow.degraded] note on its stage span, and each stage gauges
    [flow.budget_utilization] from its sub-budget so partial results can
    be read as budget pressure. *)
let run rng ?(protect = fun (_ : string) -> false) ?budget ?pool
    ?(stage_steps = fun (_ : stage) -> None) ?(stages = all_stages) ?resume
    ?checkpoint_to circuit =
  let root = match budget with Some b -> b | None -> Budget.unlimited () in
  let start_circuit, done_reports =
    match resume with
    | Some cp -> cp.circuit, cp.done_stages
    | None -> circuit, []
  in
  match Netlist.Lint.validate start_circuit with
  | Error e -> Error e
  | Ok _ ->
    let module T = Eda_util.Telemetry in
    let completed = List.map (fun r -> r.stage) done_reports in
    let todo = List.filter (fun s -> not (List.mem s completed)) stages in
    T.with_span "flow.run"
      ~attrs:
        [ ("stages", T.Int (List.length todo));
          ("resumed", T.Bool (resume <> None)) ]
    @@ fun () ->
    let reports = ref (List.rev done_reports) in
    let current = ref start_circuit in
    let report stage ?wirelength ?fault_coverage ?degraded note =
      (match degraded with
       | Some why ->
         T.note "flow.degraded"
           ~attrs:[ ("stage", T.Str (stage_name stage)); ("reason", T.Str why) ]
       | None -> ());
      let ppa = Synth.Flow.ppa !current in
      reports :=
        { stage;
          area = ppa.Synth.Flow.area;
          delay_ps = ppa.Synth.Flow.delay_ps;
          wirelength;
          fault_coverage;
          note;
          degraded }
        :: !reports
    in
    let run_stage stage =
      T.with_span "flow.stage" ~attrs:[ ("stage", T.Str (stage_name stage)) ]
      @@ fun () ->
      let sub = Budget.sub ?steps:(stage_steps stage) root in
      let finish () =
        match Budget.utilization sub with
        | Some u -> T.gauge "flow.budget_utilization" u
        | None -> ()
      in
      match Budget.status sub with
      | Some e ->
        report stage
          ~degraded:(Printf.sprintf "skipped: %s" (Budget.describe_exhaustion e))
          "stage skipped";
        finish ()
      | None ->
        let attempt () =
          match stage with
          | Logic_synthesis ->
            let synthesized =
              if protect == Synth.Rewrite.no_protection then Synth.Flow.optimize !current
              else Synth.Flow.optimize_secure ~protect !current
            in
            current := synthesized;
            report stage "constant-prop + strash + xor-reassoc"
          | Physical_synthesis ->
            let moves = 4000 in
            let o = Physical.Placement.place rng ~moves ~budget:sub !current in
            let placement = o.Physical.Placement.placement in
            let performed = o.Physical.Placement.moves_performed in
            let degraded =
              if performed < moves then
                Some
                  (Printf.sprintf "annealing stopped after %d/%d moves (%s)" performed moves
                     (match Budget.status sub with
                      | Some e -> Budget.describe_exhaustion e
                      | None -> "budget"))
              else None
            in
            report stage
              ~wirelength:(Physical.Placement.wirelength placement)
              ?degraded "simulated-annealing placement"
          | Timing_power_verification ->
            let ni = Circuit.num_inputs !current in
            let prev = Array.make ni false in
            let next = Array.init ni (fun _ -> Rng.bool rng) in
            let transitions =
              Timing.Event_sim.cycle !current ~prev_inputs:prev ~next_inputs:next
            in
            let glitches =
              List.length (Timing.Event_sim.glitching_nodes !current transitions)
            in
            report stage
              (Printf.sprintf "event-sim: %d transitions, %d glitching nets"
                 (List.length transitions) glitches)
          | Testing ->
            let r = Dft.Atpg.run ~budget:sub ?pool !current in
            let degraded =
              match r.Dft.Atpg.exhausted with
              | Some e ->
                Some
                  (Printf.sprintf "partial ATPG: %s, %d/%d faults unprocessed"
                     (Budget.describe_exhaustion e) r.Dft.Atpg.faults_remaining
                     r.Dft.Atpg.faults_total)
              | None -> None
            in
            report stage ~fault_coverage:r.Dft.Atpg.coverage ?degraded
              (Printf.sprintf "%d patterns" (List.length r.Dft.Atpg.patterns))
        in
        (match Eda_error.guard ~engine:(stage_name stage) attempt with
         | Ok () -> ()
         | Error e ->
           (* The stage blew up; the design passes through unchanged and
              the flow keeps going with an honest note. *)
           report stage ~degraded:(Eda_error.to_string e) "stage failed");
        finish ()
    in
    let persist () =
      match checkpoint_to with
      | None -> ()
      | Some path ->
        (match save_checkpoint path { done_stages = List.rev !reports; circuit = !current } with
         | Ok () -> ()
         | Error e ->
           (* A failing save must not fail the flow; surface it on the
              trace so the operator can see the resume point is stale. *)
           T.note "flow.checkpoint_error" ~attrs:[ ("reason", T.Str (Eda_error.to_string e)) ])
    in
    List.iter
      (fun stage ->
        run_stage stage;
        persist ())
      todo;
    let stages_list = List.rev !reports in
    let degraded_stages =
      List.length (List.filter (fun r -> r.degraded <> None) stages_list)
    in
    Ok
      { stages = stages_list;
        final = !current;
        checkpoint = { done_stages = stages_list; circuit = !current };
        degraded_stages }

(** @deprecated Alias of {!run} (the unified entry point). *)
let run_safe rng ?protect ?budget ?pool ?stage_steps ?stages ?resume circuit =
  run rng ?protect ?budget ?pool ?stage_steps ?stages ?resume circuit
