(** The end-to-end EDA flow of Fig. 1, and its security-centric
    counterpart. The classical flow optimizes PPA and is provably oblivious
    to security artifacts in the design; the secure flow threads a security
    context (protection barriers, countermeasure inventory, threat-model
    checks) through every stage and re-evaluates after each one. *)

module Circuit = Netlist.Circuit
module Rng = Eda_util.Rng

type stage = Logic_synthesis | Physical_synthesis | Timing_power_verification | Testing

let stage_name = function
  | Logic_synthesis -> "logic synthesis"
  | Physical_synthesis -> "physical synthesis (place)"
  | Timing_power_verification -> "timing/power verification"
  | Testing -> "testing (ATPG)"

let all_stages = [ Logic_synthesis; Physical_synthesis; Timing_power_verification; Testing ]

type stage_report = {
  stage : stage;
  area : float;
  delay_ps : float;
  wirelength : int option;  (* after placement *)
  fault_coverage : float option;  (* after ATPG *)
  note : string;
  degraded : string option;
      (* why the stage could not fully conclude (budget exhausted, engine
         failure, ...); [None] means it completed as specified *)
}

type flow_report = {
  stages : stage_report list;
  final : Circuit.t;
}

(** Classical flow (Fig. 1): synthesize -> place -> verify timing/power ->
    generate tests. [protect] empty = fully security-oblivious. *)
let run rng ?(protect = fun (_ : string) -> false) circuit =
  let reports = ref [] in
  let report stage c ?wirelength ?fault_coverage note =
    let ppa = Synth.Flow.ppa c in
    reports :=
      { stage;
        area = ppa.Synth.Flow.area;
        delay_ps = ppa.Synth.Flow.delay_ps;
        wirelength;
        fault_coverage;
        note;
        degraded = None }
      :: !reports
  in
  (* Logic synthesis. *)
  let synthesized =
    if protect == Synth.Rewrite.no_protection then Synth.Flow.optimize circuit
    else Synth.Flow.optimize_secure ~protect circuit
  in
  report Logic_synthesis synthesized "constant-prop + strash + xor-reassoc";
  (* Physical synthesis: placement; wirelength is the PPA artifact. *)
  let placement = Physical.Placement.place rng ~moves:4000 synthesized in
  report Physical_synthesis synthesized
    ~wirelength:(Physical.Placement.wirelength placement)
    "simulated-annealing placement";
  (* Timing/power verification: STA recorded via ppa; note glitch count on
     a random transition as the power-verification artifact. *)
  let ni = Circuit.num_inputs synthesized in
  let prev = Array.make ni false in
  let next = Array.init ni (fun _ -> Rng.bool rng) in
  let transitions = Timing.Event_sim.cycle synthesized ~prev_inputs:prev ~next_inputs:next in
  let glitches = List.length (Timing.Event_sim.glitching_nodes synthesized transitions) in
  report Timing_power_verification synthesized
    (Printf.sprintf "event-sim: %d transitions, %d glitching nets"
       (List.length transitions) glitches);
  (* Testing: ATPG on the combinational network. *)
  let `Patterns patterns, `Coverage coverage, `Untestable _ = Dft.Atpg.run synthesized in
  report Testing synthesized ~fault_coverage:coverage
    (Printf.sprintf "%d patterns" (List.length patterns));
  { stages = List.rev !reports; final = synthesized }

(* --- Robust flow: budgets, degradation notes, checkpoint/resume -------- *)

module Budget = Eda_util.Budget
module Eda_error = Eda_util.Eda_error

(** Resume token: everything the flow has concluded so far. Serializable
    state is deliberately small — completed stage reports plus the circuit
    they apply to. *)
type checkpoint = {
  done_stages : stage_report list;  (* in flow order *)
  circuit : Circuit.t;  (* design state after the last completed stage *)
}

let checkpoint_start circuit = { done_stages = []; circuit }

type safe_report = {
  stages : stage_report list;  (* completed-before-resume + this run *)
  final : Circuit.t;
  checkpoint : checkpoint;  (* pass back as [resume] to continue *)
  degraded_stages : int;  (* count of stages with a degradation note *)
}

(** The security-closure counterpart of [run]: never raises on
    user-reachable failures, budgets every engine, and reports degradation
    honestly per stage instead of silently truncating — security metrics
    are step functions, so "Unknown/partial" must stay distinct from a
    measured value.

    - the input is linted before anything runs; a structurally invalid
      netlist is the only [Error] case;
    - [budget] bounds the whole flow; every stage draws a sub-budget from
      it ([stage_steps] optionally caps individual stages);
    - a stage that exhausts its budget or fails internally is recorded
      with [degraded = Some reason] and the design passes through
      unchanged, so later stages still run;
    - [resume] continues from a {!checkpoint}, skipping completed stages;
    - [stages] restricts the run (default: all four, in order).

    Telemetry: one [flow.run_safe] span over the run, one [flow.stage]
    span per stage (attr [stage]); a degradation is exported as a
    [flow.degraded] note on its stage span, and each stage gauges
    [flow.budget_utilization] from its sub-budget so partial results can
    be read as budget pressure. *)
let run_safe rng ?(protect = fun (_ : string) -> false) ?budget
    ?(stage_steps = fun (_ : stage) -> None) ?(stages = all_stages) ?resume circuit =
  let root = match budget with Some b -> b | None -> Budget.unlimited () in
  let start_circuit, done_reports =
    match resume with
    | Some cp -> cp.circuit, cp.done_stages
    | None -> circuit, []
  in
  match Netlist.Lint.validate start_circuit with
  | Error e -> Error e
  | Ok _ ->
    let module T = Eda_util.Telemetry in
    let completed = List.map (fun r -> r.stage) done_reports in
    let todo = List.filter (fun s -> not (List.mem s completed)) stages in
    T.with_span "flow.run_safe"
      ~attrs:
        [ ("stages", T.Int (List.length todo));
          ("resumed", T.Bool (resume <> None)) ]
    @@ fun () ->
    let reports = ref (List.rev done_reports) in
    let current = ref start_circuit in
    let report stage ?wirelength ?fault_coverage ?degraded note =
      (match degraded with
       | Some why ->
         T.note "flow.degraded"
           ~attrs:[ ("stage", T.Str (stage_name stage)); ("reason", T.Str why) ]
       | None -> ());
      let ppa = Synth.Flow.ppa !current in
      reports :=
        { stage;
          area = ppa.Synth.Flow.area;
          delay_ps = ppa.Synth.Flow.delay_ps;
          wirelength;
          fault_coverage;
          note;
          degraded }
        :: !reports
    in
    let run_stage stage =
      T.with_span "flow.stage" ~attrs:[ ("stage", T.Str (stage_name stage)) ]
      @@ fun () ->
      let sub = Budget.sub ?steps:(stage_steps stage) root in
      let finish () =
        match Budget.utilization sub with
        | Some u -> T.gauge "flow.budget_utilization" u
        | None -> ()
      in
      match Budget.status sub with
      | Some e ->
        report stage
          ~degraded:(Printf.sprintf "skipped: %s" (Budget.describe_exhaustion e))
          "stage skipped";
        finish ()
      | None ->
        let attempt () =
          match stage with
          | Logic_synthesis ->
            let synthesized =
              if protect == Synth.Rewrite.no_protection then Synth.Flow.optimize !current
              else Synth.Flow.optimize_secure ~protect !current
            in
            current := synthesized;
            report stage "constant-prop + strash + xor-reassoc"
          | Physical_synthesis ->
            let moves = 4000 in
            let placement, performed =
              Physical.Placement.place_budgeted rng ~moves ~budget:sub !current
            in
            let degraded =
              if performed < moves then
                Some
                  (Printf.sprintf "annealing stopped after %d/%d moves (%s)" performed moves
                     (match Budget.status sub with
                      | Some e -> Budget.describe_exhaustion e
                      | None -> "budget"))
              else None
            in
            report stage
              ~wirelength:(Physical.Placement.wirelength placement)
              ?degraded "simulated-annealing placement"
          | Timing_power_verification ->
            let ni = Circuit.num_inputs !current in
            let prev = Array.make ni false in
            let next = Array.init ni (fun _ -> Rng.bool rng) in
            let transitions =
              Timing.Event_sim.cycle !current ~prev_inputs:prev ~next_inputs:next
            in
            let glitches =
              List.length (Timing.Event_sim.glitching_nodes !current transitions)
            in
            report stage
              (Printf.sprintf "event-sim: %d transitions, %d glitching nets"
                 (List.length transitions) glitches)
          | Testing ->
            let r = Dft.Atpg.run_report ~budget:sub !current in
            let degraded =
              match r.Dft.Atpg.exhausted with
              | Some e ->
                Some
                  (Printf.sprintf "partial ATPG: %s, %d/%d faults unprocessed"
                     (Budget.describe_exhaustion e) r.Dft.Atpg.faults_remaining
                     r.Dft.Atpg.faults_total)
              | None -> None
            in
            report stage ~fault_coverage:r.Dft.Atpg.coverage ?degraded
              (Printf.sprintf "%d patterns" (List.length r.Dft.Atpg.patterns))
        in
        (match Eda_error.guard ~engine:(stage_name stage) attempt with
         | Ok () -> ()
         | Error e ->
           (* The stage blew up; the design passes through unchanged and
              the flow keeps going with an honest note. *)
           report stage ~degraded:(Eda_error.to_string e) "stage failed");
        finish ()
    in
    List.iter run_stage todo;
    let stages_list = List.rev !reports in
    let degraded_stages =
      List.length (List.filter (fun r -> r.degraded <> None) stages_list)
    in
    Ok
      { stages = stages_list;
        final = !current;
        checkpoint = { done_stages = stages_list; circuit = !current };
        degraded_stages }
