(** The end-to-end EDA flow of Fig. 1 (synthesis -> placement ->
    timing/power verification -> testing) behind one entry point with
    optional capabilities: [?budget] bounds every stage, [?pool]
    parallelizes the testing stage, [?resume] continues a checkpointed
    run, telemetry is ambient. With [protect] unset the flow is the
    security-oblivious classical PPA flow the paper critiques. *)

type stage = Logic_synthesis | Physical_synthesis | Timing_power_verification | Testing

val stage_name : stage -> string

(** The four stages in flow order. *)
val all_stages : stage list

type stage_report = {
  stage : stage;
  area : float;
  delay_ps : float;
  wirelength : int option;  (** after placement *)
  fault_coverage : float option;  (** after ATPG *)
  note : string;
  degraded : string option;
      (** why the stage could not fully conclude (budget exhausted,
          engine failure, ...); [None] means it completed as specified *)
}

(** Resume token: completed stage reports plus the circuit they apply
    to. *)
type checkpoint = {
  done_stages : stage_report list;  (** in flow order *)
  circuit : Netlist.Circuit.t;
}

(** A checkpoint from which nothing has run yet. *)
val checkpoint_start : Netlist.Circuit.t -> checkpoint

(** {2 On-disk checkpoints}

    A checkpoint serializes to one versioned JSON object carrying the
    bench text of the circuit, the completed stage reports, and an
    FNV-1a content hash of the payload. {!save_checkpoint} writes
    atomically (temp file in the target directory, then rename), so a
    process killed mid-write never leaves a torn file — the previous
    complete checkpoint survives. {!load_checkpoint} validates the
    format marker, the version and the content hash, and rejects
    corrupt, truncated or stale (wrong-version) files with a structured
    [Invalid_input] error instead of raising. *)

val checkpoint_to_string : checkpoint -> string

val checkpoint_of_string : string -> (checkpoint, Eda_util.Eda_error.t) result

val save_checkpoint : string -> checkpoint -> (unit, Eda_util.Eda_error.t) result

val load_checkpoint : string -> (checkpoint, Eda_util.Eda_error.t) result

type report = {
  stages : stage_report list;  (** completed-before-resume + this run *)
  final : Netlist.Circuit.t;
  checkpoint : checkpoint;  (** pass back as [resume] to continue *)
  degraded_stages : int;  (** count of stages with a degradation note *)
}

(** @deprecated Alias of {!report}. *)
type safe_report = report

(** Run the flow. Never raises on user-reachable failures: a
    structurally invalid input netlist is the only [Error]; a stage that
    exhausts its budget or fails internally is recorded with
    [degraded = Some reason] and the design passes through unchanged so
    later stages still run. [stage_steps] caps individual stages within
    [budget]; [stages] restricts the run (default: all four, in order);
    [pool] parallelizes the per-fault ATPG queries without changing any
    stage result; [checkpoint_to] saves the checkpoint to disk (atomic
    temp+rename) after every completed stage so a killed run resumes
    from its last finished stage. *)
val run :
  Eda_util.Rng.t ->
  ?protect:(string -> bool) ->
  ?budget:Eda_util.Budget.t ->
  ?pool:Eda_util.Pool.t ->
  ?stage_steps:(stage -> int option) ->
  ?stages:stage list ->
  ?resume:checkpoint ->
  ?checkpoint_to:string ->
  Netlist.Circuit.t ->
  (report, Eda_util.Eda_error.t) result

(** @deprecated Alias of {!run} (the unified entry point). *)
val run_safe :
  Eda_util.Rng.t ->
  ?protect:(string -> bool) ->
  ?budget:Eda_util.Budget.t ->
  ?pool:Eda_util.Pool.t ->
  ?stage_steps:(stage -> int option) ->
  ?stages:stage list ->
  ?resume:checkpoint ->
  Netlist.Circuit.t ->
  (report, Eda_util.Eda_error.t) result
