(** Table II of the paper as an executable registry: every populated
    (design stage x threat vector) cell maps to a scheme implemented in
    this toolkit together with a runner that produces the cell's native
    metric on a reference workload. The Table II benchmark iterates this
    list; nothing in the printed table is hand-written prose. *)

module Rng = Eda_util.Rng

type stage =
  | High_level_synthesis
  | Logic_synthesis
  | Physical_synthesis
  | Functional_validation
  | Timing_power_verification
  | Testing

let stage_name = function
  | High_level_synthesis -> "High-level synthesis"
  | Logic_synthesis -> "Logic synthesis"
  | Physical_synthesis -> "Physical synthesis"
  | Functional_validation -> "Functional validation"
  | Timing_power_verification -> "Timing/power verification"
  | Testing -> "Testing (ATPG/DFT/BIST)"

let all_stages =
  [ High_level_synthesis; Logic_synthesis; Physical_synthesis;
    Functional_validation; Timing_power_verification; Testing ]

type cell = {
  stage : stage;
  threat : Threat_model.vector;
  scheme : string;  (* the scheme name as in the paper's table *)
  modules : string;  (* implementing toolkit modules *)
  run : Rng.t -> string;  (* compute and render the cell's metric *)
}

(* --- cell runners ------------------------------------------------------ *)

let run_iflow rng =
  let c = Crypto.Sbox_circuit.aes_round_datapath () in
  let secret = List.init 8 (fun i -> 8 + i) in  (* key byte inputs *)
  let leak = Iflow.Qif.average_shannon_leakage rng c ~secret ~samples:4 in
  Printf.sprintf "QIF: S-box output reveals %.2f of 8 secret bits" leak

let run_masking rng =
  let masked = Sidechannel.Leakage.synthesize_masked Sidechannel.Leakage.Security_aware in
  let r = Sidechannel.Leakage.tvla_campaign rng masked ~traces_per_class:1500 ~noise_sigma:0.3 in
  Printf.sprintf "ISW masking: TVLA max|t| = %.2f (pass < 4.5)" r.Sidechannel.Tvla.max_abs_t

let run_register_flush _rng =
  let graph =
    { Hls.Dataflow.ops =
        [ { Hls.Dataflow.id = 0; kind = Hls.Dataflow.Xor; args = [ -1; -2 ]; sensitivity = Hls.Dataflow.Secret };
          { Hls.Dataflow.id = 1; kind = Hls.Dataflow.Add; args = [ 0; -3 ]; sensitivity = Hls.Dataflow.Secret };
          { Hls.Dataflow.id = 2; kind = Hls.Dataflow.And; args = [ -3; -4 ]; sensitivity = Hls.Dataflow.Public };
          { Hls.Dataflow.id = 3; kind = Hls.Dataflow.Add; args = [ 2; -4 ]; sensitivity = Hls.Dataflow.Public };
          { Hls.Dataflow.id = 4; kind = Hls.Dataflow.Xor; args = [ 1; 3 ]; sensitivity = Hls.Dataflow.Secret } ];
      width = 8 }
  in
  let sched = Hls.Dataflow.schedule ~units:2 graph in
  let exposure = Hls.Dataflow.exposure_without_flush graph sched in
  Printf.sprintf "register flushing removes %d secret register-cycles" exposure

let run_error_detect rng =
  let prot = Fault.Countermeasure.duplicate_protect (Netlist.Generators.ripple_adder 3) in
  let faults = Fault.Model.all_stuck_at_faults prot.Fault.Countermeasure.circuit in
  let d, e, s = Fault.Countermeasure.validate rng prot ~faults ~patterns:32 in
  Printf.sprintf "duplication+compare: %d detected / %d escaped / %d silent" d e s

let run_infective rng =
  let key = Crypto.Aes.random_key rng in
  let ks = Crypto.Aes.expand_key key in
  let recovered, pairs = Fault.Dfa.recover_with_infection rng ks ~ct_pos:0 ~max_pairs:30 in
  let correct = recovered = Some ks.(10).(0) in
  Printf.sprintf "infective vs DFA: key %s after %d faulty pairs"
    (if correct then "RECOVERED (broken)" else "not recovered (defended)")
    pairs

let run_metering rng =
  let p = Puf.Arbiter.manufacture rng ~stages:64 () in
  let q = Puf.Arbiter.quality rng p in
  Printf.sprintf "PUF metering: uniformity %.2f, reliability %.3f"
    q.Puf.Arbiter.uniformity q.Puf.Arbiter.reliability

let run_bisa rng =
  let golden = Trojan.Bisa.fill ~total_sites:1000 ~design_cells:800 in
  let rate = Trojan.Bisa.detection_rate rng ~golden ~max_trojan_cells:20 ~trials:200 in
  Printf.sprintf "BISA self-authentication: %.0f%% insertion detection" (100.0 *. rate)

let run_gate_protection rng =
  let unaware = Sidechannel.Leakage.synthesize_masked Sidechannel.Leakage.Security_unaware in
  let wire, t = Sidechannel.Leakage.leakiest_wire rng unaware ~samples:1500 in
  Printf.sprintf "unaware resynthesis leaks: wire %s at |t| = %.1f" wire t

let run_fault_analysis rng =
  let c = Netlist.Generators.c17 () in
  let faults = Fault.Model.all_stuck_at_faults c in
  let pats = List.init 8 (fun _ -> Array.init 5 (fun _ -> Rng.bool rng)) in
  let cov = Fault.Model.coverage c ~faults ~patterns:pats in
  Printf.sprintf "automatic fault analysis: %.0f%% of stuck-at faults excited by 8 random patterns" (100.0 *. cov)

let run_camouflage rng =
  let c = Netlist.Generators.c17 () in
  let camo = Camo.Camouflage.apply rng ~cells:4 c in
  let iters, success = Camo.Camouflage.decamouflage camo in
  Printf.sprintf "camouflaging (4 cells): de-camouflaged in %d DIPs (success=%b)" iters success

let run_locking rng =
  let source = Netlist.Generators.alu 4 in
  let locked = Locking.Lock.epic rng ~key_bits:16 source in
  let result = Locking.Sat_attack.run ~oracle:(Locking.Sat_attack.oracle_of_circuit source) locked in
  Printf.sprintf "EPIC 16-bit: SAT attack key recovery in %d DIPs" result.Locking.Sat_attack.iterations

let run_security_monitor rng =
  let clean = Netlist.Generators.alu 4 in
  let troj = Trojan.Insert.insert rng ~trigger_width:3 ~patterns:4096 clean in
  let prob = Trojan.Insert.trigger_probability rng troj ~patterns:20000 in
  Printf.sprintf "monitor insertion point: trigger fires with p = %.5f" prob

let run_tvla rng =
  let unaware = Sidechannel.Leakage.synthesize_masked Sidechannel.Leakage.Security_unaware in
  let r = Sidechannel.Leakage.tvla_campaign rng unaware ~traces_per_class:1500 ~noise_sigma:0.3 in
  Printf.sprintf "TVLA (layout-level model): max|t| = %.2f (threshold 4.5)" r.Sidechannel.Tvla.max_abs_t

let run_sensors rng =
  let shift = Trojan.Detect.ro_sensor_shift rng ~stages:11 ~sigma:0.03 ~extra_load_ps:8.0 in
  Printf.sprintf "RO sensor: Trojan load shifts period by %.1f sigma" shift

let run_split rng =
  let c = Netlist.Generators.alu 4 in
  let placement = (Physical.Placement.place rng ~moves:6000 c).Physical.Placement.placement in
  let split = Splitmfg.Split.split_by_length ~feol_threshold:2 placement in
  let rec0 = Splitmfg.Split.netlist_recovery_rate split in
  let lifted = Splitmfg.Split.lift_wires ~fraction:1.0 split in
  let rec1 = Splitmfg.Split.netlist_recovery_rate lifted in
  let perturbed = Physical.Placement.perturb rng ~lambda:0.5 ~moves:6000 placement in
  let rec2 =
    Splitmfg.Split.netlist_recovery_rate
      (Splitmfg.Split.lift_wires ~fraction:1.0
         (Splitmfg.Split.split_by_length ~feol_threshold:2 perturbed))
  in
  Printf.sprintf "split mfg netlist recovery: %.2f naive -> %.2f lifted -> %.2f lifted+perturbed"
    rec0 rec1 rec2

let run_entropy rng =
  let weak = Puf.Arbiter.manufacture rng ~variation:0.3 ~noise_sigma:0.15 ~stages:64 () in
  let strong = Puf.Arbiter.manufacture rng ~variation:2.0 ~noise_sigma:0.15 ~stages:64 () in
  let qw = Puf.Arbiter.quality rng weak and qs = Puf.Arbiter.quality rng strong in
  Printf.sprintf "asymmetric layout: PUF reliability %.3f -> %.3f"
    qw.Puf.Arbiter.reliability qs.Puf.Arbiter.reliability

let run_covert rng =
  let success = Iflow.Covert.attack_success rng ~sets:16 ~trials:300 in
  let defended = Iflow.Covert.attack_success_randomized rng ~sets:16 ~trials:300 in
  Printf.sprintf "prime+probe: %.0f%% recovery, %.0f%% with randomized mapping"
    (100.0 *. success) (100.0 *. defended)

let run_validation_error_detect rng =
  let prot = Fault.Countermeasure.parity_protect (Netlist.Generators.ripple_adder 3) in
  let faults = Fault.Model.all_stuck_at_faults prot.Fault.Countermeasure.circuit in
  let d, e, s = Fault.Countermeasure.validate rng prot ~faults ~patterns:32 in
  Printf.sprintf "parity validation finds gaps: %d detected / %d ESCAPED / %d silent" d e s

let run_lock_correctness rng =
  let source = Netlist.Generators.ripple_adder 4 in
  let locked = Locking.Lock.epic rng ~key_bits:8 source in
  let ok = Locking.Lock.verify_correct locked ~original:source = None in
  Printf.sprintf "locked-logic equivalence under correct key: %b" ok

let run_proof_carrying rng =
  let c = Crypto.Sbox_circuit.aes_round_datapath () in
  let secret = List.init 8 (fun i -> 8 + i) in
  let taint = Iflow.Taint.structural c ~sources:(List.map (fun i -> i) secret) in
  let outs = Netlist.Circuit.output_ids c in
  let tainted_outs = Array.for_all (fun o -> taint.(o)) outs in
  ignore rng;
  Printf.sprintf "IFT property check: key taint reaches outputs = %b (as specified)" tainted_outs

let run_presilicon_power rng =
  let masked = Sidechannel.Leakage.synthesize_masked Sidechannel.Leakage.Security_aware in
  let cfg = { Power.Model.time_bins = 12; bin_width_ps = 40.0; noise_sigma = 0.2 } in
  let r = Sidechannel.Leakage.tvla_campaign_glitch rng masked ~traces_per_class:1500 ~config:cfg in
  Printf.sprintf "glitch-aware pre-silicon TVLA on masked logic: max|t| = %.2f" r.Sidechannel.Tvla.max_abs_t

let run_fault_modeling rng =
  let c = Netlist.Generators.c17 () in
  let flips = List.init 6 (fun k -> Fault.Model.Bit_flip { node = 5 + k }) in
  let pats = List.init 16 (fun _ -> Array.init 5 (fun _ -> Rng.bool rng)) in
  let affected =
    List.length
      (List.filter
         (fun f -> List.exists (fun p -> Fault.Model.detects c ~fault:f p) pats)
         flips)
  in
  Printf.sprintf "electrical fault modelling: %d/6 transient sites observable" affected

let run_puf_validation rng =
  let u = Puf.Arbiter.uniqueness rng ~chips:12 ~stages:64 ~challenges:128 in
  Printf.sprintf "PUF sign-off: inter-chip uniqueness %.3f (ideal 0.5)" u

let run_fingerprint rng =
  let c = Netlist.Generators.alu 4 in
  let tapped = [ 20; 25; 30 ] in
  let tp, fp =
    Trojan.Detect.fingerprint_detection rng ~chips:40 ~sigma:0.03 ~extra_load_ps:25.0
      ~threshold_sigmas:3.0 c ~tapped
  in
  Printf.sprintf "path-delay fingerprint: TPR %.0f%%, FPR %.0f%%" (100.0 *. tp) (100.0 *. fp)

let run_scan_attack _rng =
  let plain = Dft.Scan_attack.device () in
  let secure = Dft.Scan_attack.device ~protection:(Dft.Scan.Secure (Array.init 8 (fun k -> k mod 2 = 0))) () in
  let sp = Dft.Scan_attack.success_rate plain in
  let ss = Dft.Scan_attack.success_rate secure in
  Printf.sprintf "scan attack key recovery: %.0f%% plain, %.0f%% secure scan" (100.0 *. sp) (100.0 *. ss)

let run_dfx rng =
  let nat, att = Fault.Discriminate.accuracy rng Fault.Discriminate.default_config ~trials:300 in
  Printf.sprintf "DFX fault discrimination: natural %.0f%%, malicious %.0f%%" (100.0 *. nat) (100.0 *. att)

let run_ip_dfx rng =
  let source = Netlist.Generators.comparator 4 in
  let locked = Locking.Sfll.lock rng ~h:2 source in
  let ok = Locking.Lock.verify_correct locked ~original:source = None in
  Printf.sprintf "DFX-managed key (SFLL-HD h=2): restore correct = %b" ok

let run_mero rng =
  let clean = Netlist.Generators.alu 4 in
  let troj = Trojan.Insert.insert rng ~trigger_width:3 ~patterns:4096 clean in
  let rare = Trojan.Insert.rare_conditions rng ~patterns:4096 ~count:12 clean in
  let pats = Trojan.Detect.mero_patterns rng ~n_detect:8 ~rare ~max_patterns:8000 clean in
  let hit = Trojan.Detect.functional_detect clean troj pats in
  Printf.sprintf "MERO N=8: %d patterns, Trojan exposed = %b" (List.length pats) hit

let run_wddl rng =
  let dual = Sidechannel.Wddl.transform (Sidechannel.Leakage.private_and_source ()) in
  let r = Sidechannel.Wddl.tvla_campaign rng dual ~traces_per_class:2000 ~noise_sigma:0.3 in
  let counts =
    List.map
      (fun (a, b) -> Sidechannel.Wddl.rising_transitions dual ~values:[ ("a", a); ("b", b) ])
      [ (false, false); (true, true) ]
  in
  Printf.sprintf "WDDL hiding: constant %s transitions/cycle, TVLA max|t| = %.2f"
    (String.concat "=" (List.map string_of_int counts))
    r.Sidechannel.Tvla.max_abs_t

let run_watermark rng =
  let src = Netlist.Generators.alu 4 in
  let mark = Locking.Watermark.embed_functional rng ~bits:16 src in
  let resynth = Synth.Flow.optimize mark.Locking.Watermark.f_circuit in
  Printf.sprintf
    "functional watermark: %d/16 bits after hostile resynthesis (false-claim p = 2^-16)"
    (Locking.Watermark.verify_functional mark resynth)

let run_active_metering rng =
  let src = Netlist.Generators.alu 4 in
  let metered = Locking.Metering.meter rng ~state_bits:8 src in
  Printf.sprintf "active metering: owner activates arbitrary chip ID = %b"
    (Locking.Metering.activation_works rng metered ~original:src)

let run_shield rng =
  let c = Netlist.Generators.alu 4 in
  let p = (Physical.Placement.place rng ~moves:3000 c).Physical.Placement.placement in
  let sh =
    Physical.Shield.build ~cols:p.Physical.Placement.cols ~rows:p.Physical.Placement.rows
      ~pitch:2 ~offset:0
  in
  Printf.sprintf "probing shield (pitch 2): %.0f%% coverage at r=1, %.0f%% track overhead"
    (100.0 *. Physical.Shield.coverage sh ~r:1)
    (100.0 *. Physical.Shield.track_overhead sh)

let run_ir_drop rng =
  let c = Netlist.Generators.alu 4 in
  let p = (Physical.Placement.place rng ~moves:3000 c).Physical.Placement.placement in
  let `Bound b, `Worst_simulated w, `Meets_budget _, `Activity_model_sound sound =
    Physical.Ir_drop.verify rng ~vectors:10 p ~budget:10.0
  in
  Printf.sprintf "IR-drop: vectorless bound %.3f vs simulated %.3f (activity model sound = %b)"
    b w sound

let run_upec _rng =
  let c = Netlist.Circuit.create () in
  let x = Netlist.Circuit.add_input ~name:"x" c in
  let secret = Netlist.Circuit.add_dff ~name:"secret" c ~d:0 in
  Netlist.Circuit.connect_dff c secret ~d:secret;
  Netlist.Circuit.set_output c "y"
    (Netlist.Circuit.add_gate c Netlist.Gate.And [ x; secret ]);
  let leak = Sat.Unroll.two_safety_leak c ~frames:2 ~secret_state:[ 0 ] <> None in
  Printf.sprintf "UPEC-style 2-safety BMC: architectural secret leak found = %b" leak

let run_second_order rng =
  let masked = Sidechannel.Isw.transform ~shares:2 (Sidechannel.Leakage.private_and_source ()) in
  let collect cls =
    let a, b =
      match cls with
      | `Fixed -> true, true
      | `Random -> Rng.bool rng, Rng.bool rng
    in
    [| Sidechannel.Leakage.hw_sample rng masked ~noise_sigma:0.1 ~a ~b |]
  in
  let o1, o2 = Sidechannel.Tvla.campaign_orders ~traces_per_class:4000 ~collect in
  Printf.sprintf
    "2-share masking: 1st-order |t| = %.1f (passes), 2nd-order |t| = %.1f (FAILS: order matters)"
    o1.Sidechannel.Tvla.max_abs_t o2.Sidechannel.Tvla.max_abs_t

let run_glitch_sensor _rng =
  let adder = Netlist.Generators.ripple_adder 8 in
  let prev = Array.make 17 false in
  let next = Array.init 17 (fun i -> i < 8 || i = 16) in
  let sensor = Fault.Glitch_attack.add_sensor ~margin_ps:60.0 adder in
  let silent, detected, clean =
    Fault.Glitch_attack.sweep_with_sensor sensor
      ~periods:[ 1000.0; 800.0; 700.0; 600.0; 500.0; 400.0 ]
      ~prev_inputs:prev ~next_inputs:next
  in
  Printf.sprintf
    "hidden-delay-fault sensor: clock-glitch sweep -> %d silent / %d detected / %d clean"
    silent detected clean

let run_sensitization rng =
  (* Sparse keys on a small circuit sensitize cleanly; dense keys on the
     same circuit interfere and leave bits unresolved. *)
  let src = Netlist.Generators.c17 () in
  let sparse = Locking.Lock.epic rng ~key_bits:2 src in
  let dense = Locking.Lock.epic rng ~key_bits:6 src in
  let oracle = Locking.Sat_attack.oracle_of_circuit src in
  let acc l = Locking.Sensitization.accuracy (Locking.Sensitization.run ~oracle l) l in
  Printf.sprintf
    "key sensitization [23]: %.0f%% of 2 sparse keys vs %.0f%% of 6 interfering keys"
    (100.0 *. acc sparse) (100.0 *. acc dense)

let run_constrained_synth _rng =
  let tt = Logic.Truth_table.create 4 (fun m -> m mod 3 = 0) in
  let c = Camo.Constrained.synthesize tt in
  Printf.sprintf
    "camouflage-constrained synthesis: 100%% camouflageable = %b, area overhead %.1fx"
    (Camo.Constrained.fully_camouflageable c)
    (Camo.Constrained.constraint_overhead tt)

let run_approx_qif rng =
  let c = Netlist.Generators.ripple_adder 8 in
  let secret = List.init 16 (fun i -> i) in
  let pub = Array.make 17 false in
  let leak = Iflow.Qif.approx_shannon_leakage rng c ~secret ~public_values:pub ~samples:6000 in
  Printf.sprintf
    "approximate QIF [49]: 16-bit secret (exact infeasible) leaks ~%.1f bits through the sum"
    leak

let run_formal_validation _rng =
  let prot = Fault.Countermeasure.duplicate_protect (Netlist.Generators.ripple_adder 2) in
  let `Proven proven, `Escapes escapes, `Harmless harmless = Fault.Formal.audit prot in
  Printf.sprintf
    "formal (SAT) audit of duplication: %d proven detected, %d harmless, %d ESCAPES (all common-mode input faults)"
    proven harmless (List.length escapes)

let run_redundancy _rng =
  let c = Netlist.Circuit.create () in
  let a = Netlist.Circuit.add_input ~name:"a" c in
  let b = Netlist.Circuit.add_input ~name:"b" c in
  let g = Netlist.Circuit.add_gate c Netlist.Gate.And [ a; b ] in
  let y = Netlist.Circuit.add_gate c Netlist.Gate.Or [ a; g ] in
  Netlist.Circuit.set_output c "y" y;
  let before = (Dft.Atpg.run c).Dft.Atpg.coverage in
  let cleaned = Dft.Atpg.remove_redundancy c in
  let after = (Dft.Atpg.run cleaned).Dft.Atpg.coverage in
  Printf.sprintf
    "ATPG-driven redundancy removal: coverage %.0f%% -> %.0f%% (redundancy is where sloppy Trojans hide)"
    (100.0 *. before) (100.0 *. after)

let run_dom rng =
  let dom = Sidechannel.Dom.transform ~shares:2 (Sidechannel.Leakage.private_and_source ()) in
  let ok =
    List.for_all
      (fun (a, b) ->
        Sidechannel.Dom.eval rng dom ~values:[ ("a", a); ("b", b) ] = [ ("y", a && b) ])
      [ (false, false); (false, true); (true, false); (true, true) ]
  in
  let c = Sidechannel.Dom.cost dom in
  Printf.sprintf
    "DOM [5]: correct=%b, %d random bit(s), %d registers (glitch barrier), latency %d cycle(s)"
    ok c.Sidechannel.Dom.randoms c.Sidechannel.Dom.registers c.Sidechannel.Dom.latency

(* --- the table --------------------------------------------------------- *)

let table =
  [ { stage = High_level_synthesis; threat = Threat_model.Side_channel;
      scheme = "Information-flow tracking [14]; masking [5]; register flushing";
      modules = "Iflow.Qif, Sidechannel.Isw, Hls.Dataflow"; run = run_iflow };
    { stage = High_level_synthesis; threat = Threat_model.Side_channel;
      scheme = "Integration of masking [5]";
      modules = "Sidechannel.Isw"; run = run_masking };
    { stage = High_level_synthesis; threat = Threat_model.Side_channel;
      scheme = "Domain-oriented masking [5] (register stage)";
      modules = "Sidechannel.Dom"; run = run_dom };
    { stage = High_level_synthesis; threat = Threat_model.Side_channel;
      scheme = "Register flushing";
      modules = "Hls.Dataflow"; run = run_register_flush };
    { stage = High_level_synthesis; threat = Threat_model.Side_channel;
      scheme = "Scalable approximation of QIF [49]";
      modules = "Iflow.Qif.approx_shannon_leakage"; run = run_approx_qif };
    { stage = High_level_synthesis; threat = Threat_model.Fault_injection;
      scheme = "Error-detecting architectures [10]";
      modules = "Fault.Countermeasure"; run = run_error_detect };
    { stage = High_level_synthesis; threat = Threat_model.Fault_injection;
      scheme = "Infective countermeasures [18]";
      modules = "Fault.Dfa, Fault.Countermeasure"; run = run_infective };
    { stage = High_level_synthesis; threat = Threat_model.Piracy_counterfeiting;
      scheme = "Metering IP incl. PUFs [19]";
      modules = "Puf.Arbiter"; run = run_metering };
    { stage = High_level_synthesis; threat = Threat_model.Piracy_counterfeiting;
      scheme = "Active hardware metering [19]";
      modules = "Locking.Metering"; run = run_active_metering };
    { stage = High_level_synthesis; threat = Threat_model.Piracy_counterfeiting;
      scheme = "Constraint-based watermarking [12]";
      modules = "Locking.Watermark"; run = run_watermark };
    { stage = High_level_synthesis; threat = Threat_model.Trojans;
      scheme = "Self-authentication [20]";
      modules = "Trojan.Bisa"; run = run_bisa };
    { stage = Logic_synthesis; threat = Threat_model.Side_channel;
      scheme = "Gate-level protections [21]; identification of leaking gates";
      modules = "Sidechannel.Leakage, Synth.Xor_reassoc"; run = run_gate_protection };
    { stage = Logic_synthesis; threat = Threat_model.Side_channel;
      scheme = "WDDL dual-rail hiding [21]";
      modules = "Sidechannel.Wddl"; run = run_wddl };
    { stage = Logic_synthesis; threat = Threat_model.Fault_injection;
      scheme = "Automatic fault analysis [22]";
      modules = "Fault.Model"; run = run_fault_analysis };
    { stage = Logic_synthesis; threat = Threat_model.Piracy_counterfeiting;
      scheme = "Camouflaging [23]";
      modules = "Camo.Camouflage"; run = run_camouflage };
    { stage = Logic_synthesis; threat = Threat_model.Piracy_counterfeiting;
      scheme = "Camouflage-constrained synthesis (Sec. III-B)";
      modules = "Camo.Constrained, Logic.Qmc"; run = run_constrained_synth };
    { stage = Logic_synthesis; threat = Threat_model.Piracy_counterfeiting;
      scheme = "Key-sensitization analysis of obfuscation [23]";
      modules = "Locking.Sensitization"; run = run_sensitization };
    { stage = Logic_synthesis; threat = Threat_model.Piracy_counterfeiting;
      scheme = "Logic locking [24]";
      modules = "Locking.Lock, Locking.Sat_attack"; run = run_locking };
    { stage = Logic_synthesis; threat = Threat_model.Trojans;
      scheme = "Automatic insertion of security monitors [25]";
      modules = "Trojan.Insert (rare-net analysis)"; run = run_security_monitor };
    { stage = Physical_synthesis; threat = Threat_model.Side_channel;
      scheme = "Low-level leakage analysis (TVLA [16])";
      modules = "Sidechannel.Tvla, Power.Model"; run = run_tvla };
    { stage = Physical_synthesis; threat = Threat_model.Fault_injection;
      scheme = "Embedding sensors [9], [26]; shielding [29]";
      modules = "Trojan.Detect (RO sensors)"; run = run_sensors };
    { stage = Physical_synthesis; threat = Threat_model.Fault_injection;
      scheme = "Shielding against optical/probing attacks [29]";
      modules = "Physical.Shield"; run = run_shield };
    { stage = Physical_synthesis; threat = Threat_model.Fault_injection;
      scheme = "Hidden-delay-fault sensor [9]";
      modules = "Fault.Glitch_attack"; run = run_glitch_sensor };
    { stage = Physical_synthesis; threat = Threat_model.Piracy_counterfeiting;
      scheme = "Split manufacturing [27], [53], [54]";
      modules = "Splitmfg.Split, Physical.Placement"; run = run_split };
    { stage = Physical_synthesis; threat = Threat_model.Piracy_counterfeiting;
      scheme = "Entropy primitives [30]";
      modules = "Puf.Arbiter (variation knob)"; run = run_entropy };
    { stage = Physical_synthesis; threat = Threat_model.Trojans;
      scheme = "Embedding sensors [26]";
      modules = "Trojan.Detect"; run = run_sensors };
    { stage = Functional_validation; threat = Threat_model.Side_channel;
      scheme = "Identification of architectural covert channels [31]";
      modules = "Iflow.Covert"; run = run_covert };
    { stage = Functional_validation; threat = Threat_model.Side_channel;
      scheme = "Unique-program-execution checking [31] (2-safety BMC)";
      modules = "Sat.Unroll"; run = run_upec };
    { stage = Functional_validation; threat = Threat_model.Fault_injection;
      scheme = "Validation of error-detection properties [32]";
      modules = "Fault.Countermeasure.validate"; run = run_validation_error_detect };
    { stage = Functional_validation; threat = Threat_model.Fault_injection;
      scheme = "Formal robustness analysis via BMC [32]";
      modules = "Fault.Formal"; run = run_formal_validation };
    { stage = Functional_validation; threat = Threat_model.Piracy_counterfeiting;
      scheme = "Correctness of locked logic; de-obfuscation attacks [33]";
      modules = "Locking.Lock.verify_correct, Sat.Cnf"; run = run_lock_correctness };
    { stage = Functional_validation; threat = Threat_model.Trojans;
      scheme = "Proof-carrying hardware [34]";
      modules = "Iflow.Taint (property checking)"; run = run_proof_carrying };
    { stage = Timing_power_verification; threat = Threat_model.Side_channel;
      scheme = "Pre-silicon power/timing simulation [36], [37]";
      modules = "Power.Model, Timing.Event_sim"; run = run_presilicon_power };
    { stage = Timing_power_verification; threat = Threat_model.Side_channel;
      scheme = "Higher-order leakage assessment (masking order)";
      modules = "Sidechannel.Tvla.campaign_orders"; run = run_second_order };
    { stage = Timing_power_verification; threat = Threat_model.Fault_injection;
      scheme = "Detailed modeling of fault injections [38]";
      modules = "Fault.Model (transients)"; run = run_fault_modeling };
    { stage = Timing_power_verification; threat = Threat_model.Fault_injection;
      scheme = "Vectorless IR-drop verification [36]";
      modules = "Physical.Ir_drop"; run = run_ir_drop };
    { stage = Timing_power_verification; threat = Threat_model.Piracy_counterfeiting;
      scheme = "Validation of low-level PUF properties";
      modules = "Puf.Arbiter, Puf.Ro_puf"; run = run_puf_validation };
    { stage = Timing_power_verification; threat = Threat_model.Trojans;
      scheme = "Fingerprinting [35]";
      modules = "Trojan.Detect.fingerprint_detection, Timing.Sta"; run = run_fingerprint };
    { stage = Testing; threat = Threat_model.Side_channel;
      scheme = "Securing DFT against read-out (scan attacks [39])";
      modules = "Dft.Scan, Dft.Scan_attack"; run = run_scan_attack };
    { stage = Testing; threat = Threat_model.Fault_injection;
      scheme = "DFX handling malicious/natural failures";
      modules = "Fault.Discriminate"; run = run_dfx };
    { stage = Testing; threat = Threat_model.Piracy_counterfeiting;
      scheme = "IP protection integrated into DFX";
      modules = "Locking.Sfll"; run = run_ip_dfx };
    { stage = Testing; threat = Threat_model.Trojans;
      scheme = "Pattern generation for Trojan detection [40]";
      modules = "Trojan.Detect.mero_patterns"; run = run_mero };
    { stage = Testing; threat = Threat_model.Trojans;
      scheme = "ATPG-driven redundancy removal (testability x security)";
      modules = "Dft.Atpg.remove_redundancy"; run = run_redundancy } ]
