(** Conversion to the AND / XOR / NOT basis. Masking transforms (ISW
    private circuits, {!Masking}) are defined over this basis; every
    other cell is rewritten by Boolean identities before masking.

    Registered as the [to_and_xor_not] pass; outside [lib/synth],
    address it through {!Pass.apply} / {!Pipeline} rather than calling
    here directly. *)

val to_and_xor_not : Netlist.Circuit.t -> Netlist.Circuit.t
[@@deprecated "use Synth.Pass.apply \"to_and_xor_not\" (or a Pipeline recipe)"]

(** True when the circuit uses only AND/XOR/NOT (plus IO cells). *)
val in_basis : Netlist.Circuit.t -> bool
