(** Synthesis entry points and the PPA cost model. [optimize] and
    [optimize_secure] are thin wrappers over the data-described recipes
    of the same names (see {!Pipeline}); they produce bit-identical
    circuits to the historical hardcoded flows. *)

type ppa = { area : float; delay_ps : float; gate_count : int; power_proxy : float }

(** Static PPA estimate: cell areas, STA delay, 0.5-activity power proxy. *)
val ppa : Netlist.Circuit.t -> ppa

(** The classical flow; [reassoc:false] skips the XOR re-association. *)
val optimize : ?reassoc:bool -> Netlist.Circuit.t -> Netlist.Circuit.t

(** Security-aware variant: nodes whose name satisfies [protect] are copied
    verbatim — never merged, simplified or re-associated. The standard
    masked-gadget prefixes ({!Pipeline.gadget_prefixes}) are always fenced
    in addition to [protect]. *)
val optimize_secure : protect:(string -> bool) -> Netlist.Circuit.t -> Netlist.Circuit.t
