(** Pipelines: synthesis recipes described as data and executed by one
    runner.

    A recipe is a tree of {!step}s — plain passes, bounded fixed-point
    loops, protect fences and parameter-conditioned blocks — referring to
    passes by registry name. Describing flows as data is the point of the
    redesign: recipes can be listed, composed, compared and extended
    without editing a hardcoded flow function.

    The runner threads one {!Pass.ctx} through the tree, charges one
    budget step per executed pass (stopping early — and cleanly — when the
    budget runs out), emits a [synth.pass.<name>] telemetry span with
    signed gate-delta counters ([synth.gates_removed] /
    [synth.gates_added]) around every pass, and hands each intermediate
    circuit to an [observe] callback — the hook behind
    [--print-ir-after]. *)

module Circuit = Netlist.Circuit
module T = Eda_util.Telemetry
module Budget = Eda_util.Budget

type step =
  | Run of { pass : string; params : (string * string) list }
  | Fixed_point of { max_rounds : int; body : step list }
  | Protect of { prefixes : string list; body : step list }
  | If_param of { param : string; default : bool; body : step list }

type t = { name : string; doc : string; steps : step list }

let pass ?(params = []) name = Run { pass = name; params }
let make ~name ~doc steps = { name; doc; steps }

(* --- Recipe registry --------------------------------------------------- *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let register p =
  if Hashtbl.mem registry p.name then
    invalid_arg (Printf.sprintf "Pipeline.register: duplicate recipe %s" p.name);
  Hashtbl.replace registry p.name p

let find name = Hashtbl.find_opt registry name
let names () = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])
let all () = List.map (fun n -> Hashtbl.find registry n) (names ())

let get name =
  match find name with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "Pipeline: unknown recipe %s (have: %s)" name
         (String.concat ", " (names ())))

(** Every pass name a recipe mentions, in first-use order — what
    [--print-ir-after] validates against. *)
let passes_used t =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Run { pass; _ } ->
      if not (Hashtbl.mem seen pass) then begin
        Hashtbl.replace seen pass ();
        acc := pass :: !acc
      end
    | Fixed_point { body; _ } | Protect { body; _ } | If_param { body; _ } ->
      List.iter go body
  in
  List.iter go t.steps;
  List.rev !acc

(* --- Runner ------------------------------------------------------------ *)

(* Per-pass instrumentation: a [synth.pass.<name>] span and signed
   gate-delta counters. Growth and shrink are separate counters
   (mask insertion legitimately grows the netlist); zero deltas emit
   nothing. Inactive telemetry short-circuits so the extra
   [Circuit.stats] calls are only paid when tracing. *)
let instrument name f c =
  if not (T.active ()) then f c
  else
    T.with_span ("synth.pass." ^ name) @@ fun () ->
    let before = (Circuit.stats c).Circuit.gates in
    let c' = f c in
    let after = (Circuit.stats c').Circuit.gates in
    if before > after then T.count "synth.gates_removed" (before - after);
    if after > before then T.count "synth.gates_added" (after - before);
    T.note "synth.pass"
      ~attrs:
        [ ("pass", T.Str name); ("gates_before", T.Int before); ("gates_after", T.Int after) ];
    c'

let run ?budget ?pool ?protect ?(params = []) ?observe t c =
  let stopped = ref false in
  let seq = ref 0 in
  let exec_pass (ctx : Pass.ctx) c name step_params =
    (match budget with
     | None -> ()
     | Some b ->
       (match Budget.status b with
        | Some reason ->
          stopped := true;
          T.note "synth.pipeline.early_stop"
            ~attrs:
              [ ("recipe", T.Str t.name);
                ("reason", T.Str (Budget.describe_exhaustion reason)) ]
        | None -> Budget.tick b));
    if !stopped then c
    else begin
      let p = Pass.get name in
      (* Step params override recipe-level params of the same key. *)
      let ctx = { ctx with Pass.params = step_params @ params } in
      let c' = instrument name (Pass.run ctx p) c in
      incr seq;
      (match observe with
       | Some f -> f ~seq:!seq ~pass:name c'
       | None -> ());
      c'
    end
  in
  let rec exec_steps ctx c = function
    | [] -> c
    | s :: rest -> if !stopped then c else exec_steps ctx (exec_step ctx c s) rest
  and exec_step (ctx : Pass.ctx) c = function
    | Run { pass; params } -> exec_pass ctx c pass params
    | Protect { prefixes; body } ->
      let outer = ctx.Pass.protect in
      let fence nm =
        outer nm || List.exists (fun p -> String.starts_with ~prefix:p nm) prefixes
      in
      exec_steps { ctx with Pass.protect = fence } c body
    | If_param { param; default; body } ->
      if Pass.param_bool ctx param ~default then exec_steps ctx c body else c
    | Fixed_point { max_rounds; body } ->
      (* Bounded fixed point on gate count: iterate while the body
         strictly shrinks the netlist, at most [max_rounds] times, and
         return the last result even when it grew — matching the legacy
         [optimize] loop bit for bit. *)
      let rec loop c rounds =
        if rounds = 0 || !stopped then c
        else begin
          let c' = exec_steps ctx c body in
          if !stopped || (Circuit.stats c').Circuit.gates >= (Circuit.stats c).Circuit.gates
          then c'
          else loop c' (rounds - 1)
        end
      in
      loop c max_rounds
  in
  let ctx =
    { Pass.protect = Option.value ~default:(fun _ -> false) protect;
      budget;
      pool;
      params }
  in
  exec_steps ctx c t.steps

let run_recipe ?budget ?pool ?protect ?params ?observe name c =
  let t = get name in
  T.with_span ("synth.recipe." ^ name) @@ fun () ->
  run ?budget ?pool ?protect ?params ?observe t c

(* --- Builtin recipes --------------------------------------------------- *)

(** Net-name prefixes of masked-gadget internals; the standard fence for
    security-aware recipes. *)
let gadget_prefixes = [ "isw_"; "dom_"; "mg_" ]

let () =
  register
    (make ~name:"optimize"
       ~doc:
         "Classical security-oblivious flow: constant propagation, strash, \
          XOR re-association, iterated to a bounded fixed point \
          (params: reassoc=true|false)"
       [ Fixed_point
           { max_rounds = 4;
             body =
               [ pass "constant_propagation";
                 pass "strash";
                 If_param
                   { param = "reassoc"; default = true; body = [ pass "xor_reassoc" ] } ] } ]);
  register
    (make ~name:"optimize_secure"
       ~doc:
         "Security-aware flow: the same passes behind a protect fence over \
          masked-gadget internals (isw_/dom_/mg_) plus any caller fence"
       [ Protect
           { prefixes = gadget_prefixes;
             body = [ pass "constant_propagation"; pass "strash"; pass "xor_reassoc" ] } ])
