(** First-class synthesis passes and the global registry.

    A pass is a named, pure circuit transform plus an optional invariant
    check. Passes run inside a {!ctx} that carries the protection
    predicate, resource budget, worker pool and string parameters — the
    runner (see {!Pipeline}) threads one context through a whole recipe,
    so a transform never needs its own plumbing.

    Registration makes a transform addressable by name from pipeline
    descriptions, the CLI and tests; the raw functions in [Rewrite],
    [Techmap] and [Basis] remain the implementations but are deprecated
    as an external surface. Builtin passes are registered here (not in
    their home modules) so that linking any registry user is enough to
    see them — module initializers of otherwise-unreferenced archive
    members are dropped by the linker. *)

(* The registry wraps the raw transforms; the deprecation aimed at
   external callers does not apply here. *)
[@@@alert "-deprecated"]

module Circuit = Netlist.Circuit

type ctx = {
  protect : string -> bool;  (** net-name fence: true = hands off *)
  budget : Eda_util.Budget.t option;
  pool : Eda_util.Pool.t option;
  params : (string * string) list;  (** per-pass string options *)
}

let default_ctx =
  { protect = (fun _ -> false); budget = None; pool = None; params = [] }

let param ctx key = List.assoc_opt key ctx.params

let param_int ctx key ~default =
  match param ctx key with
  | None -> default
  | Some v ->
    (match int_of_string_opt v with
     | Some n -> n
     | None -> invalid_arg (Printf.sprintf "Pass: parameter %s=%s is not an integer" key v))

let param_bool ctx key ~default =
  match param ctx key with
  | None -> default
  | Some ("true" | "1" | "yes") -> true
  | Some ("false" | "0" | "no") -> false
  | Some v -> invalid_arg (Printf.sprintf "Pass: parameter %s=%s is not a boolean" key v)

type t = {
  name : string;
  doc : string;
  transform : ctx -> Circuit.t -> Circuit.t;
  check : (ctx -> Circuit.t -> (unit, string) result) option;
}

exception Check_failed of { pass : string; msg : string }

let () =
  Printexc.register_printer (function
    | Check_failed { pass; msg } ->
      Some (Printf.sprintf "Pass.Check_failed(%s): %s" pass msg)
    | _ -> None)

let make ~name ~doc ?check transform = { name; doc; transform; check }
let simple ~name ~doc f = make ~name ~doc (fun _ c -> f c)
let protectable ~name ~doc f = make ~name ~doc (fun ctx c -> f ~protect:ctx.protect c)

(* --- Registry ---------------------------------------------------------- *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let register p =
  if Hashtbl.mem registry p.name then
    invalid_arg (Printf.sprintf "Pass.register: duplicate pass %s" p.name);
  Hashtbl.replace registry p.name p

let find name = Hashtbl.find_opt registry name
let names () = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])
let all () = List.map (fun n -> Hashtbl.find registry n) (names ())

let get name =
  match find name with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "Pass: unknown pass %s (have: %s)" name
         (String.concat ", " (names ())))

(* --- Execution --------------------------------------------------------- *)

(** Run [p] under [ctx]: transform, then invariant check (raising
    {!Check_failed}), then carry region annotations across the rebuild.
    Telemetry and budget accounting live in the {!Pipeline} runner. *)
let run ctx p c =
  let c' = p.transform ctx c in
  (match p.check with
   | None -> ()
   | Some chk ->
     (match chk ctx c' with
      | Ok () -> ()
      | Error msg -> raise (Check_failed { pass = p.name; msg })));
  if c' != c then Circuit.transfer_regions ~from:c c';
  c'

let apply ?(params = []) ?protect ?budget ?pool name c =
  let ctx =
    { protect = Option.value ~default:default_ctx.protect protect;
      budget;
      pool;
      params }
  in
  run ctx (get name) c

(* --- Builtin passes ---------------------------------------------------- *)

let lint_clean _ctx c =
  match Netlist.Lint.errors c with
  | [] -> Ok ()
  | issues -> Error (String.concat "; " (List.map Netlist.Lint.describe issues))

let strategy_of ctx =
  match param ctx "strategy" with
  | None | Some "factoring" -> Xor_reassoc.Factoring_friendly
  | Some "balanced" -> Xor_reassoc.Balanced
  | Some v -> invalid_arg (Printf.sprintf "Pass: unknown xor_reassoc strategy %s" v)

let target_of ctx =
  match param ctx "target" with
  | None | Some "nand-inv" -> Techmap.Nand_inv
  | Some "camo" -> Techmap.Nand_nor_xnor
  | Some v -> invalid_arg (Printf.sprintf "Pass: unknown techmap target %s" v)

let () =
  register
    (make ~name:"constant_propagation"
       ~doc:"Constant propagation and algebraic simplification" ~check:lint_clean
       (fun ctx c -> Rewrite.constant_propagation ~protect:ctx.protect c));
  register
    (make ~name:"strash"
       ~doc:"Structural hashing: merge identical cells (CSE)" ~check:lint_clean
       (fun ctx c -> Rewrite.strash ~protect:ctx.protect c));
  register
    (make ~name:"xor_reassoc"
       ~doc:
         "Re-associate XOR trees (strategy=factoring|balanced); the Fig. 2 \
          leak-inducing transform when unfenced"
       ~check:lint_clean
       (fun ctx c -> Xor_reassoc.run ~protect:ctx.protect ~strategy:(strategy_of ctx) c));
  register
    (make ~name:"techmap"
       ~doc:"Map onto a standard-cell target (target=nand-inv|camo)"
       ~check:(fun ctx c ->
         if Techmap.conforms (target_of ctx) c then Ok ()
         else Error "mapped circuit leaves the target library")
       (fun ctx c -> Techmap.run ~target:(target_of ctx) c));
  register
    (make ~name:"to_and_xor_not"
       ~doc:"Rewrite into the AND/XOR/NOT masking basis"
       ~check:(fun _ c ->
         if Basis.in_basis c then Ok () else Error "circuit left the AND/XOR/NOT basis")
       (fun _ c -> Basis.to_and_xor_not c));
  register
    (simple ~name:"sweep" ~doc:"Drop logic unreachable from the outputs"
       (fun c -> fst (Circuit.sweep c)));
  register
    (make ~name:"mask_insertion"
       ~doc:
         "Replace annotated regions (or the whole circuit) with \
          order-parametric masked gadgets (params: shares, style=isw|dom, \
          seed, region)"
       ~check:lint_clean
       (fun ctx c ->
         let shares = param_int ctx "shares" ~default:3 in
         let style =
           match param ctx "style" with
           | None -> Masking.Isw
           | Some s -> Masking.style_of_string s
         in
         let seed = param_int ctx "seed" ~default:0 in
         match param ctx "region" with
         | Some region -> Masking.mask_region ~shares ~style ~seed c ~region
         | None ->
           (match Circuit.region_names c with
            | [] -> (Masking.transform ~shares ~style ~seed c).Masking.circuit
            | regions ->
              List.fold_left
                (fun c region -> Masking.mask_region ~shares ~style ~seed c ~region)
                c regions)))
