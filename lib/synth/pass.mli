(** First-class synthesis passes and the global registry.

    Every transform in [lib/synth] is addressable as a named {!t}; recipes
    ({!Pipeline}) refer to passes by name, so new schemes plug in by
    registering a pass rather than editing a flow. The contract for a
    registered pass (see DESIGN.md §10):

    - {b purity}: the transform returns a fresh circuit and never mutates
      its input;
    - {b lint-preservation}: a lint-clean input maps to a lint-clean
      output (the optional [check] enforces this, or a stronger
      invariant);
    - {b protect fence}: nodes whose {e net name} satisfies
      [ctx.protect] are copied verbatim — never merged, simplified,
      re-associated or re-expressed;
    - {b regions}: the runner carries {!Netlist.Circuit} region
      annotations across the rebuild; passes need not handle them. *)

(** Execution context threaded through a recipe. *)
type ctx = {
  protect : string -> bool;  (** net-name fence: [true] = hands off *)
  budget : Eda_util.Budget.t option;  (** step/wall-clock budget, if any *)
  pool : Eda_util.Pool.t option;  (** worker pool for parallel passes *)
  params : (string * string) list;  (** per-pass string options *)
}

(** No protection, no budget, no pool, no parameters. *)
val default_ctx : ctx

val param : ctx -> string -> string option

(** @raise Invalid_argument when present but not an integer. *)
val param_int : ctx -> string -> default:int -> int

(** Accepts true/false, 1/0, yes/no.
    @raise Invalid_argument otherwise. *)
val param_bool : ctx -> string -> default:bool -> bool

type t = {
  name : string;
  doc : string;  (** one line, shown by [synth --list-recipes] *)
  transform : ctx -> Netlist.Circuit.t -> Netlist.Circuit.t;
  check : (ctx -> Netlist.Circuit.t -> (unit, string) result) option;
      (** post-transform invariant; failures raise {!Check_failed} *)
}

exception Check_failed of { pass : string; msg : string }

val make :
  name:string ->
  doc:string ->
  ?check:(ctx -> Netlist.Circuit.t -> (unit, string) result) ->
  (ctx -> Netlist.Circuit.t -> Netlist.Circuit.t) ->
  t

(** A pass that ignores its context. *)
val simple : name:string -> doc:string -> (Netlist.Circuit.t -> Netlist.Circuit.t) -> t

(** A pass that only consumes the protection fence. *)
val protectable :
  name:string ->
  doc:string ->
  (protect:(string -> bool) -> Netlist.Circuit.t -> Netlist.Circuit.t) ->
  t

(** {2 Registry}

    Builtin passes ([constant_propagation], [strash], [xor_reassoc],
    [techmap], [to_and_xor_not], [sweep]) register at link time;
    [mask_insertion] too (see {!Masking}). Cross-library passes (e.g. the
    TVLA check in [lib/sidechannel]) export an explicit [register ()]
    entry point instead. *)

(** @raise Invalid_argument on duplicate names. *)
val register : t -> unit

val find : string -> t option

(** @raise Invalid_argument on unknown names, listing what is known. *)
val get : string -> t

(** Registered pass names, sorted. *)
val names : unit -> string list

val all : unit -> t list

(** {2 Execution} *)

(** [run ctx p c]: transform, invariant check, region carry-over. No
    telemetry or budget accounting — that is the {!Pipeline} runner's job.
    @raise Check_failed when the pass invariant fails. *)
val run : ctx -> t -> Netlist.Circuit.t -> Netlist.Circuit.t

(** One-shot by name: the supported replacement for calling [Rewrite] /
    [Techmap] / [Basis] functions directly from outside [lib/synth]. *)
val apply :
  ?params:(string * string) list ->
  ?protect:(string -> bool) ->
  ?budget:Eda_util.Budget.t ->
  ?pool:Eda_util.Pool.t ->
  string ->
  Netlist.Circuit.t ->
  Netlist.Circuit.t
