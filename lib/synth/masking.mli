(** Order-parametric masked-gadget insertion — the constructive
    counterpart of the Fig. 2 demo: build a private circuit {e inside}
    the synthesis flow instead of breaking one with it.

    Gadgets are emitted as left-to-right chains whose association order
    is the security property; every created net carries the ["mg_"]
    prefix, which doubles as the order barrier for security-aware
    recipes. Randomness inputs are pre-declared and dealt to gadgets
    through a seeded [Rng] permutation, so the output is a pure function
    of (circuit, shares, style, seed) — reproducible across runs and
    worker-pool sizes. Registered as the [mask_insertion] pass
    (params [shares], [style=isw|dom], [seed], [region]). *)

type style =
  | Isw  (** ISW private-circuit AND: fresh randomness per ordered pair,
             [z_qp = (r ^ a_p b_q) ^ a_q b_p] — the association of
             [Sidechannel.Isw], reproduced gate for gate *)
  | Dom  (** combinational DOM-indep AND: cross products remasked with
             randomness shared per unordered pair; no register stage, so
             only the probing-model argument applies, not the glitch
             one *)

(** @raise Invalid_argument on anything but ["isw"] / ["dom"]. *)
val style_of_string : string -> style

val string_of_style : style -> string

type masked = {
  circuit : Netlist.Circuit.t;
  shares : int;
  style : style;
  input_shares : (string * int array) list;
      (** per original input, its share input ids in order *)
  random_inputs : int array;  (** randomness inputs, declaration order *)
  output_shares : (string * string array) list;
      (** per original output, its share output names *)
}

val prefix : string

(** The order-barrier predicate: true for every net the pass created. *)
val protected_name : string -> bool

(** Fresh randomness bits one AND gadget consumes. *)
val pairs_per_and : int -> int

(** Mask a whole combinational circuit (any basis; converted internally).
    The interface is re-shaped: input [x] becomes [x_s0..x_s<n-1>],
    outputs likewise, plus [mg_r*] randomness inputs.
    @raise Invalid_argument when [shares < 2]. *)
val transform :
  ?shares:int -> ?style:style -> ?seed:int -> Netlist.Circuit.t -> masked

(** Mask one annotated region in place: XOR-encoders split each boundary
    value using fresh [mg_] randomness inputs, the region is replaced by
    its masked counterpart, and XOR-decoders restore the original net
    names at the region exits. The circuit interface (plus the new
    randomness inputs) and function are preserved for {e every} value of
    the randomness inputs.
    @raise Invalid_argument on an empty/unknown region, a region holding
    non-combinational nets, a region that drives nothing, or one consumed
    before its boundary closes (non-convex). *)
val mask_region :
  ?shares:int ->
  ?style:style ->
  ?seed:int ->
  Netlist.Circuit.t ->
  region:string ->
  Netlist.Circuit.t

(** A circuit's input interface as seen by a leakage assessment. *)
type iface = {
  secrets : (string * int array) list;
      (** per original input: its share input ids ([|id|] when unshared) *)
  randoms : int array;  (** masking-randomness inputs, declaration order *)
}

(** Recover the masked interface from input names: [mg_*] inputs are
    masking randomness, [<base>_s<k>] groups are share vectors, anything
    else is an unshared secret. Works on {!transform} output,
    {!mask_region} output and plain unmasked circuits alike — the basis
    for running one TVLA harness over all of them. *)
val interface_of : Netlist.Circuit.t -> iface
