(** Synthesis entry points and the PPA cost model (Fig. 1's
    logic-synthesis stage).

    [optimize] and [optimize_secure] are thin wrappers over the
    data-described recipes of the same names (see {!Pipeline}); they
    exist for callers that want the canonical flows without touching the
    pass manager, and they produce bit-identical circuits to the
    historical hardcoded sequences (the differential test in
    [test_synth.ml] holds them to that). *)

module Circuit = Netlist.Circuit

type ppa = { area : float; delay_ps : float; gate_count : int; power_proxy : float }

(** Static PPA estimate: area from cell areas, delay from STA, power proxy
    from summed switching energies weighted by 0.5 toggle probability. *)
let ppa c =
  let st = Circuit.stats c in
  let timing = Timing.Sta.analyze c in
  let power_proxy = ref 0.0 in
  for i = 0 to Circuit.node_count c - 1 do
    power_proxy := !power_proxy +. (0.5 *. Netlist.Gate.switch_energy (Circuit.kind c i))
  done;
  { area = st.Circuit.area;
    delay_ps = timing.Timing.Sta.critical_path_delay;
    gate_count = st.Circuit.gates;
    power_proxy = !power_proxy }

module T = Eda_util.Telemetry

let optimize ?(reassoc = true) c =
  T.with_span "synth.optimize" @@ fun () ->
  Pipeline.run ~params:[ ("reassoc", string_of_bool reassoc) ] (Pipeline.get "optimize") c

(** Security-aware variant: [protect] marks nodes whose structure is a
    security property (mask-accumulation chains, locked logic, sensors).
    The recipe always fences the standard gadget prefixes
    ([isw_]/[dom_]/[mg_]) in addition to [protect]. *)
let optimize_secure ~protect c =
  T.with_span "synth.optimize_secure" @@ fun () ->
  Pipeline.run ~protect (Pipeline.get "optimize_secure") c
