(** Synthesis pass pipelines and the PPA cost model (Fig. 1's logic-synthesis
    stage). Two canonical recipes:

    - [optimize] — the classical, security-oblivious flow: constant
      propagation, structural hashing and factoring-friendly XOR
      re-association, iterated to a fixed point. This is the flow that
      breaks private circuits (Fig. 2).
    - [optimize_secure] — the same passes with a [protect] predicate that
      fences off annotated nodes, modelling a security-aware tool that
      compiles "do not reorder" constraints down to the netlist. *)

module Circuit = Netlist.Circuit

type ppa = { area : float; delay_ps : float; gate_count : int; power_proxy : float }

(** Static PPA estimate: area from cell areas, delay from STA, power proxy
    from summed switching energies weighted by 0.5 toggle probability. *)
let ppa c =
  let st = Circuit.stats c in
  let timing = Timing.Sta.analyze c in
  let power_proxy = ref 0.0 in
  for i = 0 to Circuit.node_count c - 1 do
    power_proxy := !power_proxy +. (0.5 *. Netlist.Gate.switch_energy (Circuit.kind c i))
  done;
  { area = st.Circuit.area;
    delay_ps = timing.Timing.Sta.critical_path_delay;
    gate_count = st.Circuit.gates;
    power_proxy = !power_proxy }

module T = Eda_util.Telemetry

(* A pass under a [synth.pass.<name>] span with a [synth.gates_removed]
   counter (net change; negative deltas count as zero since passes never
   grow the netlist on purpose). Inactive telemetry short-circuits so the
   extra [Circuit.stats] calls are only paid when tracing. *)
let traced_pass name f c =
  if not (T.active ()) then f c
  else
    T.with_span ("synth.pass." ^ name) @@ fun () ->
    let before = (Circuit.stats c).Circuit.gates in
    let c' = f c in
    let after = (Circuit.stats c').Circuit.gates in
    T.count "synth.gates_removed" (max 0 (before - after));
    T.note "synth.pass"
      ~attrs:
        [ ("pass", T.Str name); ("gates_before", T.Int before); ("gates_after", T.Int after) ];
    c'

let optimize ?(reassoc = true) c =
  T.with_span "synth.optimize" @@ fun () ->
  let step c =
    let c = traced_pass "constant_propagation" Rewrite.constant_propagation c in
    let c = traced_pass "strash" Rewrite.strash c in
    if reassoc then traced_pass "xor_reassoc" Xor_reassoc.run c else c
  in
  (* Iterate to fixed point on gate count (bounded). *)
  let rec loop c rounds =
    if rounds = 0 then c
    else begin
      let c' = step c in
      if (Circuit.stats c').Circuit.gates >= (Circuit.stats c).Circuit.gates then c'
      else loop c' (rounds - 1)
    end
  in
  loop c 4

(** Security-aware variant: [protect] marks nodes whose structure is a
    security property (mask-accumulation chains, locked logic, sensors). *)
let optimize_secure ~protect c =
  T.with_span "synth.optimize_secure" @@ fun () ->
  let c = traced_pass "constant_propagation" (Rewrite.constant_propagation ~protect) c in
  let c = traced_pass "strash" (Rewrite.strash ~protect) c in
  traced_pass "xor_reassoc" (Xor_reassoc.run ~protect) c
