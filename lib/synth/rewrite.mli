(** Local logic rewriting: constant propagation, algebraic identities and
    structural hashing (common-subexpression elimination).

    Every pass maps an input circuit to a fresh, functionally equivalent
    circuit. The [protect] predicate is the security fence: nodes whose
    {e net name} satisfies it are copied verbatim and never merged,
    simplified or re-expressed.

    These transforms are registered as the [constant_propagation] and
    [strash] passes; outside [lib/synth], address them through
    {!Pass.apply} / {!Pipeline} rather than calling here directly. *)

(** The trivial fence: nothing is protected. *)
val no_protection : string -> bool

val constant_propagation :
  ?protect:(string -> bool) -> Netlist.Circuit.t -> Netlist.Circuit.t
[@@deprecated "use Synth.Pass.apply \"constant_propagation\" (or a Pipeline recipe)"]

val strash : ?protect:(string -> bool) -> Netlist.Circuit.t -> Netlist.Circuit.t
[@@deprecated "use Synth.Pass.apply \"strash\" (or a Pipeline recipe)"]

(** Area after a pass pipeline; convenience for reporting. *)
val area : Netlist.Circuit.t -> float
