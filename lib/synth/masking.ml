(** Order-parametric masked-gadget insertion — the constructive
    counterpart of the Fig. 2 destructive demo: instead of showing that a
    classical flow breaks a private circuit, this pass {e builds} one
    inside the synthesis flow.

    Two gadget styles over the AND/XOR/NOT basis, both emitted as
    left-to-right chains whose association order is the security
    property:

    - [Isw]: the ISW private-circuit AND — per ordered share pair,
      [z_qp = (r ^ a_p b_q) ^ a_q b_p] with fresh randomness per
      unordered pair, accumulated as
      [c_i = a_i b_i ^ z_i1 ^ ...] (the exact association of
      [Sidechannel.Isw], reproduced here gate for gate);
    - [Dom]: the combinational DOM-indep AND — cross products remasked
      with randomness {e shared} per unordered pair
      ([q_i = a_i b_i ^ (a_i b_j ^ z_ij) ^ ...]); the register stage of
      full DOM is out of scope for this combinational pass, so its
      glitch argument does not transfer — only the probing-model one.

    Masking randomness is {e distributed} deterministically: the pass
    pre-declares every randomness input and assigns them to gadgets
    through a seeded [Rng] permutation, so the emitted netlist is a pure
    function of (circuit, shares, style, seed) — reproducible across
    runs, machines and worker-pool sizes.

    Every created net carries the ["mg_"] prefix, which doubles as the
    order barrier for security-aware synthesis (cf. ["isw_"]/["dom_"]).

    Modes:
    - {!transform} masks a whole combinational circuit, re-shaping its
      interface: each primary input [x] becomes share inputs [x_s0..],
      each output likewise, plus randomness inputs [mg_r*];
    - {!mask_region} splices gadgets for one annotated region {e inside}
      an otherwise untouched circuit: boundary values are split by
      XOR-encoders fed from fresh randomness inputs, the region is
      replaced by its masked counterpart, and XOR-decoders restore the
      original net names at the region exits, so the circuit's interface
      and function are preserved (for any value of the new randomness
      inputs). *)

(* The basis conversion is deprecated as an external surface only. *)
[@@@alert "-deprecated"]

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Rng = Eda_util.Rng

type style = Isw | Dom

let style_of_string = function
  | "isw" -> Isw
  | "dom" -> Dom
  | s -> invalid_arg (Printf.sprintf "Masking: unknown style %s (isw|dom)" s)

let string_of_style = function Isw -> "isw" | Dom -> "dom"

type masked = {
  circuit : Circuit.t;
  shares : int;
  style : style;
  input_shares : (string * int array) list;
  random_inputs : int array;
  output_shares : (string * string array) list;
}

let prefix = "mg_"
let protected_name name = String.starts_with ~prefix name

(* --- Whole-circuit transform ------------------------------------------- *)

(* Randomness demand of one AND gadget: one fresh bit per unordered share
   pair, in both styles. *)
let pairs_per_and shares = shares * (shares - 1) / 2

let transform ?(shares = 3) ?(style = Isw) ?(seed = 0) source =
  if shares < 2 then invalid_arg "Masking.transform: shares < 2";
  let src = Basis.to_and_xor_not source in
  assert (Circuit.num_dffs src = 0);
  let c = Circuit.create () in
  let counter = ref 0 in
  let fresh tag =
    incr counter;
    Printf.sprintf "%s%s_%d" prefix tag !counter
  in
  (* Share inputs for each original primary input. *)
  let input_shares =
    Array.to_list (Circuit.inputs src)
    |> List.map (fun id ->
        let base = Circuit.name src id in
        let ids =
          Array.init shares (fun s ->
              Circuit.add_input ~name:(Printf.sprintf "%s_s%d" base s) c)
        in
        base, ids)
  in
  (* Deterministic randomness distribution: declare the whole randomness
     budget up front, then deal it to AND gadgets through a seeded
     permutation. *)
  let n_and = ref 0 in
  for i = 0 to Circuit.node_count src - 1 do
    if Circuit.kind src i = Gate.And then incr n_and
  done;
  let pairs = pairs_per_and shares in
  let total = !n_and * pairs in
  let random_inputs =
    Array.init total (fun i -> Circuit.add_input ~name:(Printf.sprintf "%sr%d" prefix i) c)
  in
  let deal =
    let slots = Array.init total (fun i -> i) in
    Rng.shuffle (Rng.create (0x6d61736b + seed)) slots;
    slots
  in
  let gadget_index = ref 0 in
  let gate kind fanins =
    Circuit.add_node_raw c kind (Array.of_list fanins) (fresh (Gate.name kind))
  in
  let share_map = Hashtbl.create 64 in
  List.iteri
    (fun k (_, ids) -> Hashtbl.replace share_map (Circuit.inputs src).(k) ids)
    input_shares;
  for i = 0 to Circuit.node_count src - 1 do
    let nd = Circuit.node src i in
    let sh k = Hashtbl.find share_map nd.Circuit.fanins.(k) in
    match nd.Circuit.kind with
    | Gate.Input -> ()
    | Gate.Const b ->
      (* Share 0 carries the value, the rest are zero. *)
      let zero = Circuit.add_const ~name:(fresh "c0") c false in
      let v = Circuit.add_const ~name:(fresh "cv") c b in
      Hashtbl.replace share_map i (Array.init shares (fun s -> if s = 0 then v else zero))
    | Gate.Not ->
      let a = sh 0 in
      Hashtbl.replace share_map i
        (Array.mapi (fun s a_s -> if s = 0 then gate Gate.Not [ a_s ] else a_s) a)
    | Gate.Xor ->
      let a = sh 0 and b = sh 1 in
      Hashtbl.replace share_map i
        (Array.init shares (fun s -> gate Gate.Xor [ a.(s); b.(s) ]))
    | Gate.And ->
      let a = sh 0 and b = sh 1 in
      let slot = !gadget_index * pairs in
      incr gadget_index;
      let z = Array.make_matrix shares shares (-1) in
      let pair = ref 0 in
      for p = 0 to shares - 1 do
        for q = p + 1 to shares - 1 do
          let r = random_inputs.(deal.(slot + !pair)) in
          incr pair;
          (match style with
           | Isw ->
             z.(p).(q) <- r;
             (* z_qp = (r ^ a_p b_q) ^ a_q b_p — parentheses matter. *)
             let apbq = gate Gate.And [ a.(p); b.(q) ] in
             let aqbp = gate Gate.And [ a.(q); b.(p) ] in
             let t1 = gate Gate.Xor [ r; apbq ] in
             z.(q).(p) <- gate Gate.Xor [ t1; aqbp ]
           | Dom ->
             (* Shared randomness per unordered pair; each cross product
                is remasked before integration. *)
             z.(p).(q) <- r;
             z.(q).(p) <- r)
        done
      done;
      let out =
        Array.init shares (fun s ->
            let acc = ref (gate Gate.And [ a.(s); b.(s) ]) in
            for j = 0 to shares - 1 do
              if j <> s then
                (match style with
                 | Isw -> acc := gate Gate.Xor [ !acc; z.(s).(j) ]
                 | Dom ->
                   let prod = gate Gate.And [ a.(s); b.(j) ] in
                   let remasked = gate Gate.Xor [ prod; z.(s).(j) ] in
                   acc := gate Gate.Xor [ !acc; remasked ])
            done;
            !acc)
      in
      Hashtbl.replace share_map i out
    | Gate.Buf | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xnor | Gate.Mux | Gate.Dff ->
      invalid_arg "Masking.transform: circuit not in AND/XOR/NOT basis"
  done;
  let output_shares =
    Array.to_list (Circuit.outputs src)
    |> List.map (fun (nm, o) ->
        let ids = Hashtbl.find share_map o in
        let names =
          Array.mapi
            (fun s id ->
              let out_name = Printf.sprintf "%s_s%d" nm s in
              Circuit.set_output c out_name id;
              out_name)
            ids
        in
        nm, names)
  in
  { circuit = c; shares; style; input_shares; random_inputs; output_shares }

(* --- Region splicing --------------------------------------------------- *)

(** Mask one annotated region in place, preserving the circuit interface
    and function for every value of the fresh [mg_] randomness inputs. *)
let mask_region ?(shares = 3) ?(style = Isw) ?(seed = 0) c ~region =
  let members = Circuit.region_members c region in
  if members = [] then
    invalid_arg (Printf.sprintf "Masking.mask_region: region %s is empty or unknown" region);
  let n = Circuit.node_count c in
  let is_member = Circuit.region_mask c region in
  List.iter
    (fun id ->
      match Circuit.kind c id with
      | Gate.Input | Gate.Dff ->
        invalid_arg
          (Printf.sprintf "Masking.mask_region: region %s contains non-combinational net %s"
             region (Circuit.name c id))
      | _ -> ())
    members;
  (* Boundary: non-member fanins of members, ascending, deduplicated. *)
  let boundary =
    let seen = Hashtbl.create 16 in
    List.iter
      (fun m ->
        Array.iter
          (fun f -> if not is_member.(f) then Hashtbl.replace seen f ())
          (Circuit.fanins c m))
      members;
    List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) seen [])
  in
  let max_boundary = List.fold_left max (-1) boundary in
  let pos = max_boundary + 1 in
  (* Region exits: members consumed outside the region (combinationally,
     by a DFF, or as a primary output), ascending. *)
  let consumed = Array.make n false in
  for i = 0 to n - 1 do
    if not is_member.(i) then
      Array.iter (fun f -> if is_member.(f) then consumed.(f) <- true) (Circuit.fanins c i)
  done;
  Array.iter (fun (_, o) -> if is_member.(o) then consumed.(o) <- true) (Circuit.outputs c);
  let exits = List.filter (fun m -> consumed.(m)) (List.sort compare members) in
  if exits = [] then
    invalid_arg (Printf.sprintf "Masking.mask_region: region %s drives nothing" region);
  (* Every combinational consumer must be emittable after the gadget:
     the splice point is right after the last boundary net. *)
  for u = 0 to pos - 1 do
    if not is_member.(u) && Gate.is_combinational (Circuit.kind c u) then
      Array.iter
        (fun f ->
          if is_member.(f) then
            invalid_arg
              (Printf.sprintf
                 "Masking.mask_region: region %s is not convex (net %s consumes it before \
                  the boundary closes)"
                 region (Circuit.name c u)))
        (Circuit.fanins c u)
  done;
  (* Extract the region as a standalone combinational subcircuit. *)
  let sub = Circuit.create () in
  let sub_map = Hashtbl.create 32 in
  List.iter
    (fun b -> Hashtbl.replace sub_map b (Circuit.add_input ~name:(Circuit.name c b) sub))
    boundary;
  List.iter
    (fun m ->
      let nd = Circuit.node c m in
      let fanins = Array.map (fun f -> Hashtbl.find sub_map f) nd.Circuit.fanins in
      Hashtbl.replace sub_map m (Circuit.add_node_raw sub nd.Circuit.kind fanins nd.Circuit.name))
    (List.sort compare members);
  List.iter
    (fun m -> Circuit.set_output sub (Circuit.name c m) (Hashtbl.find sub_map m))
    exits;
  let m = transform ~shares ~style ~seed sub in
  (* Rebuild the host circuit with the gadget spliced at [pos]. *)
  let out = Circuit.create () in
  let remap = Array.make n (-1) in
  let copy_plain i =
    let nd = Circuit.node c i in
    let fanins =
      if nd.Circuit.kind = Gate.Dff then [| 0 |]
      else Array.map (fun f -> remap.(f)) nd.Circuit.fanins
    in
    remap.(i) <- Circuit.add_node_raw out nd.Circuit.kind fanins nd.Circuit.name
  in
  let fresh_pi =
    let k = ref 0 in
    fun tag ->
      incr k;
      Circuit.add_input ~name:(Printf.sprintf "%s%s_%s_%d" prefix tag region !k) out
  in
  let splice () =
    (* Encoders: split each boundary value into [shares] XOR shares with
       fresh randomness inputs; share 0 absorbs the value through a
       left-to-right chain of protected XORs. *)
    let encoded = Hashtbl.create 16 in  (* boundary name -> share ids in [out] *)
    List.iter
      (fun b ->
        let bname = Circuit.name c b in
        let rands = Array.init (shares - 1) (fun _ -> fresh_pi "r") in
        let chain = ref remap.(b) in
        Array.iteri
          (fun k r ->
            let nm = Printf.sprintf "%senc_%s_%s_%d" prefix region bname k in
            chain := Circuit.add_gate ~name:nm out Gate.Xor [ !chain; r ])
          rands;
        Hashtbl.replace encoded bname
          (Array.init shares (fun s -> if s = 0 then !chain else rands.(s - 1))))
      boundary;
    (* Bind the masked subcircuit's inputs: share inputs to encoder nets,
       randomness inputs to fresh primary inputs of the host. *)
    let bind = Hashtbl.create 64 in  (* sub-circuit input id -> [out] id *)
    List.iter
      (fun (bname, ids) ->
        let enc = Hashtbl.find encoded bname in
        Array.iteri (fun s id -> Hashtbl.replace bind id enc.(s)) ids)
      m.input_shares;
    Array.iter (fun id -> Hashtbl.replace bind id (fresh_pi "rnd")) m.random_inputs;
    let bindings = Array.map (fun id -> Hashtbl.find bind id) (Circuit.inputs m.circuit) in
    let gadget_prefix = Printf.sprintf "%s%s_" prefix region in
    let outs = Circuit.inline ~into:out ~sub:m.circuit ~prefix:gadget_prefix bindings in
    (* Decoders: XOR the shares back together; the final gate takes over
       the original net name so downstream logic rewires transparently. *)
    List.iteri
      (fun g exit_id ->
        let exit_name = Circuit.name c exit_id in
        let chain = ref outs.(g * shares) in
        for s = 1 to shares - 1 do
          let nm =
            if s = shares - 1 then exit_name
            else Printf.sprintf "%sdec_%s_%s_%d" prefix region exit_name s
          in
          chain := Circuit.add_gate ~name:nm out Gate.Xor [ !chain; outs.((g * shares) + s) ]
        done;
        remap.(exit_id) <- !chain)
      exits
  in
  (* [pos] <= the last member's id <= n-1, so the splice always fires. *)
  for i = 0 to n - 1 do
    if i = pos then splice ();
    if not is_member.(i) then copy_plain i
  done;
  for i = 0 to n - 1 do
    if (not is_member.(i)) && Circuit.kind c i = Gate.Dff then
      Circuit.connect_dff out remap.(i) ~d:remap.((Circuit.fanins c i).(0))
  done;
  Array.iter (fun (nm, o) -> Circuit.set_output out nm remap.(o)) (Circuit.outputs c);
  Circuit.transfer_regions ~from:c out;
  out

(* --- Interface recovery ------------------------------------------------ *)

type iface = {
  secrets : (string * int array) list;
      (** per original input: its share input ids ([|id|] when unshared) *)
  randoms : int array;  (** masking-randomness inputs, declaration order *)
}

(* "<base>_s<k>" -> Some (base, k) *)
let share_pattern nm =
  match String.rindex_opt nm '_' with
  | None -> None
  | Some u when u + 2 > String.length nm -> None
  | Some u ->
    if nm.[u + 1] <> 's' then None
    else
      let digits = String.sub nm (u + 2) (String.length nm - u - 2) in
      (match int_of_string_opt digits with
       | Some k when k >= 0 -> Some (String.sub nm 0 u, k)
       | _ -> None)

(** Reconstruct the masked interface of a circuit from its input names:
    [mg_]-prefixed inputs are masking randomness, [<base>_s<k>] groups are
    share vectors, anything else is an unshared secret. Works on the
    output of {!transform}, of {!mask_region}, and on plain unmasked
    circuits (everything lands in [secrets]) — the basis for running one
    TVLA harness over masked and unmasked designs alike. *)
let interface_of c =
  let randoms = ref [] in
  let groups = ref [] in  (* (base, (k, id) list) in first-seen order, reversed *)
  let add_share base k id =
    match List.assoc_opt base !groups with
    | Some members -> members := (k, id) :: !members
    | None -> groups := (base, ref [ (k, id) ]) :: !groups
  in
  Array.iter
    (fun id ->
      let nm = Circuit.name c id in
      if protected_name nm then randoms := id :: !randoms
      else
        match share_pattern nm with
        | Some (base, k) -> add_share base k id
        | None -> add_share nm (-1) id)
    (Circuit.inputs c);
  let secrets =
    List.rev_map
      (fun (base, members) ->
        let sorted = List.sort compare !members in
        base, Array.of_list (List.map snd sorted))
      !groups
  in
  { secrets; randoms = Array.of_list (List.rev !randoms) }
