(** Technology mapping: re-express a netlist over a restricted standard-
    cell target library (Fig. 1's "technology libraries" input). Two
    targets:

    - [to_nand_inv]: the NAND2+INV universal library — the canonical
      mapping exercise, and the area/delay baseline the PPA model compares
      against;
    - [to_nand_nor_xnor]: the camouflageable candidate set, so a mapped
      design can be 100% camouflaged (cf. [Camo.Constrained] which
      synthesizes from truth tables; this maps existing structure).

    Mapping is local (per-gate macro expansion) followed by constant
    propagation to clean double inverters — the classical peephole
    recovery. *)

(* The peephole recovery uses the raw rewrite, which is deprecated as an
   external surface only. *)
[@@@alert "-deprecated"]

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

type target = Nand_inv | Nand_nor_xnor

let allowed target kind =
  match target, kind with
  | _, (Gate.Input | Gate.Const _ | Gate.Dff) -> true
  | Nand_inv, (Gate.Nand | Gate.Not) -> true
  | Nand_nor_xnor, (Gate.Nand | Gate.Nor | Gate.Xnor) -> true
  | _, _ -> false

let conforms target c =
  let ok = ref true in
  for i = 0 to Circuit.node_count c - 1 do
    if not (allowed target (Circuit.kind c i)) then ok := false
  done;
  !ok

(* Macro expansions into the target library. *)
let map_gate target out kind fanins =
  let nand a b = Circuit.add_gate out Gate.Nand [ a; b ] in
  let inv a =
    match target with
    | Nand_inv -> Circuit.add_gate out Gate.Not [ a ]
    | Nand_nor_xnor -> nand a a
  in
  match kind, fanins with
  | Gate.Buf, [| a |] -> inv (inv a)
  | Gate.Not, [| a |] -> inv a
  | Gate.And, [| a; b |] -> inv (nand a b)
  | Gate.Nand, [| a; b |] -> nand a b
  | Gate.Or, [| a; b |] -> nand (inv a) (inv b)
  | Gate.Nor, [| a; b |] ->
    (match target with
     | Nand_nor_xnor -> Circuit.add_gate out Gate.Nor [ a; b ]
     | Nand_inv -> inv (nand (inv a) (inv b)))
  | Gate.Xor, [| a; b |] ->
    (match target with
     | Nand_nor_xnor -> inv (Circuit.add_gate out Gate.Xnor [ a; b ])
     | Nand_inv ->
       (* xor = nand(nand(a, nab), nand(b, nab)) with nab = nand(a,b). *)
       let nab = nand a b in
       nand (nand a nab) (nand b nab))
  | Gate.Xnor, [| a; b |] ->
    (match target with
     | Nand_nor_xnor -> Circuit.add_gate out Gate.Xnor [ a; b ]
     | Nand_inv ->
       let nab = nand a b in
       inv (nand (nand a nab) (nand b nab)))
  | Gate.Mux, [| s; a; b |] ->
    (* mux = nand(nand(a, not s), nand(b, s)). *)
    nand (nand a (inv s)) (nand b s)
  | (Gate.Input | Gate.Const _ | Gate.Dff), _ -> assert false
  | (Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
    | Gate.Xor | Gate.Xnor | Gate.Mux), _ ->
    invalid_arg "Techmap: arity mismatch"

let run ?(target = Nand_inv) source =
  let out = Circuit.create () in
  let n = Circuit.node_count source in
  let remap = Array.make n (-1) in
  let name_taken = Hashtbl.create 64 in
  let copy_name i =
    let nm = Circuit.name source i in
    if Hashtbl.mem name_taken nm || Circuit.find_by_name out nm <> None then ""
    else begin
      Hashtbl.replace name_taken nm ();
      nm
    end
  in
  for i = 0 to n - 1 do
    let nd = Circuit.node source i in
    remap.(i) <-
      (match nd.Circuit.kind with
       | Gate.Input -> Circuit.add_node_raw out Gate.Input [||] (copy_name i)
       | Gate.Const b -> Circuit.add_node_raw out (Gate.Const b) [||] (copy_name i)
       | Gate.Dff -> Circuit.add_node_raw out Gate.Dff [| 0 |] (copy_name i)
       | k ->
         let fanins = Array.map (fun f -> remap.(f)) nd.Circuit.fanins in
         ignore (copy_name i);
         map_gate target out k fanins)
  done;
  for i = 0 to n - 1 do
    if Circuit.kind source i = Gate.Dff then
      Circuit.connect_dff out remap.(i) ~d:remap.((Circuit.fanins source i).(0))
  done;
  Array.iter (fun (nm, o) -> Circuit.set_output out nm remap.(o)) (Circuit.outputs source);
  (* Peephole recovery (double inverters etc.). The rewriter only emits
     NAND/NOT for a NAND/NOT-only input, so NAND2+INV conformance is
     preserved; the camouflage target skips it (the rewriter would
     introduce plain NOTs). *)
  match target with
  | Nand_inv -> Rewrite.constant_propagation out
  | Nand_nor_xnor -> fst (Circuit.sweep out)

(** Area ratio of the mapped design vs the generic-library original. *)
let mapping_overhead ?(target = Nand_inv) source =
  let mapped = run ~target source in
  (Circuit.stats mapped).Circuit.area /. (Circuit.stats source).Circuit.area
