(** Technology mapping onto a restricted standard-cell target library
    (Fig. 1's "technology libraries" input), as local per-gate macro
    expansion plus peephole recovery.

    Registered as the [techmap] pass (param [target=nand-inv|camo]);
    outside [lib/synth], address it through {!Pass.apply} / {!Pipeline}
    rather than calling {!run} directly. *)

type target =
  | Nand_inv  (** the NAND2+INV universal library — the classical baseline *)
  | Nand_nor_xnor  (** the camouflageable candidate set (cf. [Camo]) *)

(** Cell kinds the target admits (IO cells always pass). *)
val allowed : target -> Netlist.Gate.kind -> bool

(** True when every cell of the circuit is in the target library. *)
val conforms : target -> Netlist.Circuit.t -> bool

val run : ?target:target -> Netlist.Circuit.t -> Netlist.Circuit.t
[@@deprecated "use Synth.Pass.apply \"techmap\" ~params:[(\"target\", ...)]"]

(** Area ratio of the mapped design vs the generic-library original. *)
val mapping_overhead : ?target:target -> Netlist.Circuit.t -> float
