(** Synthesis recipes as data, and the runner that executes them.

    A {!t} is a tree of steps referring to registered {!Pass}es by name.
    The runner threads budget/pool/protect through the tree, meters each
    pass (span [synth.pass.<name>], signed gate-delta counters
    [synth.gates_removed] / [synth.gates_added]), charges one budget step
    per executed pass and stops early — returning the last completed
    circuit — when the budget runs out. *)

type step =
  | Run of { pass : string; params : (string * string) list }
      (** one registered pass; [params] override recipe-level params *)
  | Fixed_point of { max_rounds : int; body : step list }
      (** iterate [body] while it strictly shrinks the gate count, at
          most [max_rounds] times; the last result is returned even when
          it grew *)
  | Protect of { prefixes : string list; body : step list }
      (** run [body] with the fence extended to net names starting with
          any of [prefixes] (OR-ed with the caller's fence) *)
  | If_param of { param : string; default : bool; body : step list }
      (** run [body] when the boolean runner param says so *)

type t = { name : string; doc : string; steps : step list }

(** Step shorthand for a plain pass. *)
val pass : ?params:(string * string) list -> string -> step

val make : name:string -> doc:string -> step list -> t

(** {2 Recipe registry}

    [optimize] and [optimize_secure] register at link time;
    [secure_synthesis] lives in [lib/sidechannel] (it needs the TVLA
    engine) and registers via [Sidechannel.Secure_synth.register ()]. *)

(** @raise Invalid_argument on duplicate names. *)
val register : t -> unit

val find : string -> t option

(** @raise Invalid_argument on unknown names, listing what is known. *)
val get : string -> t

val names : unit -> string list
val all : unit -> t list

(** Pass names a recipe mentions, in first-use order. *)
val passes_used : t -> string list

(** Net-name prefixes of masked-gadget internals ([isw_]/[dom_]/[mg_]) —
    the standard fence used by security-aware recipes. *)
val gadget_prefixes : string list

(** {2 Execution} *)

(** [run ?budget ?pool ?protect ?params ?observe t c] executes the recipe.
    [observe] sees every intermediate circuit with a global 1-based
    sequence number — the hook behind [--print-ir-after].
    @raise Pass.Check_failed when a pass invariant fails.
    @raise Invalid_argument on unregistered pass names or bad params. *)
val run :
  ?budget:Eda_util.Budget.t ->
  ?pool:Eda_util.Pool.t ->
  ?protect:(string -> bool) ->
  ?params:(string * string) list ->
  ?observe:(seq:int -> pass:string -> Netlist.Circuit.t -> unit) ->
  t ->
  Netlist.Circuit.t ->
  Netlist.Circuit.t

(** {!run} by registry name, under a [synth.recipe.<name>] span. *)
val run_recipe :
  ?budget:Eda_util.Budget.t ->
  ?pool:Eda_util.Pool.t ->
  ?protect:(string -> bool) ->
  ?params:(string * string) list ->
  ?observe:(seq:int -> pass:string -> Netlist.Circuit.t -> unit) ->
  string ->
  Netlist.Circuit.t ->
  Netlist.Circuit.t
