(** Logic locking (EPIC [24] and friends): key gates inserted into the
    netlist so that only the correct key restores the original function.
    The locked netlist is what an untrusted foundry or end-user sees.

    Input convention of a locked circuit: key inputs are declared first
    (named key0, key1, ...), then the original data inputs in their
    original order. Use [eval] / [apply_key] rather than raw simulation. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Rng = Eda_util.Rng

type locked = {
  circuit : Circuit.t;
  key_inputs : int array;  (* node ids of key inputs *)
  data_inputs : int array;  (* node ids of original inputs, original order *)
  correct_key : bool array;
}

type style =
  | Xor_only  (* key gate polarity reveals the key bit: SAIL-vulnerable *)
  | Polarity_hidden  (* gate type decorrelated from key bit by inverters *)

(** Insert [key_bits] XOR/XNOR key gates on randomly chosen internal nets.
    With the correct key every key gate is transparent. *)
let epic rng ?(style = Polarity_hidden) ~key_bits source =
  assert (Circuit.num_dffs source = 0);
  let n = Circuit.node_count source in
  (* Lockable sites: combinational gates (not inputs/constants). *)
  let sites =
    List.filter
      (fun i ->
        match Circuit.kind source i with
        | Gate.Input | Gate.Const _ | Gate.Dff -> false
        | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
        | Gate.Xor | Gate.Xnor | Gate.Mux -> true)
      (List.init n (fun i -> i))
  in
  assert (List.length sites >= key_bits);
  let chosen = Rng.sample rng key_bits (List.length sites) in
  let site_arr = Array.of_list sites in
  let locked_site = Hashtbl.create 16 in  (* source node -> key index *)
  Array.iteri (fun k idx -> Hashtbl.replace locked_site site_arr.(idx) k) chosen;
  let out = Circuit.create () in
  let key_inputs =
    Array.init key_bits (fun k -> Circuit.add_input ~name:(Printf.sprintf "key%d" k) out)
  in
  let correct_key = Array.init key_bits (fun _ -> Rng.bool rng) in
  let remap = Array.make n (-1) in
  let name_taken = Hashtbl.create 64 in
  let copy_name i =
    let nm = Circuit.name source i in
    if Hashtbl.mem name_taken nm || Circuit.find_by_name out nm <> None then ""
    else begin
      Hashtbl.replace name_taken nm ();
      nm
    end
  in
  let data_inputs = ref [] in
  for i = 0 to n - 1 do
    let nd = Circuit.node source i in
    let fanins = Array.map (fun f -> remap.(f)) nd.Circuit.fanins in
    let id = Circuit.add_node_raw out nd.Circuit.kind fanins (copy_name i) in
    if nd.Circuit.kind = Gate.Input then data_inputs := id :: !data_inputs;
    let mapped =
      match Hashtbl.find_opt locked_site i with
      | None -> id
      | Some k ->
        (* Correct key bit k0 makes the gate transparent:
           XOR is transparent for key = 0, XNOR for key = 1. *)
        let key_bit = correct_key.(k) in
        (match style with
         | Xor_only ->
           (* Gate type chosen so the correct key works; type leaks bit. *)
           let kind = if key_bit then Gate.Xnor else Gate.Xor in
           Circuit.add_node_raw out kind [| id; key_inputs.(k) |] ""
         | Polarity_hidden ->
           (* Randomize structure: optionally invert the key input into the
              gate and compensate with the opposite gate type, so XOR/XNOR
              type no longer reveals the key bit. *)
           if Rng.bool rng then begin
             let inv = Circuit.add_node_raw out Gate.Not [| key_inputs.(k) |] "" in
             let kind = if key_bit then Gate.Xor else Gate.Xnor in
             Circuit.add_node_raw out kind [| id; inv |] ""
           end
           else begin
             let kind = if key_bit then Gate.Xnor else Gate.Xor in
             Circuit.add_node_raw out kind [| id; key_inputs.(k) |] ""
           end)
    in
    remap.(i) <- mapped
  done;
  Array.iter (fun (nm, o) -> Circuit.set_output out nm remap.(o)) (Circuit.outputs source);
  { circuit = out;
    key_inputs;
    data_inputs = Array.of_list (List.rev !data_inputs);
    correct_key }

(** Full input vector from a key and data assignment. *)
let input_vector locked ~key ~data =
  let c = locked.circuit in
  let vec = Array.make (Circuit.num_inputs c) false in
  let pos_of =
    let tbl = Hashtbl.create 64 in
    Array.iteri (fun pos id -> Hashtbl.replace tbl id pos) (Circuit.inputs c);
    fun id -> Hashtbl.find tbl id
  in
  Array.iteri (fun k id -> vec.(pos_of id) <- key.(k)) locked.key_inputs;
  Array.iteri (fun k id -> vec.(pos_of id) <- data.(k)) locked.data_inputs;
  vec

let eval locked ~key ~data =
  Netlist.Sim.eval locked.circuit (input_vector locked ~key ~data)

(** Specialize the locked circuit under a fixed key (ties key inputs to
    constants and simplifies); what an end product with a programmed
    tamper-proof key memory computes. *)
let apply_key locked ~key =
  let c = Circuit.copy locked.circuit in
  (* Rebuild with key inputs replaced by constants. *)
  let out = Circuit.create () in
  let n = Circuit.node_count c in
  let remap = Array.make n (-1) in
  let is_key = Hashtbl.create 16 in
  Array.iteri (fun k id -> Hashtbl.replace is_key id key.(k)) locked.key_inputs;
  let name_taken = Hashtbl.create 64 in
  let copy_name i =
    let nm = Circuit.name c i in
    if Hashtbl.mem name_taken nm || Circuit.find_by_name out nm <> None then ""
    else begin
      Hashtbl.replace name_taken nm ();
      nm
    end
  in
  for i = 0 to n - 1 do
    let nd = Circuit.node c i in
    remap.(i) <-
      (match Hashtbl.find_opt is_key i with
       | Some b -> Circuit.add_node_raw out (Gate.Const b) [||] (copy_name i)
       | None ->
         let fanins =
           if nd.Circuit.kind = Gate.Dff then [| 0 |]
           else Array.map (fun f -> remap.(f)) nd.Circuit.fanins
         in
         Circuit.add_node_raw out nd.Circuit.kind fanins (copy_name i))
  done;
  Array.iter (fun (nm, o) -> Circuit.set_output out nm remap.(o)) (Circuit.outputs c);
  Synth.Pass.apply "constant_propagation" out

(** Correctness of locking (functional-validation row): the locked design
    under the correct key is equivalent to the original; returns the SAT
    counterexample if not. *)
let verify_correct locked ~original =
  let unlocked = apply_key locked ~key:locked.correct_key in
  Sat.Cnf.check_equivalence original unlocked

(** Output-corruption metric of a wrong key: fraction of random patterns on
    which the output differs from the original (50% is ideal corruption). *)
let corruption rng locked ~original ~wrong_key ~patterns =
  let ni = Array.length locked.data_inputs in
  let diff = ref 0 in
  for _ = 1 to patterns do
    let data = Array.init ni (fun _ -> Rng.bool rng) in
    if eval locked ~key:wrong_key ~data <> Netlist.Sim.eval original data then incr diff
  done;
  Float.of_int !diff /. Float.of_int patterns
