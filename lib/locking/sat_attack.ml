(** The oracle-guided SAT attack on logic locking (Subramanyan et al.; the
    paper cites its SMT successor [33]). The attacker holds the locked
    netlist (reverse-engineered from layout) and a working chip (the
    oracle). Two copies of the locked circuit with shared data inputs and
    independent keys form a miter; each SAT solution is a distinguishing
    input pattern (DIP) whose oracle response prunes all keys disagreeing
    on it. When no DIP remains, any key consistent with the recorded I/O
    pairs is functionally correct.

    With a [?pool], the attack runs as a solver portfolio: phase-seeded
    copies of the miter race each DIP query and the first decisive answer
    wins ({!Eda_util.Pool.race}). The portfolio path is taken only when
    it buys parallelism ([members > 1]) — unlike the deterministic pooled
    engines, which take their pooled path at any pool size, a race is
    timing-dependent by design (which member wins picks the DIP order),
    so its captured [pool.task] telemetry is honest but not expected to
    be bit-identical across runs or domain counts. *)

module Circuit = Netlist.Circuit
module Solver = Sat.Solver
module Cnf = Sat.Cnf

module Budget = Eda_util.Budget
module Telemetry = Eda_util.Telemetry

type status =
  | Converged  (* no DIP remains: the returned key is provably correct *)
  | Iteration_limit  (* DIP loop hit max_iterations *)
  | Budget_exhausted of Budget.exhaustion  (* solver budget ran out *)

type result = {
  key : bool array option;
      (* recovered key; provably correct only when [status = Converged],
         best-effort (consistent with the recorded I/O pairs) otherwise *)
  iterations : int;  (* number of DIP queries completed *)
  solver_stats : Solver.stats;
  status : status;
}

let tie_equal solver va vb =
  Solver.add_clause solver
    [ Solver.lit_of_var va ~sign:true; Solver.lit_of_var vb ~sign:false ];
  Solver.add_clause solver
    [ Solver.lit_of_var va ~sign:false; Solver.lit_of_var vb ~sign:true ]

let fix solver v b = Solver.add_clause solver [ Solver.lit_of_var v ~sign:b ]

let describe_status = function
  | Converged -> "converged"
  | Iteration_limit -> "iteration limit reached"
  | Budget_exhausted e -> Budget.describe_exhaustion e

(** One attack state: a solver holding the two-copy miter encoding of the
    locked circuit. The sequential attack owns one; the portfolio owns
    one per member and keeps their formulas in lockstep through
    [add_io]. *)
type instance = {
  solver : Solver.t;
  keys : int array;  (* key variables of circuit copy A *)
  data : int array;  (* shared data-input variables (copy A side) *)
  miter_on : Solver.lit;  (* assumption literal activating the miter *)
  add_io : bool array -> bool array -> unit;
      (* record a DIP/response pair: both key copies must reproduce the
         oracle response on this DIP, enforced on fresh circuit copies *)
}

let make_instance (locked : Lock.locked) =
  let c = locked.Lock.circuit in
  let solver = Solver.create () in
  let env_a = Cnf.encode ~solver c in
  let env_b = Cnf.encode ~solver c in
  let key_vars env = Array.map (fun id -> env.Cnf.vars.(id)) locked.Lock.key_inputs in
  let data_vars env = Array.map (fun id -> env.Cnf.vars.(id)) locked.Lock.data_inputs in
  let out_vars env = Array.map (fun o -> env.Cnf.vars.(o)) (Circuit.output_ids c) in
  (* Shared data inputs. *)
  Array.iteri (fun k va -> tie_equal solver va (data_vars env_b).(k)) (data_vars env_a);
  (* Miter on outputs, activated by assumption so it can be dropped for the
     final key extraction. *)
  let diffs =
    Array.to_list
      (Array.mapi (fun k oa -> Cnf.xor_var solver oa (out_vars env_b).(k)) (out_vars env_a))
  in
  let any_diff = Cnf.or_var solver diffs in
  let keys_a = key_vars env_a and keys_b = key_vars env_b in
  let add_io dip response =
    List.iter
      (fun env_keys ->
        let env_f = Cnf.encode ~solver c in
        Array.iteri (fun k v -> fix solver v dip.(k)) (data_vars env_f);
        Array.iteri (fun k v -> fix solver v response.(k)) (out_vars env_f);
        Array.iteri (fun k v -> tie_equal solver v env_keys.(k)) (key_vars env_f))
      [ keys_a; keys_b ]
  in
  { solver;
    keys = keys_a;
    data = data_vars env_a;
    miter_on = Solver.lit_of_var any_diff ~sign:true;
    add_io }

(** Run the attack. [oracle data] must return the correct outputs for the
    data inputs (the activated chip).

    [budget] bounds the whole attack (one step per solver conflict);
    [iteration_steps] additionally caps each individual DIP query, so one
    pathological miter cannot consume the entire allowance. On exhaustion
    the attack stops honestly: [status] records the reason, [iterations]
    how many DIPs completed, and [key] carries a best-effort key consistent
    with the I/O pairs recorded so far (extracted under a small grace
    budget), which is exactly the partial progress a real attacker keeps.

    Telemetry: one [sat_attack.run] span for the whole attack, one
    [sat_attack.dip] span per DIP query (the nested [sat.solve] spans
    carry the solver counters), a [sat_attack.dips] counter, and a final
    [sat_attack.status] note. *)
let run_traced ?(max_iterations = 256) ?budget ?iteration_steps ~oracle (locked : Lock.locked) =
  let inst = make_instance locked in
  let solver = inst.solver in
  let solve_bounded ?(assumptions = []) () =
    match budget, iteration_steps with
    | None, None -> Solver.solve ~assumptions solver
    | Some b, steps -> Solver.solve ~budget:(Budget.sub ?steps b) ~assumptions solver
    | None, Some steps -> Solver.solve ~budget:(Budget.create ~steps ()) ~assumptions solver
  in
  (* Best-effort key: any key consistent with the I/O pairs recorded so
     far. Extracted under an independent grace budget so a spent main
     budget still yields partial progress rather than nothing. *)
  let best_effort_key () =
    match Solver.solve ~budget:(Budget.create ~steps:4096 ()) solver with
    | Solver.Sat -> Some (Array.map (fun v -> Solver.model_value solver v) inst.keys)
    | Solver.Unsat | Solver.Unknown _ -> None
  in
  let finish ?key iterations status =
    let stats = Solver.stats solver in
    Telemetry.note "sat_attack.status"
      ~attrs:
        [ ("status", Telemetry.Str (describe_status status));
          ("iterations", Telemetry.Int iterations);
          ("key_recovered", Telemetry.Bool (key <> None));
          ("learnt_live", Telemetry.Int stats.Solver.learnt_live);
          ("db_reductions", Telemetry.Int stats.Solver.db_reductions) ];
    { key; iterations; solver_stats = stats; status }
  in
  let rec loop iterations =
    if iterations >= max_iterations then
      (* The scheme resisted this attacker budget; no key claimed. *)
      finish iterations Iteration_limit
    else begin
      match
        Telemetry.with_span "sat_attack.dip"
          ~attrs:[ ("iteration", Telemetry.Int iterations) ]
          (fun () -> solve_bounded ~assumptions:[ inst.miter_on ] ())
      with
      | Solver.Sat ->
        let dip = Array.map (fun v -> Solver.model_value solver v) inst.data in
        let response = oracle dip in
        inst.add_io dip response;
        Telemetry.count "sat_attack.dips" 1;
        if Telemetry.active () then
          Telemetry.gauge "sat_attack.learnt_db"
            (float_of_int (Solver.stats solver).Solver.learnt_live);
        loop (iterations + 1)
      | Solver.Unknown reason ->
        finish ?key:(best_effort_key ()) iterations (Budget_exhausted reason)
      | Solver.Unsat ->
        (* No distinguishing input remains: extract any consistent key. *)
        (match solve_bounded () with
         | Solver.Sat ->
           let key = Array.map (fun v -> Solver.model_value solver v) inst.keys in
           finish ~key iterations Converged
         | Solver.Unknown reason ->
           finish ?key:(best_effort_key ()) iterations (Budget_exhausted reason)
         | Solver.Unsat ->
           (* Cannot happen with a truthful oracle. *)
           finish iterations Converged)
    end
  in
  try loop 0 with Solver.Unsat_root -> finish 0 Converged

(** Portfolio attack: [members] phase-seeded copies of the miter race each
    DIP query on [pool]; the first decisive answer (a DIP, or the Unsat
    that proves none remains) wins and losers are cancelled through their
    polling task budgets. The winning DIP's oracle response is appended to
    every member in the same order on the calling domain, so all formulas
    stay logically identical — an Unsat from any member is therefore a
    global proof. Which member wins a close race is timing-dependent, so
    the DIP *sequence* (and the iteration count) may differ from the
    sequential attack; the convergence guarantee does not: a [Converged]
    key is provably correct regardless of the race order.

    The main [budget] is charged on the caller after each race by the
    members' conflict deltas — the total work actually spent, parallel or
    not. Solver stats in the result aggregate all members (sizes from
    member 0, work counters summed). *)
let run_portfolio ~pool ~members ?(max_iterations = 256) ?budget ?iteration_steps ~oracle
    (locked : Lock.locked) =
  let module P = Eda_util.Pool in
  (* Member 0 is the stock solver; the rest differ only in their seeded
     saved phases — the classic cheap portfolio diversification. *)
  let instances =
    Array.init members (fun i ->
        let inst = make_instance locked in
        if i > 0 then Solver.randomize_phases inst.solver (0x5eda + i);
        inst)
  in
  (* Conflicts accumulate on worker domains; the main budget is charged
     here on the caller, by delta, after each race joins. [charged] is
     the per-member conflict count already accounted for. *)
  let charged = Array.make members 0 in
  let charge () =
    match budget with
    | None -> ()
    | Some b ->
      Array.iteri
        (fun i inst ->
          let c = (Solver.stats inst.solver).Solver.conflicts in
          if c > charged.(i) then begin
            Budget.tick ~cost:(c - charged.(i)) b;
            charged.(i) <- c
          end)
        instances
  in
  let aggregate_stats () =
    Array.fold_left
      (fun acc inst ->
        let s = Solver.stats inst.solver in
        { acc with
          Solver.conflicts = acc.Solver.conflicts + s.Solver.conflicts;
          decisions = acc.Solver.decisions + s.Solver.decisions;
          propagations = acc.Solver.propagations + s.Solver.propagations;
          learnt = acc.Solver.learnt + s.Solver.learnt;
          learnt_live = acc.Solver.learnt_live + s.Solver.learnt_live;
          restarts = acc.Solver.restarts + s.Solver.restarts;
          db_reductions = acc.Solver.db_reductions + s.Solver.db_reductions;
          clauses_deleted = acc.Solver.clauses_deleted + s.Solver.clauses_deleted })
      (Solver.stats instances.(0).solver)
      (Array.sub instances 1 (members - 1))
  in
  let best_effort_key () =
    let inst = instances.(0) in
    match Solver.solve ~budget:(Budget.create ~steps:4096 ()) inst.solver with
    | Solver.Sat -> Some (Array.map (fun v -> Solver.model_value inst.solver v) inst.keys)
    | Solver.Unsat | Solver.Unknown _ -> None
  in
  let finish ?key iterations status =
    let stats = aggregate_stats () in
    Telemetry.note "sat_attack.status"
      ~attrs:
        [ ("status", Telemetry.Str (describe_status status));
          ("iterations", Telemetry.Int iterations);
          ("key_recovered", Telemetry.Bool (key <> None));
          ("members", Telemetry.Int members);
          ("learnt_live", Telemetry.Int stats.Solver.learnt_live);
          ("db_reductions", Telemetry.Int stats.Solver.db_reductions) ];
    { key; iterations; solver_stats = stats; status }
  in
  (* Cap each member's DIP query by the per-iteration allowance and by
     whatever remains of the main budget (speculative: every member gets
     the full remainder; the charge-by-delta above keeps the accounting
     exact). *)
  let step_cap () =
    match iteration_steps, Option.bind budget Budget.remaining_steps with
    | Some a, Some b -> Some (min a b)
    | (Some _ as cap), None -> cap
    | None, cap -> cap
  in
  let member_ids = Array.init members (fun i -> i) in
  let race_dip iterations =
    Telemetry.with_span "sat_attack.dip"
      ~attrs:
        [ ("iteration", Telemetry.Int iterations); ("members", Telemetry.Int members) ]
    @@ fun () ->
    let steps = step_cap () in
    let won =
      P.race ?budget ~label:"sat_attack" pool member_ids ~f:(fun ctx i ->
          let inst = instances.(i) in
          let tb = ctx.P.task_budget ?steps () in
          match Solver.solve ~budget:tb ~assumptions:[ inst.miter_on ] inst.solver with
          | Solver.Sat ->
            (* Extract the DIP here, while still on the solving domain. *)
            Some (`Dip (Array.map (fun v -> Solver.model_value inst.solver v) inst.data))
          | Solver.Unsat -> Some `No_dip
          | Solver.Unknown _ -> None)
    in
    charge ();
    won
  in
  let rec loop iterations =
    if iterations >= max_iterations then finish iterations Iteration_limit
    else begin
      match race_dip iterations with
      | Some (_, `Dip dip) ->
        let response = oracle dip in
        (* Same member order every iteration: formulas stay in lockstep. *)
        Array.iter (fun inst -> inst.add_io dip response) instances;
        Telemetry.count "sat_attack.dips" 1;
        loop (iterations + 1)
      | Some (_, `No_dip) ->
        (* One member proved no DIP remains; the proof covers all of them.
           Extract any consistent key (member 0, caller domain; this
           solve charges the main budget directly through [Budget.sub],
           not through [charge]). *)
        let inst = instances.(0) in
        let solve_extract () =
          match budget, iteration_steps with
          | None, None -> Solver.solve inst.solver
          | Some b, steps -> Solver.solve ~budget:(Budget.sub ?steps b) inst.solver
          | None, Some steps -> Solver.solve ~budget:(Budget.create ~steps ()) inst.solver
        in
        (match solve_extract () with
         | Solver.Sat ->
           let key = Array.map (fun v -> Solver.model_value inst.solver v) inst.keys in
           finish ~key iterations Converged
         | Solver.Unknown reason ->
           finish ?key:(best_effort_key ()) iterations (Budget_exhausted reason)
         | Solver.Unsat -> finish iterations Converged)
      | None ->
        (* Every member came back Unknown: the allowance ran out. *)
        let reason =
          match Option.bind budget Budget.status with
          | Some e -> e
          | None -> Budget.Out_of_steps  (* per-iteration caps consumed *)
        in
        finish ?key:(best_effort_key ()) iterations (Budget_exhausted reason)
    end
  in
  try loop 0 with Solver.Unsat_root -> finish 0 Converged

(* Portfolio width cap: phase diversification stops paying for itself
   quickly, and each member is a full miter encoding. *)
let max_members = 4

let run ?max_iterations ?budget ?iteration_steps ?pool ~oracle (locked : Lock.locked) =
  let members =
    match pool with
    | Some p -> min (Eda_util.Pool.size p) max_members
    | None -> 1
  in
  Telemetry.with_span "sat_attack.run"
    ~attrs:
      [ ("key_bits", Telemetry.Int (Array.length locked.Lock.key_inputs));
        ("data_bits", Telemetry.Int (Array.length locked.Lock.data_inputs));
        ("members", Telemetry.Int members) ]
    (fun () ->
      match pool with
      | Some p when members > 1 ->
        run_portfolio ~pool:p ~members ?max_iterations ?budget ?iteration_steps ~oracle
          locked
      | _ -> run_traced ?max_iterations ?budget ?iteration_steps ~oracle locked)

(** Checked entry point: lint the locked netlist, then run with internal
    failures converted to structured errors. *)
let run_checked ?max_iterations ?budget ?iteration_steps ?pool ~oracle locked =
  let open Eda_util.Eda_error in
  let* _ = Netlist.Lint.validate locked.Lock.circuit in
  guard ~engine:"sat-attack" (fun () ->
      run ?max_iterations ?budget ?iteration_steps ?pool ~oracle locked)

(** Convenience oracle from the original (unlocked) circuit. *)
let oracle_of_circuit original data = Netlist.Sim.eval original data

(** Attack success check: the recovered key need not equal the inserted
    key bit-for-bit, only produce an equivalent circuit. *)
let recovered_key_correct locked ~original result =
  match result.key with
  | None -> false
  | Some key ->
    let unlocked = Lock.apply_key locked ~key in
    Cnf.check_equivalence original unlocked = None
