(** The oracle-guided SAT attack on logic locking (Subramanyan et al.; the
    paper cites its SMT successor [33]). The attacker holds the locked
    netlist (reverse-engineered from layout) and a working chip (the
    oracle). Two copies of the locked circuit with shared data inputs and
    independent keys form a miter; each SAT solution is a distinguishing
    input pattern (DIP) whose oracle response prunes all keys disagreeing
    on it. When no DIP remains, any key consistent with the recorded I/O
    pairs is functionally correct. *)

module Circuit = Netlist.Circuit
module Solver = Sat.Solver
module Cnf = Sat.Cnf

module Budget = Eda_util.Budget
module Telemetry = Eda_util.Telemetry

type status =
  | Converged  (* no DIP remains: the returned key is provably correct *)
  | Iteration_limit  (* DIP loop hit max_iterations *)
  | Budget_exhausted of Budget.exhaustion  (* solver budget ran out *)

type result = {
  key : bool array option;
      (* recovered key; provably correct only when [status = Converged],
         best-effort (consistent with the recorded I/O pairs) otherwise *)
  iterations : int;  (* number of DIP queries completed *)
  solver_stats : Solver.stats;
  status : status;
}

let tie_equal solver va vb =
  Solver.add_clause solver
    [ Solver.lit_of_var va ~sign:true; Solver.lit_of_var vb ~sign:false ];
  Solver.add_clause solver
    [ Solver.lit_of_var va ~sign:false; Solver.lit_of_var vb ~sign:true ]

let fix solver v b = Solver.add_clause solver [ Solver.lit_of_var v ~sign:b ]

let describe_status = function
  | Converged -> "converged"
  | Iteration_limit -> "iteration limit reached"
  | Budget_exhausted e -> Budget.describe_exhaustion e

(** Run the attack. [oracle data] must return the correct outputs for the
    data inputs (the activated chip).

    [budget] bounds the whole attack (one step per solver conflict);
    [iteration_steps] additionally caps each individual DIP query, so one
    pathological miter cannot consume the entire allowance. On exhaustion
    the attack stops honestly: [status] records the reason, [iterations]
    how many DIPs completed, and [key] carries a best-effort key consistent
    with the I/O pairs recorded so far (extracted under a small grace
    budget), which is exactly the partial progress a real attacker keeps.

    Telemetry: one [sat_attack.run] span for the whole attack, one
    [sat_attack.dip] span per DIP query (the nested [sat.solve] spans
    carry the solver counters), a [sat_attack.dips] counter, and a final
    [sat_attack.status] note. *)
let run_traced ?(max_iterations = 256) ?budget ?iteration_steps ~oracle (locked : Lock.locked) =
  let c = locked.Lock.circuit in
  let solver = Solver.create () in
  let env_a = Cnf.encode ~solver c in
  let env_b = Cnf.encode ~solver c in
  let key_vars env = Array.map (fun id -> env.Cnf.vars.(id)) locked.Lock.key_inputs in
  let data_vars env = Array.map (fun id -> env.Cnf.vars.(id)) locked.Lock.data_inputs in
  let out_vars env = Array.map (fun o -> env.Cnf.vars.(o)) (Circuit.output_ids c) in
  (* Shared data inputs. *)
  Array.iteri (fun k va -> tie_equal solver va (data_vars env_b).(k)) (data_vars env_a);
  (* Miter on outputs, activated by assumption so it can be dropped for the
     final key extraction. *)
  let diffs =
    Array.to_list
      (Array.mapi (fun k oa -> Cnf.xor_var solver oa (out_vars env_b).(k)) (out_vars env_a))
  in
  let any_diff = Cnf.or_var solver diffs in
  let miter_on = Solver.lit_of_var any_diff ~sign:true in
  (* Record an I/O constraint: both key copies must reproduce the oracle
     response on this DIP, enforced on fresh circuit copies. *)
  let add_io_constraint dip response =
    List.iter
      (fun env_keys ->
        let env_f = Cnf.encode ~solver c in
        Array.iteri (fun k v -> fix solver v dip.(k)) (data_vars env_f);
        Array.iteri (fun k v -> fix solver v response.(k)) (out_vars env_f);
        Array.iteri (fun k v -> tie_equal solver v env_keys.(k)) (key_vars env_f))
      [ key_vars env_a; key_vars env_b ]
  in
  let solve_bounded ?(assumptions = []) () =
    match budget, iteration_steps with
    | None, None -> Solver.solve ~assumptions solver
    | Some b, steps -> Solver.solve ~budget:(Budget.sub ?steps b) ~assumptions solver
    | None, Some steps -> Solver.solve ~budget:(Budget.create ~steps ()) ~assumptions solver
  in
  (* Best-effort key: any key consistent with the I/O pairs recorded so
     far. Extracted under an independent grace budget so a spent main
     budget still yields partial progress rather than nothing. *)
  let best_effort_key () =
    match Solver.solve ~budget:(Budget.create ~steps:4096 ()) solver with
    | Solver.Sat ->
      Some (Array.map (fun v -> Solver.model_value solver v) (key_vars env_a))
    | Solver.Unsat | Solver.Unknown _ -> None
  in
  let finish ?key iterations status =
    let stats = Solver.stats solver in
    Telemetry.note "sat_attack.status"
      ~attrs:
        [ ("status", Telemetry.Str (describe_status status));
          ("iterations", Telemetry.Int iterations);
          ("key_recovered", Telemetry.Bool (key <> None));
          ("learnt_live", Telemetry.Int stats.Solver.learnt_live);
          ("db_reductions", Telemetry.Int stats.Solver.db_reductions) ];
    { key; iterations; solver_stats = stats; status }
  in
  let rec loop iterations =
    if iterations >= max_iterations then
      (* The scheme resisted this attacker budget; no key claimed. *)
      finish iterations Iteration_limit
    else begin
      match
        Telemetry.with_span "sat_attack.dip"
          ~attrs:[ ("iteration", Telemetry.Int iterations) ]
          (fun () -> solve_bounded ~assumptions:[ miter_on ] ())
      with
      | Solver.Sat ->
        let dip = Array.map (fun v -> Solver.model_value solver v) (data_vars env_a) in
        let response = oracle dip in
        add_io_constraint dip response;
        Telemetry.count "sat_attack.dips" 1;
        if Telemetry.active () then
          Telemetry.gauge "sat_attack.learnt_db"
            (float_of_int (Solver.stats solver).Solver.learnt_live);
        loop (iterations + 1)
      | Solver.Unknown reason ->
        finish ?key:(best_effort_key ()) iterations (Budget_exhausted reason)
      | Solver.Unsat ->
        (* No distinguishing input remains: extract any consistent key. *)
        (match solve_bounded () with
         | Solver.Sat ->
           let key = Array.map (fun v -> Solver.model_value solver v) (key_vars env_a) in
           finish ~key iterations Converged
         | Solver.Unknown reason ->
           finish ?key:(best_effort_key ()) iterations (Budget_exhausted reason)
         | Solver.Unsat ->
           (* Cannot happen with a truthful oracle. *)
           finish iterations Converged)
    end
  in
  try loop 0 with Solver.Unsat_root -> finish 0 Converged

let run ?max_iterations ?budget ?iteration_steps ~oracle (locked : Lock.locked) =
  Telemetry.with_span "sat_attack.run"
    ~attrs:
      [ ("key_bits", Telemetry.Int (Array.length locked.Lock.key_inputs));
        ("data_bits", Telemetry.Int (Array.length locked.Lock.data_inputs)) ]
    (fun () -> run_traced ?max_iterations ?budget ?iteration_steps ~oracle locked)

(** Checked entry point: lint the locked netlist, then run with internal
    failures converted to structured errors. *)
let run_checked ?max_iterations ?budget ?iteration_steps ~oracle locked =
  let open Eda_util.Eda_error in
  let* _ = Netlist.Lint.validate locked.Lock.circuit in
  guard ~engine:"sat-attack" (fun () ->
      run ?max_iterations ?budget ?iteration_steps ~oracle locked)

(** Convenience oracle from the original (unlocked) circuit. *)
let oracle_of_circuit original data = Netlist.Sim.eval original data

(** Attack success check: the recovered key need not equal the inserted
    key bit-for-bit, only produce an equivalent circuit. *)
let recovered_key_correct locked ~original result =
  match result.key with
  | None -> false
  | Some key ->
    let unlocked = Lock.apply_key locked ~key in
    Cnf.check_equivalence original unlocked = None
