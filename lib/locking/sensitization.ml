(** Key-sensitization attack on logic locking (Rajendran et al., the
    "security analysis of logic obfuscation" the paper cites as [23]) —
    the pre-SAT-attack generation of oracle-guided attacks.

    Idea: if an input pattern *sensitizes* a key bit to a primary output
    (the output flips iff the key bit flips, with all other key bits
    fixed), then one oracle query on that pattern reveals the key bit.
    Isolated key gates are trivially sensitizable; key gates that
    interfere with each other (one key's path runs through another's) are
    not, which is exactly why interference-aware key placement was
    proposed — and why the SAT attack superseded this one.

    The implementation finds sensitizing patterns with the SAT solver:
    pattern X sensitizes key k at assumed values K' for the other keys if
    C(X, K'[k:=0]) != C(X, K'[k:=1]). *)

module Circuit = Netlist.Circuit
module Solver = Sat.Solver
module Cnf = Sat.Cnf

type outcome = {
  recovered : (int * bool) list;  (* key index, value *)
  unresolved : int list;  (* keys with no sensitizing pattern found *)
  oracle_queries : int;
}

(** Attack: for each key bit in turn, search a pattern sensitizing it
    (other keys fixed to the current best guess — recovered values when
    available, 0 otherwise). [passes] re-runs the sweep with the improved
    guesses, the fixpoint refinement the original attack applies. *)
let run_pass ~oracle ~guesses (locked : Lock.locked) =
  let c = locked.Lock.circuit in
  let nk = Array.length locked.Lock.key_inputs in
  let recovered = ref [] and unresolved = ref [] in
  let queries = ref 0 in
  for k = 0 to nk - 1 do
    (* Fresh solver per key bit: two copies differing only in key k. *)
    let solver = Solver.create () in
    let env_a = Cnf.encode ~solver c in
    let env_b = Cnf.encode ~solver c in
    let tie va vb =
      Solver.add_clause solver
        [ Solver.lit_of_var va ~sign:true; Solver.lit_of_var vb ~sign:false ];
      Solver.add_clause solver
        [ Solver.lit_of_var va ~sign:false; Solver.lit_of_var vb ~sign:true ]
    in
    let fix env node b =
      Solver.add_clause solver [ Cnf.lit env ~node ~sign:b ]
    in
    (* Shared data inputs. *)
    Array.iteri
      (fun i ia -> tie env_a.Cnf.vars.(ia) env_b.Cnf.vars.(locked.Lock.data_inputs.(i)))
      locked.Lock.data_inputs;
    (* Other keys: this pass's recovered value, else the incoming guess. *)
    Array.iteri
      (fun j id ->
        if j <> k then begin
          let value =
            match List.assoc_opt j !recovered with
            | Some v -> v
            | None -> guesses.(j)
          in
          fix env_a id value;
          fix env_b id value
        end)
      locked.Lock.key_inputs;
    (* Key k: 0 in copy A, 1 in copy B. *)
    fix env_a locked.Lock.key_inputs.(k) false;
    fix env_b locked.Lock.key_inputs.(k) true;
    (* Outputs must differ. *)
    let outs_a = Circuit.output_ids c and outs_b = Circuit.output_ids c in
    let diffs =
      Array.to_list
        (Array.mapi
           (fun i oa -> Cnf.xor_var solver env_a.Cnf.vars.(oa) env_b.Cnf.vars.(outs_b.(i)))
           outs_a)
    in
    let any = Cnf.or_var solver diffs in
    Solver.add_clause solver [ Solver.lit_of_var any ~sign:true ];
    (match Solver.solve solver with
     | Solver.Unsat -> unresolved := k :: !unresolved
     | Solver.Unknown _ -> assert false  (* unbudgeted solve cannot abstain *)
     | Solver.Sat ->
       let pattern =
         Array.map
           (fun id -> Solver.model_value solver env_a.Cnf.vars.(id))
           locked.Lock.data_inputs
       in
       (* Query the oracle and match it against both predictions. A truth
          that matches neither means an interfering (wrongly guessed) key
          corrupted the prediction: leave this bit unresolved rather than
          inferring garbage. *)
       incr queries;
       let truth = oracle pattern in
       let predicted env =
         Array.map (fun o -> Solver.model_value solver env.Cnf.vars.(o)) (Circuit.output_ids c)
       in
       let p0 = predicted env_a and p1 = predicted env_b in
       if truth = p0 then recovered := (k, false) :: !recovered
       else if truth = p1 then recovered := (k, true) :: !recovered
       else unresolved := k :: !unresolved)
  done;
  { recovered = List.rev !recovered;
    unresolved = List.rev !unresolved;
    oracle_queries = !queries }

let run ?(passes = 3) ~oracle (locked : Lock.locked) =
  let nk = Array.length locked.Lock.key_inputs in
  let guesses = Array.make nk false in
  let total_queries = ref 0 in
  let last = ref None in
  for _ = 1 to passes do
    let outcome = run_pass ~oracle ~guesses locked in
    total_queries := !total_queries + outcome.oracle_queries;
    List.iter (fun (k, v) -> guesses.(k) <- v) outcome.recovered;
    last := Some outcome
  done;
  match !last with
  | Some outcome -> { outcome with oracle_queries = !total_queries }
  | None -> { recovered = []; unresolved = []; oracle_queries = 0 }

(** Accuracy of the recovered bits against the inserted key (unresolved
    bits score as coin flips). *)
let accuracy outcome (locked : Lock.locked) =
  let nk = Array.length locked.Lock.correct_key in
  let score = ref (0.5 *. Float.of_int (List.length outcome.unresolved)) in
  List.iter
    (fun (k, v) -> if locked.Lock.correct_key.(k) = v then score := !score +. 1.0)
    outcome.recovered;
  !score /. Float.of_int nk
