(** The oracle-guided SAT attack on logic locking (Subramanyan et al.;
    the paper cites its SMT successor [33]). The attacker holds the locked
    netlist and a working chip (the oracle); distinguishing input patterns
    prune keys until any consistent key is provably correct. *)

type status =
  | Converged  (** no DIP remains: the returned key is provably correct *)
  | Iteration_limit  (** DIP loop hit [max_iterations]; the scheme resisted *)
  | Budget_exhausted of Eda_util.Budget.exhaustion
      (** solver budget ran out mid-attack *)

type result = {
  key : bool array option;
      (** recovered key — provably correct when [status = Converged];
          under [Budget_exhausted] a best-effort key consistent with the
          I/O pairs recorded so far (may or may not unlock the design) *)
  iterations : int;  (** number of DIP oracle queries completed *)
  solver_stats : Sat.Solver.stats;
  status : status;
}

(** Run the attack; [oracle data] must return the correct outputs for the
    data inputs. [max_iterations] (default 256) bounds the DIP loop.
    [budget] bounds total solver work (one step per conflict);
    [iteration_steps] additionally caps each individual DIP query. On any
    exhaustion the attack returns honestly instead of hanging: [status]
    records the reason and [iterations] the DIPs completed.

    With [pool] (of size > 1) the attack becomes a solver portfolio: up
    to 4 phase-seeded copies of the miter race each DIP query and the
    first decisive answer wins. Which member wins a close race is
    timing-dependent, so the DIP sequence and iteration count may differ
    from the sequential attack — but a [Converged] key is provably
    correct either way, and the budget is still charged for all conflicts
    actually spent. *)
val run :
  ?max_iterations:int ->
  ?budget:Eda_util.Budget.t ->
  ?iteration_steps:int ->
  ?pool:Eda_util.Pool.t ->
  oracle:(bool array -> bool array) ->
  Lock.locked ->
  result

(** Checked entry point: lints the locked netlist first and converts
    internal failures into structured errors. *)
val run_checked :
  ?max_iterations:int ->
  ?budget:Eda_util.Budget.t ->
  ?iteration_steps:int ->
  ?pool:Eda_util.Pool.t ->
  oracle:(bool array -> bool array) ->
  Lock.locked ->
  (result, Eda_util.Eda_error.t) Stdlib.result

val describe_status : status -> string

(** Oracle built from the original (activated) circuit. *)
val oracle_of_circuit : Netlist.Circuit.t -> bool array -> bool array

(** Success check: the recovered key need not equal the inserted key
    bit-for-bit, only activate an equivalent circuit (SAT-checked). *)
val recovered_key_correct : Lock.locked -> original:Netlist.Circuit.t -> result -> bool
