(** Grid placement by simulated annealing on half-perimeter wirelength
    (HPWL) — the physical-synthesis substrate (Fig. 1's place-and-route
    stage). Proximity is the attack surface of split manufacturing: a
    PPA-optimal placer puts connected cells next to each other, which is
    precisely the hint [52]-style attackers exploit.

    One entry point, optional capabilities: {!place} always works; pass
    [?budget] to bound it (annealing is anytime — early stops degrade
    quality, not validity), [?starts]/[?pool] for best-of-N multi-start,
    telemetry is ambient. *)

(** A placement: geometry over the circuit's nodes. The record is
    transparent — IR-drop analysis, shielding and split-manufacturing
    attacks read the grid directly. *)
type t = {
  circuit : Netlist.Circuit.t;
  cols : int;
  rows : int;
  position : (int * int) array;  (** per node: (col, row) *)
}

(** Result of {!place}. *)
type outcome = {
  placement : t;
  moves_performed : int;
      (** the winning start's annealing moves; fewer than requested when
          the budget ran out *)
  starts : int;
  best_start : int;  (** index of the winning start (0 when [starts = 1]) *)
}

(** [place ?starts ?moves ?budget ?pool rng circuit] — random initial
    placement refined by simulated annealing. With [starts > 1], each
    start anneals an independent {!Eda_util.Rng.split} stream and the
    lowest-wirelength result wins (ties to the lowest index) — an ordered
    reduction, so unbudgeted results are identical at any domain count.
    [starts] defaults to 1, which is bit-identical to the classic
    sequential placer. *)
val place :
  ?starts:int ->
  ?moves:int ->
  ?budget:Eda_util.Budget.t ->
  ?pool:Eda_util.Pool.t ->
  Eda_util.Rng.t ->
  Netlist.Circuit.t ->
  outcome

(** @deprecated Alias of {!place} with one start, returning the classic
    (placement, moves performed) pair. *)
val place_budgeted :
  Eda_util.Rng.t ->
  ?moves:int ->
  ?budget:Eda_util.Budget.t ->
  Netlist.Circuit.t ->
  t * int

(** Total half-perimeter wirelength of the placement. *)
val wirelength : t -> int

(** Manhattan distance between two placed nodes. *)
val distance : t -> int -> int -> int

(** Placement perturbation defense [54]: re-place with a privacy term
    penalizing proximity of connected cells, trading wirelength for
    resistance against proximity attacks. [lambda] weighs the penalty. *)
val perturb : Eda_util.Rng.t -> lambda:float -> ?moves:int -> t -> t
