(** Grid placement by simulated annealing on half-perimeter wirelength
    (HPWL) — the physical-synthesis substrate (Fig. 1's place-and-route
    stage). Proximity is the attack surface of split manufacturing: a
    PPA-optimal placer puts connected cells next to each other, which is
    precisely the hint [52]-style attackers exploit. *)

module Circuit = Netlist.Circuit
module Rng = Eda_util.Rng

type t = {
  circuit : Circuit.t;
  cols : int;
  rows : int;
  position : (int * int) array;  (* per node: (col, row) *)
}

(* Nets as (driver, consumers); geometry treats a net as its pin set. *)
let nets circuit =
  let fanouts = Circuit.fanouts circuit in
  let nets = ref [] in
  Array.iteri
    (fun driver consumers -> if consumers <> [] then nets := (driver, consumers) :: !nets)
    fanouts;
  !nets

let hpwl_of_net position (driver, consumers) =
  let xs = List.map (fun n -> fst position.(n)) (driver :: consumers) in
  let ys = List.map (fun n -> snd position.(n)) (driver :: consumers) in
  let span vs = List.fold_left max min_int vs - List.fold_left min max_int vs in
  span xs + span ys

let total_hpwl position net_list =
  List.fold_left (fun acc net -> acc + hpwl_of_net position net) 0 net_list

(** Random initial placement on the smallest near-square grid that fits. *)
let initial rng circuit =
  let n = Circuit.node_count circuit in
  let cols = int_of_float (ceil (sqrt (float_of_int n))) in
  let rows = (n + cols - 1) / cols in
  let slots = Array.init (cols * rows) (fun i -> (i mod cols, i / cols)) in
  Rng.shuffle rng slots;
  { circuit; cols; rows; position = Array.sub slots 0 n }

(** Simulated-annealing refinement: pairwise swaps, geometric cooling.
    [budget] is charged one step per attempted move and checked every 64
    moves; annealing is an anytime algorithm, so stopping early degrades
    quality, not validity. Returns the refined placement and the number of
    moves actually performed.

    Telemetry: a [placement.anneal] span with [placement.moves_accepted] /
    [placement.moves_rejected] counters, a periodic [placement.temperature]
    gauge (every 1024 moves) and a final [placement.final_temperature]
    gauge. Counters are accumulated locally and emitted once at the end of
    the span, so the per-move hot path stays telemetry-free. *)
let anneal_budgeted rng ?(moves = 20_000) ?budget ?(t_start = 8.0) ?(t_end = 0.05) placement
    =
  let module T = Eda_util.Telemetry in
  T.with_span "placement.anneal"
    ~attrs:
      [ ("nodes", T.Int (Circuit.node_count placement.circuit));
        ("moves_requested", T.Int moves) ]
  @@ fun () ->
  let traced = T.active () in
  let accepted = ref 0 in
  let rejected = ref 0 in
  let pos = Array.copy placement.position in
  let net_list = nets placement.circuit in
  (* Incremental cost: nets touching a node. *)
  let touching = Array.make (Circuit.node_count placement.circuit) [] in
  List.iter
    (fun ((driver, consumers) as net) ->
      List.iter
        (fun n -> touching.(n) <- net :: touching.(n))
        (driver :: consumers))
    net_list;
  let n = Array.length pos in
  let cost_around a b =
    let relevant = touching.(a) @ touching.(b) in
    List.fold_left (fun acc net -> acc + hpwl_of_net pos net) 0 relevant
  in
  let alpha = (t_end /. t_start) ** (1.0 /. float_of_int moves) in
  let temp = ref t_start in
  let performed = ref 0 in
  let stopped = ref false in
  while (not !stopped) && !performed < moves do
    (match budget with
     | Some b when !performed land 63 = 0 ->
       Eda_util.Budget.tick ~cost:(min 64 (moves - !performed)) b;
       if Eda_util.Budget.exhausted b then stopped := true
     | Some _ | None -> ());
    if not !stopped then begin
      let a = Rng.int rng n and b = Rng.int rng n in
      if a <> b then begin
        let before = cost_around a b in
        let tmp = pos.(a) in
        pos.(a) <- pos.(b);
        pos.(b) <- tmp;
        let after = cost_around a b in
        let delta = float_of_int (after - before) in
        let accept = delta <= 0.0 || Rng.float rng < exp (-.delta /. !temp) in
        if accept then incr accepted
        else begin
          incr rejected;
          let tmp = pos.(a) in
          pos.(a) <- pos.(b);
          pos.(b) <- tmp
        end
      end;
      temp := !temp *. alpha;
      incr performed;
      if traced && !performed land 1023 = 0 then T.gauge "placement.temperature" !temp
    end
  done;
  T.count "placement.moves_accepted" !accepted;
  T.count "placement.moves_rejected" !rejected;
  T.gauge "placement.final_temperature" !temp;
  { placement with position = pos }, !performed

let wirelength placement = total_hpwl placement.position (nets placement.circuit)

(** Result of the unified placement entry point. *)
type outcome = {
  placement : t;
  moves_performed : int;  (* the winning start's count; fewer than requested on exhaustion *)
  starts : int;
  best_start : int;  (* index of the winning start (0 when [starts = 1]) *)
}

(** Full placement flow, one entry point: random initial placement plus
    annealing, optionally [?budget]-bounded, optionally best-of-[starts]
    multi-start (each start anneals an independent {!Rng.split} stream;
    the lowest-wirelength result wins, ties to the lowest start index),
    optionally parallel across starts via [?pool]. The selection is an
    ordered reduction over start indices, so an unbudgeted multi-start
    result is identical at any domain count; with [starts = 1] (the
    default) the result is bit-identical to the classic sequential
    placer. Under a step budget, sequential starts share the budget
    serially while pooled starts each receive the remaining allowance
    speculatively (the caller's budget is charged for all performed
    moves after the join) — coverage differs at the margin, validity
    never. *)
let place ?(starts = 1) ?moves ?budget ?pool rng circuit =
  let module T = Eda_util.Telemetry in
  let module P = Eda_util.Pool in
  if starts < 1 then invalid_arg "Placement.place: starts must be >= 1";
  let domains = match pool with Some p -> P.size p | None -> 1 in
  T.with_span "placement.place"
    ~attrs:
      [ ("nodes", T.Int (Circuit.node_count circuit));
        ("starts", T.Int starts);
        ("domains", T.Int domains) ]
  @@ fun () ->
  if starts = 1 then begin
    let placement, performed = anneal_budgeted rng ?moves ?budget (initial rng circuit) in
    { placement; moves_performed = performed; starts = 1; best_start = 0 }
  end
  else begin
    let streams = Rng.split rng starts in
    let run_start ?budget i =
      let r = streams.(i) in
      let placement, performed = anneal_budgeted r ?moves ?budget (initial r circuit) in
      (placement, performed, wirelength placement)
    in
    let candidates =
      match pool with
      | Some p ->
        (* any pool size, 1 included, takes this path: captured
           [pool.task] spans keep the trace shape uniform across -j *)
        let step_cap = Option.bind budget Eda_util.Budget.remaining_steps in
        let results =
          P.parallel_map ?budget ~label:"placement" p
            (Array.init starts (fun i -> i))
            ~f:(fun ctx i ->
              let tb =
                match budget with
                | None -> None
                | Some _ -> Some (ctx.P.task_budget ?steps:step_cap ())
              in
              run_start ?budget:tb i)
        in
        (* moves performed on worker domains, charged here on the caller *)
        Option.iter
          (fun b ->
            Array.iter
              (function
                | Some (_, performed, _) -> Eda_util.Budget.tick ~cost:performed b
                | None -> ())
              results)
          budget;
        results
      | None -> Array.init starts (fun i -> Some (run_start ?budget i))
    in
    let best = ref None in
    let completed = ref 0 in
    Array.iteri
      (fun i candidate ->
        match candidate with
        | None -> ()
        | Some (placement, performed, wl) ->
          incr completed;
          (match !best with
           | Some (_, _, _, best_wl) when best_wl <= wl -> ()
           | _ -> best := Some (i, placement, performed, wl)))
      candidates;
    T.count "placement.starts_completed" !completed;
    match !best with
    | Some (i, placement, performed, wl) ->
      T.gauge "placement.best_wirelength" (float_of_int wl);
      { placement; moves_performed = performed; starts; best_start = i }
    | None ->
      (* budget exhausted before any start ran: fall back to stream 0's
         unrefined initial placement — anytime semantics, never a failure *)
      { placement = initial streams.(0) circuit;
        moves_performed = 0;
        starts;
        best_start = 0 }
  end

(** @deprecated Alias of {!place} restricted to one start; returns the
    classic (placement, moves) pair. *)
let place_budgeted rng ?moves ?budget circuit =
  let o = place ?moves ?budget rng circuit in
  (o.placement, o.moves_performed)

let distance placement a b =
  let xa, ya = placement.position.(a) and xb, yb = placement.position.(b) in
  abs (xa - xb) + abs (ya - yb)

(** Placement perturbation defense [54]: re-place with a privacy term that
    penalizes proximity of connected cells, trading wirelength for
    resistance against proximity attacks. [lambda] weighs the penalty. *)
let perturb rng ~lambda ?(moves = 20_000) placement =
  let pos = Array.copy placement.position in
  let net_list = nets placement.circuit in
  let touching = Array.make (Circuit.node_count placement.circuit) [] in
  List.iter
    (fun ((driver, consumers) as net) ->
      List.iter (fun n -> touching.(n) <- net :: touching.(n)) (driver :: consumers))
    net_list;
  let n = Array.length pos in
  (* Privacy cost: negative sum of pairwise driver-consumer distances
     (we *reward* spreading connected pins apart). *)
  let privacy_of_net (driver, consumers) =
    List.fold_left
      (fun acc c ->
        let xd, yd = pos.(driver) and xc, yc = pos.(c) in
        acc - (abs (xd - xc) + abs (yd - yc)))
      0 consumers
  in
  let cost_around a b =
    let relevant = touching.(a) @ touching.(b) in
    List.fold_left
      (fun acc net ->
        acc +. float_of_int (hpwl_of_net pos net)
        +. (lambda *. float_of_int (privacy_of_net net)))
      0.0 relevant
  in
  let temp = ref 8.0 in
  let alpha = (0.05 /. 8.0) ** (1.0 /. float_of_int moves) in
  for _ = 1 to moves do
    let a = Rng.int rng n and b = Rng.int rng n in
    if a <> b then begin
      let before = cost_around a b in
      let tmp = pos.(a) in
      pos.(a) <- pos.(b);
      pos.(b) <- tmp;
      let after = cost_around a b in
      let delta = after -. before in
      let accept = delta <= 0.0 || Rng.float rng < exp (-.delta /. !temp) in
      if not accept then begin
        let tmp = pos.(a) in
        pos.(a) <- pos.(b);
        pos.(b) <- tmp
      end
    end;
    temp := !temp *. alpha
  done;
  { placement with position = pos }
