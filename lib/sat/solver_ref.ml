(** Reference CDCL solver — the pre-optimization, allocation-heavy
    implementation, kept verbatim as (a) a differential-testing oracle for
    {!Solver} and (b) the honest "before" baseline for [bench perf].

    Architecture matches {!Solver} feature-for-feature except for the data
    layout (cons-cell trail and watch lists, per-decision trail snapshots)
    and the absence of a learnt-clause database (learnt clauses accumulate
    without bound). Do not use it from production engines.

    Literal encoding: variable [v >= 0]; positive literal [2v], negative
    [2v+1]. *)

type lit = int

let lit_of_var v ~sign = if sign then 2 * v else (2 * v) + 1
let var_of_lit l = l / 2
let pos l = l land 1 = 0
let negate l = l lxor 1

type lbool = LTrue | LFalse | LUndef

type t = {
  mutable nvars : int;
  mutable clauses : lit array list;  (* original + learnt, for stats only *)
  mutable watches : lit array list array;  (* watch lists per literal *)
  mutable assign : lbool array;  (* per variable *)
  mutable level : int array;  (* decision level per variable *)
  mutable reason : lit array option array;  (* antecedent clause per variable *)
  mutable trail : lit list;
  mutable trail_len : int;
  mutable decisions : (lit * lit list) list;  (* decision lit, trail snapshot *)
  mutable activity : float array;
  mutable var_inc : float;
  mutable phase : bool array;
  mutable propagation_queue : lit list;
  mutable conflicts : int;
  mutable num_decisions : int;
  mutable propagations : int;
  mutable learnt_count : int;
  mutable num_restarts : int;
}

let create () =
  { nvars = 0;
    clauses = [];
    watches = Array.make 16 [];
    assign = Array.make 8 LUndef;
    level = Array.make 8 0;
    reason = Array.make 8 None;
    trail = [];
    trail_len = 0;
    decisions = [];
    activity = Array.make 8 0.0;
    var_inc = 1.0;
    phase = Array.make 8 false;
    propagation_queue = [];
    conflicts = 0;
    num_decisions = 0;
    propagations = 0;
    learnt_count = 0;
    num_restarts = 0 }

let ensure_var s v =
  if v >= s.nvars then begin
    let need = v + 1 in
    if 2 * need > Array.length s.watches then begin
      let cap = max (2 * need) (2 * Array.length s.watches) in
      let watches = Array.make cap [] in
      Array.blit s.watches 0 watches 0 (2 * s.nvars);
      s.watches <- watches;
      let grow_arr a def =
        let b = Array.make (cap / 2) def in
        Array.blit a 0 b 0 s.nvars;
        b
      in
      s.assign <- grow_arr s.assign LUndef;
      s.level <- grow_arr s.level 0;
      s.reason <- grow_arr s.reason None;
      s.activity <- grow_arr s.activity 0.0;
      s.phase <- grow_arr s.phase false
    end;
    s.nvars <- need
  end

let new_var s =
  let v = s.nvars in
  ensure_var s v;
  v

let value_lit s l =
  match s.assign.(var_of_lit l) with
  | LUndef -> LUndef
  | LTrue -> if pos l then LTrue else LFalse
  | LFalse -> if pos l then LFalse else LTrue

let enqueue s l reason =
  let v = var_of_lit l in
  s.assign.(v) <- (if pos l then LTrue else LFalse);
  s.level.(v) <- List.length s.decisions;
  s.reason.(v) <- reason;
  s.phase.(v) <- pos l;
  s.trail <- l :: s.trail;
  s.trail_len <- s.trail_len + 1;
  s.propagation_queue <- l :: s.propagation_queue

exception Unsat_root

let backtrack s target_level =
  let rec drop_decisions ds =
    if List.length ds <= target_level then ds
    else match ds with
      | [] -> []
      | _ :: tl -> drop_decisions tl
  in
  let rec unwind trail =
    match trail with
    | [] -> []
    | l :: rest ->
      let v = var_of_lit l in
      if s.level.(v) > target_level then begin
        s.assign.(v) <- LUndef;
        s.reason.(v) <- None;
        unwind rest
      end
      else trail
  in
  s.trail <- unwind s.trail;
  s.trail_len <- List.length s.trail;
  s.decisions <- drop_decisions s.decisions;
  s.propagation_queue <- []

(** Add a clause; simplifies trivially satisfied/duplicate literals.
    Backtracks to the root level first, so it is safe to call between
    incremental [solve] invocations. Raises [Unsat_root] if the clause is
    falsified at level 0. *)
let add_clause s lits =
  backtrack s 0;
  let lits = List.sort_uniq compare lits in
  let tautology =
    List.exists (fun l -> List.mem (negate l) lits) lits
  in
  if not tautology then begin
    List.iter (fun l -> ensure_var s (var_of_lit l)) lits;
    (* Drop root-level false literals. *)
    let at_root = s.decisions = [] in
    let lits =
      if at_root then List.filter (fun l -> value_lit s l <> LFalse) lits
      else lits
    in
    let already_sat = at_root && List.exists (fun l -> value_lit s l = LTrue) lits in
    if not already_sat then begin
      match lits with
      | [] -> raise Unsat_root
      | [ l ] ->
        if value_lit s l = LFalse then raise Unsat_root
        else if value_lit s l = LUndef then enqueue s l None
      | l0 :: l1 :: _ ->
        let arr = Array.of_list lits in
        s.clauses <- arr :: s.clauses;
        s.watches.(negate l0) <- arr :: s.watches.(negate l0);
        s.watches.(negate l1) <- arr :: s.watches.(negate l1)
    end
  end

(* Propagate all enqueued literals; returns conflicting clause if any. *)
let propagate s =
  let conflict = ref None in
  while s.propagation_queue <> [] && !conflict = None do
    match s.propagation_queue with
    | [] -> ()
    | l :: rest ->
      s.propagation_queue <- rest;
      s.propagations <- s.propagations + 1;
      let watching = s.watches.(l) in
      s.watches.(l) <- [];
      let rec go = function
        | [] -> ()
        | clause :: tl ->
          (match !conflict with
           | Some _ ->
             (* Conflict found: re-register remaining clauses unchanged. *)
             s.watches.(l) <- clause :: s.watches.(l);
             go tl
           | None ->
             (* Ensure the false literal is at position 1. *)
             let falsified = negate l in
             if clause.(0) = falsified then begin
               clause.(0) <- clause.(1);
               clause.(1) <- falsified
             end;
             if value_lit s clause.(0) = LTrue then begin
               (* Satisfied; keep watching. *)
               s.watches.(l) <- clause :: s.watches.(l);
               go tl
             end
             else begin
               (* Find a new literal to watch. *)
               let n = Array.length clause in
               let found = ref false in
               let k = ref 2 in
               while (not !found) && !k < n do
                 if value_lit s clause.(!k) <> LFalse then begin
                   let tmp = clause.(1) in
                   clause.(1) <- clause.(!k);
                   clause.(!k) <- tmp;
                   s.watches.(negate clause.(1)) <- clause :: s.watches.(negate clause.(1));
                   found := true
                 end;
                 incr k
               done;
               if !found then go tl
               else begin
                 (* Unit or conflict. *)
                 s.watches.(l) <- clause :: s.watches.(l);
                 (match value_lit s clause.(0) with
                  | LFalse -> conflict := Some clause
                  | LUndef -> enqueue s clause.(0) (Some clause)
                  | LTrue -> ());
                 go tl
               end
             end)
      in
      go watching
  done;
  if !conflict <> None then s.propagation_queue <- [];
  !conflict

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let decay s = s.var_inc <- s.var_inc /. 0.95

(* First-UIP learning. Returns learnt clause (asserting literal first) and
   backtrack level. *)
let analyze s conflict =
  let current_level = List.length s.decisions in
  let seen = Hashtbl.create 32 in
  let learnt = ref [] in
  let counter = ref 0 in
  let asserting = ref (-1) in
  let absorb clause =
    Array.iter
      (fun q ->
        let v = var_of_lit q in
        if (not (Hashtbl.mem seen v)) && s.assign.(v) <> LUndef then begin
          Hashtbl.replace seen v ();
          bump s v;
          if s.level.(v) = current_level then incr counter
          else if s.level.(v) > 0 then learnt := q :: !learnt
        end)
      clause
  in
  absorb conflict;
  (* Walk the trail backwards until one current-level literal remains. *)
  let trail = ref s.trail in
  let continue = ref true in
  while !continue do
    match !trail with
    | [] -> continue := false
    | p :: rest ->
      trail := rest;
      let v = var_of_lit p in
      if Hashtbl.mem seen v && s.level.(v) = current_level then begin
        decr counter;
        if !counter = 0 then begin
          asserting := negate p;
          continue := false
        end
        else begin
          match s.reason.(v) with
          | Some clause -> absorb clause
          | None -> ()  (* decision literal with counter > 0: shouldn't occur *)
        end
      end
  done;
  let learnt_lits = !asserting :: !learnt in
  let back_level =
    List.fold_left
      (fun acc q ->
        let lv = s.level.(var_of_lit q) in
        if q <> !asserting && lv > acc then lv else acc)
      0 !learnt
  in
  learnt_lits, back_level

let pick_branch s =
  let best = ref (-1) and best_act = ref neg_infinity in
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) = LUndef && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  if !best < 0 then None
  else Some (lit_of_var !best ~sign:s.phase.(!best))

let luby i =
  (* Luby sequence: 1 1 2 1 1 2 4 ... *)
  let rec go k i =
    if i = (1 lsl k) - 1 then 1 lsl (k - 1)
    else if i < (1 lsl k) - 1 then go (k - 1) (i - (1 lsl (k - 1)) + 1)
    else go (k + 1) i
  in
  go 1 i

type result =
  | Sat
  | Unsat
  | Unknown of Eda_util.Budget.exhaustion
      (** The budget ran out before the search concluded. Security metrics
          are step functions, so a bounded "don't know" must stay distinct
          from either definite answer. *)

(* The search loop proper; [solve] below wraps it in a telemetry span. *)
let solve_raw ?budget ~assumptions s =
  (* Reset to root and re-propagate the root-level trail: units enqueued by
     [add_clause] may not have been propagated yet (backtracking clears the
     propagation queue). Re-propagating assigned literals is idempotent. *)
  backtrack s 0;
  s.propagation_queue <- s.trail;
  match propagate s with
  | Some _ -> Unsat
  | None ->
    let restart_count = ref 1 in
    let conflicts_until_restart = ref (32 * luby 1) in
    let result = ref None in
    (* Install assumptions as pseudo-decisions at successive levels. *)
    let rec install = function
      | [] -> true
      | a :: rest ->
        (match value_lit s a with
         | LTrue -> install rest
         | LFalse -> false
         | LUndef ->
           s.decisions <- (a, s.trail) :: s.decisions;
           enqueue s a None;
           (match propagate s with
            | Some _ -> false
            | None -> install rest))
    in
    let num_assumptions = List.length assumptions in
    if not (install assumptions) then Unsat
    else begin
      while !result = None do
        match propagate s with
        | Some conflict ->
          s.conflicts <- s.conflicts + 1;
          (* One budget step per conflict; a definite Unsat at assumption
             level still wins over Unknown. *)
          let stop =
            match budget with
            | None -> None
            | Some b ->
              (match Eda_util.Budget.spend b with Ok () -> None | Error e -> Some e)
          in
          let level = List.length s.decisions in
          if level <= num_assumptions then result := Some Unsat
          else begin
            match stop with
            | Some e -> result := Some (Unknown e)
            | None ->
            let learnt, back = analyze s conflict in
            let back = max back num_assumptions in
            backtrack s back;
            (match learnt with
             | [] -> result := Some Unsat
             | [ l ] ->
               if value_lit s l = LFalse then result := Some Unsat
               else if value_lit s l = LUndef then enqueue s l None
             | l0 :: _ :: _ ->
               let arr = Array.of_list learnt in
               s.clauses <- arr :: s.clauses;
               s.learnt_count <- s.learnt_count + 1;
               s.watches.(negate arr.(0)) <- arr :: s.watches.(negate arr.(0));
               s.watches.(negate arr.(1)) <- arr :: s.watches.(negate arr.(1));
               if value_lit s l0 = LUndef then enqueue s l0 (Some arr));
            decay s;
            decr conflicts_until_restart;
            if !conflicts_until_restart <= 0 && !result = None then begin
              incr restart_count;
              s.num_restarts <- s.num_restarts + 1;
              conflicts_until_restart := 32 * luby !restart_count;
              backtrack s num_assumptions
            end
          end
        | None ->
          (* Deadline/cancellation check between decisions, so an instance
             propagating without conflicts still honours its budget. *)
          let stop =
            match budget with
            | Some b when s.num_decisions land 255 = 0 -> Eda_util.Budget.status b
            | Some _ | None -> None
          in
          (match stop with
           | Some e -> result := Some (Unknown e)
           | None ->
             (match pick_branch s with
              | None -> result := Some Sat
              | Some l ->
                s.num_decisions <- s.num_decisions + 1;
                s.decisions <- (l, s.trail) :: s.decisions;
                enqueue s l None))
      done;
      match !result with
      | Some r ->
        r
      | None -> assert false
    end

(** Solve under [assumptions]. The solver state is reusable across calls
    (incremental interface); learnt clauses persist — including across an
    [Unknown] answer, so a later call with a fresh budget resumes with all
    learnt clauses retained.

    [budget] is charged one step per conflict and checked at every conflict
    and periodically between decisions; without it the search is unbounded
    and the answer is always [Sat]/[Unsat].

    Unlike [Solver], this reference implementation emits no telemetry: it
    exists to be timed against, and a span wrapper would distort exactly
    the comparison it is kept for. *)
let solve ?budget ?(assumptions = []) s = solve_raw ?budget ~assumptions s

(** Model access after a [Sat] answer. Unassigned variables read as false. *)
let model_value s v =
  if v < s.nvars then
    match s.assign.(v) with LTrue -> true | LFalse | LUndef -> false
  else false

type stats = {
  vars : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  learnt : int;
  restarts : int;
}

let stats s =
  { vars = s.nvars;
    conflicts = s.conflicts;
    decisions = s.num_decisions;
    propagations = s.propagations;
    learnt = s.learnt_count;
    restarts = s.num_restarts }

let pp_stats fmt st =
  Format.fprintf fmt "vars %d, conflicts %d, decisions %d, propagations %d, learnt %d, restarts %d"
    st.vars st.conflicts st.decisions st.propagations st.learnt st.restarts
