(** Tseitin encoding of circuits into a shared SAT solver instance, plus
    miter construction for equivalence checking. The mapping from circuit
    nodes to solver variables is explicit so attacks can constrain
    individual nets (keys, scan cells, fault sites). *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

type env = {
  solver : Solver.t;
  vars : int array;  (* circuit node id -> solver variable *)
}

let lit env ~node ~sign = Solver.lit_of_var env.vars.(node) ~sign

(* Tseitin clauses for node [i]'s gate, with every literal supplied by
   [l : node -> sign -> lit]. Shared by the whole-circuit encoder and the
   fault-cone encoder (which maps cone fanins to faulty variables and
   everything else to the clean copy's). *)
let encode_node ~add ~l i nd =
  let f = nd.Circuit.fanins in
  match nd.Circuit.kind with
  | Gate.Input | Gate.Dff -> ()
  | Gate.Const b -> add [ l i b ]
  | Gate.Buf ->
    add [ l i true; l f.(0) false ];
    add [ l i false; l f.(0) true ]
  | Gate.Not ->
    add [ l i true; l f.(0) true ];
    add [ l i false; l f.(0) false ]
  | Gate.And ->
    add [ l i false; l f.(0) true ];
    add [ l i false; l f.(1) true ];
    add [ l i true; l f.(0) false; l f.(1) false ]
  | Gate.Nand ->
    add [ l i true; l f.(0) true ];
    add [ l i true; l f.(1) true ];
    add [ l i false; l f.(0) false; l f.(1) false ]
  | Gate.Or ->
    add [ l i true; l f.(0) false ];
    add [ l i true; l f.(1) false ];
    add [ l i false; l f.(0) true; l f.(1) true ]
  | Gate.Nor ->
    add [ l i false; l f.(0) false ];
    add [ l i false; l f.(1) false ];
    add [ l i true; l f.(0) true; l f.(1) true ]
  | Gate.Xor ->
    add [ l i false; l f.(0) true; l f.(1) true ];
    add [ l i false; l f.(0) false; l f.(1) false ];
    add [ l i true; l f.(0) true; l f.(1) false ];
    add [ l i true; l f.(0) false; l f.(1) true ]
  | Gate.Xnor ->
    add [ l i true; l f.(0) true; l f.(1) true ];
    add [ l i true; l f.(0) false; l f.(1) false ];
    add [ l i false; l f.(0) true; l f.(1) false ];
    add [ l i false; l f.(0) false; l f.(1) true ]
  | Gate.Mux ->
    (* i = s ? b : a  with f = [s; a; b] *)
    add [ l f.(0) true; l i false; l f.(1) true ];
    add [ l f.(0) true; l i true; l f.(1) false ];
    add [ l f.(0) false; l i false; l f.(2) true ];
    add [ l f.(0) false; l i true; l f.(2) false ]

(** Encode the combinational logic of [circuit]. DFF outputs are treated as
    free variables (pseudo-inputs), matching one unrolled time frame. *)
let encode ?solver circuit =
  let solver = match solver with Some s -> s | None -> Solver.create () in
  let n = Circuit.node_count circuit in
  (* One contiguous variable block: a single growth check instead of n. *)
  let base = Solver.new_vars solver n in
  let vars = Array.init n (fun k -> base + k) in
  let l node sign = Solver.lit_of_var vars.(node) ~sign in
  let add = Solver.add_clause solver in
  for i = 0 to n - 1 do
    encode_node ~add ~l i (Circuit.node circuit i)
  done;
  { solver; vars }

(** Fresh solver variable constrained to be the XOR of two node variables
    (used to compare outputs of two encoded circuits). *)
let xor_var s va vb =
  let v = Solver.new_var s in
  let lv sign = Solver.lit_of_var v ~sign in
  let la sign = Solver.lit_of_var va ~sign in
  let lb sign = Solver.lit_of_var vb ~sign in
  Solver.add_clause s [ lv false; la true; lb true ];
  Solver.add_clause s [ lv false; la false; lb false ];
  Solver.add_clause s [ lv true; la true; lb false ];
  Solver.add_clause s [ lv true; la false; lb true ];
  v

(** OR of a set of variables into a fresh variable. *)
let or_var s vs =
  let v = Solver.new_var s in
  List.iter
    (fun vi -> Solver.add_clause s [ Solver.lit_of_var v ~sign:true; Solver.lit_of_var vi ~sign:false ])
    vs;
  Solver.add_clause s
    (Solver.lit_of_var v ~sign:false :: List.map (fun vi -> Solver.lit_of_var vi ~sign:true) vs);
  v

(** Three-valued outcome of a bounded equivalence query. *)
type equivalence =
  | Equivalent
  | Counterexample of bool array  (* distinguishing input assignment *)
  | Equiv_unknown of Eda_util.Budget.exhaustion

(** Equivalence check of two combinational circuits with identical
    interfaces, bounded by [budget] (charged one step per solver
    conflict). [on_stats] receives the solver statistics of the query —
    the miter solver is internal, so this is how callers meter it. *)
let check_equivalence_b ?budget ?on_stats a b =
  if Circuit.num_inputs a <> Circuit.num_inputs b
     || Circuit.num_outputs a <> Circuit.num_outputs b
  then
    raise
      (Eda_util.Eda_error.Error
         (Eda_util.Eda_error.Invalid_input
            { what = "equivalence query";
              msg =
                Printf.sprintf "interface mismatch: %dx%d vs %dx%d inputs/outputs"
                  (Circuit.num_inputs a) (Circuit.num_outputs a)
                  (Circuit.num_inputs b) (Circuit.num_outputs b) }));
  let solver = Solver.create () in
  let env_a = encode ~solver a in
  let env_b = encode ~solver b in
  (* Tie inputs together. *)
  let ins_a = Circuit.inputs a and ins_b = Circuit.inputs b in
  Array.iteri
    (fun k ia ->
      let va = env_a.vars.(ia) and vb = env_b.vars.(ins_b.(k)) in
      Solver.add_clause solver [ Solver.lit_of_var va ~sign:true; Solver.lit_of_var vb ~sign:false ];
      Solver.add_clause solver [ Solver.lit_of_var va ~sign:false; Solver.lit_of_var vb ~sign:true ])
    ins_a;
  (* Miter: OR of output XORs must be true. *)
  let outs_a = Circuit.output_ids a and outs_b = Circuit.output_ids b in
  let diffs =
    Array.to_list
      (Array.mapi (fun k oa -> xor_var solver env_a.vars.(oa) env_b.vars.(outs_b.(k))) outs_a)
  in
  let any = or_var solver diffs in
  Solver.add_clause solver [ Solver.lit_of_var any ~sign:true ];
  let answer =
    match Solver.solve ?budget solver with
    | Solver.Unsat -> Equivalent
    | Solver.Sat ->
      let witness =
        Array.map (fun ia -> Solver.model_value solver env_a.vars.(ia)) ins_a
      in
      Counterexample witness
    | Solver.Unknown e -> Equiv_unknown e
  in
  Option.iter (fun f -> f (Solver.stats solver)) on_stats;
  answer

(** Cone-based stuck-at query: is some input assignment able to expose
    [node] stuck at [value] on a primary output? The clean circuit is
    encoded once; faulty variables exist only for the fault's transitive
    fanout cone, whose gates read non-cone fanins directly from the
    clean encoding. Outside the cone the two copies share variables, so
    their equality is structural instead of something the solver must
    derive — the whole-copy miter forced exactly that derivation, which
    is what made large-circuit ATPG intractable. The cone is cut at DFF
    boundaries (a stuck fault cannot change this frame's latched state),
    matching {!encode}'s single-time-frame semantics. A fault whose cone
    reaches no output is undetectable without any solving. *)
let check_stuck_at ?budget ?on_stats circuit ~node ~value =
  let n = Circuit.node_count circuit in
  if node < 0 || node >= n then invalid_arg "Cnf.check_stuck_at: node out of range";
  let in_cone = Array.make n false in
  in_cone.(node) <- true;
  for i = node + 1 to n - 1 do
    if
      (match Circuit.kind circuit i with Gate.Dff -> false | _ -> true)
      && Array.exists (fun f -> in_cone.(f)) (Circuit.fanins circuit i)
    then in_cone.(i) <- true
  done;
  let affected =
    Array.to_list (Circuit.output_ids circuit)
    |> List.filter (fun o -> in_cone.(o))
    |> List.sort_uniq compare
  in
  match affected with
  | [] -> Equivalent
  | _ ->
    let solver = Solver.create () in
    let env = encode ~solver circuit in
    let fvars = Array.make n (-1) in
    for i = 0 to n - 1 do
      if in_cone.(i) then fvars.(i) <- Solver.new_var solver
    done;
    let add = Solver.add_clause solver in
    add [ Solver.lit_of_var fvars.(node) ~sign:value ];
    let l j sign =
      Solver.lit_of_var (if in_cone.(j) then fvars.(j) else env.vars.(j)) ~sign
    in
    for i = node + 1 to n - 1 do
      if in_cone.(i) then encode_node ~add ~l i (Circuit.node circuit i)
    done;
    let diffs = List.map (fun o -> xor_var solver env.vars.(o) fvars.(o)) affected in
    add [ Solver.lit_of_var (or_var solver diffs) ~sign:true ];
    let answer =
      match Solver.solve ?budget solver with
      | Solver.Unsat -> Equivalent
      | Solver.Sat ->
        Counterexample
          (Array.map
             (fun ia -> Solver.model_value solver env.vars.(ia))
             (Circuit.inputs circuit))
      | Solver.Unknown e -> Equiv_unknown e
    in
    Option.iter (fun f -> f (Solver.stats solver)) on_stats;
    answer

(** Unbounded equivalence check; [None] when equivalent, or a
    distinguishing input assignment. *)
let check_equivalence a b =
  match check_equivalence_b a b with
  | Equivalent -> None
  | Counterexample w -> Some w
  | Equiv_unknown _ -> assert false  (* no budget, solve cannot abstain *)

(** Satisfiability of a single-output circuit being true for some input. *)
let satisfiable_output circuit ~output =
  let env = encode circuit in
  let o = (Circuit.output_ids circuit).(output) in
  Solver.add_clause env.solver [ lit env ~node:o ~sign:true ];
  match Solver.solve env.solver with
  | Solver.Unsat | Solver.Unknown _ -> None
  | Solver.Sat ->
    Some (Array.map (fun i -> Solver.model_value env.solver env.vars.(i)) (Circuit.inputs circuit))
