(** Tseitin encoding of circuits into a shared SAT solver instance, plus
    miter construction for equivalence checking. The mapping from circuit
    nodes to solver variables is explicit so attacks can constrain
    individual nets (keys, scan cells, fault sites). *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module T = Eda_util.Telemetry

type env = {
  solver : Solver.t;
  vars : int array;  (* circuit node id -> solver variable *)
}

let lit env ~node ~sign = Solver.lit_of_var env.vars.(node) ~sign

(* Tseitin clauses for node [i]'s gate, with every literal supplied by
   [l : node -> sign -> lit]. Shared by the whole-circuit encoder and the
   fault-cone encoder (which maps cone fanins to faulty variables and
   everything else to the clean copy's). *)
let encode_node ~add ~l i nd =
  let f = nd.Circuit.fanins in
  match nd.Circuit.kind with
  | Gate.Input | Gate.Dff -> ()
  | Gate.Const b -> add [ l i b ]
  | Gate.Buf ->
    add [ l i true; l f.(0) false ];
    add [ l i false; l f.(0) true ]
  | Gate.Not ->
    add [ l i true; l f.(0) true ];
    add [ l i false; l f.(0) false ]
  | Gate.And ->
    add [ l i false; l f.(0) true ];
    add [ l i false; l f.(1) true ];
    add [ l i true; l f.(0) false; l f.(1) false ]
  | Gate.Nand ->
    add [ l i true; l f.(0) true ];
    add [ l i true; l f.(1) true ];
    add [ l i false; l f.(0) false; l f.(1) false ]
  | Gate.Or ->
    add [ l i true; l f.(0) false ];
    add [ l i true; l f.(1) false ];
    add [ l i false; l f.(0) true; l f.(1) true ]
  | Gate.Nor ->
    add [ l i false; l f.(0) false ];
    add [ l i false; l f.(1) false ];
    add [ l i true; l f.(0) true; l f.(1) true ]
  | Gate.Xor ->
    add [ l i false; l f.(0) true; l f.(1) true ];
    add [ l i false; l f.(0) false; l f.(1) false ];
    add [ l i true; l f.(0) true; l f.(1) false ];
    add [ l i true; l f.(0) false; l f.(1) true ]
  | Gate.Xnor ->
    add [ l i true; l f.(0) true; l f.(1) true ];
    add [ l i true; l f.(0) false; l f.(1) false ];
    add [ l i false; l f.(0) true; l f.(1) false ];
    add [ l i false; l f.(0) false; l f.(1) true ]
  | Gate.Mux ->
    (* i = s ? b : a  with f = [s; a; b] *)
    add [ l f.(0) true; l i false; l f.(1) true ];
    add [ l f.(0) true; l i true; l f.(1) false ];
    add [ l f.(0) false; l i false; l f.(2) true ];
    add [ l f.(0) false; l i true; l f.(2) false ]

(** Encode the combinational logic of [circuit]. DFF outputs are treated as
    free variables (pseudo-inputs), matching one unrolled time frame.
    Emits a [cnf.encode] span when telemetry is installed, so benchmark
    traces can split encode time from solve time. *)
let encode ?solver circuit =
  let solver = match solver with Some s -> s | None -> Solver.create () in
  let n = Circuit.node_count circuit in
  T.with_span "cnf.encode" ~attrs:[ ("nodes", T.Int n) ] (fun () ->
      (* One contiguous variable block: a single growth check instead of n. *)
      let base = Solver.new_vars solver n in
      let vars = Array.init n (fun k -> base + k) in
      let l node sign = Solver.lit_of_var vars.(node) ~sign in
      let add = Solver.add_clause solver in
      for i = 0 to n - 1 do
        encode_node ~add ~l i (Circuit.node circuit i)
      done;
      { solver; vars })

(** Fresh solver variable constrained to be the XOR of two node variables
    (used to compare outputs of two encoded circuits). *)
let xor_var s va vb =
  let v = Solver.new_var s in
  let lv sign = Solver.lit_of_var v ~sign in
  let la sign = Solver.lit_of_var va ~sign in
  let lb sign = Solver.lit_of_var vb ~sign in
  Solver.add_clause s [ lv false; la true; lb true ];
  Solver.add_clause s [ lv false; la false; lb false ];
  Solver.add_clause s [ lv true; la true; lb false ];
  Solver.add_clause s [ lv true; la false; lb true ];
  v

(** OR of a set of variables into a fresh variable. *)
let or_var s vs =
  let v = Solver.new_var s in
  List.iter
    (fun vi -> Solver.add_clause s [ Solver.lit_of_var v ~sign:true; Solver.lit_of_var vi ~sign:false ])
    vs;
  Solver.add_clause s
    (Solver.lit_of_var v ~sign:false :: List.map (fun vi -> Solver.lit_of_var vi ~sign:true) vs);
  v

(** Three-valued outcome of a bounded equivalence query. *)
type equivalence =
  | Equivalent
  | Counterexample of bool array  (* distinguishing input assignment *)
  | Equiv_unknown of Eda_util.Budget.exhaustion

(** Equivalence check of two combinational circuits with identical
    interfaces, bounded by [budget] (charged one step per solver
    conflict). [on_stats] receives the solver statistics of the query —
    the miter solver is internal, so this is how callers meter it. *)
let check_equivalence_b ?budget ?on_stats a b =
  if Circuit.num_inputs a <> Circuit.num_inputs b
     || Circuit.num_outputs a <> Circuit.num_outputs b
  then
    raise
      (Eda_util.Eda_error.Error
         (Eda_util.Eda_error.Invalid_input
            { what = "equivalence query";
              msg =
                Printf.sprintf "interface mismatch: %dx%d vs %dx%d inputs/outputs"
                  (Circuit.num_inputs a) (Circuit.num_outputs a)
                  (Circuit.num_inputs b) (Circuit.num_outputs b) }));
  let solver = Solver.create () in
  let env_a = encode ~solver a in
  let env_b = encode ~solver b in
  (* Tie inputs together. *)
  let ins_a = Circuit.inputs a and ins_b = Circuit.inputs b in
  Array.iteri
    (fun k ia ->
      let va = env_a.vars.(ia) and vb = env_b.vars.(ins_b.(k)) in
      Solver.add_clause solver [ Solver.lit_of_var va ~sign:true; Solver.lit_of_var vb ~sign:false ];
      Solver.add_clause solver [ Solver.lit_of_var va ~sign:false; Solver.lit_of_var vb ~sign:true ])
    ins_a;
  (* Miter: OR of output XORs must be true. *)
  let outs_a = Circuit.output_ids a and outs_b = Circuit.output_ids b in
  let diffs =
    Array.to_list
      (Array.mapi (fun k oa -> xor_var solver env_a.vars.(oa) env_b.vars.(outs_b.(k))) outs_a)
  in
  let any = or_var solver diffs in
  Solver.add_clause solver [ Solver.lit_of_var any ~sign:true ];
  let answer =
    match Solver.solve ?budget solver with
    | Solver.Unsat -> Equivalent
    | Solver.Sat ->
      let witness =
        Array.map (fun ia -> Solver.model_value solver env_a.vars.(ia)) ins_a
      in
      Counterexample witness
    | Solver.Unknown e -> Equiv_unknown e
  in
  Option.iter (fun f -> f (Solver.stats solver)) on_stats;
  answer

(* Mark the transitive fanout cone of [node] in [in_cone] (which must be
   all-false on entry for indices >= node): forward sweep in topological
   (= index) order, cut at DFF boundaries — a stuck fault cannot change
   this frame's latched state, matching {!encode}'s single-time-frame
   semantics. Returns the number of cone nodes (including [node]). *)
let mark_cone circuit ~node in_cone =
  let n = Circuit.node_count circuit in
  in_cone.(node) <- true;
  let count = ref 1 in
  for i = node + 1 to n - 1 do
    if
      (match Circuit.kind circuit i with Gate.Dff -> false | _ -> true)
      && Array.exists (fun f -> in_cone.(f)) (Circuit.fanins circuit i)
    then begin
      in_cone.(i) <- true;
      incr count
    end
  done;
  !count

(** Size (in nodes, including the fault site) of the DFF-cut transitive
    fanout cone of [node] — the number of gates a stuck-at query at
    [node] must duplicate, i.e. a direct proxy for that query's encoding
    cost. [scratch] (length >= node count) avoids the per-call cone
    buffer; it is reset before use, so a dirty buffer is fine. *)
let fanout_cone_gates ?scratch circuit ~node =
  let n = Circuit.node_count circuit in
  if node < 0 || node >= n then invalid_arg "Cnf.fanout_cone_gates: node out of range";
  let in_cone =
    match scratch with
    | Some a when Array.length a >= n ->
      Array.fill a 0 n false;
      a
    | Some _ | None -> Array.make n false
  in
  mark_cone circuit ~node in_cone

(** Cone-based stuck-at query: is some input assignment able to expose
    [node] stuck at [value] on a primary output? The clean circuit is
    encoded once; faulty variables exist only for the fault's transitive
    fanout cone, whose gates read non-cone fanins directly from the
    clean encoding. Outside the cone the two copies share variables, so
    their equality is structural instead of something the solver must
    derive — the whole-copy miter forced exactly that derivation, which
    is what made large-circuit ATPG intractable. The cone is cut at DFF
    boundaries (see {!mark_cone}). A fault whose cone reaches no output
    is undetectable without any solving. *)
let check_stuck_at ?budget ?on_stats circuit ~node ~value =
  let n = Circuit.node_count circuit in
  if node < 0 || node >= n then invalid_arg "Cnf.check_stuck_at: node out of range";
  let in_cone = Array.make n false in
  ignore (mark_cone circuit ~node in_cone);
  let affected =
    Array.to_list (Circuit.output_ids circuit)
    |> List.filter (fun o -> in_cone.(o))
    |> List.sort_uniq compare
  in
  match affected with
  | [] -> Equivalent
  | _ ->
    let solver = Solver.create () in
    let env = encode ~solver circuit in
    let fvars = Array.make n (-1) in
    for i = 0 to n - 1 do
      if in_cone.(i) then fvars.(i) <- Solver.new_var solver
    done;
    let add = Solver.add_clause solver in
    add [ Solver.lit_of_var fvars.(node) ~sign:value ];
    let l j sign =
      Solver.lit_of_var (if in_cone.(j) then fvars.(j) else env.vars.(j)) ~sign
    in
    for i = node + 1 to n - 1 do
      if in_cone.(i) then encode_node ~add ~l i (Circuit.node circuit i)
    done;
    let diffs = List.map (fun o -> xor_var solver env.vars.(o) fvars.(o)) affected in
    add [ Solver.lit_of_var (or_var solver diffs) ~sign:true ];
    let answer =
      match Solver.solve ?budget solver with
      | Solver.Unsat -> Equivalent
      | Solver.Sat ->
        Counterexample
          (Array.map
             (fun ia -> Solver.model_value solver env.vars.(ia))
             (Circuit.inputs circuit))
      | Solver.Unknown e -> Equiv_unknown e
    in
    Option.iter (fun f -> f (Solver.stats solver)) on_stats;
    answer

(** Incremental stuck-at sessions: the clean circuit is Tseitin-encoded
    {e once}, and each fault query adds only its fanout-cone faulty copy
    and miter under a fresh clause group ({!Solver.new_group}), solved
    under the group's activation literal and retired immediately after.
    Retirement reclaims the query's clauses and their learnt descendants
    ({!Solver.retire_group}) while learnt clauses about the clean
    circuit persist and accelerate every later query; {!Solver
    .shrink_vars} then recycles the query's variable indices, so the
    session's variable range stays bounded by one query's footprint.

    Answers match {!check_stuck_at} on a fresh solver exactly
    (differential-tested): both are sound and complete, so the
    [Equivalent]/[Counterexample] status per fault is identical. The
    {e witness pattern} of a [Counterexample] may differ — persistent
    learnt clauses steer the search — but it always detects the fault.
    Within one session, answers are a deterministic function of the
    query sequence, which is what lets a fixed query plan produce
    bit-identical ATPG reports at any domain count. *)
module Stuck_at_session = struct
  type session = {
    env : env;
    circuit : Circuit.t;
    floor : int;  (* variable floor: everything >= floor is per-query scratch *)
    in_cone : bool array;  (* per-query cone scratch, cleared after each query *)
    mutable queries : int;
  }

  type t = session

  let create ?solver circuit =
    let env = encode ?solver circuit in
    { env;
      circuit;
      floor = (Solver.stats env.solver).Solver.vars;
      in_cone = Array.make (Circuit.node_count circuit) false;
      queries = 0 }

  let queries t = t.queries
  let stats t = Solver.stats t.env.solver

  (* Per-query solver statistics reported as a delta: capacity-like
     fields (vars, clauses, live learnts) are the post-solve values,
     work-like fields the difference — the same shape a fresh solver's
     totals have, so campaign-level merging treats both paths alike. *)
  let stats_delta (before : Solver.stats) (after : Solver.stats) =
    { Solver.vars = after.Solver.vars;
      clauses = after.Solver.clauses;
      conflicts = after.Solver.conflicts - before.Solver.conflicts;
      decisions = after.Solver.decisions - before.Solver.decisions;
      propagations = after.Solver.propagations - before.Solver.propagations;
      learnt = after.Solver.learnt - before.Solver.learnt;
      learnt_live = after.Solver.learnt_live;
      restarts = after.Solver.restarts - before.Solver.restarts;
      db_reductions = after.Solver.db_reductions - before.Solver.db_reductions;
      clauses_deleted = after.Solver.clauses_deleted - before.Solver.clauses_deleted }

  (** One stuck-at query against the session. Same contract as
      {!check_stuck_at}; the group is retired and its variables recycled
      before returning — also after an [Equiv_unknown], so a later retry
      (with a larger budget) re-encodes only the fault's cone while
      keeping every clean-circuit learnt clause. [on_stats] receives
      this query's solver-statistics delta. *)
  let query ?budget ?on_stats t ~node ~value =
    let circuit = t.circuit in
    let n = Circuit.node_count circuit in
    if node < 0 || node >= n then
      invalid_arg "Cnf.Stuck_at_session.query: node out of range";
    let in_cone = t.in_cone in
    ignore (mark_cone circuit ~node in_cone);
    (* The cone only contains indices >= node (topological order). *)
    let clear () = Array.fill in_cone node (n - node) false in
    let affected =
      Array.to_list (Circuit.output_ids circuit)
      |> List.filter (fun o -> in_cone.(o))
      |> List.sort_uniq compare
    in
    t.queries <- t.queries + 1;
    match affected with
    | [] ->
      clear ();
      Equivalent
    | _ ->
      let s = t.env.solver in
      let before = Solver.stats s in
      let g = Solver.new_group s in
      let add = Solver.add_clause_in s g in
      let fvars = Array.make n (-1) in
      T.with_span "cnf.encode"
        ~attrs:[ ("nodes", T.Int n); ("cone", T.Int (n - node)) ]
        (fun () ->
          for i = node to n - 1 do
            if in_cone.(i) then fvars.(i) <- Solver.new_var s
          done;
          add [ Solver.lit_of_var fvars.(node) ~sign:value ];
          let l j sign =
            Solver.lit_of_var (if in_cone.(j) then fvars.(j) else t.env.vars.(j)) ~sign
          in
          for i = node + 1 to n - 1 do
            if in_cone.(i) then encode_node ~add ~l i (Circuit.node circuit i)
          done;
          (* Group-guarded miter: XOR each affected output pair, OR the
             differences, assert the OR — all under the activation
             literal, so retirement erases the whole query. (The plain
             {!xor_var}/{!or_var} helpers are not reused here: they add
             unguarded clauses, which would outlive the group and pin
             its recycled variables.) *)
          let diffs =
            List.map
              (fun o ->
                let d = Solver.new_var s in
                let ld sign = Solver.lit_of_var d ~sign in
                let la sign = Solver.lit_of_var t.env.vars.(o) ~sign in
                let lb sign = Solver.lit_of_var fvars.(o) ~sign in
                add [ ld false; la true; lb true ];
                add [ ld false; la false; lb false ];
                add [ ld true; la true; lb false ];
                add [ ld true; la false; lb true ];
                d)
              affected
          in
          let any = Solver.new_var s in
          List.iter
            (fun d ->
              add
                [ Solver.lit_of_var any ~sign:true; Solver.lit_of_var d ~sign:false ])
            diffs;
          add
            (Solver.lit_of_var any ~sign:false
            :: List.map (fun d -> Solver.lit_of_var d ~sign:true) diffs);
          add [ Solver.lit_of_var any ~sign:true ]);
      (* Activity earned on a previous fault's cone is noise for this
         query and can blow up the conflict count by an order of
         magnitude; start each query from the fresh index-order
         heuristic while keeping the learnt clauses. *)
      Solver.reset_activity s;
      let answer =
        match Solver.solve ?budget ~assumptions:[ Solver.group_lit g ] s with
        | Solver.Unsat -> Equivalent
        | Solver.Sat ->
          (* Read the model before retiring — retirement backtracks. *)
          Counterexample
            (Array.map
               (fun ia -> Solver.model_value s t.env.vars.(ia))
               (Circuit.inputs circuit))
        | Solver.Unknown e -> Equiv_unknown e
      in
      let after = Solver.stats s in
      Solver.retire_group s g;
      Solver.shrink_vars s t.floor;
      Option.iter (fun f -> f (stats_delta before after)) on_stats;
      clear ();
      answer
end

(** Unbounded equivalence check; [None] when equivalent, or a
    distinguishing input assignment. *)
let check_equivalence a b =
  match check_equivalence_b a b with
  | Equivalent -> None
  | Counterexample w -> Some w
  | Equiv_unknown _ -> assert false  (* no budget, solve cannot abstain *)

(** Satisfiability of a single-output circuit being true for some input. *)
let satisfiable_output circuit ~output =
  let env = encode circuit in
  let o = (Circuit.output_ids circuit).(output) in
  Solver.add_clause env.solver [ lit env ~node:o ~sign:true ];
  match Solver.solve env.solver with
  | Solver.Unsat | Solver.Unknown _ -> None
  | Solver.Sat ->
    Some (Array.map (fun i -> Solver.model_value env.solver env.vars.(i)) (Circuit.inputs circuit))
