(** Tseitin encoding of circuits into a shared SAT solver instance, plus
    miter construction for equivalence checking. The mapping from circuit
    nodes to solver variables is explicit so attacks can constrain
    individual nets (keys, scan cells, fault sites). *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

type env = {
  solver : Solver.t;
  vars : int array;  (* circuit node id -> solver variable *)
}

let lit env ~node ~sign = Solver.lit_of_var env.vars.(node) ~sign

(** Encode the combinational logic of [circuit]. DFF outputs are treated as
    free variables (pseudo-inputs), matching one unrolled time frame. *)
let encode ?solver circuit =
  let solver = match solver with Some s -> s | None -> Solver.create () in
  let n = Circuit.node_count circuit in
  (* One contiguous variable block: a single growth check instead of n. *)
  let base = Solver.new_vars solver n in
  let vars = Array.init n (fun k -> base + k) in
  let l node sign = Solver.lit_of_var vars.(node) ~sign in
  let add = Solver.add_clause solver in
  for i = 0 to n - 1 do
    let nd = Circuit.node circuit i in
    let f = nd.Circuit.fanins in
    match nd.Circuit.kind with
    | Gate.Input | Gate.Dff -> ()
    | Gate.Const b -> add [ l i b ]
    | Gate.Buf ->
      add [ l i true; l f.(0) false ];
      add [ l i false; l f.(0) true ]
    | Gate.Not ->
      add [ l i true; l f.(0) true ];
      add [ l i false; l f.(0) false ]
    | Gate.And ->
      add [ l i false; l f.(0) true ];
      add [ l i false; l f.(1) true ];
      add [ l i true; l f.(0) false; l f.(1) false ]
    | Gate.Nand ->
      add [ l i true; l f.(0) true ];
      add [ l i true; l f.(1) true ];
      add [ l i false; l f.(0) false; l f.(1) false ]
    | Gate.Or ->
      add [ l i true; l f.(0) false ];
      add [ l i true; l f.(1) false ];
      add [ l i false; l f.(0) true; l f.(1) true ]
    | Gate.Nor ->
      add [ l i false; l f.(0) false ];
      add [ l i false; l f.(1) false ];
      add [ l i true; l f.(0) true; l f.(1) true ]
    | Gate.Xor ->
      add [ l i false; l f.(0) true; l f.(1) true ];
      add [ l i false; l f.(0) false; l f.(1) false ];
      add [ l i true; l f.(0) true; l f.(1) false ];
      add [ l i true; l f.(0) false; l f.(1) true ]
    | Gate.Xnor ->
      add [ l i true; l f.(0) true; l f.(1) true ];
      add [ l i true; l f.(0) false; l f.(1) false ];
      add [ l i false; l f.(0) true; l f.(1) false ];
      add [ l i false; l f.(0) false; l f.(1) true ]
    | Gate.Mux ->
      (* i = s ? b : a  with f = [s; a; b] *)
      add [ l f.(0) true; l i false; l f.(1) true ];
      add [ l f.(0) true; l i true; l f.(1) false ];
      add [ l f.(0) false; l i false; l f.(2) true ];
      add [ l f.(0) false; l i true; l f.(2) false ]
  done;
  { solver; vars }

(** Fresh solver variable constrained to be the XOR of two node variables
    (used to compare outputs of two encoded circuits). *)
let xor_var s va vb =
  let v = Solver.new_var s in
  let lv sign = Solver.lit_of_var v ~sign in
  let la sign = Solver.lit_of_var va ~sign in
  let lb sign = Solver.lit_of_var vb ~sign in
  Solver.add_clause s [ lv false; la true; lb true ];
  Solver.add_clause s [ lv false; la false; lb false ];
  Solver.add_clause s [ lv true; la true; lb false ];
  Solver.add_clause s [ lv true; la false; lb true ];
  v

(** OR of a set of variables into a fresh variable. *)
let or_var s vs =
  let v = Solver.new_var s in
  List.iter
    (fun vi -> Solver.add_clause s [ Solver.lit_of_var v ~sign:true; Solver.lit_of_var vi ~sign:false ])
    vs;
  Solver.add_clause s
    (Solver.lit_of_var v ~sign:false :: List.map (fun vi -> Solver.lit_of_var vi ~sign:true) vs);
  v

(** Three-valued outcome of a bounded equivalence query. *)
type equivalence =
  | Equivalent
  | Counterexample of bool array  (* distinguishing input assignment *)
  | Equiv_unknown of Eda_util.Budget.exhaustion

(** Equivalence check of two combinational circuits with identical
    interfaces, bounded by [budget] (charged one step per solver
    conflict). [on_stats] receives the solver statistics of the query —
    the miter solver is internal, so this is how callers meter it. *)
let check_equivalence_b ?budget ?on_stats a b =
  if Circuit.num_inputs a <> Circuit.num_inputs b
     || Circuit.num_outputs a <> Circuit.num_outputs b
  then
    raise
      (Eda_util.Eda_error.Error
         (Eda_util.Eda_error.Invalid_input
            { what = "equivalence query";
              msg =
                Printf.sprintf "interface mismatch: %dx%d vs %dx%d inputs/outputs"
                  (Circuit.num_inputs a) (Circuit.num_outputs a)
                  (Circuit.num_inputs b) (Circuit.num_outputs b) }));
  let solver = Solver.create () in
  let env_a = encode ~solver a in
  let env_b = encode ~solver b in
  (* Tie inputs together. *)
  let ins_a = Circuit.inputs a and ins_b = Circuit.inputs b in
  Array.iteri
    (fun k ia ->
      let va = env_a.vars.(ia) and vb = env_b.vars.(ins_b.(k)) in
      Solver.add_clause solver [ Solver.lit_of_var va ~sign:true; Solver.lit_of_var vb ~sign:false ];
      Solver.add_clause solver [ Solver.lit_of_var va ~sign:false; Solver.lit_of_var vb ~sign:true ])
    ins_a;
  (* Miter: OR of output XORs must be true. *)
  let outs_a = Circuit.output_ids a and outs_b = Circuit.output_ids b in
  let diffs =
    Array.to_list
      (Array.mapi (fun k oa -> xor_var solver env_a.vars.(oa) env_b.vars.(outs_b.(k))) outs_a)
  in
  let any = or_var solver diffs in
  Solver.add_clause solver [ Solver.lit_of_var any ~sign:true ];
  let answer =
    match Solver.solve ?budget solver with
    | Solver.Unsat -> Equivalent
    | Solver.Sat ->
      let witness =
        Array.map (fun ia -> Solver.model_value solver env_a.vars.(ia)) ins_a
      in
      Counterexample witness
    | Solver.Unknown e -> Equiv_unknown e
  in
  Option.iter (fun f -> f (Solver.stats solver)) on_stats;
  answer

(** Unbounded equivalence check; [None] when equivalent, or a
    distinguishing input assignment. *)
let check_equivalence a b =
  match check_equivalence_b a b with
  | Equivalent -> None
  | Counterexample w -> Some w
  | Equiv_unknown _ -> assert false  (* no budget, solve cannot abstain *)

(** Satisfiability of a single-output circuit being true for some input. *)
let satisfiable_output circuit ~output =
  let env = encode circuit in
  let o = (Circuit.output_ids circuit).(output) in
  Solver.add_clause env.solver [ lit env ~node:o ~sign:true ];
  match Solver.solve env.solver with
  | Solver.Unsat | Solver.Unknown _ -> None
  | Solver.Sat ->
    Some (Array.map (fun i -> Solver.model_value env.solver env.vars.(i)) (Circuit.inputs circuit))
