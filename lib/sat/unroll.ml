(** Bounded model checking substrate: time-frame expansion of sequential
    circuits into pure combinational ones, and the two-safety
    (UPEC-style [31]) information-flow check built on it.

    [expand circuit ~frames] produces a combinational circuit whose inputs
    are the original inputs replicated per frame (frame-major order:
    in0@f0, in1@f0, ..., in0@f1, ...) plus one input per DFF for the
    initial state, and whose outputs are the original outputs replicated
    per frame. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

type expansion = {
  circuit : Circuit.t;
  frames : int;
  (* ids of the initial-state inputs, in DFF declaration order *)
  initial_state_inputs : int array;
  (* per frame, the ids of that frame's copies of the primary inputs *)
  frame_inputs : int array array;
  (* per frame, the output indices (into the expansion's output list) *)
  frame_outputs : int array array;
}

let expand source ~frames =
  assert (frames >= 1);
  let out = Circuit.create () in
  let dffs = Circuit.dffs source in
  let initial_state_inputs =
    Array.mapi
      (fun k _ -> Circuit.add_input ~name:(Printf.sprintf "init_s%d" k) out)
      dffs
  in
  let n = Circuit.node_count source in
  let frame_inputs = Array.make frames [||] in
  let frame_outputs = Array.make frames [||] in
  (* State entering the current frame: node ids in [out]. *)
  let state = ref initial_state_inputs in
  let out_index = ref 0 in
  for f = 0 to frames - 1 do
    let remap = Array.make n (-1) in
    (* Bind DFF outputs to the incoming state. *)
    Array.iteri (fun k dff -> remap.(dff) <- !state.(k)) dffs;
    let inputs =
      Array.map
        (fun id ->
          Circuit.add_input ~name:(Printf.sprintf "%s_f%d" (Circuit.name source id) f) out)
        (Circuit.inputs source)
    in
    Array.iteri (fun k id -> remap.((Circuit.inputs source).(k)) <- id) inputs;
    frame_inputs.(f) <- inputs;
    for i = 0 to n - 1 do
      let nd = Circuit.node source i in
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> ()  (* bound above *)
      | k ->
        let fanins = Array.map (fun x -> remap.(x)) nd.Circuit.fanins in
        remap.(i) <- Circuit.add_node_raw out k fanins ""
    done;
    (* Emit this frame's outputs. *)
    frame_outputs.(f) <-
      Array.map
        (fun (nm, o) ->
          Circuit.set_output out (Printf.sprintf "%s_f%d" nm f) remap.(o);
          let idx = !out_index in
          incr out_index;
          idx)
        (Circuit.outputs source);
    (* Next state: the D inputs of this frame. *)
    state := Array.map (fun dff -> remap.((Circuit.fanins source dff).(0))) dffs
  done;
  { circuit = out; frames; initial_state_inputs; frame_inputs; frame_outputs }

(** Two-safety information-flow check (the essence of unique-program-
    execution checking [31]): two copies of the design run with identical
    public inputs and initial state but free *secret* state bits; if any
    observable output can differ within [frames] cycles, the secret leaks
    architecturally, and the witness shows how.

    [secret_state] lists DFF indices holding the secret. Returns [None]
    when no leak is possible within the bound, or a witness assignment of
    the expansion's inputs for copy A. *)
let two_safety_leak source ~frames ~secret_state =
  let exp_a = expand source ~frames in
  let exp_b = expand source ~frames in
  let solver = Solver.create () in
  let env_a = Cnf.encode ~solver exp_a.circuit in
  let env_b = Cnf.encode ~solver exp_b.circuit in
  let tie va vb =
    Solver.add_clause solver
      [ Solver.lit_of_var va ~sign:true; Solver.lit_of_var vb ~sign:false ];
    Solver.add_clause solver
      [ Solver.lit_of_var va ~sign:false; Solver.lit_of_var vb ~sign:true ]
  in
  (* Public inputs equal across copies, every frame. *)
  Array.iteri
    (fun f ins_a ->
      Array.iteri
        (fun k ia -> tie env_a.Cnf.vars.(ia) env_b.Cnf.vars.(exp_b.frame_inputs.(f).(k)))
        ins_a)
    exp_a.frame_inputs;
  (* Non-secret initial state equal; secret state free in both copies. *)
  Array.iteri
    (fun k ia ->
      if not (List.mem k secret_state) then
        tie env_a.Cnf.vars.(ia) env_b.Cnf.vars.(exp_b.initial_state_inputs.(k)))
    exp_a.initial_state_inputs;
  (* Miter: some observable output differs in some frame. *)
  let out_ids_a = Circuit.output_ids exp_a.circuit in
  let out_ids_b = Circuit.output_ids exp_b.circuit in
  let diffs =
    Array.to_list
      (Array.mapi
         (fun k oa -> Cnf.xor_var solver env_a.Cnf.vars.(oa) env_b.Cnf.vars.(out_ids_b.(k)))
         out_ids_a)
  in
  let any = Cnf.or_var solver diffs in
  Solver.add_clause solver [ Solver.lit_of_var any ~sign:true ];
  match Solver.solve solver with
  | Solver.Unsat -> None
  | Solver.Unknown _ -> assert false  (* unbudgeted solve cannot abstain *)
  | Solver.Sat ->
    let witness =
      Array.map
        (fun i -> Solver.model_value solver env_a.Cnf.vars.(i))
        (Circuit.inputs exp_a.circuit)
    in
    Some witness

(** Sequential equivalence up to a bound: same interface, equal outputs on
    all frames from the all-zero initial state, for all input sequences. *)
let bounded_equivalence a b ~frames =
  let exp_a = expand a ~frames in
  let exp_b = expand b ~frames in
  let solver = Solver.create () in
  let env_a = Cnf.encode ~solver exp_a.circuit in
  let env_b = Cnf.encode ~solver exp_b.circuit in
  let fix env id b =
    Solver.add_clause solver [ Solver.lit_of_var env.Cnf.vars.(id) ~sign:b ]
  in
  Array.iter (fun id -> fix env_a id false) exp_a.initial_state_inputs;
  Array.iter (fun id -> fix env_b id false) exp_b.initial_state_inputs;
  let tie va vb =
    Solver.add_clause solver
      [ Solver.lit_of_var va ~sign:true; Solver.lit_of_var vb ~sign:false ];
    Solver.add_clause solver
      [ Solver.lit_of_var va ~sign:false; Solver.lit_of_var vb ~sign:true ]
  in
  Array.iteri
    (fun f ins_a ->
      Array.iteri
        (fun k ia -> tie env_a.Cnf.vars.(ia) env_b.Cnf.vars.(exp_b.frame_inputs.(f).(k)))
        ins_a)
    exp_a.frame_inputs;
  let out_ids_a = Circuit.output_ids exp_a.circuit in
  let out_ids_b = Circuit.output_ids exp_b.circuit in
  let diffs =
    Array.to_list
      (Array.mapi
         (fun k oa -> Cnf.xor_var solver env_a.Cnf.vars.(oa) env_b.Cnf.vars.(out_ids_b.(k)))
         out_ids_a)
  in
  let any = Cnf.or_var solver diffs in
  Solver.add_clause solver [ Solver.lit_of_var any ~sign:true ];
  match Solver.solve solver with
  | Solver.Unsat -> true
  | Solver.Sat -> false
  | Solver.Unknown _ -> assert false  (* unbudgeted solve cannot abstain *)
