(** Conflict-driven clause learning SAT solver — allocation-free core.

    Same algorithm family as classic MiniSat: two-watched-literal
    propagation, first-UIP learning, VSIDS activity, Luby restarts, phase
    saving, incremental solving under assumptions. The data layout is flat
    mutable arrays throughout:

    - the trail is a preallocated [lit array] plus a length; decision
      levels are trail *offsets* stored in [trail_lim] (no per-decision
      trail snapshots);
    - the propagation queue is a head pointer [qhead] into the trail;
    - watch lists are growable array-backed vectors compacted in place
      during propagation (no cons cells on the hot path);
    - conflict analysis uses a reusable [seen] bitmap with an explicit
      undo list and a reusable literal buffer (no per-conflict Hashtbl).

    Learnt clauses live in a real database: each carries an activity and
    an LBD (literal block distance) score, and [reduce_db] periodically
    drops the cold half — skipping binary clauses, low-LBD "glue" clauses
    and clauses currently acting as a reason — so long incremental runs
    (SAT attack, ATPG) stop growing memory without bound.

    Literal encoding: variable [v >= 0]; positive literal [2v], negative
    [2v+1]. *)

module T = Eda_util.Telemetry

type lit = int

let lit_of_var v ~sign = if sign then 2 * v else (2 * v) + 1
let var_of_lit l = l / 2
let pos l = l land 1 = 0
let negate l = l lxor 1

type lbool = LTrue | LFalse | LUndef

type clause = {
  lits : lit array;
  mutable activity : float;
  mutable lbd : int;
  learnt : bool;
  mutable deleted : bool;
}

(* Sentinel used instead of [clause option] in the reason array and as the
   "no conflict" return of [propagate]; compared with [==] only, so the
   hot paths never allocate a [Some]. *)
let dummy_clause = { lits = [||]; activity = 0.0; lbd = 0; learnt = false; deleted = false }

type t = {
  mutable nvars : int;
  mutable num_clauses : int;  (* live problem (non-learnt) clauses *)
  (* Watch vectors: [watches.(l)] holds the clauses in which [negate l] is
     a watched literal; [watch_len.(l)] is the live prefix length. *)
  mutable watches : clause array array;
  mutable watch_len : int array;
  mutable assign : lbool array;  (* per variable *)
  mutable level : int array;  (* decision level per variable *)
  mutable reason : clause array;  (* antecedent per variable; dummy_clause = none *)
  mutable trail : lit array;
  mutable trail_len : int;
  mutable qhead : int;  (* next trail index to propagate *)
  mutable trail_lim : int array;  (* trail offset at each decision level *)
  mutable lim_len : int;  (* current decision level *)
  mutable activity : float array;
  mutable var_inc : float;
  mutable phase : bool array;
  (* Learnt-clause database. *)
  mutable learnts : clause array;
  mutable learnt_len : int;
  mutable cla_inc : float;
  mutable max_learnts : int;  (* 0 = automatic limit *)
  mutable db_reduction_enabled : bool;
  (* Reusable conflict-analysis scratch. *)
  mutable seen : bool array;
  mutable seen_touched : int array;
  mutable learnt_buf : lit array;
  mutable lbd_stamp : int array;
  mutable lbd_counter : int;
  (* Counters. *)
  mutable conflicts : int;
  mutable num_decisions : int;
  mutable propagations : int;
  mutable learnt_count : int;  (* total clauses ever learnt *)
  mutable num_restarts : int;
  mutable db_reductions : int;
  mutable clauses_deleted : int;
}

let create () =
  { nvars = 0;
    num_clauses = 0;
    watches = Array.make 16 [||];
    watch_len = Array.make 16 0;
    assign = Array.make 8 LUndef;
    level = Array.make 8 0;
    reason = Array.make 8 dummy_clause;
    trail = Array.make 8 0;
    trail_len = 0;
    qhead = 0;
    trail_lim = Array.make 9 0;
    lim_len = 0;
    activity = Array.make 8 0.0;
    var_inc = 1.0;
    phase = Array.make 8 false;
    learnts = Array.make 16 dummy_clause;
    learnt_len = 0;
    cla_inc = 1.0;
    max_learnts = 0;
    db_reduction_enabled = true;
    seen = Array.make 8 false;
    seen_touched = Array.make 8 0;
    learnt_buf = Array.make 9 0;
    lbd_stamp = Array.make 9 0;
    lbd_counter = 0;
    conflicts = 0;
    num_decisions = 0;
    propagations = 0;
    learnt_count = 0;
    num_restarts = 0;
    db_reductions = 0;
    clauses_deleted = 0 }

let ensure_var s v =
  if v >= s.nvars then begin
    let need = v + 1 in
    if 2 * need > Array.length s.watches then begin
      let cap = max (2 * need) (2 * Array.length s.watches) in
      let watches = Array.make cap [||] in
      Array.blit s.watches 0 watches 0 (2 * s.nvars);
      s.watches <- watches;
      let wl = Array.make cap 0 in
      Array.blit s.watch_len 0 wl 0 (2 * s.nvars);
      s.watch_len <- wl;
      let vars = cap / 2 in
      let grow_arr a def =
        let b = Array.make vars def in
        Array.blit a 0 b 0 s.nvars;
        b
      in
      s.assign <- grow_arr s.assign LUndef;
      s.level <- grow_arr s.level 0;
      s.activity <- grow_arr s.activity 0.0;
      s.phase <- grow_arr s.phase false;
      let reasons = Array.make vars dummy_clause in
      Array.blit s.reason 0 reasons 0 s.nvars;
      s.reason <- reasons;
      let tr = Array.make vars 0 in
      Array.blit s.trail 0 tr 0 s.trail_len;
      s.trail <- tr;
      let tl = Array.make (vars + 1) 0 in
      Array.blit s.trail_lim 0 tl 0 s.lim_len;
      s.trail_lim <- tl;
      (* Scratch arrays hold no live data outside [analyze]; size-only. *)
      s.seen <- Array.make vars false;
      s.seen_touched <- Array.make vars 0;
      s.learnt_buf <- Array.make (vars + 1) 0;
      s.lbd_stamp <- Array.make (vars + 1) 0;
      s.lbd_counter <- 0
    end;
    s.nvars <- need
  end

let new_var s =
  let v = s.nvars in
  ensure_var s v;
  v

(** Allocate [n] consecutive variables, returning the first index. One
    array-growth check instead of [n]. *)
let new_vars s n =
  let v = s.nvars in
  if n > 0 then ensure_var s (v + n - 1);
  v

let value_lit s l =
  match s.assign.(var_of_lit l) with
  | LUndef -> LUndef
  | LTrue -> if pos l then LTrue else LFalse
  | LFalse -> if pos l then LFalse else LTrue

let push_watch s l c =
  let ws = s.watches.(l) in
  let n = s.watch_len.(l) in
  if n >= Array.length ws then begin
    let ws' = Array.make (max 4 (2 * n)) dummy_clause in
    Array.blit ws 0 ws' 0 n;
    ws'.(n) <- c;
    s.watches.(l) <- ws'
  end
  else ws.(n) <- c;
  s.watch_len.(l) <- n + 1

let push_learnt s c =
  let n = s.learnt_len in
  if n >= Array.length s.learnts then begin
    let ls = Array.make (max 16 (2 * n)) dummy_clause in
    Array.blit s.learnts 0 ls 0 n;
    s.learnts <- ls
  end;
  s.learnts.(n) <- c;
  s.learnt_len <- n + 1

let enqueue s l reason =
  let v = var_of_lit l in
  s.assign.(v) <- (if pos l then LTrue else LFalse);
  s.level.(v) <- s.lim_len;
  s.reason.(v) <- reason;
  s.phase.(v) <- pos l;
  s.trail.(s.trail_len) <- l;
  s.trail_len <- s.trail_len + 1

let new_decision s l =
  s.trail_lim.(s.lim_len) <- s.trail_len;
  s.lim_len <- s.lim_len + 1;
  enqueue s l dummy_clause

exception Unsat_root

let backtrack s target_level =
  if s.lim_len > target_level then begin
    let bound = s.trail_lim.(target_level) in
    for i = s.trail_len - 1 downto bound do
      let v = var_of_lit s.trail.(i) in
      s.assign.(v) <- LUndef;
      s.reason.(v) <- dummy_clause
    done;
    s.trail_len <- bound;
    s.qhead <- bound;
    s.lim_len <- target_level
  end

(** Add a clause; simplifies trivially satisfied/duplicate literals.
    Backtracks to the root level first, so it is safe to call between
    incremental [solve] invocations. Raises [Unsat_root] if the clause is
    falsified at level 0. *)
let add_clause s lits =
  backtrack s 0;
  let lits = List.sort_uniq compare lits in
  let tautology =
    List.exists (fun l -> List.mem (negate l) lits) lits
  in
  if not tautology then begin
    List.iter (fun l -> ensure_var s (var_of_lit l)) lits;
    (* Drop root-level false literals. *)
    let lits = List.filter (fun l -> value_lit s l <> LFalse) lits in
    let already_sat = List.exists (fun l -> value_lit s l = LTrue) lits in
    if not already_sat then begin
      match lits with
      | [] -> raise Unsat_root
      | [ l ] -> enqueue s l dummy_clause
      | l0 :: l1 :: _ ->
        let c =
          { lits = Array.of_list lits;
            activity = 0.0;
            lbd = 0;
            learnt = false;
            deleted = false }
        in
        s.num_clauses <- s.num_clauses + 1;
        push_watch s (negate l0) c;
        push_watch s (negate l1) c
    end
  end

(* Propagate everything pending on the trail; returns the conflicting
   clause, or [dummy_clause] if none. Watch vectors are compacted in
   place: clauses that found a new watch elsewhere are dropped from this
   vector with no allocation. *)
let propagate s =
  let conflict = ref dummy_clause in
  while !conflict == dummy_clause && s.qhead < s.trail_len do
    let l = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let ws = s.watches.(l) in
    let n = s.watch_len.(l) in
    let keep = ref 0 in
    let i = ref 0 in
    while !i < n do
      let c = ws.(!i) in
      incr i;
      if !conflict != dummy_clause then begin
        (* Conflict found: keep the remaining clauses watched unchanged. *)
        ws.(!keep) <- c;
        incr keep
      end
      else begin
        let lits = c.lits in
        (* Ensure the false literal is at position 1. *)
        let falsified = negate l in
        if lits.(0) = falsified then begin
          lits.(0) <- lits.(1);
          lits.(1) <- falsified
        end;
        if value_lit s lits.(0) = LTrue then begin
          (* Satisfied; keep watching. *)
          ws.(!keep) <- c;
          incr keep
        end
        else begin
          (* Find a new literal to watch. *)
          let len = Array.length lits in
          let found = ref false in
          let k = ref 2 in
          while (not !found) && !k < len do
            if value_lit s lits.(!k) <> LFalse then begin
              let tmp = lits.(1) in
              lits.(1) <- lits.(!k);
              lits.(!k) <- tmp;
              (* The new watch is non-false while [negate l] is false, so
                 this registers under a different literal — safe while
                 iterating over [ws]. *)
              push_watch s (negate lits.(1)) c;
              found := true
            end;
            incr k
          done;
          if not !found then begin
            (* Unit or conflict; stays watched here. *)
            ws.(!keep) <- c;
            incr keep;
            match value_lit s lits.(0) with
            | LFalse -> conflict := c
            | LUndef -> enqueue s lits.(0) c
            | LTrue -> ()
          end
        end
      end
    done;
    s.watch_len.(l) <- !keep
  done;
  if !conflict != dummy_clause then s.qhead <- s.trail_len;
  !conflict

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let decay s = s.var_inc <- s.var_inc /. 0.95

let bump_clause s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    for i = 0 to s.learnt_len - 1 do
      let d = s.learnts.(i) in
      d.activity <- d.activity *. 1e-20
    done;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let decay_clause s = s.cla_inc <- s.cla_inc /. 0.999

(* LBD (literal block distance): number of distinct decision levels among
   a clause's literals. Computed with a per-level stamp array — no set
   allocation. Must run before backtracking invalidates the levels. *)
let compute_lbd s buf len =
  s.lbd_counter <- s.lbd_counter + 1;
  let stamp = s.lbd_stamp and c = s.lbd_counter in
  let lbd = ref 0 in
  for j = 0 to len - 1 do
    let lv = s.level.(var_of_lit buf.(j)) in
    if stamp.(lv) <> c then begin
      stamp.(lv) <- c;
      incr lbd
    end
  done;
  !lbd

(* First-UIP learning. Fills [s.learnt_buf] with the learnt clause
   (asserting literal at index 0) and returns (length, backtrack level,
   lbd). Scratch state ([seen], [learnt_buf]) is reused across conflicts;
   [seen] is undone via the [seen_touched] list. *)
let analyze s conflict =
  let current_level = s.lim_len in
  let counter = ref 0 in
  let learnt_len = ref 1 in  (* slot 0 reserved for the asserting literal *)
  let touched = ref 0 in
  let absorb c =
    if c.learnt then bump_clause s c;
    let lits = c.lits in
    for j = 0 to Array.length lits - 1 do
      let q = lits.(j) in
      let v = var_of_lit q in
      if (not s.seen.(v)) && s.assign.(v) <> LUndef then begin
        s.seen.(v) <- true;
        s.seen_touched.(!touched) <- v;
        incr touched;
        bump s v;
        if s.level.(v) = current_level then incr counter
        else if s.level.(v) > 0 then begin
          s.learnt_buf.(!learnt_len) <- q;
          incr learnt_len
        end
      end
    done
  in
  absorb conflict;
  (* Walk the trail backwards until one current-level literal remains. *)
  let idx = ref (s.trail_len - 1) in
  let asserting = ref (-1) in
  let continue = ref true in
  while !continue do
    if !idx < 0 then continue := false
    else begin
      let p = s.trail.(!idx) in
      decr idx;
      let v = var_of_lit p in
      if s.seen.(v) && s.level.(v) = current_level then begin
        decr counter;
        if !counter = 0 then begin
          asserting := negate p;
          continue := false
        end
        else begin
          let r = s.reason.(v) in
          if r != dummy_clause then absorb r
        end
      end
    end
  done;
  s.learnt_buf.(0) <- !asserting;
  let back = ref 0 in
  for j = 1 to !learnt_len - 1 do
    let lv = s.level.(var_of_lit s.learnt_buf.(j)) in
    if lv > !back then back := lv
  done;
  let lbd = compute_lbd s s.learnt_buf !learnt_len in
  for j = 0 to !touched - 1 do
    s.seen.(s.seen_touched.(j)) <- false
  done;
  (!learnt_len, !back, lbd)

(* A learnt clause may not be deleted while it is the antecedent of an
   assignment still on the trail (its implied literal sits at index 0 by
   the propagation invariant). *)
let locked s c =
  Array.length c.lits > 0 && s.reason.(var_of_lit c.lits.(0)) == c

(** Drop the cold half of the learnt database: clauses are ranked by
    activity and deleted coldest-first, skipping binary clauses (cheap and
    valuable), "glue" clauses with LBD <= 2, and locked (reason) clauses.
    Watch vectors are swept eagerly so the hot propagation loop never
    tests a deletion flag. *)
let reduce_db s =
  let n = s.learnt_len in
  if n > 0 then begin
    let live = Array.sub s.learnts 0 n in
    Array.sort (fun (a : clause) (b : clause) -> compare a.activity b.activity) live;
    let target = n / 2 in
    let deleted = ref 0 in
    let i = ref 0 in
    while !deleted < target && !i < n do
      let c = live.(!i) in
      incr i;
      if Array.length c.lits > 2 && c.lbd > 2 && not (locked s c) then begin
        c.deleted <- true;
        incr deleted
      end
    done;
    if !deleted > 0 then begin
      for l = 0 to (2 * s.nvars) - 1 do
        let ws = s.watches.(l) in
        let wn = s.watch_len.(l) in
        let keep = ref 0 in
        for j = 0 to wn - 1 do
          let c = ws.(j) in
          if not c.deleted then begin
            ws.(!keep) <- c;
            incr keep
          end
        done;
        s.watch_len.(l) <- !keep
      done;
      let keep = ref 0 in
      for j = 0 to n - 1 do
        let c = s.learnts.(j) in
        if not c.deleted then begin
          s.learnts.(!keep) <- c;
          incr keep
        end
      done;
      for j = !keep to n - 1 do
        s.learnts.(j) <- dummy_clause
      done;
      s.learnt_len <- !keep;
      s.db_reductions <- s.db_reductions + 1;
      s.clauses_deleted <- s.clauses_deleted + !deleted;
      T.count "sat.db_reduced" 1;
      T.count "sat.clauses_deleted" !deleted
    end
  end

(** Remove every clause satisfied at the root level from the watch lists
    and the learnt database. Sound unconditionally: a root-satisfied
    clause can never propagate or conflict again. Root antecedents are
    detached first — conflict analysis never consults reasons of level-0
    literals, so clauses locked only by a root assignment can be
    reclaimed too. This is what makes {!retire_group} actually reclaim memory —
    a retired group's clauses, and every learnt clause derived from them
    (all of which contain the group's negated activation literal), become
    root-satisfied and are swept here instead of lingering as watch-list
    noise for the rest of an incremental session. *)
let simplify s =
  backtrack s 0;
  s.qhead <- 0;
  (* A conflict here means the formula is root-unsat. The sweep below is
     still sound: it only removes root-SATISFIED clauses, and a
     conflicting clause (every literal false) is never one of them, so
     the conflict — and every subsequent [solve]'s Unsat answer —
     survives the sweep. *)
  ignore (propagate s);
  begin
    (* The whole trail is level 0 here and conflict analysis skips
       level-0 literals, so no antecedent on it will ever be consulted
       again. Detaching them unlocks clauses that both imply a root
       literal and are root-satisfied — e.g. a group clause whose base
       literals were all root-falsified, leaving it to force its own
       activation variable — so the sweep below can reclaim them. *)
    for i = 0 to s.trail_len - 1 do
      s.reason.(var_of_lit s.trail.(i)) <- dummy_clause
    done;
    let removed_problem = ref 0 and removed_learnt = ref 0 in
    (* At the root the whole trail is level 0, so a true literal is a
       root-true literal. *)
    let root_satisfied (c : clause) =
      let lits = c.lits in
      let len = Array.length lits in
      let sat = ref false in
      let j = ref 0 in
      while (not !sat) && !j < len do
        if value_lit s lits.(!j) = LTrue then sat := true;
        incr j
      done;
      !sat
    in
    for l = 0 to (2 * s.nvars) - 1 do
      let ws = s.watches.(l) in
      for j = 0 to s.watch_len.(l) - 1 do
        let c = ws.(j) in
        if (not c.deleted) && (not (locked s c)) && root_satisfied c then begin
          c.deleted <- true;
          if c.learnt then incr removed_learnt else incr removed_problem
        end
      done
    done;
    if !removed_problem > 0 || !removed_learnt > 0 then begin
      for l = 0 to (2 * s.nvars) - 1 do
        let ws = s.watches.(l) in
        let wn = s.watch_len.(l) in
        let keep = ref 0 in
        for j = 0 to wn - 1 do
          let c = ws.(j) in
          if not c.deleted then begin
            ws.(!keep) <- c;
            incr keep
          end
        done;
        s.watch_len.(l) <- !keep
      done;
      let n = s.learnt_len in
      let keep = ref 0 in
      for j = 0 to n - 1 do
        let c = s.learnts.(j) in
        if not c.deleted then begin
          s.learnts.(!keep) <- c;
          incr keep
        end
      done;
      for j = !keep to n - 1 do
        s.learnts.(j) <- dummy_clause
      done;
      s.learnt_len <- !keep;
      s.num_clauses <- s.num_clauses - !removed_problem;
      s.clauses_deleted <- s.clauses_deleted + !removed_learnt
    end
  end

(* --- clause groups ---------------------------------------------------- *)

(** A clause group: clauses guarded by a shared activation variable. Every
    clause added through {!add_clause_in} carries the extra literal
    [¬act], so the group is inert unless a solve assumes {!group_lit}
    (the positive activation literal). Retiring the group root-falsifies
    the activation variable, permanently satisfying the group's clauses
    and every learnt clause derived from them — resolution can never
    eliminate [¬act] because no clause contains the positive literal. *)
type group = { act : int; mutable retired : bool }

let new_group s = { act = new_var s; retired = false }

let group_lit g = lit_of_var g.act ~sign:true

let add_clause_in s g lits =
  if g.retired then invalid_arg "Solver.add_clause_in: group already retired";
  add_clause s (lit_of_var g.act ~sign:false :: lits)

(** Permanently deactivate a group: a root unit clause falsifies its
    activation variable, then {!simplify} physically removes the now
    root-satisfied member clauses and their learnt descendants.
    Idempotent. *)
let retire_group s g =
  if not g.retired then begin
    g.retired <- true;
    add_clause s [ lit_of_var g.act ~sign:false ];
    simplify s;
    T.count "sat.groups_retired" 1
  end

(** Roll variable allocation back to [n] variables. The caller must have
    removed every clause mentioning a variable [>= n] first — the
    intended discipline is per-query variables above a fixed floor,
    all guarded by one group, with {!retire_group} run before the
    shrink. Root assignments of released variables are dropped from the
    trail and their activity/saved phase reset, so re-allocating the
    same indices behaves like fresh variables. Keeps incremental
    sessions' variable range (and the decision heuristic's scan) bounded
    by one query's footprint instead of growing with session length. *)
let shrink_vars s n =
  if n < 0 || n > s.nvars then invalid_arg "Solver.shrink_vars";
  backtrack s 0;
  let keep = ref 0 in
  for i = 0 to s.trail_len - 1 do
    let l = s.trail.(i) in
    let v = var_of_lit l in
    if v < n then begin
      s.trail.(!keep) <- l;
      incr keep
    end
    else begin
      s.assign.(v) <- LUndef;
      s.reason.(v) <- dummy_clause
    end
  done;
  s.trail_len <- !keep;
  s.qhead <- 0;
  for v = n to s.nvars - 1 do
    (* Released variables must be clause-free by the caller's contract. *)
    assert (s.watch_len.(2 * v) = 0 && s.watch_len.((2 * v) + 1) = 0);
    s.assign.(v) <- LUndef;
    s.level.(v) <- 0;
    s.reason.(v) <- dummy_clause;
    s.activity.(v) <- 0.0;
    s.phase.(v) <- false
  done;
  s.nvars <- n

(** Reset the decision heuristic — VSIDS activities and saved phases —
    to a fresh solver's initial state (all-zero activity makes the
    decision order fall back to variable index; all-false phases match
    [create]'s default). Incremental sessions call this between
    unrelated queries: activity earned on one query's fault cone is
    noise for the next, and with zero activity the search order is
    fixed, so stale phases can deterministically replay a bad subtree
    that restarts cannot escape — both were observed as orders-of-
    magnitude conflict blow-ups. Only the learnt clauses persist. *)
let reset_activity s =
  Array.fill s.activity 0 (Array.length s.activity) 0.0;
  Array.fill s.phase 0 (Array.length s.phase) false

(** Override the automatic learnt-DB limit ([max 2000 #clauses]); [0]
    restores the automatic limit. *)
let set_learnt_limit s n = s.max_learnts <- n

(** Enable/disable periodic DB reduction (on by default). *)
let set_db_reduction s on = s.db_reduction_enabled <- on

let effective_learnt_limit s =
  if s.max_learnts > 0 then s.max_learnts else max 2000 s.num_clauses

let maybe_reduce_db s =
  if s.db_reduction_enabled then begin
    let limit = effective_learnt_limit s in
    if s.learnt_len > limit then begin
      reduce_db s;
      (* Let the DB grow a little before the next reduction. *)
      s.max_learnts <- limit + (limit / 10) + 16
    end
  end

let pick_branch s =
  let best = ref (-1) and best_act = ref neg_infinity in
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) = LUndef && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  if !best < 0 then None
  else Some (lit_of_var !best ~sign:s.phase.(!best))

let luby i =
  (* Luby sequence: 1 1 2 1 1 2 4 ... *)
  let rec go k i =
    if i = (1 lsl k) - 1 then 1 lsl (k - 1)
    else if i < (1 lsl k) - 1 then go (k - 1) (i - (1 lsl (k - 1)) + 1)
    else go (k + 1) i
  in
  go 1 i

type result =
  | Sat
  | Unsat
  | Unknown of Eda_util.Budget.exhaustion
      (** The budget ran out before the search concluded. Security metrics
          are step functions, so a bounded "don't know" must stay distinct
          from either definite answer. *)

(* Record a freshly learnt clause (length >= 2, in learnt_buf), watch it
   and enqueue its asserting literal. Runs right after backtracking. *)
let record_learnt s len lbd =
  let buf = s.learnt_buf in
  (* Watch the asserting literal and a highest-level tail literal, so the
     clause wakes up exactly when it can propagate again. *)
  let best = ref 1 in
  for j = 2 to len - 1 do
    if s.level.(var_of_lit buf.(j)) > s.level.(var_of_lit buf.(!best)) then best := j
  done;
  let tmp = buf.(1) in
  buf.(1) <- buf.(!best);
  buf.(!best) <- tmp;
  let c =
    { lits = Array.sub buf 0 len;
      activity = s.cla_inc;
      lbd;
      learnt = true;
      deleted = false }
  in
  push_learnt s c;
  s.learnt_count <- s.learnt_count + 1;
  push_watch s (negate c.lits.(0)) c;
  push_watch s (negate c.lits.(1)) c;
  if value_lit s c.lits.(0) = LUndef then enqueue s c.lits.(0) c;
  maybe_reduce_db s

(* The search loop proper; [solve] below wraps it in a telemetry span. *)
let solve_raw ?budget ~assumptions s =
  (* Reset to root and re-propagate the root-level trail: units enqueued by
     [add_clause] may not have been propagated yet. Re-propagating assigned
     literals is idempotent and revisits clauses added since. *)
  backtrack s 0;
  s.qhead <- 0;
  if propagate s != dummy_clause then Unsat
  else begin
    let restart_count = ref 1 in
    let conflicts_until_restart = ref (32 * luby 1) in
    let result = ref None in
    (* Install assumptions as pseudo-decisions at successive levels. *)
    let rec install = function
      | [] -> true
      | a :: rest ->
        (match value_lit s a with
         | LTrue -> install rest
         | LFalse -> false
         | LUndef ->
           new_decision s a;
           if propagate s != dummy_clause then false else install rest)
    in
    let num_assumptions = List.length assumptions in
    if not (install assumptions) then Unsat
    else begin
      while !result = None do
        let conflict = propagate s in
        if conflict != dummy_clause then begin
          s.conflicts <- s.conflicts + 1;
          (* One budget step per conflict; a definite Unsat at assumption
             level still wins over Unknown. *)
          let stop =
            match budget with
            | None -> None
            | Some b ->
              (match Eda_util.Budget.spend b with Ok () -> None | Error e -> Some e)
          in
          if s.lim_len <= num_assumptions then result := Some Unsat
          else begin
            match stop with
            | Some e -> result := Some (Unknown e)
            | None ->
              let len, back, lbd = analyze s conflict in
              let back = max back num_assumptions in
              backtrack s back;
              (if len = 1 then begin
                 let l = s.learnt_buf.(0) in
                 if value_lit s l = LFalse then result := Some Unsat
                 else if value_lit s l = LUndef then enqueue s l dummy_clause
               end
               else record_learnt s len lbd);
              decay s;
              decay_clause s;
              decr conflicts_until_restart;
              if !conflicts_until_restart <= 0 && !result = None then begin
                incr restart_count;
                s.num_restarts <- s.num_restarts + 1;
                conflicts_until_restart := 32 * luby !restart_count;
                backtrack s num_assumptions
              end
          end
        end
        else begin
          (* Deadline/cancellation check between decisions, so an instance
             propagating without conflicts still honours its budget. *)
          let stop =
            match budget with
            | Some b when s.num_decisions land 255 = 0 -> Eda_util.Budget.status b
            | Some _ | None -> None
          in
          match stop with
          | Some e -> result := Some (Unknown e)
          | None ->
            (match pick_branch s with
             | None -> result := Some Sat
             | Some l ->
               s.num_decisions <- s.num_decisions + 1;
               new_decision s l)
        end
      done;
      match !result with
      | Some r -> r
      | None -> assert false
    end
  end

(** Solve under [assumptions]. The solver state is reusable across calls
    (incremental interface); learnt clauses persist — including across an
    [Unknown] answer, so a later call with a fresh budget resumes with all
    learnt clauses retained (DB reduction only ever drops cold clauses,
    never the whole database).

    [budget] is charged one step per conflict and checked at every conflict
    and periodically between decisions; without it the search is unbounded
    and the answer is always [Sat]/[Unsat].

    With a telemetry sink installed, each call is one [sat.solve] span
    carrying this solve's decision/propagation/conflict/restart deltas as
    counters and a [sat.learnt_db] gauge (the per-conflict hot path itself
    is never instrumented). *)
let solve ?budget ?(assumptions = []) s =
  if not (T.active ()) then solve_raw ?budget ~assumptions s
  else
    T.with_span "sat.solve"
      ~attrs:[ ("vars", T.Int s.nvars); ("assumptions", T.Int (List.length assumptions)) ]
      (fun () ->
        let conflicts0 = s.conflicts
        and decisions0 = s.num_decisions
        and propagations0 = s.propagations
        and restarts0 = s.num_restarts in
        let result = solve_raw ?budget ~assumptions s in
        T.count "sat.conflicts" (s.conflicts - conflicts0);
        T.count "sat.decisions" (s.num_decisions - decisions0);
        T.count "sat.propagations" (s.propagations - propagations0);
        T.count "sat.restarts" (s.num_restarts - restarts0);
        T.gauge "sat.learnt_db" (float_of_int s.learnt_len);
        T.note "sat.result"
          ~attrs:
            [ ("result",
               T.Str
                 (match result with
                  | Sat -> "sat"
                  | Unsat -> "unsat"
                  | Unknown e -> "unknown: " ^ Eda_util.Budget.describe_exhaustion e)) ];
        result)

(** Seed the saved-phase store pseudo-randomly. Phase saving normally
    starts all-false and converges on the last assigned polarity; seeding
    it sends the very first decisions of otherwise-identical solvers down
    different branches — the diversification knob of a portfolio
    ({!Locking.Sat_attack} races one member per seed). Deterministic per
    [seed]; soundness is untouched (phases only bias decision polarity).
    Covers variables allocated so far; call after encoding. *)
let randomize_phases s seed =
  let r = Eda_util.Rng.create seed in
  for v = 0 to s.nvars - 1 do
    s.phase.(v) <- Eda_util.Rng.bool r
  done

(** Model access after a [Sat] answer. Unassigned variables read as false. *)
let model_value s v =
  if v < s.nvars then
    match s.assign.(v) with LTrue -> true | LFalse | LUndef -> false
  else false

type stats = {
  vars : int;
  clauses : int;  (* live problem clauses *)
  conflicts : int;
  decisions : int;
  propagations : int;
  learnt : int;  (* total clauses ever learnt *)
  learnt_live : int;  (* learnt clauses currently in the database *)
  restarts : int;
  db_reductions : int;
  clauses_deleted : int;
}

let stats s =
  { vars = s.nvars;
    clauses = s.num_clauses;
    conflicts = s.conflicts;
    decisions = s.num_decisions;
    propagations = s.propagations;
    learnt = s.learnt_count;
    learnt_live = s.learnt_len;
    restarts = s.num_restarts;
    db_reductions = s.db_reductions;
    clauses_deleted = s.clauses_deleted }

let pp_stats fmt st =
  Format.fprintf fmt
    "vars %d, clauses %d, conflicts %d, decisions %d, propagations %d, \
     learnt %d (%d live), restarts %d, db reductions %d (%d deleted)"
    st.vars st.clauses st.conflicts st.decisions st.propagations st.learnt
    st.learnt_live st.restarts st.db_reductions st.clauses_deleted
