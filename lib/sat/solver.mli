(** Conflict-driven clause learning SAT solver.

    Two-watched-literal propagation, first-UIP learning, VSIDS-style
    decisions, Luby restarts, phase saving, incremental solving under
    assumptions. Variables are created with {!new_var}; literals are
    encoded as [2v] (positive) / [2v+1] (negative). *)

type lit = int

val lit_of_var : int -> sign:bool -> lit
val var_of_lit : lit -> int

(** True for positive literals. *)
val pos : lit -> bool

val negate : lit -> lit

type t

val create : unit -> t

(** Allocate the next variable index. *)
val new_var : t -> int

(** Raised by {!add_clause} when the formula is unsatisfiable at the root
    level (no assumptions involved). *)
exception Unsat_root

(** Add a clause. Backtracks to the root level first, so it is safe to
    call between incremental {!solve} invocations. Tautologies are
    dropped; root-satisfied clauses are skipped; unit clauses are
    propagated eagerly.
    @raise Unsat_root if the clause is falsified at level 0. *)
val add_clause : t -> lit list -> unit

type result =
  | Sat
  | Unsat
  | Unknown of Eda_util.Budget.exhaustion
      (** Budget ran out before the search concluded; only possible when a
          budget was passed. *)

(** Solve under [assumptions] (default none). The solver state is
    reusable across calls; learnt clauses persist — including across an
    [Unknown] answer, so a retry with a fresh budget resumes where the
    bounded run stopped. An [Unsat] answer under assumptions means no
    model extends them; without assumptions it is global unsatisfiability.

    [budget] is charged one step per conflict and its deadline/cancel flag
    is additionally checked periodically between decisions. Without a
    budget the search is unbounded and never answers [Unknown]. *)
val solve : ?budget:Eda_util.Budget.t -> ?assumptions:lit list -> t -> result

(** Model access after a [Sat] answer; unassigned variables read false. *)
val model_value : t -> int -> bool

type stats = {
  vars : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  learnt : int;
  restarts : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
