(** Conflict-driven clause learning SAT solver.

    Two-watched-literal propagation, first-UIP learning, VSIDS-style
    decisions, Luby restarts, phase saving, incremental solving under
    assumptions. Variables are created with {!new_var}; literals are
    encoded as [2v] (positive) / [2v+1] (negative).

    The core is allocation-free: the trail is a flat preallocated array
    indexed by a propagation head pointer (decision levels are trail
    offsets), watch lists are array-backed vectors compacted in place, and
    conflict analysis reuses scratch buffers. Learnt clauses carry
    activity and LBD scores and live in a bounded database: when it
    outgrows its limit, the cold half is dropped (binary, low-LBD and
    reason clauses are kept) — see {!set_learnt_limit} /
    {!set_db_reduction}. *)

type lit = int

val lit_of_var : int -> sign:bool -> lit
val var_of_lit : lit -> int

(** True for positive literals. *)
val pos : lit -> bool

val negate : lit -> lit

type t

val create : unit -> t

(** Allocate the next variable index. *)
val new_var : t -> int

(** Allocate [n] consecutive variables and return the first index (so the
    block is [v .. v+n-1]). One growth check instead of [n]; the bulk
    allocation path for CNF encoders. *)
val new_vars : t -> int -> int

(** Raised by {!add_clause} when the formula is unsatisfiable at the root
    level (no assumptions involved). *)
exception Unsat_root

(** Add a clause. Backtracks to the root level first, so it is safe to
    call between incremental {!solve} invocations. Tautologies are
    dropped; root-satisfied clauses are skipped; unit clauses are
    propagated eagerly.
    @raise Unsat_root if the clause is falsified at level 0. *)
val add_clause : t -> lit list -> unit

type result =
  | Sat
  | Unsat
  | Unknown of Eda_util.Budget.exhaustion
      (** Budget ran out before the search concluded; only possible when a
          budget was passed. *)

(** Solve under [assumptions] (default none). The solver state is
    reusable across calls; learnt clauses persist — including across an
    [Unknown] answer, so a retry with a fresh budget resumes where the
    bounded run stopped (DB reduction only drops cold clauses, never the
    whole database). An [Unsat] answer under assumptions means no model
    extends them; without assumptions it is global unsatisfiability.

    [budget] is charged one step per conflict and its deadline/cancel flag
    is additionally checked periodically between decisions. Without a
    budget the search is unbounded and never answers [Unknown]. *)
val solve : ?budget:Eda_util.Budget.t -> ?assumptions:lit list -> t -> result

(** Model access after a [Sat] answer; unassigned variables read false. *)
val model_value : t -> int -> bool

(** {2 Clause groups}

    A clause group tags clauses with a shared activation literal: every
    clause added through {!add_clause_in} carries the extra disjunct
    [¬act], making the whole group inert unless a {!solve} call assumes
    {!group_lit}. This is the classic MiniSat activation-literal idiom
    for incremental sessions — encode a shared base formula once, push
    each query's private clauses under a fresh group, solve under the
    group's assumption, then retire the group.

    {!retire_group} permanently falsifies the activation variable with a
    root unit clause and then runs {!simplify}, which physically removes
    the group's clauses {e and every learnt clause derived from them}:
    resolution can never eliminate [¬act] (no clause contains the
    positive activation literal), so each such learnt clause contains
    [¬act] and becomes root-satisfied. Learnt clauses that mention only
    base-formula variables survive and keep accelerating later queries.

    Answers are unaffected: with the assumption installed a group behaves
    exactly as if its clauses had been added plainly, and after
    retirement exactly as if they never existed (differential-tested
    against a fresh solver in the test suite). *)

type group

(** Allocate a group (costs one variable — the activation variable). *)
val new_group : t -> group

(** The positive activation literal; pass it in [assumptions] to enable
    the group's clauses for one {!solve} call. *)
val group_lit : group -> lit

(** Add a clause guarded by the group's activation literal.
    @raise Invalid_argument if the group was retired. *)
val add_clause_in : t -> group -> lit list -> unit

(** Permanently deactivate a group and reclaim its clauses and learnt
    descendants (see the section comment). Idempotent. *)
val retire_group : t -> group -> unit

(** Remove every root-satisfied clause from the watch lists and the
    learnt database. Antecedents of root assignments are detached first
    (conflict analysis never consults level-0 reasons), so clauses locked
    only by a root assignment are reclaimed too. Sound unconditionally;
    called automatically by {!retire_group}. *)
val simplify : t -> unit

(** Roll variable allocation back to [n] variables. The caller must have
    removed every clause mentioning a released variable first — the
    intended use is recycling per-query scratch variables above a fixed
    floor after {!retire_group}. Root assignments, activity and saved
    phases of released variables are reset, so re-allocating the same
    indices behaves like fresh variables.
    @raise Invalid_argument when [n] is negative or above the current
    variable count. *)
val shrink_vars : t -> int -> unit

(** Reset the decision heuristic — VSIDS activities and saved phases —
    to a fresh solver's initial state (index-order decisions, all-false
    phases). Incremental sessions call this between unrelated queries:
    stale activity or phases from an earlier query can deterministically
    steer the search into a pathological subtree. Learnt clauses are
    unaffected. *)
val reset_activity : t -> unit

(** Override the learnt-database size limit (default: automatic,
    [max 2000 #problem-clauses]). Passing [0] restores the automatic
    limit. Setting a small limit forces frequent reductions — used by
    stress tests and benchmarks. *)
val set_learnt_limit : t -> int -> unit

(** Enable or disable periodic learnt-DB reduction (enabled by default).
    Disabling reproduces the unbounded-growth behaviour of the reference
    solver — useful for determinism comparisons. *)
val set_db_reduction : t -> bool -> unit

(** [randomize_phases s seed] seeds the saved-phase store so identical
    solvers explore the search space in different orders — the
    diversification knob for portfolio solving. Deterministic per [seed];
    affects only decision polarity, never soundness. Covers variables
    allocated so far, so call it after encoding. *)
val randomize_phases : t -> int -> unit

type stats = {
  vars : int;
  clauses : int;  (** live problem (non-learnt) clauses *)
  conflicts : int;
  decisions : int;
  propagations : int;
  learnt : int;  (** total clauses ever learnt *)
  learnt_live : int;  (** learnt clauses currently in the database *)
  restarts : int;
  db_reductions : int;  (** number of [reduce_db] passes *)
  clauses_deleted : int;  (** learnt clauses dropped by reduction *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
