(** Tseitin encoding of circuits into a shared SAT solver instance, plus
    miter construction for equivalence checking. The node-to-variable map
    is explicit so attacks can constrain individual nets (keys, scan
    cells, fault sites). *)

type env = {
  solver : Solver.t;
  vars : int array;  (** circuit node id -> solver variable *)
}

(** Literal for a circuit node with the given polarity. *)
val lit : env -> node:int -> sign:bool -> Solver.lit

(** Encode the combinational logic of a circuit (DFF outputs become free
    variables — one unrolled time frame). Several circuits may share one
    [solver] (pass it explicitly) for miters and multi-copy attacks. *)
val encode : ?solver:Solver.t -> Netlist.Circuit.t -> env

(** Fresh variable constrained to the XOR of two existing variables. *)
val xor_var : Solver.t -> int -> int -> int

(** Fresh variable constrained to the OR of existing variables. *)
val or_var : Solver.t -> int list -> int

(** Three-valued outcome of a bounded equivalence query. *)
type equivalence =
  | Equivalent
  | Counterexample of bool array  (** distinguishing input assignment *)
  | Equiv_unknown of Eda_util.Budget.exhaustion

(** Combinational equivalence bounded by [budget] (one step per solver
    conflict). Without a budget the answer is never [Equiv_unknown].
    [on_stats] observes the internal miter solver's statistics.
    @raise Eda_util.Eda_error.Error on interface mismatch. *)
val check_equivalence_b :
  ?budget:Eda_util.Budget.t ->
  ?on_stats:(Solver.stats -> unit) ->
  Netlist.Circuit.t ->
  Netlist.Circuit.t ->
  equivalence

(** Cone-based stuck-at detectability query — the ATPG miter. The clean
    circuit is encoded once; faulty variables exist only in the fault's
    transitive fanout cone (cut at DFF boundaries), and the miter XORs
    only the affected outputs. Outside the cone the copies share
    variables, so the solver never has to re-derive their equality —
    this is what keeps per-fault queries tractable on 10k+-gate
    circuits, where a whole-copy miter blows up. [Equivalent] means
    undetectable (the cone reaches no output, or the miter is UNSAT);
    [Counterexample] carries a detecting input assignment.
    @raise Invalid_argument when [node] is out of range. *)
val check_stuck_at :
  ?budget:Eda_util.Budget.t ->
  ?on_stats:(Solver.stats -> unit) ->
  Netlist.Circuit.t ->
  node:int ->
  value:bool ->
  equivalence

(** Size (in nodes, including the fault site) of the DFF-cut transitive
    fanout cone of [node] — the number of gates a stuck-at query at
    [node] must duplicate, i.e. a direct proxy for that query's encoding
    cost. [scratch] (length >= node count) avoids the per-call cone
    buffer allocation; its contents are reset before use.
    @raise Invalid_argument when [node] is out of range. *)
val fanout_cone_gates : ?scratch:bool array -> Netlist.Circuit.t -> node:int -> int

(** Incremental stuck-at sessions: the clean circuit is Tseitin-encoded
    {e once} per session; each {!Stuck_at_session.query} adds only the
    fault's fanout-cone faulty copy and miter under a fresh clause group
    ({!Solver.new_group}), solves under the group's activation literal,
    and retires the group afterwards. Learnt clauses about the clean
    circuit persist across queries and accelerate every later one, while
    {!Solver.shrink_vars} recycles each query's variable indices so the
    session's footprint stays bounded by one query.

    Answers match fresh-solver {!check_stuck_at} exactly — both are
    sound and complete, so the per-fault status is identical
    (differential-tested). A [Counterexample]'s witness pattern may
    differ (persistent learnt clauses steer the search), but it always
    detects the fault. Within one session, answers are a deterministic
    function of the query sequence. *)
module Stuck_at_session : sig
  type t

  (** Encode [circuit]'s clean copy once into [solver] (fresh by
      default). *)
  val create : ?solver:Solver.t -> Netlist.Circuit.t -> t

  (** One stuck-at query; same contract as {!check_stuck_at}. The query's
      clause group is retired and its variables recycled before
      returning — also after an [Equiv_unknown], so a later retry with a
      larger budget re-encodes only the fault's cone while keeping every
      clean-circuit learnt clause. [on_stats] observes this query's
      solver-statistics {e delta} (capacity fields are post-query
      totals, work fields per-query differences).
      @raise Invalid_argument when [node] is out of range. *)
  val query :
    ?budget:Eda_util.Budget.t ->
    ?on_stats:(Solver.stats -> unit) ->
    t ->
    node:int ->
    value:bool ->
    equivalence

  (** Number of queries issued so far (including cone-misses answered
      without solving). *)
  val queries : t -> int

  (** Session solver's cumulative statistics. *)
  val stats : t -> Solver.stats
end

(** Unbounded combinational equivalence of two identically-shaped
    circuits; [None] when equivalent, otherwise a distinguishing input
    assignment. *)
val check_equivalence : Netlist.Circuit.t -> Netlist.Circuit.t -> bool array option

(** Is output [output] ever true? Returns a witness input when so. *)
val satisfiable_output : Netlist.Circuit.t -> output:int -> bool array option
