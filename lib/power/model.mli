(** Pre-silicon power-trace simulation — the substitution for measuring a
    physical chip. Traces come from the glitch-aware event simulation
    (switching energy per time bin) or from zero-delay Hamming models;
    Gaussian noise stands in for the measurement chain. *)

type config = {
  time_bins : int;  (** samples per clock cycle *)
  bin_width_ps : float;
  noise_sigma : float;
}

val default_config : config

(** One cycle's trace for the transition [prev_inputs] -> [next_inputs];
    [input_arrivals] skews per-input switch times (late mask refresh). *)
val trace :
  Eda_util.Rng.t ->
  ?delay_of:(int -> Netlist.Gate.kind -> float) ->
  ?input_arrivals:float array ->
  ?state:bool array ->
  Netlist.Circuit.t ->
  config:config ->
  prev_inputs:bool array ->
  next_inputs:bool array ->
  float array

(** Whole cycle integrated into one sample (glitch-aware). *)
val total_energy :
  Eda_util.Rng.t ->
  ?delay_of:(int -> Netlist.Gate.kind -> float) ->
  ?state:bool array ->
  Netlist.Circuit.t ->
  noise_sigma:float ->
  prev_inputs:bool array ->
  next_inputs:bool array ->
  float

(** Zero-delay Hamming-distance sample between two settled states.
    [scratch]/[scratch2] are reusable net-value buffers (length >= node
    count); hoist them out of a campaign loop for zero per-sample
    allocation. *)
val hamming_distance_sample :
  Eda_util.Rng.t ->
  ?scratch:bool array ->
  ?scratch2:bool array ->
  Netlist.Circuit.t ->
  noise_sigma:float ->
  prev_inputs:bool array ->
  next_inputs:bool array ->
  float

(** Weighted Hamming weight of the settled state (precharged-logic model).
    [scratch] is a reusable net-value buffer (length >= node count). *)
val hamming_weight_sample :
  Eda_util.Rng.t ->
  ?scratch:bool array ->
  Netlist.Circuit.t ->
  noise_sigma:float ->
  inputs:bool array ->
  float

(** One trace per input-vector pair. *)
val trace_batch :
  Eda_util.Rng.t ->
  ?delay_of:(int -> Netlist.Gate.kind -> float) ->
  Netlist.Circuit.t ->
  config:config ->
  (bool array * bool array) list ->
  float array list

(** Quiescent-current (IDDQ) sample: per-cell leakage with input-state
    dependence and an environmental [temperature_factor]. [scratch] is a
    reusable net-value buffer (length >= node count). *)
val iddq_sample :
  Eda_util.Rng.t ->
  ?scratch:bool array ->
  Netlist.Circuit.t ->
  inputs:bool array ->
  noise_sigma:float ->
  temperature_factor:float ->
  float
