(** Pre-silicon power-trace simulation — the substitution for measuring a
    physical chip with an oscilloscope.

    Each simulated clock cycle yields a trace: the cycle is divided into
    time bins and every net transition (from the glitch-aware event
    simulation) deposits the switching energy of its driving cell into the
    bin of its time stamp. Gaussian noise of configurable sigma models the
    measurement chain. This is the standard CMOS dynamic-power proxy the
    paper's timing-and-power-verification row relies on: leakage present in
    this model is leakage an attacker with a probe will see. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

type config = {
  time_bins : int;  (* samples per clock cycle *)
  bin_width_ps : float;
  noise_sigma : float;  (* additive Gaussian noise per sample *)
}

let default_config = { time_bins = 16; bin_width_ps = 50.0; noise_sigma = 0.5 }

(** One cycle's power trace for the transition [prev_inputs] ->
    [next_inputs]. [input_arrivals] skews input switch times. *)
let trace rng ?delay_of ?input_arrivals ?state circuit ~config ~prev_inputs ~next_inputs =
  let transitions =
    Timing.Event_sim.cycle ?delay_of ?input_arrivals ?state circuit ~prev_inputs ~next_inputs
  in
  let samples = Array.make config.time_bins 0.0 in
  List.iter
    (fun tr ->
      let bin =
        Float.to_int (tr.Timing.Event_sim.time /. config.bin_width_ps)
      in
      let bin = if bin < 0 then 0 else if bin >= config.time_bins then config.time_bins - 1 else bin in
      let energy = Gate.switch_energy (Circuit.kind circuit tr.Timing.Event_sim.node) in
      samples.(bin) <- samples.(bin) +. energy)
    transitions;
  if config.noise_sigma > 0.0 then
    for k = 0 to config.time_bins - 1 do
      samples.(k) <-
        samples.(k) +. Eda_util.Rng.gaussian_scaled rng ~mean:0.0 ~sigma:config.noise_sigma
    done;
  samples

(** Total-energy sample (the whole cycle integrated into one number); the
    model CPA-style attacks typically assume. *)
let total_energy rng ?delay_of ?state circuit ~noise_sigma ~prev_inputs ~next_inputs =
  let transitions =
    Timing.Event_sim.cycle ?delay_of ?state circuit ~prev_inputs ~next_inputs
  in
  let e =
    List.fold_left
      (fun acc tr ->
        acc +. Gate.switch_energy (Circuit.kind circuit tr.Timing.Event_sim.node))
      0.0 transitions
  in
  e +. Eda_util.Rng.gaussian_scaled rng ~mean:0.0 ~sigma:noise_sigma

(* Net-value buffer for the zero-delay samplers: the caller-provided
   [?scratch] when present (hoisted out of a trace-campaign loop — zero
   per-sample allocation), a fresh array otherwise. *)
let value_buffer ?scratch circuit =
  match scratch with
  | Some b ->
    assert (Array.length b >= Circuit.node_count circuit);
    b
  | None -> Array.make (Circuit.node_count circuit) false

(** Zero-delay Hamming-distance power model: energy proportional to the
    number of nets whose settled value changes between two input vectors.
    Cheaper than event simulation; no glitch component. [scratch] /
    [scratch2] are reusable net-value buffers (>= node count each). *)
let hamming_distance_sample rng ?scratch ?scratch2 circuit ~noise_sigma ~prev_inputs
    ~next_inputs =
  let before = value_buffer ?scratch circuit in
  let after = value_buffer ?scratch:scratch2 circuit in
  Netlist.Sim.eval_all_into circuit prev_inputs ~into:before;
  Netlist.Sim.eval_all_into circuit next_inputs ~into:after;
  let e = ref 0.0 in
  for i = 0 to Circuit.node_count circuit - 1 do
    if before.(i) <> after.(i) then
      e := !e +. Gate.switch_energy (Circuit.kind circuit i)
  done;
  !e +. Eda_util.Rng.gaussian_scaled rng ~mean:0.0 ~sigma:noise_sigma

(** Hamming-weight model of the settled state: energy proportional to the
    weighted count of nets at 1. Used for leakage models of precharged
    buses. [scratch] is a reusable net-value buffer (>= node count). *)
let hamming_weight_sample rng ?scratch circuit ~noise_sigma ~inputs =
  let values = value_buffer ?scratch circuit in
  Netlist.Sim.eval_all_into circuit inputs ~into:values;
  let e = ref 0.0 in
  for i = 0 to Circuit.node_count circuit - 1 do
    if values.(i) then e := !e +. Gate.switch_energy (Circuit.kind circuit i)
  done;
  !e +. Eda_util.Rng.gaussian_scaled rng ~mean:0.0 ~sigma:noise_sigma

(** A batch of traces for a list of input-vector pairs. *)
let trace_batch rng ?delay_of circuit ~config pairs =
  List.map
    (fun (prev_inputs, next_inputs) ->
      trace rng ?delay_of circuit ~config ~prev_inputs ~next_inputs)
    pairs

(** Static leakage-current proxy per gate (IDDQ model): each cell draws a
    nominal quiescent current depending on its input state; Trojans add
    extra cells and thus extra leakage. The [temperature_factor] models
    environmental spread between measurements. *)
let iddq_sample rng ?scratch circuit ~inputs ~noise_sigma ~temperature_factor =
  let values = value_buffer ?scratch circuit in
  Netlist.Sim.eval_all_into circuit inputs ~into:values;
  let total = ref 0.0 in
  for i = 0 to Circuit.node_count circuit - 1 do
    let base = 0.1 *. Gate.area (Circuit.kind circuit i) in
    (* Input-state dependence: a conducting stack leaks slightly more. *)
    let state_factor = if values.(i) then 1.1 else 0.9 in
    total := !total +. (base *. state_factor)
  done;
  (!total *. temperature_factor)
  +. Eda_util.Rng.gaussian_scaled rng ~mean:0.0 ~sigma:noise_sigma
