(** Fault models and faulty simulation: permanent stuck-at faults (the
    ATPG target), transient bit-flips (laser/EM injection). Injection
    overrides the fault site's value during evaluation — the simulation-
    level substitute for a physical rig. *)

type fault =
  | Stuck_at of { node : int; value : bool }
  | Bit_flip of { node : int }  (** transient inversion of the computed value *)

val node_of : fault -> int

(** Human-readable description, e.g. ["s-a-1 @ G22"]. *)
val describe : Netlist.Circuit.t -> fault -> string

(** Evaluate all nets with [faults] active. *)
val eval_all_faulty :
  ?state:bool array -> Netlist.Circuit.t -> faults:fault list -> bool array -> bool array

(** Primary outputs with [faults] active. *)
val eval_faulty :
  ?state:bool array -> Netlist.Circuit.t -> faults:fault list -> bool array -> bool array

(** Both polarities of stuck-at on every input, gate and DFF site. *)
val all_stuck_at_faults : Netlist.Circuit.t -> fault list

(** Does the pattern change any primary output under the fault? *)
val detects : Netlist.Circuit.t -> fault:fault -> bool array -> bool

(** Reusable scratch for {!detects_many}: one word-parallel circuit
    evaluation carries up to 63 {e faults} in the bit lanes of each net
    word, against a single broadcast input pattern. *)
type wsim

(** Scratch sized for [circuit] (usable for any circuit with at most as
    many nodes). *)
val wsim_create : Netlist.Circuit.t -> wsim

(** [detects_many w circuit ~faults pattern] fault-simulates [pattern]
    against every fault in [faults] in one sweep; bit [k] of the result
    is set iff [pattern] detects [faults.(k)] on a primary output.
    Agrees with per-fault {!detects} lane by lane; allocation-free after
    {!wsim_create}.
    @raise Invalid_argument when [faults] exceeds 63 entries or the
    scratch was built for a smaller circuit. *)
val detects_many : wsim -> Netlist.Circuit.t -> faults:fault array -> bool array -> int

(** Per-fault detection by a pattern set. *)
val fault_simulation :
  Netlist.Circuit.t -> faults:fault list -> patterns:bool array list -> (fault * bool) list

(** Fraction of [faults] detected by [patterns] (1.0 on an empty list). *)
val coverage : Netlist.Circuit.t -> faults:fault list -> patterns:bool array list -> float
