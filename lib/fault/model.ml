(** Fault models and faulty simulation.

    The three models cover the paper's fault-injection discussion: permanent
    stuck-at faults (manufacturing defects, the ATPG target), transient
    bit-flips (laser/EM injection at runtime) and forced-value faults
    (precise attacker control). Injection is simulation-level: the fault
    site's value is overridden during evaluation, which is exactly the
    substitution a laser rig performs on the physical net. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

type fault =
  | Stuck_at of { node : int; value : bool }
  | Bit_flip of { node : int }  (* transient inversion of the computed value *)

let node_of = function Stuck_at { node; _ } -> node | Bit_flip { node } -> node

let describe circuit = function
  | Stuck_at { node; value } ->
    Printf.sprintf "s-a-%d @ %s" (if value then 1 else 0) (Circuit.name circuit node)
  | Bit_flip { node } -> Printf.sprintf "flip @ %s" (Circuit.name circuit node)

(** Evaluate all nets with [faults] active. *)
let eval_all_faulty ?state circuit ~faults inputs =
  let overrides = Hashtbl.create 4 in
  List.iter
    (fun f ->
      match f with
      | Stuck_at { node; value } -> Hashtbl.replace overrides node (`Force value)
      | Bit_flip { node } -> Hashtbl.replace overrides node `Flip)
    faults;
  let n = Circuit.node_count circuit in
  let values = Array.make n false in
  let input_ids = Circuit.inputs circuit in
  Array.iteri (fun k id -> values.(id) <- inputs.(k)) input_ids;
  (match state with
   | None -> ()
   | Some st -> Array.iteri (fun k id -> values.(id) <- st.(k)) (Circuit.dffs circuit));
  let apply_override i v =
    match Hashtbl.find_opt overrides i with
    | Some (`Force b) -> b
    | Some `Flip -> not v
    | None -> v
  in
  for i = 0 to n - 1 do
    let nd = Circuit.node circuit i in
    let computed =
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> values.(i)
      | k -> Gate.eval_indexed k nd.Circuit.fanins values
    in
    values.(i) <- apply_override i computed
  done;
  values

let eval_faulty ?state circuit ~faults inputs =
  let values = eval_all_faulty ?state circuit ~faults inputs in
  Array.map (fun (_, o) -> values.(o)) (Circuit.outputs circuit)

(** All single stuck-at faults on internal nets and inputs (the classical
    fault list, collapsed to observable sites). *)
let all_stuck_at_faults circuit =
  let faults = ref [] in
  for i = 0 to Circuit.node_count circuit - 1 do
    match Circuit.kind circuit i with
    | Gate.Const _ -> ()
    | Gate.Input | Gate.Dff | Gate.Buf | Gate.Not | Gate.And | Gate.Nand
    | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor | Gate.Mux ->
      faults := Stuck_at { node = i; value = true } :: Stuck_at { node = i; value = false } :: !faults
  done;
  List.rev !faults

(** Does [inputs] detect [fault] (change any primary output)? *)
let detects circuit ~fault inputs =
  Netlist.Sim.eval circuit inputs <> eval_faulty circuit ~faults:[ fault ] inputs

(** Fault simulation of a pattern set: returns per-fault detection. *)
let fault_simulation circuit ~faults ~patterns =
  List.map
    (fun fault -> fault, List.exists (fun p -> detects circuit ~fault p) patterns)
    faults

(** Fault coverage of a pattern set over [faults]. *)
let coverage circuit ~faults ~patterns =
  let detected =
    List.length (List.filter snd (fault_simulation circuit ~faults ~patterns))
  in
  if faults = [] then 1.0
  else Float.of_int detected /. Float.of_int (List.length faults)
