(** Fault models and faulty simulation.

    The three models cover the paper's fault-injection discussion: permanent
    stuck-at faults (manufacturing defects, the ATPG target), transient
    bit-flips (laser/EM injection at runtime) and forced-value faults
    (precise attacker control). Injection is simulation-level: the fault
    site's value is overridden during evaluation, which is exactly the
    substitution a laser rig performs on the physical net. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

type fault =
  | Stuck_at of { node : int; value : bool }
  | Bit_flip of { node : int }  (* transient inversion of the computed value *)

let node_of = function Stuck_at { node; _ } -> node | Bit_flip { node } -> node

let describe circuit = function
  | Stuck_at { node; value } ->
    Printf.sprintf "s-a-%d @ %s" (if value then 1 else 0) (Circuit.name circuit node)
  | Bit_flip { node } -> Printf.sprintf "flip @ %s" (Circuit.name circuit node)

(** Evaluate all nets with [faults] active. *)
let eval_all_faulty ?state circuit ~faults inputs =
  let overrides = Hashtbl.create 4 in
  List.iter
    (fun f ->
      match f with
      | Stuck_at { node; value } -> Hashtbl.replace overrides node (`Force value)
      | Bit_flip { node } -> Hashtbl.replace overrides node `Flip)
    faults;
  let n = Circuit.node_count circuit in
  let values = Array.make n false in
  let input_ids = Circuit.inputs circuit in
  Array.iteri (fun k id -> values.(id) <- inputs.(k)) input_ids;
  (match state with
   | None -> ()
   | Some st -> Array.iteri (fun k id -> values.(id) <- st.(k)) (Circuit.dffs circuit));
  let apply_override i v =
    match Hashtbl.find_opt overrides i with
    | Some (`Force b) -> b
    | Some `Flip -> not v
    | None -> v
  in
  for i = 0 to n - 1 do
    let nd = Circuit.node circuit i in
    let computed =
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> values.(i)
      | k -> Gate.eval_indexed k nd.Circuit.fanins values
    in
    values.(i) <- apply_override i computed
  done;
  values

let eval_faulty ?state circuit ~faults inputs =
  let values = eval_all_faulty ?state circuit ~faults inputs in
  Array.map (fun (_, o) -> values.(o)) (Circuit.outputs circuit)

(** All single stuck-at faults on internal nets and inputs (the classical
    fault list, collapsed to observable sites). *)
let all_stuck_at_faults circuit =
  let faults = ref [] in
  for i = 0 to Circuit.node_count circuit - 1 do
    match Circuit.kind circuit i with
    | Gate.Const _ -> ()
    | Gate.Input | Gate.Dff | Gate.Buf | Gate.Not | Gate.And | Gate.Nand
    | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor | Gate.Mux ->
      faults := Stuck_at { node = i; value = true } :: Stuck_at { node = i; value = false } :: !faults
  done;
  List.rev !faults

(** Does [inputs] detect [fault] (change any primary output)? *)
let detects circuit ~fault inputs =
  Netlist.Sim.eval circuit inputs <> eval_faulty circuit ~faults:[ fault ] inputs

(* The 63 usable lanes of a native int word (Sim's convention: the sign
   bit is unused so [lnot]-based gates stay maskable). *)
let word_mask = 0x7FFFFFFFFFFFFFFF
let max_lanes = 63

(** Reusable scratch for word-parallel multi-fault simulation: one
    circuit evaluation carries up to 63 {e faults} in the bit lanes of
    each net word, against a single broadcast input pattern. *)
type wsim = {
  values : int array;  (* per-net words, lane k = circuit under fault k *)
  clean : bool array;  (* scalar clean evaluation of the same pattern *)
  stuck_mask : int array;  (* per-net: lanes overridden by a stuck-at *)
  stuck_val : int array;  (* per-net: forced value in overridden lanes *)
  flip_mask : int array;  (* per-net: lanes inverted by a bit-flip *)
  touched : int array;  (* fault sites whose masks need clearing *)
  mutable ntouched : int;
}

let wsim_create circuit =
  let n = Circuit.node_count circuit in
  { values = Array.make n 0;
    clean = Array.make n false;
    stuck_mask = Array.make n 0;
    stuck_val = Array.make n 0;
    flip_mask = Array.make n 0;
    touched = Array.make max_lanes 0;
    ntouched = 0 }

(** [detects_many w circuit ~faults pattern] fault-simulates [pattern]
    against every fault in [faults] (at most 63) in one word-parallel
    sweep and returns a bitmask: bit [k] is set iff [pattern] detects
    [faults.(k)] on a primary output. Allocation-free after
    {!wsim_create}; agrees with per-fault {!detects} lane by lane
    (differential-tested). *)
let detects_many w circuit ~faults pattern =
  let nf = Array.length faults in
  if nf > max_lanes then invalid_arg "Model.detects_many: more than 63 faults";
  if Array.length w.values < Circuit.node_count circuit then
    invalid_arg "Model.detects_many: scratch built for a smaller circuit";
  (* Install per-lane overrides; OR so both polarities at one site and
     duplicate sites compose (each lane carries exactly one fault). *)
  Array.iteri
    (fun k f ->
      let bit = 1 lsl k in
      let v = node_of f in
      w.touched.(w.ntouched) <- v;
      w.ntouched <- w.ntouched + 1;
      match f with
      | Stuck_at { value; _ } ->
        w.stuck_mask.(v) <- w.stuck_mask.(v) lor bit;
        if value then w.stuck_val.(v) <- w.stuck_val.(v) lor bit
      | Bit_flip _ -> w.flip_mask.(v) <- w.flip_mask.(v) lor bit)
    faults;
  (* Clean scalar reference for the broadcast comparison. *)
  Netlist.Sim.eval_all_into circuit pattern ~into:w.clean;
  let n = Circuit.node_count circuit in
  let values = w.values in
  Array.iter (fun id -> values.(id) <- 0) (Circuit.dffs circuit);
  Array.iteri
    (fun k id -> values.(id) <- (if pattern.(k) then word_mask else 0))
    (Circuit.inputs circuit);
  for i = 0 to n - 1 do
    let nd = Circuit.node circuit i in
    let computed =
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> values.(i)
      | k -> Gate.eval_word_indexed k nd.Circuit.fanins values
    in
    (* Per-lane override, mirroring [eval_all_faulty]'s apply_override:
       force the stuck lanes, then invert the flip lanes. *)
    values.(i) <-
      ((computed land lnot w.stuck_mask.(i)) lor w.stuck_val.(i))
      lxor w.flip_mask.(i)
  done;
  let detected = ref 0 in
  Array.iter
    (fun (_, o) ->
      let clean_word = if w.clean.(o) then word_mask else 0 in
      detected := !detected lor ((values.(o) lxor clean_word) land word_mask))
    (Circuit.outputs circuit);
  (* Reset the override masks via the touched-site list (zeroing clears
     both polarities at a shared site at once). *)
  for j = 0 to w.ntouched - 1 do
    let v = w.touched.(j) in
    w.stuck_mask.(v) <- 0;
    w.stuck_val.(v) <- 0;
    w.flip_mask.(v) <- 0
  done;
  w.ntouched <- 0;
  !detected land ((1 lsl nf) - 1)

(** Fault simulation of a pattern set: returns per-fault detection. *)
let fault_simulation circuit ~faults ~patterns =
  List.map
    (fun fault -> fault, List.exists (fun p -> detects circuit ~fault p) patterns)
    faults

(** Fault coverage of a pattern set over [faults]. *)
let coverage circuit ~faults ~patterns =
  let detected =
    List.length (List.filter snd (fault_simulation circuit ~faults ~patterns))
  in
  if faults = [] then 1.0
  else Float.of_int detected /. Float.of_int (List.length faults)
