(** Chaos harness: deliberate corruption of engine inputs and budgets.

    The paper's composition argument cuts both ways — a secure flow must
    not only compose protections, it must *fail* compositionally: a
    malformed netlist or an exhausted budget in one stage must surface as
    a structured error or a degradation note, never as an exception that
    tears down the whole flow. This module injects exactly those failure
    modes and classifies what the engine under test did about them.

    The harness is engine-agnostic: scenarios are thunks returning
    [(note, Eda_error.t) result], so tests can drive anything from
    [Io.of_string_result] to [Secure_eda.Flow.run] through it. *)

module Budget = Eda_util.Budget
module Eda_error = Eda_util.Eda_error

(* --- Netlist corruption ------------------------------------------------ *)

type corruption =
  | Truncate  (* cut the file mid-line, as a dropped transfer would *)
  | Drop_line  (* delete one gate definition: dangling references *)
  | Self_loop  (* a gate that feeds itself: combinational loop *)
  | Duplicate_net  (* the same net defined twice *)
  | Unknown_cell  (* a cell name no library has *)
  | Garbage_line  (* a line that is not bench syntax at all *)

let all_corruptions =
  [ Truncate; Drop_line; Self_loop; Duplicate_net; Unknown_cell; Garbage_line ]

let corruption_name = function
  | Truncate -> "truncate"
  | Drop_line -> "drop-line"
  | Self_loop -> "self-loop"
  | Duplicate_net -> "duplicate-net"
  | Unknown_cell -> "unknown-cell"
  | Garbage_line -> "garbage-line"

(** Corrupt bench-format [text]; deterministic given the [rng] state. *)
let corrupt rng corruption text =
  let lines = String.split_on_char '\n' text in
  let gate_idx =
    List.concat (List.mapi (fun i l -> if String.contains l '=' then [ i ] else []) lines)
  in
  let pick xs = List.nth xs (Eda_util.Rng.int rng (List.length xs)) in
  let rewrite_nth n f = List.mapi (fun i l -> if i = n then f l else l) lines in
  match corruption with
  | Truncate ->
    (* Cut inside the last third so a prefix parses and then stops making
       sense, like a truncated download. *)
    let len = String.length text in
    let cut = (2 * len / 3) + 1 in
    String.sub text 0 (min cut (max 0 (len - 2)))
  | Drop_line ->
    (match gate_idx with
     | [] -> text
     | _ ->
       let victim = pick gate_idx in
       String.concat "\n" (List.concat (List.mapi (fun i l -> if i = victim then [] else [ l ]) lines)))
  | Self_loop ->
    (match gate_idx with
     | [] -> text
     | _ ->
       let victim = pick gate_idx in
       String.concat "\n"
         (rewrite_nth victim (fun l ->
              match String.index_opt l '=', String.index_opt l '(' with
              | Some eq, Some lp when lp > eq ->
                let lhs = String.trim (String.sub l 0 eq) in
                let close = String.rindex l ')' in
                let args = String.sub l (lp + 1) (close - lp - 1) in
                (match String.split_on_char ',' args with
                 | _ :: rest ->
                   String.sub l 0 (lp + 1)
                   ^ String.concat "," (lhs :: rest)
                   ^ String.sub l close (String.length l - close)
                 | [] -> l)
              | _ -> l)))
  | Duplicate_net ->
    (match gate_idx with
     | [] -> text
     | _ ->
       let victim = pick gate_idx in
       String.concat "\n"
         (List.concat (List.mapi (fun i l -> if i = victim then [ l; l ] else [ l ]) lines)))
  | Unknown_cell ->
    (match gate_idx with
     | [] -> text
     | _ ->
       let victim = pick gate_idx in
       String.concat "\n"
         (rewrite_nth victim (fun l ->
              match String.index_opt l '=', String.index_opt l '(' with
              | Some eq, Some lp when lp > eq ->
                String.sub l 0 (eq + 1) ^ " FROBNICATE" ^ String.sub l lp (String.length l - lp)
              | _ -> l)))
  | Garbage_line -> text ^ "\nthis is not a netlist line\n"

(* --- Budget starvation ------------------------------------------------- *)

(** A budget that is exhausted before any work happens. *)
let starved_budget () = Budget.create ~steps:0 ()

(** A budget far too small for any real engine run. *)
let tiny_budget ?(steps = 3) () = Budget.create ~steps ()

(* --- Concurrency / supervision scenarios -------------------------------- *)

(* The supervised job engine ([Service.Supervisor]) promises that no job
   behavior — crash, stall, flake — escapes as an exception or wedges
   the pool. These builders produce exactly those behaviors as plain
   [Budget.t -> (string, Eda_error.t) result] work functions, so the
   supervisor can be driven through its whole failure taxonomy without
   involving a real engine. Tests classify each scenario by the terminal
   state the supervisor assigns it (failed / retried-then-done / shed /
   quarantined). *)

(** The exception {!raising_work} throws: deliberately not one of the
    constructors {!Eda_error.guard} knows, so only genuine crash
    isolation (not the guard's catch list) can contain it. *)
exception Injected_crash of string

(** Work that raises on every call — the misbehaving-task scenario. *)
let raising_work ?(msg = "injected task crash") () =
  fun (_ : Budget.t) -> raise (Injected_crash msg)

(** Work that never concludes on its own: it spins, charging its budget
    one step per iteration, until the budget stops it — the stalled-task
    scenario. Under an unlimited budget a safety valve of [max_spins]
    iterations reports an engine failure instead of hanging the suite. *)
let stalling_work ?(max_spins = 1_000_000) () =
  fun (budget : Budget.t) ->
    let rec spin n =
      if n >= max_spins then
        Error
          (Eda_error.Engine_failure
             { engine = "chaos.stall"; msg = "stall safety valve tripped" })
      else
        match Budget.spend budget with
        | Ok () -> spin (n + 1)
        | Error reason ->
          Error
            (Eda_error.Budget_exhausted
               { engine = "chaos.stall";
                 reason;
                 progress = Printf.sprintf "stalled through %d polls" (n + 1) })
    in
    spin 0

(** Work that fails its first [fails] calls (as a transient
    [Engine_failure]) and succeeds afterwards — the flaky-job scenario a
    retry policy must ride out. The call counter is atomic, so attempts
    may land on any pool domain. *)
let flaky_work ~fails () =
  let calls = Atomic.make 0 in
  fun (_ : Budget.t) ->
    let k = Atomic.fetch_and_add calls 1 in
    if k < fails then
      Error
        (Eda_error.Engine_failure
           { engine = "chaos.flaky";
             msg = Printf.sprintf "transient fault %d/%d" (k + 1) fails })
    else Ok (Printf.sprintf "succeeded on call %d" (k + 1))

(* --- Checkpoint-file corruption ----------------------------------------- *)

type file_corruption =
  | Truncate_file  (* drop the tail, as a crash mid-copy would *)
  | Bit_flip  (* flip one random bit, as silent media corruption would *)

let all_file_corruptions = [ Truncate_file; Bit_flip ]

let file_corruption_name = function
  | Truncate_file -> "truncate-file"
  | Bit_flip -> "bit-flip"

(** Corrupt the file at [path] in place; deterministic given the [rng]
    state. Used against on-disk flow checkpoints: a resume from the
    result must be a structured refusal, never a crash. *)
let corrupt_file rng corruption path =
  let text = In_channel.with_open_bin path In_channel.input_all in
  let corrupted =
    match corruption with
    | Truncate_file ->
      let len = String.length text in
      String.sub text 0 (len * 2 / 3)
    | Bit_flip ->
      if String.length text = 0 then text
      else begin
        let b = Bytes.of_string text in
        let victim = Eda_util.Rng.int rng (Bytes.length b) in
        let bit = Eda_util.Rng.int rng 8 in
        Bytes.set b victim (Char.chr (Char.code (Bytes.get b victim) lxor (1 lsl bit)));
        Bytes.to_string b
      end
  in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc corrupted)

(* --- Scenario execution ------------------------------------------------ *)

type outcome =
  | Survived of string  (* corruption was harmless; engine concluded *)
  | Degraded of string  (* structured error or degradation note — the goal *)
  | Crashed of string  (* an exception escaped — the bug chaos hunts *)

type observation = { scenario : string; outcome : outcome }

let graceful o = match o.outcome with Crashed _ -> false | Survived _ | Degraded _ -> true

let describe_observation o =
  Printf.sprintf "%-24s %s" o.scenario
    (match o.outcome with
     | Survived note -> "survived: " ^ note
     | Degraded note -> "degraded: " ^ note
     | Crashed exn -> "CRASHED: " ^ exn)

(** Run one scenario. [Ok note] means the engine concluded (possibly with
    internal degradation it reported in [note]); [Error e] means it
    refused with a structured error; an escaped exception is a crash. *)
let observe name f =
  match f () with
  | Ok note -> { scenario = name; outcome = Survived note }
  | Error e -> { scenario = name; outcome = Degraded (Eda_error.to_string e) }
  | exception exn -> { scenario = name; outcome = Crashed (Printexc.to_string exn) }

let execute scenarios = List.map (fun (name, f) -> observe name f) scenarios

let all_graceful observations = List.for_all graceful observations

(** Feed every corruption of [text] to [consumer] (e.g. parse-then-flow)
    and classify each outcome. *)
let corruption_campaign rng ~text ~consumer =
  List.map
    (fun c ->
      let corrupted = corrupt rng c text in
      observe ("corrupt:" ^ corruption_name c) (fun () -> consumer corrupted))
    all_corruptions
