(** Formal validation of error-detection properties ([32]; Table II,
    functional-validation x FIA cell): instead of sampling patterns, a
    SAT query per fault either *proves* that every data-corrupting input
    also raises the alarm, or returns a concrete escape witness — the
    bounded-model-checking flavour of robustness analysis.

    Query for fault f on protected circuit C with alarm output A:
      exists X :  data_f(X) != data(X)  /\  A_f(X) = A(X)
    UNSAT = the fault cannot corrupt silently. *)

module Circuit = Netlist.Circuit
module Solver = Sat.Solver
module Cnf = Sat.Cnf

(* A copy of the circuit with a stuck-at fault frozen in (combinational
   circuits; mirrors Dft.Atpg.faulty_copy without depending on dft). *)
let faulty_copy circuit fault =
  match (fault : Model.fault) with
  | Model.Bit_flip _ -> invalid_arg "Formal: transient faults have no static copy"
  | Model.Stuck_at { node; value } ->
    let out = Circuit.create () in
    let n = Circuit.node_count circuit in
    let remap = Array.make n (-1) in
    let name_taken = Hashtbl.create 64 in
    let copy_name i =
      let nm = Circuit.name circuit i in
      if Hashtbl.mem name_taken nm || Circuit.find_by_name out nm <> None then ""
      else begin
        Hashtbl.replace name_taken nm ();
        nm
      end
    in
    for i = 0 to n - 1 do
      let nd = Circuit.node circuit i in
      let fanins = Array.map (fun f -> remap.(f)) nd.Circuit.fanins in
      let id = Circuit.add_node_raw out nd.Circuit.kind fanins (copy_name i) in
      remap.(i) <-
        (if i = node then Circuit.add_node_raw out (Netlist.Gate.Const value) [||] "" else id)
    done;
    Array.iter (fun (nm, o) -> Circuit.set_output out nm remap.(o)) (Circuit.outputs circuit);
    out

type verdict =
  | Proven_detected  (* no input corrupts data silently *)
  | Escape of bool array  (* witness input: corrupts data, alarm silent *)
  | Harmless  (* the fault can never corrupt the data outputs *)

(** Check one stuck-at fault against the protected circuit. *)
let check_fault (prot : Countermeasure.protected_circuit) fault =
  let clean = prot.Countermeasure.circuit in
  let faulty = faulty_copy clean fault in
  let solver = Solver.create () in
  let env_c = Cnf.encode ~solver clean in
  let env_f = Cnf.encode ~solver faulty in
  let ins_c = Circuit.inputs clean and ins_f = Circuit.inputs faulty in
  Array.iteri
    (fun k ic ->
      let vc = env_c.Cnf.vars.(ic) and vf = env_f.Cnf.vars.(ins_f.(k)) in
      Solver.add_clause solver [ Solver.lit_of_var vc ~sign:true; Solver.lit_of_var vf ~sign:false ];
      Solver.add_clause solver [ Solver.lit_of_var vc ~sign:false; Solver.lit_of_var vf ~sign:true ])
    ins_c;
  let outs = Circuit.outputs clean in
  let index_of nm =
    let rec find k =
      if k >= Array.length outs then invalid_arg ("Formal: missing output " ^ nm)
      else if fst outs.(k) = nm then k
      else find (k + 1)
    in
    find 0
  in
  let out_ids_c = Circuit.output_ids clean and out_ids_f = Circuit.output_ids faulty in
  let alarm = index_of prot.Countermeasure.alarm_output in
  let data_idx = List.map index_of prot.Countermeasure.data_outputs in
  (* Some data output differs. *)
  let data_diffs =
    List.map
      (fun k -> Cnf.xor_var solver env_c.Cnf.vars.(out_ids_c.(k)) env_f.Cnf.vars.(out_ids_f.(k)))
      data_idx
  in
  let corrupted = Cnf.or_var solver data_diffs in
  Solver.add_clause solver [ Solver.lit_of_var corrupted ~sign:true ];
  (* Alarm agrees between faulty and clean (i.e. the fault is not flagged). *)
  let alarm_diff =
    Cnf.xor_var solver env_c.Cnf.vars.(out_ids_c.(alarm)) env_f.Cnf.vars.(out_ids_f.(alarm))
  in
  Solver.add_clause solver [ Solver.lit_of_var alarm_diff ~sign:false ];
  match Solver.solve solver with
  | Solver.Unsat ->
    (* No silent corruption. Distinguish "always detected" from "harmless"
       with a second query: can the fault corrupt data at all? *)
    let solver2 = Solver.create () in
    let env_c2 = Cnf.encode ~solver:solver2 clean in
    let env_f2 = Cnf.encode ~solver:solver2 faulty in
    Array.iteri
      (fun k ic ->
        let vc = env_c2.Cnf.vars.(ic) and vf = env_f2.Cnf.vars.((Circuit.inputs faulty).(k)) in
        Solver.add_clause solver2 [ Solver.lit_of_var vc ~sign:true; Solver.lit_of_var vf ~sign:false ];
        Solver.add_clause solver2 [ Solver.lit_of_var vc ~sign:false; Solver.lit_of_var vf ~sign:true ])
      ins_c;
    let diffs2 =
      List.map
        (fun k ->
          Cnf.xor_var solver2 env_c2.Cnf.vars.(out_ids_c.(k)) env_f2.Cnf.vars.(out_ids_f.(k)))
        data_idx
    in
    let corrupted2 = Cnf.or_var solver2 diffs2 in
    Solver.add_clause solver2 [ Solver.lit_of_var corrupted2 ~sign:true ];
    (match Solver.solve solver2 with
     | Solver.Sat -> Proven_detected
     | Solver.Unsat -> Harmless
     | Solver.Unknown _ -> assert false (* unbudgeted solve cannot abstain *))
  | Solver.Unknown _ -> assert false  (* unbudgeted solve cannot abstain *)
  | Solver.Sat ->
    let witness = Array.map (fun ic -> Solver.model_value solver env_c.Cnf.vars.(ic)) ins_c in
    Escape witness

(** Exhaustive formal audit over every single stuck-at fault: the red-team
    search the paper describes ("to demonstrate whether an error-detecting
    scheme can detect all faults means to search for faults possibly
    missed"). *)
let audit prot =
  let faults =
    List.filter
      (fun f -> match f with Model.Stuck_at _ -> true | Model.Bit_flip _ -> false)
      (Model.all_stuck_at_faults prot.Countermeasure.circuit)
  in
  let proven = ref 0 and escapes = ref [] and harmless = ref 0 in
  List.iter
    (fun fault ->
      match check_fault prot fault with
      | Proven_detected -> incr proven
      | Harmless -> incr harmless
      | Escape w -> escapes := (fault, w) :: !escapes)
    faults;
  `Proven !proven, `Escapes (List.rev !escapes), `Harmless !harmless
