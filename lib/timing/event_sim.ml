(** Event-driven gate-level simulation with transport delays.

    Applying an input transition launches a wave of events through the
    circuit; a gate whose inputs settle at different times emits transient
    transitions (glitches) before reaching its final value. Glitches are the
    physical mechanism behind the residual leakage of masked logic discussed
    in the paper (Sec. III-E, [55]), so the power model consumes the full
    transition list, not just final values. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate

type transition = { time : float; node : int; value : bool }

(* Minimal binary heap on (time, sequence); earliest time first, FIFO
   among equal times — the FIFO tie-break is essential: when a gate's
   inputs change twice at the same instant, the event computed from the
   *later* input state must win, or the simulation settles to stale
   values. *)
module Heap = struct
  type entry = { t : float; seq : int; node : int; v : bool }
  type t = { mutable data : entry array; mutable size : int; mutable next_seq : int }

  let create () =
    { data = Array.make 64 { t = 0.0; seq = 0; node = 0; v = false };
      size = 0;
      next_seq = 0 }

  let earlier a b = a.t < b.t || (a.t = b.t && a.seq < b.seq)

  let push h ~t ~node ~v =
    let e = { t; seq = h.next_seq; node; v } in
    h.next_seq <- h.next_seq + 1;
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) e in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- e;
    h.size <- h.size + 1;
    (* Sift up. *)
    let i = ref (h.size - 1) in
    while !i > 0 && earlier h.data.(!i) h.data.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.data.(p) in
      h.data.(p) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && earlier h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.size && earlier h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end
end

(** Simulate one clock cycle: the circuit settles at [prev_inputs] (and
    [state] for DFF outputs), then the inputs switch to [next_inputs] —
    input k at time [input_arrivals.(k)] (default 0). Skewed arrivals model
    late mask refresh or unbalanced input paths, the classic cause of
    glitch leakage in masked logic. Returns every net transition in time
    order, including glitches. [delay_of] defaults to nominal delays. *)
let cycle ?delay_of ?input_arrivals ?state circuit ~prev_inputs ~next_inputs =
  let delay_of =
    match delay_of with
    | Some f -> f
    | None -> fun _node kind -> Gate.delay kind
  in
  let values = Netlist.Sim.eval_all ?state circuit prev_inputs in
  let fanouts = Circuit.fanouts circuit in
  let heap = Heap.create () in
  let input_ids = Circuit.inputs circuit in
  let arrival k =
    match input_arrivals with
    | Some arr -> arr.(k)
    | None -> 0.0
  in
  Array.iteri
    (fun k id ->
      if next_inputs.(k) <> values.(id) then
        Heap.push heap ~t:(arrival k) ~node:id ~v:next_inputs.(k))
    input_ids;
  let transitions = ref [] in
  let guard = ref 0 in
  let max_events = 200 * Circuit.node_count circuit in
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some { Heap.t; node; v; seq = _ } ->
      incr guard;
      if !guard > max_events then invalid_arg "Event_sim.cycle: event storm (oscillation?)";
      if values.(node) <> v then begin
        values.(node) <- v;
        transitions := { time = t; node; value = v } :: !transitions;
        List.iter
          (fun consumer ->
            let nd = Circuit.node circuit consumer in
            match nd.Circuit.kind with
            | Gate.Input | Gate.Dff -> ()  (* DFFs capture at the clock edge *)
            | k ->
              let out = Gate.eval_indexed k nd.Circuit.fanins values in
              Heap.push heap ~t:(t +. delay_of consumer k) ~node:consumer ~v:out)
          fanouts.(node)
      end;
      loop ()
  in
  loop ();
  List.rev !transitions

(** Transition count per node over the cycle; >1 on a node that glitched
    on the way to its final value (or toggled and returned). *)
let toggle_counts circuit transitions =
  let counts = Array.make (Circuit.node_count circuit) 0 in
  List.iter (fun tr -> counts.(tr.node) <- counts.(tr.node) + 1) transitions;
  counts

(** Nets that glitched: more transitions than the |initial -> final| change
    requires. *)
let glitching_nodes circuit transitions =
  let counts = toggle_counts circuit transitions in
  let nodes = ref [] in
  Array.iteri (fun i c -> if c > 1 then nodes := i :: !nodes) counts;
  List.rev !nodes
