(** Gate-level cell vocabulary. [Mux] fanins are ordered select, then the
    data input chosen when select is 0, then the one chosen when select is 1.
    [Dff] holds sequential state; its single fanin (the D input) is the only
    edge allowed to point forward in node order, which is how combinational
    loops are excluded by construction. *)

type kind =
  | Input
  | Const of bool
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Mux
  | Dff

let arity = function
  | Input -> 0
  | Const _ -> 0
  | Buf | Not | Dff -> 1
  | And | Nand | Or | Nor | Xor | Xnor -> 2
  | Mux -> 3

let name = function
  | Input -> "INPUT"
  | Const false -> "CONST0"
  | Const true -> "CONST1"
  | Buf -> "BUF"
  | Not -> "NOT"
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Mux -> "MUX"
  | Dff -> "DFF"

let of_name s =
  match String.uppercase_ascii s with
  | "INPUT" -> Input
  | "CONST0" -> Const false
  | "CONST1" -> Const true
  | "BUF" -> Buf
  | "NOT" -> Not
  | "AND" -> And
  | "NAND" -> Nand
  | "OR" -> Or
  | "NOR" -> Nor
  | "XOR" -> Xor
  | "XNOR" -> Xnor
  | "MUX" -> Mux
  | "DFF" -> Dff
  | other -> invalid_arg (Printf.sprintf "Gate.of_name: unknown cell %s" other)

(** Combinational evaluation given fanin values. [Input], [Dff] are handled
    by the simulator, never here. *)
let eval kind fanins =
  match kind, fanins with
  | Const b, [||] -> b
  | Buf, [| a |] -> a
  | Not, [| a |] -> not a
  | And, [| a; b |] -> a && b
  | Nand, [| a; b |] -> not (a && b)
  | Or, [| a; b |] -> a || b
  | Nor, [| a; b |] -> not (a || b)
  | Xor, [| a; b |] -> a <> b
  | Xnor, [| a; b |] -> a = b
  | Mux, [| s; a; b |] -> if s then b else a
  | (Input | Dff), _ -> invalid_arg "Gate.eval: stateful cell"
  | (Const _ | Buf | Not | And | Nand | Or | Nor | Xor | Xnor | Mux), _ ->
    invalid_arg (Printf.sprintf "Gate.eval: %s arity mismatch" (name kind))

(** Bit-parallel evaluation over 63 simulation slots packed in an int. *)
let eval_word kind fanins =
  match kind, fanins with
  | Const false, [||] -> 0
  | Const true, [||] -> -1
  | Buf, [| a |] -> a
  | Not, [| a |] -> Stdlib.lnot a
  | And, [| a; b |] -> a land b
  | Nand, [| a; b |] -> Stdlib.lnot (a land b)
  | Or, [| a; b |] -> a lor b
  | Nor, [| a; b |] -> Stdlib.lnot (a lor b)
  | Xor, [| a; b |] -> a lxor b
  | Xnor, [| a; b |] -> Stdlib.lnot (a lxor b)
  | Mux, [| s; a; b |] -> (Stdlib.lnot s land a) lor (s land b)
  | (Input | Dff), _ -> invalid_arg "Gate.eval_word: stateful cell"
  | (Const _ | Buf | Not | And | Nand | Or | Nor | Xor | Xnor | Mux), _ ->
    invalid_arg (Printf.sprintf "Gate.eval_word: %s arity mismatch" (name kind))

(** Combinational evaluation reading fanin values straight out of [values]
    through the node's fanin-index array — the zero-allocation path used by
    {!Netlist.Sim}'s hot loops (no per-gate operand array is built). Fanin
    arity is trusted; it is validated at circuit construction. *)
let eval_indexed kind (fanins : int array) (values : bool array) =
  match kind with
  | Const b -> b
  | Buf -> values.(fanins.(0))
  | Not -> not values.(fanins.(0))
  | And -> values.(fanins.(0)) && values.(fanins.(1))
  | Nand -> not (values.(fanins.(0)) && values.(fanins.(1)))
  | Or -> values.(fanins.(0)) || values.(fanins.(1))
  | Nor -> not (values.(fanins.(0)) || values.(fanins.(1)))
  | Xor -> values.(fanins.(0)) <> values.(fanins.(1))
  | Xnor -> values.(fanins.(0)) = values.(fanins.(1))
  | Mux -> if values.(fanins.(0)) then values.(fanins.(2)) else values.(fanins.(1))
  | Input | Dff -> invalid_arg "Gate.eval_indexed: stateful cell"

(** Bit-parallel analogue of {!eval_indexed} over packed 63-slot words. *)
let eval_word_indexed kind (fanins : int array) (values : int array) =
  match kind with
  | Const false -> 0
  | Const true -> -1
  | Buf -> values.(fanins.(0))
  | Not -> Stdlib.lnot values.(fanins.(0))
  | And -> values.(fanins.(0)) land values.(fanins.(1))
  | Nand -> Stdlib.lnot (values.(fanins.(0)) land values.(fanins.(1)))
  | Or -> values.(fanins.(0)) lor values.(fanins.(1))
  | Nor -> Stdlib.lnot (values.(fanins.(0)) lor values.(fanins.(1)))
  | Xor -> values.(fanins.(0)) lxor values.(fanins.(1))
  | Xnor -> Stdlib.lnot (values.(fanins.(0)) lxor values.(fanins.(1)))
  | Mux ->
    let s = values.(fanins.(0)) in
    (Stdlib.lnot s land values.(fanins.(1))) lor (s land values.(fanins.(2)))
  | Input | Dff -> invalid_arg "Gate.eval_word_indexed: stateful cell"

(** Unit-area cost per cell; the area component of the PPA model. Loosely
    NAND2-equivalent counts of typical standard-cell libraries. *)
let area = function
  | Input | Const _ -> 0.0
  | Buf -> 0.7
  | Not -> 0.5
  | Nand | Nor -> 1.0
  | And | Or -> 1.3
  | Xor | Xnor -> 2.3
  | Mux -> 2.6
  | Dff -> 4.5

(** Nominal propagation delay in picoseconds; the timing component. *)
let delay = function
  | Input | Const _ -> 0.0
  | Buf -> 35.0
  | Not -> 20.0
  | Nand | Nor -> 30.0
  | And | Or -> 45.0
  | Xor | Xnor -> 60.0
  | Mux -> 65.0
  | Dff -> 80.0

(** Relative switching energy per output toggle; the power component. *)
let switch_energy = function
  | Input | Const _ -> 0.0
  | Buf -> 0.6
  | Not -> 0.4
  | Nand | Nor -> 1.0
  | And | Or -> 1.2
  | Xor | Xnor -> 1.9
  | Mux -> 2.1
  | Dff -> 3.0

let is_combinational = function
  | Buf | Not | And | Nand | Or | Nor | Xor | Xnor | Mux | Const _ -> true
  | Input | Dff -> false

let equal_kind (a : kind) b = a = b
