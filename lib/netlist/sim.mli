(** Functional simulation of circuits: single-pattern, bit-parallel
    (63 patterns per machine word) and multi-cycle sequential. *)

(** Values of every net for one input assignment, indexed by node id.
    DFF outputs come from [state] (all-false when absent); inputs follow
    the circuit's input declaration order. *)
val eval_all : ?state:bool array -> Circuit.t -> bool array -> bool array

(** As {!eval_all}, but writes into the caller-supplied buffer [into]
    (length >= node count) instead of allocating. The buffer may be dirty
    from a previous call: input and DFF slots are (re)initialized and
    every combinational net is overwritten. *)
val eval_all_into : ?state:bool array -> Circuit.t -> bool array -> into:bool array -> unit

(** Primary outputs for one input assignment, in output declaration order. *)
val eval : ?state:bool array -> Circuit.t -> bool array -> bool array

(** Outputs packed into an integer, bit 0 being the first declared output. *)
val eval_int : ?state:bool array -> Circuit.t -> bool array -> int

(** Bit-parallel variants: each input word carries up to 63 independent
    patterns. *)
val eval_all_word : ?state:int array -> Circuit.t -> int array -> int array

(** Reusable-buffer variant of {!eval_all_word}; zero per-pattern
    allocation when the buffer is hoisted out of the sweep loop. *)
val eval_all_word_into : ?state:int array -> Circuit.t -> int array -> into:int array -> unit

val eval_word : ?state:int array -> Circuit.t -> int array -> int array

(** One clock cycle of a sequential circuit: (outputs, next DFF state). *)
val step : Circuit.t -> state:bool array -> bool array -> bool array * bool array

(** Run a sequence of input vectors from the all-zero state; returns the
    output trace in order. *)
val run : Circuit.t -> bool array list -> bool array list

(** Truth table of one output (combinational circuits, <= 16 inputs). *)
val truth_table : Circuit.t -> output:int -> Logic.Truth_table.t

(** Exhaustive functional equivalence (combinational, <= 20 inputs);
    word-parallel, 63 patterns per circuit sweep. *)
val equivalent_exhaustive : Circuit.t -> Circuit.t -> bool

(** Randomized functional equivalence for wider circuits; sound only in
    the "no counterexample found" direction. Word-parallel: at least
    [patterns] patterns are compared, rounded up to full 63-pattern
    words. *)
val equivalent_random : Eda_util.Rng.t -> patterns:int -> Circuit.t -> Circuit.t -> bool

(** Per-node one-probability estimated over random patterns; the input to
    rare-signal (Trojan trigger) analysis. 63 patterns per word with
    reused buffers — no per-pattern allocation. *)
val signal_probabilities : Eda_util.Rng.t -> patterns:int -> Circuit.t -> float array
