(** Gate-level cell vocabulary and per-kind physical characteristics.

    [Mux] fanins are ordered: select, the data input chosen when select is
    0, then the one chosen when select is 1. [Dff] holds sequential state;
    its single D-input fanin is the only edge allowed to point forward in
    node order. *)

type kind =
  | Input
  | Const of bool
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Mux
  | Dff

(** Number of fanins the kind requires. *)
val arity : kind -> int

(** Canonical cell name, e.g. ["NAND"]; inverse of {!of_name}. *)
val name : kind -> string

(** Parse a cell name (case-insensitive).
    @raise Invalid_argument on unknown names. *)
val of_name : string -> kind

(** Combinational evaluation given fanin values.
    @raise Invalid_argument on stateful kinds or arity mismatch. *)
val eval : kind -> bool array -> bool

(** Bit-parallel evaluation over 63 simulation slots packed in an int. *)
val eval_word : kind -> int array -> int

(** Evaluation reading operands directly out of [values] via the node's
    fanin-index array: [eval_indexed k fanins values] equals
    [eval k (Array.map (fun f -> values.(f)) fanins)] but allocates
    nothing. Fanin arity is trusted (validated at circuit construction).
    @raise Invalid_argument on stateful kinds. *)
val eval_indexed : kind -> int array -> bool array -> bool

(** Bit-parallel analogue of {!eval_indexed} over packed 63-slot words. *)
val eval_word_indexed : kind -> int array -> int array -> int

(** Unit-area cost (NAND2-equivalent flavour) of the cell. *)
val area : kind -> float

(** Nominal propagation delay in picoseconds. *)
val delay : kind -> float

(** Relative switching energy per output toggle. *)
val switch_energy : kind -> float

(** True for every kind evaluated combinationally (including constants). *)
val is_combinational : kind -> bool

val equal_kind : kind -> kind -> bool
