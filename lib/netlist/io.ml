(** Textual netlist format, a superset of the ISCAS `.bench` style:

    {v
    INPUT(a)
    OUTPUT(y)
    w = NAND(a, b)
    y = XOR(w, c)
    s = DFF(y)
    v}

    Gates may reference nets defined later only for DFF inputs.

    Region annotations (see {!Circuit.annotate_region}) persist through a
    comment pragma, so pre-pragma parsers skip them as comments:

    {v
    # region secret : w y
    v} *)

let print_circuit fmt c =
  let pr fs = Format.fprintf fmt fs in
  Array.iter (fun id -> pr "INPUT(%s)@." (Circuit.name c id)) (Circuit.inputs c);
  Array.iter (fun (nm, _) -> pr "OUTPUT(%s)@." nm) (Circuit.outputs c);
  for i = 0 to Circuit.node_count c - 1 do
    let nd = Circuit.node c i in
    match nd.Circuit.kind with
    | Gate.Input -> ()
    | k ->
      let args =
        Array.to_list nd.Circuit.fanins
        |> List.map (fun f -> Circuit.name c f)
        |> String.concat ", "
      in
      pr "%s = %s(%s)@." nd.Circuit.name (Gate.name k) args
  done;
  (* Emit explicit aliases for outputs that name internal nets differently. *)
  Array.iter
    (fun (nm, o) ->
      if Circuit.name c o <> nm then pr "%s = BUF(%s)@." nm (Circuit.name c o))
    (Circuit.outputs c);
  (* Region pragmas: only currently-resolvable members are written, so a
     printed circuit always parses back. *)
  List.iter
    (fun region ->
      match Circuit.region_members c region with
      | [] -> ()
      | members ->
        pr "# region %s :%s@." region
          (String.concat "" (List.map (fun id -> " " ^ Circuit.name c id) members)))
    (Circuit.region_names c)

let to_string c =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  print_circuit fmt c;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

exception Parse_error of string

(* "# region <name> : <net> <net> ..." — anything else after '#' is a
   plain comment, so malformed pragmas (and pre-pragma comments that
   happen to start with "region") degrade to comments, never to errors. *)
let parse_region_pragma comment =
  let words =
    String.split_on_char ' ' comment |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | "region" :: name :: ":" :: (_ :: _ as members) -> Some (name, members)
  | _ -> None

let parse_line line =
  let comment =
    match String.index_opt line '#' with
    | Some i -> Some (String.sub line (i + 1) (String.length line - i - 1))
    | None -> None
  in
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then begin
    match Option.bind comment parse_region_pragma with
    | Some (name, members) -> `Region (name, members)
    | None -> `Blank
  end
  else if String.length line > 6 && String.uppercase_ascii (String.sub line 0 6) = "INPUT(" then begin
    let inner = String.sub line 6 (String.length line - 7) in
    `Input (String.trim inner)
  end
  else if String.length line > 7 && String.uppercase_ascii (String.sub line 0 7) = "OUTPUT(" then begin
    let inner = String.sub line 7 (String.length line - 8) in
    `Output (String.trim inner)
  end
  else begin
    match String.index_opt line '=' with
    | None -> raise (Parse_error (Printf.sprintf "bad line: %s" line))
    | Some eq ->
      let lhs = String.trim (String.sub line 0 eq) in
      let rhs = String.trim (String.sub line (eq + 1) (String.length line - eq - 1)) in
      (match String.index_opt rhs '(' with
       | None -> raise (Parse_error (Printf.sprintf "bad rhs: %s" rhs))
       | Some lp ->
         let cell = String.trim (String.sub rhs 0 lp) in
         let close =
           match String.rindex_opt rhs ')' with
           | Some i -> i
           | None -> raise (Parse_error (Printf.sprintf "missing ): %s" rhs))
         in
         let args_str = String.sub rhs (lp + 1) (close - lp - 1) in
         let args =
           if String.trim args_str = "" then []
           else
             String.split_on_char ',' args_str |> List.map String.trim
         in
         `Gate (lhs, Gate.of_name cell, args))
  end

(* Internal: a parse failure located at a 1-based source line. *)
exception Located of int * string

(* Build a circuit from text, raising [Located] with the offending line on
   any malformed construct: bad syntax, unknown cells, wrong operand
   counts, undefined nets (which is also how forward references and
   combinational self-loops surface), duplicate net names. *)
let build text =
  let lines = String.split_on_char '\n' text in
  let at ln f =
    try f () with
    | Parse_error msg -> raise (Located (ln, msg))
    | Invalid_argument msg -> raise (Located (ln, msg))
  in
  let parsed =
    List.mapi (fun i line -> (i + 1, at (i + 1) (fun () -> parse_line line))) lines
  in
  let c = Circuit.create () in
  let pending_dffs = ref [] in
  (* First, declare inputs in order. *)
  List.iter
    (fun (ln, item) ->
      match item with
      | `Input nm -> at ln (fun () -> ignore (Circuit.add_input ~name:nm c))
      | `Output _ | `Gate _ | `Blank | `Region _ -> ())
    parsed;
  let resolve nm =
    match Circuit.find_by_name c nm with
    | Some id -> id
    | None -> raise (Parse_error (Printf.sprintf "undefined net %s" nm))
  in
  let check_arity nm kind args =
    let expected = Gate.arity kind in
    if List.length args <> expected then
      raise
        (Parse_error
           (Printf.sprintf "%s = %s expects %d operands, got %d" nm (Gate.name kind) expected
              (List.length args)))
  in
  (* Then gates, in file order (assumed topological except DFF inputs). *)
  List.iter
    (fun (ln, item) ->
      match item with
      | `Gate (nm, Gate.Dff, [ d ]) ->
        (* D input resolved at the end to allow feedback. *)
        at ln (fun () ->
            let id = Circuit.add_dff ~name:nm c ~d:0 in
            pending_dffs := (id, ln, d) :: !pending_dffs)
      | `Gate (nm, kind, args) ->
        at ln (fun () ->
            check_arity nm kind args;
            ignore (Circuit.add_gate ~name:nm c kind (List.map resolve args)))
      | `Input _ | `Output _ | `Blank | `Region _ -> ())
    parsed;
  List.iter
    (fun (id, ln, d) -> at ln (fun () -> Circuit.connect_dff c id ~d:(resolve d)))
    !pending_dffs;
  List.iter
    (fun (ln, item) ->
      match item with
      | `Output nm -> at ln (fun () -> Circuit.set_output c nm (resolve nm))
      | `Input _ | `Gate _ | `Blank | `Region _ -> ())
    parsed;
  (* Region pragmas last: every net is declared by now. *)
  List.iter
    (fun (ln, item) ->
      match item with
      | `Region (name, members) ->
        at ln (fun () ->
            Circuit.annotate_region c ~region:name (List.map resolve members))
      | `Input _ | `Output _ | `Gate _ | `Blank -> ())
    parsed;
  c

(** Structured-error parse: locates failures by source line and lints the
    result, so a circuit returned here is safe for every engine. *)
let of_string_result text =
  match build text with
  | c -> Lint.validate c
  | exception Located (ln, msg) ->
    Error (Eda_util.Eda_error.Parse_error { line = Some ln; msg })

let of_string text =
  match build text with
  | c -> c
  | exception Located (_, msg) -> raise (Parse_error msg)

let write_file path c =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string c))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))

(** Structured-error file read: I/O failures, parse errors and lint
    violations all come back as [Error] instead of an exception. *)
let read_file_result path =
  match open_in path with
  | exception Sys_error msg ->
    Error (Eda_util.Eda_error.Invalid_input { what = "netlist file"; msg })
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        of_string_result (really_input_string ic len))
