(** Parametric, seed-deterministic benchmark generators. See the .mli
    for the contracts (seed determinism, lint cleanliness); README
    "Workloads" describes the families and their size knobs.

    Every random choice draws from one [Rng.t] created from the caller's
    [seed], and construction order is fixed, so a (family, parameters)
    pair pins the circuit structure exactly — {!fingerprint} is the
    witness the benchmark's determinism checks compare across domain
    counts. *)

module Rng = Eda_util.Rng

(* ------------------------------------------------------------------ *)
(* Structural fingerprint.                                             *)
(* ------------------------------------------------------------------ *)

(* FNV-1a, 64-bit, over the full structural content: node kinds, fanin
   wiring, net names and the declared outputs. Stable across processes
   and domain counts — it hashes structure only, never addresses. *)
let fingerprint c =
  let h = ref 0xcbf29ce484222325L in
  let byte b =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (b land 0xff))) 0x100000001b3L
  in
  let int_ i =
    byte i; byte (i asr 8); byte (i asr 16); byte (i asr 24)
  in
  let str s =
    int_ (String.length s);
    String.iter (fun ch -> byte (Char.code ch)) s
  in
  let n = Circuit.node_count c in
  int_ n;
  for i = 0 to n - 1 do
    let nd = Circuit.node c i in
    (match nd.Circuit.kind with
     | Gate.Const b -> byte 1; byte (if b then 1 else 0)
     | k -> byte 2; str (Gate.name k));
    int_ (Array.length nd.Circuit.fanins);
    Array.iter int_ nd.Circuit.fanins;
    str nd.Circuit.name
  done;
  let outs = Circuit.outputs c in
  int_ (Array.length outs);
  Array.iter (fun (nm, o) -> str nm; int_ o) outs;
  Printf.sprintf "%016Lx" !h

(* ------------------------------------------------------------------ *)
(* Observability sink: no generated circuit leaves dangling logic.     *)
(* ------------------------------------------------------------------ *)

(* Fold every node [live_set] cannot reach into one XOR-tree output, so
   the whole circuit is observable: ATPG can target any gate, TVLA and
   placement see all of them, and [Lint.check] reports no dangling-net
   warnings. Called last by every generator that can strand logic. *)
let seal_observability c =
  let live = Circuit.live_set c in
  let dead = ref [] in
  for i = Circuit.node_count c - 1 downto 0 do
    if not live.(i) then dead := i :: !dead
  done;
  (match !dead with
   | [] -> ()
   | ids -> Circuit.set_output c "po_obs" (Circuit.reduce c Gate.Xor ids));
  c

(* ------------------------------------------------------------------ *)
(* Layered random logic.                                               *)
(* ------------------------------------------------------------------ *)

let default_kinds =
  (* 2-input cells dominate, as in mapped netlists; NOT appears but does
     not overwhelm the mix. *)
  [ Gate.And; Gate.Nand; Gate.Nand; Gate.Or; Gate.Nor; Gate.Nor;
    Gate.Xor; Gate.Xnor; Gate.Not ]

let layered ~seed ?(kinds = default_kinds) ?(locality = 0.75) ?outputs ~inputs ~layers
    ~width () =
  if inputs <= 0 || layers <= 0 || width <= 0 then
    invalid_arg "Bench_gen.layered: inputs, layers and width must be positive";
  if kinds = [] then invalid_arg "Bench_gen.layered: empty kind list";
  let rng = Rng.create seed in
  let c = Circuit.create () in
  let pis = Array.init inputs (fun i -> Circuit.add_input ~name:(Printf.sprintf "pi%d" i) c) in
  ignore pis;
  (* previous rank (dense fanin pool) and the flat list of all nodes so
     far (long-range wires when locality misses) *)
  let prev = ref (Array.init inputs (fun i -> i)) in
  for _l = 1 to layers do
    let rank =
      Array.init width (fun _ ->
          let kind = Rng.choose rng kinds in
          let pick () =
            if Rng.float rng < locality then !prev.(Rng.int rng (Array.length !prev))
            else Rng.int rng (Circuit.node_count c)
          in
          let fanins = List.init (Gate.arity kind) (fun _ -> pick ()) in
          Circuit.add_gate c kind fanins)
    in
    prev := rank
  done;
  let n_out = match outputs with Some n -> max 1 n | None -> max 1 (width / 4) in
  for k = 0 to n_out - 1 do
    Circuit.set_output c (Printf.sprintf "po%d" k) !prev.(k mod Array.length !prev)
  done;
  seal_observability c

(* ------------------------------------------------------------------ *)
(* c432 class: XOR conditioning into deep NAND/NOR priority trees.     *)
(* ------------------------------------------------------------------ *)

let c432_like ~seed ~scale () =
  if scale <= 0 then invalid_arg "Bench_gen.c432_like: scale must be positive";
  let rng = Rng.create seed in
  let c = Circuit.create () in
  let groups = scale in
  let m = 9 * groups in
  (* Four input buses, as in the original's A/B/C/E channel groups. *)
  let bus nm = Array.init m (fun i -> Circuit.add_input ~name:(Printf.sprintf "%s%d" nm i) c) in
  let a = bus "a" and b = bus "b" and e = bus "e" and d = bus "d" in
  (* Stage 1: XOR conditioning of paired buses. *)
  let x = Array.init m (fun i -> Circuit.add_gate c Gate.Xor [ a.(i); b.(i) ]) in
  let y = Array.init m (fun i -> Circuit.add_gate c Gate.Xor [ e.(i); d.(i) ]) in
  (* Stage 2: per-group 9-input NAND / NOR priority trees. *)
  let group arr g = List.init 9 (fun k -> arr.((9 * g) + k)) in
  let xg = Array.init groups (fun g -> Circuit.reduce c Gate.Nand (group x g)) in
  let yg = Array.init groups (fun g -> Circuit.reduce c Gate.Nor (group y g)) in
  (* Stage 3: seeded cross-bus products — every (x-group, y-group) pair
     contributes a 9-wide AND row over shuffled channel picks, NANDed
     with the group summaries. *)
  let outs = ref [] in
  for gx = 0 to groups - 1 do
    for gy = 0 to groups - 1 do
      let row =
        List.init 9 (fun _ ->
            let xi = x.((9 * gx) + Rng.int rng 9) in
            let yi = y.((9 * gy) + Rng.int rng 9) in
            Circuit.add_gate c Gate.And [ xi; yi ])
      in
      let row_or = Circuit.reduce c Gate.Or row in
      let gated = Circuit.add_gate c Gate.Nand [ row_or; xg.(gx) ] in
      outs := Circuit.add_gate c Gate.Nand [ gated; yg.(gy) ] :: !outs
    done
  done;
  (* ~7 outputs per scale step, as in the original's PA/PB/PC + chans. *)
  let outs = Array.of_list (List.rev !outs) in
  let n_out = max 1 (7 * scale) in
  for k = 0 to n_out - 1 do
    if k < Array.length outs then
      Circuit.set_output c (Printf.sprintf "po%d" k) outs.(k)
  done;
  (* Cross products beyond the exported ones are folded by the sink. *)
  seal_observability c

(* ------------------------------------------------------------------ *)
(* c880 class: mux-selected ALU datapath with CLA and control outputs. *)
(* ------------------------------------------------------------------ *)

let c880_like ~seed ~width () =
  if width <= 0 then invalid_arg "Bench_gen.c880_like: width must be positive";
  let rng = Rng.create seed in
  let c = Circuit.create () in
  let a = Array.init width (fun i -> Circuit.add_input ~name:(Printf.sprintf "a%d" i) c) in
  let b = Array.init width (fun i -> Circuit.add_input ~name:(Printf.sprintf "b%d" i) c) in
  let op0 = Circuit.add_input ~name:"op0" c in
  let op1 = Circuit.add_input ~name:"op1" c in
  let cin = Circuit.add_input ~name:"cin" c in
  (* Seed permutes which operand bit pairs with which — the "wiring
     harness" variation across instances of the class. *)
  let perm = Array.init width (fun i -> i) in
  Rng.shuffle rng perm;
  let carry = ref cin in
  let ys = Array.make width 0 in
  let props = Array.make width 0 in
  let gens = Array.make width 0 in
  for i = 0 to width - 1 do
    let ai = a.(i) and bi = b.(perm.(i)) in
    let and_i = Circuit.add_gate c Gate.And [ ai; bi ] in
    let or_i = Circuit.add_gate c Gate.Or [ ai; bi ] in
    let xor_i = Circuit.add_gate c Gate.Xor [ ai; bi ] in
    let sum_i = Circuit.add_gate c Gate.Xor [ xor_i; !carry ] in
    let c1 = Circuit.add_gate c Gate.And [ xor_i; !carry ] in
    carry := Circuit.add_gate c Gate.Or [ and_i; c1 ];
    props.(i) <- xor_i;
    gens.(i) <- and_i;
    let lo = Circuit.add_gate c Gate.Mux [ op0; and_i; or_i ] in
    let hi = Circuit.add_gate c Gate.Mux [ op0; xor_i; sum_i ] in
    let y = Circuit.add_gate c Gate.Mux [ op1; lo; hi ] in
    ys.(i) <- y;
    Circuit.set_output c (Printf.sprintf "y%d" i) y
  done;
  Circuit.set_output c "cout" !carry;
  (* Carry-lookahead section: group-generate/propagate over 4-bit
     slices, as the original's lookahead logic. *)
  let slice = 4 in
  let rec group_gen lo hi =
    (* generate of [lo, hi): G = g_{hi-1} + p_{hi-1} * G(lo, hi-1) *)
    if hi - lo = 1 then gens.(lo)
    else
      let t = Circuit.add_gate c Gate.And [ props.(hi - 1); group_gen lo (hi - 1) ] in
      Circuit.add_gate c Gate.Or [ gens.(hi - 1); t ]
  in
  let n_slices = (width + slice - 1) / slice in
  for s = 0 to n_slices - 1 do
    let lo = s * slice and hi = min width ((s + 1) * slice) in
    let gg = group_gen lo hi in
    let gp = Circuit.reduce c Gate.And (List.init (hi - lo) (fun k -> props.(lo + k))) in
    Circuit.set_output c (Printf.sprintf "gg%d" s) gg;
    Circuit.set_output c (Printf.sprintf "gp%d" s) gp
  done;
  (* Control outputs: result parity and zero-detect. *)
  Circuit.set_output c "par" (Circuit.reduce c Gate.Xor (Array.to_list ys));
  Circuit.set_output c "zero" (Circuit.reduce c Gate.Nor (Array.to_list ys));
  seal_observability c

(* ------------------------------------------------------------------ *)
(* c6288 class: the array-multiplier full-adder grid.                  *)
(* ------------------------------------------------------------------ *)

let c6288_like ~width () =
  if width <= 0 then invalid_arg "Bench_gen.c6288_like: width must be positive";
  seal_observability (Generators.array_multiplier width)

(* ------------------------------------------------------------------ *)
(* Carry-save (Wallace) multiplier tree.                               *)
(* ------------------------------------------------------------------ *)

let csa_multiplier ~width () =
  if width <= 0 then invalid_arg "Bench_gen.csa_multiplier: width must be positive";
  let c = Circuit.create () in
  let a = Array.init width (fun i -> Circuit.add_input ~name:(Printf.sprintf "a%d" i) c) in
  let b = Array.init width (fun i -> Circuit.add_input ~name:(Printf.sprintf "b%d" i) c) in
  let ncols = 2 * width in
  let full_adder x y z =
    let xy = Circuit.add_gate c Gate.Xor [ x; y ] in
    let s = Circuit.add_gate c Gate.Xor [ xy; z ] in
    let t1 = Circuit.add_gate c Gate.And [ x; y ] in
    let t2 = Circuit.add_gate c Gate.And [ xy; z ] in
    (s, Circuit.add_gate c Gate.Or [ t1; t2 ])
  in
  let half_adder x y =
    (Circuit.add_gate c Gate.Xor [ x; y ], Circuit.add_gate c Gate.And [ x; y ])
  in
  (* Partial products by column. *)
  let columns = Array.make ncols [] in
  for i = 0 to width - 1 do
    for j = 0 to width - 1 do
      columns.(i + j) <-
        Circuit.add_gate c Gate.And [ a.(i); b.(j) ] :: columns.(i + j)
    done
  done;
  Array.iteri (fun k l -> columns.(k) <- List.rev l) columns;
  (* Wallace rounds: compress every column with >2 bits using 3:2 and
     2:2 compressors until at most two rows remain. Each round builds
     the next column set whole, so compression depth is logarithmic. *)
  let too_tall cols = Array.exists (fun l -> List.length l > 2) cols in
  let cols = ref columns in
  while too_tall !cols do
    let nxt = Array.make ncols [] in
    let push k v = if k < ncols then nxt.(k) <- v :: nxt.(k) in
    Array.iteri
      (fun k bits ->
        let rec compress = function
          | x :: y :: z :: rest ->
            let s, carry = full_adder x y z in
            push k s;
            push (k + 1) carry;
            compress rest
          | [ x; y ] when List.length bits > 2 ->
            (* only compress pairs in columns that are being reduced *)
            let s, carry = half_adder x y in
            push k s;
            push (k + 1) carry
          | leftover -> List.iter (push k) leftover
        in
        compress bits)
      !cols;
    cols := Array.map List.rev nxt
  done;
  (* Final carry-propagate stage over the remaining (<= 2)-bit columns.
     The last column's carry is never materialized — nothing dangles. *)
  let carry = ref None in
  for k = 0 to ncols - 1 do
    let bits = match !carry with None -> !cols.(k) | Some cy -> cy :: !cols.(k) in
    let want_carry = k < ncols - 1 in
    let s, cy =
      match bits with
      | [] -> (Circuit.add_const c false, None)
      | [ x ] -> (x, None)
      | [ x; y ] ->
        if want_carry then
          let s, cy = half_adder x y in
          (s, Some cy)
        else (Circuit.add_gate c Gate.Xor [ x; y ], None)
      | [ x; y; z ] ->
        if want_carry then
          let s, cy = full_adder x y z in
          (s, Some cy)
        else
          let xy = Circuit.add_gate c Gate.Xor [ x; y ] in
          (Circuit.add_gate c Gate.Xor [ xy; z ], None)
      | _ -> assert false (* rounds above leave <= 2 bits + 1 carry *)
    in
    carry := cy;
    Circuit.set_output c (Printf.sprintf "m%d" k) s
  done;
  seal_observability c

(* ------------------------------------------------------------------ *)
(* Mixes.                                                              *)
(* ------------------------------------------------------------------ *)

let mix ~seed components () =
  if components = [] then invalid_arg "Bench_gen.mix: empty component list";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (p, _) ->
      if Hashtbl.mem seen p then
        invalid_arg (Printf.sprintf "Bench_gen.mix: duplicate prefix %s" p);
      Hashtbl.replace seen p ())
    components;
  let rng = Rng.create seed in
  let c = Circuit.create () in
  (* Shared input pool sized for the widest component. *)
  let pool_size =
    List.fold_left (fun acc (_, sub) -> max acc (Circuit.num_inputs sub)) 1 components
  in
  let pool =
    Array.init pool_size (fun i -> Circuit.add_input ~name:(Printf.sprintf "pi%d" i) c)
  in
  List.iter
    (fun (prefix, sub) ->
      let ni = Circuit.num_inputs sub in
      (* Seeded binding: a shuffled slice of the pool, so components
         overlap on inputs without being identically wired. *)
      let order = Array.init pool_size (fun i -> i) in
      Rng.shuffle rng order;
      let binding = Array.init ni (fun k -> pool.(order.(k mod pool_size))) in
      let outs = Circuit.inline ~into:c ~sub ~prefix binding in
      Array.iteri
        (fun k (nm, _) ->
          Circuit.set_output c (Printf.sprintf "%s_%s" prefix nm) outs.(k))
        (Circuit.outputs sub))
    components;
  seal_observability c

(* ------------------------------------------------------------------ *)
(* Size-targeted family dispatch.                                      *)
(* ------------------------------------------------------------------ *)

type family = Layered | C432 | C880 | C6288 | Csa_mult | Mixed

let family_name = function
  | Layered -> "layered"
  | C432 -> "c432_like"
  | C880 -> "c880_like"
  | C6288 -> "c6288_like"
  | Csa_mult -> "csa_mult"
  | Mixed -> "mixed"

let all_families = [ Layered; C432; C880; C6288; Csa_mult; Mixed ]

let rec sized ~seed family ~target_gates =
  if target_gates < 16 then invalid_arg "Bench_gen.sized: target_gates < 16";
  let t = Float.of_int target_gates in
  let iround f = max 1 (int_of_float (Float.round f)) in
  match family with
  | Layered ->
    (* gates ~ layers * width; keep depth ~ 4 * sqrt(size / 16). The
       1.38 divisor absorbs the measured overhead of inputs, outputs
       and the observability fold on top of the rank gates. *)
    let layers = max 2 (iround (4.0 *. sqrt (t /. 64.0))) in
    let width = max 4 (iround (t /. 1.38 /. Float.of_int layers)) in
    layered ~seed ~inputs:(max 8 (width / 2)) ~layers ~width ()
  | C432 ->
    (* measured: gates ~ 37 * scale^2 once cross rows dominate. *)
    let scale = max 1 (iround (sqrt (t /. 36.0))) in
    c432_like ~seed ~scale ()
  | C880 ->
    (* gates ~ 13 per datapath bit plus lookahead/control. *)
    c880_like ~seed ~width:(max 4 (iround (t /. 13.5))) ()
  | C6288 ->
    (* full-adder grid: gates ~ 6 * width^2. *)
    c6288_like ~width:(max 4 (iround (sqrt (t /. 6.0)))) ()
  | Csa_mult ->
    (* compressor tree: gates ~ 6.5 * width^2. *)
    csa_multiplier ~width:(max 4 (iround (sqrt (t /. 6.5)))) ()
  | Mixed ->
    let quarter = max 16 (target_gates / 4) in
    mix ~seed
      [ ("lay", sized ~seed:(seed + 1) Layered ~target_gates:quarter);
        ("ctl", sized ~seed:(seed + 2) C432 ~target_gates:quarter);
        ("alu", sized ~seed:(seed + 3) C880 ~target_gates:quarter);
        ("mul", sized ~seed:(seed + 4) Csa_mult ~target_gates:quarter) ]
      ()
