(** Reference circuit generators: the classic c17 benchmark, arithmetic
    blocks, trees, a small ALU and seeded random DAGs. These are the
    workloads for every experiment, replacing the proprietary designs the
    surveyed literature evaluates on. *)

let rng_of_seed = Eda_util.Rng.create

(** ISCAS-85 c17: 5 inputs, 2 outputs, 6 NAND gates. *)
let c17 () =
  let c = Circuit.create () in
  let i1 = Circuit.add_input ~name:"G1" c in
  let i2 = Circuit.add_input ~name:"G2" c in
  let i3 = Circuit.add_input ~name:"G3" c in
  let i4 = Circuit.add_input ~name:"G4" c in
  let i5 = Circuit.add_input ~name:"G5" c in
  let g10 = Circuit.add_gate ~name:"G10" c Gate.Nand [ i1; i3 ] in
  let g11 = Circuit.add_gate ~name:"G11" c Gate.Nand [ i3; i4 ] in
  let g16 = Circuit.add_gate ~name:"G16" c Gate.Nand [ i2; g11 ] in
  let g19 = Circuit.add_gate ~name:"G19" c Gate.Nand [ g11; i5 ] in
  let g22 = Circuit.add_gate ~name:"G22" c Gate.Nand [ g10; g16 ] in
  let g23 = Circuit.add_gate ~name:"G23" c Gate.Nand [ g16; g19 ] in
  Circuit.set_output c "G22" g22;
  Circuit.set_output c "G23" g23;
  c

(** [width]-bit ripple-carry adder: inputs a0..aw-1, b0..bw-1, cin;
    outputs s0..sw-1, cout. *)
let ripple_adder width =
  let c = Circuit.create () in
  let a = Array.init width (fun i -> Circuit.add_input ~name:(Printf.sprintf "a%d" i) c) in
  let b = Array.init width (fun i -> Circuit.add_input ~name:(Printf.sprintf "b%d" i) c) in
  let cin = Circuit.add_input ~name:"cin" c in
  let carry = ref cin in
  for i = 0 to width - 1 do
    let axb = Circuit.add_gate c Gate.Xor [ a.(i); b.(i) ] in
    let sum = Circuit.add_gate c Gate.Xor [ axb; !carry ] in
    let t1 = Circuit.add_gate c Gate.And [ a.(i); b.(i) ] in
    let t2 = Circuit.add_gate c Gate.And [ axb; !carry ] in
    carry := Circuit.add_gate c Gate.Or [ t1; t2 ];
    Circuit.set_output c (Printf.sprintf "s%d" i) sum
  done;
  Circuit.set_output c "cout" !carry;
  c

(** [width]-bit equality comparator: out = (a = b). *)
let comparator width =
  let c = Circuit.create () in
  let a = Array.init width (fun i -> Circuit.add_input ~name:(Printf.sprintf "a%d" i) c) in
  let b = Array.init width (fun i -> Circuit.add_input ~name:(Printf.sprintf "b%d" i) c) in
  let eqs =
    List.init width (fun i -> Circuit.add_gate c Gate.Xnor [ a.(i); b.(i) ])
  in
  let out = Circuit.reduce c Gate.And eqs in
  Circuit.set_output c "eq" out;
  c

(** Parity (XOR) tree over [width] inputs. *)
let parity_tree width =
  let c = Circuit.create () in
  let xs = List.init width (fun i -> Circuit.add_input ~name:(Printf.sprintf "x%d" i) c) in
  let out = Circuit.reduce c Gate.Xor xs in
  Circuit.set_output c "parity" out;
  c

(** Multiplexer tree selecting one of [2^sel_bits] data inputs. *)
let mux_tree sel_bits =
  let c = Circuit.create () in
  let nd = 1 lsl sel_bits in
  let data = Array.init nd (fun i -> Circuit.add_input ~name:(Printf.sprintf "d%d" i) c) in
  let sels = Array.init sel_bits (fun i -> Circuit.add_input ~name:(Printf.sprintf "s%d" i) c) in
  let rec build level ids =
    match ids with
    | [ x ] -> x
    | _ :: _ ->
      let rec pair acc = function
        | [] -> List.rev acc
        | [ x ] -> List.rev (x :: acc)
        | a :: b :: rest ->
          pair (Circuit.add_gate c Gate.Mux [ sels.(level); a; b ] :: acc) rest
      in
      build (level + 1) (pair [] ids)
    | [] -> invalid_arg "mux_tree"
  in
  let out = build 0 (Array.to_list data) in
  Circuit.set_output c "y" out;
  c

(** Small [width]-bit ALU: op selects among AND / OR / XOR / ADD. Inputs
    a*, b*, op0, op1; outputs y*. *)
let alu width =
  let c = Circuit.create () in
  let a = Array.init width (fun i -> Circuit.add_input ~name:(Printf.sprintf "a%d" i) c) in
  let b = Array.init width (fun i -> Circuit.add_input ~name:(Printf.sprintf "b%d" i) c) in
  let op0 = Circuit.add_input ~name:"op0" c in
  let op1 = Circuit.add_input ~name:"op1" c in
  let carry = ref (Circuit.add_const c false) in
  for i = 0 to width - 1 do
    let and_i = Circuit.add_gate c Gate.And [ a.(i); b.(i) ] in
    let or_i = Circuit.add_gate c Gate.Or [ a.(i); b.(i) ] in
    let xor_i = Circuit.add_gate c Gate.Xor [ a.(i); b.(i) ] in
    let sum_i = Circuit.add_gate c Gate.Xor [ xor_i; !carry ] in
    let c1 = Circuit.add_gate c Gate.And [ xor_i; !carry ] in
    carry := Circuit.add_gate c Gate.Or [ and_i; c1 ];
    (* op: 00 -> AND, 01 -> OR, 10 -> XOR, 11 -> ADD *)
    let lo = Circuit.add_gate c Gate.Mux [ op0; and_i; or_i ] in
    let hi = Circuit.add_gate c Gate.Mux [ op0; xor_i; sum_i ] in
    let y = Circuit.add_gate c Gate.Mux [ op1; lo; hi ] in
    Circuit.set_output c (Printf.sprintf "y%d" i) y
  done;
  c

(** Kogge-Stone parallel-prefix adder: same function as [ripple_adder]
    (minus the cin input) at logarithmic depth — the timing-optimization
    workload that contrasts with the ripple structure in STA experiments. *)
let kogge_stone_adder width =
  let c = Circuit.create () in
  let a = Array.init width (fun i -> Circuit.add_input ~name:(Printf.sprintf "a%d" i) c) in
  let b = Array.init width (fun i -> Circuit.add_input ~name:(Printf.sprintf "b%d" i) c) in
  (* Generate/propagate per bit. *)
  let g = Array.init width (fun i -> Circuit.add_gate c Gate.And [ a.(i); b.(i) ]) in
  let p = Array.init width (fun i -> Circuit.add_gate c Gate.Xor [ a.(i); b.(i) ]) in
  (* Prefix tree: (g, p) o (g', p') = (g + p*g', p*p'). *)
  let gk = ref (Array.copy g) and pk = ref (Array.copy p) in
  let dist = ref 1 in
  while !dist < width do
    let g' = Array.copy !gk and p' = Array.copy !pk in
    for i = !dist to width - 1 do
      let t = Circuit.add_gate c Gate.And [ !pk.(i); !gk.(i - !dist) ] in
      g'.(i) <- Circuit.add_gate c Gate.Or [ !gk.(i); t ];
      p'.(i) <- Circuit.add_gate c Gate.And [ !pk.(i); !pk.(i - !dist) ]
    done;
    gk := g';
    pk := p';
    dist := !dist * 2
  done;
  (* Sum: s_i = p_i xor carry_{i-1}; carry_i = prefix g. *)
  for i = 0 to width - 1 do
    let s =
      if i = 0 then Circuit.add_gate c Gate.Buf [ p.(0) ]
      else Circuit.add_gate c Gate.Xor [ p.(i); !gk.(i - 1) ]
    in
    Circuit.set_output c (Printf.sprintf "s%d" i) s
  done;
  Circuit.set_output c "cout" !gk.(width - 1);
  c

(** [width] x [width] array multiplier: product outputs m0..m(2w-1). *)
let array_multiplier width =
  let c = Circuit.create () in
  let a = Array.init width (fun i -> Circuit.add_input ~name:(Printf.sprintf "a%d" i) c) in
  let b = Array.init width (fun i -> Circuit.add_input ~name:(Printf.sprintf "b%d" i) c) in
  let full_adder x y cin =
    let xy = Circuit.add_gate c Gate.Xor [ x; y ] in
    let s = Circuit.add_gate c Gate.Xor [ xy; cin ] in
    let t1 = Circuit.add_gate c Gate.And [ x; y ] in
    let t2 = Circuit.add_gate c Gate.And [ xy; cin ] in
    s, Circuit.add_gate c Gate.Or [ t1; t2 ]
  in
  (* Partial-product columns. *)
  let columns = Array.make (2 * width) [] in
  for i = 0 to width - 1 do
    for j = 0 to width - 1 do
      let pp = Circuit.add_gate c Gate.And [ a.(i); b.(j) ] in
      columns.(i + j) <- pp :: columns.(i + j)
    done
  done;
  (* Column compression with full/half adders, carries ripple upward.
     The top column's carry would be product bit [2 * width], which a
     width x width product can never set — so those carry gates are
     never built (building and dropping them would leave dangling
     logic). *)
  for col = 0 to (2 * width) - 1 do
    let keep_carry = col + 1 < 2 * width in
    let rec compress bits =
      match bits with
      | [] ->
        Circuit.set_output c (Printf.sprintf "m%d" col) (Circuit.add_const c false)
      | [ bit ] -> Circuit.set_output c (Printf.sprintf "m%d" col) bit
      | [ x; y ] ->
        let s = Circuit.add_gate c Gate.Xor [ x; y ] in
        if keep_carry then begin
          let carry = Circuit.add_gate c Gate.And [ x; y ] in
          columns.(col + 1) <- carry :: columns.(col + 1)
        end;
        compress [ s ]
      | x :: y :: z :: rest ->
        if keep_carry then begin
          let s, carry = full_adder x y z in
          columns.(col + 1) <- carry :: columns.(col + 1);
          compress (s :: rest)
        end
        else begin
          let xy = Circuit.add_gate c Gate.Xor [ x; y ] in
          let s = Circuit.add_gate c Gate.Xor [ xy; z ] in
          compress (s :: rest)
        end
    in
    compress columns.(col)
  done;
  c

(** Seeded random combinational DAG with [inputs] inputs, [gates] gates and
    [outputs] outputs; fanins are drawn from recent nodes to give realistic
    depth. *)
let random_dag ~seed ~inputs ~gates ~outputs =
  let rng = rng_of_seed seed in
  let c = Circuit.create () in
  let _ = Array.init inputs (fun i -> Circuit.add_input ~name:(Printf.sprintf "pi%d" i) c) in
  let kinds = [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor; Gate.Not ] in
  for _ = 1 to gates do
    let n = Circuit.node_count c in
    let pick () =
      (* Bias toward recent nodes for depth. *)
      let window = max 1 (min n 24) in
      if Eda_util.Rng.float rng < 0.7 then n - 1 - Eda_util.Rng.int rng window
      else Eda_util.Rng.int rng n
    in
    let kind = Eda_util.Rng.choose rng kinds in
    let fanins = List.init (Gate.arity kind) (fun _ -> pick ()) in
    ignore (Circuit.add_gate c kind fanins)
  done;
  let n = Circuit.node_count c in
  for k = 0 to outputs - 1 do
    let o = n - 1 - (k mod (max 1 (n - inputs))) in
    Circuit.set_output c (Printf.sprintf "po%d" k) o
  done;
  c

(** Build a single-output combinational circuit from a truth table by
    memoized Shannon expansion into a MUX tree. Shared cofactors become
    shared nodes, so the result is BDD-shaped. *)
let of_truth_table ?(input_names = [||]) tt =
  let arity = Logic.Truth_table.arity tt in
  let c = Circuit.create () in
  let ins =
    Array.init arity (fun i ->
        let name =
          if i < Array.length input_names then input_names.(i)
          else Printf.sprintf "x%d" i
        in
        Circuit.add_input ~name c)
  in
  let const0 = lazy (Circuit.add_const c false) in
  let const1 = lazy (Circuit.add_const c true) in
  let memo = Hashtbl.create 64 in
  (* Sub-function over inputs [level..arity): represented by its truth
     table string restricted to those inputs. *)
  let rec build level sub =
    match Hashtbl.find_opt memo (level, sub) with
    | Some id -> id
    | None ->
      let id =
        if String.length sub = 1 then
          if sub = "1" then Lazy.force const1 else Lazy.force const0
        else begin
          let half = String.length sub / 2 in
          let lo = String.sub sub 0 half in
          let hi = String.sub sub half half in
          if lo = hi then build (level + 1) lo
          else begin
            let l = build (level + 1) lo in
            let h = build (level + 1) hi in
            (* Variable [arity - 1 - level] is the most significant of the
               remaining block given minterm bit order. *)
            Circuit.add_gate c Gate.Mux [ ins.(arity - 1 - level); l; h ]
          end
        end
      in
      Hashtbl.add memo (level, sub) id;
      id
  in
  let out = build 0 (Logic.Truth_table.to_string tt) in
  Circuit.set_output c "f" out;
  c

(** Multi-output variant sharing logic across outputs. *)
let of_truth_tables ?(input_names = [||]) tts =
  match tts with
  | [] -> invalid_arg "of_truth_tables: empty"
  | first :: rest ->
    let arity = Logic.Truth_table.arity first in
    List.iter (fun tt -> assert (Logic.Truth_table.arity tt = arity)) rest;
    let c = Circuit.create () in
    let ins =
      Array.init arity (fun i ->
          let name =
            if i < Array.length input_names then input_names.(i)
            else Printf.sprintf "x%d" i
          in
          Circuit.add_input ~name c)
    in
    let const0 = lazy (Circuit.add_const c false) in
    let const1 = lazy (Circuit.add_const c true) in
    let memo = Hashtbl.create 256 in
    let rec build level sub =
      match Hashtbl.find_opt memo (level, sub) with
      | Some id -> id
      | None ->
        let id =
          if String.length sub = 1 then
            if sub = "1" then Lazy.force const1 else Lazy.force const0
          else begin
            let half = String.length sub / 2 in
            let lo = String.sub sub 0 half in
            let hi = String.sub sub half half in
            if lo = hi then build (level + 1) lo
            else begin
              let l = build (level + 1) lo in
              let h = build (level + 1) hi in
              Circuit.add_gate c Gate.Mux [ ins.(arity - 1 - level); l; h ]
            end
          end
        in
        Hashtbl.add memo (level, sub) id;
        id
    in
    List.iteri
      (fun k tt ->
        let out = build 0 (Logic.Truth_table.to_string tt) in
        Circuit.set_output c (Printf.sprintf "f%d" k) out)
      (first :: rest);
    c
