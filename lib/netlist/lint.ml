(** Structural netlist validation.

    Every engine in the toolkit assumes a well-formed circuit: fanins in
    range, combinational nodes in topological order (the IR's encoding of
    loop-freedom), correct cell arities, at least one declared output.
    Historically a violation surfaced as an [assert] deep inside a solver
    or simulator — the brittle, security-unaware failure mode the paper's
    Sec. IV warns about. [Lint] checks all of it up front and reports
    structured issues; [validate] is the guard used by the [*_checked]
    engine entry points and [Flow.run]. *)

type severity = Error | Warning

type issue = {
  check : string;  (* stable kebab-case identifier of the rule *)
  severity : severity;
  net : string option;  (* offending net name when known *)
  msg : string;
}

let describe i =
  Printf.sprintf "%s[%s]%s: %s"
    (match i.severity with Error -> "error" | Warning -> "warning")
    i.check
    (match i.net with Some n -> " net " ^ n | None -> "")
    i.msg

(** All issues found, errors first. *)
let check c =
  let issues = ref [] in
  let add ?net check severity msg = issues := { check; severity; net; msg } :: !issues in
  let n = Circuit.node_count c in
  for i = 0 to n - 1 do
    let nd = Circuit.node c i in
    let net = Some nd.Circuit.name in
    let arity = Gate.arity nd.Circuit.kind in
    if Array.length nd.Circuit.fanins <> arity then
      add ?net "arity" Error
        (Printf.sprintf "%s expects %d fanins, has %d" (Gate.name nd.Circuit.kind) arity
           (Array.length nd.Circuit.fanins))
    else
      Array.iter
        (fun f ->
          if f < 0 || f >= n then
            add ?net "undefined-fanin" Error (Printf.sprintf "fanin id %d out of range" f)
          else if Gate.is_combinational nd.Circuit.kind && f >= i then
            add ?net "combinational-loop" Error
              (Printf.sprintf "fanin %s does not precede its consumer (loop or broken order)"
                 (Circuit.name c f)))
        nd.Circuit.fanins
  done;
  (* Outputs: present, in range, uniquely named. *)
  let outputs = Circuit.outputs c in
  if Array.length outputs = 0 then
    add "no-outputs" Error "circuit declares no primary outputs";
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun (nm, o) ->
      if o < 0 || o >= n then
        add ~net:nm "undefined-output" Error (Printf.sprintf "output id %d out of range" o);
      if Hashtbl.mem seen nm then
        add ~net:nm "duplicate-output" Error "output name declared twice"
      else Hashtbl.replace seen nm ())
    outputs;
  if Circuit.num_inputs c = 0 then
    add "no-inputs" Warning "circuit has no primary inputs";
  (* Dangling nets: combinational cells nobody consumes or observes.
     [live_set] traverses fanins, so it is only safe once the structural
     rules above found no error. *)
  let structurally_sound = not (List.exists (fun i -> i.severity = Error) !issues) in
  if structurally_sound && n > 0 && Array.length outputs > 0 then begin
    let live = Circuit.live_set c in
    for i = 0 to n - 1 do
      if not live.(i) then
        add ~net:(Circuit.name c i) "dangling-net" Warning
          "net drives no output, flip-flop or live logic"
    done
  end;
  let sev = function Error -> 0 | Warning -> 1 in
  List.stable_sort (fun a b -> compare (sev a.severity) (sev b.severity)) (List.rev !issues)

let errors c = List.filter (fun i -> i.severity = Error) (check c)

(** Gate for engine entry points: [Ok c] when structurally sound (warnings
    tolerated unless [allow_warnings:false]), otherwise the first issue as
    a structured error. *)
let validate ?(allow_warnings = true) c =
  let blocking =
    if allow_warnings then errors c
    else check c
  in
  match blocking with
  | [] -> Ok c
  | i :: _ -> Error (Eda_util.Eda_error.Lint_error { check = i.check; net = i.net; msg = i.msg })
