(** Functional simulation of circuits: single-pattern, bit-parallel
    (63 patterns per machine word) and multi-cycle sequential.

    The hot loops evaluate gates directly against the net-value array via
    {!Gate.eval_indexed} / {!Gate.eval_word_indexed} — no per-gate operand
    array is built — and the [_into] variants reuse a caller-owned buffer,
    so pattern-sweep workloads ([signal_probabilities], TVLA trace
    generation, equivalence checking) run without per-pattern heap
    allocation. *)

(* Combinational sweep over [values] in node (= topological) order. *)
let run_gates circuit (values : bool array) =
  for i = 0 to Circuit.node_count circuit - 1 do
    let nd = Circuit.node circuit i in
    match nd.Circuit.kind with
    | Gate.Input | Gate.Dff -> ()
    | k -> values.(i) <- Gate.eval_indexed k nd.Circuit.fanins values
  done

let run_gates_word circuit (values : int array) =
  for i = 0 to Circuit.node_count circuit - 1 do
    let nd = Circuit.node circuit i in
    match nd.Circuit.kind with
    | Gate.Input | Gate.Dff -> ()
    | k -> values.(i) <- Gate.eval_word_indexed k nd.Circuit.fanins values
  done

(** Evaluate every net into the caller-supplied buffer [into] (length >=
    node count), reusing it across calls: the only remaining per-call
    allocation is the O(#inputs) id lookup inside {!Circuit.inputs}. DFF
    slots are cleared when [state] is absent, so a dirty buffer from a
    previous pattern is safe to pass back in. *)
let eval_all_into ?state circuit inputs ~into =
  let input_ids = Circuit.inputs circuit in
  assert (Array.length inputs = Array.length input_ids);
  Array.iteri (fun k id -> into.(id) <- inputs.(k)) input_ids;
  (match state with
   | None ->
     if Circuit.num_dffs circuit > 0 then
       Array.iter (fun id -> into.(id) <- false) (Circuit.dffs circuit)
   | Some st ->
     let dff_ids = Circuit.dffs circuit in
     assert (Array.length st = Array.length dff_ids);
     Array.iteri (fun k id -> into.(id) <- st.(k)) dff_ids);
  run_gates circuit into

(** Values of every net for one input assignment; DFF outputs come from
    [state] (all-false when absent). *)
let eval_all ?state circuit inputs =
  let values = Array.make (Circuit.node_count circuit) false in
  eval_all_into ?state circuit inputs ~into:values;
  values

(** Primary outputs for one input assignment. *)
let eval ?state circuit inputs =
  let values = eval_all ?state circuit inputs in
  Array.map (fun (_, o) -> values.(o)) (Circuit.outputs circuit)

(** Outputs as an integer, bit 0 being the first declared output. *)
let eval_int ?state circuit inputs =
  let outs = eval ?state circuit inputs in
  let v = ref 0 in
  for i = Array.length outs - 1 downto 0 do
    v := (!v lsl 1) lor (if outs.(i) then 1 else 0)
  done;
  !v

(** Bit-parallel analogue of {!eval_all_into}: each input word carries up
    to 63 independent patterns; every net word lands in [into]. *)
let eval_all_word_into ?state circuit (inputs : int array) ~into =
  let input_ids = Circuit.inputs circuit in
  assert (Array.length inputs = Array.length input_ids);
  Array.iteri (fun k id -> into.(id) <- inputs.(k)) input_ids;
  (match state with
   | None ->
     if Circuit.num_dffs circuit > 0 then
       Array.iter (fun id -> into.(id) <- 0) (Circuit.dffs circuit)
   | Some st ->
     let dff_ids = Circuit.dffs circuit in
     Array.iteri (fun k id -> into.(id) <- st.(k)) dff_ids);
  run_gates_word circuit into

(** Bit-parallel evaluation: each input is a word carrying up to 63
    independent patterns; returns all net words. *)
let eval_all_word ?state circuit (inputs : int array) =
  let values = Array.make (Circuit.node_count circuit) 0 in
  eval_all_word_into ?state circuit inputs ~into:values;
  values

let eval_word ?state circuit inputs =
  let values = eval_all_word ?state circuit inputs in
  Array.map (fun (_, o) -> values.(o)) (Circuit.outputs circuit)

(** One clock cycle of a sequential circuit: returns (outputs, next state). *)
let step circuit ~state inputs =
  let values = eval_all ~state circuit inputs in
  let outs = Array.map (fun (_, o) -> values.(o)) (Circuit.outputs circuit) in
  let next = Array.map (fun id -> values.((Circuit.fanins circuit id).(0))) (Circuit.dffs circuit) in
  outs, next

(** Run a sequence of input vectors from the all-zero state; returns the
    output trace. *)
let run circuit input_seq =
  let state = ref (Array.make (Circuit.num_dffs circuit) false) in
  List.map
    (fun inputs ->
      let outs, next = step circuit ~state:!state inputs in
      state := next;
      outs)
    input_seq

(** Truth table of output [k] (combinational circuits, <= 16 inputs). *)
let truth_table circuit ~output =
  let ni = Circuit.num_inputs circuit in
  assert (ni <= 16);
  Logic.Truth_table.create ni (fun m ->
      let inputs = Array.init ni (fun i -> (m lsr i) land 1 = 1) in
      (eval circuit inputs).(output))

let word_mask = 0x7FFFFFFFFFFFFFFF  (* the 63 usable pattern slots *)

(** Exhaustive functional equivalence (combinational, <= 20 inputs).
    Word-parallel: enumerates the input space 63 patterns per sweep, with
    all buffers hoisted out of the loop. Bit [p] of input word [i] is bit
    [i] of pattern index [base + p]. *)
let equivalent_exhaustive a b =
  let ni = Circuit.num_inputs a in
  ni = Circuit.num_inputs b
  && Circuit.num_outputs a = Circuit.num_outputs b
  && ni <= 20
  &&
  let va = Array.make (Circuit.node_count a) 0 in
  let vb = Array.make (Circuit.node_count b) 0 in
  let inputs = Array.make ni 0 in
  let out_a = Circuit.output_ids a and out_b = Circuit.output_ids b in
  let limit = 1 lsl ni in
  let ok = ref true in
  let base = ref 0 in
  while !ok && !base < limit do
    let batch = min 63 (limit - !base) in
    let mask = if batch = 63 then word_mask else (1 lsl batch) - 1 in
    for i = 0 to ni - 1 do
      let w = ref 0 in
      for p = 0 to batch - 1 do
        if ((!base + p) lsr i) land 1 = 1 then w := !w lor (1 lsl p)
      done;
      inputs.(i) <- !w
    done;
    eval_all_word_into a inputs ~into:va;
    eval_all_word_into b inputs ~into:vb;
    for k = 0 to Array.length out_a - 1 do
      if (va.(out_a.(k)) lxor vb.(out_b.(k))) land mask <> 0 then ok := false
    done;
    base := !base + batch
  done;
  !ok

(** Randomized functional equivalence for wider circuits; word-parallel,
    so each random draw exercises 63 patterns. At least [patterns]
    patterns are compared (rounded up to full 63-pattern words). *)
let equivalent_random rng ~patterns a b =
  let ni = Circuit.num_inputs a in
  ni = Circuit.num_inputs b
  && Circuit.num_outputs a = Circuit.num_outputs b
  &&
  let va = Array.make (Circuit.node_count a) 0 in
  let vb = Array.make (Circuit.node_count b) 0 in
  let inputs = Array.make ni 0 in
  let out_a = Circuit.output_ids a and out_b = Circuit.output_ids b in
  let words = (patterns + 62) / 63 in
  let ok = ref true in
  let w = ref 0 in
  while !ok && !w < words do
    for i = 0 to ni - 1 do
      inputs.(i) <- Eda_util.Rng.bits63 rng
    done;
    eval_all_word_into a inputs ~into:va;
    eval_all_word_into b inputs ~into:vb;
    for k = 0 to Array.length out_a - 1 do
      if (va.(out_a.(k)) lxor vb.(out_b.(k))) land word_mask <> 0 then ok := false
    done;
    incr w
  done;
  !ok

(** Per-node signal probability estimated over random patterns, used for
    rare-signal (Trojan trigger) analysis. Runs 63 patterns per word with
    reused input/value buffers — no per-pattern allocation. *)
let signal_probabilities rng ~patterns circuit =
  let n = Circuit.node_count circuit in
  let ones = Array.make n 0 in
  let ni = Circuit.num_inputs circuit in
  let input_ids = Circuit.inputs circuit in
  let values = Array.make n 0 in
  let words = (patterns + 62) / 63 in
  for _ = 1 to words do
    for k = 0 to ni - 1 do
      values.(input_ids.(k)) <- Eda_util.Rng.bits63 rng
    done;
    run_gates_word circuit values;
    for i = 0 to n - 1 do
      ones.(i) <- ones.(i) + Eda_util.Stats.popcount values.(i)
    done
  done;
  let total = Float.of_int (words * 63) in
  Array.map (fun c -> Float.of_int c /. total) ones
