(** Textual netlist format, a superset of the ISCAS [.bench] style:

    {v
    INPUT(a)
    OUTPUT(y)
    w = NAND(a, b)
    y = XOR(w, c)
    s = DFF(y)
    v}

    Gates must appear in topological order except DFF D-inputs, which may
    reference nets defined later (feedback). *)

exception Parse_error of string

val print_circuit : Format.formatter -> Circuit.t -> unit

val to_string : Circuit.t -> string

(** @raise Parse_error on malformed input or undefined nets. *)
val of_string : string -> Circuit.t

(** Structured-error parse: failures carry the 1-based source line;
    the parsed circuit is additionally {!Lint.validate}d, so an [Ok]
    circuit is safe for every engine. Undefined nets cover forward
    references and combinational self-loops (e.g. [w = AND(w, a)]). *)
val of_string_result : string -> (Circuit.t, Eda_util.Eda_error.t) result

val write_file : string -> Circuit.t -> unit

val read_file : string -> Circuit.t

(** Like {!of_string_result}, with missing/unreadable files reported as
    [Error] too. *)
val read_file_result : string -> (Circuit.t, Eda_util.Eda_error.t) result
