(** Parametric, seed-deterministic benchmark-circuit generators at
    realistic scale.

    The reference generators in {!Generators} top out at a few hundred
    gates — fine for functional tests, far too small to amortize domain
    startup or exercise cache behaviour. This module produces the
    ISCAS/ITC-scale workloads the surveyed literature evaluates on:
    layered random logic with controllable depth/width/fanout, ISCAS-85
    topology classes (c432/c880/c6288-style), carry-save multiplier
    trees, and configurable mixes — from thousands to hundreds of
    thousands of gates.

    Contracts, relied on by the benchmark harness and the property suite:

    - {b seed determinism}: a generator is a pure function of its
      parameters (including [seed]); the same call always yields a
      circuit with the same {!fingerprint}, on any machine, at any
      domain count;
    - {b lint cleanliness}: every generated circuit passes
      {!Lint.check} with no errors and no [dangling-net] warnings —
      unconsumed logic is folded into a dedicated observability output,
      so ATPG/TVLA/placement see every gate. *)

(** Stable structural content hash (FNV-1a 64, hex): covers every node's
    kind, fanins and name plus the declared outputs. Two circuits with
    the same fingerprint are structurally identical. *)
val fingerprint : Circuit.t -> string

(** [layered ~seed ~inputs ~layers ~width ()] — random combinational
    logic in [layers] ranks of [width] gates. Each gate's fanins come
    from the previous rank with probability [locality] (default 0.75),
    else from any earlier node — so [locality] controls the
    depth/fanout trade-off: 1.0 gives a strict pipeline of depth
    [layers], lower values thicken reconvergent fanout. [kinds]
    (default: the 2-input cell vocabulary plus NOT) weights the cell
    mix. [outputs] (default [max 1 (width/4)]) primary outputs read the
    final rank; everything left unconsumed is XOR-folded into one
    additional [po_obs] output. *)
val layered :
  seed:int ->
  ?kinds:Gate.kind list ->
  ?locality:float ->
  ?outputs:int ->
  inputs:int ->
  layers:int ->
  width:int ->
  unit ->
  Circuit.t

(** [c432_like ~seed ~scale ()] — the c432 topology class (27-channel
    interrupt controller): XOR input conditioning feeding deep 9-input
    NAND/NOR priority trees with seeded cross-bus wiring. [scale = 1]
    is roughly original size (~200 gates); gate count grows ~linearly
    in [scale * scale] (buses widen and cross-products multiply). *)
val c432_like : seed:int -> scale:int -> unit -> Circuit.t

(** [c880_like ~seed ~width ()] — the c880 topology class (8-bit ALU):
    a [width]-bit mux-selected AND/OR/XOR/ADD datapath with a
    carry-lookahead section, result parity and zero-detect control
    outputs. [width = 8] is roughly original size (~400 gates); gate
    count grows linearly in [width]. The [seed] permutes operand
    wiring. *)
val c880_like : seed:int -> width:int -> unit -> Circuit.t

(** [c6288_like ~width ()] — the c6288 topology class: the [width] x
    [width] array-multiplier full-adder grid ([width = 16] is the
    original, ~2.4k gates; gate count grows with [width * width]). Pure
    structure, no seed. *)
val c6288_like : width:int -> unit -> Circuit.t

(** [csa_multiplier ~width ()] — [width] x [width] carry-save (Wallace)
    multiplier: 3:2 compressor tree over the partial products, final
    ripple carry-propagate stage — same function as {!c6288_like} at
    logarithmic compression depth, the wide-and-shallow contrast to the
    array grid. *)
val csa_multiplier : width:int -> unit -> Circuit.t

(** [mix ~seed components ()] — one circuit instantiating each
    [(prefix, circuit)] component over a shared primary-input pool
    (seeded binding), re-exporting each component's outputs under
    [prefix ^ "_" ^ name]. Component net names are prefixed, so
    identical components can repeat under distinct prefixes.
    @raise Invalid_argument on an empty component list or duplicate
    prefixes. *)
val mix : seed:int -> (string * Circuit.t) list -> unit -> Circuit.t

(** The generator families the benchmark sweeps, keyed by a stable
    name. *)
type family = Layered | C432 | C880 | C6288 | Csa_mult | Mixed

val family_name : family -> string
val all_families : family list

(** [sized ~seed family ~target_gates] picks family parameters so the
    generated circuit lands near [target_gates] combinational cells
    (within roughly +-35%; exact for a given (family, seed, target)).
    Intended for size-parametrized benchmark sweeps.
    @raise Invalid_argument when [target_gates < 16]. *)
val sized : seed:int -> family -> target_gates:int -> Circuit.t
