(** Gate-level netlist IR.

    Nodes live in a growable array; apart from DFF D-inputs, every fanin
    index refers to an earlier node, so node order is a valid topological
    order for the combinational portion and evaluation is a single pass.

    A circuit is built through the mutable interface ([create],
    [add_gate], [set_output], ...) and then treated as immutable by
    analyses. Net names are unique within a circuit. *)

type node = {
  kind : Gate.kind;
  mutable fanins : int array;
  name : string;
}

type t

(** Fresh empty circuit. *)
val create : unit -> t

val node_count : t -> int

(** @raise Assert_failure on out-of-range ids. *)
val node : t -> int -> node

val kind : t -> int -> Gate.kind
val fanins : t -> int -> int array
val name : t -> int -> string

(** Low-level insertion with an explicit fanin array; an empty name
    generates a fresh one.
    @raise Invalid_argument on duplicate names. *)
val add_node_raw : t -> Gate.kind -> int array -> string -> int

val add_input : ?name:string -> t -> int
val add_const : ?name:string -> t -> bool -> int

(** [add_gate c kind fanins] appends a combinational cell.
    @raise Assert_failure if a fanin does not precede the new node. *)
val add_gate : ?name:string -> t -> Gate.kind -> int list -> int

(** Declare a DFF; the D input may be re-wired later via {!connect_dff}
    (the only sanctioned forward reference, for feedback loops). *)
val add_dff : ?name:string -> t -> d:int -> int

val connect_dff : t -> int -> d:int -> unit

(** Register a primary output under [name]; outputs are ordered by
    declaration. *)
val set_output : t -> string -> int -> unit

val inputs : t -> int array
val outputs : t -> (string * int) array
val output_ids : t -> int array
val dffs : t -> int array
val num_inputs : t -> int
val num_outputs : t -> int
val num_dffs : t -> int
val find_by_name : t -> string -> int option

(** {2 Region annotations}

    Named node groups ("this cone is a secret", "these nets are a masked
    gadget") consumed by security-aware synthesis passes. Membership is
    stored by {e net name}, so annotations survive the id renumbering a
    pass pipeline performs; names a pass drops or renames simply stop
    matching. [copy] and [sweep] preserve annotations; pass runners carry
    them across rebuilds with {!transfer_regions}. *)

(** Add nodes to [region] (created on first use); idempotent per net. *)
val annotate_region : t -> region:string -> int list -> unit

(** Region names, in declaration order. *)
val region_names : t -> string list

(** Currently-resolvable member ids of [region]; unknown regions are
    empty. *)
val region_members : t -> string -> int list

(** Membership as a node mask, for per-node sweeps. *)
val region_mask : t -> string -> bool array

(** Carry [from]'s annotations over to a rebuilt [t] (additive; existing
    regions win). *)
val transfer_regions : from:t -> t -> unit

(** Binary-tree reduction of [ids] with 2-input cells of [kind]. *)
val reduce : t -> Gate.kind -> int list -> int

(** Left-to-right chain reduction; preserves the exact association order —
    the property masked logic depends on (see the Fig. 2 experiment). *)
val reduce_chain : t -> Gate.kind -> int list -> int

(** Per-node consumer lists. *)
val fanouts : t -> int list array

type stats = {
  gates : int;
  area : float;
  inputs : int;
  outputs : int;
  flip_flops : int;
  by_kind : (string * int) list;
}

val stats : t -> stats

(** Deep copy, for transforms that modify in place. *)
val copy : t -> t

(** Per-node liveness: reachable backwards from outputs, DFFs or inputs. *)
val live_set : t -> bool array

(** Rebuild keeping only live nodes; returns the new circuit and the
    old-to-new id map (dead nodes map to -1). *)
val sweep : t -> t * int array

(** Instantiate combinational [sub] inside [into], binding [sub]'s inputs
    to the given [into] nodes in declaration order; returns the [into] ids
    of [sub]'s outputs. [sub] net names are prefixed to avoid collisions. *)
val inline : into:t -> sub:t -> prefix:string -> int array -> int array

(** Structural sanity: every combinational fanin precedes its consumer and
    every referenced id is in range. *)
val well_formed : t -> bool
