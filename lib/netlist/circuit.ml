(** Gate-level netlist IR.

    Nodes live in a growable array; apart from DFF D-inputs, every fanin
    index refers to an earlier node, so node order is a valid topological
    order for the combinational portion and evaluation is a single pass.

    A circuit is built through the mutable interface ([create], [add_gate],
    [set_output], ...) and then treated as immutable by analyses. *)

type node = {
  kind : Gate.kind;
  mutable fanins : int array;
  name : string;
}

type t = {
  mutable nodes : node array;
  mutable n : int;  (* live prefix of [nodes] *)
  mutable inputs : int list;  (* in declaration order, reversed *)
  mutable outputs : (string * int) list;  (* reversed *)
  mutable dffs : int list;  (* reversed *)
  by_name : (string, int) Hashtbl.t;
  (* Region annotations: region name -> member *net names*, declaration
     order. Membership is by name, not id, so annotations survive the id
     renumbering every synthesis pass performs; names that no longer
     resolve are dropped at query time, not eagerly. *)
  mutable regions : (string * string list) list;
}

let create () =
  { nodes = Array.make 64 { kind = Gate.Input; fanins = [||]; name = "" };
    n = 0;
    inputs = [];
    outputs = [];
    dffs = [];
    by_name = Hashtbl.create 64;
    regions = [] }

let node_count c = c.n

let node c i =
  assert (i >= 0 && i < c.n);
  c.nodes.(i)

let kind c i = (node c i).kind
let fanins c i = (node c i).fanins
let name c i = (node c i).name

let grow c =
  if c.n = Array.length c.nodes then begin
    let bigger = Array.make (2 * Array.length c.nodes) c.nodes.(0) in
    Array.blit c.nodes 0 bigger 0 c.n;
    c.nodes <- bigger
  end

let fresh_name c prefix =
  let rec find k =
    let candidate = Printf.sprintf "%s%d" prefix k in
    if Hashtbl.mem c.by_name candidate then find (k + 1) else candidate
  in
  find c.n

(* Core insertion; checks fanin validity for combinational cells. *)
let add_node c kind fanins name =
  assert (Array.length fanins = Gate.arity kind);
  if Gate.is_combinational kind then
    Array.iter (fun f -> assert (f >= 0 && f < c.n)) fanins;
  grow c;
  let id = c.n in
  let name = if name = "" then fresh_name c "n" else name in
  c.nodes.(id) <- { kind; fanins; name };
  c.n <- c.n + 1;
  if Hashtbl.mem c.by_name name then
    invalid_arg (Printf.sprintf "Circuit: duplicate net name %s" name);
  Hashtbl.replace c.by_name name id;
  (match kind with
   | Gate.Input -> c.inputs <- id :: c.inputs
   | Gate.Dff -> c.dffs <- id :: c.dffs
   | Gate.Const _ | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or
   | Gate.Nor | Gate.Xor | Gate.Xnor | Gate.Mux -> ());
  id

(** Low-level insertion with an explicit fanin array; used by synthesis
    passes that rebuild circuits node by node. An empty name generates a
    fresh one. *)
let add_node_raw c kind fanins name = add_node c kind fanins name

let add_input ?(name = "") c = add_node c Gate.Input [||] name

let add_const ?(name = "") c b = add_node c (Gate.Const b) [||] name

let add_gate ?(name = "") c kind fanins = add_node c kind (Array.of_list fanins) name

(** Declare a DFF whose D input may be wired later via [connect_dff]. *)
let add_dff ?(name = "") c ~d = add_node c Gate.Dff [| d |] name

(** Re-wire a DFF D-input after its driver exists (for feedback loops). *)
let connect_dff c dff ~d =
  assert (kind c dff = Gate.Dff);
  assert (d >= 0 && d < c.n);
  (node c dff).fanins <- [| d |]

let set_output c name id =
  assert (id >= 0 && id < c.n);
  c.outputs <- (name, id) :: c.outputs

let inputs c = Array.of_list (List.rev c.inputs)
let outputs c = Array.of_list (List.rev c.outputs)
let output_ids c = Array.map snd (outputs c)
let dffs c = Array.of_list (List.rev c.dffs)

let num_inputs c = List.length c.inputs
let num_outputs c = List.length c.outputs
let num_dffs c = List.length c.dffs

let find_by_name c net = Hashtbl.find_opt c.by_name net

(* --- Region annotations ------------------------------------------------ *)

(** Add [ids] (resolved to their current net names) to [region], creating
    it on first use. Annotating the same net twice is idempotent. *)
let annotate_region c ~region ids =
  let names = List.map (fun id -> (node c id).name) ids in
  let rec upd = function
    | [] -> [ (region, names) ]
    | (r, ms) :: rest when r = region ->
      (r, ms @ List.filter (fun n -> not (List.mem n ms)) names) :: rest
    | entry :: rest -> entry :: upd rest
  in
  c.regions <- upd c.regions

(** Region names, in declaration order. *)
let region_names c = List.map fst c.regions

(** Current member ids of [region]: member names that no longer resolve
    (dropped or renamed by a pass) are silently omitted; an unknown region
    is empty. *)
let region_members c region =
  match List.assoc_opt region c.regions with
  | None -> []
  | Some names -> List.filter_map (fun nm -> Hashtbl.find_opt c.by_name nm) names

(** Membership as a [node_count]-sized mask, for per-node sweeps. *)
let region_mask c region =
  let mask = Array.make (max 1 c.n) false in
  List.iter (fun id -> mask.(id) <- true) (region_members c region);
  mask

(** Carry [from]'s region annotations over to [c] (a rebuilt version of the
    same design). Additive: regions [c] already declares are kept as-is;
    member names that do not resolve in [c] simply stop matching. *)
let transfer_regions ~from c =
  List.iter
    (fun (r, ms) ->
      if not (List.mem_assoc r c.regions) then c.regions <- c.regions @ [ (r, ms) ])
    from.regions

(** Convenience binary-tree reduction, e.g. wide AND/XOR from 2-input cells. *)
let rec reduce c kind ids =
  match ids with
  | [] -> invalid_arg "Circuit.reduce: empty"
  | [ x ] -> x
  | _ :: _ :: _ ->
    let rec pair acc = function
      | [] -> List.rev acc
      | [ x ] -> List.rev (x :: acc)
      | a :: b :: rest -> pair (add_gate c kind [ a; b ] :: acc) rest
    in
    reduce c kind (pair [] ids)

(** Left-to-right chain reduction; preserves the exact association order,
    which matters for masked logic where evaluation order is the security
    property (see the Fig. 2 experiment). *)
let reduce_chain c kind ids =
  match ids with
  | [] -> invalid_arg "Circuit.reduce_chain: empty"
  | first :: rest ->
    List.fold_left (fun acc x -> add_gate c kind [ acc; x ]) first rest

(** Fanout lists: for each node, which nodes consume it. *)
let fanouts c =
  let out = Array.make c.n [] in
  for i = 0 to c.n - 1 do
    Array.iter (fun f -> out.(f) <- i :: out.(f)) (fanins c i)
  done;
  out

(** Structural statistics used for PPA reporting. *)
type stats = {
  gates : int;  (* combinational cells, excluding constants *)
  area : float;
  inputs : int;
  outputs : int;
  flip_flops : int;
  by_kind : (string * int) list;
}

let stats c =
  let gates = ref 0 and area = ref 0.0 in
  let kinds = Hashtbl.create 16 in
  for i = 0 to c.n - 1 do
    let k = kind c i in
    area := !area +. Gate.area k;
    (match k with
     | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
     | Gate.Xor | Gate.Xnor | Gate.Mux -> incr gates
     | Gate.Input | Gate.Const _ | Gate.Dff -> ());
    let key = Gate.name k in
    Hashtbl.replace kinds key (1 + Option.value ~default:0 (Hashtbl.find_opt kinds key))
  done;
  { gates = !gates;
    area = !area;
    inputs = num_inputs c;
    outputs = num_outputs c;
    flip_flops = num_dffs c;
    by_kind = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []) }

(** Deep copy, for transforms that modify in place. *)
let copy c =
  { nodes = Array.map (fun nd -> { nd with fanins = Array.copy nd.fanins }) (Array.sub c.nodes 0 (max 1 c.n));
    n = c.n;
    inputs = c.inputs;
    outputs = c.outputs;
    dffs = c.dffs;
    by_name = Hashtbl.copy c.by_name;
    regions = c.regions }

(** Nodes reachable backwards from the outputs (and DFF D-inputs); the live
    cone. Dead nodes are synthesis garbage. *)
let live_set c =
  let live = Array.make c.n false in
  let rec visit i =
    if not live.(i) then begin
      live.(i) <- true;
      Array.iter visit (fanins c i)
    end
  in
  Array.iter (fun (_, o) -> visit o) (outputs c);
  Array.iter visit (dffs c);
  (* Primary inputs are part of the interface and always survive. *)
  Array.iter visit (inputs c);
  live

(** Rebuild the circuit keeping only live nodes; returns the new circuit and
    the old-to-new id mapping (dead nodes map to -1). *)
let sweep c =
  let live = live_set c in
  let remap = Array.make c.n (-1) in
  let out = create () in
  for i = 0 to c.n - 1 do
    if live.(i) then begin
      let nd = node c i in
      let fanins =
        (* DFF fanins may be forward; remap later in a second pass. *)
        if nd.kind = Gate.Dff then [| 0 |] else Array.map (fun f -> remap.(f)) nd.fanins
      in
      Array.iter (fun f -> assert (f >= 0)) fanins;
      remap.(i) <- add_node out nd.kind fanins nd.name
    end
  done;
  (* Second pass: DFF D-inputs. *)
  for i = 0 to c.n - 1 do
    if live.(i) && kind c i = Gate.Dff then begin
      let d = (fanins c i).(0) in
      assert (remap.(d) >= 0);
      connect_dff out remap.(i) ~d:remap.(d)
    end
  done;
  List.iter (fun (nm, o) -> set_output out nm remap.(o)) (List.rev c.outputs);
  (* Region annotations are by name: dead members stop resolving. *)
  transfer_regions ~from:c out;
  out, remap

(** Instantiate combinational [sub] inside [into], binding [sub]'s primary
    inputs to the given [into] nodes (in declaration order). Returns the
    [into] ids of [sub]'s outputs. Net names of [sub] get [prefix]ed to
    avoid collisions. *)
let inline ~into ~sub ~prefix bindings =
  assert (num_dffs sub = 0);
  let sub_inputs = inputs sub in
  assert (Array.length bindings = Array.length sub_inputs);
  let remap = Array.make (node_count sub) (-1) in
  Array.iteri (fun k id -> remap.(id) <- bindings.(k)) sub_inputs;
  for i = 0 to node_count sub - 1 do
    let nd = node sub i in
    match nd.kind with
    | Gate.Input -> ()
    | Gate.Dff -> assert false
    | k ->
      let fanins = Array.map (fun f -> remap.(f)) nd.fanins in
      let name = prefix ^ nd.name in
      let name = if Hashtbl.mem into.by_name name then "" else name in
      remap.(i) <- add_node into k fanins name
  done;
  Array.map (fun (_, o) -> remap.(o)) (outputs sub)

(** Structural check: every fanin of a combinational node precedes it. *)
let well_formed c =
  let ok = ref true in
  for i = 0 to c.n - 1 do
    let nd = node c i in
    if Gate.is_combinational nd.kind then
      Array.iter (fun f -> if f < 0 || f >= i then ok := false) nd.fanins
    else if nd.kind = Gate.Dff then
      Array.iter (fun f -> if f < 0 || f >= c.n then ok := false) nd.fanins
  done;
  List.iter (fun (_, o) -> if o < 0 || o >= c.n then ok := false) c.outputs;
  !ok
