(** SAT-based automatic test pattern generation for single stuck-at faults
    on combinational circuits: for each fault, a miter between the clean
    circuit and a faulty copy either yields a detecting pattern or proves
    the fault untestable (redundant logic). *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Solver = Sat.Solver
module Cnf = Sat.Cnf

(* A copy of [circuit] with [fault] frozen in: the fault site's cone is
   rebuilt with the node replaced by a constant (stuck-at) — simulated by
   rebuilding with a const node substitution. *)
let faulty_copy circuit fault =
  match (fault : Fault.Model.fault) with
  | Fault.Model.Bit_flip _ -> invalid_arg "Atpg: transient faults have no static copy"
  | Fault.Model.Stuck_at { node; value } ->
    let out = Circuit.create () in
    let n = Circuit.node_count circuit in
    let remap = Array.make n (-1) in
    let name_taken = Hashtbl.create 64 in
    let copy_name i =
      let nm = Circuit.name circuit i in
      if Hashtbl.mem name_taken nm || Circuit.find_by_name out nm <> None then ""
      else begin
        Hashtbl.replace name_taken nm ();
        nm
      end
    in
    (* Every node is copied (inputs must survive for interface
       compatibility); the fault site is then shadowed downstream by a
       constant carrying the stuck value. *)
    for i = 0 to n - 1 do
      let nd = Circuit.node circuit i in
      let fanins = Array.map (fun f -> remap.(f)) nd.Circuit.fanins in
      let id = Circuit.add_node_raw out nd.Circuit.kind fanins (copy_name i) in
      remap.(i) <-
        (if i = node then Circuit.add_node_raw out (Gate.Const value) [||] "" else id)
    done;
    Array.iter (fun (nm, o) -> Circuit.set_output out nm remap.(o)) (Circuit.outputs circuit);
    out

type pattern_result =
  | Pattern of bool array
  | Untestable
  | Abstained of Eda_util.Budget.exhaustion  (* budget ran out mid-proof *)

(** Generate a test for one stuck-at fault, optionally bounded. *)
let generate ?budget ?on_stats circuit fault =
  let faulty = faulty_copy circuit fault in
  match Cnf.check_equivalence_b ?budget ?on_stats circuit faulty with
  | Cnf.Equivalent -> Untestable
  | Cnf.Counterexample witness -> Pattern witness
  | Cnf.Equiv_unknown e -> Abstained e

(** Outcome of a (possibly bounded) ATPG run. Coverage counts only faults
    with a generated detecting pattern — on exhaustion it is the honest
    partial number, never an extrapolation. *)
type report = {
  patterns : bool array list;
  coverage : float;  (* detected faults / total faults *)
  untestable : Fault.Model.fault list;
  faults_total : int;
  faults_remaining : int;  (* unprocessed because the budget ran out *)
  exhausted : Eda_util.Budget.exhaustion option;
  solver_stats : Solver.stats;  (* summed over all per-fault miter queries *)
}

(** Full ATPG run: compact pattern set via greedy fault simulation — each
    new pattern is fault-simulated against the remaining fault list before
    generating tests for survivors. [budget] is charged one step per fault
    processed plus one per solver conflict; on exhaustion the run stops
    and reports partial coverage with the unprocessed fault count.

    Telemetry: an [atpg.run] span over the whole campaign with per-fault
    outcome counters ([atpg.detected] for SAT-generated patterns,
    [atpg.covered_by_simulation] for faults swept by fault-simulating a
    fresh pattern, [atpg.untestable], [atpg.abstained]) and a final
    [atpg.coverage] gauge; each miter query nests a [sat.solve] span. *)
let run_report_traced ?budget circuit =
  let module T = Eda_util.Telemetry in
  let faults = Fault.Model.all_stuck_at_faults circuit in
  let total = List.length faults in
  let patterns = ref [] in
  let untestable = ref [] in
  let remaining = ref faults in
  let exhausted = ref None in
  let totals =
    ref
      { Solver.vars = 0; clauses = 0; conflicts = 0; decisions = 0; propagations = 0;
        learnt = 0; learnt_live = 0; restarts = 0; db_reductions = 0; clauses_deleted = 0 }
  in
  let on_stats (s : Solver.stats) =
    totals :=
      { Solver.vars = max !totals.Solver.vars s.Solver.vars;
        clauses = max !totals.Solver.clauses s.Solver.clauses;
        conflicts = !totals.Solver.conflicts + s.Solver.conflicts;
        decisions = !totals.Solver.decisions + s.Solver.decisions;
        propagations = !totals.Solver.propagations + s.Solver.propagations;
        learnt = !totals.Solver.learnt + s.Solver.learnt;
        learnt_live = max !totals.Solver.learnt_live s.Solver.learnt_live;
        restarts = !totals.Solver.restarts + s.Solver.restarts;
        db_reductions = !totals.Solver.db_reductions + s.Solver.db_reductions;
        clauses_deleted = !totals.Solver.clauses_deleted + s.Solver.clauses_deleted }
  in
  while !exhausted = None && !remaining <> [] do
    match Option.map Eda_util.Budget.status budget |> Option.join with
    | Some e -> exhausted := Some e
    | None ->
      (match !remaining with
       | [] -> ()
       | fault :: rest ->
         (match generate ?budget ~on_stats circuit fault with
          | Abstained e ->
            T.count "atpg.abstained" 1;
            exhausted := Some e
          | Untestable ->
            T.count "atpg.untestable" 1;
            untestable := fault :: !untestable;
            remaining := rest
          | Pattern p ->
            patterns := p :: !patterns;
            (* Drop every other remaining fault this pattern also detects. *)
            let survivors =
              List.filter (fun f -> not (Fault.Model.detects circuit ~fault:f p)) rest
            in
            T.count "atpg.detected" 1;
            if T.active () then
              T.count "atpg.covered_by_simulation"
                (List.length rest - List.length survivors);
            remaining := survivors);
         Option.iter (fun b -> Eda_util.Budget.tick b) budget)
  done;
  let untestable_n = List.length !untestable in
  let remaining_n = if !exhausted = None then 0 else List.length !remaining in
  let detected = total - untestable_n - remaining_n in
  let coverage = if total = 0 then 1.0 else Float.of_int detected /. Float.of_int total in
  (match !exhausted with
   | Some e ->
     T.note "atpg.exhausted"
       ~attrs:
         [ ("reason", T.Str (Eda_util.Budget.describe_exhaustion e));
           ("faults_remaining", T.Int remaining_n) ]
   | None -> ());
  T.gauge "atpg.coverage" coverage;
  { patterns = List.rev !patterns;
    coverage;
    untestable = !untestable;
    faults_total = total;
    faults_remaining = remaining_n;
    exhausted = !exhausted;
    solver_stats = !totals }

let run_report ?budget circuit =
  let module T = Eda_util.Telemetry in
  T.with_span "atpg.run"
    ~attrs:[ ("nodes", T.Int (Circuit.node_count circuit)) ]
    (fun () -> run_report_traced ?budget circuit)

(** Checked entry point: lint first, structured errors out. *)
let run_checked ?budget circuit =
  let open Eda_util.Eda_error in
  let* _ = Netlist.Lint.validate circuit in
  guard ~engine:"atpg" (fun () -> run_report ?budget circuit)

(** Classic interface retained for callers that assume an unbounded run. *)
let run ?budget circuit =
  let r = run_report ?budget circuit in
  `Patterns r.patterns, `Coverage r.coverage, `Untestable r.untestable

(** Redundancy removal — the classic synthesis-for-test connection: a node
    whose stuck-at-v fault is untestable can be replaced by the constant v
    without changing the function. Security relevance: redundant logic is
    where lazy watermarks and sloppy Trojans hide, and redundancy also
    caps fault coverage; a clean flow sweeps it. Iterates to a fixed
    point. *)
let remove_redundancy circuit =
  let rec pass c budget =
    if budget = 0 then c
    else begin
      let redundant = ref None in
      let n = Circuit.node_count c in
      let i = ref 0 in
      while !redundant = None && !i < n do
        (match Circuit.kind c !i with
         | Gate.Input | Gate.Const _ | Gate.Dff -> ()
         | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
         | Gate.Xor | Gate.Xnor | Gate.Mux ->
           let try_value value =
             if !redundant = None then
               match generate c (Fault.Model.Stuck_at { node = !i; value }) with
               | Untestable -> redundant := Some (!i, value)
               | Pattern _ | Abstained _ -> ()
           in
           try_value false;
           try_value true);
        incr i
      done;
      match !redundant with
      | None -> c
      | Some (node, value) ->
        (* Replace the node with the constant and simplify. *)
        let simplified = Synth.Rewrite.constant_propagation (faulty_copy c (Fault.Model.Stuck_at { node; value })) in
        pass simplified (budget - 1)
    end
  in
  pass circuit 32
