(** SAT-based automatic test pattern generation for single stuck-at faults
    on combinational circuits: for each fault, a miter between the clean
    circuit and a faulty copy either yields a detecting pattern or proves
    the fault untestable (redundant logic). *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Solver = Sat.Solver
module Cnf = Sat.Cnf

type pattern_result =
  | Pattern of bool array
  | Untestable
  | Abstained of Eda_util.Budget.exhaustion  (* budget ran out mid-proof *)

(** Generate a test for one stuck-at fault, optionally bounded. The miter
    is cone-based ({!Cnf.check_stuck_at}): only the fault's fanout cone
    is duplicated in the SAT instance, which keeps per-fault queries
    tractable on circuits far beyond what a whole-copy miter handles. *)
let generate ?budget ?on_stats circuit fault =
  match (fault : Fault.Model.fault) with
  | Fault.Model.Bit_flip _ -> invalid_arg "Atpg: transient faults have no static copy"
  | Fault.Model.Stuck_at { node; value } ->
    (match Cnf.check_stuck_at ?budget ?on_stats circuit ~node ~value with
     | Cnf.Equivalent -> Untestable
     | Cnf.Counterexample witness -> Pattern witness
     | Cnf.Equiv_unknown e -> Abstained e)

(** Outcome of a (possibly bounded) ATPG run. Coverage counts only faults
    with a generated detecting pattern — on exhaustion it is the honest
    partial number, never an extrapolation. *)
type report = {
  patterns : bool array list;
  coverage : float;  (* detected faults / total faults *)
  untestable : Fault.Model.fault list;
  faults_total : int;
  faults_remaining : int;  (* unprocessed because the budget ran out *)
  exhausted : Eda_util.Budget.exhaustion option;
  solver_stats : Solver.stats;  (* summed over all per-fault miter queries *)
}

let zero_stats =
  { Solver.vars = 0; clauses = 0; conflicts = 0; decisions = 0; propagations = 0;
    learnt = 0; learnt_live = 0; restarts = 0; db_reductions = 0; clauses_deleted = 0 }

(* Fold one per-query stats record into the campaign totals: capacity-like
   fields (vars, clauses, live learnts) take the max, work-like fields sum. *)
let merge_stats totals (s : Solver.stats) =
  { Solver.vars = max totals.Solver.vars s.Solver.vars;
    clauses = max totals.Solver.clauses s.Solver.clauses;
    conflicts = totals.Solver.conflicts + s.Solver.conflicts;
    decisions = totals.Solver.decisions + s.Solver.decisions;
    propagations = totals.Solver.propagations + s.Solver.propagations;
    learnt = totals.Solver.learnt + s.Solver.learnt;
    learnt_live = max totals.Solver.learnt_live s.Solver.learnt_live;
    restarts = totals.Solver.restarts + s.Solver.restarts;
    db_reductions = totals.Solver.db_reductions + s.Solver.db_reductions;
    clauses_deleted = totals.Solver.clauses_deleted + s.Solver.clauses_deleted }

(* The greedy campaign state threaded through both execution strategies.
   The greedy loop itself is the specification: process the head of the
   remaining list, fault-simulate each fresh pattern against the rest,
   drop what it covers. The pooled path below replays exactly this loop,
   which is why its reports are bit-identical to the sequential path. *)
type campaign = {
  mutable patterns_rev : bool array list;
  mutable untestable_acc : Fault.Model.fault list;
  mutable remaining : Fault.Model.fault list;
  mutable exhausted_by : Eda_util.Budget.exhaustion option;
  mutable totals : Solver.stats;
}

(* Account one processed fault's outcome: telemetry counters, the greedy
   pattern/fault-list update, and the one-step-per-fault budget charge.
   [fault] must be the head of [st.remaining]. *)
let apply_outcome ?budget st circuit fault outcome =
  let module T = Eda_util.Telemetry in
  (match st.remaining with head :: _ -> assert (head == fault) | [] -> assert false);
  let rest = match st.remaining with _ :: r -> r | [] -> [] in
  (match outcome with
   | Abstained e ->
     T.count "atpg.abstained" 1;
     st.exhausted_by <- Some e
   | Untestable ->
     T.count "atpg.untestable" 1;
     st.untestable_acc <- fault :: st.untestable_acc;
     st.remaining <- rest
   | Pattern p ->
     st.patterns_rev <- p :: st.patterns_rev;
     (* Drop every other remaining fault this pattern also detects. *)
     let survivors =
       List.filter (fun f -> not (Fault.Model.detects circuit ~fault:f p)) rest
     in
     T.count "atpg.detected" 1;
     if T.active () then
       T.count "atpg.covered_by_simulation" (List.length rest - List.length survivors);
     st.remaining <- survivors);
  Option.iter (fun b -> Eda_util.Budget.tick b) budget

let finish_report st ~total =
  let module T = Eda_util.Telemetry in
  let untestable_n = List.length st.untestable_acc in
  let remaining_n = if st.exhausted_by = None then 0 else List.length st.remaining in
  let detected = total - untestable_n - remaining_n in
  let coverage = if total = 0 then 1.0 else Float.of_int detected /. Float.of_int total in
  (match st.exhausted_by with
   | Some e ->
     T.note "atpg.exhausted"
       ~attrs:
         [ ("reason", T.Str (Eda_util.Budget.describe_exhaustion e));
           ("faults_remaining", T.Int remaining_n) ]
   | None -> ());
  T.gauge "atpg.coverage" coverage;
  { patterns = List.rev st.patterns_rev;
    coverage;
    untestable = st.untestable_acc;
    faults_total = total;
    faults_remaining = remaining_n;
    exhausted = st.exhausted_by;
    solver_stats = st.totals }

let fresh_campaign faults =
  { patterns_rev = [];
    untestable_acc = [];
    remaining = faults;
    exhausted_by = None;
    totals = zero_stats }

let budget_status budget = Option.map Eda_util.Budget.status budget |> Option.join

let fault_universe ?faults circuit =
  match faults with
  | Some fs -> fs
  | None -> Fault.Model.all_stuck_at_faults circuit

(* Sequential strategy: the reference greedy loop. *)
let run_seq ?budget ?faults circuit =
  let faults = fault_universe ?faults circuit in
  let total = List.length faults in
  let st = fresh_campaign faults in
  let on_stats s = st.totals <- merge_stats st.totals s in
  while st.exhausted_by = None && st.remaining <> [] do
    match budget_status budget with
    | Some e -> st.exhausted_by <- Some e
    | None ->
      (match st.remaining with
       | [] -> ()
       | fault :: _ ->
         apply_outcome ?budget st circuit fault (generate ?budget ~on_stats circuit fault))
  done;
  finish_report st ~total

(* Pooled strategy: speculate SAT queries for a chunk of upcoming faults
   in parallel, then replay the greedy loop over the precomputed
   outcomes. [generate] is a pure function of (circuit, fault), so
   replaying in list order makes the report bit-identical to [run_seq]
   no matter how many domains ran the chunk; speculation only wastes the
   queries for faults a fresh pattern covers first (bounded per chunk).
   Solver work performed on worker domains is charged to the main budget
   during replay, so accounting stays on the calling domain. *)
let run_pooled ~pool ?budget ?faults circuit =
  let module B = Eda_util.Budget in
  let module P = Eda_util.Pool in
  let faults = fault_universe ?faults circuit in
  let total = List.length faults in
  let st = fresh_campaign faults in
  (* Fixed speculation horizon, deliberately not a function of pool
     size: the executed query set — and so the captured trace — is
     identical at any domain count. 16 keeps 8 domains busy at two
     queries each while bounding wasted speculation. *)
  let chunk_len = 16 in
  let take n lst =
    let rec go acc n = function
      | x :: rest when n > 0 -> go (x :: acc) (n - 1) rest
      | _ -> List.rev acc
    in
    Array.of_list (go [] n lst)
  in
  while st.exhausted_by = None && st.remaining <> [] do
    match budget_status budget with
    | Some e -> st.exhausted_by <- Some e
    | None ->
      let chunk = take chunk_len st.remaining in
      let step_cap = Option.bind budget B.remaining_steps in
      let results =
        P.parallel_map ?budget ~label:"atpg" pool chunk ~f:(fun ctx fault ->
            let acc = ref [] in
            let tb = ctx.P.task_budget ?steps:step_cap () in
            let outcome =
              generate ~budget:tb ~on_stats:(fun s -> acc := s :: !acc) circuit fault
            in
            (outcome, List.rev !acc))
      in
      let i = ref 0 in
      while st.exhausted_by = None && !i < Array.length chunk do
        let fault = chunk.(!i) in
        (* a pattern from an earlier chunk member may have covered this
           fault already — then its speculative query is simply unused *)
        (if List.memq fault st.remaining then
           match budget_status budget with
           | Some e -> st.exhausted_by <- Some e
           | None ->
             (match results.(!i) with
              | None ->
                (* task skipped: the batch was stopped under us *)
                st.exhausted_by <-
                  Some (match budget_status budget with Some e -> e | None -> B.Cancelled)
              | Some (outcome, per_query) ->
                List.iter
                  (fun s ->
                    st.totals <- merge_stats st.totals s;
                    (* the conflicts a sequential run would have ticked
                       from inside the solver *)
                    Option.iter (fun b -> B.tick ~cost:s.Solver.conflicts b) budget)
                  per_query;
                apply_outcome ?budget st circuit fault outcome));
        incr i
      done
  done;
  finish_report st ~total

(** Full ATPG run: compact pattern set via greedy fault simulation — each
    new pattern is fault-simulated against the remaining fault list
    before generating tests for survivors. [budget] is charged one step
    per fault processed plus one per solver conflict; on exhaustion the
    run stops and reports honest partial coverage with the unprocessed
    fault count. [pool] parallelizes the per-fault SAT queries
    (speculative chunks, sequential replay); an unbounded pooled run
    reports bit-identically to the sequential path at any domain count,
    while a budget-truncated pooled run may stop within a chunk of where
    the sequential run would.

    Telemetry: an [atpg.run] span over the whole campaign with per-fault
    outcome counters ([atpg.detected] for SAT-generated patterns,
    [atpg.covered_by_simulation] for faults swept by fault-simulating a
    fresh pattern, [atpg.untestable], [atpg.abstained]) and a final
    [atpg.coverage] gauge. Pooled chunks add [pool.batch] spans whose
    [pool.task] children carry the workers' captured telemetry — each
    speculative miter query's [sat.solve] span appears under the task
    that ran it, tagged with [task]/[domain] attributes. Any pool,
    including size 1, takes the pooled path so the trace shape is
    uniform across domain counts. *)
let run ?budget ?pool ?faults circuit =
  let module T = Eda_util.Telemetry in
  let domains = match pool with Some p -> Eda_util.Pool.size p | None -> 1 in
  T.with_span "atpg.run"
    ~attrs:[ ("nodes", T.Int (Circuit.node_count circuit)); ("domains", T.Int domains) ]
    (fun () ->
      match pool with
      | Some p -> run_pooled ~pool:p ?budget ?faults circuit
      | None -> run_seq ?budget ?faults circuit)

(** Checked entry point: lint first, structured errors out. *)
let run_checked ?budget ?pool ?faults circuit =
  let open Eda_util.Eda_error in
  let* _ = Netlist.Lint.validate circuit in
  guard ~engine:"atpg" (fun () -> run ?budget ?pool ?faults circuit)

(** @deprecated Alias of {!run} (the unified entry point). *)
let run_report ?budget circuit = run ?budget circuit

(** @deprecated [run] minus the campaign span; alias kept for callers
    that managed their own span. *)
let run_report_traced ?budget circuit = run_seq ?budget circuit

(* A copy of [circuit] with [fault] frozen in: the fault site is shadowed
   downstream by a constant carrying the stuck value. Used by redundancy
   removal, which really does want a standalone circuit (the SAT queries
   themselves go through the cone miter and never build one). *)
let faulty_copy circuit fault =
  match (fault : Fault.Model.fault) with
  | Fault.Model.Bit_flip _ -> invalid_arg "Atpg: transient faults have no static copy"
  | Fault.Model.Stuck_at { node; value } ->
    let out = Circuit.create () in
    let n = Circuit.node_count circuit in
    let remap = Array.make n (-1) in
    let name_taken = Hashtbl.create 64 in
    let copy_name i =
      let nm = Circuit.name circuit i in
      if Hashtbl.mem name_taken nm || Circuit.find_by_name out nm <> None then ""
      else begin
        Hashtbl.replace name_taken nm ();
        nm
      end
    in
    for i = 0 to n - 1 do
      let nd = Circuit.node circuit i in
      let fanins = Array.map (fun f -> remap.(f)) nd.Circuit.fanins in
      let id = Circuit.add_node_raw out nd.Circuit.kind fanins (copy_name i) in
      remap.(i) <-
        (if i = node then Circuit.add_node_raw out (Gate.Const value) [||] "" else id)
    done;
    Array.iter (fun (nm, o) -> Circuit.set_output out nm remap.(o)) (Circuit.outputs circuit);
    out

(** Redundancy removal — the classic synthesis-for-test connection: a node
    whose stuck-at-v fault is untestable can be replaced by the constant v
    without changing the function. Security relevance: redundant logic is
    where lazy watermarks and sloppy Trojans hide, and redundancy also
    caps fault coverage; a clean flow sweeps it. Iterates to a fixed
    point. *)
let remove_redundancy circuit =
  let rec pass c budget =
    if budget = 0 then c
    else begin
      let redundant = ref None in
      let n = Circuit.node_count c in
      let i = ref 0 in
      while !redundant = None && !i < n do
        (match Circuit.kind c !i with
         | Gate.Input | Gate.Const _ | Gate.Dff -> ()
         | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
         | Gate.Xor | Gate.Xnor | Gate.Mux ->
           let try_value value =
             if !redundant = None then
               match generate c (Fault.Model.Stuck_at { node = !i; value }) with
               | Untestable -> redundant := Some (!i, value)
               | Pattern _ | Abstained _ -> ()
           in
           try_value false;
           try_value true);
        incr i
      done;
      match !redundant with
      | None -> c
      | Some (node, value) ->
        (* Replace the node with the constant and simplify. *)
        let simplified = Synth.Rewrite.constant_propagation (faulty_copy c (Fault.Model.Stuck_at { node; value })) in
        pass simplified (budget - 1)
    end
  in
  pass circuit 32
