(** SAT-based automatic test pattern generation for single stuck-at faults
    on combinational circuits: for each fault, a miter between the clean
    circuit and a faulty copy either yields a detecting pattern or proves
    the fault untestable (redundant logic). *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Solver = Sat.Solver
module Cnf = Sat.Cnf

type pattern_result =
  | Pattern of bool array
  | Untestable
  | Abstained of Eda_util.Budget.exhaustion  (* budget ran out mid-proof *)

(** Generate a test for one stuck-at fault, optionally bounded. The miter
    is cone-based ({!Cnf.check_stuck_at}): only the fault's fanout cone
    is duplicated in the SAT instance, which keeps per-fault queries
    tractable on circuits far beyond what a whole-copy miter handles. *)
let generate ?budget ?on_stats circuit fault =
  match (fault : Fault.Model.fault) with
  | Fault.Model.Bit_flip _ -> invalid_arg "Atpg: transient faults have no static copy"
  | Fault.Model.Stuck_at { node; value } ->
    (match Cnf.check_stuck_at ?budget ?on_stats circuit ~node ~value with
     | Cnf.Equivalent -> Untestable
     | Cnf.Counterexample witness -> Pattern witness
     | Cnf.Equiv_unknown e -> Abstained e)

(** Outcome of a (possibly bounded) ATPG run. Coverage counts only faults
    with a generated detecting pattern — on exhaustion it is the honest
    partial number, never an extrapolation. *)
type report = {
  patterns : bool array list;
  coverage : float;  (* detected faults / total faults *)
  untestable : Fault.Model.fault list;
  faults_total : int;
  faults_remaining : int;  (* unprocessed because the budget ran out *)
  exhausted : Eda_util.Budget.exhaustion option;
  solver_stats : Solver.stats;  (* summed over all per-fault miter queries *)
}

let zero_stats =
  { Solver.vars = 0; clauses = 0; conflicts = 0; decisions = 0; propagations = 0;
    learnt = 0; learnt_live = 0; restarts = 0; db_reductions = 0; clauses_deleted = 0 }

(* Fold one per-query stats record into the campaign totals: capacity-like
   fields (vars, clauses, live learnts) take the max, work-like fields sum. *)
let merge_stats totals (s : Solver.stats) =
  { Solver.vars = max totals.Solver.vars s.Solver.vars;
    clauses = max totals.Solver.clauses s.Solver.clauses;
    conflicts = totals.Solver.conflicts + s.Solver.conflicts;
    decisions = totals.Solver.decisions + s.Solver.decisions;
    propagations = totals.Solver.propagations + s.Solver.propagations;
    learnt = totals.Solver.learnt + s.Solver.learnt;
    learnt_live = max totals.Solver.learnt_live s.Solver.learnt_live;
    restarts = totals.Solver.restarts + s.Solver.restarts;
    db_reductions = totals.Solver.db_reductions + s.Solver.db_reductions;
    clauses_deleted = totals.Solver.clauses_deleted + s.Solver.clauses_deleted }

(* Number of logical incremental-session lanes. The campaign proceeds in
   waves of up to [session_lanes] faults; wave position [i] is always
   served by lane [i]'s persistent {!Cnf.Stuck_at_session}. The wave
   plan — which faults form each wave, which lane runs which query — is
   a pure function of the fault list and the replayed greedy outcomes,
   never of the executor, so every lane sees the identical query
   sequence whether the wave ran sequentially or on 1/2/8 pool domains.
   Incremental answers are deterministic per query sequence, which is
   what makes the reports bit-identical across executors. Fixed at 8
   (the largest supported pool in the bench matrix), NOT the pool size:
   a lane count that tracked the domain count would change the query
   plan — and with it the learnt-clause history — per configuration. *)
let session_lanes = 8

(* The greedy campaign state threaded through both execution strategies.
   The greedy replay loop itself is the specification: take each wave
   member in order, fault-simulate each fresh pattern against the
   remaining list, drop what it covers. *)
type campaign = {
  mutable patterns_rev : bool array list;
  mutable untestable_acc : Fault.Model.fault list;
  mutable remaining : Fault.Model.fault list;
  mutable exhausted_by : Eda_util.Budget.exhaustion option;
  mutable totals : Solver.stats;
  wsim : Fault.Model.wsim;  (* word-parallel fault-dropping scratch *)
}

(* Word-parallel fault dropping: fault-simulate pattern [p] against
   [rest] in 63-fault batches ({!Fault.Model.detects_many} — one word
   lane per fault) and keep the undetected survivors in order. Replaces
   a per-fault scalar simulation sweep, cutting the dominant non-SAT
   cost of large campaigns ~63-fold. *)
let drop_detected wsim circuit rest p =
  let arr = Array.of_list rest in
  let nf = Array.length arr in
  let acc = ref [] in
  let i = ref 0 in
  while !i < nf do
    let len = min 63 (nf - !i) in
    let batch = Array.sub arr !i len in
    let mask = Fault.Model.detects_many wsim circuit ~faults:batch p in
    for k = 0 to len - 1 do
      if (mask lsr k) land 1 = 0 then acc := batch.(k) :: !acc
    done;
    i := !i + len
  done;
  List.rev !acc

(* Account one processed fault's outcome: telemetry counters, the greedy
   pattern/fault-list update, and the one-step-per-fault budget charge.
   [fault] must be the head of [st.remaining]. *)
let apply_outcome ?budget st circuit fault outcome =
  let module T = Eda_util.Telemetry in
  (match st.remaining with head :: _ -> assert (head == fault) | [] -> assert false);
  let rest = match st.remaining with _ :: r -> r | [] -> [] in
  (match outcome with
   | Abstained e ->
     T.count "atpg.abstained" 1;
     st.exhausted_by <- Some e
   | Untestable ->
     T.count "atpg.untestable" 1;
     st.untestable_acc <- fault :: st.untestable_acc;
     st.remaining <- rest
   | Pattern p ->
     st.patterns_rev <- p :: st.patterns_rev;
     (* Drop every other remaining fault this pattern also detects. *)
     let survivors = drop_detected st.wsim circuit rest p in
     T.count "atpg.detected" 1;
     if T.active () then begin
       let dropped = List.length rest - List.length survivors in
       T.count "atpg.covered_by_simulation" dropped;
       T.count "atpg.faults_dropped" dropped
     end;
     st.remaining <- survivors);
  Option.iter (fun b -> Eda_util.Budget.tick b) budget

let finish_report st ~total =
  let module T = Eda_util.Telemetry in
  let untestable_n = List.length st.untestable_acc in
  let remaining_n = if st.exhausted_by = None then 0 else List.length st.remaining in
  let detected = total - untestable_n - remaining_n in
  let coverage = if total = 0 then 1.0 else Float.of_int detected /. Float.of_int total in
  (match st.exhausted_by with
   | Some e ->
     T.note "atpg.exhausted"
       ~attrs:
         [ ("reason", T.Str (Eda_util.Budget.describe_exhaustion e));
           ("faults_remaining", T.Int remaining_n) ]
   | None -> ());
  T.gauge "atpg.coverage" coverage;
  { patterns = List.rev st.patterns_rev;
    coverage;
    untestable = st.untestable_acc;
    faults_total = total;
    faults_remaining = remaining_n;
    exhausted = st.exhausted_by;
    solver_stats = st.totals }

let fresh_campaign circuit faults =
  { patterns_rev = [];
    untestable_acc = [];
    remaining = faults;
    exhausted_by = None;
    totals = zero_stats;
    wsim = Fault.Model.wsim_create circuit }

let budget_status budget = Option.map Eda_util.Budget.status budget |> Option.join

(* Random-pattern bootstrap: before any SAT query, fault-simulate a
   fixed, deterministic batch of random patterns and keep each one that
   detects at least one remaining fault. Classic two-phase ATPG: random
   patterns cover the easy bulk of the fault list for the cost of a few
   word-parallel circuit simulations (63 fault lanes per sweep), leaving
   the SAT sessions only the hard residue — random-resistant and
   untestable faults. Runs caller-side before the first wave, so it is
   trivially executor-independent (same patterns, same survivors, at
   any domain count). *)
let bootstrap_patterns = 64
let bootstrap_seed = 0x5eed

let random_pattern_bootstrap st circuit =
  let module T = Eda_util.Telemetry in
  let ni = Circuit.num_inputs circuit in
  let rng = Eda_util.Rng.create bootstrap_seed in
  let k = ref 0 in
  while !k < bootstrap_patterns && st.remaining <> [] do
    let p = Array.init ni (fun _ -> Eda_util.Rng.bool rng) in
    let survivors = drop_detected st.wsim circuit st.remaining p in
    let dropped = List.length st.remaining - List.length survivors in
    if dropped > 0 then begin
      st.patterns_rev <- p :: st.patterns_rev;
      st.remaining <- survivors;
      if T.active () then begin
        T.count "atpg.covered_by_simulation" dropped;
        T.count "atpg.faults_dropped" dropped
      end
    end;
    incr k
  done

let fault_universe ?faults circuit =
  match faults with
  | Some fs -> fs
  | None -> Fault.Model.all_stuck_at_faults circuit

(* One lazily-created persistent incremental session per logical lane.
   Lane [i] always serves wave position [i], so within a wave each
   session is touched by exactly one task (no intra-wave contention) and
   across waves a lane's query sequence is plan-determined. The pool's
   all-domains join at the end of each wave is the happens-before edge
   that publishes worker-side session mutation to the next wave. *)
let make_sessions () = Array.make session_lanes None

let session_for sessions circuit lane =
  let module T = Eda_util.Telemetry in
  match sessions.(lane) with
  | Some s ->
    T.count "atpg.session_reused" 1;
    s
  | None ->
    let s = Cnf.Stuck_at_session.create circuit in
    sessions.(lane) <- Some s;
    s

(* Session-backed [generate]: the clean circuit was encoded when the
   lane's session was created; this adds only the fault's cone under a
   fresh clause group, retired after the query. *)
let generate_in session ?budget ?on_stats fault =
  match (fault : Fault.Model.fault) with
  | Fault.Model.Bit_flip _ -> invalid_arg "Atpg: transient faults have no static copy"
  | Fault.Model.Stuck_at { node; value } ->
    (match Cnf.Stuck_at_session.query ?budget ?on_stats session ~node ~value with
     | Cnf.Equivalent -> Untestable
     | Cnf.Counterexample witness -> Pattern witness
     | Cnf.Equiv_unknown e -> Abstained e)

let take n lst =
  let rec go acc n = function
    | x :: rest when n > 0 -> go (x :: acc) (n - 1) rest
    | _ -> List.rev acc
  in
  Array.of_list (go [] n lst)

(* The canonical wave plan shared by both executors. Each round takes
   the first [session_lanes] remaining faults, has [exec] run their
   session queries (sequentially or on the pool — lane [i] of the wave
   always on session [i]), then replays the greedy loop over the
   precomputed outcomes in wave order. A pattern from an earlier wave
   member may cover a later one — its speculative query is then not
   needed for its own fault, but its witness pattern is still recycled:
   if it detects any still-remaining fault it joins the test set and
   drops them (a covered fault's query was part of the plan either way,
   which is exactly why lane histories — and so the reports — are
   executor-independent). Every wave query's solver work is merged into
   the report totals and charged to the main budget during replay, so
   accounting stays on the caller and reflects work actually done. *)
let run_core ~exec ?budget ?faults circuit =
  let module B = Eda_util.Budget in
  let module T = Eda_util.Telemetry in
  let faults = fault_universe ?faults circuit in
  let total = List.length faults in
  let st = fresh_campaign circuit faults in
  random_pattern_bootstrap st circuit;
  while st.exhausted_by = None && st.remaining <> [] do
    match budget_status budget with
    | Some e -> st.exhausted_by <- Some e
    | None ->
      let wave = take session_lanes st.remaining in
      let step_cap = Option.bind budget B.remaining_steps in
      let results = exec ~step_cap wave in
      let i = ref 0 in
      while st.exhausted_by = None && !i < Array.length wave do
        let fault = wave.(!i) in
        let uncovered = List.memq fault st.remaining in
        (match results.(!i) with
         | None ->
           (* task skipped: the batch was stopped under us *)
           if uncovered then
             st.exhausted_by <-
               Some (match budget_status budget with Some e -> e | None -> B.Cancelled)
         | Some (outcome, per_query) ->
           List.iter
             (fun s ->
               st.totals <- merge_stats st.totals s;
               (* the conflicts a sequential run would have ticked from
                  inside the solver *)
               Option.iter (fun b -> B.tick ~cost:s.Solver.conflicts b) budget)
             per_query;
           if uncovered then begin
             match budget_status budget with
             | Some e -> st.exhausted_by <- Some e
             | None -> apply_outcome ?budget st circuit fault outcome
           end
           else begin
             (* Speculative-pattern recycling: the fault was covered by an
                earlier wave member's pattern, but this witness may still
                detect other remaining faults — keep it iff it does. *)
             match outcome with
             | Pattern p when st.remaining <> [] ->
               let survivors = drop_detected st.wsim circuit st.remaining p in
               let dropped = List.length st.remaining - List.length survivors in
               if dropped > 0 then begin
                 st.patterns_rev <- p :: st.patterns_rev;
                 st.remaining <- survivors;
                 if T.active () then begin
                   T.count "atpg.covered_by_simulation" dropped;
                   T.count "atpg.faults_dropped" dropped
                 end
               end
             | Pattern _ | Untestable | Abstained _ -> ()
           end);
        incr i
      done
  done;
  finish_report st ~total

(* Sequential executor: the wave's queries in lane order on the calling
   domain. Per-query budgets are carved (steps capped at the main
   budget's remaining balance at wave start, cancellation polled from
   the main budget) rather than passed through, mirroring the pooled
   executor's task budgets — the replay loop is the single place the
   main budget is charged. *)
let run_seq ?budget ?faults circuit =
  let module B = Eda_util.Budget in
  let sessions = make_sessions () in
  let exec ~step_cap wave =
    let n = Array.length wave in
    let out = Array.make n None in
    for lane = 0 to n - 1 do
      let s = session_for sessions circuit lane in
      let acc = ref [] in
      let tb =
        Option.map (fun b -> B.create ?steps:step_cap ~poll:(fun () -> B.exhausted b) ())
          budget
      in
      let outcome =
        generate_in s ?budget:tb ~on_stats:(fun d -> acc := d :: !acc) wave.(lane)
      in
      out.(lane) <- Some (outcome, List.rev !acc)
    done;
    out
  in
  run_core ~exec ?budget ?faults circuit

(* Pooled executor: the wave's queries as one parallel batch; task index
   = wave position = session lane, so scheduling (domain count, steal
   order, chunk grain) affects only which domain runs a query, never
   which session runs it or in what per-lane order. *)
let run_pooled ~pool ?chunk ?budget ?faults circuit =
  let module P = Eda_util.Pool in
  let sessions = make_sessions () in
  let exec ~step_cap wave =
    (* Adaptive scheduling grain: half a wave's share per domain, so
       every domain claims work at most twice per wave — enough to
       amortize claim bookkeeping while leaving the tail stealable.
       Scheduling-only: results are grain-invariant (Pool contract). *)
    let grain =
      match chunk with
      | Some c -> c
      | None -> max 1 (Array.length wave / (2 * max 1 (P.size pool)))
    in
    P.parallel_map ?budget ~label:"atpg" ~chunk:grain pool
      ~f:(fun ctx (lane, fault) ->
        let s = session_for sessions circuit lane in
        let acc = ref [] in
        let tb = ctx.P.task_budget ?steps:step_cap () in
        let outcome = generate_in s ~budget:tb ~on_stats:(fun d -> acc := d :: !acc) fault in
        (outcome, List.rev !acc))
      (Array.mapi (fun lane f -> (lane, f)) wave)
  in
  run_core ~exec ?budget ?faults circuit

(** Full ATPG run in two phases. A deterministic random-pattern
    bootstrap first fault-simulates a fixed batch of random patterns
    (word-parallel, 63 fault lanes per sweep), keeping each pattern that
    detects a remaining fault — this covers the easy bulk of the fault
    list for a few circuit simulations. The hard residue then goes to
    SAT on persistent incremental sessions: the clean circuit is
    Tseitin-encoded once per session lane, each fault adds only its
    fanout-cone miter under a retired-after-use clause group, and every
    fresh pattern is word-parallel fault-simulated against the remaining
    faults to drop what it covers before any more SAT queries run. [budget] is charged one step per fault processed
    plus one per solver conflict; on exhaustion the run stops and
    reports honest partial coverage with the unprocessed fault count.
    [pool] parallelizes the per-fault session queries (fixed 8-lane
    waves, greedy replay); an unbounded pooled run reports
    bit-identically to the sequential path at any domain count, while a
    budget-truncated pooled run may stop within a wave of where the
    sequential run would. [chunk] overrides the pooled scheduling grain
    (default adaptive: wave size over twice the domain count);
    scheduling-only, results are grain-invariant.

    Telemetry: an [atpg.run] span over the whole campaign with per-fault
    outcome counters ([atpg.detected] for SAT-generated patterns,
    [atpg.covered_by_simulation] and [atpg.faults_dropped] for faults
    swept by fault-simulating a fresh pattern, [atpg.untestable],
    [atpg.abstained]), session counters ([atpg.session_reused] per query
    answered by a warm session, [sat.groups_retired] from the solver,
    per-query [cnf.encode] spans for the encode-vs-solve split) and a
    final [atpg.coverage] gauge. Pooled waves add [pool.batch] spans
    whose [pool.task] children carry the workers' captured telemetry.
    Any pool, including size 1, takes the pooled path so the trace shape
    is uniform across domain counts. *)
let run ?budget ?pool ?chunk ?faults circuit =
  let module T = Eda_util.Telemetry in
  let domains = match pool with Some p -> Eda_util.Pool.size p | None -> 1 in
  T.with_span "atpg.run"
    ~attrs:[ ("nodes", T.Int (Circuit.node_count circuit)); ("domains", T.Int domains) ]
    (fun () ->
      match pool with
      | Some p -> run_pooled ~pool:p ?chunk ?budget ?faults circuit
      | None -> run_seq ?budget ?faults circuit)

(** Checked entry point: lint first, structured errors out. *)
let run_checked ?budget ?pool ?chunk ?faults circuit =
  let open Eda_util.Eda_error in
  let* _ = Netlist.Lint.validate circuit in
  guard ~engine:"atpg" (fun () -> run ?budget ?pool ?chunk ?faults circuit)

(** @deprecated Alias of {!run} (the unified entry point). *)
let run_report ?budget circuit = run ?budget circuit

(** @deprecated [run] minus the campaign span; alias kept for callers
    that managed their own span. *)
let run_report_traced ?budget circuit = run_seq ?budget circuit

(* A copy of [circuit] with [fault] frozen in: the fault site is shadowed
   downstream by a constant carrying the stuck value. Used by redundancy
   removal, which really does want a standalone circuit (the SAT queries
   themselves go through the cone miter and never build one). *)
let faulty_copy circuit fault =
  match (fault : Fault.Model.fault) with
  | Fault.Model.Bit_flip _ -> invalid_arg "Atpg: transient faults have no static copy"
  | Fault.Model.Stuck_at { node; value } ->
    let out = Circuit.create () in
    let n = Circuit.node_count circuit in
    let remap = Array.make n (-1) in
    let name_taken = Hashtbl.create 64 in
    let copy_name i =
      let nm = Circuit.name circuit i in
      if Hashtbl.mem name_taken nm || Circuit.find_by_name out nm <> None then ""
      else begin
        Hashtbl.replace name_taken nm ();
        nm
      end
    in
    for i = 0 to n - 1 do
      let nd = Circuit.node circuit i in
      let fanins = Array.map (fun f -> remap.(f)) nd.Circuit.fanins in
      let id = Circuit.add_node_raw out nd.Circuit.kind fanins (copy_name i) in
      remap.(i) <-
        (if i = node then Circuit.add_node_raw out (Gate.Const value) [||] "" else id)
    done;
    Array.iter (fun (nm, o) -> Circuit.set_output out nm remap.(o)) (Circuit.outputs circuit);
    out

(** Redundancy removal — the classic synthesis-for-test connection: a node
    whose stuck-at-v fault is untestable can be replaced by the constant v
    without changing the function. Security relevance: redundant logic is
    where lazy watermarks and sloppy Trojans hide, and redundancy also
    caps fault coverage; a clean flow sweeps it. Iterates to a fixed
    point. *)
let remove_redundancy circuit =
  let rec pass c budget =
    if budget = 0 then c
    else begin
      let redundant = ref None in
      let n = Circuit.node_count c in
      let i = ref 0 in
      while !redundant = None && !i < n do
        (match Circuit.kind c !i with
         | Gate.Input | Gate.Const _ | Gate.Dff -> ()
         | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
         | Gate.Xor | Gate.Xnor | Gate.Mux ->
           let try_value value =
             if !redundant = None then
               match generate c (Fault.Model.Stuck_at { node = !i; value }) with
               | Untestable -> redundant := Some (!i, value)
               | Pattern _ | Abstained _ -> ()
           in
           try_value false;
           try_value true);
        incr i
      done;
      match !redundant with
      | None -> c
      | Some (node, value) ->
        (* Replace the node with the constant and simplify. *)
        let simplified = Synth.Pass.apply "constant_propagation" (faulty_copy c (Fault.Model.Stuck_at { node; value })) in
        pass simplified (budget - 1)
    end
  in
  pass circuit 32
