(** SAT-based automatic test pattern generation for single stuck-at
    faults on combinational circuits: for each fault, a miter between the
    clean circuit and a faulty copy either yields a detecting pattern or
    proves the fault untestable (redundant logic).

    One entry point, optional capabilities — the repo-wide convention:
    {!run} always works; pass [?budget] to bound it, [?pool] to
    parallelize it, install a {!Eda_util.Telemetry} sink to observe it.
    The engine is incremental: fixed 8-lane waves of persistent
    {!Sat.Cnf.Stuck_at_session}s (clean circuit encoded once per lane,
    per-fault cones under retired clause groups) with word-parallel
    fault dropping of each fresh pattern against the remaining faults.
    An unbounded pooled run reports bit-identically to the sequential
    path at any domain count — the wave plan, and so every lane's query
    history, is executor-independent. *)

type pattern_result =
  | Pattern of bool array  (** input assignment that detects the fault *)
  | Untestable  (** proven redundant: no pattern exists *)
  | Abstained of Eda_util.Budget.exhaustion  (** budget ran out mid-proof *)

(** Generate a test for one stuck-at fault, optionally bounded.
    @raise Invalid_argument on transient (non-stuck-at) faults. *)
val generate :
  ?budget:Eda_util.Budget.t ->
  ?on_stats:(Sat.Solver.stats -> unit) ->
  Netlist.Circuit.t ->
  Fault.Model.fault ->
  pattern_result

(** Outcome of a (possibly bounded) ATPG run. Coverage counts only faults
    with a generated detecting pattern — on exhaustion it is the honest
    partial number, never an extrapolation. *)
type report = {
  patterns : bool array list;
  coverage : float;  (** detected faults / total faults *)
  untestable : Fault.Model.fault list;
  faults_total : int;
  faults_remaining : int;  (** unprocessed because the budget ran out *)
  exhausted : Eda_util.Budget.exhaustion option;
  solver_stats : Sat.Solver.stats;  (** totals over all per-fault miter queries *)
}

(** Full ATPG campaign: greedy pattern compaction (each fresh pattern is
    word-parallel fault-simulated against the remaining faults, 63 per
    sweep), one budget step per fault plus one per solver conflict,
    per-fault incremental-session SAT queries run in parallel when a
    pool is supplied. [faults] restricts the campaign to an explicit
    fault list (default: every stuck-at fault of the circuit) — the
    benchmark harness uses deterministic subsets to keep large circuits
    tractable; coverage is then relative to that list. [chunk] overrides
    the pooled scheduling grain (default adaptive: wave size over twice
    the domain count); scheduling-only — reports are grain-invariant.
    Emits an [atpg.run] span with outcome/session counters and a
    coverage gauge when telemetry is installed. *)
val run :
  ?budget:Eda_util.Budget.t ->
  ?pool:Eda_util.Pool.t ->
  ?chunk:int ->
  ?faults:Fault.Model.fault list ->
  Netlist.Circuit.t ->
  report

(** {!run} behind a netlist lint and an exception guard, for untrusted
    inputs. *)
val run_checked :
  ?budget:Eda_util.Budget.t ->
  ?pool:Eda_util.Pool.t ->
  ?chunk:int ->
  ?faults:Fault.Model.fault list ->
  Netlist.Circuit.t ->
  (report, Eda_util.Eda_error.t) result

(** @deprecated Alias of {!run}. *)
val run_report : ?budget:Eda_util.Budget.t -> Netlist.Circuit.t -> report

(** @deprecated Sequential {!run} without the campaign span, for callers
    that managed their own. *)
val run_report_traced : ?budget:Eda_util.Budget.t -> Netlist.Circuit.t -> report

(** Redundancy removal: iteratively replace nodes whose stuck-at faults
    are untestable by the stuck constant and re-simplify — the classic
    synthesis-for-test connection (redundant logic hides watermarks and
    Trojans, and caps fault coverage). *)
val remove_redundancy : Netlist.Circuit.t -> Netlist.Circuit.t
