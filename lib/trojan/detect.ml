(** Trojan detection (Table II, testing and timing/power rows).

    - MERO [40]: statistical N-detect test generation — generate patterns
      until every rare condition has been individually activated at least N
      times; higher N sharply raises the chance that some pattern activates
      the *conjunction* and exposes the Trojan.
    - Path-delay fingerprinting [35]: compare STA fingerprints of suspect
      chips against the golden distribution under process variation.
    - IDDQ leakage analysis [60]: quiescent-current outlier detection.
    - Ring-oscillator sensor network [28]: RO frequencies shift when a
      Trojan loads nearby nets. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Rng = Eda_util.Rng
module Stats = Eda_util.Stats

(** MERO-style N-detect pattern generation on the CLEAN design: the
    defender knows the rare conditions worth exercising but not the Trojan.
    Returns the pattern set. *)
let mero_patterns rng ~n_detect ~rare ~max_patterns circuit =
  let ni = Circuit.num_inputs circuit in
  let rare_arr = Array.of_list rare in
  let hits = Array.make (Array.length rare_arr) 0 in
  let patterns = ref [] in
  let all_done () = Array.for_all (fun h -> h >= n_detect) hits in
  let attempts = ref 0 in
  (* Candidate pattern and net values are generated into reused buffers;
     only patterns that advance a rare-condition counter are copied out. *)
  let p = Array.make ni false in
  let values = Array.make (Circuit.node_count circuit) false in
  while (not (all_done ())) && !attempts < max_patterns do
    incr attempts;
    for i = 0 to ni - 1 do
      p.(i) <- Rng.bool rng
    done;
    Netlist.Sim.eval_all_into circuit p ~into:values;
    let useful = ref false in
    Array.iteri
      (fun k (net, v) ->
        if hits.(k) < n_detect && values.(net) = v then begin
          hits.(k) <- hits.(k) + 1;
          useful := true
        end)
      rare_arr;
    if !useful then patterns := Array.copy p :: !patterns
  done;
  List.rev !patterns

(** Functional detection experiment: does the MERO pattern set expose the
    Trojan (any pattern making infected and clean outputs differ)? *)
let functional_detect clean trojan patterns =
  List.exists (fun p -> Insert.exposed_by clean trojan p) patterns

(** Path-delay fingerprint: the vector of STA arrival times at each output
    under per-chip process variation. A Trojan's extra load inflates delays
    on paths through tapped nets. [extra_load_ps] models the parasitic
    loading a trigger tap adds to each tapped net. *)
let delay_fingerprint rng ~sigma ~extra_load_ps circuit ~tapped =
  let tapped_set = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace tapped_set n ()) tapped;
  let base = Timing.Sta.varied_delays rng ~sigma circuit in
  let delay_of node kind =
    let d = base node kind in
    if Hashtbl.mem tapped_set node then d +. extra_load_ps else d
  in
  let report = Timing.Sta.analyze ~delay_of circuit in
  Array.map (fun (_, o) -> report.Timing.Sta.arrival.(o)) (Circuit.outputs circuit)

(** Fingerprint-based detection: golden population vs suspect population;
    a suspect is flagged when any output delay deviates more than
    [threshold_sigmas] from the golden mean. Returns (true-positive rate,
    false-positive rate). *)
let fingerprint_detection rng ~chips ~sigma ~extra_load_ps ~threshold_sigmas circuit ~tapped =
  let golden =
    Array.init chips (fun _ -> delay_fingerprint rng ~sigma ~extra_load_ps:0.0 circuit ~tapped:[])
  in
  let num_outputs = Circuit.num_outputs circuit in
  let mean = Array.make num_outputs 0.0 and sd = Array.make num_outputs 0.0 in
  for o = 0 to num_outputs - 1 do
    let col = Array.map (fun fp -> fp.(o)) golden in
    mean.(o) <- Stats.mean col;
    sd.(o) <- Float.max 1e-9 (Stats.std col)
  done;
  let flagged fp =
    let any = ref false in
    Array.iteri
      (fun o d -> if Float.abs (d -. mean.(o)) > threshold_sigmas *. sd.(o) then any := true)
      fp;
    !any
  in
  let tp = ref 0 and fp_count = ref 0 in
  for _ = 1 to chips do
    let infected_fp = delay_fingerprint rng ~sigma ~extra_load_ps circuit ~tapped in
    if flagged infected_fp then incr tp;
    let clean_fp = delay_fingerprint rng ~sigma ~extra_load_ps:0.0 circuit ~tapped:[] in
    if flagged clean_fp then incr fp_count
  done;
  ( Float.of_int !tp /. Float.of_int chips,
    Float.of_int !fp_count /. Float.of_int chips )

(** IDDQ outlier detection: quiescent-current population of golden chips vs
    a suspect; flags when the suspect's mean IDDQ across patterns deviates
    beyond [threshold_sigmas]. *)
let iddq_detection rng ~chips ~patterns ~threshold_sigmas ~clean ~infected =
  let ni = Circuit.num_inputs clean in
  let inputs = Array.make ni false in
  let measure circuit temperature_factor =
    let scratch = Array.make (Circuit.node_count circuit) false in
    let acc = ref 0.0 in
    for _ = 1 to patterns do
      for i = 0 to ni - 1 do
        inputs.(i) <- Rng.bool rng
      done;
      acc := !acc
             +. Power.Model.iddq_sample rng ~scratch circuit ~inputs ~noise_sigma:0.05
                  ~temperature_factor
    done;
    !acc /. Float.of_int patterns
  in
  let golden =
    Array.init chips (fun _ ->
        measure clean (Rng.gaussian_scaled rng ~mean:1.0 ~sigma:0.02))
  in
  let mu = Stats.mean golden and sd = Float.max 1e-9 (Stats.std golden) in
  let tp = ref 0 and fp = ref 0 in
  for _ = 1 to chips do
    let suspect = measure infected (Rng.gaussian_scaled rng ~mean:1.0 ~sigma:0.02) in
    if Float.abs (suspect -. mu) > threshold_sigmas *. sd then incr tp;
    let fresh_clean = measure clean (Rng.gaussian_scaled rng ~mean:1.0 ~sigma:0.02) in
    if Float.abs (fresh_clean -. mu) > threshold_sigmas *. sd then incr fp
  done;
  ( Float.of_int !tp /. Float.of_int chips,
    Float.of_int !fp /. Float.of_int chips )

(** Ring-oscillator sensor model [28]: an RO's period is the sum of its
    stage delays; a Trojan tapping a net in the RO's region adds load and
    slows it. Detection compares per-region RO frequencies to golden. *)
let ro_sensor_shift rng ~stages ~sigma ~extra_load_ps =
  let golden =
    Array.init 64 (fun _ ->
        let stage_delays =
          Array.init stages (fun _ -> Rng.gaussian_scaled rng ~mean:20.0 ~sigma:(sigma *. 20.0))
        in
        Array.fold_left ( +. ) 0.0 stage_delays)
  in
  let mu = Stats.mean golden and sd = Float.max 1e-9 (Stats.std golden) in
  let infected_period = mu +. extra_load_ps in
  (infected_period -. mu) /. sd
