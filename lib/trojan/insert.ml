(** Hardware Trojan insertion (Sec. II-A.4, [13]): a malicious modification
    with a stealthy *trigger* (a conjunction of rare internal signal
    values, so functional testing almost never fires it) and a *payload*
    (here: XOR-flip of a primary output — an integrity Trojan, or an
    always-on parasitic load — a side-channel/reliability Trojan).

    Insertion mimics a fab- or design-time adversary: it reads signal
    probabilities, picks the rarest compatible nets and splices the trigger
    cone in front of one output. *)

module Circuit = Netlist.Circuit
module Gate = Netlist.Gate
module Rng = Eda_util.Rng

type trojan = {
  infected : Circuit.t;
  trigger_nets : (int * bool) list;  (* (net, required value) in the CLEAN circuit *)
  trigger_node : int;  (* trigger output in the infected circuit *)
  victim_output : int;  (* index of the flipped output *)
  payload : payload;
}

and payload =
  | Flip_output  (* functional sabotage: victim output inverted on trigger *)
  | Leak_parasitic  (* always-on: extra switching load, no functional change *)

(** Estimate per-net one-probability and return the [count] rarest
    (value, polarity) conditions, excluding inputs (testable directly). *)
let rare_conditions rng ~patterns ~count circuit =
  let probs = Netlist.Sim.signal_probabilities rng ~patterns circuit in
  let scored = ref [] in
  Array.iteri
    (fun i p ->
      match Circuit.kind circuit i with
      | Gate.Input | Gate.Const _ | Gate.Dff -> ()
      | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
      | Gate.Xor | Gate.Xnor | Gate.Mux ->
        (* Rareness of value 1 is p; of value 0 is 1-p. *)
        scored := (Float.min p (1.0 -. p), i, p < 0.5) :: !scored)
    probs;
  let sorted = List.sort compare !scored in
  let rec take k acc = function
    | [] -> List.rev acc
    | (_, i, v) :: tl -> if k = 0 then List.rev acc else take (k - 1) ((i, v) :: acc) tl
  in
  take count [] sorted

(* Is the conjunction of [conditions] satisfiable in [source]? A trigger
   over contradictory rare conditions would never fire — stealthy but also
   pointless; a real adversary verifies activability. *)
let conditions_satisfiable source conditions =
  let env = Sat.Cnf.encode source in
  match
    List.iter
      (fun (net, value) ->
        Sat.Solver.add_clause env.Sat.Cnf.solver [ Sat.Cnf.lit env ~node:net ~sign:value ])
      conditions
  with
  | () -> Sat.Solver.solve env.Sat.Cnf.solver = Sat.Solver.Sat
  | exception Sat.Solver.Unsat_root -> false

(** Insert a Trojan with a [trigger_width]-net AND trigger over rare
    conditions, greedily chosen rarest-first under the constraint that the
    conjunction stays satisfiable (SAT-checked), so the Trojan is stealthy
    yet activable. The infected circuit keeps the clean interface. *)
let insert rng ?(payload = Flip_output) ~trigger_width ~patterns source =
  let candidates = rare_conditions rng ~patterns ~count:(trigger_width + 12) source in
  (* Greedy joint-probability minimization: indicator bitsets of each
     condition over a random pattern matrix; each step adds the candidate
     that shrinks the conjunction's support most, subject to the
     conjunction staying SAT-satisfiable. *)
  let ni = Circuit.num_inputs source in
  let words = max 4 ((patterns + 62) / 63) in
  (* The per-word value matrix is retained (indicator bitsets index into
     it); only the input word vector is scratch, so hoist it. *)
  let value_words = Array.make words [||] in
  let inputs = Array.make ni 0 in
  for w = 0 to words - 1 do
    for i = 0 to ni - 1 do
      inputs.(i) <- Eda_util.Rng.bits63 rng
    done;
    value_words.(w) <- Netlist.Sim.eval_all_word source inputs
  done;
  let indicator (net, v) =
    Array.map
      (fun vals -> if v then vals.(net) else Stdlib.lnot vals.(net) land 0x7FFFFFFFFFFFFFFF)
      value_words
  in
  let support ind =
    Array.fold_left (fun acc w -> acc + Eda_util.Stats.popcount w) 0 ind
  in
  let intersect a b = Array.init (Array.length a) (fun k -> a.(k) land b.(k)) in
  let conditions =
    let rec pick chosen acc_ind remaining =
      if List.length chosen = trigger_width then List.rev chosen
      else begin
        let scored =
          List.filter_map
            (fun cond ->
              if List.mem cond chosen then None
              else begin
                let joint = intersect acc_ind (indicator cond) in
                if conditions_satisfiable source (cond :: chosen) then
                  Some (support joint, cond, joint)
                else None
              end)
            remaining
        in
        match List.sort compare scored with
        | [] -> List.rev chosen  (* no further compatible condition *)
        | (_, cond, joint) :: _ -> pick (cond :: chosen) joint remaining
      end
    in
    let all_ones = Array.make words 0x7FFFFFFFFFFFFFFF in
    pick [] all_ones candidates
  in
  assert (List.length conditions = trigger_width);
  let c = Circuit.copy source in
  (* Build the trigger: AND over the conditioned nets. *)
  let condition_nodes =
    List.map
      (fun (net, value) ->
        if value then net else Circuit.add_gate c Gate.Not [ net ])
      conditions
  in
  let trigger = Circuit.reduce c Gate.And condition_nodes in
  let outs = Circuit.outputs source in
  let victim = Rng.int rng (Array.length outs) in
  (* Outputs can't be re-pointed in place; build the payload, then rebuild
     the circuit with the victim output re-routed through it. *)
  let _, o_victim = outs.(victim) in
  let payload_node =
    match payload with
    | Flip_output -> Circuit.add_gate ~name:"troj_payload" c Gate.Xor [ o_victim; trigger ]
    | Leak_parasitic ->
      (* A chain of buffers toggled by the trigger cone: pure load. *)
      let b1 = Circuit.add_gate c Gate.Buf [ trigger ] in
      let b2 = Circuit.add_gate c Gate.Buf [ b1 ] in
      Circuit.add_gate ~name:"troj_payload" c Gate.Buf [ b2 ]
  in
  let rebuilt = Circuit.create () in
  let remap = Array.make (Circuit.node_count c) (-1) in
  for i = 0 to Circuit.node_count c - 1 do
    let nd = Circuit.node c i in
    let fanins =
      if nd.Circuit.kind = Gate.Dff then [| 0 |]
      else Array.map (fun f -> remap.(f)) nd.Circuit.fanins
    in
    remap.(i) <- Circuit.add_node_raw rebuilt nd.Circuit.kind fanins nd.Circuit.name
  done;
  for i = 0 to Circuit.node_count c - 1 do
    if Circuit.kind c i = Gate.Dff then
      Circuit.connect_dff rebuilt remap.(i) ~d:remap.((Circuit.fanins c i).(0))
  done;
  Array.iteri
    (fun k (nm, o) ->
      match payload with
      | Flip_output when k = victim ->
        Circuit.set_output rebuilt nm remap.(payload_node)
      | Flip_output | Leak_parasitic -> Circuit.set_output rebuilt nm remap.(o))
    outs;
  (* Parasitic payload must stay live: give it a pseudo-output. *)
  (match payload with
   | Leak_parasitic -> Circuit.set_output rebuilt "troj_load" remap.(payload_node)
   | Flip_output -> ());
  { infected = rebuilt;
    trigger_nets = conditions;
    trigger_node = remap.(trigger);
    victim_output = victim;
    payload }

(** Trigger activation probability under random stimuli (ground truth for
    detection experiments). *)
let trigger_probability rng trojan ~patterns =
  let c = trojan.infected in
  let ni = Circuit.num_inputs c in
  let hits = ref 0 in
  let inputs = Array.make ni false in
  let values = Array.make (Circuit.node_count c) false in
  for _ = 1 to patterns do
    for i = 0 to ni - 1 do
      inputs.(i) <- Rng.bool rng
    done;
    Netlist.Sim.eval_all_into c inputs ~into:values;
    if values.(trojan.trigger_node) then incr hits
  done;
  Float.of_int !hits /. Float.of_int patterns

(** Does [inputs] expose the Trojan (infected output differs from clean)? *)
let exposed_by clean trojan inputs =
  Netlist.Sim.eval clean inputs
  <> Array.sub (Netlist.Sim.eval trojan.infected inputs) 0 (Circuit.num_outputs clean)
