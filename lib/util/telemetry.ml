(** Zero-dependency tracing/metrics core. See the interface for the
    design rationale; the implementation notes that matter:

    - the active context is ambient *per domain* (domain-local storage)
      so engines carry no telemetry parameter; the disabled fast path is
      one DLS read and one match. Worker domains spawned by {!Pool} never
      inherit the installing domain's context, so they are telemetry-
      silent by construction and the mutable registries are only ever
      touched from the domain that installed the sink — no cross-domain
      data races;
    - span lifecycle is exception-safe: an escaping exception ends the
      span with an [error] attribute and re-raises;
    - counters/gauges/histograms aggregate in per-installation registries
      (histograms through {!Stats.moments}) in addition to streaming
      events, so totals are queryable without replaying the trace. *)

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type attrs = (string * value) list

type kind =
  | Span_start
  | Span_end
  | Point
  | Count
  | Gauge
  | Hist

type event = {
  kind : kind;
  span : int;
  parent : int;
  name : string;
  time : float;
  value : float;
  attrs : attrs;
}

type sink = {
  emit : event -> unit;
  flush : unit -> unit;
}

let null = { emit = ignore; flush = ignore }

let memory_sink () =
  let events = ref [] in
  ( { emit = (fun e -> events := e :: !events); flush = ignore },
    fun () -> List.rev !events )

type ctx = {
  sink : sink;
  clock : unit -> float;
  mutable next_id : int;
  mutable stack : (int * float) list;  (* (span id, start time), innermost first *)
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  moments : (string, Stats.moments) Hashtbl.t;
}

(* One ambient context per domain. A plain global ref would be shared by
   every domain in OCaml 5, and the ctx registries (Hashtbl, span stack)
   are not thread-safe; domain-local storage keeps the ambient-context
   convenience while confining each ctx to the domain that installed it. *)
let current : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let get_current () = Domain.DLS.get current

let set_current v = Domain.DLS.set current v

let active () = get_current () <> None

let enclosing c = match c.stack with [] -> 0 | (id, _) :: _ -> id

(* --- recording --------------------------------------------------------- *)

let with_span ?(attrs = []) name f =
  match get_current () with
  | None -> f ()
  | Some c ->
    let id = c.next_id in
    c.next_id <- id + 1;
    let parent = enclosing c in
    let t0 = c.clock () in
    c.sink.emit { kind = Span_start; span = id; parent; name; time = t0; value = 0.0; attrs };
    c.stack <- (id, t0) :: c.stack;
    let finish error =
      (* Pop down to (and including) this span: a leaked child cannot
         corrupt the ancestors' bookkeeping. *)
      let rec pop = function
        | (i, start) :: rest ->
          c.stack <- rest;
          if i = id then Some start else pop rest
        | [] -> None
      in
      let start = pop c.stack in
      let t1 = c.clock () in
      c.sink.emit
        { kind = Span_end;
          span = id;
          parent;
          name;
          time = t1;
          value = (match start with Some s -> t1 -. s | None -> 0.0);
          attrs = (match error with None -> [] | Some msg -> [ ("error", Str msg) ]) }
    in
    (match f () with
     | v ->
       finish None;
       v
     | exception e ->
       finish (Some (Printexc.to_string e));
       raise e)

let note ?(attrs = []) name =
  match get_current () with
  | None -> ()
  | Some c ->
    c.sink.emit
      { kind = Point; span = enclosing c; parent = 0; name; time = c.clock (); value = 0.0; attrs }

let count name n =
  match get_current () with
  | None -> ()
  | Some c ->
    (match Hashtbl.find_opt c.counters name with
     | Some r -> r := !r + n
     | None -> Hashtbl.replace c.counters name (ref n));
    if n <> 0 then
      c.sink.emit
        { kind = Count;
          span = enclosing c;
          parent = 0;
          name;
          time = c.clock ();
          value = Float.of_int n;
          attrs = [] }

let gauge name v =
  match get_current () with
  | None -> ()
  | Some c ->
    Hashtbl.replace c.gauges name v;
    c.sink.emit
      { kind = Gauge; span = enclosing c; parent = 0; name; time = c.clock (); value = v; attrs = [] }

let observe name x =
  match get_current () with
  | None -> ()
  | Some c ->
    let m =
      match Hashtbl.find_opt c.moments name with
      | Some m -> m
      | None ->
        let m = Stats.moments_create () in
        Hashtbl.replace c.moments name m;
        m
    in
    Stats.moments_add m x

(* --- registry access ---------------------------------------------------- *)

let counter_total name =
  match get_current () with
  | None -> 0
  | Some c -> (match Hashtbl.find_opt c.counters name with Some r -> !r | None -> 0)

let counter_totals () =
  match get_current () with
  | None -> []
  | Some c ->
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) c.counters []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

let gauge_last name =
  match get_current () with None -> None | Some c -> Hashtbl.find_opt c.gauges name

let observed name =
  match get_current () with
  | None -> None
  | Some c ->
    Option.map
      (fun m ->
        (m.Stats.n, Stats.moments_mean m, sqrt (Stats.moments_variance m)))
      (Hashtbl.find_opt c.moments name)

(* --- installation ------------------------------------------------------- *)

let emit_hist_summaries c =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) c.moments []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (name, m) ->
         let mean = Stats.moments_mean m in
         c.sink.emit
           { kind = Hist;
             span = 0;
             parent = 0;
             name;
             time = c.clock ();
             value = mean;
             attrs =
               [ ("n", Int m.Stats.n);
                 ("mean", Float mean);
                 ("std", Float (sqrt (Stats.moments_variance m))) ] })

let with_sink ?(clock = Sys.time) sink f =
  if sink == null then f ()
  else begin
    let ctx =
      { sink;
        clock;
        next_id = 1;
        stack = [];
        counters = Hashtbl.create 16;
        gauges = Hashtbl.create 16;
        moments = Hashtbl.create 16 }
    in
    let saved = get_current () in
    set_current (Some ctx);
    Fun.protect
      ~finally:(fun () ->
        emit_hist_summaries ctx;
        sink.flush ();
        set_current saved)
      f
  end

(* --- JSON --------------------------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | JBool of bool
    | JInt of int
    | JFloat of float
    | JStr of string
    | JList of t list
    | JObj of (string * t) list

  (* Strings are emitted as pure ASCII: control characters and every
     code point above U+007F become spec-compliant \uXXXX escapes (a
     surrogate pair beyond the BMP), so the JSONL survives strict
     parsers regardless of transport encoding. Input is decoded as
     UTF-8; malformed sequences degrade to U+FFFD per offending byte
     rather than corrupting the emitted document. *)
  let add_u16 buf code = Buffer.add_string buf (Printf.sprintf "\\u%04x" code)

  let add_code_point buf cp =
    if cp <= 0xFFFF then add_u16 buf cp
    else begin
      let v = cp - 0x10000 in
      add_u16 buf (0xD800 lor (v lsr 10));
      add_u16 buf (0xDC00 lor (v land 0x3FF))
    end

  (* Decode one UTF-8 sequence starting at [i]; returns (code point,
     bytes consumed), or (0xFFFD, 1) when the bytes are not UTF-8. *)
  let decode_utf8 s i =
    let n = String.length s in
    let byte k = Char.code s.[k] in
    let cont k = k < n && byte k land 0xC0 = 0x80 in
    let b0 = byte i in
    if b0 < 0x80 then (b0, 1)
    else if b0 land 0xE0 = 0xC0 && cont (i + 1) then begin
      let cp = ((b0 land 0x1F) lsl 6) lor (byte (i + 1) land 0x3F) in
      if cp >= 0x80 then (cp, 2) else (0xFFFD, 1) (* overlong *)
    end
    else if b0 land 0xF0 = 0xE0 && cont (i + 1) && cont (i + 2) then begin
      let cp =
        ((b0 land 0x0F) lsl 12)
        lor ((byte (i + 1) land 0x3F) lsl 6)
        lor (byte (i + 2) land 0x3F)
      in
      if cp >= 0x800 && not (cp >= 0xD800 && cp <= 0xDFFF) then (cp, 3)
      else (0xFFFD, 1) (* overlong or stray surrogate *)
    end
    else if b0 land 0xF8 = 0xF0 && cont (i + 1) && cont (i + 2) && cont (i + 3) then begin
      let cp =
        ((b0 land 0x07) lsl 18)
        lor ((byte (i + 1) land 0x3F) lsl 12)
        lor ((byte (i + 2) land 0x3F) lsl 6)
        lor (byte (i + 3) land 0x3F)
      in
      if cp >= 0x10000 && cp <= 0x10FFFF then (cp, 4) else (0xFFFD, 1)
    end
    else (0xFFFD, 1)

  let escape buf s =
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (match s.[!i] with
       | '"' -> Buffer.add_string buf "\\\""; incr i
       | '\\' -> Buffer.add_string buf "\\\\"; incr i
       | '\n' -> Buffer.add_string buf "\\n"; incr i
       | '\r' -> Buffer.add_string buf "\\r"; incr i
       | '\t' -> Buffer.add_string buf "\\t"; incr i
       | c when Char.code c < 0x20 ->
         add_u16 buf (Char.code c);
         incr i
       | c when Char.code c < 0x80 -> Buffer.add_char buf c; incr i
       | _ ->
         let cp, used = decode_utf8 s !i in
         add_code_point buf cp;
         i := !i + used)
    done

  (* Non-finite values have no JSON number form; [null] round-trips to
     [nan]. Integral floats keep a ".0" so the parser preserves the
     int/float distinction; "%.17g" round-trips every other double. *)
  let float_repr v =
    if Float.is_nan v || Float.abs v = Float.infinity then "null"
    else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
    else Printf.sprintf "%.17g" v

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | JBool b -> Buffer.add_string buf (if b then "true" else "false")
    | JInt n -> Buffer.add_string buf (string_of_int n)
    | JFloat v -> Buffer.add_string buf (float_repr v)
    | JStr s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | JList xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
    | JObj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 128 in
    write buf t;
    Buffer.contents buf

  exception Bad of string

  (* Append one code point as UTF-8 (input validated by the caller). *)
  let buffer_add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end

  (* Minimal recursive-descent parser for standard JSON as this module
     emits it; \uXXXX escapes cover the full Unicode range (surrogate
     pairs included) and decode to UTF-8 bytes. *)
  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect ch =
      if peek () = Some ch then advance () else fail (Printf.sprintf "expected '%c'" ch)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> advance ()
          | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                 advance ();
                 let read_u16 () =
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   if not (String.for_all (function
                             | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
                             | _ -> false) hex)
                   then fail "bad \\u escape";
                   pos := !pos + 4;
                   int_of_string ("0x" ^ hex)
                 in
                 let code = read_u16 () in
                 if code >= 0xD800 && code <= 0xDBFF then begin
                   (* High surrogate: a low surrogate must follow. *)
                   if
                     !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let low = read_u16 () in
                     if low < 0xDC00 || low > 0xDFFF then fail "unpaired high surrogate";
                     buffer_add_utf8 buf
                       (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
                   end
                   else fail "unpaired high surrogate"
                 end
                 else if code >= 0xDC00 && code <= 0xDFFF then fail "unpaired low surrogate"
                 else buffer_add_utf8 buf code
               | _ -> fail "unknown escape");
            go ()
          | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
        match float_of_string_opt text with
        | Some v -> JFloat v
        | None -> fail "malformed number"
      else
        match int_of_string_opt text with
        | Some v -> JInt v
        | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> JStr (parse_string ())
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          JObj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          JObj (List.rev !fields)
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          JList []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          JList (List.rev !items)
        end
      | Some 't' -> literal "true" (JBool true)
      | Some 'f' -> literal "false" (JBool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg
end

let kind_name = function
  | Span_start -> "span_start"
  | Span_end -> "span_end"
  | Point -> "event"
  | Count -> "count"
  | Gauge -> "gauge"
  | Hist -> "hist"

let kind_of_name = function
  | "span_start" -> Some Span_start
  | "span_end" -> Some Span_end
  | "event" -> Some Point
  | "count" -> Some Count
  | "gauge" -> Some Gauge
  | "hist" -> Some Hist
  | _ -> None

let json_of_value = function
  | Bool b -> Json.JBool b
  | Int n -> Json.JInt n
  | Float v -> Json.JFloat v
  | Str s -> Json.JStr s

let value_of_json = function
  | Json.JBool b -> Ok (Bool b)
  | Json.JInt n -> Ok (Int n)
  | Json.JFloat v -> Ok (Float v)
  | Json.JStr s -> Ok (Str s)
  | Json.Null | Json.JList _ | Json.JObj _ -> Error "unsupported attribute value"

let event_to_json e =
  Json.JObj
    ([ ("kind", Json.JStr (kind_name e.kind));
       ("span", Json.JInt e.span);
       ("parent", Json.JInt e.parent);
       ("name", Json.JStr e.name);
       ("t", Json.JFloat e.time);
       ("v", Json.JFloat e.value) ]
    @
    if e.attrs = [] then []
    else [ ("attrs", Json.JObj (List.map (fun (k, v) -> (k, json_of_value v)) e.attrs)) ])

let event_of_json json =
  let ( let* ) = Result.bind in
  match json with
  | Json.JObj fields ->
    let find key = List.assoc_opt key fields in
    let* kind =
      match find "kind" with
      | Some (Json.JStr s) ->
        (match kind_of_name s with
         | Some k -> Ok k
         | None -> Error (Printf.sprintf "unknown event kind %S" s))
      | Some _ -> Error "field \"kind\" must be a string"
      | None -> Error "missing field \"kind\""
    in
    let int_field key =
      match find key with
      | Some (Json.JInt n) -> Ok n
      | Some _ -> Error (Printf.sprintf "field %S must be an integer" key)
      | None -> Error (Printf.sprintf "missing field %S" key)
    in
    let float_field key =
      match find key with
      | Some (Json.JFloat v) -> Ok v
      | Some (Json.JInt n) -> Ok (Float.of_int n)
      | Some Json.Null -> Ok Float.nan
      | Some _ -> Error (Printf.sprintf "field %S must be a number" key)
      | None -> Error (Printf.sprintf "missing field %S" key)
    in
    let* span = int_field "span" in
    let* parent = int_field "parent" in
    let* name =
      match find "name" with
      | Some (Json.JStr s) -> Ok s
      | Some _ -> Error "field \"name\" must be a string"
      | None -> Error "missing field \"name\""
    in
    let* time = float_field "t" in
    let* value = float_field "v" in
    let* attrs =
      match find "attrs" with
      | None -> Ok []
      | Some (Json.JObj kvs) ->
        List.fold_left
          (fun acc (k, jv) ->
            let* acc = acc in
            let* v = value_of_json jv in
            Ok ((k, v) :: acc))
          (Ok []) kvs
        |> Result.map List.rev
      | Some _ -> Error "field \"attrs\" must be an object"
    in
    Ok { kind; span; parent; name; time; value; attrs }
  | _ -> Error "event line is not a JSON object"

let event_to_line e = Json.to_string (event_to_json e)

let event_of_line line =
  match Json.parse line with
  | Error msg -> Error msg
  | Ok json -> event_of_json json

let jsonl_sink oc =
  { emit =
      (fun e ->
        output_string oc (event_to_line e);
        output_char oc '\n');
    flush = (fun () -> flush oc) }

(* --- trace reconstruction ---------------------------------------------- *)

module Trace = struct
  type span = {
    id : int;
    parent : int;
    name : string;
    start : float;
    mutable duration : float option;
    attrs : attrs;
    mutable end_attrs : attrs;
    mutable children : span list;
    mutable counters : (string * float) list;
    mutable gauges : (string * float) list;
    mutable notes : (string * attrs) list;
  }

  type t = {
    roots : span list;
    span_count : int;
    event_count : int;
    counter_totals : (string * float) list;
    gauge_last : (string * float) list;
    hists : (string * attrs) list;
  }

  let bump assoc name v =
    match List.assoc_opt name assoc with
    | Some prev -> (name, prev +. v) :: List.remove_assoc name assoc
    | None -> (name, v) :: assoc

  let set assoc name v = (name, v) :: List.remove_assoc name assoc

  let of_events events =
    let spans : (int, span) Hashtbl.t = Hashtbl.create 64 in
    let roots = ref [] in
    let counter_totals = ref [] in
    let gauge_last = ref [] in
    let hists = ref [] in
    let event_count = ref 0 in
    let error = ref None in
    let fail msg = if !error = None then error := Some msg in
    let owner ev_kind id =
      if id = 0 then None
      else
        match Hashtbl.find_opt spans id with
        | Some sp -> Some sp
        | None ->
          fail (Printf.sprintf "%s references span %d which never started" ev_kind id);
          None
    in
    List.iter
      (fun e ->
        if !error = None then begin
          incr event_count;
          match e.kind with
          | Span_start ->
            if Hashtbl.mem spans e.span then
              fail (Printf.sprintf "span %d started twice" e.span)
            else begin
              let sp =
                { id = e.span;
                  parent = e.parent;
                  name = e.name;
                  start = e.time;
                  duration = None;
                  attrs = e.attrs;
                  end_attrs = [];
                  children = [];
                  counters = [];
                  gauges = [];
                  notes = [] }
              in
              Hashtbl.replace spans e.span sp;
              match owner "span_start" e.parent with
              | Some parent -> parent.children <- sp :: parent.children
              | None -> if e.parent = 0 then roots := sp :: !roots
            end
          | Span_end ->
            (match owner "span_end" e.span with
             | Some sp ->
               if sp.duration <> None then fail (Printf.sprintf "span %d ended twice" e.span)
               else begin
                 sp.duration <- Some e.value;
                 sp.end_attrs <- e.attrs
               end
             | None -> ())
          | Count ->
            counter_totals := bump !counter_totals e.name e.value;
            (match owner "count" e.span with
             | Some sp -> sp.counters <- bump sp.counters e.name e.value
             | None -> ())
          | Gauge ->
            gauge_last := set !gauge_last e.name e.value;
            (match owner "gauge" e.span with
             | Some sp -> sp.gauges <- set sp.gauges e.name e.value
             | None -> ())
          | Point ->
            (match owner "event" e.span with
             | Some sp -> sp.notes <- (e.name, e.attrs) :: sp.notes
             | None -> ())
          | Hist -> hists := (e.name, e.attrs) :: !hists
        end)
      events;
    match !error with
    | Some msg -> Error msg
    | None ->
      let rec finalize sp =
        sp.children <- List.rev sp.children;
        sp.counters <- List.rev sp.counters;
        sp.gauges <- List.rev sp.gauges;
        sp.notes <- List.rev sp.notes;
        List.iter finalize sp.children
      in
      let roots = List.rev !roots in
      List.iter finalize roots;
      Ok
        { roots;
          span_count = Hashtbl.length spans;
          event_count = !event_count;
          counter_totals = List.sort compare (List.rev !counter_totals);
          gauge_last = List.rev !gauge_last;
          hists = List.rev !hists }

  let of_string text =
    let lines = String.split_on_char '\n' text in
    let ( let* ) = Result.bind in
    let* events =
      List.fold_left
        (fun acc (lineno, line) ->
          let* acc = acc in
          if String.trim line = "" then Ok acc
          else
            match event_of_line line with
            | Ok e -> Ok (e :: acc)
            | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
        (Ok [])
        (List.mapi (fun i l -> (i + 1, l)) lines)
      |> Result.map List.rev
    in
    of_events events

  let of_file path =
    match In_channel.with_open_text path In_channel.input_all with
    | text -> of_string text
    | exception Sys_error msg -> Error msg

  let find_spans t name =
    let acc = ref [] in
    let rec go sp =
      if sp.name = name then acc := sp :: !acc;
      List.iter go sp.children
    in
    List.iter go t.roots;
    List.rev !acc

  (* --- profile printing ------------------------------------------------ *)

  let pp_value fmt = function
    | Bool b -> Format.fprintf fmt "%b" b
    | Int n -> Format.fprintf fmt "%d" n
    | Float v -> Format.fprintf fmt "%g" v
    | Str s -> Format.fprintf fmt "%s" s

  let pp_attrs fmt attrs =
    List.iteri
      (fun i (k, v) ->
        Format.fprintf fmt "%s%s=%a" (if i > 0 then ", " else "") k pp_value v)
      attrs

  let pretty_duration d =
    if d >= 1.0 then Printf.sprintf "%8.3f s " d
    else if d >= 1e-3 then Printf.sprintf "%8.3f ms" (d *. 1e3)
    else Printf.sprintf "%8.1f us" (d *. 1e6)

  let pp_metric_value fmt v =
    if Float.is_integer v && Float.abs v < 1e15 then Format.fprintf fmt "%.0f" v
    else Format.fprintf fmt "%g" v

  let pp_profile fmt t =
    Format.fprintf fmt "trace: %d event(s), %d span(s)@." t.event_count t.span_count;
    let rec pp_span depth sp =
      let indent = String.make (2 * depth) ' ' in
      let label =
        if sp.attrs = [] then sp.name
        else Format.asprintf "%s (%a)" sp.name pp_attrs sp.attrs
      in
      let time =
        match sp.duration with
        | Some d -> pretty_duration d
        | None -> "   (open)  "
      in
      Format.fprintf fmt "%s%-*s %s@." indent (max 1 (56 - (2 * depth))) label time;
      List.iter
        (fun (name, v) ->
          Format.fprintf fmt "%s  . %s = %a@." indent name pp_metric_value v)
        sp.counters;
      List.iter
        (fun (name, v) ->
          Format.fprintf fmt "%s  ~ %s = %a@." indent name pp_metric_value v)
        sp.gauges;
      List.iter
        (fun (name, attrs) ->
          if attrs = [] then Format.fprintf fmt "%s  ! %s@." indent name
          else Format.fprintf fmt "%s  ! %s (%a)@." indent name pp_attrs attrs)
        sp.notes;
      List.iter (pp_span (depth + 1)) sp.children
    in
    List.iter (pp_span 0) t.roots;
    if t.counter_totals <> [] then begin
      Format.fprintf fmt "@.counter totals:@.";
      List.iter
        (fun (name, v) -> Format.fprintf fmt "  %-40s %a@." name pp_metric_value v)
        t.counter_totals
    end;
    if t.gauge_last <> [] then begin
      Format.fprintf fmt "@.gauges (last value):@.";
      List.iter
        (fun (name, v) -> Format.fprintf fmt "  %-40s %g@." name v)
        (List.sort compare t.gauge_last)
    end;
    if t.hists <> [] then begin
      Format.fprintf fmt "@.histograms:@.";
      List.iter
        (fun (name, attrs) -> Format.fprintf fmt "  %-40s %a@." name pp_attrs attrs)
        (List.sort compare t.hists)
    end
end
