(** Zero-dependency tracing/metrics core. See the interface for the
    design rationale; the implementation notes that matter:

    - the active context is ambient *per domain* (domain-local storage)
      so engines carry no telemetry parameter; the disabled fast path is
      one DLS read and one match. Worker domains spawned by {!Pool} never
      inherit the installing domain's context; instead the pool installs
      a private *capture* context per task ({!capture_task}) whose buffer
      is merged back into the installing domain's trace after the join
      ({!absorb}) — every mutable registry is only ever touched from the
      domain that owns it, so there are no cross-domain data races;
    - span lifecycle is exception-safe: an escaping exception ends the
      span with an [error] attribute and re-raises;
    - counters/gauges/histograms aggregate in per-installation registries
      (histograms through {!Stats.moments}) in addition to streaming
      events, so totals are queryable without replaying the trace;
    - the default clock is a monotonized [Unix.gettimeofday] — wall
      seconds, never decreasing — because [Sys.time] is process CPU time
      and reads wrong on multicore runs. [?clock] still accepts fake
      clocks for deterministic tests. *)

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type attrs = (string * value) list

type kind =
  | Span_start
  | Span_end
  | Point
  | Count
  | Gauge
  | Hist

type event = {
  kind : kind;
  span : int;
  parent : int;
  name : string;
  time : float;
  value : float;
  attrs : attrs;
}

type sink = {
  emit : event -> unit;
  flush : unit -> unit;
}

let null = { emit = ignore; flush = ignore }

let memory_sink () =
  let events = ref [] in
  ( { emit = (fun e -> events := e :: !events); flush = ignore },
    fun () -> List.rev !events )

(* Default clock: wall time forced non-decreasing (gettimeofday may step
   backwards under NTP adjustment; a negative span duration would poison
   every downstream profile). One closure per installation — the ref is
   confined to the installing domain, like the rest of the ctx. *)
let monotonic_clock () =
  let last = ref Float.neg_infinity in
  fun () ->
    let t = Unix.gettimeofday () in
    if t > !last then last := t;
    !last

(* GC cost model shared by per-span deltas and the bench harness:
   allocated words = minor + major - promoted (the double-count-free
   total), plus the major-heap share. [Gc.counters] — not [quick_stat],
   whose copies of these counters only refresh at collection points on
   OCaml 5 — reads the live per-domain allocation counters without
   forcing a collection. *)
type alloc = {
  alloc_words : float;
  major_words : float;
}

let alloc_snapshot () =
  let minor, promoted, major = Gc.counters () in
  { alloc_words = minor +. major -. promoted; major_words = major }

let alloc_since before =
  let now = alloc_snapshot () in
  { alloc_words = now.alloc_words -. before.alloc_words;
    major_words = now.major_words -. before.major_words }

type ctx = {
  sink : sink;
  clock : unit -> float;
  task_clock : int -> unit -> float;  (* clock factory for pooled task captures *)
  gc : bool;  (* attach per-span allocation deltas to Span_end events *)
  mutable next_id : int;
  (* (span id, start time, alloc words at start, major words at start),
     innermost first; the GC marks are 0 when [gc] is off *)
  mutable stack : (int * float * float * float) list;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  moments : (string, Stats.moments) Hashtbl.t;
}

(* One ambient context per domain. A plain global ref would be shared by
   every domain in OCaml 5, and the ctx registries (Hashtbl, span stack)
   are not thread-safe; domain-local storage keeps the ambient-context
   convenience while confining each ctx to the domain that installed it. *)
let current : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let get_current () = Domain.DLS.get current

let set_current v = Domain.DLS.set current v

let active () = get_current () <> None

let enclosing c = match c.stack with [] -> 0 | (id, _, _, _) :: _ -> id

(* --- recording --------------------------------------------------------- *)

let now () = match get_current () with None -> 0.0 | Some c -> c.clock ()

let with_span ?(attrs = []) name f =
  match get_current () with
  | None -> f ()
  | Some c ->
    let id = c.next_id in
    c.next_id <- id + 1;
    let parent = enclosing c in
    let t0 = c.clock () in
    c.sink.emit { kind = Span_start; span = id; parent; name; time = t0; value = 0.0; attrs };
    let a0, m0 =
      if c.gc then
        let s = alloc_snapshot () in
        (s.alloc_words, s.major_words)
      else (0.0, 0.0)
    in
    c.stack <- (id, t0, a0, m0) :: c.stack;
    let finish error =
      (* Pop down to (and including) this span: a leaked child cannot
         corrupt the ancestors' bookkeeping. *)
      let rec pop = function
        | (i, start, a, mw) :: rest ->
          c.stack <- rest;
          if i = id then Some (start, a, mw) else pop rest
        | [] -> None
      in
      let popped = pop c.stack in
      let gc_attrs =
        match popped with
        | Some (_, a, mw) when c.gc ->
          let s = alloc_snapshot () in
          [ ("gc.alloc_words", Float (s.alloc_words -. a));
            ("gc.major_words", Float (s.major_words -. mw)) ]
        | _ -> []
      in
      let t1 = c.clock () in
      c.sink.emit
        { kind = Span_end;
          span = id;
          parent;
          name;
          time = t1;
          value = (match popped with Some (s, _, _) -> t1 -. s | None -> 0.0);
          attrs =
            gc_attrs @ (match error with None -> [] | Some msg -> [ ("error", Str msg) ]) }
    in
    (match f () with
     | v ->
       finish None;
       v
     | exception e ->
       finish (Some (Printexc.to_string e));
       raise e)

(* [?time] lets the pool stamp its batch-level bookkeeping events with a
   single shared clock reading, keeping the caller's clock-read count —
   and so the whole merged trace under a fake clock — independent of how
   many events the batch happens to emit. *)
let note ?time ?(attrs = []) name =
  match get_current () with
  | None -> ()
  | Some c ->
    let time = match time with Some t -> t | None -> c.clock () in
    c.sink.emit
      { kind = Point; span = enclosing c; parent = 0; name; time; value = 0.0; attrs }

let count ?time name n =
  match get_current () with
  | None -> ()
  | Some c ->
    (match Hashtbl.find_opt c.counters name with
     | Some r -> r := !r + n
     | None -> Hashtbl.replace c.counters name (ref n));
    if n <> 0 then begin
      let time = match time with Some t -> t | None -> c.clock () in
      c.sink.emit
        { kind = Count;
          span = enclosing c;
          parent = 0;
          name;
          time;
          value = Float.of_int n;
          attrs = [] }
    end

let gauge ?time name v =
  match get_current () with
  | None -> ()
  | Some c ->
    Hashtbl.replace c.gauges name v;
    let time = match time with Some t -> t | None -> c.clock () in
    c.sink.emit
      { kind = Gauge; span = enclosing c; parent = 0; name; time; value = v; attrs = [] }

let observe name x =
  match get_current () with
  | None -> ()
  | Some c ->
    let m =
      match Hashtbl.find_opt c.moments name with
      | Some m -> m
      | None ->
        let m = Stats.moments_create () in
        Hashtbl.replace c.moments name m;
        m
    in
    Stats.moments_add m x

(* --- registry access ---------------------------------------------------- *)

let counter_total name =
  match get_current () with
  | None -> 0
  | Some c -> (match Hashtbl.find_opt c.counters name with Some r -> !r | None -> 0)

let counter_totals () =
  match get_current () with
  | None -> []
  | Some c ->
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) c.counters []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

let gauge_last name =
  match get_current () with None -> None | Some c -> Hashtbl.find_opt c.gauges name

let observed name =
  match get_current () with
  | None -> None
  | Some c ->
    Option.map
      (fun m ->
        (m.Stats.n, Stats.moments_mean m, sqrt (Stats.moments_variance m)))
      (Hashtbl.find_opt c.moments name)

let observed_range name =
  match get_current () with
  | None -> None
  | Some c ->
    (match Hashtbl.find_opt c.moments name with
     | Some m when m.Stats.n > 0 -> Some (m.Stats.vmin, m.Stats.vmax)
     | _ -> None)

(* --- installation ------------------------------------------------------- *)

let emit_hist_summaries c =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) c.moments []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (name, m) ->
         let mean = Stats.moments_mean m in
         c.sink.emit
           { kind = Hist;
             span = 0;
             parent = 0;
             name;
             time = c.clock ();
             value = mean;
             attrs =
               [ ("n", Int m.Stats.n);
                 ("mean", Float mean);
                 ("std", Float (sqrt (Stats.moments_variance m)));
                 ("min", Float m.Stats.vmin);
                 ("max", Float m.Stats.vmax) ] })

let with_sink ?clock ?task_clock ?(gc = false) sink f =
  if sink == null then f ()
  else begin
    let clock = match clock with Some c -> c | None -> monotonic_clock () in
    (* Per-task clocks default to fresh monotonic closures so concurrent
       captures never share a mutable [last] ref across domains. Tests
       override this with deterministic per-index fake clocks. *)
    let task_clock =
      match task_clock with Some f -> f | None -> fun _ -> monotonic_clock ()
    in
    let ctx =
      { sink;
        clock;
        task_clock;
        gc;
        next_id = 1;
        stack = [];
        counters = Hashtbl.create 16;
        gauges = Hashtbl.create 16;
        moments = Hashtbl.create 16 }
    in
    let saved = get_current () in
    set_current (Some ctx);
    Fun.protect
      ~finally:(fun () ->
        emit_hist_summaries ctx;
        sink.flush ();
        set_current saved)
      f
  end

(* --- cross-domain capture ----------------------------------------------- *)

(* A worker buffer: everything a single pooled task recorded, frozen at
   task end. Registry snapshots are sorted by name so the merge is
   independent of Hashtbl iteration order. *)
type buffer = {
  b_task : int;
  b_events : event list;  (* in emission order *)
  b_span_count : int;  (* ids used by the capture ctx: 1 .. b_span_count *)
  b_counters : (string * int) list;  (* name-sorted totals *)
  b_gauges : (string * float) list;  (* name-sorted last values *)
  b_moments : (string * Stats.moments) list;  (* name-sorted accumulators *)
}

(* What a worker needs from the installing domain's ctx to build its
   capture ctx: the task-clock factory and the gc flag. Immutable, so
   safe to share across domains by construction. *)
type worker_spec = {
  ws_task_clock : int -> unit -> float;
  ws_gc : bool;
}

let capture_spec () =
  match get_current () with
  | None -> None
  | Some c -> Some { ws_task_clock = c.task_clock; ws_gc = c.gc }

let capture_task spec ~task ~domain ~into f =
  match spec with
  | None -> f ()
  | Some spec ->
    let sink, drain = memory_sink () in
    let ctx =
      { sink;
        clock = spec.ws_task_clock task;
        task_clock = spec.ws_task_clock;
        gc = spec.ws_gc;
        next_id = 1;
        stack = [];
        counters = Hashtbl.create 8;
        gauges = Hashtbl.create 8;
        moments = Hashtbl.create 8 }
    in
    let saved = get_current () in
    set_current (Some ctx);
    Fun.protect
      ~finally:(fun () ->
        set_current saved;
        let sorted_assoc fold tbl =
          fold tbl |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        into
          { b_task = task;
            b_events = drain ();
            b_span_count = ctx.next_id - 1;
            b_counters =
              sorted_assoc
                (fun t -> Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t [])
                ctx.counters;
            b_gauges =
              sorted_assoc
                (fun t -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [])
                ctx.gauges;
            b_moments =
              sorted_assoc
                (fun t -> Hashtbl.fold (fun k m acc -> (k, m) :: acc) t [])
                ctx.moments })
      (fun () ->
        with_span "pool.task"
          ~attrs:[ ("task", Int task); ("domain", Int domain) ]
          f)

let absorb buf =
  match get_current () with
  | None -> ()
  | Some c ->
    (* Remap the buffer's span ids 1..k onto a fresh contiguous block of
       the caller's id space, and reparent the buffer's roots (parent 0)
       under the caller's enclosing span — normally the pool.batch span
       that dispatched the task. *)
    let base = c.next_id - 1 in
    c.next_id <- c.next_id + buf.b_span_count;
    let here = enclosing c in
    let remap id = if id = 0 then 0 else id + base in
    let reparent id = if id = 0 then here else remap id in
    List.iter
      (fun e ->
        c.sink.emit
          { e with
            span = (match e.kind with
                    | Span_start | Span_end -> remap e.span
                    | Point | Count | Gauge | Hist -> reparent e.span);
            parent = (match e.kind with
                      | Span_start | Span_end -> reparent e.parent
                      | Point | Count | Gauge | Hist -> e.parent) })
      buf.b_events;
    (* Registries merge once from the frozen totals — the re-emitted
       Count events above are raw stream data and must not double-bump
       the caller's counters, so they bypass [count]. *)
    List.iter
      (fun (name, n) ->
        match Hashtbl.find_opt c.counters name with
        | Some r -> r := !r + n
        | None -> Hashtbl.replace c.counters name (ref n))
      buf.b_counters;
    List.iter (fun (name, v) -> Hashtbl.replace c.gauges name v) buf.b_gauges;
    List.iter
      (fun (name, m) ->
        match Hashtbl.find_opt c.moments name with
        | Some prev -> Hashtbl.replace c.moments name (Stats.moments_merge prev m)
        | None -> Hashtbl.replace c.moments name (Stats.moments_merge (Stats.moments_create ()) m))
      buf.b_moments

(* --- JSON --------------------------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | JBool of bool
    | JInt of int
    | JFloat of float
    | JStr of string
    | JList of t list
    | JObj of (string * t) list

  (* Strings are emitted as pure ASCII: control characters and every
     code point above U+007F become spec-compliant \uXXXX escapes (a
     surrogate pair beyond the BMP), so the JSONL survives strict
     parsers regardless of transport encoding. Input is decoded as
     UTF-8; malformed sequences degrade to U+FFFD per offending byte
     rather than corrupting the emitted document. *)
  let add_u16 buf code = Buffer.add_string buf (Printf.sprintf "\\u%04x" code)

  let add_code_point buf cp =
    if cp <= 0xFFFF then add_u16 buf cp
    else begin
      let v = cp - 0x10000 in
      add_u16 buf (0xD800 lor (v lsr 10));
      add_u16 buf (0xDC00 lor (v land 0x3FF))
    end

  (* Decode one UTF-8 sequence starting at [i]; returns (code point,
     bytes consumed), or (0xFFFD, 1) when the bytes are not UTF-8. *)
  let decode_utf8 s i =
    let n = String.length s in
    let byte k = Char.code s.[k] in
    let cont k = k < n && byte k land 0xC0 = 0x80 in
    let b0 = byte i in
    if b0 < 0x80 then (b0, 1)
    else if b0 land 0xE0 = 0xC0 && cont (i + 1) then begin
      let cp = ((b0 land 0x1F) lsl 6) lor (byte (i + 1) land 0x3F) in
      if cp >= 0x80 then (cp, 2) else (0xFFFD, 1) (* overlong *)
    end
    else if b0 land 0xF0 = 0xE0 && cont (i + 1) && cont (i + 2) then begin
      let cp =
        ((b0 land 0x0F) lsl 12)
        lor ((byte (i + 1) land 0x3F) lsl 6)
        lor (byte (i + 2) land 0x3F)
      in
      if cp >= 0x800 && not (cp >= 0xD800 && cp <= 0xDFFF) then (cp, 3)
      else (0xFFFD, 1) (* overlong or stray surrogate *)
    end
    else if b0 land 0xF8 = 0xF0 && cont (i + 1) && cont (i + 2) && cont (i + 3) then begin
      let cp =
        ((b0 land 0x07) lsl 18)
        lor ((byte (i + 1) land 0x3F) lsl 12)
        lor ((byte (i + 2) land 0x3F) lsl 6)
        lor (byte (i + 3) land 0x3F)
      in
      if cp >= 0x10000 && cp <= 0x10FFFF then (cp, 4) else (0xFFFD, 1)
    end
    else (0xFFFD, 1)

  let escape buf s =
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (match s.[!i] with
       | '"' -> Buffer.add_string buf "\\\""; incr i
       | '\\' -> Buffer.add_string buf "\\\\"; incr i
       | '\n' -> Buffer.add_string buf "\\n"; incr i
       | '\r' -> Buffer.add_string buf "\\r"; incr i
       | '\t' -> Buffer.add_string buf "\\t"; incr i
       | c when Char.code c < 0x20 ->
         add_u16 buf (Char.code c);
         incr i
       | c when Char.code c < 0x80 -> Buffer.add_char buf c; incr i
       | _ ->
         let cp, used = decode_utf8 s !i in
         add_code_point buf cp;
         i := !i + used)
    done

  (* Non-finite values have no JSON number form; [null] round-trips to
     [nan]. Integral floats keep a ".0" so the parser preserves the
     int/float distinction; "%.17g" round-trips every other double. *)
  let float_repr v =
    if Float.is_nan v || Float.abs v = Float.infinity then "null"
    else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
    else Printf.sprintf "%.17g" v

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | JBool b -> Buffer.add_string buf (if b then "true" else "false")
    | JInt n -> Buffer.add_string buf (string_of_int n)
    | JFloat v -> Buffer.add_string buf (float_repr v)
    | JStr s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | JList xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
    | JObj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 128 in
    write buf t;
    Buffer.contents buf

  exception Bad of string

  (* Append one code point as UTF-8 (input validated by the caller). *)
  let buffer_add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end

  (* Minimal recursive-descent parser for standard JSON as this module
     emits it; \uXXXX escapes cover the full Unicode range (surrogate
     pairs included) and decode to UTF-8 bytes. *)
  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect ch =
      if peek () = Some ch then advance () else fail (Printf.sprintf "expected '%c'" ch)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> advance ()
          | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                 advance ();
                 let read_u16 () =
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   if not (String.for_all (function
                             | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
                             | _ -> false) hex)
                   then fail "bad \\u escape";
                   pos := !pos + 4;
                   int_of_string ("0x" ^ hex)
                 in
                 let code = read_u16 () in
                 if code >= 0xD800 && code <= 0xDBFF then begin
                   (* High surrogate: a low surrogate must follow. *)
                   if
                     !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let low = read_u16 () in
                     if low < 0xDC00 || low > 0xDFFF then fail "unpaired high surrogate";
                     buffer_add_utf8 buf
                       (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
                   end
                   else fail "unpaired high surrogate"
                 end
                 else if code >= 0xDC00 && code <= 0xDFFF then fail "unpaired low surrogate"
                 else buffer_add_utf8 buf code
               | _ -> fail "unknown escape");
            go ()
          | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
        match float_of_string_opt text with
        | Some v -> JFloat v
        | None -> fail "malformed number"
      else
        match int_of_string_opt text with
        | Some v -> JInt v
        | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> JStr (parse_string ())
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          JObj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          JObj (List.rev !fields)
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          JList []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          JList (List.rev !items)
        end
      | Some 't' -> literal "true" (JBool true)
      | Some 'f' -> literal "false" (JBool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg
end

let kind_name = function
  | Span_start -> "span_start"
  | Span_end -> "span_end"
  | Point -> "event"
  | Count -> "count"
  | Gauge -> "gauge"
  | Hist -> "hist"

let kind_of_name = function
  | "span_start" -> Some Span_start
  | "span_end" -> Some Span_end
  | "event" -> Some Point
  | "count" -> Some Count
  | "gauge" -> Some Gauge
  | "hist" -> Some Hist
  | _ -> None

let json_of_value = function
  | Bool b -> Json.JBool b
  | Int n -> Json.JInt n
  | Float v -> Json.JFloat v
  | Str s -> Json.JStr s

let value_of_json = function
  | Json.JBool b -> Ok (Bool b)
  | Json.JInt n -> Ok (Int n)
  | Json.JFloat v -> Ok (Float v)
  | Json.JStr s -> Ok (Str s)
  | Json.Null | Json.JList _ | Json.JObj _ -> Error "unsupported attribute value"

let event_to_json e =
  Json.JObj
    ([ ("kind", Json.JStr (kind_name e.kind));
       ("span", Json.JInt e.span);
       ("parent", Json.JInt e.parent);
       ("name", Json.JStr e.name);
       ("t", Json.JFloat e.time);
       ("v", Json.JFloat e.value) ]
    @
    if e.attrs = [] then []
    else [ ("attrs", Json.JObj (List.map (fun (k, v) -> (k, json_of_value v)) e.attrs)) ])

let event_of_json json =
  let ( let* ) = Result.bind in
  match json with
  | Json.JObj fields ->
    let find key = List.assoc_opt key fields in
    let* kind =
      match find "kind" with
      | Some (Json.JStr s) ->
        (match kind_of_name s with
         | Some k -> Ok k
         | None -> Error (Printf.sprintf "unknown event kind %S" s))
      | Some _ -> Error "field \"kind\" must be a string"
      | None -> Error "missing field \"kind\""
    in
    let int_field key =
      match find key with
      | Some (Json.JInt n) -> Ok n
      | Some _ -> Error (Printf.sprintf "field %S must be an integer" key)
      | None -> Error (Printf.sprintf "missing field %S" key)
    in
    let float_field key =
      match find key with
      | Some (Json.JFloat v) -> Ok v
      | Some (Json.JInt n) -> Ok (Float.of_int n)
      | Some Json.Null -> Ok Float.nan
      | Some _ -> Error (Printf.sprintf "field %S must be a number" key)
      | None -> Error (Printf.sprintf "missing field %S" key)
    in
    let* span = int_field "span" in
    let* parent = int_field "parent" in
    let* name =
      match find "name" with
      | Some (Json.JStr s) -> Ok s
      | Some _ -> Error "field \"name\" must be a string"
      | None -> Error "missing field \"name\""
    in
    let* time = float_field "t" in
    let* value = float_field "v" in
    let* attrs =
      match find "attrs" with
      | None -> Ok []
      | Some (Json.JObj kvs) ->
        List.fold_left
          (fun acc (k, jv) ->
            let* acc = acc in
            let* v = value_of_json jv in
            Ok ((k, v) :: acc))
          (Ok []) kvs
        |> Result.map List.rev
      | Some _ -> Error "field \"attrs\" must be an object"
    in
    Ok { kind; span; parent; name; time; value; attrs }
  | _ -> Error "event line is not a JSON object"

let event_to_line e = Json.to_string (event_to_json e)

let event_of_line line =
  match Json.parse line with
  | Error msg -> Error msg
  | Ok json -> event_of_json json

let jsonl_sink oc =
  { emit =
      (fun e ->
        output_string oc (event_to_line e);
        output_char oc '\n');
    flush = (fun () -> flush oc) }

(* --- trace reconstruction ---------------------------------------------- *)

module Trace = struct
  type span = {
    id : int;
    parent : int;
    name : string;
    start : float;
    mutable duration : float option;
    attrs : attrs;
    mutable end_attrs : attrs;
    mutable children : span list;
    mutable counters : (string * float) list;
    mutable gauges : (string * float) list;
    mutable notes : (string * attrs) list;
  }

  type t = {
    roots : span list;
    span_count : int;
    event_count : int;
    counter_totals : (string * float) list;
    gauge_last : (string * float) list;
    hists : (string * attrs) list;
  }

  let bump assoc name v =
    match List.assoc_opt name assoc with
    | Some prev -> (name, prev +. v) :: List.remove_assoc name assoc
    | None -> (name, v) :: assoc

  let set assoc name v = (name, v) :: List.remove_assoc name assoc

  let of_events events =
    let spans : (int, span) Hashtbl.t = Hashtbl.create 64 in
    let roots = ref [] in
    let counter_totals = ref [] in
    let gauge_last = ref [] in
    let hists = ref [] in
    let event_count = ref 0 in
    let error = ref None in
    let fail msg = if !error = None then error := Some msg in
    let owner ev_kind id =
      if id = 0 then None
      else
        match Hashtbl.find_opt spans id with
        | Some sp -> Some sp
        | None ->
          fail (Printf.sprintf "%s references span %d which never started" ev_kind id);
          None
    in
    List.iter
      (fun e ->
        if !error = None then begin
          incr event_count;
          match e.kind with
          | Span_start ->
            if Hashtbl.mem spans e.span then
              fail (Printf.sprintf "span %d started twice" e.span)
            else begin
              let sp =
                { id = e.span;
                  parent = e.parent;
                  name = e.name;
                  start = e.time;
                  duration = None;
                  attrs = e.attrs;
                  end_attrs = [];
                  children = [];
                  counters = [];
                  gauges = [];
                  notes = [] }
              in
              Hashtbl.replace spans e.span sp;
              match owner "span_start" e.parent with
              | Some parent -> parent.children <- sp :: parent.children
              | None -> if e.parent = 0 then roots := sp :: !roots
            end
          | Span_end ->
            (match owner "span_end" e.span with
             | Some sp ->
               if sp.duration <> None then fail (Printf.sprintf "span %d ended twice" e.span)
               else begin
                 sp.duration <- Some e.value;
                 sp.end_attrs <- e.attrs
               end
             | None -> ())
          | Count ->
            counter_totals := bump !counter_totals e.name e.value;
            (match owner "count" e.span with
             | Some sp -> sp.counters <- bump sp.counters e.name e.value
             | None -> ())
          | Gauge ->
            gauge_last := set !gauge_last e.name e.value;
            (match owner "gauge" e.span with
             | Some sp -> sp.gauges <- set sp.gauges e.name e.value
             | None -> ())
          | Point ->
            (match owner "event" e.span with
             | Some sp -> sp.notes <- (e.name, e.attrs) :: sp.notes
             | None -> ())
          | Hist -> hists := (e.name, e.attrs) :: !hists
        end)
      events;
    match !error with
    | Some msg -> Error msg
    | None ->
      let rec finalize sp =
        sp.children <- List.rev sp.children;
        sp.counters <- List.rev sp.counters;
        sp.gauges <- List.rev sp.gauges;
        sp.notes <- List.rev sp.notes;
        List.iter finalize sp.children
      in
      let roots = List.rev !roots in
      List.iter finalize roots;
      Ok
        { roots;
          span_count = Hashtbl.length spans;
          event_count = !event_count;
          counter_totals = List.sort compare (List.rev !counter_totals);
          gauge_last = List.rev !gauge_last;
          hists = List.rev !hists }

  let of_string text =
    let lines = String.split_on_char '\n' text in
    let ( let* ) = Result.bind in
    let* events =
      List.fold_left
        (fun acc (lineno, line) ->
          let* acc = acc in
          if String.trim line = "" then Ok acc
          else
            match event_of_line line with
            | Ok e -> Ok (e :: acc)
            | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
        (Ok [])
        (List.mapi (fun i l -> (i + 1, l)) lines)
      |> Result.map List.rev
    in
    of_events events

  let of_file path =
    match In_channel.with_open_text path In_channel.input_all with
    | text -> of_string text
    | exception Sys_error msg -> Error msg

  let find_spans t name =
    let acc = ref [] in
    let rec go sp =
      if sp.name = name then acc := sp :: !acc;
      List.iter go sp.children
    in
    List.iter go t.roots;
    List.rev !acc

  (* --- profile printing ------------------------------------------------ *)

  let pp_value fmt = function
    | Bool b -> Format.fprintf fmt "%b" b
    | Int n -> Format.fprintf fmt "%d" n
    | Float v -> Format.fprintf fmt "%g" v
    | Str s -> Format.fprintf fmt "%s" s

  let pp_attrs fmt attrs =
    List.iteri
      (fun i (k, v) ->
        Format.fprintf fmt "%s%s=%a" (if i > 0 then ", " else "") k pp_value v)
      attrs

  let pretty_duration d =
    if d >= 1.0 then Printf.sprintf "%8.3f s " d
    else if d >= 1e-3 then Printf.sprintf "%8.3f ms" (d *. 1e3)
    else Printf.sprintf "%8.1f us" (d *. 1e6)

  let pp_metric_value fmt v =
    if Float.is_integer v && Float.abs v < 1e15 then Format.fprintf fmt "%.0f" v
    else Format.fprintf fmt "%g" v

  let pp_profile fmt t =
    Format.fprintf fmt "trace: %d event(s), %d span(s)@." t.event_count t.span_count;
    let rec pp_span depth sp =
      let indent = String.make (2 * depth) ' ' in
      let label =
        if sp.attrs = [] then sp.name
        else Format.asprintf "%s (%a)" sp.name pp_attrs sp.attrs
      in
      let time =
        match sp.duration with
        | Some d -> pretty_duration d
        | None -> "   (open)  "
      in
      Format.fprintf fmt "%s%-*s %s@." indent (max 1 (56 - (2 * depth))) label time;
      List.iter
        (fun (name, v) ->
          Format.fprintf fmt "%s  . %s = %a@." indent name pp_metric_value v)
        sp.counters;
      List.iter
        (fun (name, v) ->
          Format.fprintf fmt "%s  ~ %s = %a@." indent name pp_metric_value v)
        sp.gauges;
      List.iter
        (fun (name, attrs) ->
          if attrs = [] then Format.fprintf fmt "%s  ! %s@." indent name
          else Format.fprintf fmt "%s  ! %s (%a)@." indent name pp_attrs attrs)
        sp.notes;
      List.iter (pp_span (depth + 1)) sp.children
    in
    List.iter (pp_span 0) t.roots;
    if t.counter_totals <> [] then begin
      Format.fprintf fmt "@.counter totals:@.";
      List.iter
        (fun (name, v) -> Format.fprintf fmt "  %-40s %a@." name pp_metric_value v)
        t.counter_totals
    end;
    if t.gauge_last <> [] then begin
      Format.fprintf fmt "@.gauges (last value):@.";
      List.iter
        (fun (name, v) -> Format.fprintf fmt "  %-40s %g@." name v)
        (List.sort compare t.gauge_last)
    end;
    if t.hists <> [] then begin
      Format.fprintf fmt "@.histograms:@.";
      List.iter
        (fun (name, attrs) -> Format.fprintf fmt "  %-40s %a@." name pp_attrs attrs)
        (List.sort compare t.hists)
    end

  (* --- analysis --------------------------------------------------------- *)

  let duration sp = match sp.duration with Some d -> d | None -> 0.0

  (* Self time: a span's duration minus its children's. Clamped at zero —
     overlapping child intervals (merged worker spans run concurrently in
     wall time) can sum past the parent. *)
  let self_time sp =
    let kids = List.fold_left (fun acc ch -> acc +. duration ch) 0.0 sp.children in
    Float.max 0.0 (duration sp -. kids)

  (* Critical path: from the longest root, repeatedly descend into the
     longest child. Ties break to the earliest span in start order, so
     the path is deterministic on deterministic traces. *)
  let critical_path t =
    let widest = function
      | [] -> None
      | first :: rest ->
        Some
          (List.fold_left
             (fun best sp -> if duration sp > duration best then sp else best)
             first rest)
    in
    match widest t.roots with
    | None -> []
    | Some root ->
      let rec go sp acc =
        match widest sp.children with
        | None -> List.rev (sp :: acc)
        | Some ch -> go ch (sp :: acc)
      in
      go root []

  let pp_critical_path fmt t =
    match critical_path t with
    | [] -> Format.fprintf fmt "critical path: (no spans)@."
    | path ->
      let total = duration (List.hd path) in
      Format.fprintf fmt "critical path (%s total):@."
        (String.trim (pretty_duration total));
      List.iteri
        (fun depth sp ->
          Format.fprintf fmt "%s%-*s %s  self %s@."
            (String.make (2 * depth) ' ')
            (max 1 (48 - (2 * depth)))
            sp.name
            (pretty_duration (duration sp))
            (String.trim (pretty_duration (self_time sp))))
        path

  (* Folded stacks: one line per distinct root-to-span name path, value =
     total self time. The format Brendan Gregg's flamegraph.pl and every
     speedscope-style viewer ingest directly. *)
  let fold_stacks t =
    let acc : (string, float) Hashtbl.t = Hashtbl.create 64 in
    let rec go prefix sp =
      let path = if prefix = "" then sp.name else prefix ^ ";" ^ sp.name in
      let prev = Option.value (Hashtbl.find_opt acc path) ~default:0.0 in
      Hashtbl.replace acc path (prev +. self_time sp);
      List.iter (go path) sp.children
    in
    List.iter (go "") t.roots;
    Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let pp_flame fmt t =
    List.iter
      (fun (path, self) ->
        Format.fprintf fmt "%s %.0f@." path (Float.max 0.0 (self *. 1e6)))
      (fold_stacks t)

  (* Per-domain busy accounting from merged pool.task spans:
     (domain, tasks run, busy seconds), sorted by domain id. *)
  let domain_timeline t =
    let tbl : (int, int * float) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun sp ->
        match List.assoc_opt "domain" sp.attrs with
        | Some (Int d) ->
          let tasks, busy =
            Option.value (Hashtbl.find_opt tbl d) ~default:(0, 0.0)
          in
          Hashtbl.replace tbl d (tasks + 1, busy +. duration sp)
        | _ -> ())
      (find_spans t "pool.task");
    Hashtbl.fold (fun d (tasks, busy) acc -> (d, tasks, busy) :: acc) tbl []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

  let pp_domains fmt t =
    match domain_timeline t with
    | [] -> ()
    | rows ->
      let wall =
        List.fold_left
          (fun acc sp -> Float.max acc (duration sp))
          0.0 (find_spans t "pool.batch")
      in
      Format.fprintf fmt "@.per-domain busy time (pool.task spans):@.";
      List.iter
        (fun (d, tasks, busy) ->
          if wall > 0.0 then
            Format.fprintf fmt "  domain %-3d %4d task(s)  busy %s (%.0f%% of longest batch)@."
              d tasks (pretty_duration busy)
              (100.0 *. busy /. wall)
          else
            Format.fprintf fmt "  domain %-3d %4d task(s)  busy %s@." d tasks
              (pretty_duration busy))
        rows

  (* --- canonical projection -------------------------------------------- *)

  (* Scheduling telemetry is honest about where work ran, which is
     exactly what varies with pool size; the canonical projection drops
     it so deterministic workloads compare bit-identical at 1/2/8
     domains. pool.tasks counts survive (the executed task set is
     pool-size-independent); placement attrs and GC deltas do not. *)
  let scheduling_event (e : event) =
    match e.name with
    | "pool.steals" | "pool.utilization" | "pool.domain" -> true
    | _ -> false

  let nondeterministic_attr (k, _) =
    match k with
    | "domain" | "domains" | "slot" | "busy_s" | "gc.alloc_words" | "gc.major_words" ->
      true
    | _ -> false

  let canonicalize events =
    List.filter_map
      (fun (e : event) ->
        if scheduling_event e then None
        else
          Some
            { e with attrs = List.filter (fun a -> not (nondeterministic_attr a)) e.attrs })
      events

  (* --- trace diff ------------------------------------------------------- *)

  type verdict =
    | Regression
    | Improvement
    | Unchanged
    | Added
    | Removed
    | Changed

  type diff_entry = {
    metric : string;
    base_value : float option;
    run_value : float option;
    diff_verdict : verdict;
  }

  type diff = {
    entries : diff_entry list;
    regressions : int;
  }

  let span_totals t =
    let tbl : (string, float) Hashtbl.t = Hashtbl.create 32 in
    let rec go sp =
      let prev = Option.value (Hashtbl.find_opt tbl sp.name) ~default:0.0 in
      Hashtbl.replace tbl sp.name (prev +. duration sp);
      List.iter go sp.children
    in
    List.iter go t.roots;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let diff_traces ?(threshold = 0.25) ?(min_duration = 0.0) ~base run =
    (* Symmetric relative test — avoids dividing by zero and treats the
       two traces even-handedly. Metrics are assumed nonnegative (span
       seconds, counter totals); exact equality always passes. *)
    let within b r =
      b = r || (r <= b *. (1.0 +. threshold) && b <= r *. (1.0 +. threshold))
    in
    let classify direction b r =
      if within b r then Unchanged
      else
        match direction with
        | `Neutral -> Changed
        | `Lower_better -> if r > b then Regression else Improvement
        | `Higher_better -> if r < b then Regression else Improvement
    in
    (* Per-metric improvement direction. Spans and most counters measure
       work, so bigger is worse; a handful of counters measure how well
       an optimization engaged — a drop there means the fast path
       stopped firing and IS the regression; a few are neutral workload
       descriptors. Gauges have no generic direction. *)
    let counter_direction = function
      | "atpg.session_reused" | "atpg.faults_dropped" | "atpg.covered_by_simulation"
      | "synth.gates_removed" ->
        `Higher_better
      (* gates_added is workload-shaped: masking passes grow the netlist
         on purpose, so neither direction is a regression per se. *)
      | "sat.groups_retired" | "synth.gates_added" -> `Neutral
      | _ -> `Lower_better
    in
    let join prefix ~direction ~keep bs rs =
      let names = List.sort_uniq compare (List.map fst bs @ List.map fst rs) in
      List.filter_map
        (fun name ->
          let metric = prefix ^ name in
          match (List.assoc_opt name bs, List.assoc_opt name rs) with
          | Some b, Some r ->
            if keep b r then
              Some
                { metric;
                  base_value = Some b;
                  run_value = Some r;
                  diff_verdict = classify (direction name) b r }
            else None
          | Some b, None ->
            if keep b 0.0 then
              Some { metric; base_value = Some b; run_value = None; diff_verdict = Removed }
            else None
          | None, Some r ->
            if keep 0.0 r then
              Some { metric; base_value = None; run_value = Some r; diff_verdict = Added }
            else None
          | None, None -> None)
        names
    in
    let keep_span b r = Float.max b r >= min_duration in
    let keep_all _ _ = true in
    let entries =
      join "span:" ~direction:(fun _ -> `Lower_better) ~keep:keep_span (span_totals base)
        (span_totals run)
      @ join "counter:" ~direction:counter_direction ~keep:keep_all base.counter_totals
          run.counter_totals
      @ join "gauge:" ~direction:(fun _ -> `Neutral) ~keep:keep_all
          (List.sort compare base.gauge_last)
          (List.sort compare run.gauge_last)
    in
    let regressions =
      List.length (List.filter (fun e -> e.diff_verdict = Regression) entries)
    in
    { entries; regressions }

  let verdict_name = function
    | Regression -> "REGRESSION"
    | Improvement -> "improvement"
    | Unchanged -> "unchanged"
    | Added -> "added"
    | Removed -> "removed"
    | Changed -> "changed"

  let pp_diff fmt d =
    let pp_opt fmt = function
      | None -> Format.fprintf fmt "%12s" "-"
      | Some v -> Format.fprintf fmt "%12g" v
    in
    Format.fprintf fmt "%-44s %12s %12s  %s@." "metric" "base" "run" "verdict";
    List.iter
      (fun e ->
        Format.fprintf fmt "%-44s %a %a  %s@." e.metric pp_opt e.base_value pp_opt
          e.run_value
          (verdict_name e.diff_verdict))
      d.entries;
    Format.fprintf fmt "@.%d regression(s)@." d.regressions
end
