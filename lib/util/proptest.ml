(** Zero-dependency QuickCheck-style property harness. See the .mli for
    the contract; the design notes live in DESIGN.md ("Property testing
    and shrinking").

    Reproducibility model: case [i] of a [check] draws from stream [i] of
    [Rng.split (Rng.create seed) count]. The generator never touches any
    other randomness, so (seed, count, i) pins the case exactly — the
    failure report carries all three. Shrinking consumes no randomness at
    all: it is a greedy walk over the pure [shrink] candidate sequences,
    bounded by [max_shrink_steps] so pathological shrinkers (or
    properties that fail on everything) terminate. *)

type 'a arb = {
  gen : Rng.t -> 'a;
  shrink : 'a -> 'a Seq.t;
  show : 'a -> string;
}

let no_shrink _ = Seq.empty

let make ?(shrink = no_shrink) ?(show = fun _ -> "<opaque>") gen = { gen; shrink; show }

(* Candidates for an int in [lo, v]: lo first (the biggest jump), then
   binary approach from below — the classic QuickCheck ladder, which
   reaches a local minimum in O(log v) accepted steps. *)
let shrink_int_toward lo v =
  if v = lo then Seq.empty
  else
    let rec ladder delta () =
      (* delta walks v-lo, (v-lo)/2, ..., 1; candidate = v - delta *)
      if delta = 0 then Seq.Nil
      else Seq.Cons (v - delta, ladder (delta / 2))
    in
    ladder (v - lo)

let int_range lo hi =
  if lo > hi then invalid_arg "Proptest.int_range: lo > hi";
  { gen = (fun rng -> lo + Rng.int rng (hi - lo + 1));
    shrink = (fun v -> shrink_int_toward lo v);
    show = string_of_int }

let bool_arb =
  { gen = Rng.bool;
    shrink = (fun v -> if v then Seq.return false else Seq.empty);
    show = string_of_bool }

let const v = { gen = (fun _ -> v); shrink = no_shrink; show = (fun _ -> "<const>") }

let choose_from ?(show = fun _ -> "<choice>") = function
  | [] -> invalid_arg "Proptest.choose_from: empty list"
  | choices ->
    let arr = Array.of_list choices in
    let index v =
      let rec find i = if i >= Array.length arr then None
        else if arr.(i) == v then Some i else find (i + 1)
      in
      find 0
    in
    { gen = (fun rng -> arr.(Rng.int rng (Array.length arr)));
      shrink =
        (fun v ->
          match index v with
          | None | Some 0 -> Seq.empty
          | Some i -> Seq.map (fun j -> arr.(j)) (shrink_int_toward 0 i));
      show }

let pair a b =
  { gen = (fun rng -> (a.gen rng, b.gen rng));
    shrink =
      (fun (x, y) ->
        Seq.append
          (Seq.map (fun x' -> (x', y)) (a.shrink x))
          (Seq.map (fun y' -> (x, y')) (b.shrink y)));
    show = (fun (x, y) -> Printf.sprintf "(%s, %s)" (a.show x) (b.show y)) }

let triple a b c =
  { gen = (fun rng -> (a.gen rng, b.gen rng, c.gen rng));
    shrink =
      (fun (x, y, z) ->
        Seq.append
          (Seq.map (fun x' -> (x', y, z)) (a.shrink x))
          (Seq.append
             (Seq.map (fun y' -> (x, y', z)) (b.shrink y))
             (Seq.map (fun z' -> (x, y, z')) (c.shrink z))));
    show =
      (fun (x, y, z) -> Printf.sprintf "(%s, %s, %s)" (a.show x) (b.show y) (c.show z)) }

(* Shrink a list by dropping progressively smaller chunks off the tail
   (halving), then by shrinking one element at a time. *)
let shrink_list elt l =
  let n = List.length l in
  let prefixes =
    let rec keep k () =
      if k >= n then Seq.Nil
      else Seq.Cons (List.filteri (fun i _ -> i < k) l, keep (k + ((n - k + 1) / 2)))
    in
    if n = 0 then Seq.empty else keep 0
  in
  let elementwise =
    List.to_seq l
    |> Seq.mapi (fun i x ->
           Seq.map (fun x' -> List.mapi (fun j y -> if j = i then x' else y) l) (elt.shrink x))
    |> Seq.concat
  in
  Seq.append prefixes elementwise

let list_of ?(min_len = 0) ~max_len elt =
  if min_len < 0 || max_len < min_len then invalid_arg "Proptest.list_of: bad bounds";
  { gen =
      (fun rng ->
        let n = min_len + Rng.int rng (max_len - min_len + 1) in
        List.init n (fun _ -> elt.gen rng));
    shrink =
      (fun l ->
        Seq.filter (fun l' -> List.length l' >= min_len) (shrink_list elt l));
    show = (fun l -> "[" ^ String.concat "; " (List.map elt.show l) ^ "]") }

let map ?shrink_back ?(show = fun _ -> "<mapped>") f a =
  { gen = (fun rng -> f (a.gen rng));
    shrink =
      (fun v ->
        match shrink_back with
        | None -> Seq.empty
        | Some back ->
          (match back v with
           | None -> Seq.empty
           | Some x -> Seq.map f (a.shrink x)));
    show }

let such_that pred a =
  { gen =
      (fun rng ->
        let rec draw n =
          if n = 0 then invalid_arg "Proptest.such_that: predicate never satisfied";
          let v = a.gen rng in
          if pred v then v else draw (n - 1)
        in
        draw 1000);
    shrink = (fun v -> Seq.filter pred (a.shrink v));
    show = a.show }

type failure = {
  prop_name : string;
  seed : int;
  case_index : int;
  shrink_steps : int;
  original : string;
  minimal : string;
  error : string option;
}

type outcome =
  | Passed of int
  | Failed of failure

let describe_failure f =
  Printf.sprintf
    "property %S: shrunk counterexample %s (case %d, %d shrink step(s), originally %s%s) \
     — replay with PROPTEST_SEED=%d"
    f.prop_name f.minimal f.case_index f.shrink_steps f.original
    (match f.error with None -> "" | Some e -> ", raised " ^ e)
    f.seed

let seed_from_env ~default =
  match Sys.getenv_opt "PROPTEST_SEED" with
  | Some s -> (match int_of_string_opt (String.trim s) with Some n -> n | None -> default)
  | None -> default

(* A property fails by returning false or raising; the raise text is
   preserved for the report (the first one encountered on the original
   counterexample — shrinking keeps whatever failure mode the candidate
   exhibits). *)
let holds prop v =
  match prop v with
  | true -> Ok ()
  | false -> Error None
  | exception e -> Error (Some (Printexc.to_string e))

let check ?(count = 100) ?seed ?(max_shrink_steps = 400) ~name arb prop =
  if count <= 0 then invalid_arg "Proptest.check: count must be positive";
  let seed = match seed with Some s -> s | None -> seed_from_env ~default:0xEDA in
  let streams = Rng.split (Rng.create seed) count in
  let failure = ref None in
  let i = ref 0 in
  while !failure = None && !i < count do
    let v = arb.gen streams.(!i) in
    (match holds prop v with
     | Ok () -> ()
     | Error err ->
       (* Greedy descent: first failing candidate wins each round. *)
       let steps = ref 0 in
       let current = ref v in
       let progress = ref true in
       while !progress && !steps < max_shrink_steps do
         progress := false;
         let candidates = arb.shrink !current in
         let rec try_candidates seq =
           if !steps >= max_shrink_steps then ()
           else
             match seq () with
             | Seq.Nil -> ()
             | Seq.Cons (cand, rest) ->
               incr steps;
               (match holds prop cand with
                | Ok () -> try_candidates rest
                | Error _ ->
                  current := cand;
                  progress := true)
         in
         try_candidates candidates
       done;
       failure :=
         Some
           { prop_name = name;
             seed;
             case_index = !i;
             shrink_steps = !steps;
             original = arb.show v;
             minimal = arb.show !current;
             error = err });
    incr i
  done;
  match !failure with
  | None -> Passed count
  | Some f -> Failed f

let check_exn ?count ?seed ?max_shrink_steps ~name arb prop =
  match check ?count ?seed ?max_shrink_steps ~name arb prop with
  | Passed _ -> ()
  | Failed f -> failwith (describe_failure f)
